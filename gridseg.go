package gridseg

import (
	"errors"
	"fmt"
	"image/png"
	"io"
	"math"
	"strings"

	"gridseg/internal/dynamics"
	"gridseg/internal/dynamics/fastglauber"
	"gridseg/internal/dynamics/pareng"
	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/measure"
	"gridseg/internal/rng"
	"gridseg/internal/theory"
	"gridseg/internal/topology"
	"gridseg/internal/viz"
)

// Dynamic selects the evolution rule.
type Dynamic int

// The two model classes discussed in Section I.A of the paper, plus
// the relocation dynamic enabled by vacancy scenarios.
const (
	// Glauber is the paper's open-system dynamic: unhappy agents flip
	// type when the flip makes them happy.
	Glauber Dynamic = iota + 1
	// Kawasaki is the closed-system baseline: pairs of unhappy agents
	// of opposite types swap when the swap makes both happy.
	Kawasaki
	// Move is the relocation dynamic of vacancy scenarios (Rho > 0):
	// an unhappy agent moves into a uniformly sampled vacant site iff
	// it would be happy there. Type counts are conserved; vacancies
	// drift in the opposite direction.
	Move
)

// Boundary selects the lattice boundary condition.
type Boundary int

const (
	// BoundaryTorus is the paper's wrap-around boundary (the default).
	BoundaryTorus Boundary = Boundary(topology.Torus)
	// BoundaryOpen is the hard-wall boundary: neighborhoods clamp at
	// the grid edges, so edge agents see truncated windows and
	// per-site thresholds ceil(Tau * |N(u)|).
	BoundaryOpen = Boundary(topology.Open)
)

// String returns "torus" or "open".
func (b Boundary) String() string { return topology.Boundary(b).String() }

// ParseBoundary parses "torus" or "open" ("" parses as torus).
func ParseBoundary(s string) (Boundary, error) {
	b, err := topology.ParseBoundary(s)
	if err != nil {
		return BoundaryTorus, fmt.Errorf("gridseg: %w", err)
	}
	return Boundary(b), nil
}

// Engine selects the Glauber engine implementation. The sequential
// engines are interchangeable bit for bit — same seed, same trajectory,
// same observables (enforced by internal/difftest) — so choosing among
// them is purely about performance. The parallel engine keeps that
// contract at ParStrips == 1 (it delegates to Fast outright); with more
// strips it realizes a different — individually reproducible —
// trajectory of the same process, pinned instead by the
// statistical-equivalence suite.
type Engine int

const (
	// EngineAuto (the zero value) picks Fast for every dynamic —
	// Glauber, Kawasaki, and Move — whenever the neighborhood fits its
	// packed counts; every topology scenario (open boundaries,
	// vacancies, per-site tau) is covered. It falls back to Reference
	// only for very large horizons ((2W+1)^2 > 32767, i.e. W > 90).
	EngineAuto Engine = iota
	// EngineReference is the scalar reference engine of
	// internal/dynamics.
	EngineReference
	// EngineFast is the bit-packed SWAR engine of
	// internal/dynamics/fastglauber, covering all three dynamics;
	// requires (2W+1)^2 <= fastglauber.MaxNeighborhood.
	EngineFast
	// EngineParallel is the domain-decomposed parallel Glauber engine of
	// internal/dynamics/pareng, built on the fast engine's packed state
	// (so it has the same horizon requirement). The Par and ParStrips
	// config fields select the worker count and strip decomposition;
	// Kawasaki and Move have no parallel implementation and fall back to
	// the sequential fast engine.
	EngineParallel
)

// ErrNeighborhoodTooLarge is the typed sentinel wrapped by New when an
// explicit EngineFast request needs a neighborhood (2W+1)^2 beyond the
// packed engine's 16-bit count-lane capacity (W <= 90 fits). EngineAuto
// falls back to the reference engine instead of failing.
var ErrNeighborhoodTooLarge = fastglauber.ErrNeighborhoodTooLarge

// String returns "auto", "reference", "fast", or "parallel".
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineReference:
		return "reference"
	case EngineFast:
		return "fast"
	case EngineParallel:
		return "parallel"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine parses "auto", "reference", "fast", or "parallel" (also
// "" as auto).
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "reference", "ref":
		return EngineReference, nil
	case "fast":
		return EngineFast, nil
	case "parallel", "par":
		return EngineParallel, nil
	}
	return EngineAuto, fmt.Errorf("gridseg: unknown engine %q (want auto, reference, fast, or parallel)", s)
}

// Config specifies a model instance.
type Config struct {
	// N is the torus side length (N x N agents).
	N int
	// W is the horizon: neighborhoods are Chebyshev balls of radius W,
	// containing (2W+1)^2 agents including the center.
	W int
	// Tau is the intolerance in [0, 1]; the integer happiness
	// threshold is ceil(Tau * (2W+1)^2) per the paper's convention.
	Tau float64
	// P is the Bernoulli parameter of the initial configuration; the
	// paper's theorems assume P = 1/2. Zero value defaults to 1/2.
	P float64
	// Seed determines the initial configuration and the evolution;
	// identical configs replay identically.
	Seed uint64
	// Dynamic selects Glauber (default), Kawasaki, or Move evolution
	// (Move requires Rho > 0).
	Dynamic Dynamic
	// Engine selects the Glauber engine implementation; the zero value
	// (EngineAuto) picks the fast bit-packed engine whenever it
	// applies. The sequential engines never change results, only speed;
	// EngineParallel is bit-identical too at ParStrips == 1, while more
	// strips select a different, individually reproducible trajectory.
	Engine Engine
	// Par is the worker count of EngineParallel (0: one per available
	// CPU). A pure execution detail: any worker count replays the same
	// trajectory.
	Par int
	// ParStrips is the strip count of EngineParallel's domain
	// decomposition (0: the machine-independent automatic count; 1:
	// delegate to the sequential fast engine, bit-identical to it).
	// Unlike Par, the strip count is part of the trajectory definition.
	ParStrips int
	// Boundary selects the lattice boundary condition: the paper's
	// wrap-around torus (the zero value) or open hard walls with
	// correctly truncated edge neighborhoods.
	Boundary Boundary
	// Rho is the vacancy fraction in [0, 1): each site is empty
	// independently with probability Rho. Zero (the default) is the
	// paper's fully occupied lattice.
	Rho float64
	// TauDist is the per-site intolerance distribution spec: "" or
	// "global" (every site uses Tau), "mix:a,b:w" (tau=a with
	// probability w, else b), or "uniform:lo:hi". Non-global fields are
	// drawn deterministically from the Seed at construction.
	TauDist string
}

// scenario assembles and validates the topology scenario of a config.
func (cfg Config) scenario() (topology.Scenario, error) {
	dist, err := topology.ParseTauDist(cfg.TauDist)
	if err != nil {
		return topology.Scenario{}, fmt.Errorf("gridseg: %w", err)
	}
	sc := topology.Scenario{Boundary: topology.Boundary(cfg.Boundary), Rho: cfg.Rho, TauDist: dist}
	if err := sc.Validate(); err != nil {
		return topology.Scenario{}, fmt.Errorf("gridseg: %w", err)
	}
	return sc, nil
}

// Model is a running instance of the segregation process.
type Model struct {
	cfg    Config
	sc     topology.Scenario
	engine Engine // resolved engine actually in use
	lat    *grid.Lattice
	taus   []float64 // per-site intolerance field (nil for global tau)
	proc   dynamics.Engine
	kaw    dynamics.SwapEngine
	mov    dynamics.MoveEngine
}

// withDefaults returns the config with its documented zero-value
// defaults resolved (P = 1/2, Glauber dynamics). Both constructors
// normalize through this helper so Config() always reports the
// parameters actually in force.
func (cfg Config) withDefaults() Config {
	if cfg.P == 0 {
		cfg.P = 0.5
	}
	if cfg.Dynamic == 0 {
		cfg.Dynamic = Glauber
	}
	return cfg
}

// buildDynamics attaches the configured evolution process to a model
// whose cfg, sc, lat, and taus fields are already set, resolving the
// engine choice. Auto picks Fast for every dynamic whenever the
// neighborhood fits the packed count lanes — every topology scenario
// (open boundary, vacancies, heterogeneous tau) is covered — and falls
// back to Reference otherwise. An explicit Fast request past the lane
// capacity is an error (ErrNeighborhoodTooLarge), not a silent
// fallback.
func (m *Model) buildDynamics(src *rng.Source) error {
	var err error
	dsc := dynamics.Scenario{Open: m.sc.Boundary == topology.Open, Taus: m.taus}
	resolve := func() Engine {
		engine := m.cfg.Engine
		if engine == EngineAuto {
			engine = EngineReference
			if fastglauber.Fits(m.cfg.W) {
				engine = EngineFast
			}
		}
		return engine
	}
	switch m.cfg.Dynamic {
	case Glauber:
		engine := resolve()
		switch engine {
		case EngineParallel:
			m.proc, err = pareng.New(m.lat, m.cfg.W, m.cfg.Tau, dsc, src,
				pareng.Config{Workers: m.cfg.Par, Strips: m.cfg.ParStrips})
		case EngineFast:
			m.proc, err = fastglauber.NewScenario(m.lat, m.cfg.W, m.cfg.Tau, dsc, src)
		default:
			m.proc, err = dynamics.NewScenario(m.lat, m.cfg.W, m.cfg.Tau, dsc, src)
		}
		m.engine = engine
	case Kawasaki:
		engine := resolve()
		if engine == EngineParallel {
			// Kawasaki has no parallel implementation; the request
			// resolves to the sequential fast engine (reported by
			// Engine()), which keeps the conserved-magnetization
			// semantics exactly.
			engine = EngineFast
		}
		if engine == EngineFast {
			var k *fastglauber.Kawasaki
			if k, err = fastglauber.NewKawasakiScenario(m.lat, m.cfg.W, m.cfg.Tau, dsc, src); err == nil {
				m.kaw = k
			}
		} else {
			var k *dynamics.Kawasaki
			if k, err = dynamics.NewKawasakiScenario(m.lat, m.cfg.W, m.cfg.Tau, dsc, src); err == nil {
				m.kaw = k
			}
		}
		m.engine = engine
		if m.kaw != nil {
			m.proc = m.kaw.Engine()
		}
	case Move:
		if m.cfg.Rho <= 0 {
			return errors.New("gridseg: the move dynamic requires a positive vacancy fraction (rho > 0)")
		}
		engine := resolve()
		if engine == EngineParallel {
			// Move has no parallel implementation either; fall back to
			// the sequential fast engine.
			engine = EngineFast
		}
		if engine == EngineFast {
			var mv *fastglauber.Move
			if mv, err = fastglauber.NewMove(m.lat, m.cfg.W, m.cfg.Tau, dsc, src); err == nil {
				m.mov = mv
			}
		} else {
			var mv *dynamics.Move
			if mv, err = dynamics.NewMove(m.lat, m.cfg.W, m.cfg.Tau, dsc, src); err == nil {
				m.mov = mv
			}
		}
		m.engine = engine
		if m.mov != nil {
			m.proc = m.mov.Engine()
		}
	default:
		return fmt.Errorf("gridseg: unknown dynamic %d", m.cfg.Dynamic)
	}
	if err != nil {
		return fmt.Errorf("gridseg: %w", err)
	}
	return nil
}

// New builds a model from the config and draws its initial
// configuration.
func New(cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 3 {
		return nil, errors.New("gridseg: N must be at least 3")
	}
	if cfg.P < 0 || cfg.P > 1 {
		return nil, errors.New("gridseg: P must be in [0, 1]")
	}
	sc, err := cfg.scenario()
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	// Split(1) draws the configuration, Split(2) drives the dynamics,
	// Split(3) draws the per-site tau field. The streams are
	// independent, and the default scenario consumes Split(1) and
	// Split(2) exactly as before the scenario subsystem (the vacancy
	// draw is skipped at rho=0 and the tau field is nil when global),
	// so pre-scenario seeds replay bit-identically.
	lat := grid.RandomScenario(cfg.N, cfg.P, cfg.Rho, src.Split(1))
	taus := sc.TauDist.SampleField(lat.Sites(), cfg.Tau, src.Split(3))
	m := &Model{cfg: cfg, sc: sc, lat: lat, taus: taus}
	if err := m.buildDynamics(src.Split(2)); err != nil {
		return nil, err
	}
	return m, nil
}

// Scenario returns the canonical description of the model's topology
// scenario ("boundary=torus rho=0 taudist=global" for the default).
func (m *Model) Scenario() string { return m.sc.Canonical() }

// Config returns the configuration the model was built with (with
// defaults resolved; Engine stays as requested — see Engine for the
// resolved choice).
func (m *Model) Config() Config { return m.cfg }

// Engine returns the engine implementation actually in use
// (EngineReference, EngineFast, or EngineParallel — never EngineAuto,
// and never EngineParallel for the Kawasaki and Move dynamics, which
// fall back to EngineFast).
func (m *Model) Engine() Engine { return m.engine }

// Size returns the torus side length.
func (m *Model) Size() int { return m.cfg.N }

// NeighborhoodSize returns N = (2W+1)^2.
func (m *Model) NeighborhoodSize() int { return m.proc.NeighborhoodSize() }

// Threshold returns the integer happiness threshold tau*N.
func (m *Model) Threshold() int { return m.proc.Threshold() }

// EffectiveTau returns the rational intolerance threshold/N actually in
// force (the paper's tau = ceil(tauTilde N)/N).
func (m *Model) EffectiveTau() float64 { return m.proc.Tau() }

// Spin returns +1 or -1 for the agent at (x, y); coordinates wrap.
func (m *Model) Spin(x, y int) int {
	return int(m.lat.Spin(geom.Point{X: x, Y: y}))
}

// Happy reports whether the agent at (x, y) is happy.
func (m *Model) Happy(x, y int) bool {
	return m.proc.Happy(m.lat.Torus().Index(m.lat.Torus().WrapPoint(geom.Point{X: x, Y: y})))
}

// Step advances the model by one effective event. For Glauber dynamics
// this is one flip; for Kawasaki one swap attempt; for Move one
// relocation attempt. The parallel engine with more than one strip is
// batched: one Step advances a whole phase cycle or strip burst, which
// may perform many flips (track Flips for exact progress). It reports
// whether the model can still move.
func (m *Model) Step() bool {
	if m.kaw != nil {
		_, done := m.kaw.StepAttempt()
		return !done
	}
	if m.mov != nil {
		_, done := m.mov.StepAttempt()
		return !done
	}
	_, ok := m.proc.Step()
	return ok
}

// Run advances the model until fixation or until the given number of
// events (<= 0 means unbounded for Glauber; for the attempt-based
// Kawasaki and Move dynamics a budget of 20 n^2 attempts with an n^2
// failure streak is used when maxEvents <= 0). It returns the number
// of effective events performed and whether the model reached a
// terminal state.
func (m *Model) Run(maxEvents int64) (int64, bool) {
	if m.kaw != nil || m.mov != nil {
		budget := maxEvents
		streak := int64(0)
		if budget <= 0 {
			n2 := int64(m.cfg.N) * int64(m.cfg.N)
			budget = 20 * n2
			streak = n2
		}
		if m.kaw != nil {
			return m.kaw.Run(budget, streak)
		}
		return m.mov.Run(budget, streak)
	}
	return m.proc.Run(maxEvents)
}

// RunSampled advances the model exactly like Run(maxEvents) while
// invoking sample approximately every `every` flips, plus exactly once
// with final=true when the run terminates (fixation, event budget, or
// failure-streak cutoff). The trajectory is bit-identical to Run's:
// for Glauber the engine's Run is chunked (the Step sequence is
// unchanged), and for the attempt-based Kawasaki and Move dynamics the
// budget/streak loop is replicated around StepAttempt rather than
// chunking the engine's Run — chunking would reset the failure-streak
// counter at every boundary and silently change when runs give up.
// This is the snapshot tap behind live trajectory streaming: the
// callback observes the model mid-run through View/Flips/
// SegregationStats and must not mutate it.
func (m *Model) RunSampled(maxEvents, every int64, sample func(final bool)) (int64, bool) {
	if every < 1 {
		every = 1
	}
	emit := func(final bool) {
		if sample != nil {
			sample(final)
		}
	}
	if m.kaw != nil || m.mov != nil {
		budget := maxEvents
		var failLimit int64
		if budget <= 0 {
			n2 := int64(m.cfg.N) * int64(m.cfg.N)
			budget = 20 * n2
			failLimit = n2
		}
		var step func() (bool, bool)
		if m.kaw != nil {
			step = m.kaw.StepAttempt
		} else {
			step = m.mov.StepAttempt
		}
		var performed, streak int64
		lastSample := m.Flips()
		for a := int64(0); a < budget; a++ {
			ok, done := step()
			if done {
				emit(true)
				return performed, true
			}
			if ok {
				performed++
				streak = 0
				if m.Flips()-lastSample >= every {
					emit(false)
					lastSample = m.Flips()
				}
			} else {
				streak++
				if failLimit > 0 && streak >= failLimit {
					emit(true)
					return performed, false
				}
			}
		}
		emit(true)
		return performed, false
	}
	var performed int64
	for {
		chunk := every
		if maxEvents > 0 {
			remaining := maxEvents - performed
			if remaining < chunk {
				chunk = remaining
			}
		}
		p, done := m.proc.Run(chunk)
		performed += p
		if done {
			emit(true)
			return performed, true
		}
		if maxEvents > 0 && performed >= maxEvents {
			emit(true)
			return performed, false
		}
		emit(false)
	}
}

// Phi returns the paper's Lyapunov function: the sum over all agents u
// of the number of same-type agents in N(u). It strictly increases
// with every admissible Glauber flip.
func (m *Model) Phi() int64 { return m.proc.Phi() }

// FlippableCount returns the number of currently admissible Glauber
// flips (0 for Kawasaki and Move models, whose moves are pair swaps
// and relocations).
func (m *Model) FlippableCount() int {
	if m.kaw != nil || m.mov != nil {
		return 0
	}
	return m.proc.FlippableCount()
}

// Fixated reports whether no admissible move remains (Glauber), no
// unhappy pair exists (Kawasaki), or no unhappy agent remains (Move).
func (m *Model) Fixated() bool {
	if m.kaw != nil {
		p, mi := m.kaw.UnhappyByType()
		return p == 0 || mi == 0
	}
	if m.mov != nil {
		unhappy, _ := m.mov.Counts()
		return unhappy == 0
	}
	return m.proc.Fixated()
}

// Flips returns the number of effective flips (Glauber), twice the
// number of swaps (Kawasaki, two sites change), or the number of
// successful relocations (Move) performed so far.
func (m *Model) Flips() int64 {
	if m.kaw != nil {
		return 2 * m.kaw.Swaps()
	}
	if m.mov != nil {
		return m.mov.Moves()
	}
	return m.proc.Flips()
}

// SamplerSizes renders the sizes of the dynamic's candidate samplers
// (the internal/sampleset sets uniform selection draws from):
// admissible flips for Glauber, unhappy agents per type for Kawasaki,
// and unhappy agents plus vacant sites for Move.
func (m *Model) SamplerSizes() string {
	if m.kaw != nil {
		p, mi := m.kaw.UnhappyByType()
		return fmt.Sprintf("unhappy+=%d unhappy-=%d", p, mi)
	}
	if m.mov != nil {
		unhappy, vacant := m.mov.Counts()
		return fmt.Sprintf("unhappy=%d vacant=%d", unhappy, vacant)
	}
	return fmt.Sprintf("flippable=%d", m.proc.FlippableCount())
}

// Time returns the elapsed continuous (Poisson-clock) time of a Glauber
// model; it returns NaN for the attempt-based Kawasaki and Move
// models, whose formulations are not clocked.
func (m *Model) Time() float64 {
	if m.kaw != nil || m.mov != nil {
		return math.NaN()
	}
	return m.proc.Time()
}

// Stats summarizes the segregation state of a configuration.
type Stats struct {
	HappyFraction          float64
	UnhappyCount           int
	InterfaceDensity       float64
	MeanSameFraction       float64
	LargestClusterFraction float64
	Magnetization          float64
	Flips                  int64
}

// SegregationStats computes the summary observables of the current
// configuration. The observables are scenario-aware — open boundaries
// stop windows, adjacencies, and clusters at the edges, and vacancy
// lattices measure agents only — and reduce exactly to the classic
// definitions on the default scenario.
func (m *Model) SegregationStats() Stats {
	open := m.sc.Boundary == topology.Open
	v := m.View()
	cl := measure.ClusterStatsView(v, open)
	largest := cl.LargestPlus
	if cl.LargestMinus > largest {
		largest = cl.LargestMinus
	}
	return Stats{
		HappyFraction:          m.proc.HappyFraction(),
		UnhappyCount:           m.proc.UnhappyCount(),
		InterfaceDensity:       measure.InterfaceDensityView(v, open),
		MeanSameFraction:       measure.MeanSameFractionView(v, m.cfg.W, open),
		LargestClusterFraction: float64(largest) / float64(m.lat.Sites()),
		Magnetization:          measure.MagnetizationView(v),
		Flips:                  m.Flips(),
	}
}

// View returns a read-only view of the current configuration. Every
// engine keeps the reference lattice in lockstep, so the view is live:
// it reflects the state after the most recent step.
func (m *Model) View() grid.LatticeView { return m.lat }

// String renders the Stats compactly.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "happy=%.3f unhappy=%d interface=%.3f same=%.3f largest=%.3f magnetization=%+.3f flips=%d",
		s.HappyFraction, s.UnhappyCount, s.InterfaceDensity, s.MeanSameFraction,
		s.LargestClusterFraction, s.Magnetization, s.Flips)
	return b.String()
}

// MonoRegionSize returns M(u): the size of the largest monochromatic
// neighborhood (square of odd side) containing the agent at (x, y) —
// the observable of Theorem 1.
func (m *Model) MonoRegionSize(x, y int) int {
	radii := measure.CenteredRadii(m.lat)
	return measure.MonoRegionSize(m.lat, radii, m.lat.Torus().WrapPoint(geom.Point{X: x, Y: y}))
}

// AlmostMonoRegionSize returns M'(u): the size of the largest
// neighborhood containing (x, y) whose minority/majority ratio is at
// most beta — the observable of Theorem 2 (the paper takes
// beta = e^{-eps N}).
func (m *Model) AlmostMonoRegionSize(x, y int, beta float64) int {
	pre := grid.NewPrefix(m.lat)
	return measure.AlmostMonoSize(m.lat, pre, m.lat.Torus().WrapPoint(geom.Point{X: x, Y: y}), beta, 0)
}

// ASCII renders the configuration with happiness marks: '#' happy +1,
// '.' happy -1, 'P' unhappy +1, 'm' unhappy -1, ' ' vacant. The
// happiness marks come from the live engine, so every scenario
// (truncated edge windows, vacancies, per-site thresholds) renders
// faithfully.
func (m *Model) ASCII() string {
	return viz.ASCIIWith(m.lat, m.proc.Happy)
}

// String renders the raw configuration as '+'/'-' rows.
func (m *Model) String() string { return m.lat.String() }

// WritePNG renders the configuration in the paper's Figure 1 palette
// (green/blue happy, white/yellow unhappy, grey vacant) at the given
// pixel scale, with happiness marks from the live engine.
func (m *Model) WritePNG(out io.Writer, scale int) error {
	return png.Encode(out, viz.RenderWith(m.lat, m.proc.Happy, scale))
}

// ---- Theory facade -------------------------------------------------

// Tau1 returns the critical intolerance tau1 ~= 0.433 of Eq. (1): the
// lower endpoint of the Theorem 1 monochromatic interval.
func Tau1() float64 { return theory.Tau1() }

// Tau2 returns the critical intolerance tau2 = 0.34375 of Eq. (3): the
// lower endpoint of the Theorem 2 almost-monochromatic interval.
func Tau2() float64 { return theory.Tau2 }

// TriggerEpsilon returns f(tau) from Eq. (10): the infimum margin eps'
// for which a radical region can trigger the segregation cascade
// (Fig. 6). NaN outside (0, 1/2].
func TriggerEpsilon(tau float64) float64 { return theory.FEpsilon(tau) }

// Exponents returns the asymptotic exponent multipliers (a, b) of
// Theorems 1 and 2 at the given intolerance (Fig. 3):
// 2^{aN - o(N)} <= E[M] <= 2^{bN + o(N)}. NaN outside
// (tau2, 1-tau2) \ {1/2}.
func Exponents(tau float64) (a, b float64) { return theory.Exponents(tau) }

// ClassifyTau names the regime of an intolerance value per the paper
// and the cited prior work: "static", "open (1/4, tau2]",
// "almost monochromatic", "monochromatic", or "open (tau = 1/2)".
func ClassifyTau(tau float64) string { return theory.Classify(tau).String() }

// Interval is an intolerance range with a regime label (Fig. 2).
type Interval struct {
	Lo, Hi float64
	Label  string
}

// Intervals returns the Fig. 2 interval structure.
func Intervals() []Interval {
	var out []Interval
	for _, iv := range theory.Intervals() {
		out = append(out, Interval{Lo: iv.Lo, Hi: iv.Hi, Label: iv.Label})
	}
	return out
}
