package gridseg

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"gridseg/internal/batch"
	"gridseg/internal/measure"
	"gridseg/internal/rng"
	"gridseg/internal/store"
)

// CellStore is the content-addressed result cache consulted and
// filled by grid sweeps. Keys are canonical hashes of the full cell
// spec (parameters, metric columns, derived seed, schema version — see
// internal/store), so a cached cell is valid for any grid that
// contains it: resubmitting an identical or overlapping grid
// recomputes nothing. Implementations must be safe for concurrent use.
//
// Use OpenStore for the durable file-backed store shared by cmd/sweep
// -cache and cmd/segd, or NewMemoryStore for an in-process cache.
type CellStore interface {
	Get(key string) ([]float64, bool, error)
	Put(key string, values []float64) error
}

// OpenStore opens (creating it if needed) the file-backed
// content-addressed result store rooted at dir.
func OpenStore(dir string) (CellStore, error) {
	s, err := store.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("gridseg: %w", err)
	}
	return s, nil
}

// NewMemoryStore returns an in-process CellStore, useful for tests and
// for servers that do not need persistence.
func NewMemoryStore() CellStore { return store.NewMemory() }

// CacheStats counts how the cells of a sweep were satisfied.
type CacheStats struct {
	// Hits is the number of cells served from the checkpoint or the
	// result store without recomputation.
	Hits int
	// Misses is the number of cells computed this run.
	Misses int
	// Err is the first result-store failure, if any. The store is only
	// a cache: on failure the sweep finishes by computing, and the
	// affected cells are simply not cached.
	Err string
}

// CellProgress describes one completed cell for progress reporting.
type CellProgress struct {
	Done, Total int
	Dynamic     string
	N, W        int
	Tau, P      float64
	// Scenario coordinates of the cell: boundary condition, vacancy
	// fraction, and per-site intolerance distribution (canonical
	// labels; "torus"/0/"global" on default cells).
	Boundary string
	Rho      float64
	TauDist  string
	Extra    float64
	Rep      int
	// Cached reports whether the cell was served from the checkpoint
	// or the result store instead of being computed.
	Cached bool
	// Worker names the fabric worker that computed the cell when the
	// sweep ran in cluster mode; empty for in-process sweeps.
	Worker string
}

// GridOptions configures a parameter-grid sweep.
type GridOptions struct {
	// Seed determines all randomness; identical (spec, seed) pairs
	// replay identically, for any worker count.
	Seed uint64
	// Workers bounds the sweep worker pool; 0 means GOMAXPROCS.
	Workers int
	// CheckpointPath, when non-empty, streams completed cells to a
	// JSON checkpoint and resumes from it on restart, so long
	// full-scale sweeps survive interruption. Checkpoints remain valid
	// across engine selections: engines are bit-identical.
	CheckpointPath string
	// Engine selects the Glauber engine implementation when the grid
	// spec has no engine= key (EngineAuto picks the fast bit-packed
	// engine whenever it applies). Never changes results, only speed.
	Engine Engine
	// Store, when non-nil, is the shared content-addressed result
	// cache: cells already in the store are served without
	// recomputation, computed cells are written back. Because cell
	// seeds derive from cell identity, overlapping grids share cells.
	Store CellStore
	// Progress, when non-nil, is invoked after each completed cell.
	Progress func(done, total int)
	// ProgressCell, when non-nil, is invoked after each completed cell
	// with its parameters and cache provenance (the HTTP service uses
	// it to stream per-cell SSE events).
	ProgressCell func(p CellProgress)
	// Snapshot, when non-nil, taps the trajectories of computed cells:
	// every SnapshotEvery flips — and once at each cell's end — the
	// runner measures the live configuration and delivers a LiveSample
	// carrying the observables and a binary grid frame. The tap is
	// purely observational: it never draws from a cell's random stream,
	// so result bytes are identical with or without it. Cells served
	// from the checkpoint or the result store never run, hence never
	// produce samples. Snapshot may be called concurrently from the
	// sweep workers and must not block for long — a stalled consumer
	// stalls the cell that called it.
	Snapshot func(LiveSample)
	// SnapshotEvery is the flip interval between live samples; values
	// < 1 mean DefaultSnapshotEvery.
	SnapshotEvery int64
	// SnapshotActive, when non-nil, is consulted before measuring each
	// non-final sample: returning false skips the measurement and the
	// frame encoding entirely, so an unwatched run pays almost nothing
	// for the tap. Final samples are always delivered.
	SnapshotActive func() bool
}

// DefaultSnapshotEvery is the live-sample flip interval used when
// GridOptions.SnapshotEvery is unset.
const DefaultSnapshotEvery = 2048

// LiveSample is one live snapshot of a running sweep cell: the cell's
// identity, the instantaneous observables, and the configuration
// encoded in the binary grid codec (grid.UnmarshalBinary decodes it).
type LiveSample struct {
	// Cell identifies the sampled cell. Done is zero (the cell has not
	// completed); Total is the size of the surrounding sweep.
	Cell CellProgress
	// Flips is the trajectory clock at the sample (effective flips for
	// Glauber, twice the swaps for Kawasaki, moves for Move).
	Flips int64
	// Phi is the paper's Lyapunov function at the sample.
	Phi int64
	// Observables of the sampled configuration (scenario-aware, like
	// SegregationStats).
	UnhappyCount     int
	HappyFraction    float64
	InterfaceDensity float64
	InterfaceLength  float64
	Curvature        float64
	LargestFraction  float64
	// Frame is the lattice snapshot in the binary grid codec; nil if
	// encoding failed (never expected).
	Frame []byte
	// Final marks the cell's terminal sample, taken at fixation or
	// budget exhaustion.
	Final bool
}

// GridResult holds the per-replicate metrics of a completed sweep.
type GridResult struct {
	rs *batch.ResultSet
}

// sweepColumns is the metric vector measured at fixation for every
// cell of a grid sweep.
var sweepColumns = []string{
	"happy_frac", "unhappy", "iface_density", "mean_same_frac",
	"largest_frac", "magnetization", "mean_M", "flips", "fixated",
}

// geomColumns is the opt-in geometry schema (grid key geom=true): the
// standard columns plus the interface-geometry observables of
// internal/measure. Kept strictly additive and opt-in so default
// artifacts, store keys, and goldens stay byte-identical.
var geomColumns = append(append([]string{}, sweepColumns...),
	"iface_length", "curvature")

// columnsFor returns the metric schema of a parsed grid. The column
// list is part of every cell's store key and of the grid fingerprint,
// so geometry sweeps get distinct cache entries and grid IDs without
// any schema-version bump.
func columnsFor(g batch.Grid) []string {
	if g.Geometry {
		return geomColumns
	}
	return sweepColumns
}

// parseGridSpec is the single structural gatekeeper for sweep specs:
// the batch syntax plus RunGrid's requirement that the n, w, and tau
// axes are set. RunGrid, ValidateGridSpec, and (through them) the
// HTTP service all validate through here, so the rules cannot drift.
func parseGridSpec(spec string) (batch.Grid, error) {
	g, err := batch.ParseGrid(spec)
	if err != nil {
		return batch.Grid{}, fmt.Errorf("gridseg: %w", err)
	}
	if len(g.Ns) == 0 || len(g.Ws) == 0 || len(g.Taus) == 0 {
		return batch.Grid{}, fmt.Errorf("gridseg: grid spec %q must set n, w, and tau", spec)
	}
	return g, nil
}

// ValidateGridSpec checks a sweep spec exactly as RunGrid would and
// returns the number of cells in the expanded grid. The HTTP service
// uses it to reject invalid submissions synchronously.
func ValidateGridSpec(spec string) (cells int, err error) {
	g, err := parseGridSpec(spec)
	if err != nil {
		return 0, err
	}
	return g.Size(), nil
}

// RunGrid parses a -grid spec (see internal/batch.ParseGrid; e.g.
// "n=96,240 w=2:4 tau=0.40:0.48:0.02 reps=8") and runs every cell of
// the expanded grid to fixation on the batch engine, measuring the
// standard segregation observables. Results are byte-identical for
// any Workers setting.
func RunGrid(spec string, opt GridOptions) (*GridResult, error) {
	g, err := parseGridSpec(spec)
	if err != nil {
		return nil, err
	}
	if g.Engine == "" {
		g.Engine = opt.Engine.String()
	}
	bopt := batch.Options{
		Seed:           opt.Seed,
		Scope:          gridScope,
		Workers:        opt.Workers,
		CheckpointPath: opt.CheckpointPath,
		Store:          opt.Store,
	}
	if opt.Progress != nil || opt.ProgressCell != nil {
		bopt.Progress = func(done, total int, c batch.Cell, cached bool) {
			if opt.Progress != nil {
				opt.Progress(done, total)
			}
			if opt.ProgressCell != nil {
				opt.ProgressCell(CellProgress{
					Done: done, Total: total,
					Dynamic: c.Dynamic, N: c.N, W: c.W,
					Tau: c.Tau, P: c.P,
					Boundary: c.Boundary, Rho: c.Rho, TauDist: c.TauDist,
					Extra: c.Extra, Rep: c.Rep,
					Cached: cached,
				})
			}
		}
	}
	rs, err := batch.Run(g, columnsFor(g), cellRunner(g.Geometry, opt, g.Size()), bopt)
	if err != nil {
		return nil, fmt.Errorf("gridseg: %w", err)
	}
	return &GridResult{rs: rs}, nil
}

// gridScope namespaces the random streams of RunGrid cells. It is
// shared by every client of the result store (cmd/sweep -cache, the
// cmd/segd service), so they all address the same cached cells.
const gridScope = "grid"

// GridID returns the content-addressed identity of a (spec, seed)
// sweep: a stable hex digest of the normalized grid, the seed, and the
// measured columns. Identical or equivalent specs (same axes, however
// written) map to the same ID; the HTTP service uses it to name grid
// runs so resubmissions attach to the existing run.
func GridID(spec string, seed uint64) (string, error) {
	g, err := batch.ParseGrid(spec)
	if err != nil {
		return "", fmt.Errorf("gridseg: %w", err)
	}
	h := sha256.Sum256([]byte(g.Fingerprint(seed, gridScope, columnsFor(g))))
	return hex.EncodeToString(h[:8]), nil
}

// buildSweepModel constructs the model of one grid cell exactly as the
// canonical runner always has: the cell seed drawn first from the
// cell's source, the parallel engine pinned to delegation mode.
func buildSweepModel(c batch.Cell, src *rng.Source) (*Model, error) {
	dyn := Glauber
	switch c.Dynamic {
	case batch.Kawasaki:
		dyn = Kawasaki
	case batch.Move:
		dyn = Move
	}
	engine, err := ParseEngine(c.Engine)
	if err != nil {
		return nil, err
	}
	boundary, err := ParseBoundary(c.Boundary)
	if err != nil {
		return nil, err
	}
	return New(Config{
		N: c.N, W: c.W, Tau: c.Tau, P: c.P,
		Seed: src.Uint64(), Dynamic: dyn, Engine: engine,
		Boundary: boundary, Rho: c.Rho, TauDist: c.TauDist,
		// Sweeps pin the parallel engine to its delegation mode: one
		// strip is bit-identical to the fast engine, so the engine label
		// stays an execution detail and cached cells, checkpoints, and
		// goldens remain valid across engines. Multi-strip decomposition
		// is reserved for single giant runs (cmd/segsim, cmd/bench).
		Par: c.Par, ParStrips: 1,
	})
}

// measureSweepCell measures a finished cell in the standard column
// order, appending the geometry columns when the grid opted in. A pure
// read of the final configuration: never touches the random stream.
func measureSweepCell(m *Model, c batch.Cell, fixated, geometry bool) []float64 {
	st := m.SegregationStats()
	meanM := measure.MeanMonoRegionSize(m.lat, measure.SamplePoints(c.N, 5))
	fix := 0.0
	if fixated {
		fix = 1
	}
	values := []float64{
		st.HappyFraction, float64(st.UnhappyCount), st.InterfaceDensity,
		st.MeanSameFraction, st.LargestClusterFraction, st.Magnetization,
		meanM, float64(st.Flips), fix,
	}
	if geometry {
		open := c.Boundary == batch.BoundaryOpen
		values = append(values,
			measure.InterfaceLengthView(m.View(), open),
			measure.BoundaryCurvatureView(m.View(), open))
	}
	return values
}

// sweepCell runs one grid cell to fixation and measures it — the
// canonical runner of plain (geom=false, untapped) sweeps.
func sweepCell(c batch.Cell, src *rng.Source) ([]float64, error) {
	m, err := buildSweepModel(c, src)
	if err != nil {
		return nil, err
	}
	_, fixated := m.Run(0)
	metricFlips.Add(uint64(m.Flips()))
	return measureSweepCell(m, c, fixated, false), nil
}

// cellRunner returns the batch runner of a grid: sweepCell itself for
// plain untapped grids, otherwise a wrapper that measures geometry
// columns and/or streams live samples through the snapshot tap. Every
// variant drives the identical trajectory (RunSampled is bit-identical
// to Run), so the first nine columns of a geometry sweep equal the
// plain sweep's and the tap never changes bytes.
func cellRunner(geometry bool, opt GridOptions, total int) func(batch.Cell, *rng.Source) ([]float64, error) {
	if !geometry && opt.Snapshot == nil {
		return sweepCell
	}
	return func(c batch.Cell, src *rng.Source) ([]float64, error) {
		m, err := buildSweepModel(c, src)
		if err != nil {
			return nil, err
		}
		var fixated bool
		if opt.Snapshot != nil {
			every := opt.SnapshotEvery
			if every < 1 {
				every = DefaultSnapshotEvery
			}
			_, fixated = m.RunSampled(0, every, func(final bool) {
				if !final && opt.SnapshotActive != nil && !opt.SnapshotActive() {
					return
				}
				opt.Snapshot(takeLiveSample(m, c, total, final))
			})
		} else {
			_, fixated = m.Run(0)
		}
		metricFlips.Add(uint64(m.Flips()))
		return measureSweepCell(m, c, fixated, geometry), nil
	}
}

// takeLiveSample measures the model's live state into a LiveSample. A
// pure read: the trajectory and its random stream are untouched.
func takeLiveSample(m *Model, c batch.Cell, total int, final bool) LiveSample {
	st := m.SegregationStats()
	open := c.Boundary == batch.BoundaryOpen
	frame, _ := m.MarshalConfiguration()
	return LiveSample{
		Cell: CellProgress{
			Total:   total,
			Dynamic: c.Dynamic, N: c.N, W: c.W,
			Tau: c.Tau, P: c.P,
			Boundary: c.Boundary, Rho: c.Rho, TauDist: c.TauDist,
			Extra: c.Extra, Rep: c.Rep,
		},
		Flips:            m.Flips(),
		Phi:              m.Phi(),
		UnhappyCount:     st.UnhappyCount,
		HappyFraction:    st.HappyFraction,
		InterfaceDensity: st.InterfaceDensity,
		InterfaceLength:  measure.InterfaceLengthView(m.View(), open),
		Curvature:        measure.BoundaryCurvatureView(m.View(), open),
		LargestFraction:  st.LargestClusterFraction,
		Frame:            frame,
		Final:            final,
	}
}

// Len returns the number of cells (parameter combinations times
// replicates) in the sweep.
func (r *GridResult) Len() int { return r.rs.Len() }

// Cache reports how many cells were served from the checkpoint or the
// result store versus computed this run. Caching never changes the
// result bytes.
func (r *GridResult) Cache() CacheStats {
	return CacheStats{Hits: r.rs.Cache.Hits, Misses: r.rs.Cache.Misses, Err: r.rs.Cache.Err}
}

// Text renders the aggregated sweep (one row per parameter
// combination, metrics averaged over replicates) as an aligned table.
func (r *GridResult) Text() string {
	return r.rs.SummaryTable("Grid sweep (replicate means)").String()
}

// WriteCSV streams the full per-replicate result table as CSV.
func (r *GridResult) WriteCSV(w io.Writer) error { return r.rs.WriteCSV(w) }

// WriteJSON emits the full per-replicate results as one JSON document.
func (r *GridResult) WriteJSON(w io.Writer) error { return r.rs.WriteJSON(w) }
