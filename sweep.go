package gridseg

import (
	"fmt"
	"io"

	"gridseg/internal/batch"
	"gridseg/internal/measure"
	"gridseg/internal/rng"
)

// GridOptions configures a parameter-grid sweep.
type GridOptions struct {
	// Seed determines all randomness; identical (spec, seed) pairs
	// replay identically, for any worker count.
	Seed uint64
	// Workers bounds the sweep worker pool; 0 means GOMAXPROCS.
	Workers int
	// CheckpointPath, when non-empty, streams completed cells to a
	// JSON checkpoint and resumes from it on restart, so long
	// full-scale sweeps survive interruption. Checkpoints remain valid
	// across engine selections: engines are bit-identical.
	CheckpointPath string
	// Engine selects the Glauber engine implementation when the grid
	// spec has no engine= key (EngineAuto picks the fast bit-packed
	// engine whenever it applies). Never changes results, only speed.
	Engine Engine
	// Progress, when non-nil, is invoked after each completed cell.
	Progress func(done, total int)
}

// GridResult holds the per-replicate metrics of a completed sweep.
type GridResult struct {
	rs *batch.ResultSet
}

// sweepColumns is the metric vector measured at fixation for every
// cell of a grid sweep.
var sweepColumns = []string{
	"happy_frac", "unhappy", "iface_density", "mean_same_frac",
	"largest_frac", "magnetization", "mean_M", "flips", "fixated",
}

// RunGrid parses a -grid spec (see internal/batch.ParseGrid; e.g.
// "n=96,240 w=2:4 tau=0.40:0.48:0.02 reps=8") and runs every cell of
// the expanded grid to fixation on the batch engine, measuring the
// standard segregation observables. Results are byte-identical for
// any Workers setting.
func RunGrid(spec string, opt GridOptions) (*GridResult, error) {
	g, err := batch.ParseGrid(spec)
	if err != nil {
		return nil, fmt.Errorf("gridseg: %w", err)
	}
	if len(g.Ns) == 0 || len(g.Ws) == 0 || len(g.Taus) == 0 {
		return nil, fmt.Errorf("gridseg: grid spec %q must set n, w, and tau", spec)
	}
	if g.Engine == "" {
		g.Engine = opt.Engine.String()
	}
	bopt := batch.Options{
		Seed:           opt.Seed,
		Scope:          "grid",
		Workers:        opt.Workers,
		CheckpointPath: opt.CheckpointPath,
	}
	if opt.Progress != nil {
		bopt.Progress = func(done, total int, c batch.Cell) { opt.Progress(done, total) }
	}
	rs, err := batch.Run(g, sweepColumns, sweepCell, bopt)
	if err != nil {
		return nil, fmt.Errorf("gridseg: %w", err)
	}
	return &GridResult{rs: rs}, nil
}

// sweepCell runs one grid cell to fixation and measures it.
func sweepCell(c batch.Cell, src *rng.Source) ([]float64, error) {
	dyn := Glauber
	if c.Dynamic == batch.Kawasaki {
		dyn = Kawasaki
	}
	engine, err := ParseEngine(c.Engine)
	if err != nil {
		return nil, err
	}
	if dyn == Kawasaki && engine == EngineFast {
		// The fast engine is Glauber-only; for Kawasaki cells an
		// explicit fast request degrades to auto (= reference) so
		// mixed-dynamic grids can still pin the Glauber engine.
		engine = EngineAuto
	}
	m, err := New(Config{
		N: c.N, W: c.W, Tau: c.Tau, P: c.P,
		Seed: src.Uint64(), Dynamic: dyn, Engine: engine,
	})
	if err != nil {
		return nil, err
	}
	_, fixated := m.Run(0)
	st := m.SegregationStats()
	radii := measure.CenteredRadii(m.lat)
	var meanM float64
	probes := measure.SamplePoints(c.N, 5)
	for _, pt := range probes {
		meanM += float64(measure.MonoRegionSize(m.lat, radii, pt))
	}
	meanM /= float64(len(probes))
	fix := 0.0
	if fixated {
		fix = 1
	}
	return []float64{
		st.HappyFraction, float64(st.UnhappyCount), st.InterfaceDensity,
		st.MeanSameFraction, st.LargestClusterFraction, st.Magnetization,
		meanM, float64(st.Flips), fix,
	}, nil
}

// Len returns the number of cells (parameter combinations times
// replicates) in the sweep.
func (r *GridResult) Len() int { return r.rs.Len() }

// Text renders the aggregated sweep (one row per parameter
// combination, metrics averaged over replicates) as an aligned table.
func (r *GridResult) Text() string {
	return r.rs.SummaryTable("Grid sweep (replicate means)").String()
}

// WriteCSV streams the full per-replicate result table as CSV.
func (r *GridResult) WriteCSV(w io.Writer) error { return r.rs.WriteCSV(w) }

// WriteJSON emits the full per-replicate results as one JSON document.
func (r *GridResult) WriteJSON(w io.Writer) error { return r.rs.WriteJSON(w) }
