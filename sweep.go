package gridseg

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"gridseg/internal/batch"
	"gridseg/internal/measure"
	"gridseg/internal/rng"
	"gridseg/internal/store"
)

// CellStore is the content-addressed result cache consulted and
// filled by grid sweeps. Keys are canonical hashes of the full cell
// spec (parameters, metric columns, derived seed, schema version — see
// internal/store), so a cached cell is valid for any grid that
// contains it: resubmitting an identical or overlapping grid
// recomputes nothing. Implementations must be safe for concurrent use.
//
// Use OpenStore for the durable file-backed store shared by cmd/sweep
// -cache and cmd/segd, or NewMemoryStore for an in-process cache.
type CellStore interface {
	Get(key string) ([]float64, bool, error)
	Put(key string, values []float64) error
}

// OpenStore opens (creating it if needed) the file-backed
// content-addressed result store rooted at dir.
func OpenStore(dir string) (CellStore, error) {
	s, err := store.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("gridseg: %w", err)
	}
	return s, nil
}

// NewMemoryStore returns an in-process CellStore, useful for tests and
// for servers that do not need persistence.
func NewMemoryStore() CellStore { return store.NewMemory() }

// CacheStats counts how the cells of a sweep were satisfied.
type CacheStats struct {
	// Hits is the number of cells served from the checkpoint or the
	// result store without recomputation.
	Hits int
	// Misses is the number of cells computed this run.
	Misses int
	// Err is the first result-store failure, if any. The store is only
	// a cache: on failure the sweep finishes by computing, and the
	// affected cells are simply not cached.
	Err string
}

// CellProgress describes one completed cell for progress reporting.
type CellProgress struct {
	Done, Total int
	Dynamic     string
	N, W        int
	Tau, P      float64
	// Scenario coordinates of the cell: boundary condition, vacancy
	// fraction, and per-site intolerance distribution (canonical
	// labels; "torus"/0/"global" on default cells).
	Boundary string
	Rho      float64
	TauDist  string
	Extra    float64
	Rep      int
	// Cached reports whether the cell was served from the checkpoint
	// or the result store instead of being computed.
	Cached bool
	// Worker names the fabric worker that computed the cell when the
	// sweep ran in cluster mode; empty for in-process sweeps.
	Worker string
}

// GridOptions configures a parameter-grid sweep.
type GridOptions struct {
	// Seed determines all randomness; identical (spec, seed) pairs
	// replay identically, for any worker count.
	Seed uint64
	// Workers bounds the sweep worker pool; 0 means GOMAXPROCS.
	Workers int
	// CheckpointPath, when non-empty, streams completed cells to a
	// JSON checkpoint and resumes from it on restart, so long
	// full-scale sweeps survive interruption. Checkpoints remain valid
	// across engine selections: engines are bit-identical.
	CheckpointPath string
	// Engine selects the Glauber engine implementation when the grid
	// spec has no engine= key (EngineAuto picks the fast bit-packed
	// engine whenever it applies). Never changes results, only speed.
	Engine Engine
	// Store, when non-nil, is the shared content-addressed result
	// cache: cells already in the store are served without
	// recomputation, computed cells are written back. Because cell
	// seeds derive from cell identity, overlapping grids share cells.
	Store CellStore
	// Progress, when non-nil, is invoked after each completed cell.
	Progress func(done, total int)
	// ProgressCell, when non-nil, is invoked after each completed cell
	// with its parameters and cache provenance (the HTTP service uses
	// it to stream per-cell SSE events).
	ProgressCell func(p CellProgress)
}

// GridResult holds the per-replicate metrics of a completed sweep.
type GridResult struct {
	rs *batch.ResultSet
}

// sweepColumns is the metric vector measured at fixation for every
// cell of a grid sweep.
var sweepColumns = []string{
	"happy_frac", "unhappy", "iface_density", "mean_same_frac",
	"largest_frac", "magnetization", "mean_M", "flips", "fixated",
}

// parseGridSpec is the single structural gatekeeper for sweep specs:
// the batch syntax plus RunGrid's requirement that the n, w, and tau
// axes are set. RunGrid, ValidateGridSpec, and (through them) the
// HTTP service all validate through here, so the rules cannot drift.
func parseGridSpec(spec string) (batch.Grid, error) {
	g, err := batch.ParseGrid(spec)
	if err != nil {
		return batch.Grid{}, fmt.Errorf("gridseg: %w", err)
	}
	if len(g.Ns) == 0 || len(g.Ws) == 0 || len(g.Taus) == 0 {
		return batch.Grid{}, fmt.Errorf("gridseg: grid spec %q must set n, w, and tau", spec)
	}
	return g, nil
}

// ValidateGridSpec checks a sweep spec exactly as RunGrid would and
// returns the number of cells in the expanded grid. The HTTP service
// uses it to reject invalid submissions synchronously.
func ValidateGridSpec(spec string) (cells int, err error) {
	g, err := parseGridSpec(spec)
	if err != nil {
		return 0, err
	}
	return g.Size(), nil
}

// RunGrid parses a -grid spec (see internal/batch.ParseGrid; e.g.
// "n=96,240 w=2:4 tau=0.40:0.48:0.02 reps=8") and runs every cell of
// the expanded grid to fixation on the batch engine, measuring the
// standard segregation observables. Results are byte-identical for
// any Workers setting.
func RunGrid(spec string, opt GridOptions) (*GridResult, error) {
	g, err := parseGridSpec(spec)
	if err != nil {
		return nil, err
	}
	if g.Engine == "" {
		g.Engine = opt.Engine.String()
	}
	bopt := batch.Options{
		Seed:           opt.Seed,
		Scope:          gridScope,
		Workers:        opt.Workers,
		CheckpointPath: opt.CheckpointPath,
		Store:          opt.Store,
	}
	if opt.Progress != nil || opt.ProgressCell != nil {
		bopt.Progress = func(done, total int, c batch.Cell, cached bool) {
			if opt.Progress != nil {
				opt.Progress(done, total)
			}
			if opt.ProgressCell != nil {
				opt.ProgressCell(CellProgress{
					Done: done, Total: total,
					Dynamic: c.Dynamic, N: c.N, W: c.W,
					Tau: c.Tau, P: c.P,
					Boundary: c.Boundary, Rho: c.Rho, TauDist: c.TauDist,
					Extra: c.Extra, Rep: c.Rep,
					Cached: cached,
				})
			}
		}
	}
	rs, err := batch.Run(g, sweepColumns, sweepCell, bopt)
	if err != nil {
		return nil, fmt.Errorf("gridseg: %w", err)
	}
	return &GridResult{rs: rs}, nil
}

// gridScope namespaces the random streams of RunGrid cells. It is
// shared by every client of the result store (cmd/sweep -cache, the
// cmd/segd service), so they all address the same cached cells.
const gridScope = "grid"

// GridID returns the content-addressed identity of a (spec, seed)
// sweep: a stable hex digest of the normalized grid, the seed, and the
// measured columns. Identical or equivalent specs (same axes, however
// written) map to the same ID; the HTTP service uses it to name grid
// runs so resubmissions attach to the existing run.
func GridID(spec string, seed uint64) (string, error) {
	g, err := batch.ParseGrid(spec)
	if err != nil {
		return "", fmt.Errorf("gridseg: %w", err)
	}
	h := sha256.Sum256([]byte(g.Fingerprint(seed, gridScope, sweepColumns)))
	return hex.EncodeToString(h[:8]), nil
}

// sweepCell runs one grid cell to fixation and measures it.
func sweepCell(c batch.Cell, src *rng.Source) ([]float64, error) {
	dyn := Glauber
	switch c.Dynamic {
	case batch.Kawasaki:
		dyn = Kawasaki
	case batch.Move:
		dyn = Move
	}
	engine, err := ParseEngine(c.Engine)
	if err != nil {
		return nil, err
	}
	boundary, err := ParseBoundary(c.Boundary)
	if err != nil {
		return nil, err
	}
	m, err := New(Config{
		N: c.N, W: c.W, Tau: c.Tau, P: c.P,
		Seed: src.Uint64(), Dynamic: dyn, Engine: engine,
		Boundary: boundary, Rho: c.Rho, TauDist: c.TauDist,
		// Sweeps pin the parallel engine to its delegation mode: one
		// strip is bit-identical to the fast engine, so the engine label
		// stays an execution detail and cached cells, checkpoints, and
		// goldens remain valid across engines. Multi-strip decomposition
		// is reserved for single giant runs (cmd/segsim, cmd/bench).
		Par: c.Par, ParStrips: 1,
	})
	if err != nil {
		return nil, err
	}
	_, fixated := m.Run(0)
	st := m.SegregationStats()
	meanM := measure.MeanMonoRegionSize(m.lat, measure.SamplePoints(c.N, 5))
	fix := 0.0
	if fixated {
		fix = 1
	}
	return []float64{
		st.HappyFraction, float64(st.UnhappyCount), st.InterfaceDensity,
		st.MeanSameFraction, st.LargestClusterFraction, st.Magnetization,
		meanM, float64(st.Flips), fix,
	}, nil
}

// Len returns the number of cells (parameter combinations times
// replicates) in the sweep.
func (r *GridResult) Len() int { return r.rs.Len() }

// Cache reports how many cells were served from the checkpoint or the
// result store versus computed this run. Caching never changes the
// result bytes.
func (r *GridResult) Cache() CacheStats {
	return CacheStats{Hits: r.rs.Cache.Hits, Misses: r.rs.Cache.Misses, Err: r.rs.Cache.Err}
}

// Text renders the aggregated sweep (one row per parameter
// combination, metrics averaged over replicates) as an aligned table.
func (r *GridResult) Text() string {
	return r.rs.SummaryTable("Grid sweep (replicate means)").String()
}

// WriteCSV streams the full per-replicate result table as CSV.
func (r *GridResult) WriteCSV(w io.Writer) error { return r.rs.WriteCSV(w) }

// WriteJSON emits the full per-replicate results as one JSON document.
func (r *GridResult) WriteJSON(w io.Writer) error { return r.rs.WriteJSON(w) }
