// Variants: the model variations the paper proposes (Sections I.A and
// V) — both-sided discomfort, asymmetric per-type intolerances, and
// noisy agents — run side by side from comparable starts.
//
//	go run ./examples/variants
package main

import (
	"fmt"
	"log"

	"gridseg"
)

func main() {
	const (
		n   = 96
		w   = 2
		tau = 0.45
	)
	budget := int64(n) * int64(n) * 5

	show := func(name string, cfg gridseg.VariantConfig) {
		m, err := gridseg.NewVariant(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if _, _, err := m.Run(budget); err != nil {
			log.Fatal(err)
		}
		st := m.SegregationStats()
		fmt.Printf("%-28s %s\n", name, st)
	}

	fmt.Printf("torus %dx%d, w=%d, event budget %d\n\n", n, n, w, budget)

	// The paper's base model as a reference point.
	show("base (tau=0.45)", gridseg.VariantConfig{
		N: n, W: w, TauPlus: tau, TauMinus: tau, Seed: 1,
	})

	// Sec. V: agents also uncomfortable as saturated majorities.
	// The upper threshold caps domain growth: interfaces stay denser.
	show("discomfort (upper=0.8)", gridseg.VariantConfig{
		N: n, W: w, TauPlus: tau, TauMinus: tau,
		UpperPlus: 0.8, UpperMinus: 0.8, Seed: 1,
	})

	// Barmpalias et al. two-threshold model: one tolerant type, one
	// intolerant type.
	show("asymmetric (0.45 / 0.30)", gridseg.VariantConfig{
		N: n, W: w, TauPlus: tau, TauMinus: 0.30, Seed: 1,
	})

	// Sec. I.A: agents occasionally act against the rule. Small noise
	// leaves segregation largely intact; large noise destroys order.
	show("noise 0.01", gridseg.VariantConfig{
		N: n, W: w, TauPlus: tau, TauMinus: tau, Noise: 0.01, Seed: 1,
	})
	show("noise 0.2", gridseg.VariantConfig{
		N: n, W: w, TauPlus: tau, TauMinus: tau, Noise: 0.2, Seed: 1,
	})

	fmt.Println("\ncompare interface density and same-fraction across rows: the")
	fmt.Println("discomfort cap and heavy noise both hold the system short of the")
	fmt.Println("base model's segregation level.")
}
