// Evolution: the Figure 1 workload — watch self-segregation arise from
// a balanced random configuration at tau = 0.42 and write PNG snapshots
// in the paper's palette.
//
//	go run ./examples/evolution            # 300x300 demo
//	go run ./examples/evolution -paper     # the full 1000x1000, w=10 figure
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gridseg"
)

func main() {
	paper := flag.Bool("paper", false, "exact Figure 1 parameters (n=1000, w=10; slower)")
	out := flag.String("out", "evolution_out", "output directory for PNGs")
	flag.Parse()

	n, w := 300, 5
	if *paper {
		n, w = 1000, 10
	}
	cfg := gridseg.Config{N: n, W: w, Tau: 0.42, Seed: 2024}

	// Pass 1: discover the total flip count so snapshots are evenly
	// spaced along the evolution.
	sizing, err := gridseg.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	total, _ := sizing.Run(0)

	m, err := gridseg.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d w=%d N=%d effective tau=%.4f, %d flips to fixation\n",
		n, w, m.NeighborhoodSize(), m.EffectiveTau(), total)

	var done int64
	for stage := 0; stage <= 3; stage++ {
		target := total * int64(stage) / 3
		for done < target && m.Step() {
			done++
		}
		st := m.SegregationStats()
		fmt.Printf("stage %d: flips=%-9d %s\n", stage, done, st)
		path := filepath.Join(*out, fmt.Sprintf("fig1_stage%d.png", stage))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.WritePNG(f, 1); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %s\n", path)
	}
	fmt.Println("white/yellow pixels are unhappy agents; at fixation none remain (Fig. 1d)")
}
