// Quickstart: build a model, run it to fixation, inspect the outcome.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gridseg"
)

func main() {
	// A 120x120 torus, neighborhoods of radius 3 (N = 49), intolerance
	// 0.45 — inside the Theorem 1 interval (tau1, 1/2) where the paper
	// proves exponentially large monochromatic regions.
	m, err := gridseg.New(gridseg.Config{N: 120, W: 3, Tau: 0.45, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("regime at tau=0.45: %s\n", gridseg.ClassifyTau(0.45))
	fmt.Printf("before: %s\n", m.SegregationStats())

	flips, fixated := m.Run(0)
	fmt.Printf("after:  %s\n", m.SegregationStats())
	fmt.Printf("fixated=%v after %d flips, continuous time %.2f\n", fixated, flips, m.Time())

	// The Theorem 1 observable: the largest single-type neighborhood
	// containing a given agent.
	fmt.Printf("monochromatic region of agent (60,60): %d agents\n", m.MonoRegionSize(60, 60))
}
