// Theorycurves: regenerate the paper's numeric figures from their
// defining equations — the Fig. 2 interval structure, the Fig. 3
// exponent multipliers a(tau) and b(tau), and the Fig. 6 triggering
// threshold f(tau).
//
//	go run ./examples/theorycurves
package main

import (
	"fmt"
)

import "gridseg"

func main() {
	fmt.Println("== Fig. 2: critical intolerances and intervals ==")
	fmt.Printf("tau1 = %.6f (paper ~0.433), tau2 = %.6f (paper ~0.344)\n",
		gridseg.Tau1(), gridseg.Tau2())
	fmt.Printf("monochromatic interval width  = %.4f (paper ~0.134)\n", 1-2*gridseg.Tau1())
	fmt.Printf("almost-mono interval width    = %.4f (paper ~0.312)\n\n", 1-2*gridseg.Tau2())
	for _, iv := range gridseg.Intervals() {
		fmt.Printf("  (%.4f, %.4f)  %s\n", iv.Lo, iv.Hi, iv.Label)
	}

	fmt.Println("\n== Figs. 3 and 6: f(tau), a(tau), b(tau) on (tau2, 1/2) ==")
	fmt.Println("tau       f(tau)   a(tau)      b(tau)")
	lo, hi := gridseg.Tau2(), 0.5
	const samples = 16
	for i := 0; i < samples; i++ {
		tau := lo + (float64(i)+0.5)/samples*(hi-lo)
		f := gridseg.TriggerEpsilon(tau)
		a, b := gridseg.Exponents(tau)
		fmt.Printf("%.4f    %.4f   %.3e   %.3e\n", tau, f, a, b)
	}
	fmt.Println("\nboth exponents fall toward 0 as tau -> 1/2: more tolerant agents")
	fmt.Println("(farther from 1/2) form *larger* segregated regions — the paper's")
	fmt.Println("counterintuitive headline (Sec. I.B).")
}
