// Ring1d: the one-dimensional baselines the paper builds on (Sec. I.B).
// Runs ring Glauber dynamics across intolerance regimes and horizons and
// prints run-length statistics: static below ~0.35, rapidly growing runs
// in (~0.35, 1/2), moderate at exactly 1/2 (polynomial per Brandt et
// al.), plus the Kawasaki swap baseline.
//
//	go run ./examples/ring1d
package main

import (
	"fmt"
	"log"

	"gridseg/internal/ring"
	"gridseg/internal/rng"
)

func main() {
	const n = 20000
	src := rng.New(7)

	fmt.Println("ring Glauber at fixation (n = 20000):")
	fmt.Println("tau    w   N    mean run  longest  flips/site")
	for _, tau := range []float64{0.20, 0.40, 0.45, 0.50} {
		for _, w := range []int{2, 4, 8} {
			p, err := ring.NewRandom(n, w, tau, 0.5, src.Split(uint64(w*100)+uint64(tau*1000)))
			if err != nil {
				log.Fatal(err)
			}
			p.Run(0)
			spins := p.Spins()
			fmt.Printf("%.2f   %-3d %-4d %-9.1f %-8d %.3f\n",
				tau, w, 2*w+1, ring.MeanRunLength(spins), ring.LongestRun(spins),
				float64(p.Flips())/float64(n))
		}
	}

	fmt.Println("\nring Kawasaki baseline (Brandt et al. model), tau=0.45, w=4:")
	k, err := ring.NewKawasaki(n, 4, 0.45, 0.5, src.Split(999))
	if err != nil {
		log.Fatal(err)
	}
	before := ring.MeanRunLength(k.Process().Spins())
	k.Run(int64(n)*50, int64(n))
	fmt.Printf("mean run length: %.1f -> %.1f after %d swaps\n",
		before, ring.MeanRunLength(k.Process().Spins()), k.Swaps())
}
