// Firewalls: observe the paper's triggering and protection machinery on
// live configurations — radical regions (Sec. III), the Lemma 5
// expandability cascade, the Lemma 9 annular firewall, and the
// renormalized good/bad block field with its chemical circuit
// (Sec. IV.B).
//
//	go run ./examples/firewalls
package main

import (
	"fmt"
	"log"

	"gridseg/internal/core"
	"gridseg/internal/dynamics"
	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
	"gridseg/internal/theory"
)

func main() {
	const (
		n   = 120
		w   = 2
		tau = 0.45
	)
	src := rng.New(11)
	lat := grid.Random(n, 0.5, src.Split(1))

	// 1. Radical regions in the initial configuration.
	spec := core.Spec{W: w, EpsPrime: theory.FEpsilon(tau) + 0.1, Eps: 0.1, TauTilde: tau}
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}
	centers := core.FindRadicalRegions(lat, spec, grid.Minus, 1)
	fmt.Printf("initial %dx%d config: %d radical-region centers (minority -1, eps'=%.3f)\n",
		n, n, len(centers), spec.EpsPrime)
	fmt.Printf("  (Lemma 20: radical regions occur with probability 2^{-Theta(N)};\n")
	fmt.Printf("   at N=%d they are rare — the theorems see them because the scanned\n", spec.N())
	fmt.Printf("   neighborhood radius is itself exponential in N)\n")

	// 2. Which of them are expandable (Lemma 5 cascade)?
	expandable := 0
	for _, c := range centers {
		if res, err := core.Expandable(lat, c, spec, grid.Minus); err == nil && res.Expandable {
			expandable++
		}
	}
	fmt.Printf("expandable radical regions found naturally: %d\n", expandable)

	// 2b. Plant the Lemma 5 triggering configuration and watch the
	// cascade fire: make the minority sparse enough inside the radical
	// radius that the constrained flips leave a monochromatic center.
	planted := lat.Clone()
	pc := geom.Point{X: n / 2, Y: n / 2}
	rad := spec.RadicalRadius()
	quota := int(spec.RadicalMinorityBound()) - 1
	kept := 0
	planted.Torus().Square(pc, rad, func(p geom.Point) {
		if planted.Spin(p) == grid.Minus {
			if kept < quota {
				kept++ // keep a sub-bound sprinkling of minority agents
			} else {
				planted.Set(p, grid.Plus)
			}
		}
	})
	pre := grid.NewPrefix(planted)
	res, err := core.Expandable(planted, pc, spec, grid.Minus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planted trigger: radical=%v, cascade flips=%d (budget %d), center monochromatic=%v\n",
		core.IsRadicalRegion(pre, pc, spec, grid.Minus), res.Flips, res.Budget, res.Expandable)

	// 3. Firewall invariance (Lemma 9): build a monochromatic annulus,
	// flood the exterior adversarially, and verify the interior
	// survives the full dynamics.
	fl := grid.Random(41, 0.5, src.Split(2))
	u := geom.Point{X: 20, Y: 20}
	f := core.Firewall{Center: u, R: 12, W: w}
	for _, p := range f.Sites(fl.Torus()) {
		fl.Set(p, grid.Plus)
	}
	for _, p := range f.InteriorSites(fl.Torus()) {
		fl.Set(p, grid.Plus)
	}
	proc, err := dynamics.New(fl, w, 0.40, src.Split(3))
	if err != nil {
		log.Fatal(err)
	}
	protected := map[geom.Point]bool{}
	for _, p := range f.Sites(fl.Torus()) {
		protected[p] = true
	}
	for _, p := range f.InteriorSites(fl.Torus()) {
		protected[p] = true
	}
	for i := 0; i < fl.Sites(); i++ {
		if p := fl.Torus().At(i); !protected[p] && fl.SpinAt(i) == grid.Plus {
			proc.ForceFlip(i)
		}
	}
	proc.Run(0)
	breaches := 0
	for p := range protected {
		if fl.Spin(p) != grid.Plus {
			breaches++
		}
	}
	fmt.Printf("firewall (R=%.0f, width sqrt(2)w) after adversarial exterior: %d breaches\n", f.R, breaches)

	// 4. Renormalization: good/bad blocks and the chemical circuit.
	bf, err := core.Renormalize(lat, 6, w, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	center := geom.Point{X: bf.Side / 2, Y: bf.Side / 2}
	cp := bf.FindChemicalPath(center, 3, bf.Side/2-1)
	fmt.Printf("block field: %.0f%% good blocks, bad/good ratio %.4f\n",
		100*bf.GoodFraction(), bf.BadRatio())
	fmt.Printf("chemical path around center: found=%v circuit=%d blocks, center path=%d blocks\n",
		cp.OK, cp.CircuitLen, cp.PathLen)
}
