package gridseg

import (
	"strings"
	"testing"
)

func TestNewVariantValidation(t *testing.T) {
	cases := []VariantConfig{
		{N: 2, W: 1, TauPlus: 0.5, TauMinus: 0.5},
		{N: 20, W: 0, TauPlus: 0.5, TauMinus: 0.5},
		{N: 20, W: 2, TauPlus: 1.5, TauMinus: 0.5},
		{N: 20, W: 2, TauPlus: 0.5, TauMinus: 0.5, Noise: 1},
		{N: 20, W: 2, TauPlus: 0.5, TauMinus: 0.5, P: -1},
	}
	for i, cfg := range cases {
		if _, err := NewVariant(cfg); err == nil {
			t.Errorf("case %d (%+v): want error", i, cfg)
		}
	}
}

func TestVariantModelEndToEnd(t *testing.T) {
	m, err := NewVariant(VariantConfig{N: 32, W: 2, TauPlus: 0.45, TauMinus: 0.45, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Config().P != 0.5 {
		t.Fatal("P default not resolved")
	}
	if !m.Step() {
		t.Fatal("random lattice must have admissible moves")
	}
	performed, fixated, err := m.Run(0)
	if err != nil || !fixated {
		t.Fatalf("performed=%d fixated=%v err=%v", performed, fixated, err)
	}
	if m.Flips() == 0 || m.NoiseFlips() != 0 {
		t.Fatalf("flips=%d noiseFlips=%d", m.Flips(), m.NoiseFlips())
	}
	if m.Time() <= 0 {
		t.Fatal("time must advance")
	}
	if m.UnhappyCount() != 0 {
		t.Fatal("noise-free fixation below 1/2 must be fully happy")
	}
	st := m.SegregationStats()
	if st.HappyFraction != 1 || st.MeanSameFraction <= 0.5 {
		t.Fatalf("stats: %+v", st)
	}
	if s := m.Spin(0, 0); s != 1 && s != -1 {
		t.Fatalf("spin = %d", s)
	}
	if m.Spin(-1, -1) != m.Spin(31, 31) {
		t.Fatal("Spin must wrap")
	}
}

func TestVariantModelNoisyBudget(t *testing.T) {
	m, err := NewVariant(VariantConfig{N: 24, W: 2, TauPlus: 0.45, TauMinus: 0.45, Noise: 0.05, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Run(0); err == nil {
		t.Fatal("unbounded noisy run must fail")
	}
	performed, _, err := m.Run(50)
	if err != nil || performed != 50 {
		t.Fatalf("performed=%d err=%v", performed, err)
	}
	if m.Flips()+m.NoiseFlips() != 50 {
		t.Fatal("event accounting mismatch")
	}
}

func TestVariantModelDiscomfort(t *testing.T) {
	m, err := NewVariant(VariantConfig{
		N: 24, W: 2, TauPlus: 0.45, TauMinus: 0.45,
		UpperPlus: 0.8, UpperMinus: 0.8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(2000)
	base, err := NewVariant(VariantConfig{N: 24, W: 2, TauPlus: 0.45, TauMinus: 0.45, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	base.Run(2000)
	if m.SegregationStats().MeanSameFraction >= base.SegregationStats().MeanSameFraction {
		t.Fatal("discomfort window must cap segregation relative to the base model")
	}
}

func TestRunExperimentWithOptions(t *testing.T) {
	dir := t.TempDir()
	var logged bool
	out, err := RunExperiment("E3", ExperimentOptions{
		Seed:   2,
		OutDir: dir,
		Logf:   func(string, ...interface{}) { logged = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "a(tau)") {
		t.Fatalf("E3 output: %s", out)
	}
	if !logged {
		t.Fatal("Logf must receive progress lines when artifacts are written")
	}
}
