package gridseg

import "gridseg/internal/metrics"

// metricFlips counts state-changing lattice events (Glauber flips,
// Kawasaki swap sides, Move relocations) performed by sweep cells in
// this process; the /metrics flip-throughput rate derives from it.
// Counted once per completed cell rather than per event so the hot
// loop carries no instrumentation.
var metricFlips = metrics.Default().NewCounter("gridseg_flips_total",
	"State-changing lattice events performed by completed sweep cells.")
