package gridseg_test

import (
	"fmt"
	"log"

	"gridseg"
)

// ExampleNew builds a small model, runs it to fixation, and inspects
// the segregation observables.
func ExampleNew() {
	m, err := gridseg.New(gridseg.Config{N: 32, W: 2, Tau: 0.42, P: 0.5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	events, fixated := m.Run(0) // run to fixation
	st := m.SegregationStats()
	fmt.Printf("fixated=%v after %d flips\n", fixated, events)
	fmt.Printf("happy fraction %.3f, interface density %.3f\n",
		st.HappyFraction, st.InterfaceDensity)
	// Output:
	// fixated=true after 413 flips
	// happy fraction 1.000, interface density 0.070
}

// ExampleRunGrid sweeps a parameter grid — the same declarative spec
// syntax cmd/sweep -grid and the cmd/segd HTTP service accept — and
// renders the aggregated result table.
func ExampleRunGrid() {
	r, err := gridseg.RunGrid("n=16 w=1 tau=0.40:0.45:0.05 reps=2", gridseg.GridOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d cells (2 intolerances x 2 replicates)\n", r.Len())
	// Output:
	// 4 cells (2 intolerances x 2 replicates)
}

// ExampleRunGrid_store attaches a content-addressed result store:
// resubmitting an identical or overlapping grid serves every
// previously computed cell from the cache, byte-identically.
func ExampleRunGrid_store() {
	st := gridseg.NewMemoryStore() // or OpenStore(dir) for persistence
	opt := gridseg.GridOptions{Seed: 5, Store: st}

	first, err := gridseg.RunGrid("n=16 w=1 tau=0.40,0.42 reps=2", opt)
	if err != nil {
		log.Fatal(err)
	}
	// The second grid overlaps the first at tau=0.42.
	second, err := gridseg.RunGrid("n=16 w=1 tau=0.42,0.44 reps=2", opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first:  %d cached, %d computed\n", first.Cache().Hits, first.Cache().Misses)
	fmt.Printf("second: %d cached, %d computed\n", second.Cache().Hits, second.Cache().Misses)
	// Output:
	// first:  0 cached, 4 computed
	// second: 2 cached, 2 computed
}

// ExampleGridID shows the content-addressed identity of a sweep:
// equivalent specs (same normalized axes, however written) share an
// ID, which is how the cmd/segd service deduplicates submissions.
func ExampleGridID() {
	a, err := gridseg.GridID("n=16 w=1 tau=0.4,0.45 reps=2", 5)
	if err != nil {
		log.Fatal(err)
	}
	b, err := gridseg.GridID("tau=0.4,0.45 w=1 n=16 replicates=2", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a == b)
	// Output:
	// true
}

// ExampleClassifyTau names the paper's regime for an intolerance
// value (Fig. 2).
func ExampleClassifyTau() {
	for _, tau := range []float64{0.2, 0.36, 0.45, 0.5} {
		fmt.Printf("tau=%.2f: %s\n", tau, gridseg.ClassifyTau(tau))
	}
	// Output:
	// tau=0.20: static
	// tau=0.36: almost monochromatic
	// tau=0.45: monochromatic
	// tau=0.50: open (tau = 1/2)
}

// ExampleTau1 prints the paper's critical intolerances (Eqs. 1, 3).
func ExampleTau1() {
	fmt.Printf("tau1 = %.6f\n", gridseg.Tau1())
	fmt.Printf("tau2 = %.6f\n", gridseg.Tau2())
	// Output:
	// tau1 = 0.432997
	// tau2 = 0.343750
}
