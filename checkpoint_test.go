package gridseg

import (
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	m, err := New(Config{N: 32, W: 2, Tau: 0.45, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(200)
	data, err := m.MarshalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := NewFromConfiguration(data, Config{W: 2, Tau: 0.45, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Size() != 32 {
		t.Fatalf("resumed size = %d", resumed.Size())
	}
	// The resumed lattice must match cell for cell.
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if m.Spin(x, y) != resumed.Spin(x, y) {
				t.Fatalf("spin mismatch at (%d,%d)", x, y)
			}
		}
	}
	// And it must be runnable to fixation.
	if _, fixated := resumed.Run(0); !fixated {
		t.Fatal("resumed model must fixate")
	}
}

func TestCheckpointDeterministicResume(t *testing.T) {
	m, err := New(Config{N: 24, W: 2, Tau: 0.45, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100)
	data, err := m.MarshalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	runFrom := func() Stats {
		r, err := NewFromConfiguration(data, Config{W: 2, Tau: 0.45, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		r.Run(0)
		return r.SegregationStats()
	}
	if runFrom() != runFrom() {
		t.Fatal("resume must be deterministic")
	}
}

func TestConfigRoundTripPreservesResolvedDefaults(t *testing.T) {
	// The regression for the resumed-defaults bug: a model rebuilt via
	// NewFromConfiguration(MarshalConfiguration(...)) must report the
	// same resolved Config as the original, including the documented
	// P = 1/2 and Glauber defaults applied to zero values.
	m, err := New(Config{N: 16, W: 2, Tau: 0.45, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Config(); got.P != 0.5 || got.Dynamic != Glauber {
		t.Fatalf("New did not resolve defaults: %+v", got)
	}
	data, err := m.MarshalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := NewFromConfiguration(data, Config{W: 2, Tau: 0.45, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if m.Config() != resumed.Config() {
		t.Fatalf("resolved Config not preserved:\n original %+v\n resumed  %+v", m.Config(), resumed.Config())
	}
	if resumed.Config().P != 0.5 {
		t.Fatalf("resumed P = %v, want the documented 0.5 default", resumed.Config().P)
	}
	if resumed.Config().N != 16 {
		t.Fatalf("resumed N = %v, want 16 from the marshaled lattice", resumed.Config().N)
	}
}

func TestNewFromConfigurationErrors(t *testing.T) {
	if _, err := NewFromConfiguration([]byte("garbage"), Config{W: 2, Tau: 0.45}); err == nil {
		t.Fatal("want error for corrupt data")
	}
	m, err := New(Config{N: 16, W: 2, Tau: 0.45, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFromConfiguration(data, Config{W: 20, Tau: 0.45}); err == nil {
		t.Fatal("want error for oversized horizon")
	}
	if _, err := NewFromConfiguration(data, Config{W: 2, Tau: 0.45, Dynamic: Dynamic(9)}); err == nil {
		t.Fatal("want error for unknown dynamic")
	}
}

func TestCheckpointKawasakiResume(t *testing.T) {
	m, err := New(Config{N: 24, W: 2, Tau: 0.45, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewFromConfiguration(data, Config{W: 2, Tau: 0.45, Seed: 9, Dynamic: Kawasaki})
	if err != nil {
		t.Fatal(err)
	}
	before := k.SegregationStats().Magnetization
	k.Run(0)
	if k.SegregationStats().Magnetization != before {
		t.Fatal("Kawasaki resume must conserve magnetization")
	}
}

func TestSegregationIndices(t *testing.T) {
	m, err := New(Config{N: 48, W: 2, Tau: 0.45, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	before, err := m.SegregationIndices(8)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(0)
	after, err := m.SegregationIndices(8)
	if err != nil {
		t.Fatal(err)
	}
	if after.Dissimilarity <= before.Dissimilarity {
		t.Fatalf("D must rise under segregation: %v -> %v", before.Dissimilarity, after.Dissimilarity)
	}
	if after.Isolation <= before.Isolation {
		t.Fatalf("isolation must rise: %v -> %v", before.Isolation, after.Isolation)
	}
	if after.Exposure != 1-after.Isolation {
		t.Fatal("exposure identity broken")
	}
	if _, err := m.SegregationIndices(7); err == nil {
		t.Fatal("want error when block side does not divide N")
	}
}
