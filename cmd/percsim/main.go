// Command percsim explores the percolation substrates the paper's
// proofs rely on: first-passage percolation passage times (Kesten,
// Theorem 3 shape), chemical distances in supercritical site
// percolation (Garet–Marchand, Theorem 4 shape), and the exponential
// tail of subcritical cluster radii (Grimmett, Theorem 5 shape).
//
//	percsim -what fpp -k 40 -trials 30
//	percsim -what chem -p 0.9 -dist 60
//	percsim -what radius -p 0.45 -trials 500
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"gridseg/internal/percolation"
	"gridseg/internal/rng"
	"gridseg/internal/stats"
)

// config holds the parsed command-line options.
type config struct {
	what   string
	p      float64
	k      int
	dist   int
	trials int
	seed   uint64
}

// newFlagSet declares the command's flags; main parses it, and the
// usage test pins it against the README documentation.
func newFlagSet() (*flag.FlagSet, *config) {
	c := &config{}
	fs := flag.NewFlagSet("percsim", flag.ExitOnError)
	fs.StringVar(&c.what, "what", "fpp", "fpp | chem | radius")
	fs.Float64Var(&c.p, "p", 0.9, "site-open probability")
	fs.IntVar(&c.k, "k", 40, "FPP distance")
	fs.IntVar(&c.dist, "dist", 60, "chemical-distance span")
	fs.IntVar(&c.trials, "trials", 50, "Monte Carlo trials")
	fs.Uint64Var(&c.seed, "seed", 1, "random seed")
	return fs, c
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("percsim: ")

	fs, cfg := newFlagSet()
	_ = fs.Parse(os.Args[1:])
	src := rng.New(cfg.seed)

	switch cfg.what {
	case "fpp":
		var ts []float64
		for i := 0; i < cfg.trials; i++ {
			f, err := percolation.NewFPP(cfg.k+11, 21, 1, src.Split(uint64(i)))
			if err != nil {
				log.Fatal(err)
			}
			v, err := f.PassageTime(percolation.Point{X: 5, Y: 10}, percolation.Point{X: 5 + cfg.k, Y: 10})
			if err != nil {
				log.Fatal(err)
			}
			ts = append(ts, v)
		}
		s, err := stats.Summarize(ts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("FPP Exp(1) site weights, k=%d, %d trials\n", cfg.k, cfg.trials)
		fmt.Printf("E[T_k] = %.3f   E[T_k]/k = %.4f   std = %.3f   std/sqrt(k) = %.4f\n",
			s.Mean, s.Mean/float64(cfg.k), s.Std, s.Std/math.Sqrt(float64(cfg.k)))
	case "chem":
		var ratios []float64
		connected := 0
		for i := 0; i < cfg.trials; i++ {
			f := percolation.NewField(cfg.dist+11, cfg.dist/2*2+11, cfg.p, src.Split(uint64(i)))
			a := percolation.Point{X: 5, Y: f.H() / 2}
			b := percolation.Point{X: 5 + cfg.dist, Y: f.H() / 2}
			if d, ok := f.ChemicalDistance(a, b); ok {
				connected++
				ratios = append(ratios, float64(d)/float64(cfg.dist))
			}
		}
		fmt.Printf("chemical distance, p=%g, span=%d, %d trials\n", cfg.p, cfg.dist, cfg.trials)
		if len(ratios) == 0 {
			fmt.Println("no connected pairs (subcritical?)")
			return
		}
		fmt.Printf("connected = %d/%d   mean D/l1 = %.4f   p90 = %.4f\n",
			connected, cfg.trials, stats.Mean(ratios), stats.Quantile(ratios, 0.9))
	case "radius":
		var radii []float64
		for i := 0; i < cfg.trials; i++ {
			f := percolation.NewField(61, 61, cfg.p, src.Split(uint64(i)))
			if _, r := f.ClusterOf(f.Center()); r >= 0 {
				radii = append(radii, float64(r))
			}
		}
		fmt.Printf("origin cluster radius, p=%g, %d trials (%d open origins)\n", cfg.p, cfg.trials, len(radii))
		if rate, fit, err := stats.ExpDecayRate(radii); err == nil {
			fmt.Printf("mean radius = %.3f   fitted tail decay rate = %.4f (R2 = %.3f)\n",
				stats.Mean(radii), rate, fit.R2)
		} else {
			fmt.Printf("mean radius = %.3f   (tail fit unavailable: %v)\n", stats.Mean(radii), err)
		}
	default:
		log.Fatalf("unknown -what %q", cfg.what)
	}
}
