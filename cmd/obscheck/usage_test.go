package main

import "testing"

import "gridseg/internal/clidoc"

// TestUsageCoverage asserts every flag of the command carries a usage
// string and is documented in the repository README.
func TestUsageCoverage(t *testing.T) {
	fs, _ := newFlagSet()
	for _, err := range clidoc.CheckFlags(fs, "../../README.md") {
		t.Error(err)
	}
}
