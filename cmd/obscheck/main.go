// Command obscheck is the observability smoke gate: it starts a segd
// server in-process over a memory store, submits a small grid, consumes
// the run's /grids/{id}/live trajectory stream (requiring a minimum
// number of frames that decode to real lattices), then scrapes /metrics
// and validates that the exposition parses and carries the expected
// metric families. Any failure exits non-zero, so CI can gate on it.
//
//	obscheck
//	obscheck -spec "n=48 w=2 tau=0.42 reps=4" -frames 20
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"gridseg"
	"gridseg/internal/grid"
	"gridseg/internal/metrics"
	"gridseg/internal/server"
)

// config holds the parsed command-line options.
type config struct {
	spec      string
	seed      uint64
	frames    int
	liveEvery int64
}

// newFlagSet declares the command's flags; main parses it, and the
// usage test pins it against the README documentation.
func newFlagSet() (*flag.FlagSet, *config) {
	c := &config{}
	fs := flag.NewFlagSet("obscheck", flag.ExitOnError)
	fs.StringVar(&c.spec, "spec", "n=96 w=1 tau=0.40,0.45 reps=4", "grid spec whose live trajectory stream is checked")
	fs.Uint64Var(&c.seed, "seed", 11, "sweep seed for the submitted grid")
	fs.IntVar(&c.frames, "frames", 10, "minimum live trajectory frames the /live stream must deliver")
	fs.Int64Var(&c.liveEvery, "live-every", 64, "flips between live frames (small, so modest grids still emit plenty)")
	return fs, c
}

// requiredMetrics are the families the /metrics exposition must carry
// after one grid has been computed and streamed. Histogram families
// appear under their _count sample name.
var requiredMetrics = []string{
	"segd_queue_depth",
	"segd_sse_subscribers",
	"segd_live_subscribers",
	"segd_live_frames_total",
	"segd_runs_total",
	"gridseg_flips_total",
	"gridseg_cells_computed_total",
	"gridseg_cells_cached_total",
	"gridseg_store_gets_total",
	"gridseg_store_puts_total",
	"gridseg_store_get_seconds_count",
	"gridseg_store_put_seconds_count",
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("obscheck: ")
	fs, cfg := newFlagSet()
	_ = fs.Parse(os.Args[1:])
	if err := check(cfg); err != nil {
		log.Fatal(err)
	}
	log.Print("ok")
}

func check(cfg *config) error {
	srv, err := server.New(server.Options{
		Store:     gridseg.NewMemoryStore(),
		LiveEvery: cfg.liveEvery,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}()
	base := "http://" + ln.Addr().String()

	// Live sampling only runs while someone is subscribed, so the /live
	// subscription must attach before the target run finishes. Grid runs
	// dispatch FIFO, so a blocker run submitted first holds the
	// dispatcher while the subscription to the still-queued target is
	// established. Machine speed varies, so when the subscription loses
	// the race anyway (small frame count, run already done), retry with
	// fresh seeds and a doubled blocker instead of failing outright.
	frames := 0
	for attempt := 0; ; attempt++ {
		blocker := fmt.Sprintf("n=384 w=1 tau=0.45 reps=%d", 4<<attempt)
		// Fresh seeds each attempt: cells are seed-keyed, so new seeds
		// force real recomputation rather than instant cache replays.
		seed := cfg.seed + uint64(2*attempt)
		if _, err := submit(base, blocker, seed+1); err != nil {
			return fmt.Errorf("blocker: %w", err)
		}
		id, err := submit(base, cfg.spec, seed)
		if err != nil {
			return err
		}
		log.Printf("submitted %q as run %s (blocker reps=%d)", cfg.spec, id, 4<<attempt)
		frames, err = consumeLive(base + "/grids/" + id + "/live")
		if err != nil {
			return err
		}
		if frames >= cfg.frames {
			break
		}
		if attempt == 3 {
			return fmt.Errorf("live stream delivered %d frames, want >= %d (shrink -live-every or grow -spec)", frames, cfg.frames)
		}
		log.Printf("only %d frames (subscription lost the race to the run); retrying with a heavier blocker", frames)
	}
	log.Printf("live stream delivered %d decodable frames (want >= %d)", frames, cfg.frames)

	return checkMetrics(base + "/metrics")
}

// submit posts the grid and returns its run id (202 newly queued or
// 200 attached to an identical existing run).
func submit(base, spec string, seed uint64) (string, error) {
	body, _ := json.Marshal(map[string]interface{}{"spec": spec, "seed": seed})
	resp, err := http.Post(base+"/grids", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var status struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("submit: status %d: %s", resp.StatusCode, status.Error)
	}
	return status.ID, nil
}

// consumeLive reads the /live SSE stream to its terminal event,
// decoding every frame's lattice, and errors unless the run ended in
// the done state. The caller judges the frame count.
func consumeLive(url string) (int, error) {
	client := &http.Client{Timeout: 2 * time.Minute}
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("live stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return 0, fmt.Errorf("live stream: content type %q", ct)
	}
	frames := 0
	var event string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "frame":
				var ev struct {
					N     int    `json:"n"`
					Frame string `json:"frame"`
				}
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					return frames, fmt.Errorf("frame payload does not parse: %w", err)
				}
				raw, err := base64.StdEncoding.DecodeString(ev.Frame)
				if err != nil {
					return frames, fmt.Errorf("frame is not base64: %w", err)
				}
				lat, err := grid.UnmarshalBinary(raw)
				if err != nil {
					return frames, fmt.Errorf("frame does not decode: %w", err)
				}
				if lat.N() != ev.N {
					return frames, fmt.Errorf("frame side %d != event n %d", lat.N(), ev.N)
				}
				frames++
			case "end":
				var end struct {
					State string `json:"state"`
				}
				if err := json.Unmarshal([]byte(data), &end); err != nil {
					return frames, fmt.Errorf("end payload does not parse: %w", err)
				}
				if end.State != server.StateDone {
					return frames, fmt.Errorf("run ended in state %q", end.State)
				}
				return frames, nil
			}
		}
	}
	return frames, fmt.Errorf("live stream ended without an end event (err=%v)", sc.Err())
}

// checkMetrics scrapes the exposition, parses it, and requires every
// expected family to be present.
func checkMetrics(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	fams, err := metrics.ParseText(resp.Body)
	if err != nil {
		return fmt.Errorf("metrics exposition does not parse: %w", err)
	}
	var missing []string
	for _, name := range requiredMetrics {
		if len(fams[name]) == 0 {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("metrics exposition is missing %s", strings.Join(missing, ", "))
	}
	log.Printf("metrics exposition carries all %d required families", len(requiredMetrics))
	return nil
}
