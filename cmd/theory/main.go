// Command theory prints the paper's analytical objects: the critical
// intolerances tau1 and tau2, the Fig. 2 interval structure, the Fig. 3
// exponent curves a(tau) and b(tau), the Fig. 6 triggering threshold
// f(tau), and the regime classification of any intolerance value.
//
//	theory -what constants
//	theory -what curves -samples 48
//	theory -what regime -tau 0.42
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gridseg"
)

// config holds the parsed command-line options.
type config struct {
	what    string
	samples int
	tau     float64
}

// newFlagSet declares the command's flags; main parses it, and the
// usage test pins it against the README documentation.
func newFlagSet() (*flag.FlagSet, *config) {
	c := &config{}
	fs := flag.NewFlagSet("theory", flag.ExitOnError)
	fs.StringVar(&c.what, "what", "constants", "constants | intervals | curves | regime")
	fs.IntVar(&c.samples, "samples", 24, "curve sample count")
	fs.Float64Var(&c.tau, "tau", 0.42, "intolerance for -what regime")
	return fs, c
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("theory: ")

	fs, cfg := newFlagSet()
	_ = fs.Parse(os.Args[1:])

	switch cfg.what {
	case "constants":
		fmt.Printf("tau1 (Eq. 1)                  = %.6f   (paper: ~0.433)\n", gridseg.Tau1())
		fmt.Printf("tau2 (Eq. 3)                  = %.6f   (paper: ~0.344)\n", gridseg.Tau2())
		fmt.Printf("monochromatic width 1-2*tau1  = %.6f   (paper: ~0.134)\n", 1-2*gridseg.Tau1())
		fmt.Printf("almost-mono width 1-2*tau2    = %.6f   (paper: ~0.312)\n", 1-2*gridseg.Tau2())
	case "intervals":
		for _, iv := range gridseg.Intervals() {
			fmt.Printf("(%.6f, %.6f)  %s\n", iv.Lo, iv.Hi, iv.Label)
		}
	case "curves":
		if cfg.samples < 2 {
			cfg.samples = 2
		}
		fmt.Println("tau       f(tau)    a(tau)      b(tau)")
		lo, hi := gridseg.Tau2(), 0.5
		for i := 0; i < cfg.samples; i++ {
			t := lo + (float64(i)+0.5)/float64(cfg.samples)*(hi-lo)
			f := gridseg.TriggerEpsilon(t)
			a, b := gridseg.Exponents(t)
			fmt.Printf("%.6f  %.6f  %.3e  %.3e\n", t, f, a, b)
		}
	case "regime":
		fmt.Printf("tau = %g: %s\n", cfg.tau, gridseg.ClassifyTau(cfg.tau))
		a, b := gridseg.Exponents(cfg.tau)
		fmt.Printf("exponents: a = %g, b = %g (NaN outside the theorem intervals)\n", a, b)
	default:
		log.Fatalf("unknown -what %q", cfg.what)
	}
}
