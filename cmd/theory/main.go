// Command theory prints the paper's analytical objects: the critical
// intolerances tau1 and tau2, the Fig. 2 interval structure, the Fig. 3
// exponent curves a(tau) and b(tau), the Fig. 6 triggering threshold
// f(tau), and the regime classification of any intolerance value.
//
//	theory -what constants
//	theory -what curves -samples 48
//	theory -what regime -tau 0.42
package main

import (
	"flag"
	"fmt"
	"log"

	"gridseg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("theory: ")

	var (
		what    = flag.String("what", "constants", "constants | intervals | curves | regime")
		samples = flag.Int("samples", 24, "curve sample count")
		tau     = flag.Float64("tau", 0.42, "intolerance for -what regime")
	)
	flag.Parse()

	switch *what {
	case "constants":
		fmt.Printf("tau1 (Eq. 1)                  = %.6f   (paper: ~0.433)\n", gridseg.Tau1())
		fmt.Printf("tau2 (Eq. 3)                  = %.6f   (paper: ~0.344)\n", gridseg.Tau2())
		fmt.Printf("monochromatic width 1-2*tau1  = %.6f   (paper: ~0.134)\n", 1-2*gridseg.Tau1())
		fmt.Printf("almost-mono width 1-2*tau2    = %.6f   (paper: ~0.312)\n", 1-2*gridseg.Tau2())
	case "intervals":
		for _, iv := range gridseg.Intervals() {
			fmt.Printf("(%.6f, %.6f)  %s\n", iv.Lo, iv.Hi, iv.Label)
		}
	case "curves":
		if *samples < 2 {
			*samples = 2
		}
		fmt.Println("tau       f(tau)    a(tau)      b(tau)")
		lo, hi := gridseg.Tau2(), 0.5
		for i := 0; i < *samples; i++ {
			t := lo + (float64(i)+0.5)/float64(*samples)*(hi-lo)
			f := gridseg.TriggerEpsilon(t)
			a, b := gridseg.Exponents(t)
			fmt.Printf("%.6f  %.6f  %.3e  %.3e\n", t, f, a, b)
		}
	case "regime":
		fmt.Printf("tau = %g: %s\n", *tau, gridseg.ClassifyTau(*tau))
		a, b := gridseg.Exponents(*tau)
		fmt.Printf("exponents: a = %g, b = %g (NaN outside the theorem intervals)\n", a, b)
	default:
		log.Fatalf("unknown -what %q", *what)
	}
}
