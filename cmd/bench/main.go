// Command bench records the repository's benchmark trajectory: it
// measures the hot-path metrics (flip throughput on both engines — on
// the default path and on every scenario axis the fast engine covers:
// open boundaries, vacancies, heterogeneous tau, the Kawasaki swap
// dynamic, the Move relocation dynamic, and the domain-decomposed
// parallel engine — plus complete runs to fixation at small and giant
// scale on both the sequential and parallel engines and the
// batch-engine grid cell rate), writes them to a JSON baseline file,
// and — in check mode —
// fails when any metric regresses more than a tolerance against a
// committed baseline.
//
//	bench -out BENCH_2.json              # record a new baseline
//	bench -baseline BENCH_2.json         # fail on >20% regression
//	bench -baseline BENCH_2.json -out BENCH_2.json  # check then refresh
//	bench -minspeedup 3                  # fail unless fast >= 3x reference
//	                                     # on every fast/reference pair
//	bench -minscaling 3                  # fail unless the parallel engine
//	                                     # beats the sequential fast engine
//	                                     # by this factor (enforced only on
//	                                     # machines with >= 8 CPUs)
//	bench -memcheck -maxrss 384          # giant-grid fixation probe only,
//	                                     # fail if peak RSS exceeds 384 MiB
//
// Each metric is the minimum of three testing.Benchmark runs, which
// suppresses scheduler noise; all metrics are nanoseconds per unit
// (lower is better).
//
// Absolute ns comparisons only make sense on one machine; across
// machines (CI runners vary by CPU generation and steal) use
// -minspeedup, which compares the fast engine against the reference
// engine measured in the same run, plus a loose -tolerance as a
// catastrophic-regression backstop.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"gridseg"
)

// metric is one trajectory entry: a name and its cost in ns per unit.
type metric struct {
	Name string  `json:"name"`
	Unit string  `json:"unit"`
	Ns   float64 `json:"ns_per_unit"`
}

// baseline is the JSON shape of a trajectory file.
type baseline struct {
	Schema  string   `json:"schema"`
	Go      string   `json:"go"`
	Metrics []metric `json:"metrics"`
}

const schema = "gridseg-bench/v1"

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	var (
		out        = flag.String("out", "", "write the measured trajectory to this JSON file")
		base       = flag.String("baseline", "", "compare against this committed baseline and fail on regression")
		tolerance  = flag.Float64("tolerance", 0.20, "allowed fractional slowdown per metric before failing")
		minSpeedup = flag.Float64("minspeedup", 0, "fail unless the fast engine beats the reference by this factor in this run (machine-independent; 0 disables)")
		minScaling = flag.Float64("minscaling", 0, "fail unless the parallel engine beats the sequential fast engine by this factor in this run; enforced only with >= 8 CPUs, reported otherwise (0 disables)")
		reps       = flag.Int("reps", 3, "benchmark repetitions per metric (minimum is reported)")
		memcheck   = flag.Bool("memcheck", false, "assert peak RSS stays under -maxrss after measuring; alone, measures only the giant-grid fixation probe")
		maxRSS     = flag.Float64("maxrss", 384, "peak-RSS ceiling in MiB enforced by -memcheck")
	)
	flag.Parse()
	if *out == "" && *base == "" && *minSpeedup <= 0 && *minScaling <= 0 && !*memcheck {
		log.Fatal("nothing to do: pass -out, -baseline, -minspeedup, -minscaling, and/or -memcheck")
	}

	// Memcheck on its own measures just the giant-grid probe, so the
	// RSS high-water mark it asserts on is that probe's alone.
	only := ""
	if *memcheck && *out == "" && *base == "" && *minSpeedup <= 0 && *minScaling <= 0 {
		only = giantProbe
	}

	cur := baseline{Schema: schema, Go: runtime.Version(), Metrics: measure(*reps, only)}
	for _, m := range cur.Metrics {
		fmt.Printf("%-28s %12.1f ns/%s\n", m.Name, m.Ns, m.Unit)
	}

	if *minSpeedup > 0 {
		// Every fast/reference pair must clear the bar: the default
		// path and each scenario axis the fast engine covers (open
		// boundary, vacancies, heterogeneous tau, the swap dynamic).
		pairs := [][2]string{
			{"flip_fig1_fast", "flip_fig1_reference"},
			{"flip_open_fast", "flip_open_reference"},
			{"flip_rho_fast", "flip_rho_reference"},
			{"flip_taudist_fast", "flip_taudist_reference"},
			{"flip_kawasaki_fast", "flip_kawasaki_reference"},
			{"flip_move_fast", "flip_move_reference"},
		}
		for _, pr := range pairs {
			fast, ref := find(cur.Metrics, pr[0]), find(cur.Metrics, pr[1])
			speedup := ref.Ns / fast.Ns
			fmt.Printf("%-28s %.2fx vs %s (want >= %.2fx)\n", pr[0], speedup, pr[1], *minSpeedup)
			if speedup < *minSpeedup {
				log.Fatalf("%s only %.2fx faster than %s (want >= %.2fx)", pr[0], speedup, pr[1], *minSpeedup)
			}
		}
	}
	if *minScaling > 0 {
		// The parallel engine must beat the sequential fast engine at
		// the same parameters: per-flip at n=1024 and a complete giant
		// trajectory at n=4096. Domain decomposition only pays when
		// there are cores to spread strips over, so the gate is
		// enforced on machines with >= 8 CPUs and reported (never
		// fatal) on smaller ones — CI runners pin the claim, laptops
		// and containers still see the number.
		pairs := [][2]string{
			{"flip_parallel", "flip_n1024_fast"},
			{giantParProbe, giantProbe},
		}
		enforced := runtime.NumCPU() >= 8
		for _, pr := range pairs {
			par, seq := find(cur.Metrics, pr[0]), find(cur.Metrics, pr[1])
			scaling := seq.Ns / par.Ns
			if enforced {
				fmt.Printf("%-28s %.2fx vs %s (want >= %.2fx on %d CPUs)\n", pr[0], scaling, pr[1], *minScaling, runtime.NumCPU())
				if scaling < *minScaling {
					log.Fatalf("%s only %.2fx faster than %s (want >= %.2fx on %d CPUs)", pr[0], scaling, pr[1], *minScaling, runtime.NumCPU())
				}
			} else {
				fmt.Printf("%-28s %.2fx vs %s (informational: %d CPUs < 8, scaling gate not enforced)\n", pr[0], scaling, pr[1], runtime.NumCPU())
			}
		}
	}
	if *base != "" {
		prev, err := readBaseline(*base)
		if err != nil {
			log.Fatal(err)
		}
		if err := compare(prev, cur, *tolerance); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("no regression beyond %.0f%% against %s\n", *tolerance*100, *base)
	}
	if *memcheck {
		peak, err := peakRSSMiB()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("peak RSS %.1f MiB (ceiling %.0f MiB)\n", peak, *maxRSS)
		if peak > *maxRSS {
			log.Fatalf("peak RSS %.1f MiB exceeds the %.0f MiB ceiling", peak, *maxRSS)
		}
	}
	if *out != "" {
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// measure runs every trajectory metric reps times and keeps the
// fastest observation of each. A non-empty only restricts the pass to
// the named probe.
func measure(reps int, only string) []metric {
	type probe struct {
		name, unit string
		perOp      float64 // units of work per benchmark op
		reps       int     // 0 inherits the -reps flag
		run        func(b *testing.B)
	}
	// Scenario probes pair a fast and a reference measurement at the
	// same parameters, so the trajectory records the engine-coverage
	// speedup on every scenario axis (open boundaries, vacancies,
	// heterogeneous tau) and on the swap dynamic, all at the Fig. 1
	// neighborhood size.
	fig1 := gridseg.Config{N: 256, W: 10, Tau: 0.42}
	open := fig1
	open.Boundary = gridseg.BoundaryOpen
	rho := fig1
	rho.Rho = 0.1
	taudist := fig1
	taudist.TauDist = "mix:0.35,0.45:0.5"
	kawasaki := fig1
	kawasaki.Dynamic = gridseg.Kawasaki
	move := rho
	move.Dynamic = gridseg.Move
	big := fig1
	big.N = 1024
	probes := []probe{
		{name: "flip_fig1_fast", unit: "flip", perOp: 1, run: flipThroughput(fig1, gridseg.EngineFast)},
		{name: "flip_fig1_reference", unit: "flip", perOp: 1, run: flipThroughput(fig1, gridseg.EngineReference)},
		{name: "flip_n1024_fast", unit: "flip", perOp: 1, run: flipThroughput(big, gridseg.EngineFast)},
		{name: "flip_open_fast", unit: "flip", perOp: 1, run: flipThroughput(open, gridseg.EngineFast)},
		{name: "flip_open_reference", unit: "flip", perOp: 1, run: flipThroughput(open, gridseg.EngineReference)},
		{name: "flip_rho_fast", unit: "flip", perOp: 1, run: flipThroughput(rho, gridseg.EngineFast)},
		{name: "flip_rho_reference", unit: "flip", perOp: 1, run: flipThroughput(rho, gridseg.EngineReference)},
		{name: "flip_taudist_fast", unit: "flip", perOp: 1, run: flipThroughput(taudist, gridseg.EngineFast)},
		{name: "flip_taudist_reference", unit: "flip", perOp: 1, run: flipThroughput(taudist, gridseg.EngineReference)},
		// Kawasaki "flips" are swap attempts (two masked flip-updates
		// plus the occasional revert), measured per attempt; Move
		// "flips" are relocation attempts on a vacancy-diluted lattice.
		{name: "flip_kawasaki_fast", unit: "flip", perOp: 1, run: flipThroughput(kawasaki, gridseg.EngineFast)},
		{name: "flip_kawasaki_reference", unit: "flip", perOp: 1, run: flipThroughput(kawasaki, gridseg.EngineReference)},
		{name: "flip_move_fast", unit: "flip", perOp: 1, run: flipThroughput(move, gridseg.EngineFast)},
		{name: "flip_move_reference", unit: "flip", perOp: 1, run: flipThroughput(move, gridseg.EngineReference)},
		// The parallel probe pairs with flip_n1024_fast: same
		// parameters, domain-decomposed engine, all CPUs. The
		// -minscaling gate compares the pair in the same run.
		{name: "flip_parallel", unit: "flip", perOp: 1, run: flipThroughputParallel(big)},
		{name: "run_to_fixation", unit: "run", perOp: 1, run: runToFixation},
		// One giant-grid trajectory costs several seconds, so a single
		// repetition keeps the trajectory pass bounded; the probe pins
		// the bounded-RSS claim, not scheduler-noise-sensitive ns.
		{name: giantProbe, unit: "run", perOp: 1, reps: 1, run: runToFixationGiant},
		{name: giantParProbe, unit: "run", perOp: 1, reps: 1, run: runToFixationGiantParallel},
		{name: "grid_cell", unit: "cell", perOp: 8, run: gridCell},
	}
	out := make([]metric, 0, len(probes))
	for _, p := range probes {
		if only != "" && p.name != only {
			continue
		}
		r := reps
		if p.reps > 0 {
			r = p.reps
		}
		best := 0.0
		for i := 0; i < r; i++ {
			res := testing.Benchmark(p.run)
			ns := float64(res.NsPerOp()) / p.perOp
			if i == 0 || ns < best {
				best = ns
			}
		}
		out = append(out, metric{Name: p.name, Unit: p.unit, Ns: best})
	}
	return out
}

// flipThroughput measures per-event cost at the given configuration
// and engine, re-drawing a configuration off the clock when the
// process reaches a terminal state (mirrors bench_test.go).
func flipThroughput(cfg gridseg.Config, engine gridseg.Engine) func(b *testing.B) {
	return func(b *testing.B) {
		c := cfg
		c.Seed, c.Engine = 1, engine
		m, err := gridseg.New(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !m.Step() {
				b.StopTimer()
				c.Seed = uint64(i) + 2
				m, err = gridseg.New(c)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		}
	}
}

// flipThroughputParallel measures per-flip cost on the parallel engine
// with automatic strip decomposition and one worker per CPU. A parallel
// Step batches a whole phase cycle, so progress is tracked through the
// engine's exact flip counter rather than by counting Step calls.
func flipThroughputParallel(cfg gridseg.Config) func(b *testing.B) {
	return func(b *testing.B) {
		c := cfg
		c.Seed, c.Engine = 1, gridseg.EngineParallel
		m, err := gridseg.New(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var done, base int64
		for done < int64(b.N) {
			if !m.Step() {
				b.StopTimer()
				base, c.Seed = done, c.Seed+1
				m, err = gridseg.New(c)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				continue
			}
			done = base + m.Flips()
		}
	}
}

// runToFixation measures a complete small run.
func runToFixation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := gridseg.New(gridseg.Config{N: 96, W: 3, Tau: 0.45, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		m.Run(0)
	}
}

// giantProbe names the bounded-RSS trajectory metric; -memcheck alone
// measures only this probe.
const giantProbe = "run_to_fixation_n4096"

// runToFixationGiant runs one complete giant-grid trajectory (16.8M
// sites) to fixation plus a streaming measurement pass over the fixated
// grid — the workload whose peak RSS -memcheck pins.
func runToFixationGiant(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := gridseg.New(gridseg.Config{N: 4096, W: 1, Tau: 0.45, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		m.Run(0)
		_ = m.SegregationStats()
	}
}

// giantParProbe names the parallel giant-grid trajectory metric; the
// -minscaling gate compares it against giantProbe in the same run.
const giantParProbe = "run_to_fixation_n4096_parallel"

// runToFixationGiantParallel runs the same giant trajectory workload as
// runToFixationGiant on the domain-decomposed parallel engine with
// automatic strips and one worker per CPU.
func runToFixationGiantParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := gridseg.New(gridseg.Config{N: 4096, W: 1, Tau: 0.45, Seed: uint64(i) + 1, Engine: gridseg.EngineParallel})
		if err != nil {
			b.Fatal(err)
		}
		m.Run(0)
		_ = m.SegregationStats()
	}
}

// peakRSSMiB reads the process's resident-set high-water mark from
// /proc/self/status — Linux-only, like the CI runner that enforces it.
func peakRSSMiB() (float64, error) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			kb, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
			if err != nil {
				return 0, fmt.Errorf("parse VmHWM: %w", err)
			}
			return kb / 1024, nil
		}
	}
	return 0, fmt.Errorf("VmHWM not present in /proc/self/status")
}

// gridCell measures the batch engine's per-cell rate on a small sweep
// (8 cells per iteration, reported per cell).
func gridCell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gridseg.RunGrid("n=32 w=1,2 tau=0.42,0.45 reps=2", gridseg.GridOptions{Seed: uint64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// find returns the named metric; measure always emits every probe, so
// a miss is a programming error.
func find(ms []metric, name string) metric {
	for _, m := range ms {
		if m.Name == name {
			return m
		}
	}
	log.Fatalf("metric %s not measured", name)
	return metric{}
}

// readBaseline loads and validates a committed trajectory file.
func readBaseline(path string) (baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return baseline{}, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return baseline{}, fmt.Errorf("%s: %w", path, err)
	}
	if b.Schema != schema {
		return baseline{}, fmt.Errorf("%s: schema %q, want %q", path, b.Schema, schema)
	}
	return b, nil
}

// compare fails when a current metric is more than tolerance slower
// than the baseline. Metrics present only on one side are reported but
// never fatal, so the trajectory can grow new probes.
func compare(prev, cur baseline, tolerance float64) error {
	prevBy := map[string]metric{}
	for _, m := range prev.Metrics {
		prevBy[m.Name] = m
	}
	var failures []string
	for _, m := range cur.Metrics {
		pm, ok := prevBy[m.Name]
		if !ok {
			fmt.Printf("%-28s new metric (no baseline)\n", m.Name)
			continue
		}
		ratio := m.Ns / pm.Ns
		fmt.Printf("%-28s %12.1f -> %9.1f ns/%s (%+.1f%%)\n", m.Name, pm.Ns, m.Ns, m.Unit, (ratio-1)*100)
		if ratio > 1+tolerance {
			failures = append(failures, fmt.Sprintf("%s regressed %.1f%% (%.1f -> %.1f ns/%s)",
				m.Name, (ratio-1)*100, pm.Ns, m.Ns, m.Unit))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark regression:\n  %s", failures[0])
	}
	return nil
}
