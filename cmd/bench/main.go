// Command bench records the repository's benchmark trajectory: it
// measures the hot-path metrics (flip throughput on both engines — on
// the default path and on every scenario axis the fast engine covers:
// open boundaries, vacancies, heterogeneous tau, and the Kawasaki swap
// dynamic — plus a complete run to fixation and the batch-engine grid
// cell rate), writes them to a JSON baseline file, and — in check
// mode — fails when any metric regresses more than a tolerance against
// a committed baseline.
//
//	bench -out BENCH_2.json              # record a new baseline
//	bench -baseline BENCH_2.json         # fail on >20% regression
//	bench -baseline BENCH_2.json -out BENCH_2.json  # check then refresh
//	bench -minspeedup 3                  # fail unless fast >= 3x reference
//	                                     # on every fast/reference pair
//
// Each metric is the minimum of three testing.Benchmark runs, which
// suppresses scheduler noise; all metrics are nanoseconds per unit
// (lower is better).
//
// Absolute ns comparisons only make sense on one machine; across
// machines (CI runners vary by CPU generation and steal) use
// -minspeedup, which compares the fast engine against the reference
// engine measured in the same run, plus a loose -tolerance as a
// catastrophic-regression backstop.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"

	"gridseg"
)

// metric is one trajectory entry: a name and its cost in ns per unit.
type metric struct {
	Name string  `json:"name"`
	Unit string  `json:"unit"`
	Ns   float64 `json:"ns_per_unit"`
}

// baseline is the JSON shape of a trajectory file.
type baseline struct {
	Schema  string   `json:"schema"`
	Go      string   `json:"go"`
	Metrics []metric `json:"metrics"`
}

const schema = "gridseg-bench/v1"

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	var (
		out        = flag.String("out", "", "write the measured trajectory to this JSON file")
		base       = flag.String("baseline", "", "compare against this committed baseline and fail on regression")
		tolerance  = flag.Float64("tolerance", 0.20, "allowed fractional slowdown per metric before failing")
		minSpeedup = flag.Float64("minspeedup", 0, "fail unless the fast engine beats the reference by this factor in this run (machine-independent; 0 disables)")
		reps       = flag.Int("reps", 3, "benchmark repetitions per metric (minimum is reported)")
	)
	flag.Parse()
	if *out == "" && *base == "" && *minSpeedup <= 0 {
		log.Fatal("nothing to do: pass -out, -baseline, and/or -minspeedup")
	}

	cur := baseline{Schema: schema, Go: runtime.Version(), Metrics: measure(*reps)}
	for _, m := range cur.Metrics {
		fmt.Printf("%-28s %12.1f ns/%s\n", m.Name, m.Ns, m.Unit)
	}

	if *minSpeedup > 0 {
		// Every fast/reference pair must clear the bar: the default
		// path and each scenario axis the fast engine covers (open
		// boundary, vacancies, heterogeneous tau, the swap dynamic).
		pairs := [][2]string{
			{"flip_fig1_fast", "flip_fig1_reference"},
			{"flip_open_fast", "flip_open_reference"},
			{"flip_rho_fast", "flip_rho_reference"},
			{"flip_taudist_fast", "flip_taudist_reference"},
			{"flip_kawasaki_fast", "flip_kawasaki_reference"},
		}
		for _, pr := range pairs {
			fast, ref := find(cur.Metrics, pr[0]), find(cur.Metrics, pr[1])
			speedup := ref.Ns / fast.Ns
			fmt.Printf("%-28s %.2fx vs %s (want >= %.2fx)\n", pr[0], speedup, pr[1], *minSpeedup)
			if speedup < *minSpeedup {
				log.Fatalf("%s only %.2fx faster than %s (want >= %.2fx)", pr[0], speedup, pr[1], *minSpeedup)
			}
		}
	}
	if *base != "" {
		prev, err := readBaseline(*base)
		if err != nil {
			log.Fatal(err)
		}
		if err := compare(prev, cur, *tolerance); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("no regression beyond %.0f%% against %s\n", *tolerance*100, *base)
	}
	if *out != "" {
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// measure runs every trajectory metric reps times and keeps the
// fastest observation of each.
func measure(reps int) []metric {
	type probe struct {
		name, unit string
		perOp      float64 // units of work per benchmark op
		run        func(b *testing.B)
	}
	// Scenario probes pair a fast and a reference measurement at the
	// same parameters, so the trajectory records the engine-coverage
	// speedup on every scenario axis (open boundaries, vacancies,
	// heterogeneous tau) and on the swap dynamic, all at the Fig. 1
	// neighborhood size.
	fig1 := gridseg.Config{N: 256, W: 10, Tau: 0.42}
	open := fig1
	open.Boundary = gridseg.BoundaryOpen
	rho := fig1
	rho.Rho = 0.1
	taudist := fig1
	taudist.TauDist = "mix:0.35,0.45:0.5"
	kawasaki := fig1
	kawasaki.Dynamic = gridseg.Kawasaki
	big := fig1
	big.N = 1024
	probes := []probe{
		{"flip_fig1_fast", "flip", 1, flipThroughput(fig1, gridseg.EngineFast)},
		{"flip_fig1_reference", "flip", 1, flipThroughput(fig1, gridseg.EngineReference)},
		{"flip_n1024_fast", "flip", 1, flipThroughput(big, gridseg.EngineFast)},
		{"flip_open_fast", "flip", 1, flipThroughput(open, gridseg.EngineFast)},
		{"flip_open_reference", "flip", 1, flipThroughput(open, gridseg.EngineReference)},
		{"flip_rho_fast", "flip", 1, flipThroughput(rho, gridseg.EngineFast)},
		{"flip_rho_reference", "flip", 1, flipThroughput(rho, gridseg.EngineReference)},
		{"flip_taudist_fast", "flip", 1, flipThroughput(taudist, gridseg.EngineFast)},
		{"flip_taudist_reference", "flip", 1, flipThroughput(taudist, gridseg.EngineReference)},
		// Kawasaki "flips" are swap attempts (two masked flip-updates
		// plus the occasional revert), measured per attempt.
		{"flip_kawasaki_fast", "flip", 1, flipThroughput(kawasaki, gridseg.EngineFast)},
		{"flip_kawasaki_reference", "flip", 1, flipThroughput(kawasaki, gridseg.EngineReference)},
		{"run_to_fixation", "run", 1, runToFixation},
		{"grid_cell", "cell", 8, gridCell},
	}
	out := make([]metric, 0, len(probes))
	for _, p := range probes {
		best := 0.0
		for r := 0; r < reps; r++ {
			res := testing.Benchmark(p.run)
			ns := float64(res.NsPerOp()) / p.perOp
			if r == 0 || ns < best {
				best = ns
			}
		}
		out = append(out, metric{Name: p.name, Unit: p.unit, Ns: best})
	}
	return out
}

// flipThroughput measures per-event cost at the given configuration
// and engine, re-drawing a configuration off the clock when the
// process reaches a terminal state (mirrors bench_test.go).
func flipThroughput(cfg gridseg.Config, engine gridseg.Engine) func(b *testing.B) {
	return func(b *testing.B) {
		c := cfg
		c.Seed, c.Engine = 1, engine
		m, err := gridseg.New(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !m.Step() {
				b.StopTimer()
				c.Seed = uint64(i) + 2
				m, err = gridseg.New(c)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		}
	}
}

// runToFixation measures a complete small run.
func runToFixation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := gridseg.New(gridseg.Config{N: 96, W: 3, Tau: 0.45, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		m.Run(0)
	}
}

// gridCell measures the batch engine's per-cell rate on a small sweep
// (8 cells per iteration, reported per cell).
func gridCell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gridseg.RunGrid("n=32 w=1,2 tau=0.42,0.45 reps=2", gridseg.GridOptions{Seed: uint64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// find returns the named metric; measure always emits every probe, so
// a miss is a programming error.
func find(ms []metric, name string) metric {
	for _, m := range ms {
		if m.Name == name {
			return m
		}
	}
	log.Fatalf("metric %s not measured", name)
	return metric{}
}

// readBaseline loads and validates a committed trajectory file.
func readBaseline(path string) (baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return baseline{}, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return baseline{}, fmt.Errorf("%s: %w", path, err)
	}
	if b.Schema != schema {
		return baseline{}, fmt.Errorf("%s: schema %q, want %q", path, b.Schema, schema)
	}
	return b, nil
}

// compare fails when a current metric is more than tolerance slower
// than the baseline. Metrics present only on one side are reported but
// never fatal, so the trajectory can grow new probes.
func compare(prev, cur baseline, tolerance float64) error {
	prevBy := map[string]metric{}
	for _, m := range prev.Metrics {
		prevBy[m.Name] = m
	}
	var failures []string
	for _, m := range cur.Metrics {
		pm, ok := prevBy[m.Name]
		if !ok {
			fmt.Printf("%-28s new metric (no baseline)\n", m.Name)
			continue
		}
		ratio := m.Ns / pm.Ns
		fmt.Printf("%-28s %12.1f -> %9.1f ns/%s (%+.1f%%)\n", m.Name, pm.Ns, m.Ns, m.Unit, (ratio-1)*100)
		if ratio > 1+tolerance {
			failures = append(failures, fmt.Sprintf("%s regressed %.1f%% (%.1f -> %.1f ns/%s)",
				m.Name, (ratio-1)*100, pm.Ns, m.Ns, m.Unit))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark regression:\n  %s", failures[0])
	}
	return nil
}
