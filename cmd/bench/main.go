// Command bench records the repository's benchmark trajectory: it
// measures the hot-path metrics (flip throughput on both engines, a
// complete run to fixation, and the batch-engine grid cell rate),
// writes them to a JSON baseline file, and — in check mode — fails
// when any metric regresses more than a tolerance against a committed
// baseline.
//
//	bench -out BENCH_2.json              # record a new baseline
//	bench -baseline BENCH_2.json         # fail on >20% regression
//	bench -baseline BENCH_2.json -out BENCH_2.json  # check then refresh
//	bench -minspeedup 3                  # fail unless fast >= 3x reference
//
// Each metric is the minimum of three testing.Benchmark runs, which
// suppresses scheduler noise; all metrics are nanoseconds per unit
// (lower is better).
//
// Absolute ns comparisons only make sense on one machine; across
// machines (CI runners vary by CPU generation and steal) use
// -minspeedup, which compares the fast engine against the reference
// engine measured in the same run, plus a loose -tolerance as a
// catastrophic-regression backstop.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"

	"gridseg"
)

// metric is one trajectory entry: a name and its cost in ns per unit.
type metric struct {
	Name string  `json:"name"`
	Unit string  `json:"unit"`
	Ns   float64 `json:"ns_per_unit"`
}

// baseline is the JSON shape of a trajectory file.
type baseline struct {
	Schema  string   `json:"schema"`
	Go      string   `json:"go"`
	Metrics []metric `json:"metrics"`
}

const schema = "gridseg-bench/v1"

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	var (
		out        = flag.String("out", "", "write the measured trajectory to this JSON file")
		base       = flag.String("baseline", "", "compare against this committed baseline and fail on regression")
		tolerance  = flag.Float64("tolerance", 0.20, "allowed fractional slowdown per metric before failing")
		minSpeedup = flag.Float64("minspeedup", 0, "fail unless the fast engine beats the reference by this factor in this run (machine-independent; 0 disables)")
		reps       = flag.Int("reps", 3, "benchmark repetitions per metric (minimum is reported)")
	)
	flag.Parse()
	if *out == "" && *base == "" && *minSpeedup <= 0 {
		log.Fatal("nothing to do: pass -out, -baseline, and/or -minspeedup")
	}

	cur := baseline{Schema: schema, Go: runtime.Version(), Metrics: measure(*reps)}
	for _, m := range cur.Metrics {
		fmt.Printf("%-28s %12.1f ns/%s\n", m.Name, m.Ns, m.Unit)
	}

	if *minSpeedup > 0 {
		ref, fast := find(cur.Metrics, "flip_fig1_reference"), find(cur.Metrics, "flip_fig1_fast")
		speedup := ref.Ns / fast.Ns
		fmt.Printf("fast-engine speedup this run: %.2fx (want >= %.2fx)\n", speedup, *minSpeedup)
		if speedup < *minSpeedup {
			log.Fatalf("fast engine only %.2fx faster than reference (want >= %.2fx)", speedup, *minSpeedup)
		}
	}
	if *base != "" {
		prev, err := readBaseline(*base)
		if err != nil {
			log.Fatal(err)
		}
		if err := compare(prev, cur, *tolerance); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("no regression beyond %.0f%% against %s\n", *tolerance*100, *base)
	}
	if *out != "" {
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// measure runs every trajectory metric reps times and keeps the
// fastest observation of each.
func measure(reps int) []metric {
	type probe struct {
		name, unit string
		perOp      float64 // units of work per benchmark op
		run        func(b *testing.B)
	}
	probes := []probe{
		{"flip_fig1_fast", "flip", 1, func(b *testing.B) { flipThroughput(b, 256, 10, 0.42, gridseg.EngineFast, gridseg.BoundaryTorus) }},
		{"flip_fig1_reference", "flip", 1, func(b *testing.B) { flipThroughput(b, 256, 10, 0.42, gridseg.EngineReference, gridseg.BoundaryTorus) }},
		{"flip_n1024_fast", "flip", 1, func(b *testing.B) { flipThroughput(b, 1024, 10, 0.42, gridseg.EngineFast, gridseg.BoundaryTorus) }},
		// The open-boundary scenario runs the reference engine with
		// clamped windows and per-site thresholds — the scenario
		// subsystem's hot path, gated like every other metric.
		{"flip_open_reference", "flip", 1, func(b *testing.B) { flipThroughput(b, 256, 10, 0.42, gridseg.EngineReference, gridseg.BoundaryOpen) }},
		{"run_to_fixation", "run", 1, runToFixation},
		{"grid_cell", "cell", 8, gridCell},
	}
	out := make([]metric, 0, len(probes))
	for _, p := range probes {
		best := 0.0
		for r := 0; r < reps; r++ {
			res := testing.Benchmark(p.run)
			ns := float64(res.NsPerOp()) / p.perOp
			if r == 0 || ns < best {
				best = ns
			}
		}
		out = append(out, metric{Name: p.name, Unit: p.unit, Ns: best})
	}
	return out
}

// flipThroughput measures per-flip cost, re-drawing a configuration
// off the clock when the process fixates (mirrors bench_test.go).
func flipThroughput(b *testing.B, n, w int, tau float64, engine gridseg.Engine, boundary gridseg.Boundary) {
	m, err := gridseg.New(gridseg.Config{N: n, W: w, Tau: tau, Seed: 1, Engine: engine, Boundary: boundary})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.Step() {
			b.StopTimer()
			m, err = gridseg.New(gridseg.Config{N: n, W: w, Tau: tau, Seed: uint64(i) + 2, Engine: engine, Boundary: boundary})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// runToFixation measures a complete small run.
func runToFixation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := gridseg.New(gridseg.Config{N: 96, W: 3, Tau: 0.45, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		m.Run(0)
	}
}

// gridCell measures the batch engine's per-cell rate on a small sweep
// (8 cells per iteration, reported per cell).
func gridCell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gridseg.RunGrid("n=32 w=1,2 tau=0.42,0.45 reps=2", gridseg.GridOptions{Seed: uint64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// find returns the named metric; measure always emits every probe, so
// a miss is a programming error.
func find(ms []metric, name string) metric {
	for _, m := range ms {
		if m.Name == name {
			return m
		}
	}
	log.Fatalf("metric %s not measured", name)
	return metric{}
}

// readBaseline loads and validates a committed trajectory file.
func readBaseline(path string) (baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return baseline{}, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return baseline{}, fmt.Errorf("%s: %w", path, err)
	}
	if b.Schema != schema {
		return baseline{}, fmt.Errorf("%s: schema %q, want %q", path, b.Schema, schema)
	}
	return b, nil
}

// compare fails when a current metric is more than tolerance slower
// than the baseline. Metrics present only on one side are reported but
// never fatal, so the trajectory can grow new probes.
func compare(prev, cur baseline, tolerance float64) error {
	prevBy := map[string]metric{}
	for _, m := range prev.Metrics {
		prevBy[m.Name] = m
	}
	var failures []string
	for _, m := range cur.Metrics {
		pm, ok := prevBy[m.Name]
		if !ok {
			fmt.Printf("%-28s new metric (no baseline)\n", m.Name)
			continue
		}
		ratio := m.Ns / pm.Ns
		fmt.Printf("%-28s %12.1f -> %9.1f ns/%s (%+.1f%%)\n", m.Name, pm.Ns, m.Ns, m.Unit, (ratio-1)*100)
		if ratio > 1+tolerance {
			failures = append(failures, fmt.Sprintf("%s regressed %.1f%% (%.1f -> %.1f ns/%s)",
				m.Name, (ratio-1)*100, pm.Ns, m.Ns, m.Unit))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark regression:\n  %s", failures[0])
	}
	return nil
}
