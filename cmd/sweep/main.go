// Command sweep runs reproduction experiments and parameter-grid
// scans. See README.md for the experiment index and the grid syntax.
//
// Registry mode runs experiments E1..E18 from the reproduction
// registry; each regenerates one figure of the paper or validates one
// theorem's shape:
//
//	sweep -list
//	sweep -exp E2,E3,E4
//	sweep -exp all -full -out artifacts/
//
// Grid mode runs an arbitrary (n, w, tau, p, dynamic, replicates)
// parameter grid — optionally crossed with the scenario axes boundary
// (torus|open), rho (vacancy fraction), and taudist (per-site
// intolerance distribution) — through the batch engine and writes
// CSV/JSON artifacts; results are byte-identical for any -workers
// setting, and -checkpoint lets long full-scale scans resume after
// interruption:
//
//	sweep -grid "n=96,240 w=2:4 tau=0.40:0.48:0.02 reps=8" -out artifacts/ -workers 8
//	sweep -grid "n=240 w=4 tau=0.45 dyn=glauber,kawasaki reps=16" -checkpoint scan.ck.json
//	sweep -grid "n=128 w=2 tau=0.42 boundary=torus,open rho=0:0.2:0.05 reps=8" -cache store/
//	sweep -grid "n=128 w=2 tau=0.42 dyn=move rho=0.1 taudist=mix:0.35,0.45:0.5 reps=8"
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"gridseg"
)

// config holds the parsed command-line options.
type config struct {
	exp        string
	grid       string
	list       bool
	full       bool
	seed       uint64
	out        string
	workers    int
	engine     string
	checkpoint string
	cache      string
	verbose    bool
}

// newFlagSet declares the command's flags; main parses it, and the
// usage test pins it against the README documentation.
func newFlagSet() (*flag.FlagSet, *config) {
	c := &config{}
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	fs.StringVar(&c.exp, "exp", "", "comma-separated experiment IDs, or 'all'")
	fs.StringVar(&c.grid, "grid", "", `parameter grid spec, e.g. "n=96,240 w=2:4 tau=0.40:0.48:0.02 reps=8"; scenario axes: boundary=torus,open rho=0:0.2:0.05 taudist=global|mix:0.35,0.45:0.5`)
	fs.BoolVar(&c.list, "list", false, "list registered experiments")
	fs.BoolVar(&c.full, "full", false, "paper-scale parameters (slower)")
	fs.Uint64Var(&c.seed, "seed", 1, "random seed")
	fs.StringVar(&c.out, "out", "", "artifact directory (PNG, CSV, JSON); created if missing")
	fs.IntVar(&c.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS); never affects results")
	fs.StringVar(&c.engine, "engine", "auto", "Glauber engine: auto, reference, or fast; never affects results, only speed")
	fs.StringVar(&c.checkpoint, "checkpoint", "", "grid mode: JSON checkpoint file to stream/resume cell results")
	fs.StringVar(&c.cache, "cache", "", "content-addressed result store directory; cached cells are served without recomputation (shared with cmd/segd)")
	fs.BoolVar(&c.verbose, "v", false, "progress logging")
	return fs, c
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")

	fs, cfg := newFlagSet()
	_ = fs.Parse(os.Args[1:])

	engine, err := gridseg.ParseEngine(cfg.engine)
	if err != nil {
		log.Fatal(err)
	}

	// Create the artifact directory up front (including parents), so a
	// long scan never fails at write time over a missing directory.
	if cfg.out != "" {
		if err := os.MkdirAll(cfg.out, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	var cacheStore gridseg.CellStore
	if cfg.cache != "" {
		cacheStore, err = gridseg.OpenStore(cfg.cache)
		if err != nil {
			log.Fatal(err)
		}
	}

	if cfg.grid != "" {
		runGrid(cfg.grid, cfg.seed, cfg.workers, engine, cfg.out, cfg.checkpoint, cacheStore, cfg.verbose)
		return
	}

	infos := gridseg.Experiments()
	if cfg.list || cfg.exp == "" {
		fmt.Println("registered experiments:")
		for _, e := range infos {
			fmt.Printf("  %-4s %-45s %s\n", e.ID, e.Figure, e.Title)
		}
		if cfg.exp == "" {
			fmt.Println("\nrun with -exp <ID>[,<ID>...], -exp all, or -grid \"<spec>\"")
		}
		return
	}

	var ids []string
	if cfg.exp == "all" {
		for _, e := range infos {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(cfg.exp, ",")
	}

	opt := gridseg.ExperimentOptions{Full: cfg.full, Seed: cfg.seed, OutDir: cfg.out, Workers: cfg.workers, Engine: engine, Store: cacheStore}
	if cfg.verbose {
		opt.Logf = func(format string, args ...interface{}) {
			log.Printf(format, args...)
		}
	}
	for _, id := range ids {
		text, err := gridseg.RunExperiment(strings.TrimSpace(id), opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(text)
	}
}

// runGrid executes a parameter-grid scan and writes its artifacts.
func runGrid(spec string, seed uint64, workers int, engine gridseg.Engine, out, checkpoint string, cache gridseg.CellStore, verbose bool) {
	opt := gridseg.GridOptions{Seed: seed, Workers: workers, CheckpointPath: checkpoint, Engine: engine, Store: cache}
	if verbose {
		opt.Progress = func(done, total int) {
			log.Printf("grid: %d/%d cells", done, total)
		}
	}
	res, err := gridseg.RunGrid(spec, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Text())
	cs := res.Cache()
	log.Printf("grid: %d cells (%d cached, %d computed)", res.Len(), cs.Hits, cs.Misses)
	if cs.Err != "" {
		log.Printf("warning: result store disabled mid-run: %s (results are complete; affected cells were not cached)", cs.Err)
	}
	if out == "" {
		return
	}
	csvPath := filepath.Join(out, "grid.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	jsonPath := filepath.Join(out, "grid.json")
	j, err := os.Create(jsonPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteJSON(j); err != nil {
		log.Fatal(err)
	}
	if err := j.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s and %s (%d cells)", csvPath, jsonPath, res.Len())
}
