// Command sweep runs reproduction experiments and parameter-grid
// scans. See README.md for the experiment index and the grid syntax.
//
// Registry mode runs experiments E1..E18 from the reproduction
// registry; each regenerates one figure of the paper or validates one
// theorem's shape:
//
//	sweep -list
//	sweep -exp E2,E3,E4
//	sweep -exp all -full -out artifacts/
//
// Grid mode runs an arbitrary (n, w, tau, p, dynamic, replicates)
// parameter grid through the batch engine and writes CSV/JSON
// artifacts; results are byte-identical for any -workers setting, and
// -checkpoint lets long full-scale scans resume after interruption:
//
//	sweep -grid "n=96,240 w=2:4 tau=0.40:0.48:0.02 reps=8" -out artifacts/ -workers 8
//	sweep -grid "n=240 w=4 tau=0.45 dyn=glauber,kawasaki reps=16" -checkpoint scan.ck.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"gridseg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")

	var (
		exp        = flag.String("exp", "", "comma-separated experiment IDs, or 'all'")
		grid       = flag.String("grid", "", `parameter grid spec, e.g. "n=96,240 w=2:4 tau=0.40:0.48:0.02 reps=8"`)
		list       = flag.Bool("list", false, "list registered experiments")
		full       = flag.Bool("full", false, "paper-scale parameters (slower)")
		seed       = flag.Uint64("seed", 1, "random seed")
		out        = flag.String("out", "", "artifact directory (PNG, CSV, JSON)")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS); never affects results")
		engineFlag = flag.String("engine", "auto", "Glauber engine: auto, reference, or fast; never affects results, only speed")
		checkpoint = flag.String("checkpoint", "", "grid mode: JSON checkpoint file to stream/resume cell results")
		verbose    = flag.Bool("v", false, "progress logging")
	)
	flag.Parse()

	engine, err := gridseg.ParseEngine(*engineFlag)
	if err != nil {
		log.Fatal(err)
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	if *grid != "" {
		runGrid(*grid, *seed, *workers, engine, *out, *checkpoint, *verbose)
		return
	}

	infos := gridseg.Experiments()
	if *list || *exp == "" {
		fmt.Println("registered experiments:")
		for _, e := range infos {
			fmt.Printf("  %-4s %-45s %s\n", e.ID, e.Figure, e.Title)
		}
		if *exp == "" {
			fmt.Println("\nrun with -exp <ID>[,<ID>...], -exp all, or -grid \"<spec>\"")
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, e := range infos {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	opt := gridseg.ExperimentOptions{Full: *full, Seed: *seed, OutDir: *out, Workers: *workers, Engine: engine}
	if *verbose {
		opt.Logf = func(format string, args ...interface{}) {
			log.Printf(format, args...)
		}
	}
	for _, id := range ids {
		text, err := gridseg.RunExperiment(strings.TrimSpace(id), opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(text)
	}
}

// runGrid executes a parameter-grid scan and writes its artifacts.
func runGrid(spec string, seed uint64, workers int, engine gridseg.Engine, out, checkpoint string, verbose bool) {
	opt := gridseg.GridOptions{Seed: seed, Workers: workers, CheckpointPath: checkpoint, Engine: engine}
	if verbose {
		opt.Progress = func(done, total int) {
			log.Printf("grid: %d/%d cells", done, total)
		}
	}
	res, err := gridseg.RunGrid(spec, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Text())
	if out == "" {
		return
	}
	csvPath := filepath.Join(out, "grid.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	jsonPath := filepath.Join(out, "grid.json")
	j, err := os.Create(jsonPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteJSON(j); err != nil {
		log.Fatal(err)
	}
	if err := j.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s and %s (%d cells)", csvPath, jsonPath, res.Len())
}
