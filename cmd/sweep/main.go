// Command sweep runs experiments from the reproduction registry
// (DESIGN.md section 5): each experiment regenerates one figure of the
// paper or validates one theorem's shape.
//
//	sweep -list
//	sweep -exp E2,E3,E4
//	sweep -exp all -full -out artifacts/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"gridseg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")

	var (
		exp     = flag.String("exp", "", "comma-separated experiment IDs, or 'all'")
		list    = flag.Bool("list", false, "list registered experiments")
		full    = flag.Bool("full", false, "paper-scale parameters (slower)")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("out", "", "artifact directory (PNG, CSV)")
		verbose = flag.Bool("v", false, "progress logging")
	)
	flag.Parse()

	infos := gridseg.Experiments()
	if *list || *exp == "" {
		fmt.Println("registered experiments:")
		for _, e := range infos {
			fmt.Printf("  %-4s %-45s %s\n", e.ID, e.Figure, e.Title)
		}
		if *exp == "" {
			fmt.Println("\nrun with -exp <ID>[,<ID>...] or -exp all")
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, e := range infos {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	opt := gridseg.ExperimentOptions{Full: *full, Seed: *seed, OutDir: *out}
	if *verbose {
		opt.Logf = func(format string, args ...interface{}) {
			log.Printf(format, args...)
		}
	}
	for _, id := range ids {
		text, err := gridseg.RunExperiment(strings.TrimSpace(id), opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(text)
	}
}
