// Command segload is a closed-loop load generator for segd: it
// submits a grid, waits for it to finish, then hammers the artifact,
// status, and SSE-replay endpoints with a fixed number of concurrent
// clients for a fixed duration and reports throughput and latency.
// Closed-loop means each client issues its next request only after the
// previous one completes, so the offered load adapts to the server
// instead of overrunning it.
//
//	segload -url http://localhost:8080 -clients 16 -duration 10s
//	segload -inproc -clients 8 -sse 2 -duration 2s   # self-contained smoke
//
// With -inproc, segload starts a segd server inside its own process on
// a loopback port and load-tests that — no external setup, which is
// how the CI cluster-test target uses it. The exit status is non-zero
// if any request failed, so it doubles as an end-to-end smoke test.
//
// With -metrics-url, segload also scrapes a Prometheus /metrics
// endpoint throughout the load phase and reports what the server said
// about itself — cell cache hit rate and dispatcher queue-depth
// percentiles; any scrape failure fails the run.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"gridseg"
	"gridseg/internal/server"
)

// config holds the parsed command-line options.
type config struct {
	url        string
	metricsURL string
	inproc     bool
	spec       string
	seed       uint64
	clients    int
	sse        int
	duration   time.Duration
}

// newFlagSet declares the command's flags; main parses it, and the
// usage test pins it against the README documentation.
func newFlagSet() (*flag.FlagSet, *config) {
	c := &config{}
	fs := flag.NewFlagSet("segload", flag.ExitOnError)
	fs.StringVar(&c.url, "url", "", "base URL of the segd server to load (e.g. http://localhost:8080)")
	fs.StringVar(&c.metricsURL, "metrics-url", "", "Prometheus /metrics endpoint to scrape every 200ms during the load phase (\"auto\" = the loaded server's own /metrics); reports cache hit rate and queue-depth percentiles, and any scrape failure fails the run")
	fs.BoolVar(&c.inproc, "inproc", false, "start an in-process segd over a memory store and load that instead of -url (self-contained smoke test)")
	fs.StringVar(&c.spec, "spec", "n=16 w=1 tau=0.40,0.45 reps=2", "grid spec to submit and serve during the run")
	fs.Uint64Var(&c.seed, "seed", 1, "sweep seed for the submitted grid")
	fs.IntVar(&c.clients, "clients", 8, "concurrent closed-loop clients fetching artifacts and status")
	fs.IntVar(&c.sse, "sse", 1, "concurrent closed-loop clients replaying the SSE event stream")
	fs.DurationVar(&c.duration, "duration", 5*time.Second, "how long the closed loop runs")
	return fs, c
}

// stats aggregates request outcomes across all clients.
type stats struct {
	mu        sync.Mutex
	requests  int
	errors    int
	latencies []time.Duration
}

func (s *stats) record(d time.Duration, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	if err != nil {
		s.errors++
		if s.errors <= 5 {
			log.Printf("request failed: %v", err)
		}
		return
	}
	s.latencies = append(s.latencies, d)
}

// report prints the run summary and returns whether it was clean.
func (s *stats) report(label string, elapsed time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.requests == 0 {
		fmt.Printf("%-10s no requests issued\n", label)
		return true
	}
	sort.Slice(s.latencies, func(i, j int) bool { return s.latencies[i] < s.latencies[j] })
	pct := func(p float64) time.Duration {
		if len(s.latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(s.latencies)-1))
		return s.latencies[i]
	}
	fmt.Printf("%-10s %7d requests  %6.1f req/s  %3d errors  p50 %-10s p99 %s\n",
		label, s.requests, float64(s.requests)/elapsed.Seconds(), s.errors,
		pct(0.50).Round(10*time.Microsecond), pct(0.99).Round(10*time.Microsecond))
	return s.errors == 0
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("segload: ")
	fs, cfg := newFlagSet()
	_ = fs.Parse(os.Args[1:])

	base := cfg.url
	if cfg.inproc {
		var stop func()
		var err error
		base, stop, err = startInproc()
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}
	if base == "" {
		log.Fatal("need -url or -inproc")
	}
	base = strings.TrimRight(base, "/")

	id, err := submitAndWait(base, cfg.spec, cfg.seed)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("grid %s ready; driving %d artifact clients and %d SSE clients for %s",
		id, cfg.clients, cfg.sse, cfg.duration)

	// The closed loop: every client repeats its request cycle until the
	// deadline, timing each request.
	artifact, sse := &stats{}, &stats{}
	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	var mp *probe
	if cfg.metricsURL != "" {
		u := cfg.metricsURL
		if u == "auto" {
			u = base + "/metrics"
		}
		mp = &probe{url: u}
		wg.Add(1)
		go func() {
			defer wg.Done()
			mp.run(deadline)
		}()
	}
	targets := []string{
		base + "/grids/" + id + "/artifact.csv",
		base + "/grids/" + id,
		base + "/grids/" + id + "/artifact.json",
	}
	for i := 0; i < cfg.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; time.Now().Before(deadline); n++ {
				start := time.Now()
				err := get(targets[(i+n)%len(targets)])
				artifact.record(time.Since(start), err)
			}
		}(i)
	}
	for i := 0; i < cfg.sse; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				start := time.Now()
				err := replaySSE(base + "/grids/" + id + "/events")
				sse.record(time.Since(start), err)
			}
		}()
	}
	wg.Wait()

	ok := artifact.report("artifact", cfg.duration)
	ok = sse.report("sse", cfg.duration) && ok
	if mp != nil {
		ok = mp.report() && ok
	}
	if !ok {
		os.Exit(1)
	}
}

// startInproc starts a segd server on a loopback port inside this
// process, backed by a memory store.
func startInproc() (base string, stop func(), err error) {
	srv, err := server.New(server.Options{Store: gridseg.NewMemoryStore()})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		srv.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// submitAndWait posts the grid and polls its status until the run
// finishes, so the load phase measures a steady-state server.
func submitAndWait(base, spec string, seed uint64) (string, error) {
	body, _ := json.Marshal(map[string]interface{}{"spec": spec, "seed": seed})
	resp, err := http.Post(base+"/grids", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	var status struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	// 202 = newly queued, 200 = attached to an existing identical run
	// (either is fine: the loop below waits for done in both cases).
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("submit: status %d: %s", resp.StatusCode, status.Error)
	}
	for deadline := time.Now().Add(2 * time.Minute); time.Now().Before(deadline); {
		resp, err := http.Get(base + "/grids/" + status.ID)
		if err != nil {
			return "", err
		}
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		switch status.State {
		case "done":
			return status.ID, nil
		case "failed":
			return "", fmt.Errorf("grid failed: %s", status.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}
	return "", fmt.Errorf("grid %s did not finish in time", status.ID)
}

// get fetches one URL and drains the body, erroring on any non-200.
func get(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	n := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		n++
	}
	if sc.Err() != nil {
		return fmt.Errorf("GET %s: %w", url, sc.Err())
	}
	if n == 0 {
		return fmt.Errorf("GET %s: empty body", url)
	}
	return nil
}

// replaySSE reads a finished run's full event replay and checks it
// ends with a terminal event.
func replaySSE(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("SSE %s: status %d", url, resp.StatusCode)
	}
	terminal := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		if sc.Text() == "event: done" || sc.Text() == "event: error" {
			terminal = true
		}
	}
	if sc.Err() != nil {
		return fmt.Errorf("SSE %s: %w", url, sc.Err())
	}
	if !terminal {
		return fmt.Errorf("SSE %s: stream ended without a terminal event", url)
	}
	return nil
}
