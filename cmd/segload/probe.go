package main

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"gridseg/internal/metrics"
)

// probeInterval is how often the metrics probe scrapes during the load
// phase: fast enough to catch queue-depth transients, slow enough to be
// negligible load next to the closed-loop clients.
const probeInterval = 200 * time.Millisecond

// probe scrapes a /metrics endpoint on a fixed interval during the
// load run and summarizes what the server reported about itself:
// the cell cache hit rate and the dispatcher queue-depth distribution.
// Scrape or parse failures are errors — an unreachable or malformed
// exposition fails the run like any other bad response.
type probe struct {
	url string

	mu      sync.Mutex
	scrapes int
	errors  int
	lastErr error
	depths  []int64 // one segd_queue_depth sample per scrape
	cached  uint64  // latest gridseg_cells_cached_total

	computed uint64 // latest gridseg_cells_computed_total
}

// run scrapes until the deadline passes. Call from its own goroutine.
func (p *probe) run(deadline time.Time) {
	for time.Now().Before(deadline) {
		p.scrape()
		time.Sleep(probeInterval)
	}
}

// scrape fetches and parses one exposition, recording the samples this
// probe summarizes.
func (p *probe) scrape() {
	fams, err := scrapeMetrics(p.url)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.scrapes++
	if err != nil {
		p.errors++
		p.lastErr = err
		return
	}
	if s := fams["segd_queue_depth"]; len(s) > 0 {
		p.depths = append(p.depths, int64(s[0].Value))
	}
	if s := fams["gridseg_cells_cached_total"]; len(s) > 0 {
		p.cached = uint64(s[0].Value)
	}
	if s := fams["gridseg_cells_computed_total"]; len(s) > 0 {
		p.computed = uint64(s[0].Value)
	}
}

// scrapeMetrics fetches one Prometheus text exposition and parses it
// into families keyed by sample name.
func scrapeMetrics(url string) (map[string][]metrics.Sample, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: status %d", url, resp.StatusCode)
	}
	fams, err := metrics.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("scrape %s: exposition does not parse: %w", url, err)
	}
	return fams, nil
}

// report prints the probe summary and returns whether every scrape
// succeeded.
func (p *probe) report() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.errors > 0 {
		fmt.Printf("%-10s %7d scrapes  %d failed (last: %v)\n", "metrics", p.scrapes, p.errors, p.lastErr)
		return false
	}
	hitRate := "n/a"
	if total := p.cached + p.computed; total > 0 {
		hitRate = fmt.Sprintf("%.1f%%", 100*float64(p.cached)/float64(total))
	}
	sort.Slice(p.depths, func(i, j int) bool { return p.depths[i] < p.depths[j] })
	pct := func(q float64) int64 {
		if len(p.depths) == 0 {
			return 0
		}
		return p.depths[int(q*float64(len(p.depths)-1))]
	}
	fmt.Printf("%-10s %7d scrapes  cache hit rate %s  queue depth p50 %d  p99 %d  max %d\n",
		"metrics", p.scrapes, hitRate, pct(0.50), pct(0.99), pct(1.0))
	return true
}
