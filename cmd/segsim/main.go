// Command segsim runs a single segregation simulation and reports its
// evolution — the workload of the paper's Figure 1. With -png it writes
// snapshot images in the Figure 1 palette (green/blue happy agents,
// white/yellow unhappy agents, grey vacancies).
//
// Reproduce Figure 1 exactly:
//
//	segsim -n 1000 -w 10 -tau 0.42 -snapshots 4 -png out/
//
// Beyond the paper's setting, the scenario flags select hard-wall
// boundaries, vacancy dilution, and heterogeneous intolerance. The
// relocation dynamic (-mode move) needs vacancies to relocate into;
// it runs on the fast engine like the others, and -samplers exposes
// its unhappy/vacant candidate-sampler sizes at each stage:
//
//	segsim -n 200 -w 4 -tau 0.42 -boundary open
//	segsim -n 200 -w 4 -tau 0.42 -rho 0.1 -mode move -samplers
//	segsim -n 200 -w 4 -tau 0.42 -taudist mix:0.35,0.45:0.5
//
// Giant single runs can use the domain-decomposed parallel engine:
// -par sets the worker count (a pure execution detail — any count
// replays the same trajectory), -strips the strip decomposition (0
// picks the machine-independent automatic count; the strip count is
// part of the trajectory definition):
//
//	segsim -n 4096 -w 1 -tau 0.45 -engine parallel -par 8
//
// -tile coarse-grains each stage through the tiled giant-grid layout
// (internal/fastgrid.Tiled) at the given tile side, classifying tiles
// by their majority type — a block-level segregation diagnostic:
//
//	segsim -n 512 -w 4 -tau 0.42 -tile 64
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gridseg"
	"gridseg/internal/fastgrid"
)

// config holds the parsed command-line options.
type config struct {
	n, w      int
	tau, p    float64
	seed      uint64
	mode      string
	boundary  string
	rho       float64
	taudist   string
	engine    string
	par       int
	strips    int
	snapshots int
	pngDir    string
	ascii     bool
	samplers  bool
	tile      int
	maxEvents int64
}

// newFlagSet declares the command's flags; main parses it, and the
// usage test pins it against the README documentation.
func newFlagSet() (*flag.FlagSet, *config) {
	c := &config{}
	fs := flag.NewFlagSet("segsim", flag.ExitOnError)
	fs.IntVar(&c.n, "n", 200, "torus side length")
	fs.IntVar(&c.w, "w", 4, "horizon (neighborhood radius)")
	fs.Float64Var(&c.tau, "tau", 0.42, "intolerance in [0,1]")
	fs.Float64Var(&c.p, "p", 0.5, "initial Bernoulli parameter")
	fs.Uint64Var(&c.seed, "seed", 1, "random seed")
	fs.StringVar(&c.mode, "mode", "glauber", "dynamic: glauber, kawasaki, or move (move needs -rho > 0)")
	fs.StringVar(&c.boundary, "boundary", "torus", "lattice boundary: torus (wrap-around) or open (hard walls, truncated edge neighborhoods)")
	fs.Float64Var(&c.rho, "rho", 0, "vacancy fraction in [0,1): each site is empty with this probability")
	fs.StringVar(&c.taudist, "taudist", "global", "per-site intolerance distribution: global, mix:a,b:w, or uniform:lo:hi")
	fs.StringVar(&c.engine, "engine", "auto", "simulation engine: auto, reference, fast, or parallel; the sequential engines are bit-identical, and parallel with more than one strip runs its own reproducible trajectory")
	fs.IntVar(&c.par, "par", 0, "parallel engine worker count (0 = one per CPU); a pure execution detail, any count replays the same trajectory")
	fs.IntVar(&c.strips, "strips", 0, "parallel engine strip count (0 = auto, 1 = sequential delegation); the strip count is part of the trajectory definition")
	fs.IntVar(&c.snapshots, "snapshots", 4, "number of reporting stages (>= 2)")
	fs.StringVar(&c.pngDir, "png", "", "directory for snapshot PNGs (optional)")
	fs.BoolVar(&c.ascii, "ascii", false, "print an ASCII snapshot at each stage (small grids)")
	fs.BoolVar(&c.samplers, "samplers", false, "print the dynamic's candidate-sampler sizes at each stage (flippable agents; unhappy per type; unhappy/vacant)")
	fs.IntVar(&c.tile, "tile", 0, "coarse-grain each stage into tiles of this side (positive multiple of 64; 0 = off) and report the majority-type tile counts")
	fs.Int64Var(&c.maxEvents, "max-events", 0, "event budget (0 = run to fixation)")
	return fs, c
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("segsim: ")

	fs, opts := newFlagSet()
	_ = fs.Parse(os.Args[1:])

	dyn := gridseg.Glauber
	switch opts.mode {
	case "glauber":
	case "kawasaki":
		dyn = gridseg.Kawasaki
	case "move":
		dyn = gridseg.Move
	default:
		log.Fatalf("unknown -mode %q (want glauber, kawasaki, or move)", opts.mode)
	}
	boundary, err := gridseg.ParseBoundary(opts.boundary)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := gridseg.ParseEngine(opts.engine)
	if err != nil {
		log.Fatal(err)
	}
	if opts.snapshots < 2 {
		opts.snapshots = 2
	}

	cfg := gridseg.Config{
		N: opts.n, W: opts.w, Tau: opts.tau, P: opts.p, Seed: opts.seed, Dynamic: dyn,
		Boundary: boundary, Rho: opts.rho, TauDist: opts.taudist, Engine: engine,
		Par: opts.par, ParStrips: opts.strips,
	}

	// Sizing pass: learn the total number of events to fixation so the
	// reporting stages are evenly spaced.
	sizing, err := gridseg.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	total, _ := sizing.Run(opts.maxEvents)

	m, err := gridseg.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segsim: n=%d w=%d N=%d tau=%g (threshold %d/%d) p=%g seed=%d mode=%s %s total-events=%d\n",
		opts.n, opts.w, m.NeighborhoodSize(), m.EffectiveTau(), m.Threshold(), m.NeighborhoodSize(), opts.p, opts.seed, opts.mode, m.Scenario(), total)

	// The parallel Glauber engine batches whole phase cycles or strip
	// bursts into one Step, so stage progress tracks its exact flip
	// counter instead of counting Step calls.
	batched := dyn == gridseg.Glauber && m.Engine() == gridseg.EngineParallel
	var done int64
	for stage := 0; stage < opts.snapshots; stage++ {
		target := total * int64(stage) / int64(opts.snapshots-1)
		for done < target {
			if !m.Step() {
				break
			}
			if batched {
				done = m.Flips()
			} else {
				done++
			}
		}
		st := m.SegregationStats()
		fmt.Printf("stage %d/%d  events=%-10d %s\n", stage, opts.snapshots-1, done, st)
		if opts.samplers {
			fmt.Printf("  samplers: %s\n", m.SamplerSizes())
		}
		if opts.tile > 0 {
			fmt.Printf("  %s\n", tileSummary(m, opts.tile))
		}
		if opts.ascii {
			fmt.Println(m.ASCII())
		}
		if opts.pngDir != "" {
			if err := os.MkdirAll(opts.pngDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(opts.pngDir, fmt.Sprintf("stage%02d.png", stage))
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := m.WritePNG(f, 1); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  wrote %s\n", path)
		}
	}
	if m.Fixated() {
		fmt.Println("fixated: no admissible move remains")
	}
}

// tileSummary coarse-grains the current configuration through the
// tiled layout and classifies each tile by its majority type: plus- or
// minus-dominated when that type holds over 90% of the tile's agents,
// mixed otherwise (empty tiles count as mixed). Dominated-tile counts
// rise as segregation domains outgrow the tile side.
func tileSummary(m *gridseg.Model, ts int) string {
	t, err := fastgrid.TiledFromView(m.View(), ts)
	if err != nil {
		log.Fatal(err)
	}
	plus, occ := t.TileCounts()
	var plusDom, minusDom, mixed int
	for i, p := range plus {
		switch o := occ[i]; {
		case o > 0 && float64(p)/float64(o) >= 0.9:
			plusDom++
		case o > 0 && float64(p)/float64(o) <= 0.1:
			minusDom++
		default:
			mixed++
		}
	}
	return fmt.Sprintf("tiles %dx%d side=%d: plus-dom=%d minus-dom=%d mixed=%d",
		t.Tiles(), t.Tiles(), t.TileSide(), plusDom, minusDom, mixed)
}
