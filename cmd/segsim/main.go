// Command segsim runs a single segregation simulation and reports its
// evolution — the workload of the paper's Figure 1. With -png it writes
// snapshot images in the Figure 1 palette (green/blue happy agents,
// white/yellow unhappy agents).
//
// Reproduce Figure 1 exactly:
//
//	segsim -n 1000 -w 10 -tau 0.42 -snapshots 4 -png out/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gridseg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("segsim: ")

	var (
		n         = flag.Int("n", 200, "torus side length")
		w         = flag.Int("w", 4, "horizon (neighborhood radius)")
		tau       = flag.Float64("tau", 0.42, "intolerance in [0,1]")
		p         = flag.Float64("p", 0.5, "initial Bernoulli parameter")
		seed      = flag.Uint64("seed", 1, "random seed")
		mode      = flag.String("mode", "glauber", "dynamic: glauber or kawasaki")
		snapshots = flag.Int("snapshots", 4, "number of reporting stages (>= 2)")
		pngDir    = flag.String("png", "", "directory for snapshot PNGs (optional)")
		ascii     = flag.Bool("ascii", false, "print an ASCII snapshot at each stage (small grids)")
		maxEvents = flag.Int64("max-events", 0, "event budget (0 = run to fixation)")
	)
	flag.Parse()

	dyn := gridseg.Glauber
	switch *mode {
	case "glauber":
	case "kawasaki":
		dyn = gridseg.Kawasaki
	default:
		log.Fatalf("unknown -mode %q (want glauber or kawasaki)", *mode)
	}
	if *snapshots < 2 {
		*snapshots = 2
	}

	cfg := gridseg.Config{N: *n, W: *w, Tau: *tau, P: *p, Seed: *seed, Dynamic: dyn}

	// Sizing pass: learn the total number of events to fixation so the
	// reporting stages are evenly spaced.
	sizing, err := gridseg.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	total, _ := sizing.Run(*maxEvents)

	m, err := gridseg.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segsim: n=%d w=%d N=%d tau=%g (threshold %d/%d) p=%g seed=%d mode=%s total-events=%d\n",
		*n, *w, m.NeighborhoodSize(), m.EffectiveTau(), m.Threshold(), m.NeighborhoodSize(), *p, *seed, *mode, total)

	var done int64
	for stage := 0; stage < *snapshots; stage++ {
		target := total * int64(stage) / int64(*snapshots-1)
		for done < target {
			if !m.Step() {
				break
			}
			done++
		}
		st := m.SegregationStats()
		fmt.Printf("stage %d/%d  events=%-10d %s\n", stage, *snapshots-1, done, st)
		if *ascii {
			fmt.Println(m.ASCII())
		}
		if *pngDir != "" {
			if err := os.MkdirAll(*pngDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*pngDir, fmt.Sprintf("stage%02d.png", stage))
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := m.WritePNG(f, 1); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  wrote %s\n", path)
		}
	}
	if m.Fixated() {
		fmt.Println("fixated: no admissible move remains")
	}
}
