// Command segd serves parameter-grid sweeps over HTTP, backed by the
// shared content-addressed result store: submitted grids are scheduled
// through the batch engine, per-cell progress streams over SSE, and
// finished CSV/JSON artifacts are served straight from cached results.
// Resubmitting an identical or overlapping grid recomputes nothing.
//
//	segd -addr :8080 -store segstore/
//	curl -X POST localhost:8080/grids -d '{"spec": "n=96 w=2 tau=0.40:0.48:0.02 reps=4", "seed": 1}'
//	curl localhost:8080/grids/<id>/events        # SSE progress
//	curl localhost:8080/grids/<id>/artifact.csv  # final artifact
//
// segd also scales out: a coordinator decomposes grids into
// content-addressed cells and leases them to worker processes, which
// share the coordinator's store through its object endpoint. Results
// are byte-identical to a single process, whatever the cluster does.
//
//	segd -role coordinator -addr :8080 -store segstore/
//	segd -role worker -peer http://coordinator:8080
//
// The store directory is shared with cmd/sweep -cache: cells computed
// by either are served by both. See README.md for the API reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"gridseg"
	"gridseg/internal/fabric"
	"gridseg/internal/metrics"
	"gridseg/internal/server"
	"gridseg/internal/store"
)

// config holds the parsed command-line options.
type config struct {
	addr       string
	store      string
	workers    int
	queue      int
	verbose    bool
	role       string
	peer       string
	name       string
	leaseTTL   time.Duration
	journal    string
	token      string
	leaseBatch int
	logFormat  string
	liveEvery  int64
}

// newFlagSet declares the command's flags; main parses it, and the
// usage test pins it against the README documentation.
func newFlagSet() (*flag.FlagSet, *config) {
	c := &config{}
	fs := flag.NewFlagSet("segd", flag.ExitOnError)
	fs.StringVar(&c.addr, "addr", ":8080", "HTTP listen address")
	fs.StringVar(&c.store, "store", "segstore", "content-addressed result store directory (created if missing; shared with cmd/sweep -cache)")
	fs.IntVar(&c.workers, "workers", 0, "cell worker pool size per grid run (0 = GOMAXPROCS); never affects results")
	fs.IntVar(&c.queue, "queue", 64, "maximum queued grid runs before submissions get 503")
	fs.BoolVar(&c.verbose, "v", false, "per-run lifecycle logging")
	fs.StringVar(&c.role, "role", "single", "process role: single (serve and compute in-process), coordinator (serve the API and lease cells to workers), or worker (compute cells leased by -peer)")
	fs.StringVar(&c.peer, "peer", "", "coordinator base URL a worker attaches to, e.g. http://host:8080 (worker role)")
	fs.StringVar(&c.name, "name", "", "worker name reported in leases and SSE events (worker role; default host-pid)")
	fs.DurationVar(&c.leaseTTL, "lease-ttl", fabric.DefaultTTL, "how long a leased cell may go unrenewed before it is requeued to another worker (coordinator role)")
	fs.StringVar(&c.journal, "journal", "", "crash-recovery journal file for the coordinator's lease table (coordinator role; empty = <store>/fabric.journal, \"off\" disables); a restarted coordinator replays it and resumes every unfinished run")
	fs.StringVar(&c.token, "token", "", "shared secret gating the /fabric/ and /objects/ endpoints (coordinator role: required of callers when set; worker role: sent as a bearer token)")
	fs.IntVar(&c.leaseBatch, "lease-batch", 1, "cells a worker leases per coordinator round trip (worker role; heartbeats and completions stay per cell)")
	fs.StringVar(&c.logFormat, "log-format", "text", "structured log encoding: text or json (log/slog)")
	fs.Int64Var(&c.liveEvery, "live-every", 0, "flips between live trajectory frames on /grids/{id}/live (0 = the server default); sampling only runs while someone is subscribed")
	return fs, c
}

// newLogger builds the process logger from -log-format and -v: slog
// text or JSON on stderr, at Info when verbose and Warn otherwise.
func newLogger(cfg *config) *slog.Logger {
	level := slog.LevelWarn
	if cfg.verbose {
		level = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: level}
	if cfg.logFormat == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("segd: ")
	fs, cfg := newFlagSet()
	_ = fs.Parse(os.Args[1:])
	if cfg.logFormat != "text" && cfg.logFormat != "json" {
		log.Fatalf("unknown -log-format %q (want text or json)", cfg.logFormat)
	}

	switch cfg.role {
	case "single", "coordinator":
		serve(cfg)
	case "worker":
		work(cfg)
	default:
		log.Fatalf("unknown -role %q (want single, coordinator, or worker)", cfg.role)
	}
}

// serve runs the HTTP service, in-process (single) or leasing cells to
// workers (coordinator).
func serve(cfg *config) {
	st, err := gridseg.OpenStore(cfg.store)
	if err != nil {
		log.Fatal(err)
	}
	opt := server.Options{
		Store:      st,
		Workers:    cfg.workers,
		QueueDepth: cfg.queue,
		Cluster:    cfg.role == "coordinator",
		LeaseTTL:   cfg.leaseTTL,
		Token:      cfg.token,
		Logger:     newLogger(cfg),
		LiveEvery:  cfg.liveEvery,
	}
	// Coordinators journal beside the store by default, so a crashed or
	// restarted coordinator resumes its registered runs with zero lost
	// (or recomputed) cells. -journal names another file; "off" opts out.
	var journal *fabric.Journal
	if cfg.role == "coordinator" && cfg.journal != "off" {
		path := cfg.journal
		if path == "" {
			path = filepath.Join(cfg.store, "fabric.journal")
		}
		journal, err = fabric.OpenJournal(path, fabric.DefaultSyncBatch)
		if err != nil {
			log.Fatal(err)
		}
		opt.Journal = journal
	}
	srv, err := server.New(opt)
	if err != nil {
		log.Fatal(err)
	}

	hs := &http.Server{
		Addr:    cfg.addr,
		Handler: srv.Handler(),
		// SSE streams are long-lived, so only the header read is
		// bounded; no write timeout.
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections,
	// then drain the dispatcher (the executing grid run finishes; its
	// completed cells are in the store either way).
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		srv.Close()
		if journal != nil {
			if err := journal.Close(); err != nil {
				log.Printf("journal close: %v", err)
			}
		}
		close(idle)
	}()

	log.Printf("serving on %s (store %s, role %s)", cfg.addr, cfg.store, cfg.role)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-idle
}

// work runs the worker loop against the coordinator at -peer: lease a
// cell, probe the coordinator's object store, compute on a miss, fill
// the store, report completion. Killing a worker at any point is safe —
// its leases expire and requeue.
func work(cfg *config) {
	if cfg.peer == "" {
		log.Fatal("worker role requires -peer (coordinator base URL)")
	}
	name := cfg.name
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w := &fabric.Worker{
		Name:        name,
		Coordinator: cfg.peer + "/fabric",
		Store:       store.NewRemoteWith(cfg.peer+"/objects", store.RemoteOptions{Token: cfg.token}),
		Runner:      gridseg.ComputeJob,
		LeaseMax:    cfg.leaseBatch,
		Token:       cfg.token,
		Logger:      newLogger(cfg),
	}

	// Workers expose /metrics and /healthz on -addr like the serving
	// roles, so one scrape config covers the whole fleet (store and
	// compute counters live process-side, not on the coordinator).
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", metrics.Default().Handler())
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(rw, `{"status": "ok"}`)
	})
	hs := &http.Server{Addr: cfg.addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			// Observability must never take compute down: log and keep
			// leasing cells.
			log.Printf("metrics listener: %v", err)
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down")
		cancel()
	}()

	log.Printf("worker %s attached to %s (metrics on %s)", name, cfg.peer, cfg.addr)
	err := w.Run(ctx)
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	_ = hs.Shutdown(sctx)
	if err != nil && err != context.Canceled {
		log.Fatal(err)
	}
}
