// Command segd serves parameter-grid sweeps over HTTP, backed by the
// shared content-addressed result store: submitted grids are scheduled
// through the batch engine, per-cell progress streams over SSE, and
// finished CSV/JSON artifacts are served straight from cached results.
// Resubmitting an identical or overlapping grid recomputes nothing.
//
//	segd -addr :8080 -store segstore/
//	curl -X POST localhost:8080/grids -d '{"spec": "n=96 w=2 tau=0.40:0.48:0.02 reps=4", "seed": 1}'
//	curl localhost:8080/grids/<id>/events        # SSE progress
//	curl localhost:8080/grids/<id>/artifact.csv  # final artifact
//
// The store directory is shared with cmd/sweep -cache: cells computed
// by either are served by both. See README.md for the API reference.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gridseg"
	"gridseg/internal/server"
)

// config holds the parsed command-line options.
type config struct {
	addr    string
	store   string
	workers int
	queue   int
	verbose bool
}

// newFlagSet declares the command's flags; main parses it, and the
// usage test pins it against the README documentation.
func newFlagSet() (*flag.FlagSet, *config) {
	c := &config{}
	fs := flag.NewFlagSet("segd", flag.ExitOnError)
	fs.StringVar(&c.addr, "addr", ":8080", "HTTP listen address")
	fs.StringVar(&c.store, "store", "segstore", "content-addressed result store directory (created if missing; shared with cmd/sweep -cache)")
	fs.IntVar(&c.workers, "workers", 0, "cell worker pool size per grid run (0 = GOMAXPROCS); never affects results")
	fs.IntVar(&c.queue, "queue", 64, "maximum queued grid runs before submissions get 503")
	fs.BoolVar(&c.verbose, "v", false, "per-run lifecycle logging")
	return fs, c
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("segd: ")
	fs, cfg := newFlagSet()
	_ = fs.Parse(os.Args[1:])

	st, err := gridseg.OpenStore(cfg.store)
	if err != nil {
		log.Fatal(err)
	}
	opt := server.Options{Store: st, Workers: cfg.workers, QueueDepth: cfg.queue}
	if cfg.verbose {
		opt.Logf = log.Printf
	}
	srv, err := server.New(opt)
	if err != nil {
		log.Fatal(err)
	}

	hs := &http.Server{
		Addr:    cfg.addr,
		Handler: srv.Handler(),
		// SSE streams are long-lived, so only the header read is
		// bounded; no write timeout.
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections,
	// then drain the dispatcher (the executing grid run finishes; its
	// completed cells are in the store either way).
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		srv.Close()
		close(idle)
	}()

	log.Printf("serving on %s (store %s)", cfg.addr, cfg.store)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-idle
}
