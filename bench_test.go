package gridseg

// One benchmark per paper artifact (figure / theorem shape), each
// driving the corresponding registry experiment in quick mode, plus
// engine benchmarks at the paper's Figure 1 parameters. Regenerate the
// paper's numbers at full scale with: go run ./cmd/sweep -exp all -full
import (
	"testing"

	"gridseg/internal/sim"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := sim.Find(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		ctx := &sim.Context{Quick: true, Seed: uint64(i) + 1}
		if _, err := e.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Evolution regenerates the Fig. 1 workload (E1): the
// segregation evolution at tau = 0.42 with four snapshot stages.
func BenchmarkFig1Evolution(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkFig2Intervals regenerates the Fig. 2 interval structure (E2).
func BenchmarkFig2Intervals(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkFig3Exponents regenerates the Fig. 3 curves a, b (E3).
func BenchmarkFig3Exponents(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkFig6FTau regenerates the Fig. 6 curve f(tau) (E4).
func BenchmarkFig6FTau(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkThm1Scaling runs the Theorem 1 E[M]-vs-N sweep (E5).
func BenchmarkThm1Scaling(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkThm2Scaling runs the Theorem 2 E[M'] sweep (E6).
func BenchmarkThm2Scaling(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkStaticRegime runs the static-regime verification (E7).
func BenchmarkStaticRegime(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkHalfTau runs the open tau = 1/2 comparison (E8).
func BenchmarkHalfTau(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkCompleteSegregation runs the p-sweep at tau = 1/2 (E9).
func BenchmarkCompleteSegregation(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkFirewalls runs the triggering/protection machinery (E10).
func BenchmarkFirewalls(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkPercolation runs the percolation substrate shapes (E11).
func BenchmarkPercolation(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkFKGAndProp1 runs the FKG and Proposition 1 checks (E12).
func BenchmarkFKGAndProp1(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkRing1D runs the 1-D baselines (E13).
func BenchmarkRing1D(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkKawasaki runs the Glauber-vs-Kawasaki comparison (E14).
func BenchmarkKawasaki(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkDiscomfortVariant runs the Sec. V both-sided variation (E15).
func BenchmarkDiscomfortVariant(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkDensitySweep runs the Sec. V initial-density question (E16).
func BenchmarkDensitySweep(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkNoisyAgents runs the Sec. I.A noisy-agent variation (E17).
func BenchmarkNoisyAgents(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkSpreadTime runs the Lemma 7 T(rho) observable (E18).
func BenchmarkSpreadTime(b *testing.B) { benchExperiment(b, "E18") }

// ---- Engine benchmarks at Figure 1 parameters ----------------------

// BenchmarkModelInitFig1Params measures model construction at the exact
// Fig. 1 neighborhood size (w = 10, N = 441) on a reduced torus.
func BenchmarkModelInitFig1Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := New(Config{N: 256, W: 10, Tau: 0.42, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFlipThroughput measures per-flip cost at the given parameters
// and engine, re-drawing a fresh configuration off the clock whenever
// the process fixates.
func benchFlipThroughput(b *testing.B, n, w int, tau float64, engine Engine) {
	b.Helper()
	benchFlipThroughputScenario(b, n, w, tau, engine, BoundaryTorus)
}

func benchFlipThroughputScenario(b *testing.B, n, w int, tau float64, engine Engine, boundary Boundary) {
	b.Helper()
	benchConfigThroughput(b, Config{N: n, W: w, Tau: tau, Engine: engine, Boundary: boundary})
}

// BenchmarkFlipThroughputFig1Params measures per-flip cost at the
// Fig. 1 neighborhood size on the default (fast) engine.
func BenchmarkFlipThroughputFig1Params(b *testing.B) {
	benchFlipThroughput(b, 256, 10, 0.42, EngineAuto)
}

// BenchmarkFlipThroughputFig1ParamsReference pins the reference engine
// for the before/after comparison.
func BenchmarkFlipThroughputFig1ParamsReference(b *testing.B) {
	benchFlipThroughput(b, 256, 10, 0.42, EngineReference)
}

// BenchmarkFlipThroughputN1024 measures per-flip cost on a 1024 x 1024
// torus at the Fig. 1 horizon — the scale the Theorem 1/2 sweeps need.
func BenchmarkFlipThroughputN1024(b *testing.B) {
	benchFlipThroughput(b, 1024, 10, 0.42, EngineAuto)
}

// BenchmarkFlipThroughputN1024Reference is the scalar-engine contrast
// at the same scale.
func BenchmarkFlipThroughputN1024Reference(b *testing.B) {
	benchFlipThroughput(b, 1024, 10, 0.42, EngineReference)
}

// BenchmarkFlipThroughputOpenBoundary measures per-flip cost on the
// open (hard-wall) boundary at the Fig. 1 parameters on the reference
// engine (clamped windows, per-site thresholds). cmd/bench records the
// same probe as flip_open_reference in the BENCH trajectory.
func BenchmarkFlipThroughputOpenBoundary(b *testing.B) {
	benchFlipThroughputScenario(b, 256, 10, 0.42, EngineReference, BoundaryOpen)
}

// BenchmarkFlipThroughputOpenBoundaryFast is the bit-packed engine on
// the same open-boundary workload: the per-site boundary-table scan
// with edge-clamped row bands (flip_open_fast in the trajectory).
func BenchmarkFlipThroughputOpenBoundaryFast(b *testing.B) {
	benchFlipThroughputScenario(b, 256, 10, 0.42, EngineFast, BoundaryOpen)
}

// benchConfigThroughput measures per-event cost for an arbitrary
// configuration, re-drawing off the clock at terminal states.
func benchConfigThroughput(b *testing.B, cfg Config) {
	b.Helper()
	cfg.Seed = 1
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.Step() {
			b.StopTimer()
			cfg.Seed = uint64(i) + 2
			m, err = New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkFlipThroughputVacanciesFast measures the fast engine on a
// vacancy-diluted lattice (flip_rho_fast in the trajectory).
func BenchmarkFlipThroughputVacanciesFast(b *testing.B) {
	benchConfigThroughput(b, Config{N: 256, W: 10, Tau: 0.42, Rho: 0.1, Engine: EngineFast})
}

// BenchmarkFlipThroughputTauDistFast measures the fast engine under a
// heterogeneous intolerance field (flip_taudist_fast).
func BenchmarkFlipThroughputTauDistFast(b *testing.B) {
	benchConfigThroughput(b, Config{N: 256, W: 10, Tau: 0.42, TauDist: "mix:0.35,0.45:0.5", Engine: EngineFast})
}

// BenchmarkSwapThroughputKawasakiFast measures the fast swap engine's
// per-attempt cost (flip_kawasaki_fast); the reference variant below
// is the contrast.
func BenchmarkSwapThroughputKawasakiFast(b *testing.B) {
	benchConfigThroughput(b, Config{N: 256, W: 10, Tau: 0.42, Dynamic: Kawasaki, Engine: EngineFast})
}

// BenchmarkSwapThroughputKawasakiReference pins the reference swap
// engine at the same parameters (flip_kawasaki_reference).
func BenchmarkSwapThroughputKawasakiReference(b *testing.B) {
	benchConfigThroughput(b, Config{N: 256, W: 10, Tau: 0.42, Dynamic: Kawasaki, Engine: EngineReference})
}

// BenchmarkMoveThroughputFast measures the fast relocation engine's
// per-attempt cost on a vacancy-diluted lattice (flip_move_fast in the
// trajectory); the reference variant below is the contrast.
func BenchmarkMoveThroughputFast(b *testing.B) {
	benchConfigThroughput(b, Config{N: 256, W: 10, Tau: 0.42, Rho: 0.1, Dynamic: Move, Engine: EngineFast})
}

// BenchmarkMoveThroughputReference pins the reference relocation
// engine at the same parameters (flip_move_reference).
func BenchmarkMoveThroughputReference(b *testing.B) {
	benchConfigThroughput(b, Config{N: 256, W: 10, Tau: 0.42, Rho: 0.1, Dynamic: Move, Engine: EngineReference})
}

// BenchmarkGridCell measures the batch engine's per-cell cost (8 cells
// per iteration) with allocation reporting — the probe cmd/bench
// records as grid_cell, and the -benchmem evidence for the per-worker
// scratch reuse in the measurement and construction paths.
func BenchmarkGridCell(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunGrid("n=32 w=1,2 tau=0.42,0.45 reps=2", GridOptions{Seed: uint64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunToFixation measures a complete small run.
func BenchmarkRunToFixation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := New(Config{N: 96, W: 3, Tau: 0.45, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		m.Run(0)
	}
}

// BenchmarkRunToFixationN4096 runs one complete giant-grid trajectory
// (16.8M sites) to fixation plus a streaming measurement pass, with
// allocation reporting — the bounded-RSS probe cmd/bench records as
// run_to_fixation_n4096 and `make memcheck` pins under an RSS ceiling.
func BenchmarkRunToFixationN4096(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(Config{N: 4096, W: 1, Tau: 0.45, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		m.Run(0)
		_ = m.SegregationStats()
	}
}

// BenchmarkSegregationStats measures the measurement pass.
func BenchmarkSegregationStats(b *testing.B) {
	m, err := New(Config{N: 256, W: 4, Tau: 0.45, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	m.Run(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.SegregationStats()
	}
}
