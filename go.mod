module gridseg

go 1.24
