package gridseg

import (
	"math"
	"testing"
)

// enginesUnderTest names the Glauber engine implementations every
// property must hold for.
var enginesUnderTest = []Engine{EngineReference, EngineFast}

// TestPhiStrictlyIncreasingPerFlip verifies the paper's Lyapunov
// argument on both engines: every admissible Glauber flip increases
// Phi, and by at least 2 (the flipped agent gains at least one
// same-type neighbor net, and the relation is symmetric).
func TestPhiStrictlyIncreasingPerFlip(t *testing.T) {
	for _, engine := range enginesUnderTest {
		for _, tau := range []float64{0.30, 0.42, 0.45, 0.70} {
			m, err := New(Config{N: 32, W: 2, Tau: tau, Seed: 5, Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			phi := m.Phi()
			for steps := 0; m.Step(); steps++ {
				next := m.Phi()
				if next < phi+2 {
					t.Fatalf("engine=%v tau=%v step %d: Phi %d -> %d (want increase >= 2)",
						engine, tau, steps, phi, next)
				}
				phi = next
			}
			if !m.Fixated() {
				t.Fatalf("engine=%v tau=%v: run stopped before fixation", engine, tau)
			}
		}
	}
}

// TestHappyFractionAtFixation verifies that for tau <= 1/2 every agent
// is happy at fixation (unhappiness implies flippability there, so
// fixation exhausts unhappiness), on both engines — and that once
// fixated the state is stationary: further steps change nothing.
func TestHappyFractionAtFixation(t *testing.T) {
	for _, engine := range enginesUnderTest {
		for _, tau := range []float64{0.30, 0.42, 0.45, 0.50} {
			m, err := New(Config{N: 32, W: 2, Tau: tau, Seed: 6, Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			if _, fixated := m.Run(0); !fixated {
				t.Fatalf("engine=%v tau=%v: did not fixate", engine, tau)
			}
			st := m.SegregationStats()
			if st.HappyFraction != 1 || st.UnhappyCount != 0 {
				t.Fatalf("engine=%v tau=%v: happy fraction %v (unhappy %d) at fixation, want 1 (0)",
					engine, tau, st.HappyFraction, st.UnhappyCount)
			}
			before := m.String()
			if m.Step() {
				t.Fatalf("engine=%v tau=%v: fixated model stepped", engine, tau)
			}
			if m.String() != before {
				t.Fatalf("engine=%v tau=%v: fixated state changed", engine, tau)
			}
		}
	}
}

// scenarioConfigs spans every scenario axis and their combinations;
// the properties below must hold on each, for both engines.
var scenarioConfigs = []Config{
	{N: 32, W: 2, Tau: 0.42, Seed: 21, Boundary: BoundaryOpen},
	{N: 32, W: 2, Tau: 0.42, Seed: 22, Rho: 0.1},
	{N: 32, W: 2, Tau: 0.42, Seed: 23, TauDist: "mix:0.35,0.45:0.5"},
	{N: 32, W: 2, Tau: 0.42, Seed: 24, Boundary: BoundaryOpen, Rho: 0.05, TauDist: "uniform:0.35:0.5"},
}

// TestScenarioPhiStrictlyIncreasingPerFlip extends the Lyapunov
// property to every scenario axis: windows stay symmetric under
// clamping, vacancies contribute zero, and per-site thresholds leave
// the flip-improves-same-count argument intact, so every admissible
// flip still increases Phi by at least 2 — on both engines.
func TestScenarioPhiStrictlyIncreasingPerFlip(t *testing.T) {
	for _, engine := range enginesUnderTest {
		for _, cfg := range scenarioConfigs {
			cfg.Engine = engine
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			phi := m.Phi()
			for steps := 0; m.Step(); steps++ {
				next := m.Phi()
				if next < phi+2 {
					t.Fatalf("engine=%v cfg=%+v step %d: Phi %d -> %d (want increase >= 2)",
						engine, cfg, steps, phi, next)
				}
				phi = next
			}
		}
	}
}

// TestScenarioHappyAtFixation extends the all-happy-at-fixation
// property: every per-site threshold in these scenarios satisfies
// tau_u <= 1/2, so unhappiness implies flippability and fixation
// exhausts unhappiness — on both engines, under truncated edge
// windows and diluted neighborhoods alike.
func TestScenarioHappyAtFixation(t *testing.T) {
	for _, engine := range enginesUnderTest {
		for _, cfg := range scenarioConfigs {
			cfg.Engine = engine
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, fixated := m.Run(0); !fixated {
				t.Fatalf("engine=%v cfg=%+v: did not fixate", engine, cfg)
			}
			st := m.SegregationStats()
			if st.HappyFraction != 1 || st.UnhappyCount != 0 {
				t.Fatalf("engine=%v cfg=%+v: happy fraction %v (unhappy %d) at fixation, want 1 (0)",
					engine, cfg, st.HappyFraction, st.UnhappyCount)
			}
		}
	}
}

// TestScenarioKawasakiConservesTypes verifies the closed-system
// invariant on the scenario axes for both swap engines: swaps never
// change per-type agent counts, vacancies never move.
func TestScenarioKawasakiConservesTypes(t *testing.T) {
	for _, engine := range enginesUnderTest {
		for _, cfg := range scenarioConfigs {
			cfg.Engine = engine
			cfg.Dynamic = Kawasaki
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			plus0, minus0 := m.lat.CountPlus(), m.lat.CountMinus()
			for steps := 0; m.Step() && steps < 20000; steps++ {
			}
			if p, mi := m.lat.CountPlus(), m.lat.CountMinus(); p != plus0 || mi != minus0 {
				t.Fatalf("engine=%v cfg=%+v: type counts (%d,%d) -> (%d,%d)",
					engine, cfg, plus0, minus0, p, mi)
			}
		}
	}
}

// TestKawasakiConservesMagnetization verifies the closed-system
// invariant: swaps never change the type counts, so magnetization is
// conserved through the whole run, and at termination at least one
// type has no unhappy agents left.
func TestKawasakiConservesMagnetization(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		m, err := New(Config{N: 48, W: 2, Tau: 0.45, Seed: seed, Dynamic: Kawasaki})
		if err != nil {
			t.Fatal(err)
		}
		plus0 := m.lat.CountPlus()
		mag0 := m.SegregationStats().Magnetization
		steps := 0
		for m.Step() {
			steps++
			if steps%64 == 0 {
				if got := m.lat.CountPlus(); got != plus0 {
					t.Fatalf("seed=%d step %d: plus count %d, want %d", seed, steps, got, plus0)
				}
			}
			if steps > 200000 {
				break
			}
		}
		if got := m.lat.CountPlus(); got != plus0 {
			t.Fatalf("seed=%d final: plus count %d, want %d", seed, got, plus0)
		}
		if got := m.SegregationStats().Magnetization; got != mag0 {
			t.Fatalf("seed=%d: magnetization %v, want %v", seed, got, mag0)
		}
		if m.Fixated() {
			p, mi := m.kaw.UnhappyByType()
			if p != 0 && mi != 0 {
				t.Fatalf("seed=%d: reported fixated with unhappy %d/%d of each type", seed, p, mi)
			}
		}
	}
}

// TestGlauberDoesNotConserveMagnetization is the contrast property:
// the open system's flips change type counts, so a run that performs
// flips essentially always moves the magnetization (it moves by
// 2/sites per flip; only a perfectly balanced flip history could
// return it, which the seeds below do not produce).
func TestGlauberDoesNotConserveMagnetization(t *testing.T) {
	for _, engine := range enginesUnderTest {
		m, err := New(Config{N: 32, W: 2, Tau: 0.45, Seed: 8, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		mag0 := m.SegregationStats().Magnetization
		if _, fixated := m.Run(0); !fixated {
			t.Fatal("did not fixate")
		}
		if m.Flips() == 0 {
			t.Fatal("degenerate run: no flips")
		}
		if got := m.SegregationStats().Magnetization; got == mag0 {
			t.Fatalf("engine=%v: magnetization unchanged (%v) after %d flips", engine, mag0, m.Flips())
		}
	}
}

// TestTimeIsFiniteAndIncreasing verifies the Poisson clock on both
// engines: strictly positive, strictly increasing, finite.
func TestTimeIsFiniteAndIncreasing(t *testing.T) {
	for _, engine := range enginesUnderTest {
		m, err := New(Config{N: 24, W: 1, Tau: 0.45, Seed: 9, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		prev := m.Time()
		if prev != 0 {
			t.Fatalf("engine=%v: initial time %v", engine, prev)
		}
		for m.Step() {
			now := m.Time()
			if !(now > prev) || math.IsInf(now, 0) || math.IsNaN(now) {
				t.Fatalf("engine=%v: clock went %v -> %v", engine, prev, now)
			}
			prev = now
		}
	}
}
