package gridseg

// The docs suite keeps the prose honest: every relative markdown link
// must resolve, intra-document anchors must match a real heading, and
// the experiment tables in README.md and DESIGN.md must exactly match
// the internal/sim registry. CI runs it as the docs job
// (go test -run TestDocs .).

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"

	"gridseg/internal/sim"
)

// docFiles are the documents under the link checker.
var docFiles = []string{"README.md", "DESIGN.md", "CHANGES.md"}

var (
	// mdLink matches [text](target) while skipping images and code.
	mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	// mdHeading matches ATX headings for anchor resolution.
	mdHeading = regexp.MustCompile(`(?m)^#{1,6}\s+(.+)$`)
)

// slugify approximates GitHub's heading-anchor algorithm closely
// enough for this repository's headings.
func slugify(heading string) string {
	s := strings.ToLower(strings.TrimSpace(heading))
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// anchors returns the set of heading anchors of a document.
func anchors(doc string) map[string]bool {
	out := map[string]bool{}
	for _, m := range mdHeading.FindAllStringSubmatch(doc, -1) {
		out[slugify(m[1])] = true
	}
	return out
}

// stripCode removes fenced code blocks, whose bracketed text is not a
// markdown link.
func stripCode(doc string) string {
	var out []string
	fenced := false
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			continue
		}
		if !fenced {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestDocsLinks verifies every relative link target exists and every
// anchor-only link points at a real heading of the same document.
func TestDocsLinks(t *testing.T) {
	for _, file := range docFiles {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s must exist: %v", file, err)
		}
		doc := string(data)
		own := anchors(doc)
		for _, m := range mdLink.FindAllStringSubmatch(stripCode(doc), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"), strings.HasPrefix(target, "mailto:"):
				// External links are not checked (CI must stay hermetic);
				// they only need a plausible scheme.
			case strings.HasPrefix(target, "#"):
				if !own[strings.TrimPrefix(target, "#")] {
					t.Errorf("%s: anchor link %q has no matching heading", file, target)
				}
			default:
				path, _, _ := strings.Cut(target, "#")
				if _, err := os.Stat(path); err != nil {
					t.Errorf("%s: link target %q does not exist", file, target)
				}
			}
		}
	}
}

// experimentIDs extracts the E<n> IDs of a markdown table column.
func experimentIDs(doc string) map[string]bool {
	ids := map[string]bool{}
	for _, m := range regexp.MustCompile(`\|\s*(E\d+)\s*\|`).FindAllStringSubmatch(doc, -1) {
		ids[m[1]] = true
	}
	return ids
}

// TestDocsExperimentIndex verifies the README experiment index and
// the DESIGN.md paper-to-code map both list exactly the experiments
// registered in internal/sim — no stale rows, no missing ones.
func TestDocsExperimentIndex(t *testing.T) {
	registry := map[string]bool{}
	for _, e := range sim.All() {
		registry[e.ID] = true
	}
	if len(registry) == 0 {
		t.Fatal("empty experiment registry")
	}
	for _, file := range []string{"README.md", "DESIGN.md"} {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		documented := experimentIDs(string(data))
		for id := range registry {
			if !documented[id] {
				t.Errorf("%s: experiment %s is registered but undocumented", file, id)
			}
		}
		for id := range documented {
			if !registry[id] {
				t.Errorf("%s: experiment %s is documented but not in the registry", file, id)
			}
		}
	}
}

// TestDocsDesignEntryPoints verifies every entry point the DESIGN.md
// map names actually exists in internal/sim, so the map cannot rot as
// code moves.
func TestDocsDesignEntryPoints(t *testing.T) {
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range regexp.MustCompile("`(runE\\d+)`, `(internal/sim/[a-z_]+\\.go)`").FindAllStringSubmatch(string(design), -1) {
		fn, file := m[1], m[2]
		src, err := os.ReadFile(file)
		if err != nil {
			t.Errorf("DESIGN.md names %s, which does not exist: %v", file, err)
			continue
		}
		if !strings.Contains(string(src), fmt.Sprintf("func %s(", fn)) {
			t.Errorf("DESIGN.md maps to %s in %s, but the function is not there", fn, file)
		}
	}
}
