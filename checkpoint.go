package gridseg

import (
	"fmt"

	"gridseg/internal/grid"
	"gridseg/internal/measure"
	"gridseg/internal/rng"
)

// MarshalConfiguration encodes the model's current agent configuration
// into a self-describing checksummed binary blob (the lattice only, not
// the clock state). Use NewFromConfiguration to resume from it.
func (m *Model) MarshalConfiguration() ([]byte, error) {
	data, err := m.lat.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("gridseg: %w", err)
	}
	return data, nil
}

// NewFromConfiguration builds a model whose initial configuration is a
// previously marshaled one, with fresh dynamics parameterized by cfg
// (cfg.N is ignored: the configuration fixes the lattice; cfg.P only
// affects the reported Config, which resolves it to the documented 1/2
// default like New does).
func NewFromConfiguration(data []byte, cfg Config) (*Model, error) {
	lat, err := grid.UnmarshalBinary(data)
	if err != nil {
		return nil, fmt.Errorf("gridseg: %w", err)
	}
	cfg = cfg.withDefaults()
	cfg.N = lat.N()
	m := &Model{cfg: cfg, lat: lat}
	if err := m.buildDynamics(rng.New(cfg.Seed).Split(2)); err != nil {
		return nil, err
	}
	return m, nil
}

// Indices holds the block-level residential-segregation indices from
// the empirical literature.
type Indices struct {
	Dissimilarity float64 // Duncan & Duncan D in [0, 1]
	Isolation     float64 // plus-type isolation in (0, 1]
	Exposure      float64 // plus-type exposure to minus, 1 - Isolation
}

// SegregationIndices computes the classic indices over an m x m census
// partition of the torus (m must divide N). It fails on monochromatic
// configurations, where the indices are undefined.
func (m *Model) SegregationIndices(blockSide int) (Indices, error) {
	bc, err := measure.CountBlocks(m.lat, blockSide)
	if err != nil {
		return Indices{}, fmt.Errorf("gridseg: %w", err)
	}
	d, err := bc.Dissimilarity()
	if err != nil {
		return Indices{}, fmt.Errorf("gridseg: %w", err)
	}
	iso, err := bc.Isolation()
	if err != nil {
		return Indices{}, fmt.Errorf("gridseg: %w", err)
	}
	return Indices{Dissimilarity: d, Isolation: iso, Exposure: 1 - iso}, nil
}
