package gridseg

import (
	"errors"
	"fmt"

	"gridseg/internal/dynamics"
	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/measure"
	"gridseg/internal/rng"
)

// VariantConfig specifies a generalized model with the variations the
// paper discusses in Sections I.A and V: per-type intolerances, a
// both-sided discomfort window, and rule-violating noise.
type VariantConfig struct {
	// N is the torus side length; W the horizon.
	N, W int
	// TauPlus and TauMinus are the per-type lower intolerances (the
	// two-threshold model of Barmpalias et al., cited as [26]).
	TauPlus, TauMinus float64
	// UpperPlus and UpperMinus, when set below 1, make agents unhappy
	// also as saturated majorities (Sec. V's "uncomfortable being ...
	// a majority"). 0 means 1 (off).
	UpperPlus, UpperMinus float64
	// Noise in [0, 1) is the probability a ringing agent acts against
	// the rule's prescription (Sec. I.A variation). Noise > 0 removes
	// the termination guarantee; Run requires a budget.
	Noise float64
	// P is the initial Bernoulli density (0 means 1/2).
	P float64
	// Seed determines all randomness.
	Seed uint64
}

// VariantModel is a running instance of the generalized process.
type VariantModel struct {
	cfg VariantConfig
	lat *grid.Lattice
	v   *dynamics.Variant
}

// NewVariant builds a generalized model and draws its initial
// configuration.
func NewVariant(cfg VariantConfig) (*VariantModel, error) {
	if cfg.P == 0 {
		cfg.P = 0.5
	}
	if cfg.N < 3 {
		return nil, errors.New("gridseg: N must be at least 3")
	}
	if cfg.P < 0 || cfg.P > 1 {
		return nil, errors.New("gridseg: P must be in [0, 1]")
	}
	src := rng.New(cfg.Seed)
	lat := grid.Random(cfg.N, cfg.P, src.Split(1))
	v, err := dynamics.NewVariant(lat, cfg.W, dynamics.VariantOptions{
		TauPlus:    cfg.TauPlus,
		TauMinus:   cfg.TauMinus,
		UpperPlus:  cfg.UpperPlus,
		UpperMinus: cfg.UpperMinus,
		Noise:      cfg.Noise,
	}, src.Split(2))
	if err != nil {
		return nil, fmt.Errorf("gridseg: %w", err)
	}
	return &VariantModel{cfg: cfg, lat: lat, v: v}, nil
}

// Config returns the configuration with defaults resolved.
func (m *VariantModel) Config() VariantConfig { return m.cfg }

// Step performs one effective event; it reports whether the process can
// still move (a noisy process always can).
func (m *VariantModel) Step() bool {
	_, ok := m.v.Step()
	return ok
}

// Run advances by at most maxEvents events (required when Noise > 0).
// It returns the number performed and whether a noise-free fixation was
// reached.
func (m *VariantModel) Run(maxEvents int64) (int64, bool, error) {
	return m.v.Run(maxEvents)
}

// Flips returns the rule-driven flip count; NoiseFlips the noise-driven
// count.
func (m *VariantModel) Flips() int64 { return m.v.Flips() }

// NoiseFlips returns the number of noise-driven flips.
func (m *VariantModel) NoiseFlips() int64 { return m.v.NoiseFlips() }

// Time returns elapsed continuous time.
func (m *VariantModel) Time() float64 { return m.v.Time() }

// UnhappyCount returns the number of currently unhappy agents.
func (m *VariantModel) UnhappyCount() int { return m.v.UnhappyCount() }

// Spin returns +1/-1 at (x, y) with wrap-around.
func (m *VariantModel) Spin(x, y int) int {
	return int(m.lat.Spin(geom.Point{X: x, Y: y}))
}

// SegregationStats summarizes the current configuration.
func (m *VariantModel) SegregationStats() Stats {
	cl, _ := measure.Clusters(m.lat)
	largest := cl.LargestPlus
	if cl.LargestMinus > largest {
		largest = cl.LargestMinus
	}
	sites := m.lat.Sites()
	return Stats{
		HappyFraction:          1 - float64(m.v.UnhappyCount())/float64(sites),
		UnhappyCount:           m.v.UnhappyCount(),
		InterfaceDensity:       measure.InterfaceDensity(m.lat),
		MeanSameFraction:       measure.MeanSameFraction(m.lat, m.cfg.W),
		LargestClusterFraction: float64(largest) / float64(sites),
		Magnetization:          float64(2*m.lat.CountPlus()-sites) / float64(sites),
		Flips:                  m.v.Flips() + m.v.NoiseFlips(),
	}
}
