package gridseg

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const testSpec = "n=24 w=1,2 tau=0.4,0.45 reps=2"

func runTestGrid(t *testing.T, workers int, checkpoint string) *GridResult {
	t.Helper()
	var last int
	r, err := RunGrid(testSpec, GridOptions{
		Seed:           3,
		Workers:        workers,
		CheckpointPath: checkpoint,
		Progress:       func(done, total int) { last = done },
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 8 {
		t.Fatalf("len = %d, want 8", r.Len())
	}
	if checkpoint == "" && last != 8 {
		t.Fatalf("final progress = %d", last)
	}
	return r
}

func TestRunGridSchedulingIndependence(t *testing.T) {
	seq := runTestGrid(t, 1, "")
	par := runTestGrid(t, 8, "")
	var a, b bytes.Buffer
	if err := seq.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("grid CSV differs across worker counts")
	}
	if seq.Text() != par.Text() {
		t.Fatal("grid summary differs across worker counts")
	}
	var js bytes.Buffer
	if err := seq.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), "happy_frac") {
		t.Fatal("JSON missing metric columns")
	}
}

func TestRunGridCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ck.json")
	first := runTestGrid(t, 2, path)
	// A second run against the same checkpoint restores every cell and
	// must reproduce the result byte for byte.
	second := runTestGrid(t, 2, path)
	var a, b bytes.Buffer
	if err := first.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := second.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("checkpoint resume changed results")
	}
}

func TestRunGridErrors(t *testing.T) {
	if _, err := RunGrid("tau=0.9:0.1:0.1", GridOptions{}); err == nil {
		t.Fatal("want parse error for descending range")
	}
	if _, err := RunGrid("n=24 w=2", GridOptions{}); err == nil {
		t.Fatal("want error for underspecified grid (no tau)")
	}
	if _, err := RunGrid("n=2 w=1 tau=0.45", GridOptions{}); err == nil {
		t.Fatal("want model error for n < 3")
	}
}
