package gridseg

import (
	"bytes"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"gridseg/internal/grid"
)

const testSpec = "n=24 w=1,2 tau=0.4,0.45 reps=2"

func runTestGrid(t *testing.T, workers int, checkpoint string) *GridResult {
	t.Helper()
	var last int
	r, err := RunGrid(testSpec, GridOptions{
		Seed:           3,
		Workers:        workers,
		CheckpointPath: checkpoint,
		Progress:       func(done, total int) { last = done },
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 8 {
		t.Fatalf("len = %d, want 8", r.Len())
	}
	if checkpoint == "" && last != 8 {
		t.Fatalf("final progress = %d", last)
	}
	return r
}

func TestRunGridSchedulingIndependence(t *testing.T) {
	seq := runTestGrid(t, 1, "")
	par := runTestGrid(t, 8, "")
	var a, b bytes.Buffer
	if err := seq.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("grid CSV differs across worker counts")
	}
	if seq.Text() != par.Text() {
		t.Fatal("grid summary differs across worker counts")
	}
	var js bytes.Buffer
	if err := seq.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), "happy_frac") {
		t.Fatal("JSON missing metric columns")
	}
}

func TestRunGridCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ck.json")
	first := runTestGrid(t, 2, path)
	// A second run against the same checkpoint restores every cell and
	// must reproduce the result byte for byte.
	second := runTestGrid(t, 2, path)
	var a, b bytes.Buffer
	if err := first.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := second.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("checkpoint resume changed results")
	}
}

func TestRunGridErrors(t *testing.T) {
	if _, err := RunGrid("tau=0.9:0.1:0.1", GridOptions{}); err == nil {
		t.Fatal("want parse error for descending range")
	}
	if _, err := RunGrid("n=24 w=2", GridOptions{}); err == nil {
		t.Fatal("want error for underspecified grid (no tau)")
	}
	if _, err := RunGrid("n=2 w=1 tau=0.45", GridOptions{}); err == nil {
		t.Fatal("want model error for n < 3")
	}
}

// TestRunGridGeometryColumns checks the geom=true schema: same grid,
// same seed, two extra columns whose first nine values are
// byte-identical to the plain sweep's, a distinct GridID, and CSV
// headers carrying the geometry columns.
func TestRunGridGeometryColumns(t *testing.T) {
	plain := runTestGrid(t, 4, "")
	geo, err := RunGrid(testSpec+" geom=true", GridOptions{Seed: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var pb, gb bytes.Buffer
	if err := plain.WriteCSV(&pb); err != nil {
		t.Fatal(err)
	}
	if err := geo.WriteCSV(&gb); err != nil {
		t.Fatal(err)
	}
	pLines := strings.Split(strings.TrimSpace(pb.String()), "\n")
	gLines := strings.Split(strings.TrimSpace(gb.String()), "\n")
	if len(pLines) != len(gLines) {
		t.Fatalf("row counts differ: %d vs %d", len(pLines), len(gLines))
	}
	if !strings.Contains(gLines[0], "iface_length") || !strings.Contains(gLines[0], "curvature") {
		t.Fatalf("geometry header missing columns: %q", gLines[0])
	}
	if strings.Contains(pLines[0], "iface_length") {
		t.Fatalf("plain header gained geometry columns: %q", pLines[0])
	}
	// Every geometry row must extend the corresponding plain row: the
	// trajectories are identical, only the schema grows.
	for i := range pLines {
		if !strings.HasPrefix(gLines[i], strings.TrimSuffix(pLines[i], "\n")+",") {
			t.Fatalf("row %d: geometry row %q does not extend plain row %q", i, gLines[i], pLines[i])
		}
	}
	idPlain, err := GridID(testSpec, 3)
	if err != nil {
		t.Fatal(err)
	}
	idGeo, err := GridID(testSpec+" geom=true", 3)
	if err != nil {
		t.Fatal(err)
	}
	if idPlain == idGeo {
		t.Fatal("geometry sweep shares the plain sweep's GridID")
	}
}

// TestRunGridSnapshotTap checks the live-snapshot tap: samples arrive
// with decodable frames and a final sample per computed cell, the
// SnapshotActive gate suppresses non-final measurement, and — the
// byte-stability contract — a tapped sweep's artifacts are identical
// to an untapped one's.
func TestRunGridSnapshotTap(t *testing.T) {
	var mu sync.Mutex
	var samples []LiveSample
	r, err := RunGrid(testSpec, GridOptions{
		Seed: 3, Workers: 4,
		SnapshotEvery: 16,
		Snapshot: func(s LiveSample) {
			mu.Lock()
			samples = append(samples, s)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var tapped bytes.Buffer
	if err := r.WriteCSV(&tapped); err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	if err := runTestGrid(t, 4, "").WriteCSV(&plain); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tapped.Bytes(), plain.Bytes()) {
		t.Fatal("snapshot tap changed sweep artifacts")
	}
	finals := 0
	for _, s := range samples {
		if s.Final {
			finals++
		}
		if len(s.Frame) == 0 {
			t.Fatal("sample without frame")
		}
		lat, err := grid.UnmarshalBinary(s.Frame)
		if err != nil {
			t.Fatalf("frame does not decode: %v", err)
		}
		if lat.N() != s.Cell.N {
			t.Fatalf("frame n = %d, cell n = %d", lat.N(), s.Cell.N)
		}
		if s.Cell.Total != 8 {
			t.Fatalf("sample total = %d, want 8", s.Cell.Total)
		}
	}
	if finals != 8 {
		t.Fatalf("final samples = %d, want one per cell (8)", finals)
	}
	if len(samples) <= finals {
		t.Fatal("no intermediate samples at a 16-flip interval")
	}

	// An inactive tap still delivers exactly the final samples.
	var gated []LiveSample
	_, err = RunGrid(testSpec, GridOptions{
		Seed: 3, Workers: 1,
		SnapshotEvery:  16,
		SnapshotActive: func() bool { return false },
		Snapshot: func(s LiveSample) {
			gated = append(gated, s)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(gated) != 8 {
		t.Fatalf("gated samples = %d, want 8 finals only", len(gated))
	}
	for _, s := range gated {
		if !s.Final {
			t.Fatal("gated tap delivered a non-final sample")
		}
	}
}
