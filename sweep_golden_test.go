package gridseg

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"gridseg/internal/batch"
	"gridseg/internal/rng"
)

// -update regenerates the committed golden artifacts.
var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenSpec covers both flip/swap dynamics, two sizes, two horizons,
// two intolerances, and the scenario axes (both boundaries, with and
// without vacancies); 128 cells total. The goldens pin the full
// determinism contract: spec + seed fixes every byte of the CSV/JSON
// artifacts, for any worker count, with or without checkpoint-resume,
// on any engine — and, because default-scenario cell seeds are
// identity-stable, the default cells' metric values are pinned across
// the scenario subsystem's introduction.
const goldenSpec = "n=24,32 w=1,2 tau=0.42,0.45 dyn=glauber,kawasaki boundary=torus,open rho=0,0.05 reps=2"

const goldenSeed = 7

// goldenRun executes the golden grid and renders both artifacts.
func goldenRun(t *testing.T, opt GridOptions) (csv, json []byte) {
	t.Helper()
	r, err := RunGrid(goldenSpec, opt)
	if err != nil {
		t.Fatal(err)
	}
	var cb, jb bytes.Buffer
	if err := r.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb.Bytes()
}

// golden reads (or, with -update, writes) a golden file.
func golden(t *testing.T, name string, got []byte) []byte {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with go test -run TestRunGridGolden -update): %v", err)
	}
	return want
}

// TestRunGridGolden asserts the CSV and JSON artifacts are byte-equal
// to the committed goldens for worker counts 1, 4, and 8.
func TestRunGridGolden(t *testing.T) {
	csv1, json1 := goldenRun(t, GridOptions{Seed: goldenSeed, Workers: 1})
	if want := golden(t, "grid_golden.csv", csv1); !bytes.Equal(csv1, want) {
		t.Error("workers=1 CSV differs from golden")
	}
	if want := golden(t, "grid_golden.json", json1); !bytes.Equal(json1, want) {
		t.Error("workers=1 JSON differs from golden")
	}
	for _, workers := range []int{4, 8} {
		csvN, jsonN := goldenRun(t, GridOptions{Seed: goldenSeed, Workers: workers})
		if !bytes.Equal(csvN, csv1) {
			t.Errorf("workers=%d CSV differs from workers=1", workers)
		}
		if !bytes.Equal(jsonN, json1) {
			t.Errorf("workers=%d JSON differs from workers=1", workers)
		}
	}
}

// TestRunGridGoldenAcrossEngines asserts the artifacts are identical
// under explicit reference and fast engine selection — the engine is
// invisible in every output byte.
func TestRunGridGoldenAcrossEngines(t *testing.T) {
	csvRef, jsonRef := goldenRun(t, GridOptions{Seed: goldenSeed, Workers: 4, Engine: EngineReference})
	csvFast, jsonFast := goldenRun(t, GridOptions{Seed: goldenSeed, Workers: 4, Engine: EngineFast})
	if !bytes.Equal(csvRef, golden(t, "grid_golden.csv", csvRef)) {
		t.Error("reference-engine CSV differs from golden")
	}
	if !bytes.Equal(csvFast, csvRef) || !bytes.Equal(jsonFast, jsonRef) {
		t.Error("artifacts differ between reference and fast engines")
	}
}

// TestRunGridGoldenParallelEngine asserts the parallel engine keeps
// the sweep determinism contract: in a sweep it runs in delegation
// mode, so its artifacts are byte-equal to the committed goldens —
// hence to every sequential engine — for sweep-worker counts 1, 4, and
// 8 and for any engine-worker count, whether selected through
// GridOptions or through the spec's engine=/parallel= keys.
func TestRunGridGoldenParallelEngine(t *testing.T) {
	csv1, json1 := goldenRun(t, GridOptions{Seed: goldenSeed, Workers: 1, Engine: EngineParallel})
	if !bytes.Equal(csv1, golden(t, "grid_golden.csv", csv1)) {
		t.Error("parallel-engine CSV differs from golden")
	}
	if !bytes.Equal(json1, golden(t, "grid_golden.json", json1)) {
		t.Error("parallel-engine JSON differs from golden")
	}
	for _, workers := range []int{4, 8} {
		csvN, jsonN := goldenRun(t, GridOptions{Seed: goldenSeed, Workers: workers, Engine: EngineParallel})
		if !bytes.Equal(csvN, csv1) || !bytes.Equal(jsonN, json1) {
			t.Errorf("parallel engine: workers=%d artifacts differ from workers=1", workers)
		}
	}
	// The spec-level selection with an explicit engine worker count must
	// produce the same bytes: the worker count is an execution detail.
	r, err := RunGrid(goldenSpec+" engine=parallel parallel=8", GridOptions{Seed: goldenSeed, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var cb, jb bytes.Buffer
	if err := r.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cb.Bytes(), csv1) || !bytes.Equal(jb.Bytes(), json1) {
		t.Error("spec-level engine=parallel parallel=8 artifacts differ from GridOptions selection")
	}
}

// TestRunGridMoveAcrossEngines asserts a relocation-dynamic sweep —
// which until PR 6 silently degraded an explicit fast request to the
// reference engine — produces byte-identical artifacts under explicit
// reference and fast selection, across both boundaries, vacancy
// fractions, and a heterogeneous intolerance field.
func TestRunGridMoveAcrossEngines(t *testing.T) {
	const moveSpec = "n=24,32 w=1,2 tau=0.42,0.45 dyn=move boundary=torus,open rho=0.05,0.2 taudist=global|mix:0.35,0.45:0.5 reps=2"
	run := func(engine Engine) (csv, json []byte) {
		t.Helper()
		r, err := RunGrid(moveSpec, GridOptions{Seed: goldenSeed, Workers: 4, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		var cb, jb bytes.Buffer
		if err := r.WriteCSV(&cb); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteJSON(&jb); err != nil {
			t.Fatal(err)
		}
		return cb.Bytes(), jb.Bytes()
	}
	csvRef, jsonRef := run(EngineReference)
	csvFast, jsonFast := run(EngineFast)
	if !bytes.Equal(csvFast, csvRef) || !bytes.Equal(jsonFast, jsonRef) {
		t.Error("move-sweep artifacts differ between reference and fast engines")
	}
}

// TestRunGridGoldenCheckpointResume interrupts the golden grid partway
// (a runner that fails after 10 cells, flushing a partial checkpoint),
// then resumes through RunGrid and asserts the artifacts still match
// the goldens byte for byte.
func TestRunGridGoldenCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "golden.ck.json")
	g, err := batch.ParseGrid(goldenSpec)
	if err != nil {
		t.Fatal(err)
	}
	g.Engine = EngineAuto.String() // mirror RunGrid's engine resolution
	var done atomic.Int64
	failing := func(c batch.Cell, src *rng.Source) ([]float64, error) {
		if done.Add(1) > 10 {
			return nil, errors.New("synthetic interruption")
		}
		return sweepCell(c, src)
	}
	_, err = batch.Run(g, sweepColumns, failing, batch.Options{
		Seed: goldenSeed, Scope: "grid", Workers: 1, CheckpointPath: path,
	})
	if err == nil {
		t.Fatal("interrupted run must report the failure")
	}

	csv, json := goldenRun(t, GridOptions{Seed: goldenSeed, Workers: 4, CheckpointPath: path})
	if !bytes.Equal(csv, golden(t, "grid_golden.csv", csv)) {
		t.Error("resumed CSV differs from golden")
	}
	if !bytes.Equal(json, golden(t, "grid_golden.json", json)) {
		t.Error("resumed JSON differs from golden")
	}
}
