package gridseg

import (
	"bytes"
	"image/png"
	"math"
	"strings"
	"testing"
)

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{N: 2, W: 1, Tau: 0.5},
		{N: 20, W: 0, Tau: 0.5},
		{N: 20, W: 15, Tau: 0.5},
		{N: 20, W: 2, Tau: -1},
		{N: 20, W: 2, Tau: 0.5, P: 2},
		{N: 20, W: 2, Tau: 0.5, Dynamic: Dynamic(9)},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d (%+v): want error", i, cfg)
		}
	}
}

func TestDefaultsResolved(t *testing.T) {
	m, err := New(Config{N: 20, W: 2, Tau: 0.45, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	if cfg.P != 0.5 || cfg.Dynamic != Glauber {
		t.Fatalf("defaults not resolved: %+v", cfg)
	}
}

func TestGlauberEndToEnd(t *testing.T) {
	m, err := New(Config{N: 48, W: 2, Tau: 0.45, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if m.NeighborhoodSize() != 25 || m.Threshold() != 12 {
		t.Fatalf("N=%d thresh=%d", m.NeighborhoodSize(), m.Threshold())
	}
	if got := m.EffectiveTau(); got != 12.0/25 {
		t.Fatalf("effective tau = %v", got)
	}
	events, fixated := m.Run(0)
	if !fixated || !m.Fixated() {
		t.Fatal("Glauber must fixate")
	}
	if events != m.Flips() {
		t.Fatalf("events %d != flips %d", events, m.Flips())
	}
	st := m.SegregationStats()
	if st.HappyFraction != 1 {
		t.Fatalf("fixated Glauber below 1/2 must be fully happy: %+v", st)
	}
	if st.MeanSameFraction <= 0.5 {
		t.Fatalf("segregation must raise same-fraction: %+v", st)
	}
	if m.Time() <= 0 {
		t.Fatal("time must have advanced")
	}
	if !strings.Contains(st.String(), "happy=1.000") {
		t.Fatalf("stats string: %s", st)
	}
}

func TestKawasakiEndToEnd(t *testing.T) {
	m, err := New(Config{N: 32, W: 2, Tau: 0.45, Seed: 9, Dynamic: Kawasaki})
	if err != nil {
		t.Fatal(err)
	}
	before := m.SegregationStats().Magnetization
	m.Run(0)
	after := m.SegregationStats().Magnetization
	if math.Abs(before-after) > 1e-12 {
		t.Fatalf("Kawasaki must conserve magnetization: %v -> %v", before, after)
	}
	if !math.IsNaN(m.Time()) {
		t.Fatal("Kawasaki time must be NaN")
	}
	m.Step() // must not panic regardless of state
}

func TestSpinAndHappyWrap(t *testing.T) {
	m, err := New(Config{N: 16, W: 1, Tau: 0.4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s := m.Spin(-1, -1); s != m.Spin(15, 15) {
		t.Fatal("Spin must wrap")
	}
	if got := m.Spin(0, 0); got != 1 && got != -1 {
		t.Fatalf("spin = %d", got)
	}
	_ = m.Happy(-1, -1) // must not panic
}

func TestRegionMeasures(t *testing.T) {
	m, err := New(Config{N: 48, W: 2, Tau: 0.45, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(0)
	mono := m.MonoRegionSize(10, 10)
	almost := m.AlmostMonoRegionSize(10, 10, 0.1)
	if mono < 1 {
		t.Fatalf("mono region = %d", mono)
	}
	if almost < mono {
		t.Fatalf("almost (%d) must be >= mono (%d)", almost, mono)
	}
}

func TestRenderers(t *testing.T) {
	m, err := New(Config{N: 12, W: 1, Tau: 0.5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	a := m.ASCII()
	if len(strings.Split(strings.TrimRight(a, "\n"), "\n")) != 12 {
		t.Fatal("ASCII shape wrong")
	}
	raw := m.String()
	if !strings.ContainsAny(raw, "+-") {
		t.Fatal("String must contain spins")
	}
	var buf bytes.Buffer
	if err := m.WritePNG(&buf, 2); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 24 {
		t.Fatalf("png width = %d", img.Bounds().Dx())
	}
}

func TestDeterministicReplayPublic(t *testing.T) {
	run := func() Stats {
		m, err := New(Config{N: 32, W: 2, Tau: 0.44, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		m.Run(0)
		return m.SegregationStats()
	}
	if run() != run() {
		t.Fatal("same config must replay identically")
	}
}

func TestTheoryFacade(t *testing.T) {
	if math.Abs(Tau1()-0.433) > 5e-4 {
		t.Fatalf("Tau1 = %v", Tau1())
	}
	if Tau2() != 0.34375 {
		t.Fatalf("Tau2 = %v", Tau2())
	}
	f := TriggerEpsilon(0.45)
	if f <= 0 || f >= 0.5 {
		t.Fatalf("TriggerEpsilon = %v", f)
	}
	a, b := Exponents(0.45)
	if !(a > 0 && b >= a) {
		t.Fatalf("Exponents = %v, %v", a, b)
	}
	if ClassifyTau(0.45) != "monochromatic" {
		t.Fatalf("ClassifyTau = %s", ClassifyTau(0.45))
	}
	iv := Intervals()
	if len(iv) != 4 || iv[0].Lo != 0.34375 {
		t.Fatalf("Intervals = %+v", iv)
	}
}

func TestExperimentRegistryFacade(t *testing.T) {
	infos := Experiments()
	if len(infos) != 21 {
		t.Fatalf("got %d experiments", len(infos))
	}
	out, err := RunExperiment("E2", ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tau1") {
		t.Fatalf("E2 output missing tau1: %s", out)
	}
	if _, err := RunExperiment("nope", ExperimentOptions{}); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}

// TestRunSampledBitIdentical pins the live-streaming contract: a
// sampled run must realize exactly the trajectory of Run — same event
// count, same terminal flag, same final configuration and stats — for
// every dynamic, with the terminal sample always delivered.
func TestRunSampledBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		max  int64
	}{
		{"glauber unbounded", Config{N: 24, W: 2, Tau: 0.45, Seed: 11}, 0},
		{"glauber bounded", Config{N: 24, W: 2, Tau: 0.45, Seed: 11}, 37},
		{"kawasaki unbounded", Config{N: 16, W: 1, Tau: 0.5, Seed: 7, Dynamic: Kawasaki}, 0},
		{"kawasaki bounded", Config{N: 16, W: 1, Tau: 0.5, Seed: 7, Dynamic: Kawasaki}, 123},
		{"move unbounded", Config{N: 16, W: 1, Tau: 0.45, Seed: 5, Dynamic: Move, Rho: 0.1}, 0},
	}
	for _, tc := range cases {
		plain, err := New(tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		tapped, err := New(tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		wantEvents, wantFix := plain.Run(tc.max)
		samples, finals := 0, 0
		gotEvents, gotFix := tapped.RunSampled(tc.max, 10, func(final bool) {
			samples++
			if final {
				finals++
			}
		})
		if gotEvents != wantEvents || gotFix != wantFix {
			t.Errorf("%s: RunSampled = (%d, %v), Run = (%d, %v)", tc.name, gotEvents, gotFix, wantEvents, wantFix)
		}
		if finals != 1 {
			t.Errorf("%s: %d final samples, want exactly 1", tc.name, finals)
		}
		if samples < 1 {
			t.Errorf("%s: no samples delivered", tc.name)
		}
		if plain.String() != tapped.String() {
			t.Errorf("%s: final configurations differ", tc.name)
		}
		if plain.SegregationStats() != tapped.SegregationStats() {
			t.Errorf("%s: final stats differ", tc.name)
		}
		wantFrame, err := plain.MarshalConfiguration()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		gotFrame, err := tapped.MarshalConfiguration()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !bytes.Equal(wantFrame, gotFrame) {
			t.Errorf("%s: binary frames differ", tc.name)
		}
	}
}
