// Package gridseg is a library reproduction of "Self-organized
// Segregation on the Grid" (Omidvar and Franceschetti, PODC 2017 /
// Journal of Statistical Physics 2018).
//
// The package simulates the Schelling model with Glauber dynamics on an
// n x n torus: two agent types placed i.i.d. Bernoulli(p), extended
// Moore neighborhoods of radius w (size N = (2w+1)^2), a common
// intolerance tau, independent Poisson clocks, and flips that occur only
// when an unhappy agent would become happy. It also provides the
// closed-system Kawasaki swap baseline, the 1-D ring baselines, the
// paper's analytical objects (tau1, tau2, f(tau), the exponent
// multipliers a and b), the segregation observables of the theorems
// (monochromatic and almost monochromatic regions), and the experiment
// registry E1..E21 that regenerates every figure of the paper, the
// variations its concluding remarks propose, and the topology
// scenarios of the related work.
//
// Beyond the paper's exact setting, the scenario fields of Config open
// the neighboring model space: open (hard-wall) boundaries with
// truncated edge neighborhoods (Config.Boundary), vacancy-diluted
// lattices (Config.Rho) with a relocation dynamic (Move), and
// heterogeneous per-site intolerance drawn from a seeded distribution
// spec (Config.TauDist). The default scenario is bit-compatible with
// the pre-scenario library: identical seeds, trajectories, and sweep
// artifacts.
//
// Two interchangeable engine families back the model: a scalar
// reference engine and a bit-packed SWAR fast engine that is
// bit-identical to it, covering the Glauber, Kawasaki, and Move
// dynamics on every scenario axis (Config.Engine selects; the default
// picks the fast engine whenever the neighborhood fits its packed
// counts — see README.md's Performance section and internal/difftest
// for the equivalence contract).
//
// Grid sweeps (RunGrid) are deterministic and cacheable: every cell's
// seed derives from the cell's identity, so an optional
// content-addressed result store (GridOptions.Store, OpenStore) serves
// previously computed cells — from any overlapping sweep — without
// recomputation. cmd/segd exposes the same cached sweeps over HTTP.
//
// # Quick start
//
//	m, err := gridseg.New(gridseg.Config{N: 200, W: 4, Tau: 0.42, P: 0.5, Seed: 1})
//	if err != nil { ... }
//	m.Run(0) // to fixation
//	fmt.Println(m.SegregationStats())
//
// See the Example functions and the examples directory for runnable
// programs; README.md for the quick start, the experiment-to-figure
// index, the grid sweep syntax, and the HTTP API; and DESIGN.md for
// the architecture overview, the determinism/caching contract, and
// the paper-to-code map.
package gridseg
