package gridseg

import (
	"bytes"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// countingStore wraps a CellStore and counts Get hits and Puts, so the
// end-to-end tests can prove "zero recomputation" from the store's own
// point of view rather than trusting the reported stats.
type countingStore struct {
	inner CellStore
	hits  atomic.Int64
	puts  atomic.Int64
}

func (s *countingStore) Get(key string) ([]float64, bool, error) {
	v, ok, err := s.inner.Get(key)
	if ok {
		s.hits.Add(1)
	}
	return v, ok, err
}

func (s *countingStore) Put(key string, values []float64) error {
	s.puts.Add(1)
	return s.inner.Put(key, values)
}

// artifacts renders both artifact encodings of a sweep.
func artifacts(t *testing.T, r *GridResult) (csv, json []byte) {
	t.Helper()
	var cb, jb bytes.Buffer
	if err := r.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb.Bytes()
}

// TestRunGridStoreZeroRecompute is the acceptance test of the cached
// sweep service at the library layer (the exact path cmd/sweep -cache
// takes): resubmitting an identical grid against the same store
// recomputes zero cells and yields byte-identical CSV/JSON artifacts.
func TestRunGridStoreZeroRecompute(t *testing.T) {
	dir, err := OpenStore(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	st := &countingStore{inner: dir}
	const spec = "n=16,24 w=1 tau=0.4,0.45 reps=2"

	first, err := RunGrid(spec, GridOptions{Seed: 5, Workers: 4, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if cs := first.Cache(); cs.Hits != 0 || cs.Misses != first.Len() {
		t.Fatalf("first run cache = %+v", cs)
	}
	if got := st.puts.Load(); got != int64(first.Len()) {
		t.Fatalf("first run stored %d cells, want %d", got, first.Len())
	}
	csv1, json1 := artifacts(t, first)

	st.puts.Store(0)
	second, err := RunGrid(spec, GridOptions{Seed: 5, Workers: 2, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if cs := second.Cache(); cs.Hits != second.Len() || cs.Misses != 0 {
		t.Fatalf("resubmission cache = %+v", cs)
	}
	if got := st.puts.Load(); got != 0 {
		t.Fatalf("resubmission wrote %d cells to the store", got)
	}
	csv2, json2 := artifacts(t, second)
	if !bytes.Equal(csv1, csv2) || !bytes.Equal(json1, json2) {
		t.Fatal("resubmitted artifacts are not byte-identical")
	}
}

// TestRunGridStoreOverlap asserts an overlapping grid reuses every
// shared cell: only the genuinely new parameter points are computed,
// and the shared rows carry identical bytes in both grids' CSVs.
func TestRunGridStoreOverlap(t *testing.T) {
	st := NewMemoryStore()
	a, err := RunGrid("n=16 w=1 tau=0.40,0.42 reps=2", GridOptions{Seed: 5, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	csvA, _ := artifacts(t, a)

	b, err := RunGrid("n=16 w=1 tau=0.42,0.44 reps=2", GridOptions{Seed: 5, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if cs := b.Cache(); cs.Hits != 2 || cs.Misses != 2 {
		t.Fatalf("overlap cache = %+v (want 2 shared tau=0.42 cells cached)", cs)
	}
	csvB, _ := artifacts(t, b)

	// Every tau=0.42 row of grid A appears verbatim in grid B.
	shared := 0
	for _, line := range bytes.Split(csvA, []byte("\n")) {
		if bytes.Contains(line, []byte(",0.42,")) {
			if !bytes.Contains(csvB, line) {
				t.Fatalf("shared row missing from overlapping grid: %s", line)
			}
			shared++
		}
	}
	if shared != 2 {
		t.Fatalf("found %d shared rows, want 2", shared)
	}
}

// TestGridID pins the content-addressing of whole sweeps: equivalent
// specs share an ID, different specs or seeds do not.
func TestGridID(t *testing.T) {
	a, err := GridID("n=16 w=1 tau=0.4,0.45 reps=2", 5)
	if err != nil {
		t.Fatal(err)
	}
	// The same axes written differently (range vs list, reordered
	// fields) normalize to the same grid and the same ID.
	b, err := GridID("tau=0.4,0.45 w=1 n=16 replicates=2", 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("equivalent specs got distinct IDs %s / %s", a, b)
	}
	c, err := GridID("n=16 w=1 tau=0.4,0.45 reps=2", 6)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds must get distinct IDs")
	}
	if _, err := GridID("nope", 1); err == nil {
		t.Fatal("malformed spec must fail")
	}
}
