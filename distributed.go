package gridseg

import (
	"fmt"

	"gridseg/internal/batch"
	"gridseg/internal/fabric"
	"gridseg/internal/rng"
)

// This file is the bridge between the sweep engine and the distributed
// fabric (internal/fabric): decomposing a grid into leasable jobs,
// computing one leased job in a worker process, and reassembling the
// completed cells into a GridResult. The three functions are carefully
// mirror images of RunGrid's internals — same spec parsing, same
// engine defaulting, same cell seeds, same canonical cell order — so a
// cluster run is byte-identical to a single-process run of the same
// (spec, seed).

// GridJobs expands a grid spec into the leasable cell jobs of the
// distributed fabric. Each job carries the cell's full
// content-addressed identity: its store key, its derived seed
// (batch.CellSeed — a function of cell identity, never grid position),
// and the metric schema. Jobs are in canonical cell order, so job
// index i corresponds to row i of the assembled result.
func GridJobs(spec string, seed uint64) ([]fabric.Job, error) {
	g, err := parseGridSpec(spec)
	if err != nil {
		return nil, err
	}
	if g.Engine == "" {
		g.Engine = EngineAuto.String()
	}
	bopt := batch.Options{Seed: seed, Scope: gridScope}
	cells := g.Cells()
	jobs := make([]fabric.Job, len(cells))
	for i, c := range cells {
		cs := bopt.CellSpec(c, g.ExtraName, sweepColumns)
		jobs[i] = fabric.Job{
			Index:   i,
			Key:     cs.Key(),
			Seed:    cs.Seed,
			Columns: sweepColumns,
			Cell:    c,
		}
	}
	return jobs, nil
}

// ComputeJob computes the metric vector of one leased cell, exactly as
// RunGrid's in-process workers would: the same runner, fed an rng
// stream derived from the job's seed. It is the Runner a fabric worker
// should use.
func ComputeJob(j fabric.Job) ([]float64, error) {
	if len(j.Columns) != len(sweepColumns) {
		return nil, fmt.Errorf("gridseg: job schema %v does not match this binary's columns %v", j.Columns, sweepColumns)
	}
	for i, c := range j.Columns {
		if c != sweepColumns[i] {
			return nil, fmt.Errorf("gridseg: job schema %v does not match this binary's columns %v", j.Columns, sweepColumns)
		}
	}
	return sweepCell(j.Cell, rng.New(j.Seed))
}

// AssembleGrid builds the GridResult of a completed distributed run
// from per-cell metric vectors in canonical cell order (the order
// GridJobs emitted). The artifacts rendered from the result are
// byte-identical to a single-process RunGrid of the same (spec, seed).
func AssembleGrid(spec string, values [][]float64, cache CacheStats) (*GridResult, error) {
	g, err := parseGridSpec(spec)
	if err != nil {
		return nil, err
	}
	if g.Engine == "" {
		g.Engine = EngineAuto.String()
	}
	cells := g.Cells()
	if len(values) != len(cells) {
		return nil, fmt.Errorf("gridseg: got %d cell values, grid has %d cells", len(values), len(cells))
	}
	for i, v := range values {
		if len(v) != len(sweepColumns) {
			return nil, fmt.Errorf("gridseg: cell %d has %d values, want %d", i, len(v), len(sweepColumns))
		}
	}
	rs := &batch.ResultSet{
		Grid:    g,
		Columns: sweepColumns,
		Cells:   cells,
		Values:  values,
		Cache:   batch.CacheStats{Hits: cache.Hits, Misses: cache.Misses, Err: cache.Err},
	}
	return &GridResult{rs: rs}, nil
}
