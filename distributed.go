package gridseg

import (
	"fmt"

	"gridseg/internal/batch"
	"gridseg/internal/fabric"
	"gridseg/internal/rng"
)

// This file is the bridge between the sweep engine and the distributed
// fabric (internal/fabric): decomposing a grid into leasable jobs,
// computing one leased job in a worker process, and reassembling the
// completed cells into a GridResult. The three functions are carefully
// mirror images of RunGrid's internals — same spec parsing, same
// engine defaulting, same cell seeds, same canonical cell order — so a
// cluster run is byte-identical to a single-process run of the same
// (spec, seed).

// GridJobs expands a grid spec into the leasable cell jobs of the
// distributed fabric. Each job carries the cell's full
// content-addressed identity: its store key, its derived seed
// (batch.CellSeed — a function of cell identity, never grid position),
// and the metric schema. Jobs are in canonical cell order, so job
// index i corresponds to row i of the assembled result.
func GridJobs(spec string, seed uint64) ([]fabric.Job, error) {
	g, err := parseGridSpec(spec)
	if err != nil {
		return nil, err
	}
	if g.Engine == "" {
		g.Engine = EngineAuto.String()
	}
	bopt := batch.Options{Seed: seed, Scope: gridScope}
	cols := columnsFor(g)
	cells := g.Cells()
	jobs := make([]fabric.Job, len(cells))
	for i, c := range cells {
		cs := bopt.CellSpec(c, g.ExtraName, cols)
		jobs[i] = fabric.Job{
			Index:   i,
			Key:     cs.Key(),
			Seed:    cs.Seed,
			Columns: cols,
			Cell:    c,
		}
	}
	return jobs, nil
}

// ComputeJob computes the metric vector of one leased cell, exactly as
// RunGrid's in-process workers would: the same runner, fed an rng
// stream derived from the job's seed. It is the Runner a fabric worker
// should use. Jobs carrying the geometry schema get the appended
// geometry columns; either way the trajectory — and the first nine
// values — are byte-identical to an in-process run.
func ComputeJob(j fabric.Job) ([]float64, error) {
	geometry, err := jobGeometry(j.Columns)
	if err != nil {
		return nil, err
	}
	m, err := buildSweepModel(j.Cell, rng.New(j.Seed))
	if err != nil {
		return nil, err
	}
	_, fixated := m.Run(0)
	metricFlips.Add(uint64(m.Flips()))
	// The fabric worker path never enters batch.Run, so the computed
	// counter is incremented here; the worker's own store probe covers
	// cache hits (they never reach the Runner).
	batch.MetricCellsComputed.Inc()
	return measureSweepCell(m, j.Cell, fixated, geometry), nil
}

// jobGeometry classifies a job's column schema against this binary's
// two schemas, reporting whether it is the geometry one. Any other
// schema means the coordinator runs an incompatible binary.
func jobGeometry(cols []string) (bool, error) {
	match := func(want []string) bool {
		if len(cols) != len(want) {
			return false
		}
		for i, c := range cols {
			if c != want[i] {
				return false
			}
		}
		return true
	}
	if match(sweepColumns) {
		return false, nil
	}
	if match(geomColumns) {
		return true, nil
	}
	return false, fmt.Errorf("gridseg: job schema %v matches neither this binary's columns %v nor its geometry columns %v", cols, sweepColumns, geomColumns)
}

// AssembleGrid builds the GridResult of a completed distributed run
// from per-cell metric vectors in canonical cell order (the order
// GridJobs emitted). The artifacts rendered from the result are
// byte-identical to a single-process RunGrid of the same (spec, seed).
func AssembleGrid(spec string, values [][]float64, cache CacheStats) (*GridResult, error) {
	g, err := parseGridSpec(spec)
	if err != nil {
		return nil, err
	}
	if g.Engine == "" {
		g.Engine = EngineAuto.String()
	}
	cols := columnsFor(g)
	cells := g.Cells()
	if len(values) != len(cells) {
		return nil, fmt.Errorf("gridseg: got %d cell values, grid has %d cells", len(values), len(cells))
	}
	for i, v := range values {
		if len(v) != len(cols) {
			return nil, fmt.Errorf("gridseg: cell %d has %d values, want %d", i, len(v), len(cols))
		}
	}
	rs := &batch.ResultSet{
		Grid:    g,
		Columns: cols,
		Cells:   cells,
		Values:  values,
		Cache:   batch.CacheStats{Hits: cache.Hits, Misses: cache.Misses, Err: cache.Err},
	}
	return &GridResult{rs: rs}, nil
}
