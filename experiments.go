package gridseg

import (
	"fmt"
	"strings"

	"gridseg/internal/sim"
)

// ExperimentInfo describes one entry of the reproduction registry.
type ExperimentInfo struct {
	ID     string // "E1" .. "E14"
	Figure string // the paper artifact it regenerates
	Title  string
}

// Experiments lists the registered experiments in ID order. Each
// regenerates one figure of the paper or validates one theorem's shape;
// see README.md for the experiment-to-figure index.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range sim.All() {
		out = append(out, ExperimentInfo{ID: e.ID, Figure: e.Figure, Title: e.Title})
	}
	return out
}

// ExperimentOptions configures a registry run.
type ExperimentOptions struct {
	// Full selects paper-scale parameters; the default quick mode is
	// sized for interactive use and CI.
	Full bool
	// Seed determines all randomness (default 1).
	Seed uint64
	// OutDir, when non-empty, receives artifacts (PNG snapshots, CSV
	// curve data).
	OutDir string
	// Workers bounds the batch engine's worker pool; 0 means
	// GOMAXPROCS. Results never depend on the worker count.
	Workers int
	// Engine selects the Glauber engine implementation (EngineAuto
	// picks the fast bit-packed engine whenever it applies). Engines
	// are bit-identical, so this never changes results, only speed.
	Engine Engine
	// Store, when non-nil, is the shared content-addressed result
	// cache: replicated measurement stages serve already-computed
	// cells from it instead of recomputing them. Never changes
	// results.
	Store CellStore
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...interface{})
}

// RunExperiment executes a registered experiment and returns its tables
// rendered as text.
func RunExperiment(id string, opt ExperimentOptions) (string, error) {
	e, ok := sim.Find(id)
	if !ok {
		return "", fmt.Errorf("gridseg: unknown experiment %q", id)
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	ctx := &sim.Context{
		Quick:   !opt.Full,
		Seed:    seed,
		OutDir:  opt.OutDir,
		Workers: opt.Workers,
		Engine:  opt.Engine.String(),
		Store:   opt.Store,
		Logf:    opt.Logf,
	}
	tables, err := e.Run(ctx)
	if err != nil {
		return "", fmt.Errorf("gridseg: %s: %w", id, err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s (%s): %s ==\n\n", e.ID, e.Figure, e.Title)
	for _, t := range tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String(), nil
}
