package measure

import (
	"sort"

	"gridseg/internal/grid"
	"gridseg/internal/scratch"
)

// Streaming observables over grid.LatticeView. These are the
// bounded-memory forms of the hot measures: they walk the lattice one
// row at a time, holding only the 2w+1 live horizontal window sums (a
// free-list ring) or two rows of cluster labels, so measuring a giant
// grid costs O(n*w) scratch instead of O(n^2) per temporary. Every
// function here reproduces its materializing counterpart exactly —
// same integer counts, same float summation order — which is what
// keeps sweep artifacts byte-stable after the migration, and they
// accept any storage layout (reference, flat packed, tiled) through
// the view interface.

// visitPlusOccCounts streams, for every row y in ascending order, the
// per-site +1 window counts and occupied-site window counts of the
// radius-`radius` Chebyshev windows (wrapped on the torus, clamped
// when open). The two row buffers are reused across calls and only
// valid during the visit.
func visitPlusOccCounts(v grid.LatticeView, radius int, open bool, visit func(y int, plusRow, occRow []int32)) {
	n := v.N()
	if !open && 2*radius+1 > n {
		panic("measure: window larger than torus")
	}
	span := 2*radius + 1
	bp := scratch.I32(2 * n * span)
	buf := *bp
	ap := scratch.I32(4 * n)
	accP := (*ap)[0*n : 1*n]
	accO := (*ap)[1*n : 2*n]
	outP := (*ap)[2*n : 3*n]
	outO := (*ap)[3*n : 4*n]
	pp := scratch.I32(2 * (n + 1))
	preP := (*pp)[: n+1 : n+1]
	preO := (*pp)[n+1:]
	for x := 0; x < n; x++ {
		accP[x], accO[x] = 0, 0
	}
	slot := func(y int) (p, o []int32) {
		r := y % span
		if r < 0 {
			r += span
		}
		off := 2 * r * n
		return buf[off : off+n], buf[off+n : off+2*n]
	}
	// load fills the ring rows of unwrapped row index y with the
	// horizontal window sums of lattice row wrap(y), via one prefix-sum
	// scan of the row's spins.
	load := func(y int) (p, o []int32) {
		rowP, rowO := slot(y)
		yy := y
		if !open {
			yy = ((y % n) + n) % n
		}
		base := yy * n
		preP[0], preO[0] = 0, 0
		for x := 0; x < n; x++ {
			preP[x+1], preO[x+1] = preP[x], preO[x]
			switch v.SpinAt(base + x) {
			case grid.Plus:
				preP[x+1]++
				preO[x+1]++
			case grid.Minus:
				preO[x+1]++
			}
		}
		for x := 0; x < n; x++ {
			lo, hi := x-radius, x+radius+1
			switch {
			case open:
				if lo < 0 {
					lo = 0
				}
				if hi > n {
					hi = n
				}
				rowP[x] = preP[hi] - preP[lo]
				rowO[x] = preO[hi] - preO[lo]
			case lo < 0:
				rowP[x] = preP[hi] + preP[n] - preP[n+lo]
				rowO[x] = preO[hi] + preO[n] - preO[n+lo]
			case hi > n:
				rowP[x] = preP[n] - preP[lo] + preP[hi-n]
				rowO[x] = preO[n] - preO[lo] + preO[hi-n]
			default:
				rowP[x] = preP[hi] - preP[lo]
				rowO[x] = preO[hi] - preO[lo]
			}
		}
		return rowP, rowO
	}
	first, last := -radius, radius-1
	if open {
		first = 0
		if last > n-1 {
			last = n - 1
		}
	}
	for y := first; y <= last; y++ {
		p, o := load(y)
		for x := 0; x < n; x++ {
			accP[x] += p[x]
			accO[x] += o[x]
		}
	}
	for y := 0; y < n; y++ {
		if enter := y + radius; !open || enter < n {
			p, o := load(enter)
			for x := 0; x < n; x++ {
				accP[x] += p[x]
				accO[x] += o[x]
			}
		}
		copy(outP, accP)
		copy(outO, accO)
		visit(y, outP, outO)
		if leave := y - radius; !open || leave >= 0 {
			p, o := slot(leave)
			for x := 0; x < n; x++ {
				accP[x] -= p[x]
				accO[x] -= o[x]
			}
		}
	}
	scratch.PutI32(pp)
	scratch.PutI32(ap)
	scratch.PutI32(bp)
}

// PhiView returns the paper's Lyapunov function — the sum over agents
// u of the same-type count of N(u), including u — computed from any
// lattice view in one streaming pass. It agrees exactly with the
// engines' maintained Phi.
func PhiView(v grid.LatticeView, w int, open bool) int64 {
	n := v.N()
	var phi int64
	visitPlusOccCounts(v, w, open, func(y int, plus, occ []int32) {
		base := y * n
		for x := 0; x < n; x++ {
			switch v.SpinAt(base + x) {
			case grid.Plus:
				phi += int64(plus[x])
			case grid.Minus:
				phi += int64(occ[x] - plus[x])
			}
		}
	})
	return phi
}

// MeanSameFractionView is the streaming form of
// MeanSameFractionScenario over any lattice view: the average over
// agents of the same-type fraction of their occupied window. The float
// accumulation visits sites in the same row-major order, so the result
// is bit-identical.
func MeanSameFractionView(v grid.LatticeView, w int, open bool) float64 {
	n := v.N()
	var acc float64
	agents := 0
	visitPlusOccCounts(v, w, open, func(y int, plus, occ []int32) {
		base := y * n
		for x := 0; x < n; x++ {
			switch v.SpinAt(base + x) {
			case grid.Plus:
				acc += float64(plus[x]) / float64(occ[x])
			case grid.Minus:
				acc += float64(occ[x]-plus[x]) / float64(occ[x])
			default:
				continue
			}
			agents++
		}
	})
	if agents == 0 {
		return 0
	}
	return acc / float64(agents)
}

// InterfaceDensityView is InterfaceDensityScenario over any lattice
// view: the fraction of 4-adjacent agent-agent pairs with opposite
// types, skipping vacant partners and, when open, wrapping pairs. It
// reads each row's spins O(1) sites ahead, with no temporaries.
func InterfaceDensityView(v grid.LatticeView, open bool) float64 {
	n := v.N()
	mismatched, pairs := 0, 0
	at := func(x, y int) grid.Spin {
		if x >= n {
			x -= n
		}
		if y >= n {
			y -= n
		}
		return v.SpinAt(y*n + x)
	}
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			s := v.SpinAt(y*n + x)
			if s == grid.None {
				continue
			}
			if !open || x+1 < n {
				if o := at(x+1, y); o != grid.None {
					pairs++
					if o != s {
						mismatched++
					}
				}
			}
			if !open || y+1 < n {
				if o := at(x, y+1); o != grid.None {
					pairs++
					if o != s {
						mismatched++
					}
				}
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(mismatched) / float64(pairs)
}

// MagnetizationView is MagnetizationScenario over any lattice view:
// (plus - minus) / agents, 0 on an empty lattice.
func MagnetizationView(v grid.LatticeView) float64 {
	plus, minus := 0, 0
	for i, sites := 0, v.Sites(); i < sites; i++ {
		switch v.SpinAt(i) {
		case grid.Plus:
			plus++
		case grid.Minus:
			minus++
		}
	}
	if plus+minus == 0 {
		return 0
	}
	return float64(plus-minus) / float64(plus+minus)
}

// ClusterStatsView computes the connected same-type cluster statistics
// of any lattice view with a streaming two-row union-find: labels live
// for two rows only, and per-cluster metadata is O(number of clusters)
// instead of O(n^2) label and queue fields. Sizes are emitted in
// ascending order of each cluster's minimal site index — exactly the
// discovery order of the BFS used by ClusterStatsScenario, so the two
// agree element for element. The torus closes the seams by unioning
// the last column/row back onto the first.
func ClusterStatsView(v grid.LatticeView, open bool) ClusterStats {
	n := v.N()
	// Union-find with path halving; size, minimal site, and spin are
	// maintained at the roots.
	var parent, csize []int32
	var cmin []int32
	var cspin []grid.Spin
	find := func(i int32) int32 {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int32) int32 {
		a, b = find(a), find(b)
		if a == b {
			return a
		}
		if csize[a] < csize[b] {
			a, b = b, a
		}
		parent[b] = a
		csize[a] += csize[b]
		if cmin[b] < cmin[a] {
			cmin[a] = cmin[b]
		}
		return a
	}
	lp := scratch.I32(2 * n)
	prev := (*lp)[:n]
	cur := (*lp)[n:]
	frp := scratch.I32(n)
	firstRow := *frp
	prevSpin := make([]grid.Spin, n)
	curSpin := make([]grid.Spin, n)
	firstSpin := make([]grid.Spin, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			s := v.SpinAt(y*n + x)
			id := int32(-1)
			if x > 0 && curSpin[x-1] == s {
				id = find(cur[x-1])
			}
			if y > 0 && prevSpin[x] == s {
				up := find(prev[x])
				if id == -1 {
					id = up
				} else if up != id {
					id = union(id, up)
				}
			}
			if id == -1 {
				id = int32(len(parent))
				parent = append(parent, id)
				csize = append(csize, 1)
				cmin = append(cmin, int32(y*n+x))
				cspin = append(cspin, s)
			} else {
				csize[id]++
			}
			cur[x] = id
			curSpin[x] = s
		}
		if !open && n > 1 && curSpin[0] == curSpin[n-1] {
			union(cur[0], cur[n-1])
		}
		if y == 0 {
			copy(firstRow, cur)
			copy(firstSpin, curSpin)
		}
		prev, cur = cur, prev
		prevSpin, curSpin = curSpin, prevSpin
	}
	// prev now holds the last row; close the vertical seam.
	if !open && n > 1 {
		for x := 0; x < n; x++ {
			if firstSpin[x] == prevSpin[x] {
				union(firstRow[x], prev[x])
			}
		}
	}
	type cluster struct {
		min, size int32
		spin      grid.Spin
	}
	roots := make([]cluster, 0, 16)
	for i := range parent {
		if parent[i] == int32(i) {
			roots = append(roots, cluster{min: cmin[i], size: csize[i], spin: cspin[i]})
		}
	}
	sort.Slice(roots, func(a, b int) bool { return roots[a].min < roots[b].min })
	var stats ClusterStats
	stats.Count = len(roots)
	stats.Sizes = make([]int, len(roots))
	for i, c := range roots {
		stats.Sizes[i] = int(c.size)
		switch c.spin {
		case grid.Plus:
			if int(c.size) > stats.LargestPlus {
				stats.LargestPlus = int(c.size)
			}
		case grid.Minus:
			if int(c.size) > stats.LargestMinus {
				stats.LargestMinus = int(c.size)
			}
		}
	}
	scratch.PutI32(frp)
	scratch.PutI32(lp)
	return stats
}
