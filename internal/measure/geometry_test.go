package measure

import (
	"testing"

	"gridseg/internal/fastgrid"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
)

// TestInterfaceLengthHandCases pins the edge count on configurations
// small enough to count by hand.
func TestInterfaceLengthHandCases(t *testing.T) {
	cases := []struct {
		name       string
		grid       string
		open       bool
		wantLength float64
	}{
		// A vertical slab: two mismatched edges per row on the torus
		// (the interior boundary and the wrapping seam), one when open.
		{"slab torus", "++--\n++--\n++--\n++--", false, 8},
		{"slab open", "++--\n++--\n++--\n++--", true, 4},
		// A single + in a sea of -: its four edges.
		{"singleton torus", "----\n-+--\n----\n----", false, 4},
		// Checkerboard: every one of the 2n^2 torus edges mismatches.
		{"checkerboard torus", "+-+-\n-+-+\n+-+-\n-+-+", false, 32},
		// Vacant partners never count: the + is fully walled in.
		{"vacancy walled", "....\n.+..\n....\n....", false, 0},
		// Monochromatic: no interface.
		{"mono", "++++\n++++\n++++\n++++", false, 0},
	}
	for _, tc := range cases {
		lat, err := grid.Parse(tc.grid)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := InterfaceLengthView(lat, tc.open); got != tc.wantLength {
			t.Errorf("%s: InterfaceLengthView = %v, want %v", tc.name, got, tc.wantLength)
		}
	}
}

// TestBoundaryCurvatureHandCases pins the plaquette corner estimator.
func TestBoundaryCurvatureHandCases(t *testing.T) {
	cases := []struct {
		name string
		grid string
		open bool
		want float64
	}{
		// A flat axis-aligned slab boundary has no corners.
		{"slab torus", "++--\n++--\n++--\n++--", false, 0},
		{"slab open", "++--\n++--\n++--\n++--", true, 0},
		// A singleton +: four corner plaquettes around four edges.
		{"singleton", "----\n-+--\n----\n----", false, 1},
		// Checkerboard: every plaquette is a diagonal split (2 corners),
		// 32 corners over 32 edges.
		{"checkerboard", "+-+-\n-+-+\n+-+-\n-+-+", false, 1},
		// No interface at all: defined as 0, not NaN.
		{"mono", "++++\n++++\n++++\n++++", false, 0},
		// A 2x2 + block in a 6x6 sea: 8 boundary edges, 4 corner
		// plaquettes (the block's corners); the edge-adjacent plaquettes
		// are straight 2-2 splits.
		{"block", "------\n-++---\n-++---\n------\n------\n------", false, 0.5},
	}
	for _, tc := range cases {
		lat, err := grid.Parse(tc.grid)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := BoundaryCurvatureView(lat, tc.open); got != tc.want {
			t.Errorf("%s: BoundaryCurvatureView = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestGeometryVacancySkipsPlaquettes checks that plaquettes touching a
// vacancy contribute no corners even when a genuine +/- interface runs
// beside them.
func TestGeometryVacancySkipsPlaquettes(t *testing.T) {
	// The + column meets the - column (interface), and a vacancy sits
	// in the corner plaquette's path.
	lat, err := grid.Parse("+-..\n+-..\n....\n....")
	if err != nil {
		t.Fatal(err)
	}
	length := InterfaceLengthView(lat, true)
	if length != 2 {
		t.Fatalf("InterfaceLengthView = %v, want 2", length)
	}
	// Every plaquette includes a vacancy except the top-left one, which
	// is a straight 2-2 split: curvature must be 0.
	if got := BoundaryCurvatureView(lat, true); got != 0 {
		t.Errorf("BoundaryCurvatureView = %v, want 0", got)
	}
}

// TestGeometryAcrossLayouts checks the estimators agree across the
// reference, packed, and tiled storage layouts and stay consistent
// with InterfaceDensityView (length = density * total agent pairs).
func TestGeometryAcrossLayouts(t *testing.T) {
	for _, tc := range streamCases {
		lat := grid.RandomScenario(tc.n, 0.5, tc.rho, rng.New(uint64(tc.n*2000+tc.w)))
		packed := fastgrid.FromLattice(lat)
		tiled, err := fastgrid.TiledFromView(lat, 64)
		if err != nil {
			t.Fatal(err)
		}
		wantLen := InterfaceLengthView(lat, tc.open)
		wantCurv := BoundaryCurvatureView(lat, tc.open)
		for name, v := range map[string]grid.LatticeView{"packed": packed, "tiled": tiled} {
			if got := InterfaceLengthView(v, tc.open); got != wantLen {
				t.Errorf("n=%d open=%v %s: InterfaceLengthView = %v, want %v", tc.n, tc.open, name, got, wantLen)
			}
			if got := BoundaryCurvatureView(v, tc.open); got != wantCurv {
				t.Errorf("n=%d open=%v %s: BoundaryCurvatureView = %v, want %v", tc.n, tc.open, name, got, wantCurv)
			}
		}
		// Consistency with the density form: count agent pairs directly.
		pairs := countAgentPairs(lat, tc.open)
		if pairs > 0 {
			density := InterfaceDensityView(lat, tc.open)
			if got := wantLen / float64(pairs); got != density {
				t.Errorf("n=%d open=%v: length/pairs = %v, density = %v", tc.n, tc.open, got, density)
			}
		}
	}
}

// countAgentPairs counts 4-adjacent agent-agent pairs the same way the
// density walk does.
func countAgentPairs(v grid.LatticeView, open bool) int {
	n := v.N()
	at := func(x, y int) grid.Spin {
		if x >= n {
			x -= n
		}
		if y >= n {
			y -= n
		}
		return v.SpinAt(y*n + x)
	}
	pairs := 0
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			if v.SpinAt(y*n+x) == grid.None {
				continue
			}
			if (!open || x+1 < n) && at(x+1, y) != grid.None {
				pairs++
			}
			if (!open || y+1 < n) && at(x, y+1) != grid.None {
				pairs++
			}
		}
	}
	return pairs
}
