package measure

import "gridseg/internal/grid"

// Geometry observables of the +/- interface, in streaming *View form
// over any lattice layout. The morphogenesis literature characterizes
// final Schelling configurations by the shape of the phase boundary,
// not just its density: total interface length measures how much
// boundary exists, and boundary curvature measures how crooked it is —
// a labyrinthine spinodal pattern and a single flat slab can have
// similar interface densities but very different curvatures. Both are
// opt-in sweep columns (geom=true) and per-sample live observables;
// neither participates in the default column schema, so default
// artifacts are untouched.

// InterfaceLengthView returns the total +/- interface length of the
// view: the number of 4-adjacent agent pairs with opposite types, i.e.
// the number of unit lattice edges the phase boundary crosses. It is
// the unnormalized numerator of InterfaceDensityView and visits pairs
// in the same order (right and down neighbors, wrapping on the torus,
// clipped when open; pairs with a vacant partner never count).
func InterfaceLengthView(v grid.LatticeView, open bool) float64 {
	n := v.N()
	at := func(x, y int) grid.Spin {
		if x >= n {
			x -= n
		}
		if y >= n {
			y -= n
		}
		return v.SpinAt(y*n + x)
	}
	mismatched := 0
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			s := v.SpinAt(y*n + x)
			if s == grid.None {
				continue
			}
			if !open || x+1 < n {
				if o := at(x+1, y); o != grid.None && o != s {
					mismatched++
				}
			}
			if !open || y+1 < n {
				if o := at(x, y+1); o != grid.None && o != s {
					mismatched++
				}
			}
		}
	}
	return float64(mismatched)
}

// BoundaryCurvatureView estimates the mean absolute curvature of the
// +/- interface: corners per unit of interface length, computed by
// classifying every fully-occupied 2x2 plaquette of the view. A
// plaquette with one or three plus-agents contributes one corner; a
// diagonal two-two split contributes two (the boundary turns twice); a
// side-by-side split is a straight segment and contributes none. The
// result is corners / InterfaceLengthView — 0 for a flat slab boundary
// aligned with the lattice, 1 for a maximally crooked (checkerboard)
// one — and 0 when the view has no interface at all.
// Plaquettes containing a vacancy are skipped: the boundary geometry
// against a vacuum is not a +/- interface. On the torus all n^2
// plaquettes (wrapping) are classified; open boundaries clip to the
// (n-1)^2 interior plaquettes.
func BoundaryCurvatureView(v grid.LatticeView, open bool) float64 {
	length := InterfaceLengthView(v, open)
	if length == 0 {
		return 0
	}
	n := v.N()
	at := func(x, y int) grid.Spin {
		if x >= n {
			x -= n
		}
		if y >= n {
			y -= n
		}
		return v.SpinAt(y*n + x)
	}
	limit := n
	if open {
		limit = n - 1
	}
	corners := 0
	for y := 0; y < limit; y++ {
		for x := 0; x < limit; x++ {
			a := at(x, y)
			b := at(x+1, y)
			c := at(x, y+1)
			d := at(x+1, y+1)
			if a == grid.None || b == grid.None || c == grid.None || d == grid.None {
				continue
			}
			plus := 0
			if a == grid.Plus {
				plus++
			}
			if b == grid.Plus {
				plus++
			}
			if c == grid.Plus {
				plus++
			}
			if d == grid.Plus {
				plus++
			}
			switch plus {
			case 1, 3:
				corners++
			case 2:
				if a == d { // diagonal split: the boundary turns twice
					corners += 2
				}
			}
		}
	}
	return float64(corners) / length
}
