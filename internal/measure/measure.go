// Package measure computes the segregation observables the paper's
// theorems are about: the monochromatic region M(u) of an agent (the
// largest-radius neighborhood of a single type containing u, Section
// II.A), the almost monochromatic region M'(u) (minority/majority ratio
// below a vanishing bound), connected same-type clusters, and summary
// segregation indices used by the experiment harness.
package measure

import (
	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/scratch"
)

// Unreachable marks sites with no opposite-type agent on the lattice
// (monochromatic lattice) in distance fields.
const Unreachable = int32(-1)

// SamplePoints returns a deterministic spread of k probe agents on an
// n x n torus. The paper's theorems hold for an arbitrary fixed agent,
// so any deterministic sample is a valid estimator of E[M]; the
// experiment harness and the grid sweep share this one so their E[M]
// estimates stay comparable.
func SamplePoints(n, k int) []geom.Point {
	pts := make([]geom.Point, 0, k)
	for i := 0; i < k; i++ {
		pts = append(pts, geom.Point{
			X: (i*2*n/(2*k) + n/(2*k)) % n,
			Y: ((i*7 + 3) * n / (k*7 + 3)) % n,
		})
	}
	return pts
}

// distanceToSpin fills dist (length Sites) with, for every site, the
// Chebyshev (king-move) distance to the nearest site of the given
// spin, via multi-source BFS over a pooled queue. Sites of the given
// spin have distance 0; if the lattice contains no such site every
// entry is Unreachable.
func distanceToSpin(dist []int32, l *grid.Lattice, s grid.Spin) {
	n := l.N()
	for i := range dist {
		dist[i] = Unreachable
	}
	qp := scratch.I32(l.Sites())
	queue := (*qp)[:0]
	for i := 0; i < l.Sites(); i++ {
		if l.SpinAt(i) == s {
			dist[i] = 0
			queue = append(queue, int32(i))
		}
	}
	for head := 0; head < len(queue); head++ {
		i := int(queue[head])
		d := dist[i]
		x0, y0 := i%n, i/n
		for dy := -1; dy <= 1; dy++ {
			y := y0 + dy
			if y < 0 {
				y += n
			} else if y >= n {
				y -= n
			}
			row := y * n
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				x := x0 + dx
				if x < 0 {
					x += n
				} else if x >= n {
					x -= n
				}
				j := row + x
				if dist[j] == Unreachable {
					dist[j] = d + 1
					queue = append(queue, int32(j))
				}
			}
		}
	}
	*qp = queue
	scratch.PutI32(qp)
}

// oppositeDistancesInto fills dst with, for every site, the Chebyshev
// distance to the nearest agent of the opposite type, recycling its
// BFS scratch.
func oppositeDistancesInto(dst []int32, l *grid.Lattice) {
	tp, tm := scratch.I32(l.Sites()), scratch.I32(l.Sites())
	toPlus, toMinus := *tp, *tm
	distanceToSpin(toPlus, l, grid.Plus)
	distanceToSpin(toMinus, l, grid.Minus)
	for i := range dst {
		if l.SpinAt(i) == grid.Plus {
			dst[i] = toMinus[i]
		} else {
			dst[i] = toPlus[i]
		}
	}
	scratch.PutI32(tp)
	scratch.PutI32(tm)
}

// OppositeDistances returns, for every site, the Chebyshev distance to
// the nearest agent of the opposite type (>= 1), or Unreachable on a
// monochromatic lattice.
func OppositeDistances(l *grid.Lattice) []int32 {
	out := make([]int32, l.Sites())
	oppositeDistancesInto(out, l)
	return out
}

// maxRadiusCap returns the largest neighborhood radius that does not wrap
// the torus onto itself: (n-1)/2.
func maxRadiusCap(n int) int { return (n - 1) / 2 }

// CenteredRadii returns, for every site c, the largest radius r such that
// the neighborhood N_r(c) is monochromatic, capped at (n-1)/2. On a
// monochromatic lattice every entry equals the cap.
func CenteredRadii(l *grid.Lattice) []int32 {
	out := make([]int32, l.Sites())
	centeredRadiiInto(out, l)
	return out
}

// centeredRadiiInto fills dst with the centered-radii field, reusing
// dst for the intermediate opposite-distance pass (the radius
// transform is elementwise).
func centeredRadiiInto(dst []int32, l *grid.Lattice) {
	oppositeDistancesInto(dst, l)
	cap32 := int32(maxRadiusCap(l.N()))
	for i, d := range dst {
		switch {
		case d == Unreachable:
			dst[i] = cap32
		default:
			r := d - 1
			if r > cap32 {
				r = cap32
			}
			dst[i] = r
		}
	}
}

// MeanMonoRegionSize returns the mean M(u) over the probe points: the
// estimator of E[M] the grid sweeps measure at fixation. It computes
// the centered-radii field on a pooled buffer and recycles it before
// returning, so per-cell measurement allocates nothing beyond the BFS
// scratch (ownership of the pooled buffer never leaves this package).
func MeanMonoRegionSize(l *grid.Lattice, pts []geom.Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	rp := scratch.I32(l.Sites())
	radii := *rp
	centeredRadiiInto(radii, l)
	var mean float64
	for _, pt := range pts {
		mean += float64(MonoRegionSize(l, radii, pt))
	}
	scratch.PutI32(rp)
	return mean / float64(len(pts))
}

// MonoRegionSize returns M(u): the size (agent count) of the largest
// monochromatic neighborhood (square of odd side) that contains u, using
// precomputed centered radii. The minimum is 1 (the agent itself).
//
// M(u) = max over centers c with cheb(u,c) <= r(c) of (2 r(c)+1)^2:
// any monochromatic square of radius r(c) centered at c contains u
// exactly when u is within Chebyshev distance r(c) of c.
func MonoRegionSize(l *grid.Lattice, radii []int32, u geom.Point) int {
	tor := l.Torus()
	rcap := maxRadiusCap(l.N())
	best := int32(0) // radius r(u) >= 0 always qualifies at d = 0
	// Scan rings of centers outward; a center at distance d qualifies
	// iff r(c) >= d. No center beyond rcap can qualify.
	for d := 0; d <= rcap; d++ {
		scan := func(p geom.Point) {
			r := radii[tor.Index(p)]
			if int(r) >= d && r > best {
				best = r
			}
		}
		if d == 0 {
			scan(u)
			continue
		}
		tor.SquarePerimeter(u, d, scan)
	}
	return geom.SquareSize(int(best))
}

// MonoRegionRadius returns the radius of the largest monochromatic
// neighborhood containing u; see MonoRegionSize.
func MonoRegionRadius(l *grid.Lattice, radii []int32, u geom.Point) int {
	size := MonoRegionSize(l, radii, u)
	// size = (2r+1)^2; invert.
	side := 1
	for side*side < size {
		side += 2
	}
	return (side - 1) / 2
}

// AlmostMonoSize returns M'(u): the size of the largest neighborhood
// (square of odd side, radius at most rcap) containing u whose
// minority/majority agent-count ratio is at most beta — the paper's
// almost monochromatic region with beta = e^{-eps N}. The prefix must be
// a snapshot of l. The minimum is 1. rcap <= 0 means the torus maximum.
func AlmostMonoSize(l *grid.Lattice, pre *grid.Prefix, u geom.Point, beta float64, rcap int) int {
	tor := l.Torus()
	maxR := maxRadiusCap(l.N())
	if rcap > 0 && rcap < maxR {
		maxR = rcap
	}
	best := 0
	// For each candidate radius rho (descending), look for any center
	// within distance rho of u whose square of radius rho satisfies the
	// ratio bound. Descending order lets us stop at the first success.
	for rho := maxR; rho >= 0; rho-- {
		found := false
		for dy := -rho; dy <= rho && !found; dy++ {
			for dx := -rho; dx <= rho && !found; dx++ {
				c := tor.Add(u, dx, dy)
				if pre.MinorityRatioInSquare(c, rho) <= beta {
					found = true
				}
			}
		}
		if found {
			best = rho
			break
		}
	}
	return geom.SquareSize(best)
}

// ClusterStats summarizes the connected same-type clusters of a lattice
// under 4-adjacency.
type ClusterStats struct {
	Count        int   // number of clusters
	Sizes        []int // size of every cluster, unordered
	LargestPlus  int   // largest +1 cluster size (0 if none)
	LargestMinus int   // largest -1 cluster size (0 if none)
}

// Clusters labels the connected same-spin components (4-adjacency, torus)
// and returns their statistics together with the per-site cluster sizes.
// On vacancy lattices the vacant sites form their own spin-None
// clusters, reported in Count/Sizes but never in LargestPlus or
// LargestMinus.
func Clusters(l *grid.Lattice) (ClusterStats, []int32) {
	return clusters(l, false)
}

// ClustersScenario is Clusters under an explicit boundary condition:
// with open=true, components never connect across the grid edges.
func ClustersScenario(l *grid.Lattice, open bool) (ClusterStats, []int32) {
	return clusters(l, open)
}

// ClusterStatsScenario computes the cluster statistics without
// materializing any per-site field — the variant the sweep
// measurement loop uses. It runs the streaming two-row union-find of
// ClusterStatsView, whose Sizes order (ascending minimal site) matches
// the BFS discovery order of Clusters exactly.
func ClusterStatsScenario(l *grid.Lattice, open bool) ClusterStats {
	return ClusterStatsView(l, open)
}

// clusters is the BFS labeling pass behind the per-site variants; the
// stats-only callers use the streaming ClusterStatsView instead.
func clusters(l *grid.Lattice, open bool) (ClusterStats, []int32) {
	n := l.N()
	sites := l.Sites()
	lp, qp := scratch.I32(sites), scratch.I32(sites)
	label := *lp
	for i := range label {
		label[i] = -1
	}
	var stats ClusterStats
	queue := (*qp)[:0]
	clusterSize := make([]int32, 0)
	for start := 0; start < sites; start++ {
		if label[start] != -1 {
			continue
		}
		id := int32(len(clusterSize))
		spin := l.SpinAt(start)
		label[start] = id
		queue = append(queue[:0], int32(start))
		size := 0
		for head := 0; head < len(queue); head++ {
			i := int(queue[head])
			size++
			x0, y0 := i%n, i/n
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				x := x0 + d[0]
				if x < 0 {
					if open {
						continue
					}
					x += n
				} else if x >= n {
					if open {
						continue
					}
					x -= n
				}
				y := y0 + d[1]
				if y < 0 {
					if open {
						continue
					}
					y += n
				} else if y >= n {
					if open {
						continue
					}
					y -= n
				}
				j := y*n + x
				if label[j] == -1 && l.SpinAt(j) == spin {
					label[j] = id
					queue = append(queue, int32(j))
				}
			}
		}
		clusterSize = append(clusterSize, int32(size))
		stats.Sizes = append(stats.Sizes, size)
		switch spin {
		case grid.Plus:
			if size > stats.LargestPlus {
				stats.LargestPlus = size
			}
		case grid.Minus:
			if size > stats.LargestMinus {
				stats.LargestMinus = size
			}
		}
	}
	stats.Count = len(stats.Sizes)
	perSite := make([]int32, sites)
	for i := range perSite {
		perSite[i] = clusterSize[label[i]]
	}
	*qp = queue
	scratch.PutI32(lp)
	scratch.PutI32(qp)
	return stats, perSite
}

// InterfaceDensity returns the fraction of 4-adjacent site pairs with
// opposite spins: 0 on a monochromatic lattice, ~1/2 on an independent
// half-half lattice. It is a standard domain-wall density observable.
func InterfaceDensity(l *grid.Lattice) float64 {
	n := l.N()
	mismatched := 0
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			s := l.Spin(geom.Point{X: x, Y: y})
			if l.Spin(geom.Point{X: x + 1, Y: y}) != s {
				mismatched++
			}
			if l.Spin(geom.Point{X: x, Y: y + 1}) != s {
				mismatched++
			}
		}
	}
	return float64(mismatched) / float64(2*n*n)
}

// MeanSameFraction returns the average over agents of s(u), the fraction
// of same-type agents in the radius-w neighborhood (including u). It is
// 1 on a monochromatic lattice and ~1/2 on an independent half-half one.
func MeanSameFraction(l *grid.Lattice, w int) float64 {
	counts := l.WindowCounts(w)
	nbhd := float64(geom.SquareSize(w))
	var acc float64
	for i := 0; i < l.Sites(); i++ {
		plus := float64(counts[i])
		if l.SpinAt(i) == grid.Plus {
			acc += plus / nbhd
		} else {
			acc += (nbhd - plus) / nbhd
		}
	}
	return acc / float64(l.Sites())
}

// HappyFraction returns the fraction of agents with same-type count at
// least thresh in their radius-w neighborhood, computed from scratch
// (no process needed).
func HappyFraction(l *grid.Lattice, w, thresh int) float64 {
	counts := l.WindowCounts(w)
	nbhd := geom.SquareSize(w)
	happy := 0
	for i := 0; i < l.Sites(); i++ {
		same := int(counts[i])
		if l.SpinAt(i) != grid.Plus {
			same = nbhd - same
		}
		if same >= thresh {
			happy++
		}
	}
	return float64(happy) / float64(l.Sites())
}
