package measure

import (
	"errors"
	"math"

	"gridseg/internal/grid"
)

// Classic residential-segregation indices from the empirical literature
// Schelling's model addresses, computed over a partition of the torus
// into m x m census blocks. They complement the paper's region-size
// observables with the measures practitioners report.

// BlockCounts aggregates per-block type counts.
type BlockCounts struct {
	M     int // block side
	Side  int // blocks per row
	Plus  []int
	Total []int
}

// CountBlocks partitions the lattice into m x m blocks (m must divide
// n) and counts agents per block.
func CountBlocks(l *grid.Lattice, m int) (*BlockCounts, error) {
	n := l.N()
	if m < 1 || n%m != 0 {
		return nil, errors.New("measure: block side must divide lattice side")
	}
	pre := grid.NewPrefix(l)
	side := n / m
	bc := &BlockCounts{M: m, Side: side, Plus: make([]int, side*side), Total: make([]int, side*side)}
	for by := 0; by < side; by++ {
		for bx := 0; bx < side; bx++ {
			i := by*side + bx
			bc.Plus[i] = pre.PlusInRect(bx*m, by*m, m, m)
			bc.Total[i] = m * m
		}
	}
	return bc, nil
}

// Dissimilarity returns the Duncan & Duncan dissimilarity index
// D = (1/2) sum_b |p_b/P - q_b/Q| in [0, 1]: 0 when every block mirrors
// the global composition, 1 under complete block-level separation.
// It returns an error when either type is absent.
func (bc *BlockCounts) Dissimilarity() (float64, error) {
	var totalPlus, totalMinus int
	for i := range bc.Plus {
		totalPlus += bc.Plus[i]
		totalMinus += bc.Total[i] - bc.Plus[i]
	}
	if totalPlus == 0 || totalMinus == 0 {
		return 0, errors.New("measure: dissimilarity undefined for a monochromatic lattice")
	}
	var acc float64
	for i := range bc.Plus {
		pb := float64(bc.Plus[i]) / float64(totalPlus)
		qb := float64(bc.Total[i]-bc.Plus[i]) / float64(totalMinus)
		acc += math.Abs(pb - qb)
	}
	return acc / 2, nil
}

// Isolation returns the isolation index of the plus type,
// sum_b (p_b/P)(p_b/t_b) in (0, 1]: the average local plus share
// experienced by a random plus agent at block granularity.
// It returns an error when the plus type is absent.
func (bc *BlockCounts) Isolation() (float64, error) {
	totalPlus := 0
	for _, p := range bc.Plus {
		totalPlus += p
	}
	if totalPlus == 0 {
		return 0, errors.New("measure: isolation undefined without plus agents")
	}
	var acc float64
	for i := range bc.Plus {
		if bc.Total[i] == 0 {
			continue
		}
		share := float64(bc.Plus[i]) / float64(totalPlus)
		local := float64(bc.Plus[i]) / float64(bc.Total[i])
		acc += share * local
	}
	return acc, nil
}

// Exposure returns the exposure of the plus type to the minus type,
// sum_b (p_b/P)((t_b - p_b)/t_b) in [0, 1): the average local minus
// share experienced by a random plus agent. Exposure + Isolation = 1.
func (bc *BlockCounts) Exposure() (float64, error) {
	iso, err := bc.Isolation()
	if err != nil {
		return 0, err
	}
	return 1 - iso, nil
}
