package measure

import (
	"gridseg/internal/grid"
)

// Scenario-aware observables. These generalize the classic measures to
// the topology subsystem's variants — open boundaries (windows and
// adjacencies clamp at the edges) and vacancies (only agents are
// measured) — and reduce bit-for-bit to the classic definitions on the
// default scenario (torus, full occupancy), which keeps default-cell
// sweep artifacts byte-stable. They are thin lattice-typed wrappers
// over the streaming view forms in stream.go, which do the work in
// O(n*w) scratch.

// InterfaceDensityScenario returns the fraction of 4-adjacent
// agent-agent pairs with opposite types, ignoring pairs that involve a
// vacant site and, under the open boundary, pairs that would wrap. On
// a fully occupied torus it equals InterfaceDensity exactly.
func InterfaceDensityScenario(l *grid.Lattice, open bool) float64 {
	return InterfaceDensityView(l, open)
}

// MeanSameFractionScenario returns the average over agents of s(u):
// the fraction of same-type agents among the occupied sites of u's
// radius-w window (clamped at the edges when open), including u. On a
// fully occupied torus it equals MeanSameFraction exactly.
func MeanSameFractionScenario(l *grid.Lattice, w int, open bool) float64 {
	return MeanSameFractionView(l, w, open)
}

// MagnetizationScenario returns (plus - minus) / agents, the
// occupied-site magnetization; on a fully occupied lattice it equals
// the classic (2*CountPlus - Sites) / Sites.
func MagnetizationScenario(l *grid.Lattice) float64 {
	return MagnetizationView(l)
}
