package measure

import (
	"gridseg/internal/grid"
)

// Scenario-aware observables. These generalize the classic measures to
// the topology subsystem's variants — open boundaries (windows and
// adjacencies clamp at the edges) and vacancies (only agents are
// measured) — and reduce bit-for-bit to the classic definitions on the
// default scenario (torus, full occupancy), which keeps default-cell
// sweep artifacts byte-stable.

// InterfaceDensityScenario returns the fraction of 4-adjacent
// agent-agent pairs with opposite types, ignoring pairs that involve a
// vacant site and, under the open boundary, pairs that would wrap. On
// a fully occupied torus it equals InterfaceDensity exactly.
func InterfaceDensityScenario(l *grid.Lattice, open bool) float64 {
	n := l.N()
	mismatched, pairs := 0, 0
	at := func(x, y int) grid.Spin {
		if x >= n {
			x -= n
		}
		if y >= n {
			y -= n
		}
		return l.SpinAt(y*n + x)
	}
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			s := l.SpinAt(y*n + x)
			if s == grid.None {
				continue
			}
			if !open || x+1 < n {
				if o := at(x+1, y); o != grid.None {
					pairs++
					if o != s {
						mismatched++
					}
				}
			}
			if !open || y+1 < n {
				if o := at(x, y+1); o != grid.None {
					pairs++
					if o != s {
						mismatched++
					}
				}
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(mismatched) / float64(pairs)
}

// MeanSameFractionScenario returns the average over agents of s(u):
// the fraction of same-type agents among the occupied sites of u's
// radius-w window (clamped at the edges when open), including u. On a
// fully occupied torus it equals MeanSameFraction exactly.
func MeanSameFractionScenario(l *grid.Lattice, w int, open bool) float64 {
	plus := l.PlusWindowCounts(w, open)
	occ := l.OccupiedWindowCounts(w, open)
	var acc float64
	agents := 0
	for i := 0; i < l.Sites(); i++ {
		switch l.SpinAt(i) {
		case grid.Plus:
			acc += float64(plus[i]) / float64(occ[i])
		case grid.Minus:
			acc += float64(occ[i]-plus[i]) / float64(occ[i])
		default:
			continue
		}
		agents++
	}
	if agents == 0 {
		return 0
	}
	return acc / float64(agents)
}

// MagnetizationScenario returns (plus - minus) / agents, the
// occupied-site magnetization; on a fully occupied lattice it equals
// the classic (2*CountPlus - Sites) / Sites.
func MagnetizationScenario(l *grid.Lattice) float64 {
	agents := l.CountOccupied()
	if agents == 0 {
		return 0
	}
	return float64(l.CountPlus()-l.CountMinus()) / float64(agents)
}
