package measure

import (
	"math"
	"testing"

	"gridseg/internal/dynamics"
	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
)

func TestCountBlocksValidation(t *testing.T) {
	l := grid.New(10, grid.Plus)
	if _, err := CountBlocks(l, 3); err == nil {
		t.Fatal("want error when m does not divide n")
	}
	if _, err := CountBlocks(l, 0); err == nil {
		t.Fatal("want error for zero block side")
	}
}

func TestCountBlocksTotals(t *testing.T) {
	l := grid.Random(12, 0.5, rng.New(1))
	bc, err := CountBlocks(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bc.Side != 3 || len(bc.Plus) != 9 {
		t.Fatalf("layout: side=%d blocks=%d", bc.Side, len(bc.Plus))
	}
	sum := 0
	for _, p := range bc.Plus {
		sum += p
	}
	if sum != l.CountPlus() {
		t.Fatalf("block plus sum %d != lattice %d", sum, l.CountPlus())
	}
	for _, tot := range bc.Total {
		if tot != 16 {
			t.Fatalf("block total %d, want 16", tot)
		}
	}
}

func TestDissimilarityExtremes(t *testing.T) {
	// Perfectly separated halves: D = 1.
	l := grid.New(8, grid.Minus)
	for y := 0; y < 8; y++ {
		for x := 0; x < 4; x++ {
			l.Set(geom.Point{X: x, Y: y}, grid.Plus)
		}
	}
	bc, err := CountBlocks(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := bc.Dissimilarity()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1) > 1e-12 {
		t.Fatalf("separated halves D = %v, want 1", d)
	}
	// Perfectly even blocks: D = 0 (checkerboard at any block size).
	cb := grid.New(8, grid.Minus)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if (x+y)%2 == 0 {
				cb.Set(geom.Point{X: x, Y: y}, grid.Plus)
			}
		}
	}
	bc2, err := CountBlocks(cb, 4)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := bc2.Dissimilarity()
	if err != nil {
		t.Fatal(err)
	}
	if d2 != 0 {
		t.Fatalf("checkerboard D = %v, want 0", d2)
	}
}

func TestDissimilarityUndefinedMonochromatic(t *testing.T) {
	bc, err := CountBlocks(grid.New(8, grid.Plus), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bc.Dissimilarity(); err == nil {
		t.Fatal("want error for monochromatic lattice")
	}
}

func TestIsolationAndExposure(t *testing.T) {
	// Separated halves: every plus agent lives in an all-plus block:
	// isolation 1, exposure 0.
	l := grid.New(8, grid.Minus)
	for y := 0; y < 8; y++ {
		for x := 0; x < 4; x++ {
			l.Set(geom.Point{X: x, Y: y}, grid.Plus)
		}
	}
	bc, err := CountBlocks(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	iso, err := bc.Isolation()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iso-1) > 1e-12 {
		t.Fatalf("isolation = %v, want 1", iso)
	}
	exp, err := bc.Exposure()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exp) > 1e-12 {
		t.Fatalf("exposure = %v, want 0", exp)
	}
	// Checkerboard: every block is half plus: isolation 1/2.
	cb := grid.New(8, grid.Minus)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if (x+y)%2 == 0 {
				cb.Set(geom.Point{X: x, Y: y}, grid.Plus)
			}
		}
	}
	bc2, _ := CountBlocks(cb, 4)
	iso2, err := bc2.Isolation()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iso2-0.5) > 1e-12 {
		t.Fatalf("checkerboard isolation = %v, want 0.5", iso2)
	}
}

func TestIsolationUndefinedWithoutPlus(t *testing.T) {
	bc, err := CountBlocks(grid.New(8, grid.Minus), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bc.Isolation(); err == nil {
		t.Fatal("want error without plus agents")
	}
	if _, err := bc.Exposure(); err == nil {
		t.Fatal("want error without plus agents")
	}
}

// The segregation process must raise both D and isolation relative to
// the initial random configuration.
func TestIndicesRiseUnderDynamics(t *testing.T) {
	l := grid.Random(48, 0.5, rng.New(5))
	before, err := CountBlocks(l, 8)
	if err != nil {
		t.Fatal(err)
	}
	d0, err := before.Dissimilarity()
	if err != nil {
		t.Fatal(err)
	}
	iso0, err := before.Isolation()
	if err != nil {
		t.Fatal(err)
	}
	proc, err := dynamics.New(l, 2, 0.45, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	proc.Run(0)
	after, err := CountBlocks(l, 8)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := after.Dissimilarity()
	if err != nil {
		t.Fatal(err)
	}
	iso1, err := after.Isolation()
	if err != nil {
		t.Fatal(err)
	}
	if d1 <= d0 {
		t.Fatalf("dissimilarity must rise: %v -> %v", d0, d1)
	}
	if iso1 <= iso0 {
		t.Fatalf("isolation must rise: %v -> %v", iso0, iso1)
	}
}
