package measure

import (
	"math"
	"testing"

	"gridseg/internal/fastgrid"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
)

// streamCases spans both boundaries, vacancies, window radii crossing
// word and tile seams, and open windows larger than the grid.
var streamCases = []struct {
	n, w int
	rho  float64
	open bool
}{
	{5, 1, 0, false}, {5, 2, 0.2, true}, {9, 4, 0.1, false},
	{31, 15, 0.1, true}, {64, 3, 0.05, false}, {65, 32, 0.2, true},
	{100, 10, 0.1, true}, {100, 10, 0, false}, {16, 20, 0.1, true},
	{130, 4, 0.3, false},
}

// TestStreamingAgainstMaterialized pins every streaming view
// observable to its reference counterpart, on the reference lattice
// and on the packed and tiled layouts of the same configuration.
func TestStreamingAgainstMaterialized(t *testing.T) {
	for _, tc := range streamCases {
		lat := grid.RandomScenario(tc.n, 0.5, tc.rho, rng.New(uint64(tc.n*1000+tc.w)))
		packed := fastgrid.FromLattice(lat)
		tiled, err := fastgrid.TiledFromView(lat, 64)
		if err != nil {
			t.Fatal(err)
		}
		views := map[string]grid.LatticeView{"reference": lat, "packed": packed, "tiled": tiled}

		// Reference values from the materializing implementations.
		plus := lat.PlusWindowCounts(tc.w, tc.open)
		occ := lat.OccupiedWindowCounts(tc.w, tc.open)
		var wantPhi int64
		var wantSame float64
		agents := 0
		for i := 0; i < lat.Sites(); i++ {
			switch lat.SpinAt(i) {
			case grid.Plus:
				wantPhi += int64(plus[i])
				wantSame += float64(plus[i]) / float64(occ[i])
			case grid.Minus:
				wantPhi += int64(occ[i] - plus[i])
				wantSame += float64(occ[i]-plus[i]) / float64(occ[i])
			default:
				continue
			}
			agents++
		}
		if agents > 0 {
			wantSame /= float64(agents)
		}
		wantCl, _ := ClustersScenario(lat, tc.open)
		wantIface := InterfaceDensityScenario(lat, tc.open)
		wantMag := MagnetizationScenario(lat)

		for name, v := range views {
			if got := PhiView(v, tc.w, tc.open); got != wantPhi {
				t.Fatalf("%+v %s: PhiView = %d, want %d", tc, name, got, wantPhi)
			}
			if got := MeanSameFractionView(v, tc.w, tc.open); got != wantSame {
				t.Fatalf("%+v %s: MeanSameFractionView = %v, want %v", tc, name, got, wantSame)
			}
			if got := InterfaceDensityView(v, tc.open); got != wantIface {
				t.Fatalf("%+v %s: InterfaceDensityView = %v, want %v", tc, name, got, wantIface)
			}
			if got := MagnetizationView(v); got != wantMag {
				t.Fatalf("%+v %s: MagnetizationView = %v, want %v", tc, name, got, wantMag)
			}
			got := ClusterStatsView(v, tc.open)
			if got.Count != wantCl.Count || got.LargestPlus != wantCl.LargestPlus || got.LargestMinus != wantCl.LargestMinus {
				t.Fatalf("%+v %s: ClusterStatsView = %+v, want %+v", tc, name, got, wantCl)
			}
			if len(got.Sizes) != len(wantCl.Sizes) {
				t.Fatalf("%+v %s: %d cluster sizes, want %d", tc, name, len(got.Sizes), len(wantCl.Sizes))
			}
			for k := range got.Sizes {
				if got.Sizes[k] != wantCl.Sizes[k] {
					t.Fatalf("%+v %s: Sizes[%d] = %d, want %d (order must match BFS discovery)", tc, name, k, got.Sizes[k], wantCl.Sizes[k])
				}
			}
		}
	}
}

// TestStreamingDegenerate covers empty and single-site lattices.
func TestStreamingDegenerate(t *testing.T) {
	empty, err := grid.Parse(".")
	if err != nil {
		t.Fatal(err)
	}
	if got := MeanSameFractionView(empty, 0, true); got != 0 {
		t.Fatalf("empty MeanSameFraction = %v", got)
	}
	if got := MagnetizationView(empty); got != 0 {
		t.Fatalf("empty Magnetization = %v", got)
	}
	if got := PhiView(empty, 0, true); got != 0 {
		t.Fatalf("empty Phi = %d", got)
	}
	cl := ClusterStatsView(empty, true)
	if cl.Count != 1 || cl.LargestPlus != 0 || cl.LargestMinus != 0 {
		t.Fatalf("empty clusters = %+v", cl)
	}
	if !math.IsNaN(0*InterfaceDensityView(empty, true)) && InterfaceDensityView(empty, true) != 0 {
		t.Fatalf("empty interface = %v", InterfaceDensityView(empty, true))
	}
}
