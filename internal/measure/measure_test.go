package measure

import (
	"math"
	"testing"
	"testing/quick"

	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
)

func mustParse(t *testing.T, s string) *grid.Lattice {
	t.Helper()
	l, err := grid.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestOppositeDistancesMonochromatic(t *testing.T) {
	l := grid.New(5, grid.Plus)
	for i, d := range OppositeDistances(l) {
		if d != Unreachable {
			t.Fatalf("site %d: distance %d, want Unreachable", i, d)
		}
	}
}

func TestOppositeDistancesHandCase(t *testing.T) {
	l := mustParse(t, `
		-----
		-----
		--+--
		-----
		-----
	`)
	opp := OppositeDistances(l)
	tor := l.Torus()
	center := geom.Point{X: 2, Y: 2}
	for i := 0; i < l.Sites(); i++ {
		p := tor.At(i)
		want := int32(tor.Cheb(p, center))
		if p == center {
			// The + agent's nearest opposite is any adjacent -.
			want = 1
		}
		if opp[i] != want {
			t.Fatalf("site %v: distance %d, want %d", p, opp[i], want)
		}
	}
}

func TestOppositeDistancesMatchBruteForce(t *testing.T) {
	l := grid.Random(11, 0.5, rng.New(3))
	opp := OppositeDistances(l)
	tor := l.Torus()
	for i := 0; i < l.Sites(); i++ {
		p := tor.At(i)
		want := int32(math.MaxInt32)
		for j := 0; j < l.Sites(); j++ {
			if l.SpinAt(j) != l.SpinAt(i) {
				if d := int32(tor.Cheb(p, tor.At(j))); d < want {
					want = d
				}
			}
		}
		if opp[i] != want {
			t.Fatalf("site %v: BFS %d, brute %d", p, opp[i], want)
		}
	}
}

func TestCenteredRadii(t *testing.T) {
	l := mustParse(t, `
		+++++++
		+++++++
		+++++++
		+++-+++
		+++++++
		+++++++
		+++++++
	`)
	radii := CenteredRadii(l)
	tor := l.Torus()
	// The minus agent at (3,3): centered radius 0 (its own square of
	// radius 1 contains + agents).
	if r := radii[tor.Index(geom.Point{X: 3, Y: 3})]; r != 0 {
		t.Fatalf("minus center radius = %d, want 0", r)
	}
	// A + agent at (0,0) is at Chebyshev distance 3 from the minus
	// (torus-wrapped), so its centered monochromatic radius is 2.
	if r := radii[tor.Index(geom.Point{X: 0, Y: 0})]; r != 2 {
		t.Fatalf("corner radius = %d, want 2", r)
	}
}

func TestCenteredRadiiMonochromaticCapped(t *testing.T) {
	l := grid.New(9, grid.Minus)
	radii := CenteredRadii(l)
	for i, r := range radii {
		if r != 4 { // (9-1)/2
			t.Fatalf("site %d: radius %d, want cap 4", i, r)
		}
	}
}

func TestMonoRegionSizeHandCase(t *testing.T) {
	// 9x9 with a 5x5 + block in the top-left corner (centered at (2,2))
	// in a sea of -.
	l := grid.New(9, grid.Minus)
	tor := l.Torus()
	tor.Square(geom.Point{X: 2, Y: 2}, 2, func(p geom.Point) { l.Set(p, grid.Plus) })
	radii := CenteredRadii(l)
	// The block's center has centered radius 2 => M >= 25. No larger
	// monochromatic square exists anywhere near it; but the far-away
	// minus sea has its own larger squares, which must NOT count for a
	// + agent inside the block.
	if got := MonoRegionSize(l, radii, geom.Point{X: 2, Y: 2}); got != 25 {
		t.Fatalf("M(block center) = %d, want 25", got)
	}
	// A corner agent of the + block is contained in the same 5x5 block.
	if got := MonoRegionSize(l, radii, geom.Point{X: 0, Y: 0}); got != 25 {
		t.Fatalf("M(block corner) = %d, want 25", got)
	}
	if got := MonoRegionRadius(l, radii, geom.Point{X: 0, Y: 0}); got != 2 {
		t.Fatalf("radius = %d, want 2", got)
	}
}

// A minus agent far from the block sits in a large minus region: the
// largest monochromatic square avoiding the 5x5 block.
func TestMonoRegionSizeOfSeaAgent(t *testing.T) {
	l := grid.New(15, grid.Minus)
	tor := l.Torus()
	tor.Square(geom.Point{X: 2, Y: 2}, 2, func(p geom.Point) { l.Set(p, grid.Plus) })
	radii := CenteredRadii(l)
	u := geom.Point{X: 9, Y: 9}
	got := MonoRegionSize(l, radii, u)
	// The + block occupies [0,4]^2 on a 15-torus. The circular distance
	// from any x to the interval [0,4] is at most 5 (attained mid-gap),
	// so no center is Chebyshev distance >= 6 from every + site and no
	// minus square of radius 5 exists anywhere. Centers like (9,9) or
	// (10,10) attain distance 5 => centered radius 4 => M = 81.
	if got != 81 {
		t.Fatalf("M(sea agent) = %d, want 81", got)
	}
}

func TestMonoRegionSizeSingleton(t *testing.T) {
	// Checkerboard: every agent is its own monochromatic region.
	l := grid.New(8, grid.Minus)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if (x+y)%2 == 0 {
				l.Set(geom.Point{X: x, Y: y}, grid.Plus)
			}
		}
	}
	radii := CenteredRadii(l)
	if got := MonoRegionSize(l, radii, geom.Point{X: 3, Y: 3}); got != 1 {
		t.Fatalf("checkerboard M = %d, want 1", got)
	}
}

func TestAlmostMonoSizeExactMonochromatic(t *testing.T) {
	// With beta = 0 the almost-mono region coincides with the mono one.
	l := grid.New(9, grid.Minus)
	tor := l.Torus()
	tor.Square(geom.Point{X: 2, Y: 2}, 2, func(p geom.Point) { l.Set(p, grid.Plus) })
	pre := grid.NewPrefix(l)
	radii := CenteredRadii(l)
	u := geom.Point{X: 1, Y: 1}
	if got, want := AlmostMonoSize(l, pre, u, 0, 0), MonoRegionSize(l, radii, u); got != want {
		t.Fatalf("beta=0 almost-mono %d != mono %d", got, want)
	}
}

func TestAlmostMonoSizeToleratesMinority(t *testing.T) {
	// A 7x7 + block with one - inside: ratio 1/48 <= 1/40.
	l := grid.New(15, grid.Minus)
	tor := l.Torus()
	tor.Square(geom.Point{X: 4, Y: 4}, 3, func(p geom.Point) { l.Set(p, grid.Plus) })
	l.Set(geom.Point{X: 4, Y: 4}, grid.Minus)
	pre := grid.NewPrefix(l)
	u := geom.Point{X: 5, Y: 5}
	got := AlmostMonoSize(l, pre, u, 1.0/40, 3)
	if got != 49 {
		t.Fatalf("almost-mono size = %d, want 49", got)
	}
	// With a stricter bound the polluted square no longer qualifies.
	strict := AlmostMonoSize(l, pre, u, 1.0/100, 3)
	if strict >= 49 {
		t.Fatalf("strict almost-mono size = %d, want < 49", strict)
	}
}

func TestAlmostMonoRespectsRcap(t *testing.T) {
	l := grid.New(21, grid.Plus)
	pre := grid.NewPrefix(l)
	got := AlmostMonoSize(l, pre, geom.Point{X: 10, Y: 10}, 0, 2)
	if got != 25 {
		t.Fatalf("rcap=2 size = %d, want 25", got)
	}
}

func TestClustersMonochromatic(t *testing.T) {
	l := grid.New(6, grid.Plus)
	stats, perSite := Clusters(l)
	if stats.Count != 1 || stats.LargestPlus != 36 || stats.LargestMinus != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	for _, s := range perSite {
		if s != 36 {
			t.Fatal("per-site cluster size must be 36")
		}
	}
}

func TestClustersHandCase(t *testing.T) {
	l := mustParse(t, `
		++--
		++--
		----
		----
	`)
	stats, perSite := Clusters(l)
	if stats.Count != 2 {
		t.Fatalf("count = %d, want 2", stats.Count)
	}
	if stats.LargestPlus != 4 || stats.LargestMinus != 12 {
		t.Fatalf("stats = %+v", stats)
	}
	tor := l.Torus()
	if perSite[tor.Index(geom.Point{X: 0, Y: 0})] != 4 {
		t.Fatal("plus block site must be in a cluster of 4")
	}
	if perSite[tor.Index(geom.Point{X: 3, Y: 3})] != 12 {
		t.Fatal("minus sea site must be in a cluster of 12")
	}
}

func TestClustersWrapAround(t *testing.T) {
	// A full row of + wraps into a single cluster of size n.
	l := grid.New(5, grid.Minus)
	for x := 0; x < 5; x++ {
		l.Set(geom.Point{X: x, Y: 2}, grid.Plus)
	}
	stats, _ := Clusters(l)
	if stats.LargestPlus != 5 {
		t.Fatalf("wrapped row cluster = %d, want 5", stats.LargestPlus)
	}
	if stats.LargestMinus != 20 {
		t.Fatalf("sea cluster = %d, want 20 (wraps vertically)", stats.LargestMinus)
	}
}

func TestInterfaceDensity(t *testing.T) {
	if got := InterfaceDensity(grid.New(6, grid.Plus)); got != 0 {
		t.Fatalf("monochromatic interface density = %v, want 0", got)
	}
	// Checkerboard: every edge is mismatched.
	l := grid.New(6, grid.Minus)
	for y := 0; y < 6; y++ {
		for x := 0; x < 6; x++ {
			if (x+y)%2 == 0 {
				l.Set(geom.Point{X: x, Y: y}, grid.Plus)
			}
		}
	}
	if got := InterfaceDensity(l); got != 1 {
		t.Fatalf("checkerboard interface density = %v, want 1", got)
	}
	// Vertical stripes of width 3 on a 6-torus: 2 mismatched vertical
	// boundaries per row out of 6 horizontal edges per row; vertical
	// edges all matched => density = (2*6)/(2*36) = 1/6.
	stripes := grid.New(6, grid.Minus)
	for y := 0; y < 6; y++ {
		for x := 0; x < 3; x++ {
			stripes.Set(geom.Point{X: x, Y: y}, grid.Plus)
		}
	}
	if got := InterfaceDensity(stripes); math.Abs(got-1.0/6) > 1e-12 {
		t.Fatalf("stripes interface density = %v, want 1/6", got)
	}
}

func TestMeanSameFraction(t *testing.T) {
	if got := MeanSameFraction(grid.New(7, grid.Plus), 1); got != 1 {
		t.Fatalf("monochromatic mean same fraction = %v, want 1", got)
	}
	l := grid.Random(32, 0.5, rng.New(5))
	got := MeanSameFraction(l, 2)
	if math.Abs(got-0.5) > 0.05 {
		t.Fatalf("random mean same fraction = %v, want ~0.5", got)
	}
}

func TestHappyFraction(t *testing.T) {
	l := grid.New(7, grid.Plus)
	if got := HappyFraction(l, 1, 9); got != 1 {
		t.Fatalf("monochromatic happy fraction = %v, want 1", got)
	}
	// Single dissenter at tau N = 5, w = 1: exactly one unhappy agent.
	l.Set(geom.Point{X: 3, Y: 3}, grid.Minus)
	got := HappyFraction(l, 1, 5)
	want := 1 - 1.0/49
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("happy fraction = %v, want %v", got, want)
	}
}

// Property: M(u) is at least the centered square at u and at most the
// full torus, and contains u by construction.
func TestQuickMonoRegionBounds(t *testing.T) {
	f := func(seed uint64) bool {
		l := grid.Random(9, 0.5, rng.New(seed))
		radii := CenteredRadii(l)
		u := l.Torus().At(int(seed % uint64(l.Sites())))
		m := MonoRegionSize(l, radii, u)
		centered := geom.SquareSize(int(radii[l.Torus().Index(u)]))
		return m >= centered && m >= 1 && m <= l.Sites()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: AlmostMonoSize is monotone in beta and always >= MonoRegionSize
// restricted to the same radius cap when beta >= 0.
func TestQuickAlmostMonoMonotoneInBeta(t *testing.T) {
	f := func(seed uint64) bool {
		l := grid.Random(9, 0.5, rng.New(seed))
		pre := grid.NewPrefix(l)
		u := l.Torus().At(int(seed % uint64(l.Sites())))
		a := AlmostMonoSize(l, pre, u, 0.01, 0)
		b := AlmostMonoSize(l, pre, u, 0.2, 0)
		return b >= a && a >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOppositeDistances(b *testing.B) {
	l := grid.Random(256, 0.5, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = OppositeDistances(l)
	}
}

func BenchmarkClusters(b *testing.B) {
	l := grid.Random(256, 0.5, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Clusters(l)
	}
}
