package stats

import (
	"math"
	"testing"
	"testing/quick"

	"gridseg/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasic(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if !almostEqual(s.Variance, 2.5, 1e-12) {
		t.Fatalf("variance = %v, want 2.5", s.Variance)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrInsufficientData {
		t.Fatalf("want ErrInsufficientData, got %v", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Variance != 0 || s.Std != 0 || s.Mean != 7 {
		t.Fatalf("single-sample summary %+v", s)
	}
}

func TestMeanEmptyIsNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) must be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be modified.
	if xs[0] != 4 {
		t.Fatal("Quantile modified its input")
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{10, 12, 8, 11, 9}
	mean, hw, err := MeanCI(xs, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mean, 10, 1e-12) {
		t.Fatalf("mean = %v", mean)
	}
	if hw <= 0 || hw > 3 {
		t.Fatalf("implausible half-width %v", hw)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	fit, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 1, 1e-12) {
		t.Fatalf("fit = %+v", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	src := rng.New(1)
	var x, y []float64
	for i := 0; i < 200; i++ {
		xi := float64(i) / 10
		x = append(x, xi)
		y = append(y, 3+0.5*xi+0.1*src.NormFloat64())
	}
	fit, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 0.5, 0.02) {
		t.Fatalf("slope = %v, want ~0.5", fit.Slope)
	}
	if fit.SlopeSE <= 0 || fit.SlopeSE > 0.01 {
		t.Fatalf("slope SE = %v", fit.SlopeSE)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("want error for single point")
	}
	if _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("want error for constant x")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("want error for length mismatch")
	}
}

func TestExpDecayRateRecoversRate(t *testing.T) {
	src := rng.New(3)
	const rate = 0.5
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = src.ExpRate(rate)
	}
	got, _, err := ExpDecayRate(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, rate, 0.05) {
		t.Fatalf("decay rate = %v, want ~%v", got, rate)
	}
}

func TestExpDecayRateInsufficient(t *testing.T) {
	if _, _, err := ExpDecayRate([]float64{1, 2}); err != ErrInsufficientData {
		t.Fatalf("want ErrInsufficientData, got %v", err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 || h.Total != 7 {
		t.Fatalf("histogram bookkeeping %+v", h)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bin 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Fatalf("bin 1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Fatalf("bin 4 = %d, want 1", h.Counts[4])
	}
	if !almostEqual(h.Fraction(0), 2.0/7, 1e-12) {
		t.Fatalf("Fraction(0) = %v", h.Fraction(0))
	}
}

func TestNewHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 0, 5); err == nil {
		t.Fatal("want error for hi <= lo")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("want error for zero bins")
	}
}

func TestBootstrapCICoversMean(t *testing.T) {
	src := rng.New(5)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 10 + src.NormFloat64()
	}
	lo, hi, err := BootstrapCI(xs, Mean, 300, 0.95, src.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Fatalf("degenerate CI [%v, %v]", lo, hi)
	}
	if lo > 10 || hi < 10 {
		t.Fatalf("CI [%v, %v] does not cover the true mean 10", lo, hi)
	}
	if hi-lo > 0.5 {
		t.Fatalf("CI [%v, %v] implausibly wide", lo, hi)
	}
}

func TestBootstrapErrors(t *testing.T) {
	src := rng.New(1)
	if _, _, err := BootstrapCI(nil, Mean, 10, 0.9, src); err != ErrInsufficientData {
		t.Fatalf("want ErrInsufficientData, got %v", err)
	}
	if _, _, err := BootstrapCI([]float64{1}, Mean, 1, 0.9, src); err == nil {
		t.Fatal("want error for too few resamples")
	}
	if _, _, err := BootstrapCI([]float64{1}, Mean, 10, 1.5, src); err == nil {
		t.Fatal("want error for invalid level")
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Abs(math.Mod(q1, 1))
		b := math.Abs(math.Mod(q2, 1))
		if a > b {
			a, b = b, a
		}
		qa := Quantile(xs, a)
		qb := Quantile(xs, b)
		s, _ := Summarize(xs)
		return qa <= qb && qa >= s.Min && qb <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: linear fit on exact lines recovers slope and intercept.
func TestQuickLinearFitExactLines(t *testing.T) {
	f := func(a8, b8 int8) bool {
		a := float64(a8)
		b := float64(b8)
		x := []float64{-2, -1, 0, 1, 2, 5}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = a + b*x[i]
		}
		fit, err := LinearFit(x, y)
		if err != nil {
			return false
		}
		return almostEqual(fit.Slope, b, 1e-9) && almostEqual(fit.Intercept, a, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKolmogorovSmirnovSameDistribution(t *testing.T) {
	src := rng.New(5)
	xs := make([]float64, 400)
	ys := make([]float64, 400)
	for i := range xs {
		xs[i] = src.NormFloat64()
		ys[i] = src.NormFloat64()
	}
	r, err := KolmogorovSmirnov(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r.P < 0.01 {
		t.Fatalf("same-distribution samples rejected: D=%v P=%v", r.D, r.P)
	}
}

func TestKolmogorovSmirnovShiftedDistribution(t *testing.T) {
	src := rng.New(6)
	xs := make([]float64, 400)
	ys := make([]float64, 400)
	for i := range xs {
		xs[i] = src.NormFloat64()
		ys[i] = src.NormFloat64() + 1
	}
	r, err := KolmogorovSmirnov(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r.P > 1e-6 {
		t.Fatalf("unit-shifted samples not rejected: D=%v P=%v", r.D, r.P)
	}
	if r.D < 0.2 {
		t.Fatalf("unit shift of a standard normal should give D well above 0.2, got %v", r.D)
	}
}

func TestKolmogorovSmirnovEdgeCases(t *testing.T) {
	if _, err := KolmogorovSmirnov([]float64{1, 2, 3}, []float64{1, 2, 3, 4}); err == nil {
		t.Fatal("want ErrInsufficientData for tiny samples")
	}
	same := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	r, err := KolmogorovSmirnov(same, same)
	if err != nil {
		t.Fatal(err)
	}
	if r.D != 0 || r.P < 0.999 {
		t.Fatalf("identical samples: D=%v P=%v, want D=0 P~1", r.D, r.P)
	}
}
