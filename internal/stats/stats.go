// Package stats provides the small statistical toolkit needed by the
// experiment harness: descriptive summaries, confidence intervals,
// histograms, least-squares fits (used to estimate the exponential growth
// rates of Theorems 1 and 2 from Monte Carlo data), and bootstrap
// confidence intervals for non-Gaussian quantities such as E[M].
package stats

import (
	"errors"
	"math"
	"sort"

	"gridseg/internal/rng"
)

// ErrInsufficientData is returned when an estimator requires more samples
// than were supplied.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Summary holds the standard descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1 denominator)
	Std      float64
	Min      float64
	Max      float64
	Median   float64
}

// Summarize computes a Summary of xs. It returns ErrInsufficientData for
// an empty sample; Variance and Std are zero for a single observation.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrInsufficientData
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(s.N-1)
		s.Std = math.Sqrt(s.Variance)
	}
	s.Median = Quantile(xs, 0.5)
	return s, nil
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It does not modify xs.
// It returns NaN for an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanCI returns the sample mean together with a normal-approximation
// confidence interval half-width at the given z value (1.96 for 95%).
func MeanCI(xs []float64, z float64) (mean, halfWidth float64, err error) {
	s, err := Summarize(xs)
	if err != nil {
		return 0, 0, err
	}
	if s.N < 2 {
		return s.Mean, math.Inf(1), nil
	}
	return s.Mean, z * s.Std / math.Sqrt(float64(s.N)), nil
}

// Fit is the result of an ordinary least squares line fit y ~ a + b*x.
type Fit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
	SlopeSE   float64 // standard error of the slope
}

// LinearFit fits y = a + b*x by least squares. It requires at least two
// points with distinct x values.
func LinearFit(x, y []float64) (Fit, error) {
	if len(x) != len(y) {
		return Fit{}, errors.New("stats: x and y length mismatch")
	}
	n := len(x)
	if n < 2 {
		return Fit{}, ErrInsufficientData
	}
	mx := Mean(x)
	my := Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, errors.New("stats: degenerate fit, all x equal")
	}
	b := sxy / sxx
	a := my - b*mx
	var ssRes float64
	for i := range x {
		r := y[i] - (a + b*x[i])
		ssRes += r * r
	}
	fit := Fit{Intercept: a, Slope: b}
	if syy > 0 {
		fit.R2 = 1 - ssRes/syy
	} else {
		fit.R2 = 1 // y constant and perfectly fit
	}
	if n > 2 {
		fit.SlopeSE = math.Sqrt(ssRes / float64(n-2) / sxx)
	}
	return fit, nil
}

// ExpDecayRate fits P(X >= k) ~ exp(-k/xi) from the sample xs of
// non-negative values and returns the decay rate 1/xi estimated by
// regressing log survival against k on the observed support. This is the
// estimator used to exhibit the exponential tail of subcritical cluster
// radii (Grimmett, Theorem 5 shape). Ties and the final point (survival 0)
// are excluded.
func ExpDecayRate(xs []float64) (rate float64, fit Fit, err error) {
	if len(xs) < 4 {
		return 0, Fit{}, ErrInsufficientData
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var ks, logs []float64
	for i, v := range sorted {
		surv := (n - float64(i)) / n
		if surv <= 0 {
			break
		}
		if i > 0 && sorted[i-1] == v {
			continue
		}
		if surv < 1 { // skip the trivial first point at survival 1
			ks = append(ks, v)
			logs = append(logs, math.Log(surv))
		}
	}
	if len(ks) < 2 {
		return 0, Fit{}, ErrInsufficientData
	}
	fit, err = LinearFit(ks, logs)
	if err != nil {
		return 0, Fit{}, err
	}
	return -fit.Slope, fit, nil
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	BinWidth float64
	Counts   []int
	Under    int // observations < Lo
	Over     int // observations >= Hi
	Total    int
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 || hi <= lo {
		return nil, errors.New("stats: invalid histogram bounds")
	}
	return &Histogram{
		Lo:       lo,
		Hi:       hi,
		BinWidth: (hi - lo) / float64(bins),
		Counts:   make([]int, bins),
	}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.Total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.BinWidth)
		if i >= len(h.Counts) { // guard against float rounding at Hi
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// BootstrapCI returns a percentile bootstrap confidence interval
// [lo, hi] for the statistic computed by stat on resamples of xs.
// level is the coverage, e.g. 0.95. The resampling is deterministic for
// a fixed src.
func BootstrapCI(xs []float64, stat func([]float64) float64, resamples int, level float64, src *rng.Source) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrInsufficientData
	}
	if resamples < 2 || level <= 0 || level >= 1 {
		return 0, 0, errors.New("stats: invalid bootstrap parameters")
	}
	vals := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[src.Intn(len(xs))]
		}
		vals[r] = stat(buf)
	}
	alpha := (1 - level) / 2
	return Quantile(vals, alpha), Quantile(vals, 1-alpha), nil
}

// Log2 returns log base 2 of x; convenience for exponent fits expressed in
// bits as in the paper's 2^{aN} bounds.
func Log2(x float64) float64 { return math.Log2(x) }

// KSResult holds the outcome of a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	// D is the KS statistic: the supremum distance between the two
	// empirical distribution functions.
	D float64
	// P is the asymptotic two-sided p-value of D (small P: the samples
	// are unlikely to come from the same distribution).
	P float64
}

// KolmogorovSmirnov runs the two-sample Kolmogorov–Smirnov test on xs
// and ys. The p-value uses the standard asymptotic Q_KS series with the
// Stephens small-sample correction (Numerical Recipes §14.3); both
// samples need at least 4 observations for the asymptotics to be
// meaningful. The inputs are not modified.
func KolmogorovSmirnov(xs, ys []float64) (KSResult, error) {
	if len(xs) < 4 || len(ys) < 4 {
		return KSResult{}, ErrInsufficientData
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	na, nb := float64(len(a)), float64(len(b))
	var d float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		va, vb := a[i], b[j]
		if va <= vb {
			i++
		}
		if vb <= va {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	ne := math.Sqrt(na * nb / (na + nb))
	return KSResult{D: d, P: ksProb((ne + 0.12 + 0.11/ne) * d)}, nil
}

// ksProb evaluates the asymptotic KS tail probability
// Q_KS(lambda) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
func ksProb(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	a2 := -2 * lambda * lambda
	sum, fac, prev := 0.0, 2.0, 0.0
	for k := 1; k <= 100; k++ {
		term := fac * math.Exp(a2*float64(k)*float64(k))
		sum += term
		if math.Abs(term) <= 1e-12*prev || math.Abs(term) <= 1e-16*sum {
			if sum < 0 {
				return 0
			}
			if sum > 1 {
				return 1
			}
			return sum
		}
		fac = -fac
		prev = math.Abs(term)
	}
	return 1 // failed to converge: lambda tiny, distributions indistinguishable
}
