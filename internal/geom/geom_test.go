package geom

import (
	"testing"
	"testing/quick"
)

func TestWrap(t *testing.T) {
	tor := NewTorus(10)
	cases := []struct{ in, want int }{
		{0, 0}, {9, 9}, {10, 0}, {11, 1}, {-1, 9}, {-10, 0}, {-11, 9}, {25, 5},
	}
	for _, c := range cases {
		if got := tor.Wrap(c.in); got != c.want {
			t.Errorf("Wrap(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestIndexAtRoundTrip(t *testing.T) {
	tor := NewTorus(7)
	for i := 0; i < tor.Sites(); i++ {
		if got := tor.Index(tor.At(i)); got != i {
			t.Fatalf("Index(At(%d)) = %d", i, got)
		}
	}
}

func TestDelta(t *testing.T) {
	tor := NewTorus(10)
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {3, 1, 2}, {1, 3, -2}, {9, 0, -1}, {0, 9, 1}, {0, 5, 5}, {5, 0, 5},
	}
	for _, c := range cases {
		if got := tor.Delta(c.a, c.b); got != c.want {
			t.Errorf("Delta(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestChebWrapAround(t *testing.T) {
	tor := NewTorus(10)
	a := Point{X: 0, Y: 0}
	b := Point{X: 9, Y: 9}
	if got := tor.Cheb(a, b); got != 1 {
		t.Fatalf("Cheb corner wrap = %d, want 1", got)
	}
	c := Point{X: 5, Y: 0}
	if got := tor.Cheb(a, c); got != 5 {
		t.Fatalf("Cheb(0,0 - 5,0) = %d, want 5", got)
	}
}

func TestL1WrapAround(t *testing.T) {
	tor := NewTorus(10)
	if got := tor.L1(Point{0, 0}, Point{9, 9}); got != 2 {
		t.Fatalf("L1 corner wrap = %d, want 2", got)
	}
	if got := tor.L1(Point{2, 3}, Point{4, 7}); got != 6 {
		t.Fatalf("L1 = %d, want 6", got)
	}
}

func TestEuclid(t *testing.T) {
	tor := NewTorus(100)
	if got := tor.Euclid(Point{0, 0}, Point{3, 4}); got != 5 {
		t.Fatalf("Euclid 3-4-5 = %v", got)
	}
	if got := tor.Euclid(Point{0, 0}, Point{97, 96}); got != 5 {
		t.Fatalf("Euclid wrapped 3-4-5 = %v", got)
	}
}

// Metric axioms, checked for all three metrics with random points.
func TestQuickMetricAxioms(t *testing.T) {
	tor := NewTorus(31)
	norm := func(p Point) Point { return tor.WrapPoint(p) }
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := norm(Point{int(ax), int(ay)})
		b := norm(Point{int(bx), int(by)})
		c := norm(Point{int(cx), int(cy)})
		metrics := []func(Point, Point) int{tor.Cheb, tor.L1}
		for _, d := range metrics {
			if d(a, b) != d(b, a) {
				return false // symmetry
			}
			if (d(a, b) == 0) != (a == b) {
				return false // identity
			}
			if d(a, c) > d(a, b)+d(b, c) {
				return false // triangle inequality
			}
		}
		if tor.Euclid(a, b) != tor.Euclid(b, a) {
			return false
		}
		// Euclidean triangle inequality can be violated only by
		// floating error; allow a tiny epsilon.
		if tor.Euclid(a, c) > tor.Euclid(a, b)+tor.Euclid(b, c)+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSquareCount(t *testing.T) {
	tor := NewTorus(21)
	for radius := 0; radius <= 5; radius++ {
		count := 0
		seen := map[Point]bool{}
		tor.Square(Point{10, 10}, radius, func(p Point) {
			count++
			seen[p] = true
		})
		want := SquareSize(radius)
		if count != want || len(seen) != want {
			t.Fatalf("Square radius %d visited %d (%d unique), want %d", radius, count, len(seen), want)
		}
	}
}

func TestSquareMembership(t *testing.T) {
	tor := NewTorus(15)
	center := Point{1, 1} // near the corner, so wrap matters
	const radius = 3
	inSquare := map[Point]bool{}
	tor.Square(center, radius, func(p Point) { inSquare[p] = true })
	for i := 0; i < tor.Sites(); i++ {
		p := tor.At(i)
		want := tor.Cheb(center, p) <= radius
		if inSquare[p] != want {
			t.Fatalf("site %v: in square %v, want %v", p, inSquare[p], want)
		}
	}
}

func TestSquarePanicsWhenTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrapping square")
		}
	}()
	tor := NewTorus(5)
	tor.Square(Point{0, 0}, 3, func(Point) {})
}

func TestSquarePerimeter(t *testing.T) {
	tor := NewTorus(21)
	center := Point{10, 10}
	for radius := 0; radius <= 4; radius++ {
		seen := map[Point]bool{}
		tor.SquarePerimeter(center, radius, func(p Point) {
			if tor.Cheb(center, p) != radius {
				t.Fatalf("perimeter point %v at distance %d, want %d", p, tor.Cheb(center, p), radius)
			}
			if seen[p] {
				t.Fatalf("perimeter visited %v twice", p)
			}
			seen[p] = true
		})
		want := 8 * radius
		if radius == 0 {
			want = 1
		}
		if len(seen) != want {
			t.Fatalf("perimeter radius %d has %d sites, want %d", radius, len(seen), want)
		}
	}
}

func TestAnnulusMembership(t *testing.T) {
	tor := NewTorus(41)
	center := Point{20, 20}
	inner, outer := 4.0, 9.0
	seen := map[Point]bool{}
	tor.Annulus(center, inner, outer, func(p Point) { seen[p] = true })
	for i := 0; i < tor.Sites(); i++ {
		p := tor.At(i)
		d := tor.Euclid(center, p)
		want := d >= inner && d <= outer
		if seen[p] != want {
			t.Fatalf("annulus membership of %v (d=%v): got %v want %v", p, d, seen[p], want)
		}
	}
}

func TestDiscIncludesCenter(t *testing.T) {
	tor := NewTorus(21)
	found := false
	tor.Disc(Point{5, 5}, 3, func(p Point) {
		if p == (Point{5, 5}) {
			found = true
		}
	})
	if !found {
		t.Fatal("disc must include its center")
	}
}

func TestNeighbors4And8(t *testing.T) {
	tor := NewTorus(9)
	p := Point{0, 0}
	n4 := map[Point]bool{}
	tor.Neighbors4(p, func(q Point) { n4[q] = true })
	if len(n4) != 4 {
		t.Fatalf("Neighbors4 visited %d sites", len(n4))
	}
	for q := range n4 {
		if tor.L1(p, q) != 1 {
			t.Fatalf("4-neighbor %v at l1 distance %d", q, tor.L1(p, q))
		}
	}
	n8 := map[Point]bool{}
	tor.Neighbors8(p, func(q Point) { n8[q] = true })
	if len(n8) != 8 {
		t.Fatalf("Neighbors8 visited %d sites", len(n8))
	}
	for q := range n8 {
		if tor.Cheb(p, q) != 1 {
			t.Fatalf("8-neighbor %v at Chebyshev distance %d", q, tor.Cheb(p, q))
		}
	}
}

func TestSquareSize(t *testing.T) {
	cases := []struct{ r, want int }{{0, 1}, {1, 9}, {2, 25}, {10, 441}}
	for _, c := range cases {
		if got := SquareSize(c.r); got != c.want {
			t.Errorf("SquareSize(%d) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestNewTorusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTorus(0) must panic")
		}
	}()
	NewTorus(0)
}
