// Package geom provides coordinates and metrics on the n x n torus
// T = [0,n) x [0,n) used throughout the paper. All coordinate arithmetic
// is performed modulo n, i.e. (x, y) = (x+n, y) = (x, y+n).
//
// The three metrics that appear in the paper are provided: Chebyshev
// (l-infinity, which defines neighborhoods), l1 (which defines cluster
// radii and the chemical-distance comparisons), and Euclidean (which
// defines the annular firewall of Lemma 9).
package geom

import "math"

// Point is a lattice site. Coordinates are canonical, i.e. in [0, n)
// whenever the Point was produced by a Torus method.
type Point struct {
	X, Y int
}

// Torus is an n x n grid with wrap-around arithmetic. The zero value is
// not usable; construct with NewTorus.
type Torus struct {
	n int
}

// NewTorus returns a torus of side n. It panics if n <= 0.
func NewTorus(n int) Torus {
	if n <= 0 {
		panic("geom: torus side must be positive")
	}
	return Torus{n: n}
}

// N returns the side length of the torus.
func (t Torus) N() int { return t.n }

// Sites returns the total number of lattice sites, n^2.
func (t Torus) Sites() int { return t.n * t.n }

// Wrap maps an arbitrary integer coordinate into [0, n).
func (t Torus) Wrap(a int) int {
	a %= t.n
	if a < 0 {
		a += t.n
	}
	return a
}

// WrapPoint maps a point with arbitrary integer coordinates onto the torus.
func (t Torus) WrapPoint(p Point) Point {
	return Point{X: t.Wrap(p.X), Y: t.Wrap(p.Y)}
}

// Index converts a canonical point into a row-major index in [0, n^2).
func (t Torus) Index(p Point) int { return p.Y*t.n + p.X }

// At converts a row-major index back into a canonical point.
func (t Torus) At(i int) Point { return Point{X: i % t.n, Y: i / t.n} }

// Delta returns the signed wrapped difference a-b mapped into
// (-n/2, n/2], the representative of minimal absolute value.
func (t Torus) Delta(a, b int) int {
	d := t.Wrap(a - b)
	if d > t.n/2 {
		d -= t.n
	}
	return d
}

// Cheb returns the Chebyshev (l-infinity) distance between two sites,
// the metric that defines neighborhoods in the paper.
func (t Torus) Cheb(a, b Point) int {
	dx := abs(t.Delta(a.X, b.X))
	dy := abs(t.Delta(a.Y, b.Y))
	if dx > dy {
		return dx
	}
	return dy
}

// L1 returns the l1 (Manhattan) distance between two sites.
func (t Torus) L1(a, b Point) int {
	return abs(t.Delta(a.X, b.X)) + abs(t.Delta(a.Y, b.Y))
}

// Euclid returns the Euclidean distance between two sites, using the
// minimal wrapped displacement in each coordinate.
func (t Torus) Euclid(a, b Point) float64 {
	dx := float64(t.Delta(a.X, b.X))
	dy := float64(t.Delta(a.Y, b.Y))
	return math.Sqrt(dx*dx + dy*dy)
}

// Add translates p by (dx, dy) with wrap-around.
func (t Torus) Add(p Point, dx, dy int) Point {
	return Point{X: t.Wrap(p.X + dx), Y: t.Wrap(p.Y + dy)}
}

// Square visits every site with Chebyshev distance at most radius from
// center; this is the paper's "neighborhood of radius rho" N_rho. The
// center itself is included. Visiting order is row-major over offsets.
// It panics if radius is negative or if the square would wrap onto
// itself (2*radius+1 > n), which would double-count sites.
func (t Torus) Square(center Point, radius int, visit func(Point)) {
	if radius < 0 {
		panic("geom: negative radius")
	}
	if 2*radius+1 > t.n {
		panic("geom: neighborhood larger than torus")
	}
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			visit(t.Add(center, dx, dy))
		}
	}
}

// SquarePerimeter visits the sites at Chebyshev distance exactly radius
// from the center (the boundary ring of N_radius). For radius 0 it visits
// only the center.
func (t Torus) SquarePerimeter(center Point, radius int, visit func(Point)) {
	if radius < 0 {
		panic("geom: negative radius")
	}
	if radius == 0 {
		visit(center)
		return
	}
	if 2*radius+1 > t.n {
		panic("geom: ring larger than torus")
	}
	for dx := -radius; dx <= radius; dx++ {
		visit(t.Add(center, dx, -radius))
		visit(t.Add(center, dx, radius))
	}
	for dy := -radius + 1; dy <= radius-1; dy++ {
		visit(t.Add(center, -radius, dy))
		visit(t.Add(center, radius, dy))
	}
}

// Annulus visits every site y with inner <= ||center-y||_2 <= outer,
// the shape of the paper's firewall A_r(u) (with inner = r - sqrt(2) w,
// outer = r). It panics if the annulus would wrap onto itself.
func (t Torus) Annulus(center Point, inner, outer float64, visit func(Point)) {
	if outer < 0 || inner > outer {
		panic("geom: invalid annulus radii")
	}
	r := int(math.Ceil(outer))
	if 2*r+1 > t.n {
		panic("geom: annulus larger than torus")
	}
	in2 := inner * inner
	out2 := outer * outer
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			d2 := float64(dx*dx + dy*dy)
			if d2 >= in2 && d2 <= out2 {
				visit(t.Add(center, dx, dy))
			}
		}
	}
}

// Disc visits every site within Euclidean distance radius of the center.
func (t Torus) Disc(center Point, radius float64, visit func(Point)) {
	t.Annulus(center, 0, radius, visit)
}

// SquareSize returns the number of agents in a neighborhood of the given
// radius, (2*radius+1)^2. This is the paper's N when radius equals the
// horizon w.
func SquareSize(radius int) int {
	side := 2*radius + 1
	return side * side
}

// Neighbors4 visits the four horizontally/vertically adjacent sites,
// the adjacency used for m-paths and site-percolation clusters.
func (t Torus) Neighbors4(p Point, visit func(Point)) {
	visit(t.Add(p, 1, 0))
	visit(t.Add(p, -1, 0))
	visit(t.Add(p, 0, 1))
	visit(t.Add(p, 0, -1))
}

// Neighbors8 visits the eight surrounding sites (king moves), the
// adjacency dual to 4-adjacency in planar site percolation and the one
// under which Chebyshev balls are graph balls.
func (t Torus) Neighbors8(p Point, visit func(Point)) {
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			visit(t.Add(p, dx, dy))
		}
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
