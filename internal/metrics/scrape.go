package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed sample line from a Prometheus text scrape.
type Sample struct {
	// Name is the sample name as written, including any _bucket/_sum/
	// _count suffix on histogram series.
	Name string
	// Labels holds the label pairs, nil when the sample has none.
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// ParseText parses a Prometheus text-format scrape into samples keyed
// by sample name. It is strict enough to catch malformed output —
// every non-comment, non-blank line must be a well-formed sample — and
// is what segload's probe, obscheck, and the package tests use to
// assert /metrics stays parseable.
func ParseText(r io.Reader) (map[string][]Sample, error) {
	out := map[string][]Sample{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		out[s.Name] = append(out[s.Name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	// Name: up to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:end]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	// Optional label block.
	if strings.HasPrefix(rest, "{") {
		close := strings.Index(rest, "}")
		if close < 0 {
			return s, fmt.Errorf("unterminated label block in %q", line)
		}
		labels, err := parseLabels(rest[1:close])
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		rest = rest[close+1:]
	}
	fields := strings.Fields(rest)
	// A trailing timestamp is legal in the exposition format; we accept
	// and ignore it.
	if len(fields) != 1 && len(fields) != 2 {
		return s, fmt.Errorf("want value after name in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", fields[0], line)
	}
	s.Value = v
	return s, nil
}

func parseValue(tok string) (float64, error) {
	// strconv accepts "+Inf"/"NaN" spellings directly.
	return strconv.ParseFloat(tok, 64)
}

func parseLabels(body string) (map[string]string, error) {
	labels := map[string]string{}
	for body != "" {
		eq := strings.Index(body, "=")
		if eq <= 0 {
			return nil, fmt.Errorf("malformed label pair")
		}
		key := strings.TrimSpace(body[:eq])
		rest := body[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("unquoted label value")
		}
		val, tail, err := unquoteLabel(rest)
		if err != nil {
			return nil, err
		}
		labels[key] = val
		body = strings.TrimPrefix(strings.TrimSpace(tail), ",")
		body = strings.TrimSpace(body)
	}
	return labels, nil
}

// unquoteLabel consumes a leading double-quoted string (with \\, \",
// and \n escapes per the exposition format) and returns the rest.
func unquoteLabel(s string) (val, tail string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("truncated escape")
			}
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func validMetricName(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(name) > 0
}
