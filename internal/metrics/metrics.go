// Package metrics is a minimal, dependency-free instrumentation
// library exposing counters, gauges, and histograms in the Prometheus
// text exposition format.
//
// It exists instead of the official client library because the repo's
// dependency budget is the Go standard library, and because the hot
// paths being instrumented (per-flip, per-store-op) cannot afford the
// allocation or locking profile of a general-purpose library. Every
// instrument's mutating path is a single atomic operation; the only
// locks live on the cold paths (registration and scraping).
//
// Instruments are created against a Registry and written out with
// WritePrometheus or served by Handler. Packages declare their
// instruments as package-level vars against the Default registry, so
// one /metrics endpoint sees everything regardless of which subsystems
// a process wires together.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// collector is anything that can render itself as one Prometheus
// metric family.
type collector interface {
	write(w io.Writer)
}

// Registry holds a set of instruments and renders them in registration
// order, which keeps scrapes stable and diffs readable.
type Registry struct {
	mu         sync.Mutex
	names      map[string]bool
	collectors []collector
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

// defaultRegistry backs Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that package-level
// instruments register against.
func Default() *Registry { return defaultRegistry }

// register adds a collector, panicking on a duplicate name: instrument
// names are API, and two instruments silently sharing one would corrupt
// every dashboard built on it.
func (r *Registry) register(name string, c collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic("metrics: duplicate registration of " + name)
	}
	r.names[name] = true
	r.collectors = append(r.collectors, c)
}

// WritePrometheus renders every registered instrument in the
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	cs := make([]collector, len(r.collectors))
	copy(cs, r.collectors)
	r.mu.Unlock()
	for _, c := range cs {
		c.write(w)
	}
}

// Handler returns an http.Handler serving the registry as a Prometheus
// scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip decimal, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Counter is a monotonically increasing uint64. Inc/Add are a single
// atomic add.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// NewCounter creates and registers a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(w io.Writer) {
	writeHeader(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
}

// Gauge is an instantaneous int64 value (queue depths, subscriber
// counts). All mutators are single atomic ops.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// NewGauge creates and registers a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(name, g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer) {
	writeHeader(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %d\n", g.name, g.v.Load())
}

// Histogram counts observations into fixed buckets. Observe is
// lock-free: one atomic add for the bucket, one for the count, and a
// CAS loop on the float64-bits sum. Bucket counts are exported
// cumulatively with an implicit +Inf bucket, per the Prometheus
// histogram convention.
type Histogram struct {
	name, help string
	bounds     []float64 // ascending upper bounds, +Inf implicit
	counts     []atomic.Uint64
	count      atomic.Uint64
	sumBits    atomic.Uint64
}

// DefaultLatencyBuckets spans microseconds to seconds, suiting both
// in-memory store hits and remote HTTP round trips.
var DefaultLatencyBuckets = []float64{
	0.000001, 0.00001, 0.0001, 0.001, 0.01, 0.1, 1, 10,
}

// NewHistogram creates and registers a histogram with the given bucket
// upper bounds (ascending; +Inf is implicit). Nil bounds means
// DefaultLatencyBuckets.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending: " + name)
		}
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.register(name, h)
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) write(w io.Writer) {
	writeHeader(w, h.name, h.help, "histogram")
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.count.Load())
}

// CounterVec is a family of counters split by one label. Children are
// created up front with WithLabel (a lock plus map insert), after which
// each child is a plain Counter — the hot path never touches the map.
type CounterVec struct {
	name, help, label string
	mu                sync.Mutex
	children          map[string]*Counter
	order             []string
}

// NewCounterVec creates and registers a one-label counter family.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{name: name, help: help, label: label, children: map[string]*Counter{}}
	r.register(name, v)
	return v
}

// WithLabel returns the child counter for the given label value,
// creating it on first use. Callers should capture the child once
// rather than calling WithLabel per observation.
func (v *CounterVec) WithLabel(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[value]; ok {
		return c
	}
	c := &Counter{name: v.name}
	v.children[value] = c
	v.order = append(v.order, value)
	return c
}

func (v *CounterVec) write(w io.Writer) {
	writeHeader(w, v.name, v.help, "counter")
	v.mu.Lock()
	order := append([]string(nil), v.order...)
	children := make([]*Counter, len(order))
	for i, val := range order {
		children[i] = v.children[val]
	}
	v.mu.Unlock()
	for i, val := range order {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", v.name, v.label, val, children[i].Value())
	}
}
