package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeText checks the basic exposition format and values.
func TestCounterGaugeText(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "Total ops.")
	g := r.NewGauge("test_depth", "Current depth.")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Dec()

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP test_ops_total Total ops.",
		"# TYPE test_ops_total counter",
		"test_ops_total 5",
		"# TYPE test_depth gauge",
		"test_depth 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 5 || g.Value() != 6 {
		t.Errorf("Value() = %d, %d; want 5, 6", c.Value(), g.Value())
	}
}

// TestHistogram checks cumulative bucket export and sum/count.
func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.01"} 1`,
		`test_latency_seconds_bucket{le="0.1"} 3`,
		`test_latency_seconds_bucket{le="1"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		"test_latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if got, want := h.Sum(), 5.605; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum() = %g, want %g", got, want)
	}
}

// TestHistogramBoundaryInclusive pins the le semantics: a value equal
// to an upper bound lands in that bucket.
func TestHistogramBoundaryInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_bounds", "x", []float64{1, 2})
	h.Observe(1)
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `test_bounds_bucket{le="1"} 1`) {
		t.Errorf("value equal to bound should be counted in that bucket:\n%s", b.String())
	}
}

// TestCounterVec checks labeled children and stable ordering.
func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("test_results_total", "Results.", "result")
	hit, miss := v.WithLabel("hit"), v.WithLabel("miss")
	hit.Add(3)
	miss.Inc()
	if v.WithLabel("hit") != hit {
		t.Fatal("WithLabel should return the same child for the same value")
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `test_results_total{result="hit"} 3`) ||
		!strings.Contains(out, `test_results_total{result="miss"} 1`) {
		t.Errorf("missing labeled samples:\n%s", out)
	}
}

// TestDuplicateRegistrationPanics pins the name-collision guard.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	r.NewCounter("dup", "x")
}

// TestConcurrentObserve hammers every instrument type from many
// goroutines; correctness of the totals proves the atomic paths, and
// -race proves the absence of data races.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("cc_total", "x")
	g := r.NewGauge("cc_gauge", "x")
	h := r.NewHistogram("cc_hist", "x", []float64{1})
	v := r.NewCounterVec("cc_vec", "x", "k")
	a, bch := v.WithLabel("a"), v.WithLabel("b")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Inc()
				h.Observe(0.5)
				a.Inc()
				bch.Inc()
			}
		}()
	}
	// Scrape concurrently with the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			r.WritePrometheus(&b)
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if got, want := h.Sum(), 0.5*workers*per; math.Abs(got-want) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", got, want)
	}
}

// TestHandlerAndParseRoundTrip serves a registry over HTTP and parses
// the scrape with ParseText — the same check obscheck runs against a
// live segd.
func TestHandlerAndParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("rt_total", "x").Add(2)
	h := r.NewHistogram("rt_seconds", "x", nil)
	h.Observe(0.002)
	r.NewCounterVec("rt_vec", "x", "result").WithLabel("hit").Inc()

	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	samples, err := ParseText(resp.Body)
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if len(samples["rt_total"]) != 1 || samples["rt_total"][0].Value != 2 {
		t.Errorf("rt_total samples = %+v", samples["rt_total"])
	}
	if n := len(samples["rt_seconds_bucket"]); n != len(DefaultLatencyBuckets)+1 {
		t.Errorf("rt_seconds_bucket: %d samples, want %d", n, len(DefaultLatencyBuckets)+1)
	}
	vec := samples["rt_vec"]
	if len(vec) != 1 || vec[0].Labels["result"] != "hit" || vec[0].Value != 1 {
		t.Errorf("rt_vec samples = %+v", vec)
	}
}

// TestParseTextRejectsGarbage pins the strictness obscheck relies on.
func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"1leading_digit 3\n",
		"unterminated{le=\"1 3\n",
		"name{le=\"1\"} notanumber\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) should fail", bad)
		}
	}
	// Trailing timestamps are legal.
	if _, err := ParseText(strings.NewReader("ok_total 3 1700000000\n")); err != nil {
		t.Errorf("timestamped sample should parse: %v", err)
	}
}
