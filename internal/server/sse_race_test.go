package server

import (
	"bufio"
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"

	"gridseg"
)

// TestJobBroadcastContention hammers one job's subscribe / broadcast /
// unsubscribe surface from many goroutines at once: a producer streams
// per-cell progress and then the terminal event while subscriber
// goroutines churn — some drain until the channel closes, some detach
// mid-stream and resubscribe. The assertions are structural (every
// drain path terminates); the real check is the race detector over the
// shared event log and subscriber map.
func TestJobBroadcastContention(t *testing.T) {
	j := newJob("contention", "n=16 w=1 tau=0.4", 1, 64)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 64; i++ {
			j.progress(gridseg.CellProgress{
				Done: i + 1, Total: 64,
				Dynamic: "glauber", N: 16, W: 1, Tau: 0.4, P: 0.5, Rep: i,
			})
		}
		j.fail(errors.New("synthetic terminal event"))
	}()

	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				_, live := j.subscribe()
				if live == nil {
					return // run already terminal
				}
				drained := 0
				for range live {
					drained++
					if g%2 == 0 && drained >= 3 {
						// Detach mid-stream, then resubscribe: the churn
						// the SSE handler generates when clients
						// disconnect and reconnect during a run.
						j.unsubscribe(live)
						break
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if st := j.status(); st.State != StateFailed {
		t.Fatalf("job state = %s, want %s", st.State, StateFailed)
	}
}

// TestSSEFanOutContention drives the full HTTP SSE path under
// contention: one running grid, a dozen concurrent /events subscribers,
// a third of which disconnect mid-stream (client-side context cancel)
// while the rest must each observe a terminal event. Run with -race
// (make race-stress repeats it) to check the fan-out under varied
// interleavings of broadcast, replay, and disconnect.
func TestSSEFanOutContention(t *testing.T) {
	st := gridseg.NewMemoryStore()
	_, hs := newTestServer(t, st)
	status, code := submit(t, hs.URL, "n=24 w=1,2 tau=0.4,0.42,0.45 reps=2", 11)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}

	const subscribers = 12
	terminals := make([]bool, subscribers)
	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, "GET", hs.URL+"/grids/"+status.ID+"/events", nil)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			scanner := bufio.NewScanner(resp.Body)
			lines := 0
			for scanner.Scan() {
				line := scanner.Text()
				lines++
				if line == "event: done" || line == "event: error" {
					terminals[i] = true
					return
				}
				if i%3 == 0 && lines > 2 {
					return // disconnect mid-stream; cancel tears the request down
				}
			}
		}(i)
	}
	wg.Wait()

	if final := waitDone(t, hs.URL, status.ID); final.State != StateDone {
		t.Fatalf("final state = %+v", final)
	}
	for i, saw := range terminals {
		if i%3 != 0 && !saw {
			t.Errorf("persistent subscriber %d ended without a terminal event", i)
		}
	}
}
