package server

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gridseg"
	"gridseg/internal/grid"
	"gridseg/internal/metrics"
)

// newLiveTestServer starts a Server with a tight live-frame interval so
// even small test grids produce several frames per cell.
func newLiveTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Options{Store: gridseg.NewMemoryStore(), Workers: 2, LiveEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

// readLive consumes a /live SSE stream, returning the decoded frame
// events and the terminal end payload. It fails the test if the stream
// does not end within the deadline.
func readLive(t *testing.T, url string) ([]liveEvent, string) {
	t.Helper()
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("live stream content type = %q", ct)
	}
	var frames []liveEvent
	var event string
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "frame":
				var ev liveEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("frame payload does not parse: %v", err)
				}
				frames = append(frames, ev)
			case "end":
				var end struct {
					State string `json:"state"`
				}
				if err := json.Unmarshal([]byte(data), &end); err != nil {
					t.Fatalf("end payload does not parse: %v", err)
				}
				return frames, end.State
			}
		}
	}
	t.Fatalf("live stream ended without an end event (%d frames, err=%v)", len(frames), scanner.Err())
	return nil, ""
}

// TestLiveStreamAndMetrics is the live-observability acceptance path:
// submit a grid, consume its /live stream, check the frames decode to
// real lattices with consistent observables, then scrape /metrics and
// verify the exposition parses and carries the serving metric names.
func TestLiveStreamAndMetrics(t *testing.T) {
	_, hs := newLiveTestServer(t)
	status, code := submit(t, hs.URL, "n=24 w=1 tau=0.4,0.45 reps=2", 7)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}

	frames, endState := readLive(t, hs.URL+"/grids/"+status.ID+"/live")
	if endState != StateDone {
		t.Fatalf("end state = %q", endState)
	}
	if len(frames) == 0 {
		t.Fatal("no live frames received")
	}
	finals := 0
	for _, f := range frames {
		if f.Final {
			finals++
		}
		raw, err := base64.StdEncoding.DecodeString(f.Frame)
		if err != nil {
			t.Fatalf("frame is not base64: %v", err)
		}
		lat, err := grid.UnmarshalBinary(raw)
		if err != nil {
			t.Fatalf("frame does not decode: %v", err)
		}
		if lat.N() != f.N || f.N != 24 {
			t.Fatalf("frame side = %d, event n = %d", lat.N(), f.N)
		}
		if f.HappyFrac < 0 || f.HappyFrac > 1 {
			t.Fatalf("happy_frac = %v out of range", f.HappyFrac)
		}
	}
	if finals == 0 {
		t.Fatal("no final frame observed")
	}

	// A post-completion subscriber still gets a picture: the retained
	// last frame, then the end event.
	lateFrames, lateState := readLive(t, hs.URL+"/grids/"+status.ID+"/live")
	if lateState != StateDone || len(lateFrames) != 1 || !lateFrames[0].Final {
		t.Fatalf("late subscriber got %d frames (state %q), want the 1 retained final frame", len(lateFrames), lateState)
	}

	body, code := fetch(t, hs.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status = %d", code)
	}
	families, err := metrics.ParseText(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("metrics exposition does not parse: %v", err)
	}
	for _, name := range []string{
		"segd_queue_depth", "segd_sse_subscribers", "segd_live_subscribers",
		"segd_live_frames_total", "segd_runs_total",
		"gridseg_flips_total", "gridseg_cells_computed_total",
		"gridseg_store_gets_total", "gridseg_store_put_seconds_count",
	} {
		if len(families[name]) == 0 {
			t.Errorf("metrics exposition is missing %s", name)
		}
	}
}

// TestLiveStalledSubscriberDoesNotStallRun pins the backpressure
// contract end to end: one /live subscriber connects and never reads a
// byte while a healthy subscriber and the run itself proceed. The
// stalled consumer's frames pile into its bounded queue and the
// overflow is dropped; the run must still finish promptly and the
// healthy subscriber must still see frames and the end event.
// race-stress runs this under -race, which also checks the hub's
// publish/subscribe surfaces under the contention.
func TestLiveStalledSubscriberDoesNotStallRun(t *testing.T) {
	_, hs := newLiveTestServer(t)
	status, code := submit(t, hs.URL, "n=32 w=2 tau=0.42 reps=4", 9)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}

	// The stalled subscriber: a raw TCP connection that sends the
	// request and then never reads, so the handler's writes eventually
	// block in the kernel while its hub queue overflows and drops.
	conn, err := net.Dial("tcp", hs.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /grids/%s/live HTTP/1.1\r\nHost: stalled\r\nAccept: text/event-stream\r\n\r\n", status.ID)

	done := make(chan struct{})
	var frames []liveEvent
	var endState string
	go func() {
		defer close(done)
		frames, endState = readLive(t, hs.URL+"/grids/"+status.ID+"/live")
	}()

	final := waitDone(t, hs.URL, status.ID)
	if final.State != StateDone {
		t.Fatalf("final state = %+v", final)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("healthy subscriber did not finish after the run completed")
	}
	if endState != StateDone || len(frames) == 0 {
		t.Fatalf("healthy subscriber: %d frames, end state %q", len(frames), endState)
	}
}

// TestLiveHubDropOldest pins the queue semantics directly: publishing
// past a subscriber's capacity never blocks, evicts the oldest pending
// frames, and counts every eviction.
func TestLiveHubDropOldest(t *testing.T) {
	h := newLiveHub()
	if h.watched() {
		t.Fatal("fresh hub reports watchers")
	}
	last, ch := h.subscribe()
	if last != nil {
		t.Fatal("fresh hub replayed a frame")
	}
	if !h.watched() {
		t.Fatal("subscribed hub reports no watchers")
	}

	before := metricLiveFramesDropped.Value()
	const extra = 5
	published := make(chan struct{})
	go func() {
		for i := 0; i < liveQueueCap+extra; i++ {
			h.publish([]byte(fmt.Sprintf("frame-%d", i)))
		}
		close(published)
	}()
	select {
	case <-published:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a full subscriber queue")
	}
	if got := metricLiveFramesDropped.Value() - before; got != extra {
		t.Fatalf("dropped = %d, want %d", got, extra)
	}

	// The queue holds the newest liveQueueCap frames in order.
	for i := 0; i < liveQueueCap; i++ {
		want := fmt.Sprintf("frame-%d", extra+i)
		got := <-ch
		if string(got.data) != want {
			t.Fatalf("frame %d = %q, want %q (oldest must be dropped)", i, got.data, want)
		}
	}

	// Late subscribers get the retained last frame; close ends streams
	// and drops later publishes.
	lastSeen, ch2 := h.subscribe()
	if string(lastSeen) != fmt.Sprintf("frame-%d", liveQueueCap+extra-1) {
		t.Fatalf("retained last frame = %q", lastSeen)
	}
	h.close()
	if _, ok := <-ch2; ok {
		t.Fatal("subscriber channel not closed by hub close")
	}
	if _, ok := <-ch; ok {
		t.Fatal("first subscriber channel not closed by hub close")
	}
	h.publish([]byte("after-close"))
	if h.watched() {
		t.Fatal("closed hub reports watchers")
	}
}
