package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"gridseg"
	"gridseg/internal/batch"
	"gridseg/internal/fabric"
)

// job is one grid run: its identity, its lifecycle state, and the SSE
// event log (full history kept for replay — cells are coarse units, so
// even large grids log modest event counts).
type job struct {
	id    string
	spec  string
	seed  uint64
	cells int

	// recovered carries the journaled done cells of a run re-enqueued
	// by coordinator restart recovery; runCluster absorbs them without
	// recomputation. Nil for ordinary submissions. Written once before
	// the job is enqueued, read only by the dispatcher.
	recovered map[int]fabric.JournalDone

	// live fans the run's trajectory frames out to /live subscribers
	// (see live.go); closed when the run reaches a terminal state.
	live *liveHub

	mu     sync.Mutex
	state  string
	done   int
	errMsg string
	res    *gridseg.GridResult
	cache  gridseg.CacheStats
	events []sseEvent
	subs   map[chan sseEvent]struct{}
}

// sseEvent is one Server-Sent Event: a type label and a JSON payload.
type sseEvent struct {
	Type string
	Data []byte
}

// terminal reports whether the event ends the stream.
func (e sseEvent) terminal() bool { return e.Type == "done" || e.Type == "error" }

func newJob(id, spec string, seed uint64, cells int) *job {
	return &job{
		id: id, spec: spec, seed: seed, cells: cells,
		state: StateQueued,
		live:  newLiveHub(),
		subs:  map[chan sseEvent]struct{}{},
	}
}

// jobStatus is the JSON shape of a run's status.
type jobStatus struct {
	ID    string `json:"id"`
	Spec  string `json:"spec"`
	Seed  uint64 `json:"seed"`
	State string `json:"state"`
	Cells int    `json:"cells"`
	Done  int    `json:"done"`
	Cache struct {
		Hits   int `json:"hits"`
		Misses int `json:"misses"`
	} `json:"cache"`
	Error string `json:"error,omitempty"`
}

func (j *job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{
		ID: j.id, Spec: j.spec, Seed: j.seed,
		State: j.state, Cells: j.cells, Done: j.done,
		Error: j.errMsg,
	}
	st.Cache.Hits = j.cache.Hits
	st.Cache.Misses = j.cache.Misses
	return st
}

func (j *job) result() *gridseg.GridResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.res
}

func (j *job) setState(state string) {
	j.mu.Lock()
	j.state = state
	j.mu.Unlock()
}

// cellEvent is the payload of one per-cell SSE progress event. The
// scenario fields report the cell's topology coordinates; they are
// omitted for default cells (torus, rho=0, global tau) to keep
// default-grid streams in their pre-scenario shape.
type cellEvent struct {
	Done     int     `json:"done"`
	Total    int     `json:"total"`
	Dynamic  string  `json:"dynamic"`
	N        int     `json:"n"`
	W        int     `json:"w"`
	Tau      float64 `json:"tau"`
	P        float64 `json:"p"`
	Boundary string  `json:"boundary,omitempty"`
	Rho      float64 `json:"rho,omitempty"`
	TauDist  string  `json:"taudist,omitempty"`
	Extra    float64 `json:"extra,omitempty"`
	Rep      int     `json:"rep"`
	Cached   bool    `json:"cached"`
	// Worker names the fabric worker that computed the cell in cluster
	// mode; omitted for in-process sweeps and coordinator-served cache
	// hits, so default streams keep their single-process shape.
	Worker string `json:"worker,omitempty"`
}

// progress records one completed cell and broadcasts it.
func (j *job) progress(p gridseg.CellProgress) {
	ev := cellEvent{
		Done: p.Done, Total: p.Total,
		Dynamic: p.Dynamic, N: p.N, W: p.W,
		Tau: p.Tau, P: p.P, Extra: p.Extra, Rep: p.Rep,
		Cached: p.Cached, Worker: p.Worker,
	}
	if !batch.DefaultScenario(p.Boundary, p.Rho, p.TauDist) {
		ev.Boundary, ev.Rho, ev.TauDist = p.Boundary, p.Rho, p.TauDist
	}
	data, _ := json.Marshal(ev)
	j.mu.Lock()
	j.done = p.Done
	if p.Cached {
		j.cache.Hits++
	} else {
		j.cache.Misses++
	}
	j.broadcastLocked(sseEvent{Type: "cell", Data: data})
	j.mu.Unlock()
}

// finish records the completed result and broadcasts the terminal
// done event.
func (j *job) finish(res *gridseg.GridResult) {
	cs := res.Cache()
	data, _ := json.Marshal(map[string]interface{}{
		"cells": res.Len(),
		"cache": map[string]int{"hits": cs.Hits, "misses": cs.Misses},
	})
	j.mu.Lock()
	j.state = StateDone
	j.res = res
	j.cache = cs
	j.done = res.Len()
	j.broadcastLocked(sseEvent{Type: "done", Data: data})
	j.mu.Unlock()
	j.live.close()
	metricRunsDone.Inc()
}

// fail records the error and broadcasts the terminal error event.
func (j *job) fail(err error) {
	data, _ := json.Marshal(map[string]string{"error": err.Error()})
	j.mu.Lock()
	j.state = StateFailed
	j.errMsg = err.Error()
	j.broadcastLocked(sseEvent{Type: "error", Data: data})
	j.mu.Unlock()
	j.live.close()
	metricRunsFailed.Inc()
}

// maxEventLog bounds the replayable event history of a run. Beyond it
// the oldest half is dropped: SSE is a progress channel, and totals
// live in the run status, so late subscribers to a huge grid lose only
// early per-cell lines, never correctness.
const maxEventLog = 8192

// broadcastLocked appends to the event log and fans out to all
// subscribers; j.mu must be held. Sends never block: a subscriber that
// cannot keep up misses intermediate progress events (its replay of
// the log already happened, and the stream ends with a terminal event
// delivered via channel close, so correctness never depends on every
// cell event arriving).
func (j *job) broadcastLocked(e sseEvent) {
	if len(j.events) >= maxEventLog {
		j.events = append(j.events[:0], j.events[maxEventLog/2:]...)
	}
	j.events = append(j.events, e)
	for ch := range j.subs {
		select {
		case ch <- e:
		default:
		}
	}
	if e.terminal() {
		for ch := range j.subs {
			close(ch)
		}
		metricSSESubscribers.Add(-int64(len(j.subs)))
		j.subs = map[chan sseEvent]struct{}{}
	}
}

// subscribe returns the event history so far and, unless the run is
// already terminal, a live channel for subsequent events (closed when
// the run ends).
func (j *job) subscribe() ([]sseEvent, chan sseEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	history := make([]sseEvent, len(j.events))
	copy(history, j.events)
	if j.state == StateDone || j.state == StateFailed {
		return history, nil
	}
	ch := make(chan sseEvent, 256)
	j.subs[ch] = struct{}{}
	metricSSESubscribers.Add(1)
	return history, ch
}

// unsubscribe detaches a live channel (no-op after the run ended and
// closed it).
func (j *job) unsubscribe(ch chan sseEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.subs[ch]; ok {
		delete(j.subs, ch)
		close(ch)
		metricSSESubscribers.Add(-1)
	}
}

// terminalEvent synthesizes the stream-ending event from the job's
// current state, for subscribers whose live channel was closed before
// they saw one.
func (j *job) terminalEvent() (sseEvent, bool) {
	st := j.status()
	switch st.State {
	case StateDone:
		data, _ := json.Marshal(map[string]interface{}{
			"cells": st.Cells,
			"cache": map[string]int{"hits": st.Cache.Hits, "misses": st.Cache.Misses},
		})
		return sseEvent{Type: "done", Data: data}, true
	case StateFailed:
		data, _ := json.Marshal(map[string]string{"error": st.Error})
		return sseEvent{Type: "error", Data: data}, true
	}
	return sseEvent{}, false
}

// handleEvents streams a run's progress as Server-Sent Events: the
// recorded history first (so late subscribers see the whole run), then
// live events until the run ends or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("response writer does not support streaming"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	history, live := j.subscribe()
	if live != nil {
		defer j.unsubscribe(live)
	}
	write := func(e sseEvent) bool {
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, e.Data); err != nil {
			return false
		}
		flusher.Flush()
		return !e.terminal()
	}
	for _, e := range history {
		if !write(e) {
			return
		}
	}
	if live == nil {
		// Terminal before subscription and no terminal event in the
		// history means nothing more can arrive; synthesize the end.
		if e, ok := j.terminalEvent(); ok {
			write(e)
		}
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-live:
			if !ok {
				// Channel closed on the terminal broadcast; if the
				// buffer overflowed before it, recover the terminal
				// event from the job state.
				if e, ok := j.terminalEvent(); ok {
					write(e)
				}
				return
			}
			if !write(e) {
				return
			}
		}
	}
}
