package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gridseg"
)

const testSpec = "n=16 w=1 tau=0.4,0.45 reps=2"

// newTestServer starts a Server over the given store behind httptest.
func newTestServer(t *testing.T, st gridseg.CellStore) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Options{Store: st, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

// submit posts a grid and decodes the returned status.
func submit(t *testing.T, base, spec string, seed uint64) (jobStatus, int) {
	t.Helper()
	body, _ := json.Marshal(map[string]interface{}{"spec": spec, "seed": seed})
	resp, err := http.Post(base+"/grids", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return st, resp.StatusCode
}

// waitDone polls a run's status until it is terminal.
func waitDone(t *testing.T, base, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/grids/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("grid %s still %s after 30s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fetch GETs a path and returns the body and status code.
func fetch(t *testing.T, url string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data, resp.StatusCode
}

// TestSubmitRunServe is the end-to-end acceptance path: submit a grid,
// wait for completion, fetch artifacts, then resubmit and restart the
// server over the same store — both must recompute zero cells and
// serve byte-identical artifacts.
func TestSubmitRunServe(t *testing.T) {
	root := filepath.Join(t.TempDir(), "store")
	st, err := gridseg.OpenStore(root)
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, st)

	status, code := submit(t, hs.URL, testSpec, 5)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	if status.Cells != 4 || status.ID == "" {
		t.Fatalf("submit response = %+v", status)
	}
	final := waitDone(t, hs.URL, status.ID)
	if final.State != StateDone || final.Done != 4 {
		t.Fatalf("final status = %+v", final)
	}
	if final.Cache.Hits != 0 || final.Cache.Misses != 4 {
		t.Fatalf("first run cache = %+v", final.Cache)
	}

	csv1, code := fetch(t, hs.URL+"/grids/"+status.ID+"/artifact.csv")
	if code != http.StatusOK {
		t.Fatalf("artifact.csv status = %d", code)
	}
	if !bytes.HasPrefix(csv1, []byte("dynamic,n,w,tau,p,rep,happy_frac")) {
		t.Fatalf("unexpected CSV header: %.80s", csv1)
	}
	json1, code := fetch(t, hs.URL+"/grids/"+status.ID+"/artifact.json")
	if code != http.StatusOK {
		t.Fatalf("artifact.json status = %d", code)
	}
	cells, code := fetch(t, hs.URL+"/grids/"+status.ID+"/cells")
	if code != http.StatusOK || !bytes.Contains(cells, []byte("happy_frac")) {
		t.Fatalf("cells status = %d body %.80s", code, cells)
	}

	// Resubmission: content-addressed, so the same run answers — same
	// ID, already done, no recomputation.
	re, code := submit(t, hs.URL, testSpec, 5)
	if code != http.StatusOK {
		t.Fatalf("resubmit status = %d", code)
	}
	if re.ID != status.ID || re.State != StateDone {
		t.Fatalf("resubmit = %+v", re)
	}

	// Fresh server, same store: the grid is recomputed as a run but
	// every cell is a cache hit, and the artifacts are byte-identical.
	_, hs2 := newTestServer(t, st)
	status2, _ := submit(t, hs2.URL, testSpec, 5)
	final2 := waitDone(t, hs2.URL, status2.ID)
	if final2.Cache.Hits != 4 || final2.Cache.Misses != 0 {
		t.Fatalf("restarted-server cache = %+v (want all hits)", final2.Cache)
	}
	csv2, _ := fetch(t, hs2.URL+"/grids/"+status2.ID+"/artifact.csv")
	json2, _ := fetch(t, hs2.URL+"/grids/"+status2.ID+"/artifact.json")
	if !bytes.Equal(csv1, csv2) || !bytes.Equal(json1, json2) {
		t.Fatal("artifacts differ across server restarts sharing a store")
	}
	if status2.ID != status.ID {
		t.Fatalf("grid ID changed across servers: %s vs %s", status.ID, status2.ID)
	}
}

// TestOverlappingGridComputesOnlyNewCells submits a second grid that
// overlaps the first and asserts only the new parameter points are
// computed.
func TestOverlappingGridComputesOnlyNewCells(t *testing.T) {
	st := gridseg.NewMemoryStore()
	_, hs := newTestServer(t, st)

	a, _ := submit(t, hs.URL, "n=16 w=1 tau=0.40,0.42 reps=2", 5)
	waitDone(t, hs.URL, a.ID)

	b, _ := submit(t, hs.URL, "n=16 w=1 tau=0.42,0.44 reps=2", 5)
	final := waitDone(t, hs.URL, b.ID)
	if final.Cache.Hits != 2 || final.Cache.Misses != 2 {
		t.Fatalf("overlap cache = %+v (want 2 hits / 2 misses)", final.Cache)
	}
}

// TestSSEEvents subscribes to a finished run and asserts the replayed
// stream carries per-cell events and the terminal done event.
func TestSSEEvents(t *testing.T) {
	st := gridseg.NewMemoryStore()
	_, hs := newTestServer(t, st)
	status, _ := submit(t, hs.URL, testSpec, 5)
	waitDone(t, hs.URL, status.ID)

	resp, err := http.Get(hs.URL + "/grids/" + status.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var cellEvents, doneEvents int
	scanner := bufio.NewScanner(resp.Body)
	var lastData string
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case line == "event: cell":
			cellEvents++
		case line == "event: done":
			doneEvents++
		case strings.HasPrefix(line, "data: "):
			lastData = strings.TrimPrefix(line, "data: ")
		}
		if doneEvents > 0 && lastData != "" && strings.Contains(lastData, "cells") {
			break // terminal event read; the stream is over
		}
	}
	if cellEvents != 4 {
		t.Fatalf("replayed %d cell events, want 4", cellEvents)
	}
	if doneEvents != 1 {
		t.Fatalf("got %d done events, want 1", doneEvents)
	}
	var terminal struct {
		Cells int `json:"cells"`
	}
	if err := json.Unmarshal([]byte(lastData), &terminal); err != nil || terminal.Cells != 4 {
		t.Fatalf("terminal payload %q: %v", lastData, err)
	}
}

// TestSSELiveStream subscribes before the run finishes and must still
// observe the terminal event.
func TestSSELiveStream(t *testing.T) {
	st := gridseg.NewMemoryStore()
	_, hs := newTestServer(t, st)
	// A slightly larger grid so the subscription races the run itself.
	status, _ := submit(t, hs.URL, "n=24 w=1,2 tau=0.4,0.45 reps=2", 9)

	resp, err := http.Get(hs.URL + "/grids/" + status.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sawTerminal := false
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if line == "event: done" || line == "event: error" {
			sawTerminal = true
			break
		}
	}
	if !sawTerminal {
		t.Fatal("live SSE stream ended without a terminal event")
	}
}

// TestFailedRunRetry asserts a failed run does not poison its
// content-addressed ID: resubmitting re-enqueues a fresh attempt
// instead of returning the stale failure forever.
func TestFailedRunRetry(t *testing.T) {
	st := gridseg.NewMemoryStore()
	srv, hs := newTestServer(t, st)
	// Validation now catches every spec-level mistake synchronously,
	// so stub the executor to fail once — modeling an environmental
	// failure (full disk, poisoned checkpoint) — then recover.
	failures := 1
	srv.runGrid = func(spec string, opt gridseg.GridOptions) (*gridseg.GridResult, error) {
		if failures > 0 {
			failures--
			return nil, errors.New("synthetic environmental failure")
		}
		return gridseg.RunGrid(spec, opt)
	}
	const spec = "n=16 w=1 tau=0.4 reps=1"
	a, code := submit(t, hs.URL, spec, 1)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	if st := waitDone(t, hs.URL, a.ID); st.State != StateFailed || st.Error == "" {
		t.Fatalf("first attempt = %+v, want failed with an error", st)
	}
	// The retry is a new attempt (202), not the cached failure (200).
	b, code := submit(t, hs.URL, spec, 1)
	if code != http.StatusAccepted || b.ID != a.ID {
		t.Fatalf("retry = %d %+v", code, b)
	}
	waitDone(t, hs.URL, b.ID)
}

// TestHTTPErrors covers the API's failure envelope.
func TestHTTPErrors(t *testing.T) {
	st := gridseg.NewMemoryStore()
	_, hs := newTestServer(t, st)

	// Malformed body.
	resp, err := http.Post(hs.URL+"/grids", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d", resp.StatusCode)
	}
	// Invalid spec.
	if _, code := submit(t, hs.URL, "tau=1.5", 1); code != http.StatusBadRequest {
		t.Fatalf("invalid spec status = %d", code)
	}
	// Structurally underspecified grid (no n/w/tau): a synchronous 400,
	// not an asynchronous run failure.
	if _, code := submit(t, hs.URL, "reps=4", 1); code != http.StatusBadRequest {
		t.Fatalf("underspecified spec status = %d", code)
	}
	// Unknown grid.
	if _, code := fetch(t, hs.URL+"/grids/deadbeef"); code != http.StatusNotFound {
		t.Fatalf("unknown grid status = %d", code)
	}
	if _, code := fetch(t, hs.URL+"/grids/deadbeef/artifact.csv"); code != http.StatusNotFound {
		t.Fatalf("unknown artifact status = %d", code)
	}
	// Healthz.
	if body, code := fetch(t, hs.URL+"/healthz"); code != http.StatusOK || !bytes.Contains(body, []byte("ok")) {
		t.Fatalf("healthz = %d %s", code, body)
	}
}

// TestArtifactBeforeDone asserts artifacts 409 while a run is still
// queued. The server under test has no dispatcher goroutine, so the
// submitted job deterministically stays in the queued state.
func TestArtifactBeforeDone(t *testing.T) {
	s := &Server{
		store: gridseg.NewMemoryStore(),
		grids: map[string]*job{},
		queue: make(chan *job, 4),
		stop:  make(chan struct{}),
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	queued, code := submit(t, hs.URL, "n=16 w=1 tau=0.4 reps=1", 2)
	if code != http.StatusAccepted || queued.State != StateQueued {
		t.Fatalf("submit = %d %+v", code, queued)
	}
	if _, code := fetch(t, hs.URL+"/grids/"+queued.ID+"/artifact.csv"); code != http.StatusConflict {
		t.Fatalf("queued artifact status = %d, want 409", code)
	}
	if _, code := fetch(t, hs.URL+"/grids/"+queued.ID+"/cells"); code != http.StatusConflict {
		t.Fatalf("queued cells status = %d, want 409", code)
	}
}

// TestQueueFull asserts overflowing the run queue yields 503 without
// corrupting the registry: rejected submissions leave no trace, and
// the listing still serves every accepted run.
func TestQueueFull(t *testing.T) {
	s := &Server{
		store: gridseg.NewMemoryStore(),
		grids: map[string]*job{},
		queue: make(chan *job, 2), // no dispatcher: the queue only fills
		stop:  make(chan struct{}),
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	var accepted []string
	for i, tau := range []string{"0.40", "0.42", "0.44", "0.46"} {
		st, code := submit(t, hs.URL, "n=16 w=1 tau="+tau+" reps=1", 1)
		if i < 2 {
			if code != http.StatusAccepted {
				t.Fatalf("submission %d status = %d", i, code)
			}
			accepted = append(accepted, st.ID)
		} else if code != http.StatusServiceUnavailable {
			t.Fatalf("submission %d status = %d, want 503", i, code)
		}
	}
	body, code := fetch(t, hs.URL+"/grids")
	if code != http.StatusOK {
		t.Fatalf("list status = %d", code)
	}
	var doc struct {
		Grids []jobStatus `json:"grids"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Grids) != 2 || doc.Grids[0].ID != accepted[0] || doc.Grids[1].ID != accepted[1] {
		t.Fatalf("listing after overflow = %+v", doc.Grids)
	}
}

// TestList covers the run listing.
func TestList(t *testing.T) {
	st := gridseg.NewMemoryStore()
	_, hs := newTestServer(t, st)
	a, _ := submit(t, hs.URL, "n=16 w=1 tau=0.4 reps=1", 1)
	b, _ := submit(t, hs.URL, "n=16 w=1 tau=0.45 reps=1", 1)
	waitDone(t, hs.URL, a.ID)
	waitDone(t, hs.URL, b.ID)
	body, code := fetch(t, hs.URL+"/grids")
	if code != http.StatusOK {
		t.Fatalf("list status = %d", code)
	}
	var doc struct {
		Grids []jobStatus `json:"grids"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Grids) != 2 || doc.Grids[0].ID != a.ID || doc.Grids[1].ID != b.ID {
		t.Fatalf("listing = %+v", doc.Grids)
	}
}

// TestEviction asserts the registry stays bounded: once MaxRuns is
// exceeded, the oldest finished runs are dropped, and resubmitting an
// evicted grid replays it from the store without recomputation.
func TestEviction(t *testing.T) {
	st := gridseg.NewMemoryStore()
	s, err := New(Options{Store: st, Workers: 2, MaxRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	var ids []string
	for _, tau := range []string{"0.40", "0.42", "0.44"} {
		st, _ := submit(t, hs.URL, "n=16 w=1 tau="+tau+" reps=1", 1)
		waitDone(t, hs.URL, st.ID)
		ids = append(ids, st.ID)
	}
	// The first (oldest finished) run was evicted, the rest remain.
	if _, code := fetch(t, hs.URL+"/grids/"+ids[0]); code != http.StatusNotFound {
		t.Fatalf("evicted grid status = %d, want 404", code)
	}
	if _, code := fetch(t, hs.URL+"/grids/"+ids[2]); code != http.StatusOK {
		t.Fatalf("retained grid status = %d", code)
	}
	// Resubmitting the evicted grid replays it entirely from cache.
	re, code := submit(t, hs.URL, "n=16 w=1 tau=0.40 reps=1", 1)
	if code != http.StatusAccepted || re.ID != ids[0] {
		t.Fatalf("resubmit after eviction = %d %+v", code, re)
	}
	final := waitDone(t, hs.URL, re.ID)
	if final.Cache.Hits != 1 || final.Cache.Misses != 0 {
		t.Fatalf("replay cache = %+v (want all hits)", final.Cache)
	}
}

// TestGridIDStability pins the submission ID against gridseg.GridID so
// clients can compute IDs offline.
func TestGridIDStability(t *testing.T) {
	st := gridseg.NewMemoryStore()
	_, hs := newTestServer(t, st)
	status, _ := submit(t, hs.URL, testSpec, 5)
	want, err := gridseg.GridID(testSpec, 5)
	if err != nil {
		t.Fatal(err)
	}
	if status.ID != want {
		t.Fatalf("server ID %s != GridID %s", status.ID, want)
	}
	waitDone(t, hs.URL, status.ID)
}
