// Package server is the HTTP serving layer of the cached sweep
// pipeline (cmd/segd): it accepts parameter-grid specs in the
// cmd/sweep -grid syntax, schedules their cells through the batch
// engine against the shared content-addressed result store, streams
// per-cell progress over Server-Sent Events, and serves the resulting
// CSV/JSON artifacts.
//
// Grid runs are content-addressed too: the ID of a run is a stable
// digest of its normalized spec and seed (gridseg.GridID), so
// resubmitting an identical grid attaches to the existing run instead
// of creating a duplicate, and — because every cell result lives in
// the store under a key derived from the cell's identity — any
// overlap with previously computed grids is served without
// recomputation, byte for byte. Only the standard library is used.
//
// # API
//
//	POST /grids              {"spec": "n=96 w=2 tau=0.40:0.48:0.02 reps=4", "seed": 1}
//	GET  /grids              list all runs
//	GET  /grids/{id}         run status (state, done/cells, cache hits/misses)
//	GET  /grids/{id}/cells   per-cell results in the status envelope (409 until done)
//	GET  /grids/{id}/artifact.csv    full CSV artifact (409 until done)
//	GET  /grids/{id}/artifact.json   full JSON artifact (409 until done)
//	GET  /grids/{id}/events  SSE progress stream (replays history, then live)
//	GET  /grids/{id}/live    SSE trajectory stream (binary frames + observables)
//	GET  /metrics            Prometheus text exposition (internal/metrics)
//	GET  /ui                 embedded live-grid viewer (zero dependencies)
//	GET  /healthz            liveness probe
//
// In cluster mode (Options.Cluster) the server becomes a coordinator:
// it computes nothing itself, instead leasing cache-missing cells to
// fabric workers and serving the shared store over HTTP, with two
// extra endpoint groups:
//
//	POST /fabric/lease       worker requests a cell lease (204 when no work)
//	POST /fabric/heartbeat   renew a held lease (409 once the lease is lost)
//	POST /fabric/complete    report a finished cell (idempotent)
//	GET  /fabric/status      lease-table snapshot and cumulative requeues
//	GET  /objects/{key}      fetch one cell result by store key (404 on miss)
//	PUT  /objects/{key}      store one cell result (atomic, key-checked)
package server

import (
	"bytes"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"gridseg"
	"gridseg/internal/fabric"
	"gridseg/internal/metrics"
	"gridseg/internal/store"
)

// States of a grid run.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Server owns the run registry, the job queue, and the shared store.
type Server struct {
	store     gridseg.CellStore
	workers   int
	maxRuns   int
	liveEvery int64
	logf      func(format string, args ...interface{})
	logger    *slog.Logger
	// runGrid executes one grid run; it is gridseg.RunGrid except in
	// tests, which stub it to exercise run-time failure paths that
	// valid specs can no longer reach (spec validation got stricter
	// with the scenario axes).
	runGrid func(spec string, opt gridseg.GridOptions) (*gridseg.GridResult, error)
	// fabric is the lease coordinator of cluster mode; nil when the
	// server computes grids in-process (the default).
	fabric *fabric.Coordinator
	// journal is the coordinator's crash-recovery log; nil outside
	// cluster mode or when journaling is disabled.
	journal *fabric.Journal
	// token, when non-empty, gates the /fabric/ and /objects/ endpoint
	// groups behind a constant-time bearer check.
	token string

	mu    sync.Mutex
	grids map[string]*job
	order []string // submission order, for stable listings

	queue chan *job
	stop  chan struct{}
	wg    sync.WaitGroup
}

// Options configures a Server.
type Options struct {
	// Store is the shared content-addressed result cache; required.
	Store gridseg.CellStore
	// Workers bounds the cell worker pool of each grid run; 0 means
	// GOMAXPROCS. Runs execute one at a time off a FIFO queue, so this
	// also bounds the server's total simulation concurrency.
	Workers int
	// QueueDepth bounds how many runs may wait behind the executing
	// one before submissions are rejected with 503; 0 means 64.
	QueueDepth int
	// MaxRuns bounds how many runs the in-memory registry retains;
	// 0 means 256. When exceeded, the oldest *finished* runs are
	// evicted (their cells stay in the store, so resubmitting an
	// evicted grid replays it from cache without recomputation).
	MaxRuns int
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...interface{})
	// Logger, when non-nil, receives structured lifecycle events
	// (log/slog) tagged with per-run attrs. It takes precedence over
	// Logf, which is kept for tests that want t.Logf plumbing.
	Logger *slog.Logger
	// LiveEvery is the flip interval between live trajectory frames on
	// the /grids/{id}/live stream; values < 1 mean the package default
	// (defaultLiveEvery). Sampling runs only while someone is
	// subscribed, so an unwatched server pays nothing for it.
	LiveEvery int64
	// Cluster switches the server into coordinator mode: submitted
	// grids are decomposed into content-addressed cell jobs and leased
	// to segd worker processes over the /fabric/ endpoints instead of
	// being computed in-process, and the shared store is exported at
	// /objects/ so workers probe and fill the same cache. A
	// coordinator computes nothing itself — with no workers attached, a
	// grid whose cells are not already cached waits until one arrives.
	Cluster bool
	// LeaseTTL bounds how long a leased cell may go unrenewed before it
	// is requeued to another worker (cluster mode; 0 means
	// fabric.DefaultTTL). Workers heartbeat at a third of the TTL.
	LeaseTTL time.Duration
	// Journal, when non-nil in cluster mode, makes run registrations and
	// cell completions crash-durable: New replays the journal and
	// re-enqueues every unfinished run, absorbing its journaled (and
	// store-reconciled) done cells without recomputation. The server
	// takes ownership of the journal; close it after Close.
	Journal *fabric.Journal
	// Token, when non-empty, requires "Authorization: Bearer <Token>"
	// on every /fabric/ and /objects/ request (compared in constant
	// time; 401 otherwise). The public grid API stays open.
	Token string
}

// New builds a Server and starts its dispatcher. Call Close to drain.
// In cluster mode with a journal, New first replays the journal and
// re-enqueues every run the previous coordinator process left
// unfinished, so a restart resumes where the crash interrupted.
func New(opt Options) (*Server, error) {
	if opt.Store == nil {
		return nil, fmt.Errorf("server: Options.Store is required")
	}
	var recovered []fabric.RecoveredRun
	if opt.Cluster && opt.Journal != nil {
		recovered = opt.Journal.Runs()
	}
	depth := opt.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	if depth < len(recovered) {
		// Recovery must never drop a journaled run to a full queue.
		depth = len(recovered)
	}
	maxRuns := opt.MaxRuns
	if maxRuns <= 0 {
		maxRuns = 256
	}
	liveEvery := opt.LiveEvery
	if liveEvery < 1 {
		liveEvery = defaultLiveEvery
	}
	s := &Server{
		store:     opt.Store,
		workers:   opt.Workers,
		maxRuns:   maxRuns,
		liveEvery: liveEvery,
		logf:      opt.Logf,
		logger:    opt.Logger,
		runGrid:   gridseg.RunGrid,
		grids:     map[string]*job{},
		queue:     make(chan *job, depth),
		stop:      make(chan struct{}),
	}
	if opt.Cluster {
		s.fabric = fabric.NewCoordinator(opt.LeaseTTL, nil)
		s.token = opt.Token
		if opt.Journal != nil {
			s.journal = opt.Journal
			s.fabric.Table().SetRecorder(opt.Journal)
		}
	}
	// Replay-recovered runs are enqueued before the dispatcher starts,
	// in their original registration order, carrying their journaled
	// done cells so runCluster absorbs them instead of recomputing.
	for _, r := range recovered {
		j := newJob(r.Run, r.Spec, r.Seed, r.Cells)
		j.recovered = r.Done
		s.grids[r.Run] = j
		s.order = append(s.order, r.Run)
		s.queue <- j
		metricQueueDepth.Add(1)
		s.fabric.Table().NoteRecovered(1, 0)
		s.logRun(r.Run, "recovered from journal", "spec", r.Spec, "seed", r.Seed,
			"cells", r.Cells, "journaled_done", len(r.Done))
	}
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// Close stops accepting queued work and waits for the executing run
// (if any) to finish.
func (s *Server) Close() {
	close(s.stop)
	s.wg.Wait()
}

// log emits a free-form lifecycle line: through the structured logger
// when configured, the printf logger otherwise.
func (s *Server) log(format string, args ...interface{}) {
	if s.logger != nil {
		s.logger.Info(fmt.Sprintf(format, args...))
		return
	}
	if s.logf != nil {
		s.logf(format, args...)
	}
}

// logRun emits one structured lifecycle event tagged with the run id.
// With a Logger it goes through log/slog; otherwise the attrs are
// rendered as k=v pairs through Logf so test logs stay readable.
func (s *Server) logRun(id, msg string, attrs ...any) {
	if s.logger != nil {
		s.logger.Info(msg, append([]any{slog.String("grid", id)}, attrs...)...)
		return
	}
	if s.logf == nil {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "grid %s: %s", id, msg)
	for i := 0; i+1 < len(attrs); i += 2 {
		fmt.Fprintf(&b, " %v=%v", attrs[i], attrs[i+1])
	}
	s.logf("%s", b.String())
}

// dispatch executes queued runs one at a time, in submission order.
// Close takes priority over remaining queued work: the inner select
// alone would pick randomly when both channels are ready.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			metricQueueDepth.Add(-1)
			s.run(j)
		}
	}
}

// run executes one grid run to completion and broadcasts its events.
func (s *Server) run(j *job) {
	if s.fabric != nil {
		s.runCluster(j)
		return
	}
	j.setState(StateRunning)
	s.logRun(j.id, "running", "spec", j.spec, "seed", j.seed, "cells", j.cells)
	res, err := s.runGrid(j.spec, gridseg.GridOptions{
		Seed:    j.seed,
		Workers: s.workers,
		Store:   s.store,
		ProgressCell: func(p gridseg.CellProgress) {
			j.progress(p)
		},
		// The live trajectory tap: frames flow into the run's fan-out
		// hub, and the SnapshotActive gate skips all measurement while
		// nobody is subscribed. Purely observational — result bytes are
		// identical with or without subscribers.
		Snapshot:       j.publishLive,
		SnapshotEvery:  s.liveEvery,
		SnapshotActive: j.live.watched,
	})
	if err != nil {
		s.logRun(j.id, "failed", "err", err)
		j.fail(err)
		return
	}
	cs := res.Cache()
	if cs.Err != "" {
		s.logRun(j.id, "result store disabled mid-run", "err", cs.Err)
	}
	s.logRun(j.id, "done", "cached", cs.Hits, "computed", cs.Misses)
	j.finish(res)
}

// Handler returns the routing table of the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /grids", s.handleSubmit)
	mux.HandleFunc("GET /grids", s.handleList)
	mux.HandleFunc("GET /grids/{id}", s.handleStatus)
	mux.HandleFunc("GET /grids/{id}/cells", s.handleCells)
	mux.HandleFunc("GET /grids/{id}/artifact.csv", s.handleArtifactCSV)
	mux.HandleFunc("GET /grids/{id}/artifact.json", s.handleArtifactJSON)
	mux.HandleFunc("GET /grids/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /grids/{id}/live", s.handleLive)
	mux.Handle("GET /metrics", metrics.Default().Handler())
	mux.HandleFunc("GET /ui", handleUI)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	if s.fabric != nil {
		// Cluster mode: the lease protocol for workers and the shared
		// object store they probe and fill. Both groups sit behind the
		// shared-secret check when one is configured; the public grid
		// API above stays open either way.
		fh := http.Handler(http.StripPrefix("/fabric", s.fabric.Handler()))
		oh := http.Handler(http.StripPrefix("/objects", store.ObjectHandler(s.store)))
		if s.token != "" {
			fh = requireToken(s.token, fh)
			oh = requireToken(s.token, oh)
		}
		mux.Handle("/fabric/", fh)
		mux.Handle("/objects/", oh)
	}
	return mux
}

// requireToken gates h behind "Authorization: Bearer <token>". The
// header is compared against the expected value in constant time (via
// fixed-size digests, so the comparison length leaks nothing either)
// and a mismatch answers 401 without touching h.
func requireToken(token string, h http.Handler) http.Handler {
	want := sha256.Sum256([]byte("Bearer " + token))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got := sha256.Sum256([]byte(r.Header.Get("Authorization")))
		if subtle.ConstantTimeCompare(got[:], want[:]) != 1 {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// submitRequest is the body of POST /grids.
type submitRequest struct {
	// Spec is a parameter grid in the cmd/sweep -grid syntax, e.g.
	// "n=96,240 w=2:4 tau=0.40:0.48:0.02 reps=8".
	Spec string `json:"spec"`
	// Seed is the root seed of the run (default 1; the zero seed must
	// be given explicitly as any other).
	Seed *uint64 `json:"seed"`
}

// handleSubmit registers (or re-attaches to) a grid run.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	// Specs are short; bound the body before the decoder allocates, so
	// an oversized request cannot exhaust memory.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return
	}
	seed := uint64(1)
	if req.Seed != nil {
		seed = *req.Seed
	}
	// ValidateGridSpec applies RunGrid's own rules, so anything it
	// rejects is a synchronous 400 here rather than an asynchronous
	// run failure, and the rules cannot drift apart.
	cells, err := gridseg.ValidateGridSpec(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := gridseg.GridID(req.Spec, seed)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// Registration and enqueueing are one critical section: the send is
	// non-blocking, and doing it under the lock means a full queue
	// leaves no half-registered job to roll back.
	s.mu.Lock()
	if j, exists := s.grids[id]; exists && j.status().State != StateFailed {
		s.mu.Unlock()
		// Content-addressed resubmission: same normalized grid and
		// seed, so the existing run (finished or not) answers for it.
		// Failed runs fall through instead: their causes are usually
		// environmental (full disk, store errors), so resubmission is
		// the retry path and replaces the poisoned entry.
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	retry := s.grids[id] != nil
	j := newJob(id, req.Spec, seed, cells)
	select {
	case s.queue <- j:
		metricQueueDepth.Add(1)
		s.grids[id] = j
		if !retry {
			s.order = append(s.order, id)
		}
		s.evictLocked()
		s.mu.Unlock()
		if s.journal != nil {
			// Durable registration before the 202: a coordinator that
			// crashes after answering will resume this run on reboot. A
			// journal write failure degrades durability, not the run.
			if err := s.journal.Register(id, req.Spec, seed, cells); err != nil {
				s.logRun(id, "journal register failed", "err", err)
			}
		}
		s.logRun(id, "queued", "spec", req.Spec, "seed", seed)
		writeJSON(w, http.StatusAccepted, j.status())
	default:
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("run queue is full"))
	}
}

// evictLocked drops the oldest finished runs once the registry
// exceeds its cap, bounding the server's memory over a long life;
// s.mu must be held. Queued and running jobs are never evicted, and
// an evicted grid loses nothing durable: its cells live in the store,
// so resubmitting replays it from cache.
func (s *Server) evictLocked() {
	for i := 0; len(s.order) > s.maxRuns && i < len(s.order); {
		id := s.order[i]
		st := s.grids[id].status()
		if st.State != StateDone && st.State != StateFailed {
			i++
			continue
		}
		delete(s.grids, id)
		s.order = append(s.order[:i], s.order[i+1:]...)
		s.log("grid %s: evicted from the registry (cells remain cached)", id)
	}
}

// handleList returns every run's status in submission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]jobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.grids[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{"grids": out})
}

// lookup resolves the {id} path segment.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.grids[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown grid %q", r.PathValue("id")))
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// finished returns the completed result of a run, or reports why it
// cannot be served yet (409 while queued/running, 500 when failed).
func finished(w http.ResponseWriter, j *job) *gridseg.GridResult {
	st := j.status()
	switch st.State {
	case StateDone:
		return j.result()
	case StateFailed:
		writeError(w, http.StatusInternalServerError, fmt.Errorf("grid %s failed: %s", j.id, st.Error))
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, fmt.Errorf("grid %s is %s (%d/%d cells); retry when done", j.id, st.State, st.Done, st.Cells))
	}
	return nil
}

// handleCells serves the per-cell results wrapped in the run's status
// envelope — one fetch yields provenance (spec, seed, cache split) and
// data. The bare artifact bytes live at /artifact.json instead.
func (s *Server) handleCells(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	res := finished(w, j)
	if res == nil {
		return
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		s.log("grid %s: rendering cells: %v", j.id, err)
		writeError(w, http.StatusInternalServerError, fmt.Errorf("rendering cells"))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		jobStatus
		Artifact json.RawMessage `json:"artifact"`
	}{j.status(), json.RawMessage(buf.Bytes())})
}

func (s *Server) handleArtifactCSV(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	if res := finished(w, j); res != nil {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", j.id+".csv"))
		if err := res.WriteCSV(w); err != nil {
			s.log("grid %s: writing CSV: %v", j.id, err)
		}
	}
}

func (s *Server) handleArtifactJSON(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	if res := finished(w, j); res != nil {
		w.Header().Set("Content-Type", "application/json")
		if err := res.WriteJSON(w); err != nil {
			s.log("grid %s: writing JSON: %v", j.id, err)
		}
	}
}

// writeJSON encodes v as the response with the given status.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError encodes an error response.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
