package server

import "gridseg/internal/metrics"

// Process-wide serving metrics, registered on the default registry the
// /metrics endpoint exports. Package-level because the registry is
// process-global: two Servers in one process (as in tests) share the
// counters, which only ever over-counts activity, never breaks it.
var (
	metricQueueDepth = metrics.Default().NewGauge("segd_queue_depth",
		"Grid runs waiting in the dispatcher queue behind the executing one.")
	metricSSESubscribers = metrics.Default().NewGauge("segd_sse_subscribers",
		"Currently connected /events progress subscribers.")
	metricLiveSubscribers = metrics.Default().NewGauge("segd_live_subscribers",
		"Currently connected /live trajectory-frame subscribers.")
	metricLiveFrames = metrics.Default().NewCounter("segd_live_frames_total",
		"Live trajectory frames published to the fan-out hubs.")
	metricLiveFramesDropped = metrics.Default().NewCounter("segd_live_frames_dropped_total",
		"Live frames evicted from slow subscribers' bounded queues.")
	metricRuns = metrics.Default().NewCounterVec("segd_runs_total",
		"Grid runs finished, by terminal state.", "state")

	metricRunsDone   = metricRuns.WithLabel(StateDone)
	metricRunsFailed = metricRuns.WithLabel(StateFailed)
)
