package server

import (
	_ "embed"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"gridseg"
	"gridseg/internal/batch"
)

// Live trajectory streaming: the engine-side snapshot tap of a running
// grid (gridseg.GridOptions.Snapshot) publishes binary grid frames and
// per-sample observables into a per-run liveHub, and GET
// /grids/{id}/live fans them out as Server-Sent Events.
//
// The backpressure contract is drop-oldest, per subscriber: every
// subscriber owns a small bounded queue; publishing to a full queue
// evicts that subscriber's oldest pending frame and never blocks, so a
// stalled consumer quietly loses intermediate frames while the engine
// and every other subscriber proceed at full speed. Frames are
// self-contained snapshots — losing one costs temporal resolution,
// never correctness — which is what makes dropping safe.

// liveQueueCap is each subscriber's queue bound. Small on purpose: a
// consumer more than a few frames behind is better served by fresher
// frames than by a deep backlog of stale ones.
const liveQueueCap = 8

// defaultLiveEvery is the flip interval between live samples when
// Options.LiveEvery is unset.
const defaultLiveEvery = 2048

// liveFrame is one published sample: the pre-rendered SSE payload
// (encoded once, shared by all subscribers).
type liveFrame struct {
	data []byte
}

// liveHub fans one run's live samples out to its /live subscribers.
type liveHub struct {
	// watchers counts subscribers; the engine's snapshot tap reads it
	// (through watched) on its hot path to skip measuring unwatched
	// runs, so it is atomic rather than mutex-guarded.
	watchers atomic.Int64

	mu     sync.Mutex
	subs   map[chan liveFrame]struct{}
	last   []byte // most recent payload, replayed to new subscribers
	closed bool
}

func newLiveHub() *liveHub {
	return &liveHub{subs: map[chan liveFrame]struct{}{}}
}

// watched reports whether anyone is consuming the stream; it is the
// SnapshotActive gate of the sweep tap.
func (h *liveHub) watched() bool { return h.watchers.Load() > 0 }

// publish fans a rendered sample out to every subscriber without ever
// blocking: a full queue drops its oldest frame to make room. The
// payload is also retained as the hub's last frame so late subscribers
// get an immediate picture.
func (h *liveHub) publish(data []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.last = data
	metricLiveFrames.Inc()
	e := liveFrame{data: data}
	for ch := range h.subs {
		select {
		case ch <- e:
			continue
		default:
		}
		// Queue full: evict the oldest pending frame, then retry once.
		// Only this handler goroutine publishes (under h.mu), so the
		// second send can only fail if the subscriber drained everything
		// in between — in which case it succeeds on the channel's buffer
		// anyway; the default arm is pure paranoia.
		select {
		case <-ch:
			metricLiveFramesDropped.Inc()
		default:
		}
		select {
		case ch <- e:
		default:
		}
	}
}

// subscribe registers a consumer, returning the most recent frame (nil
// if none yet) and a live channel — nil when the run already ended.
func (h *liveHub) subscribe() ([]byte, chan liveFrame) {
	h.mu.Lock()
	defer h.mu.Unlock()
	last := h.last
	if h.closed {
		return last, nil
	}
	ch := make(chan liveFrame, liveQueueCap)
	h.subs[ch] = struct{}{}
	h.watchers.Add(1)
	metricLiveSubscribers.Add(1)
	return last, ch
}

// unsubscribe detaches a consumer (no-op after close already did).
func (h *liveHub) unsubscribe(ch chan liveFrame) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[ch]; ok {
		delete(h.subs, ch)
		close(ch)
		h.watchers.Add(-1)
		metricLiveSubscribers.Add(-1)
	}
}

// close ends the stream: every subscriber's channel is closed (their
// handlers emit the terminal event) and later publishes are dropped.
func (h *liveHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
		h.watchers.Add(-1)
		metricLiveSubscribers.Add(-1)
	}
	h.subs = map[chan liveFrame]struct{}{}
}

// liveEvent is the JSON payload of one live SSE frame. The frame field
// is the binary grid codec (internal/grid.MarshalBinary), base64
// encoded; scenario fields are omitted on default cells, like the
// /events stream.
type liveEvent struct {
	Dynamic  string  `json:"dynamic"`
	N        int     `json:"n"`
	W        int     `json:"w"`
	Tau      float64 `json:"tau"`
	P        float64 `json:"p"`
	Rep      int     `json:"rep"`
	Boundary string  `json:"boundary,omitempty"`
	Rho      float64 `json:"rho,omitempty"`
	TauDist  string  `json:"taudist,omitempty"`

	Flips        int64   `json:"flips"`
	Phi          int64   `json:"phi"`
	Unhappy      int     `json:"unhappy"`
	HappyFrac    float64 `json:"happy_frac"`
	IfaceDensity float64 `json:"iface_density"`
	IfaceLength  float64 `json:"iface_length"`
	Curvature    float64 `json:"curvature"`
	LargestFrac  float64 `json:"largest_frac"`
	Frame        string  `json:"frame"`
	Final        bool    `json:"final"`
}

// publishLive renders one engine sample and hands it to the run's hub.
// It is the GridOptions.Snapshot callback, called from sweep workers.
func (j *job) publishLive(s gridseg.LiveSample) {
	ev := liveEvent{
		Dynamic: s.Cell.Dynamic, N: s.Cell.N, W: s.Cell.W,
		Tau: s.Cell.Tau, P: s.Cell.P, Rep: s.Cell.Rep,
		Flips: s.Flips, Phi: s.Phi,
		Unhappy: s.UnhappyCount, HappyFrac: s.HappyFraction,
		IfaceDensity: s.InterfaceDensity, IfaceLength: s.InterfaceLength,
		Curvature: s.Curvature, LargestFrac: s.LargestFraction,
		Frame: base64.StdEncoding.EncodeToString(s.Frame),
		Final: s.Final,
	}
	if !batch.DefaultScenario(s.Cell.Boundary, s.Cell.Rho, s.Cell.TauDist) {
		ev.Boundary, ev.Rho, ev.TauDist = s.Cell.Boundary, s.Cell.Rho, s.Cell.TauDist
	}
	data, _ := json.Marshal(ev)
	j.live.publish(data)
}

// handleLive streams a run's live trajectory frames as SSE: the most
// recent frame immediately (if the run has produced one), then live
// frames until the run ends or the client disconnects. The stream
// closes with an `end` event carrying the run's terminal state. Runs
// executed by a cluster coordinator compute nothing locally, so their
// streams carry no frames — only the terminal event.
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("response writer does not support streaming"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	last, live := j.live.subscribe()
	if live != nil {
		defer j.live.unsubscribe(live)
	}
	write := func(event string, data []byte) bool {
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	end := func() {
		data, _ := json.Marshal(map[string]string{"state": j.status().State})
		write("end", data)
	}
	if last != nil && !write("frame", last) {
		return
	}
	if live == nil {
		end()
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-live:
			if !ok {
				end()
				return
			}
			if !write("frame", e.data) {
				return
			}
		}
	}
}

// uiHTML is the embedded live-grid viewer served at GET /ui: a single
// dependency-free page that subscribes to a run's /live stream, decodes
// the binary frames in the browser, and draws the lattice heatmap and
// the observable curves.
//
//go:embed ui/index.html
var uiHTML []byte

// handleUI serves the embedded viewer.
func handleUI(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(uiHTML)
}
