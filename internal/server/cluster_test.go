package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gridseg"
	"gridseg/internal/fabric"
	"gridseg/internal/store"
)

// clusterSpec is large enough that three workers genuinely interleave
// (16 cells) while each cell stays cheap.
const clusterSpec = "n=16 w=1 tau=0.4,0.42,0.44,0.46 reps=4"

// newClusterServer starts a coordinator-mode Server behind httptest.
func newClusterServer(t *testing.T, st gridseg.CellStore, ttl time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Options{Store: st, Cluster: true, LeaseTTL: ttl, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

// localArtifacts computes the single-process reference bytes for a
// (spec, seed) pair: what plain segd (or cmd/sweep) would serve.
func localArtifacts(t *testing.T, spec string, seed uint64) (csv, jsonBytes []byte) {
	t.Helper()
	res, err := gridseg.RunGrid(spec, gridseg.GridOptions{Seed: seed, Store: gridseg.NewMemoryStore()})
	if err != nil {
		t.Fatal(err)
	}
	var cbuf, jbuf bytes.Buffer
	if err := res.WriteCSV(&cbuf); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	return cbuf.Bytes(), jbuf.Bytes()
}

// TestClusterChaos is the fault-injection e2e of the distributed
// fabric: a coordinator plus three in-process workers whose transports
// inject timeouts, 5xx, and torn connections on a seeded schedule. One
// worker is killed mid-sweep (after completing a cell), one is killed
// mid-cell (inside a computation); the grid must still complete with
// zero lost and zero double-counted cells, and the artifacts must be
// byte-identical to a single-process run.
func TestClusterChaos(t *testing.T) {
	const seed = 7
	st := gridseg.NewMemoryStore()
	_, hs := newClusterServer(t, st, 300*time.Millisecond)

	// Fault schedule: deterministic per worker given its seed — rerun
	// with the same seeds to reproduce a failure exactly.
	transports := []*fabric.ChaosTransport{
		fabric.NewChaosTransport(101, http.DefaultTransport, 0.05, 0.05, 0.05),
		fabric.NewChaosTransport(202, http.DefaultTransport, 0.05, 0.05, 0.05),
		fabric.NewChaosTransport(303, http.DefaultTransport, 0.05, 0.05, 0.05),
	}

	ctxSweep, cancelSweep := context.WithCancel(context.Background())
	ctxCell, cancelCell := context.WithCancel(context.Background())
	ctxSurvivor, cancelSurvivor := context.WithCancel(context.Background())
	defer cancelSweep()
	defer cancelCell()
	defer cancelSurvivor()

	// Worker killed mid-sweep: its first cell completes end to end;
	// the second call parks until the kill lands, so it dies holding a
	// lease it will never report — the requeue path must recover it.
	var sweepCalls int
	var sweepMu sync.Mutex
	sweepKilled := make(chan struct{})
	runnerSweep := func(j fabric.Job) ([]float64, error) {
		sweepMu.Lock()
		sweepCalls++
		n := sweepCalls
		sweepMu.Unlock()
		if n >= 2 {
			close(sweepKilled)
			<-ctxSweep.Done()
			return nil, ctxSweep.Err()
		}
		return gridseg.ComputeJob(j)
	}
	// Worker killed mid-cell: dies inside its first computation.
	cellStarted := make(chan struct{})
	var cellOnce sync.Once
	runnerCell := func(j fabric.Job) ([]float64, error) {
		cellOnce.Do(func() { close(cellStarted) })
		<-ctxCell.Done()
		return nil, ctxCell.Err()
	}

	workers := []struct {
		name   string
		ctx    context.Context
		tr     *fabric.ChaosTransport
		runner func(fabric.Job) ([]float64, error)
	}{
		{"w-sweepkill", ctxSweep, transports[0], runnerSweep},
		{"w-cellkill", ctxCell, transports[1], runnerCell},
		{"w-survivor", ctxSurvivor, transports[2], gridseg.ComputeJob},
	}
	var wg sync.WaitGroup
	for _, wk := range workers {
		client := &http.Client{Transport: wk.tr}
		w := &fabric.Worker{
			Name:        wk.name,
			Coordinator: hs.URL + "/fabric",
			Client:      client,
			Store:       store.NewRemote(hs.URL+"/objects", client),
			Runner:      wk.runner,
			Poll:        20 * time.Millisecond,
			Logf:        t.Logf,
		}
		wg.Add(1)
		go func(ctx context.Context) {
			defer wg.Done()
			w.Run(ctx)
		}(wk.ctx)
	}
	defer wg.Wait()

	status, code := submit(t, hs.URL, clusterSpec, seed)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	cells := status.Cells

	// Deliver the kills once each victim is in position.
	select {
	case <-cellStarted:
	case <-time.After(20 * time.Second):
		t.Fatal("mid-cell victim never started a cell")
	}
	cancelCell()
	select {
	case <-sweepKilled:
	case <-time.After(20 * time.Second):
		t.Fatal("mid-sweep victim never reached its second cell")
	}
	cancelSweep()

	final := waitDone(t, hs.URL, status.ID)
	cancelSurvivor()
	if final.State != StateDone {
		t.Fatalf("final state = %s (%s)", final.State, final.Error)
	}
	// Zero lost, zero double-counted: every cell accounted for exactly
	// once in the completion and cache tallies.
	if final.Done != cells {
		t.Fatalf("done = %d, want %d", final.Done, cells)
	}
	if final.Cache.Hits+final.Cache.Misses != cells {
		t.Fatalf("cache hits %d + misses %d != %d cells", final.Cache.Hits, final.Cache.Misses, cells)
	}

	// The SSE replay must carry exactly one event per cell — a
	// double-reported cell would show up as a duplicate identity here.
	events := sseCellEvents(t, hs.URL+"/grids/"+status.ID+"/events")
	if len(events) != cells {
		t.Fatalf("SSE streamed %d cell events, want %d", len(events), cells)
	}
	seen := map[string]bool{}
	for _, ev := range events {
		id := fmt.Sprintf("%s|%d|%d|%v|%v|%v|%d", ev.Dynamic, ev.N, ev.W, ev.Tau, ev.P, ev.Extra, ev.Rep)
		if seen[id] {
			t.Fatalf("cell %s reported twice over SSE", id)
		}
		seen[id] = true
		if !ev.Cached && ev.Worker == "" {
			t.Fatalf("computed cell %s lacks worker attribution", id)
		}
	}

	// Byte-identical artifacts: the cluster's CSV and JSON must equal a
	// single-process run of the same (spec, seed).
	wantCSV, wantJSON := localArtifacts(t, clusterSpec, seed)
	gotCSV, code := fetch(t, hs.URL+"/grids/"+status.ID+"/artifact.csv")
	if code != http.StatusOK || !bytes.Equal(gotCSV, wantCSV) {
		t.Fatalf("cluster CSV differs from single-process run (status %d)\ngot:\n%s\nwant:\n%s", code, gotCSV, wantCSV)
	}
	gotJSON, code := fetch(t, hs.URL+"/grids/"+status.ID+"/artifact.json")
	if code != http.StatusOK || !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("cluster JSON differs from single-process run (status %d)", code)
	}

	// The kills actually exercised the requeue path, and the seeded
	// schedule actually injected faults.
	var fstatus struct {
		Requeues int                 `json:"requeues"`
		Metrics  fabric.TableMetrics `json:"metrics"`
	}
	data, _ := fetch(t, hs.URL+"/fabric/status")
	if err := json.Unmarshal(data, &fstatus); err != nil {
		t.Fatal(err)
	}
	if fstatus.Requeues < 2 {
		t.Fatalf("requeues = %d, want >= 2 (both victims died holding leases)", fstatus.Requeues)
	}
	// The cumulative metrics snapshot must balance the run's books:
	// every cell completed exactly once (dupes folded), every requeue
	// re-granted, and every accepted completion measured for latency.
	fm := fstatus.Metrics
	if fm.Requeues != fstatus.Requeues {
		t.Fatalf("metrics.requeues = %d, top-level requeues = %d", fm.Requeues, fstatus.Requeues)
	}
	if fm.Completions != cells {
		t.Fatalf("metrics.completions = %d, want %d (one per cell, dupes folded)", fm.Completions, cells)
	}
	if fm.Grants < fm.Completions {
		t.Fatalf("metrics.grants = %d < completions %d (every completion needs a grant)", fm.Grants, fm.Completions)
	}
	if fm.LeaseSecondsCount != fm.Completions || fm.LeaseSecondsSum < 0 || fm.LeaseSecondsMax < 0 {
		t.Fatalf("lease latency snapshot inconsistent: %+v", fm)
	}
	total := 0
	for _, n := range fm.CompletedByWorker {
		total += n
	}
	if total != fm.Completions {
		t.Fatalf("per-worker completions sum to %d, want %d", total, fm.Completions)
	}
	if fm.CompletedByWorker["w-survivor"] == 0 {
		t.Fatalf("survivor worker completed no cells: %v", fm.CompletedByWorker)
	}
	faults := 0
	for _, tr := range transports {
		faults += tr.Faults()
	}
	if faults == 0 {
		t.Fatal("chaos schedule injected no faults; the test proved nothing")
	}
	t.Logf("chaos: %d faults injected, %d requeues", faults, fstatus.Requeues)
}

// TestClusterServesCachedRunWithoutWorkers pins the coordinator's
// cache path: a grid whose cells are all in the shared store completes
// with no workers attached at all, every cell a hit.
func TestClusterServesCachedRunWithoutWorkers(t *testing.T) {
	const seed = 9
	st := gridseg.NewMemoryStore()
	if _, err := gridseg.RunGrid(testSpec, gridseg.GridOptions{Seed: seed, Store: st}); err != nil {
		t.Fatal(err)
	}
	_, hs := newClusterServer(t, st, time.Second)

	status, code := submit(t, hs.URL, testSpec, seed)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	final := waitDone(t, hs.URL, status.ID)
	if final.State != StateDone {
		t.Fatalf("final state = %s (%s)", final.State, final.Error)
	}
	if final.Cache.Hits != final.Cells || final.Cache.Misses != 0 {
		t.Fatalf("cache = %+v, want all %d cells hit", final.Cache, final.Cells)
	}
	wantCSV, _ := localArtifacts(t, testSpec, seed)
	gotCSV, _ := fetch(t, hs.URL+"/grids/"+status.ID+"/artifact.csv")
	if !bytes.Equal(gotCSV, wantCSV) {
		t.Fatalf("cached cluster CSV differs from single-process run")
	}
}

// TestClusterWorkerErrorFailsRun pins the deterministic-error path: a
// cell that fails on a worker fails the run (it would fail anywhere),
// and resubmission is still possible afterwards.
func TestClusterWorkerErrorFailsRun(t *testing.T) {
	st := gridseg.NewMemoryStore()
	_, hs := newClusterServer(t, st, time.Second)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &fabric.Worker{
		Name:        "w-broken",
		Coordinator: hs.URL + "/fabric",
		Store:       store.NewRemote(hs.URL+"/objects", nil),
		Runner:      func(j fabric.Job) ([]float64, error) { return nil, fmt.Errorf("synthetic cell failure") },
		Poll:        10 * time.Millisecond,
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.Run(ctx)
	}()
	defer wg.Wait()
	defer cancel()

	status, _ := submit(t, hs.URL, testSpec, 11)
	final := waitDone(t, hs.URL, status.ID)
	if final.State != StateFailed || !strings.Contains(final.Error, "synthetic cell failure") {
		t.Fatalf("final = %+v, want failed with the worker's error", final)
	}
}

// sseCellEvents fetches a finished run's SSE replay and decodes its
// cell events.
func sseCellEvents(t *testing.T, url string) []cellEvent {
	t.Helper()
	body, code := fetch(t, url)
	if code != http.StatusOK {
		t.Fatalf("events status = %d", code)
	}
	var out []cellEvent
	lines := strings.Split(string(body), "\n")
	for i := 0; i < len(lines); i++ {
		if lines[i] != "event: cell" {
			continue
		}
		if i+1 >= len(lines) || !strings.HasPrefix(lines[i+1], "data: ") {
			t.Fatalf("malformed SSE frame at line %d", i)
		}
		var ev cellEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(lines[i+1], "data: ")), &ev); err != nil {
			t.Fatal(err)
		}
		out = append(out, ev)
	}
	return out
}
