package server

import (
	"fmt"

	"gridseg"
	"gridseg/internal/fabric"
)

// runCluster executes one grid run in coordinator mode: serve every
// cell already in the store directly, lease the rest to fabric
// workers, and assemble the completed cells into the same GridResult a
// single-process run would produce.
//
// The coordinator never computes a cell itself. Correctness leans on
// the cells being content-addressed: a worker presumed dead whose cell
// was requeued still completes with identical bytes, the lease table
// folds the duplicate silently, and the assembled artifact is
// byte-identical to the local path no matter which workers computed
// what, how often, or in what order.
func (s *Server) runCluster(j *job) {
	j.setState(StateRunning)
	jobs, err := gridseg.GridJobs(j.spec, j.seed)
	if err != nil {
		j.fail(err)
		return
	}
	s.logRun(j.id, "running (cluster)", "spec", j.spec, "seed", j.seed, "cells", len(jobs))

	values := make([][]float64, len(jobs))
	byIndex := make(map[int]fabric.Job, len(jobs))
	var pending []fabric.Job
	done, hits, misses, recCells := 0, 0, 0, 0
	for _, fj := range jobs {
		byIndex[fj.Index] = fj
		// A journaled done record is absorbed first: it survives even
		// when a crash raced the worker's store fill. The backstop Put
		// reconciles the store so the cell also serves future grids.
		if d, ok := j.recovered[fj.Index]; ok && len(d.Values) == len(fj.Columns) {
			values[fj.Index] = d.Values
			done++
			hits++
			recCells++
			if _, ok, err := s.store.Get(fj.Key); err == nil && !ok {
				if err := s.store.Put(fj.Key, d.Values); err != nil {
					s.logRun(j.id, "caching recovered cell failed", "cell", fj.Index, "err", err)
				}
			}
			j.progress(clusterProgress(fj, done, len(jobs), true, d.Worker))
			continue
		}
		if v, ok, err := s.store.Get(fj.Key); err == nil && ok && len(v) == len(fj.Columns) {
			values[fj.Index] = v
			done++
			hits++
			if j.recovered != nil {
				// Store reconciliation: the completion's journal record was
				// lost to the crash (batched fsync) but the worker's store
				// fill survived, so the cell is still not recomputed.
				recCells++
			}
			j.progress(clusterProgress(fj, done, len(jobs), true, ""))
			continue
		}
		pending = append(pending, fj)
	}
	if recCells > 0 {
		s.fabric.Table().NoteRecovered(0, recCells)
		s.logRun(j.id, "absorbed recovered cells", "cells", recCells, "remaining", len(pending))
	}
	if len(pending) == 0 {
		s.finishCluster(j, values, hits, misses)
		return
	}

	// The completion callback runs with the lease table locked, so
	// invocations are serialized and `done`/`values`/`hits`/`misses`
	// need no extra synchronization; the done-channel close (also under
	// the table lock) orders every write before the assembly below.
	failc := make(chan error, 1)
	donec, err := s.fabric.Table().Register(j.id, pending, func(d fabric.CellDone) {
		if d.Err != "" {
			// Deterministic cell failure: the same inputs would fail on
			// any worker, so fail the run rather than requeue forever.
			select {
			case failc <- fmt.Errorf("cell %d failed on worker %s: %s", d.Index, d.Worker, d.Err):
			default:
			}
			return
		}
		fj := byIndex[d.Index]
		values[d.Index] = d.Values
		done++
		if d.Cached {
			hits++
		} else {
			misses++
		}
		// Backstop the cache fill: workers write the store themselves,
		// but one that died between computing and filling should not
		// cost a recomputation on the next overlapping grid. Fail-soft,
		// like every store write.
		if _, ok, err := s.store.Get(fj.Key); err == nil && !ok {
			if err := s.store.Put(fj.Key, d.Values); err != nil {
				s.logRun(j.id, "caching cell failed", "cell", d.Index, "err", err)
			}
		}
		j.progress(clusterProgress(fj, done, len(jobs), d.Cached, d.Worker))
	})
	if err != nil {
		j.fail(err)
		return
	}

	select {
	case <-donec:
		// A failing cell also counts as completed in the table; prefer
		// the failure if both signals are up.
		select {
		case err := <-failc:
			s.fabric.Table().Cancel(j.id)
			s.failCluster(j, err)
		default:
			s.finishCluster(j, values, hits, misses)
		}
	case err := <-failc:
		s.fabric.Table().Cancel(j.id)
		s.failCluster(j, err)
	case <-s.stop:
		// Deliberately NOT journaled as finished: a clean shutdown and a
		// crash look the same to the journal, so the next coordinator
		// boot resumes this run from its journaled completions.
		s.fabric.Table().Cancel(j.id)
		j.fail(fmt.Errorf("server shut down before the run completed"))
	}
}

// failCluster records a deterministic run failure. The journal entry
// is finished too: the same cells would fail on any worker, so
// resuming the run on reboot would only refail it — the retry path is
// resubmission, which registers afresh.
func (s *Server) failCluster(j *job, err error) {
	s.logRun(j.id, "failed", "err", err)
	if s.journal != nil {
		if jerr := s.journal.Finish(j.id); jerr != nil {
			s.logRun(j.id, "journal finish failed", "err", jerr)
		}
	}
	j.fail(err)
}

// finishCluster assembles and publishes a completed cluster run,
// retiring it from the journal (synchronously fsynced, so a crash
// after this point never re-runs a finished grid).
func (s *Server) finishCluster(j *job, values [][]float64, hits, misses int) {
	res, err := gridseg.AssembleGrid(j.spec, values, gridseg.CacheStats{Hits: hits, Misses: misses})
	if err != nil {
		s.failCluster(j, err)
		return
	}
	if s.journal != nil {
		if jerr := s.journal.Finish(j.id); jerr != nil {
			s.logRun(j.id, "journal finish failed", "err", jerr)
		}
	}
	s.logRun(j.id, "done", "cached", hits, "computed_by_workers", misses)
	j.finish(res)
}

// clusterProgress adapts a fabric job completion to the progress shape
// the SSE layer streams.
func clusterProgress(fj fabric.Job, done, total int, cached bool, worker string) gridseg.CellProgress {
	c := fj.Cell
	return gridseg.CellProgress{
		Done: done, Total: total,
		Dynamic: c.Dynamic, N: c.N, W: c.W,
		Tau: c.Tau, P: c.P,
		Boundary: c.Boundary, Rho: c.Rho, TauDist: c.TauDist,
		Extra: c.Extra, Rep: c.Rep,
		Cached: cached, Worker: worker,
	}
}
