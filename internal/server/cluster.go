package server

import (
	"fmt"

	"gridseg"
	"gridseg/internal/fabric"
)

// runCluster executes one grid run in coordinator mode: serve every
// cell already in the store directly, lease the rest to fabric
// workers, and assemble the completed cells into the same GridResult a
// single-process run would produce.
//
// The coordinator never computes a cell itself. Correctness leans on
// the cells being content-addressed: a worker presumed dead whose cell
// was requeued still completes with identical bytes, the lease table
// folds the duplicate silently, and the assembled artifact is
// byte-identical to the local path no matter which workers computed
// what, how often, or in what order.
func (s *Server) runCluster(j *job) {
	j.setState(StateRunning)
	jobs, err := gridseg.GridJobs(j.spec, j.seed)
	if err != nil {
		j.fail(err)
		return
	}
	s.logRun(j.id, "running (cluster)", "spec", j.spec, "seed", j.seed, "cells", len(jobs))

	values := make([][]float64, len(jobs))
	byIndex := make(map[int]fabric.Job, len(jobs))
	var pending []fabric.Job
	done, hits, misses := 0, 0, 0
	for _, fj := range jobs {
		byIndex[fj.Index] = fj
		if v, ok, err := s.store.Get(fj.Key); err == nil && ok && len(v) == len(fj.Columns) {
			values[fj.Index] = v
			done++
			hits++
			j.progress(clusterProgress(fj, done, len(jobs), true, ""))
			continue
		}
		pending = append(pending, fj)
	}
	if len(pending) == 0 {
		s.finishCluster(j, values, hits, misses)
		return
	}

	// The completion callback runs with the lease table locked, so
	// invocations are serialized and `done`/`values`/`hits`/`misses`
	// need no extra synchronization; the done-channel close (also under
	// the table lock) orders every write before the assembly below.
	failc := make(chan error, 1)
	donec, err := s.fabric.Table().Register(j.id, pending, func(d fabric.CellDone) {
		if d.Err != "" {
			// Deterministic cell failure: the same inputs would fail on
			// any worker, so fail the run rather than requeue forever.
			select {
			case failc <- fmt.Errorf("cell %d failed on worker %s: %s", d.Index, d.Worker, d.Err):
			default:
			}
			return
		}
		fj := byIndex[d.Index]
		values[d.Index] = d.Values
		done++
		if d.Cached {
			hits++
		} else {
			misses++
		}
		// Backstop the cache fill: workers write the store themselves,
		// but one that died between computing and filling should not
		// cost a recomputation on the next overlapping grid. Fail-soft,
		// like every store write.
		if _, ok, err := s.store.Get(fj.Key); err == nil && !ok {
			if err := s.store.Put(fj.Key, d.Values); err != nil {
				s.logRun(j.id, "caching cell failed", "cell", d.Index, "err", err)
			}
		}
		j.progress(clusterProgress(fj, done, len(jobs), d.Cached, d.Worker))
	})
	if err != nil {
		j.fail(err)
		return
	}

	select {
	case <-donec:
		// A failing cell also counts as completed in the table; prefer
		// the failure if both signals are up.
		select {
		case err := <-failc:
			s.fabric.Table().Cancel(j.id)
			s.logRun(j.id, "failed", "err", err)
			j.fail(err)
		default:
			s.finishCluster(j, values, hits, misses)
		}
	case err := <-failc:
		s.fabric.Table().Cancel(j.id)
		s.logRun(j.id, "failed", "err", err)
		j.fail(err)
	case <-s.stop:
		s.fabric.Table().Cancel(j.id)
		j.fail(fmt.Errorf("server shut down before the run completed"))
	}
}

// finishCluster assembles and publishes a completed cluster run.
func (s *Server) finishCluster(j *job, values [][]float64, hits, misses int) {
	res, err := gridseg.AssembleGrid(j.spec, values, gridseg.CacheStats{Hits: hits, Misses: misses})
	if err != nil {
		s.logRun(j.id, "failed", "err", err)
		j.fail(err)
		return
	}
	s.logRun(j.id, "done", "cached", hits, "computed_by_workers", misses)
	j.finish(res)
}

// clusterProgress adapts a fabric job completion to the progress shape
// the SSE layer streams.
func clusterProgress(fj fabric.Job, done, total int, cached bool, worker string) gridseg.CellProgress {
	c := fj.Cell
	return gridseg.CellProgress{
		Done: done, Total: total,
		Dynamic: c.Dynamic, N: c.N, W: c.W,
		Tau: c.Tau, P: c.P,
		Boundary: c.Boundary, Rho: c.Rho, TauDist: c.TauDist,
		Extra: c.Extra, Rep: c.Rep,
		Cached: cached, Worker: worker,
	}
}
