package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gridseg"
	"gridseg/internal/fabric"
	"gridseg/internal/metrics"
	"gridseg/internal/store"
)

// jsonUnmarshal is json.Unmarshal under a test-local name, so the
// decode sites here read symmetrically with fetch.
func jsonUnmarshal(data []byte, v any) error { return json.Unmarshal(data, v) }

// cellIdentity renders the parameter identity of one SSE cell event.
func cellIdentity(ev cellEvent) string {
	return fmt.Sprintf("%s|%d|%d|%v|%v|%v|%d", ev.Dynamic, ev.N, ev.W, ev.Tau, ev.P, ev.Extra, ev.Rep)
}

// httptestNewServer serves s over httptest with ordered cleanup.
func httptestNewServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return hs
}

// scrapeCounter reads one counter family off the process-global
// registry (coordinator and in-process workers share it here, exactly
// like the single-binary segd deployment).
func scrapeCounter(t *testing.T, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	metrics.Default().WritePrometheus(&buf)
	samples, err := metrics.ParseText(&buf)
	if err != nil {
		t.Fatalf("parsing /metrics text: %v", err)
	}
	total := 0.0
	for _, s := range samples[name] {
		total += s.Value
	}
	return total
}

// waitProgress polls a run until at least min cells are done, so the
// coordinator kill lands genuinely mid-sweep.
func waitProgress(t *testing.T, base, id string, min int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		data, code := fetch(t, base+"/grids/"+id)
		if code == http.StatusOK {
			var st jobStatus
			if err := jsonUnmarshal(data, &st); err != nil {
				t.Fatal(err)
			}
			if st.Done >= min {
				return
			}
			if st.State == StateDone || st.State == StateFailed {
				t.Fatalf("run reached %s before the kill could land (done=%d)", st.State, st.Done)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never reached %d done cells", min)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// rebind re-listens on addr, retrying while the kernel releases it.
func rebind(t *testing.T, addr string) net.Listener {
	t.Helper()
	var l net.Listener
	var err error
	for i := 0; i < 300; i++ {
		if l, err = net.Listen("tcp", addr); err == nil {
			return l
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("rebinding %s: %v", addr, err)
	return nil
}

// TestClusterCoordinatorRestartRecovery is the coordinator-kill chaos
// e2e: a journaled coordinator is killed mid-sweep — workers mid-cell,
// fault-injecting transports active — and a fresh coordinator process
// (same journal, same store, same address) must resume the run and
// complete it with zero lost cells, zero duplicated cells, artifacts
// byte-identical to a single-process run, and the recovery/reconnect
// metrics advancing to match the injected outage.
func TestClusterCoordinatorRestartRecovery(t *testing.T) {
	const seed = 7
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "fabric.journal")
	st, err := gridseg.OpenStore(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}

	recoveredBefore := scrapeCounter(t, "fabric_recovered_cells_total")
	reconnectsBefore := scrapeCounter(t, "fabric_worker_reconnects_total")
	outagesBefore := scrapeCounter(t, "fabric_worker_outages_total")

	// Coordinator incarnation 1, on a listener whose address we control
	// so incarnation 2 can rebind it (workers reconnect to the same URL,
	// as they would to a restarted segd behind a stable host:port).
	j1, err := fabric.OpenJournal(journalPath, fabric.DefaultSyncBatch)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(Options{Store: st, Cluster: true, LeaseTTL: 300 * time.Millisecond, Journal: j1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l1.Addr().String()
	base := "http://" + addr
	hs1 := &http.Server{Handler: s1.Handler()}
	go hs1.Serve(l1)

	// Two workers that outlive both coordinator incarnations, leasing
	// through seeded fault-injecting transports. The runner is slowed so
	// the kill reliably catches cells in flight.
	transports := []*fabric.ChaosTransport{
		fabric.NewChaosTransport(404, http.DefaultTransport, 0.03, 0.03, 0.03),
		fabric.NewChaosTransport(505, http.DefaultTransport, 0.03, 0.03, 0.03),
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i, name := range []string{"ph-1", "ph-2"} {
		client := &http.Client{Transport: transports[i]}
		w := &fabric.Worker{
			Name:           name,
			Coordinator:    base + "/fabric",
			Client:         client,
			Store:          store.NewRemoteWith(base+"/objects", store.RemoteOptions{Client: client, Timeout: 2 * time.Second}),
			Poll:           20 * time.Millisecond,
			RequestTimeout: 2 * time.Second,
			BackoffBase:    20 * time.Millisecond,
			BackoffMax:     250 * time.Millisecond,
			Runner: func(j fabric.Job) ([]float64, error) {
				time.Sleep(60 * time.Millisecond)
				return gridseg.ComputeJob(j)
			},
			Logf: t.Logf,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	defer wg.Wait()
	defer cancel()

	status, code := submit(t, base, clusterSpec, seed)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	cells := status.Cells

	// Kill the coordinator once the sweep is genuinely under way:
	// some cells done, some leased, workers mid-computation.
	waitProgress(t, base, status.ID, 4)
	hs1.Close()
	s1.Close()
	if err := j1.Close(); err != nil {
		t.Fatalf("closing journal after kill: %v", err)
	}
	// Let the workers discover the outage and enter backoff.
	time.Sleep(400 * time.Millisecond)

	// Coordinator incarnation 2: same journal, same store, same address.
	// New must replay the journal and resume the run unprompted.
	j2, err := fabric.OpenJournal(journalPath, fabric.DefaultSyncBatch)
	if err != nil {
		t.Fatalf("reopening journal: %v", err)
	}
	s2, err := New(Options{Store: st, Cluster: true, LeaseTTL: 300 * time.Millisecond, Journal: j2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	l2 := rebind(t, addr)
	hs2 := &http.Server{Handler: s2.Handler()}
	go hs2.Serve(l2)
	var downOnce sync.Once
	shutdown2 := func() {
		downOnce.Do(func() {
			hs2.Close()
			s2.Close()
			j2.Close()
		})
	}
	t.Cleanup(shutdown2)

	final := waitDone(t, base, status.ID)
	if final.State != StateDone {
		t.Fatalf("resumed run state = %s (%s)", final.State, final.Error)
	}
	// Zero lost, zero duplicated: every cell accounted for exactly once.
	if final.Done != cells {
		t.Fatalf("done = %d, want %d", final.Done, cells)
	}
	if final.Cache.Hits+final.Cache.Misses != cells {
		t.Fatalf("cache hits %d + misses %d != %d cells", final.Cache.Hits, final.Cache.Misses, cells)
	}
	events := sseCellEvents(t, base+"/grids/"+status.ID+"/events")
	if len(events) != cells {
		t.Fatalf("SSE streamed %d cell events, want %d", len(events), cells)
	}
	seen := map[string]bool{}
	for _, ev := range events {
		id := cellIdentity(ev)
		if seen[id] {
			t.Fatalf("cell %s reported twice across the restart", id)
		}
		seen[id] = true
	}

	// Byte-identical artifacts despite the crash: the recovered run's
	// CSV and JSON equal a single-process RunGrid of the same inputs.
	wantCSV, wantJSON := localArtifacts(t, clusterSpec, seed)
	gotCSV, code := fetch(t, base+"/grids/"+status.ID+"/artifact.csv")
	if code != http.StatusOK || !bytes.Equal(gotCSV, wantCSV) {
		t.Fatalf("recovered CSV differs from single-process run (status %d)", code)
	}
	gotJSON, code := fetch(t, base+"/grids/"+status.ID+"/artifact.json")
	if code != http.StatusOK || !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("recovered JSON differs from single-process run (status %d)", code)
	}

	// The recovery actually recovered: the new table absorbed journaled
	// or store-reconciled cells instead of recomputing the whole grid,
	// and its status surfaces the recovery accounting.
	var fstatus struct {
		Metrics fabric.TableMetrics `json:"metrics"`
	}
	data, _ := fetch(t, base+"/fabric/status")
	if err := jsonUnmarshal(data, &fstatus); err != nil {
		t.Fatal(err)
	}
	if fstatus.Metrics.RecoveredRuns < 1 {
		t.Fatalf("recovered_runs = %d, want >= 1", fstatus.Metrics.RecoveredRuns)
	}
	if fstatus.Metrics.RecoveredCells < 4 {
		t.Fatalf("recovered_cells = %d, want >= 4 (at least the pre-kill completions)", fstatus.Metrics.RecoveredCells)
	}
	// Prometheus counters advanced to match the injected faults: the
	// recovered cells were counted, and each worker logged the outage
	// and its reconnection.
	if d := scrapeCounter(t, "fabric_recovered_cells_total") - recoveredBefore; d < 4 {
		t.Fatalf("fabric_recovered_cells_total advanced by %v, want >= 4", d)
	}
	if d := scrapeCounter(t, "fabric_worker_outages_total") - outagesBefore; d < 1 {
		t.Fatalf("fabric_worker_outages_total advanced by %v, want >= 1", d)
	}
	if d := scrapeCounter(t, "fabric_worker_reconnects_total") - reconnectsBefore; d < 1 {
		t.Fatalf("fabric_worker_reconnects_total advanced by %v, want >= 1", d)
	}
	faults := 0
	for _, tr := range transports {
		faults += tr.Faults()
	}
	if faults == 0 {
		t.Fatal("chaos schedule injected no faults; the restart was the only adversity")
	}
	t.Logf("restart chaos: %d faults injected, %d cells recovered", faults, fstatus.Metrics.RecoveredCells)

	// The finished run is retired from the journal: a third incarnation
	// would boot with nothing to resume.
	shutdown2()
	j3, err := fabric.OpenJournal(journalPath, fabric.DefaultSyncBatch)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if runs := j3.Runs(); len(runs) != 0 {
		t.Fatalf("journal still holds %d runs after completion: %+v", len(runs), runs)
	}
}

// TestClusterTokenAuth pins the shared-secret gate: without the token
// the fabric and object endpoints answer 401 and leak nothing, with it
// a worker completes a run end to end, and the public grid API stays
// open either way.
func TestClusterTokenAuth(t *testing.T) {
	const token = "sesame-cluster-secret"
	st := gridseg.NewMemoryStore()
	s, err := New(Options{Store: st, Cluster: true, LeaseTTL: time.Second, Token: token, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptestNewServer(t, s)

	// Tokenless and wrong-token callers are refused on both groups.
	for _, tc := range []struct{ name, header string }{
		{"no token", ""},
		{"wrong token", "Bearer not-the-secret"},
	} {
		req, _ := http.NewRequest(http.MethodPost, hs.URL+"/fabric/lease", bytes.NewReader([]byte(`{"worker":"x"}`)))
		if tc.header != "" {
			req.Header.Set("Authorization", tc.header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("%s lease status = %d, want 401", tc.name, resp.StatusCode)
		}
		key := store.CellSpec{Scope: "auth"}.Key()
		oreq, _ := http.NewRequest(http.MethodGet, hs.URL+"/objects/"+key, nil)
		if tc.header != "" {
			oreq.Header.Set("Authorization", tc.header)
		}
		oresp, err := http.DefaultClient.Do(oreq)
		if err != nil {
			t.Fatal(err)
		}
		oresp.Body.Close()
		if oresp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("%s object status = %d, want 401", tc.name, oresp.StatusCode)
		}
	}
	// The public grid API needs no token.
	if _, code := fetch(t, hs.URL+"/grids"); code != http.StatusOK {
		t.Fatalf("public list status = %d, want 200", code)
	}

	// An authenticated worker completes a real run end to end.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &fabric.Worker{
		Name:        "keyed",
		Coordinator: hs.URL + "/fabric",
		Store:       store.NewRemoteWith(hs.URL+"/objects", store.RemoteOptions{Token: token}),
		Runner:      gridseg.ComputeJob,
		Poll:        10 * time.Millisecond,
		Token:       token,
		Logf:        t.Logf,
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.Run(ctx)
	}()
	defer wg.Wait()
	defer cancel()

	status, code := submit(t, hs.URL, testSpec, 13)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	final := waitDone(t, hs.URL, status.ID)
	if final.State != StateDone {
		t.Fatalf("final state = %s (%s)", final.State, final.Error)
	}
}

// TestClusterJournalLifecycle pins the journal bookkeeping around a
// clean run: registration on submit, retirement on completion.
func TestClusterJournalLifecycle(t *testing.T) {
	const seed = 9
	dir := t.TempDir()
	st := gridseg.NewMemoryStore()
	// Pre-compute every cell so the run completes with no workers.
	if _, err := gridseg.RunGrid(testSpec, gridseg.GridOptions{Seed: seed, Store: st}); err != nil {
		t.Fatal(err)
	}
	j, err := fabric.OpenJournal(filepath.Join(dir, "fabric.journal"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	s, err := New(Options{Store: st, Cluster: true, LeaseTTL: time.Second, Journal: j, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptestNewServer(t, s)

	status, code := submit(t, hs.URL, testSpec, seed)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	final := waitDone(t, hs.URL, status.ID)
	if final.State != StateDone {
		t.Fatalf("final state = %s (%s)", final.State, final.Error)
	}
	if runs := j.Runs(); len(runs) != 0 {
		t.Fatalf("journal holds %d runs after a clean completion: %+v", len(runs), runs)
	}
}
