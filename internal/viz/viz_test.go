package viz

import (
	"bytes"
	"image/png"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/rng"
)

func TestRenderDimensionsAndPalette(t *testing.T) {
	l := grid.New(8, grid.Plus)
	img := Render(l, 1, 5, 3)
	b := img.Bounds()
	if b.Dx() != 24 || b.Dy() != 24 {
		t.Fatalf("bounds = %v, want 24x24", b)
	}
	// Monochromatic plus at threshold 5: everyone happy => green.
	r, g, bb, _ := img.At(0, 0).RGBA()
	hr, hg, hb, _ := HappyPlus.RGBA()
	if r != hr || g != hg || bb != hb {
		t.Fatal("all-plus lattice must render happy-plus green")
	}
}

func TestRenderUnhappyColors(t *testing.T) {
	// Single minus dissenter at thresh 5, w=1: the minus agent is
	// unhappy (yellow), its neighbors are happy plus (green).
	l := grid.New(9, grid.Plus)
	l.Set(geom.Point{X: 4, Y: 4}, grid.Minus)
	img := Render(l, 1, 5, 1)
	r, g, b, _ := img.At(4, 4).RGBA()
	ur, ug, ub, _ := UnhappyMinus.RGBA()
	if r != ur || g != ug || b != ub {
		t.Fatal("dissenter must render unhappy-minus yellow")
	}
}

func TestRenderScaleClamp(t *testing.T) {
	l := grid.New(4, grid.Plus)
	img := Render(l, 1, 1, 0) // scale clamped to 1
	if img.Bounds().Dx() != 4 {
		t.Fatal("scale 0 must clamp to 1")
	}
}

func TestWritePNGRoundTrip(t *testing.T) {
	l := grid.Random(16, 0.5, rng.New(1))
	var buf bytes.Buffer
	if err := WritePNG(&buf, l, 1, 5, 2); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 32 {
		t.Fatalf("decoded width = %d", img.Bounds().Dx())
	}
}

func TestSavePNG(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.png")
	l := grid.New(8, grid.Minus)
	if err := SavePNG(path, l, 1, 5, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || string(data[1:4]) != "PNG" {
		t.Fatal("not a PNG file")
	}
	if err := SavePNG(filepath.Join(dir, "missing", "out.png"), l, 1, 5, 1); err == nil {
		t.Fatal("want error for unwritable path")
	}
}

func TestASCII(t *testing.T) {
	l := grid.New(5, grid.Plus)
	l.Set(geom.Point{X: 2, Y: 2}, grid.Minus)
	s := ASCII(l, 1, 5)
	rows := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(rows) != 5 || len(rows[0]) != 5 {
		t.Fatalf("ASCII shape wrong: %q", s)
	}
	if rows[2][2] != 'm' {
		t.Fatalf("dissenter char = %c, want 'm'", rows[2][2])
	}
	if rows[0][0] != '#' {
		t.Fatalf("happy plus char = %c, want '#'", rows[0][0])
	}
	// At an absurd threshold everyone is unhappy: plus renders 'P'.
	s2 := ASCII(l, 1, 10)
	if s2[0] != 'P' {
		t.Fatalf("unhappy plus char = %c, want 'P'", s2[0])
	}
}
