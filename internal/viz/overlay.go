package viz

import (
	"image"
	"image/color"

	"gridseg/internal/geom"
	"gridseg/internal/grid"
)

// Overlay colors for structural annotations (firewalls, radical
// regions, probe regions).
var (
	MarkRed   = color.RGBA{R: 0xd0, G: 0x20, B: 0x20, A: 0xff}
	MarkBlack = color.RGBA{R: 0x10, G: 0x10, B: 0x10, A: 0xff}
)

// RenderWithMarks renders the configuration per Figure 1 and then
// paints the given lattice sites in the mark color — used to visualize
// firewall annuli, radical regions, and chemical circuits over the
// agent field.
func RenderWithMarks(l *grid.Lattice, w, thresh, scale int, marks []geom.Point, mark color.RGBA) image.Image {
	if scale < 1 {
		scale = 1
	}
	img := Render(l, w, thresh, scale).(*image.RGBA)
	tor := l.Torus()
	for _, p := range marks {
		q := tor.WrapPoint(p)
		for dy := 0; dy < scale; dy++ {
			for dx := 0; dx < scale; dx++ {
				img.SetRGBA(q.X*scale+dx, q.Y*scale+dy, mark)
			}
		}
	}
	return img
}
