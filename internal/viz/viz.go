// Package viz renders lattice configurations in the style of the
// paper's Figure 1: green and blue for happy (+1) and (-1) agents,
// white and yellow for unhappy (+1) and (-1) agents. PNG output uses
// only the standard library image stack; an ASCII renderer supports
// terminal inspection and golden tests.
package viz

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"os"
	"strings"

	"gridseg/internal/geom"
	"gridseg/internal/grid"
)

// The Figure 1 palette, plus a neutral grey for vacant sites (which
// the paper's figures never contain).
var (
	HappyPlus    = color.RGBA{R: 0x2e, G: 0x8b, B: 0x2e, A: 0xff} // green
	HappyMinus   = color.RGBA{R: 0x1f, G: 0x4f, B: 0xb4, A: 0xff} // blue
	UnhappyPlus  = color.RGBA{R: 0xff, G: 0xff, B: 0xff, A: 0xff} // white
	UnhappyMinus = color.RGBA{R: 0xf2, G: 0xd4, B: 0x2c, A: 0xff} // yellow
	Vacant       = color.RGBA{R: 0x88, G: 0x88, B: 0x88, A: 0xff} // grey
)

// happiness returns a per-site happy flag for the given horizon and
// threshold, computed directly from the configuration.
func happiness(l *grid.Lattice, w, thresh int) []bool {
	counts := l.WindowCounts(w)
	nbhd := geom.SquareSize(w)
	out := make([]bool, l.Sites())
	for i := range out {
		same := int(counts[i])
		if l.SpinAt(i) != grid.Plus {
			same = nbhd - same
		}
		out[i] = same >= thresh
	}
	return out
}

// Render draws the configuration as an image with the given integer
// pixel scale (>= 1), coloring by type and happiness per Figure 1.
func Render(l *grid.Lattice, w, thresh, scale int) image.Image {
	return RenderWith(l, happinessFunc(l, w, thresh), scale)
}

// happinessFunc adapts the classic (torus, global threshold) happiness
// computation to the predicate form RenderWith and ASCIIWith consume.
func happinessFunc(l *grid.Lattice, w, thresh int) func(int) bool {
	happy := happiness(l, w, thresh)
	return func(i int) bool { return happy[i] }
}

// RenderWith draws the configuration with an externally supplied
// happiness predicate — the scenario-aware entry point: engines pass
// their own Happy method, so open boundaries, vacancies, and per-site
// thresholds render faithfully. Vacant sites draw grey.
func RenderWith(l *grid.Lattice, happy func(int) bool, scale int) image.Image {
	if scale < 1 {
		scale = 1
	}
	n := l.N()
	img := image.NewRGBA(image.Rect(0, 0, n*scale, n*scale))
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			i := y*n + x
			var c color.RGBA
			switch {
			case l.SpinAt(i) == grid.None:
				c = Vacant
			case l.SpinAt(i) == grid.Plus && happy(i):
				c = HappyPlus
			case l.SpinAt(i) == grid.Plus:
				c = UnhappyPlus
			case happy(i):
				c = HappyMinus
			default:
				c = UnhappyMinus
			}
			for dy := 0; dy < scale; dy++ {
				for dx := 0; dx < scale; dx++ {
					img.SetRGBA(x*scale+dx, y*scale+dy, c)
				}
			}
		}
	}
	return img
}

// WritePNG encodes the configuration to PNG.
func WritePNG(out io.Writer, l *grid.Lattice, w, thresh, scale int) error {
	return png.Encode(out, Render(l, w, thresh, scale))
}

// SavePNG writes the configuration to a file.
func SavePNG(path string, l *grid.Lattice, w, thresh, scale int) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("viz: %w", err)
	}
	defer f.Close()
	if err := WritePNG(f, l, w, thresh, scale); err != nil {
		return fmt.Errorf("viz: encode %s: %w", path, err)
	}
	return f.Close()
}

// ASCII renders the configuration as text: '#' happy +1, '.' happy -1,
// 'P' unhappy +1, 'm' unhappy -1.
func ASCII(l *grid.Lattice, w, thresh int) string {
	return ASCIIWith(l, happinessFunc(l, w, thresh))
}

// ASCIIWith renders with an externally supplied happiness predicate
// (see RenderWith); vacant sites render as spaces.
func ASCIIWith(l *grid.Lattice, happy func(int) bool) string {
	n := l.N()
	var b strings.Builder
	b.Grow(n * (n + 1))
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			i := y*n + x
			switch {
			case l.SpinAt(i) == grid.None:
				b.WriteByte(' ')
			case l.SpinAt(i) == grid.Plus && happy(i):
				b.WriteByte('#')
			case l.SpinAt(i) == grid.Plus:
				b.WriteByte('P')
			case happy(i):
				b.WriteByte('.')
			default:
				b.WriteByte('m')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
