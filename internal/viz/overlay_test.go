package viz

import (
	"image"
	"testing"

	"gridseg/internal/geom"
	"gridseg/internal/grid"
)

func TestRenderWithMarks(t *testing.T) {
	l := grid.New(8, grid.Plus)
	marks := []geom.Point{{X: 1, Y: 1}, {X: -1, Y: -1}} // second wraps to (7,7)
	img := RenderWithMarks(l, 1, 5, 2, marks, MarkRed).(*image.RGBA)
	wantR, wantG, wantB, _ := MarkRed.RGBA()
	for _, q := range []geom.Point{{X: 1, Y: 1}, {X: 7, Y: 7}} {
		r, g, b, _ := img.At(q.X*2, q.Y*2).RGBA()
		if r != wantR || g != wantG || b != wantB {
			t.Fatalf("mark at %v not painted", q)
		}
	}
	// Unmarked cells keep the Figure 1 palette.
	r, g, b, _ := img.At(8, 8).RGBA()
	hr, hg, hb, _ := HappyPlus.RGBA()
	if r != hr || g != hg || b != hb {
		t.Fatal("unmarked cell color changed")
	}
}

func TestRenderWithMarksScaleClamp(t *testing.T) {
	l := grid.New(4, grid.Minus)
	img := RenderWithMarks(l, 1, 1, 0, []geom.Point{{X: 0, Y: 0}}, MarkBlack)
	if img.Bounds().Dx() != 4 {
		t.Fatal("scale must clamp to 1")
	}
}
