package store

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestKeyGolden pins the canonical encoding and SHA-256 keys of the
// cell-spec schema. These hashes are the durable contract of the
// result store: every cached result in every deployed store directory
// is addressed by them. If this test fails, the key schema changed and
// every cached result would be silently orphaned — either revert the
// change or bump SpecVersion (which orphans results *on purpose*) and
// update the goldens.
//
// The v1 -> v2 bump (deliberate, goldens regenerated) folded the
// topology scenario — boundary, rho, taudist — into the canonical
// form, so a torus result can never be served for an open-boundary
// cell and vice versa.
func TestKeyGolden(t *testing.T) {
	sweepCols := []string{
		"happy_frac", "unhappy", "iface_density", "mean_same_frac",
		"largest_frac", "magnetization", "mean_M", "flips", "fixated",
	}
	cases := []struct {
		spec      CellSpec
		canonical string
		key       string
	}{
		{
			spec:      CellSpec{Scope: "grid", Columns: sweepCols, Dynamic: "glauber", N: 96, W: 2, Tau: 0.42, P: 0.5, Rep: 0, Seed: 1},
			canonical: "gridseg/cell/v2|scope=grid|cols=happy_frac,unhappy,iface_density,mean_same_frac,largest_frac,magnetization,mean_M,flips,fixated|dyn=glauber|n=96|w=2|tau=0.42|p=0.5|b=torus|rho=0|taudist=global|xname=|x=0|rep=0|seed=1",
			key:       "eb0eaa1823b21ee9f9fce259f2489cb76f45974ff92ca0d6663231ec91057179",
		},
		{
			spec:      CellSpec{Scope: "grid", Columns: []string{"happy_frac"}, Dynamic: "kawasaki", N: 240, W: 4, Tau: 0.4375, P: 0.5, Rep: 3, Seed: 0xdeadbeefcafe},
			canonical: "gridseg/cell/v2|scope=grid|cols=happy_frac|dyn=kawasaki|n=240|w=4|tau=0.4375|p=0.5|b=torus|rho=0|taudist=global|xname=|x=0|rep=3|seed=244837814094590",
			key:       "bee0f470d1beb002e02b4b28673c83a6679889d087391fc220ec5c15c895f5f2",
		},
		{
			spec:      CellSpec{Scope: "E17", Columns: []string{"happy_frac", "flips"}, Dynamic: "glauber", N: 64, W: 1, Tau: 0.45, P: 0.55, ExtraName: "noise", Extra: 0.01, Rep: 7, Seed: 42},
			canonical: "gridseg/cell/v2|scope=E17|cols=happy_frac,flips|dyn=glauber|n=64|w=1|tau=0.45|p=0.55|b=torus|rho=0|taudist=global|xname=noise|x=0.01|rep=7|seed=42",
			key:       "acca85927aaed84a353217817c03c6dc7071b44bd304640e1bf10736089a32bf",
		},
		{
			spec:      CellSpec{},
			canonical: "gridseg/cell/v2|scope=|cols=|dyn=|n=0|w=0|tau=0|p=0|b=torus|rho=0|taudist=global|xname=|x=0|rep=0|seed=0",
			key:       "5c332d288ef8cd3b6f6c385cfb229aecae58d1444ff4ae47e226fef2f2fdebf0",
		},
		{
			spec:      CellSpec{Scope: "grid", Columns: []string{"happy_frac"}, Dynamic: "glauber", N: 64, W: 2, Tau: 0.42, P: 0.5, Boundary: "open", Rho: 0.05, TauDist: "mix:0.35,0.45:0.5", Rep: 1, Seed: 7},
			canonical: "gridseg/cell/v2|scope=grid|cols=happy_frac|dyn=glauber|n=64|w=2|tau=0.42|p=0.5|b=open|rho=0.05|taudist=mix:0.35,0.45:0.5|xname=|x=0|rep=1|seed=7",
			key:       "78579a4203ba4648cbbeb92ff7809a9027480fcbd50cc20e01bf3536a0806121",
		},
		{
			spec:      CellSpec{Scope: "grid", Columns: []string{"happy_frac"}, Dynamic: "move", N: 64, W: 2, Tau: 0.42, P: 0.5, Rho: 0.1, Rep: 0, Seed: 9},
			canonical: "gridseg/cell/v2|scope=grid|cols=happy_frac|dyn=move|n=64|w=2|tau=0.42|p=0.5|b=torus|rho=0.1|taudist=global|xname=|x=0|rep=0|seed=9",
			key:       "014aaf874fd8e97c2bda1f83382f18d3471c68858023dbcb8add23e7390734a9",
		},
	}
	for i, tc := range cases {
		if got := tc.spec.Canonical(); got != tc.canonical {
			t.Errorf("case %d: canonical changed:\n got  %s\n want %s", i, got, tc.canonical)
		}
		if got := tc.spec.Key(); got != tc.key {
			t.Errorf("case %d: key changed: got %s want %s", i, got, tc.key)
		}
	}
}

// TestKeyDistinguishesIdentity asserts every field of the spec feeds
// the key: cells differing in any single dimension must not share a
// cache slot.
func TestKeyDistinguishesIdentity(t *testing.T) {
	base := CellSpec{Scope: "s", Columns: []string{"a"}, Dynamic: "glauber", N: 10, W: 1, Tau: 0.4, P: 0.5, ExtraName: "x", Extra: 1, Rep: 0, Seed: 9}
	variants := []CellSpec{}
	for _, mut := range []func(*CellSpec){
		func(s *CellSpec) { s.Scope = "t" },
		func(s *CellSpec) { s.Columns = []string{"b"} },
		func(s *CellSpec) { s.Dynamic = "kawasaki" },
		func(s *CellSpec) { s.N = 11 },
		func(s *CellSpec) { s.W = 2 },
		func(s *CellSpec) { s.Tau = 0.41 },
		func(s *CellSpec) { s.P = 0.51 },
		func(s *CellSpec) { s.ExtraName = "y" },
		func(s *CellSpec) { s.Extra = 2 },
		func(s *CellSpec) { s.Rep = 1 },
		func(s *CellSpec) { s.Seed = 10 },
		func(s *CellSpec) { s.Boundary = "open" },
		func(s *CellSpec) { s.Rho = 0.05 },
		func(s *CellSpec) { s.TauDist = "mix:0.35,0.45:0.5" },
	} {
		v := base
		mut(&v)
		variants = append(variants, v)
	}
	seen := map[string]bool{base.Key(): true}
	for i, v := range variants {
		k := v.Key()
		if seen[k] {
			t.Errorf("variant %d collides: %s", i, v.Canonical())
		}
		seen[k] = true
	}
}

// testBackend is the shared conformance suite every Store backend must
// pass. open returns a fresh handle onto the same underlying substrate
// each call — the same Memory instance, the same directory, the same
// remote server — so the persistence subtest exercises a real
// close-and-reopen, not a fresh empty store.
func testBackend(t *testing.T, open func() Store) {
	t.Run("roundtrip", func(t *testing.T) {
		s := open()
		key := CellSpec{Scope: "rt", Seed: 1}.Key()
		if _, ok, err := s.Get(key); err != nil || ok {
			t.Fatalf("empty store Get = %v, %v", ok, err)
		}
		want := []float64{1.5, math.NaN(), -3, 0}
		if err := s.Put(key, want); err != nil {
			t.Fatal(err)
		}
		got, ok, err := s.Get(key)
		if err != nil || !ok {
			t.Fatalf("Get after Put = %v, %v", ok, err)
		}
		if len(got) != len(want) {
			t.Fatalf("got %v", got)
		}
		for i := range want {
			if math.IsNaN(want[i]) != math.IsNaN(got[i]) || (!math.IsNaN(want[i]) && want[i] != got[i]) {
				t.Fatalf("value %d: got %v want %v (NaN must survive the round trip)", i, got[i], want[i])
			}
		}
		// Idempotent overwrite.
		if err := s.Put(key, want); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("persistence", func(t *testing.T) {
		key := CellSpec{Scope: "persist", Seed: 2}.Key()
		if err := open().Put(key, []float64{42}); err != nil {
			t.Fatal(err)
		}
		got, ok, err := open().Get(key)
		if err != nil || !ok || got[0] != 42 {
			t.Fatalf("reopened store Get = %v, %v, %v", got, ok, err)
		}
	})
	t.Run("concurrent", func(t *testing.T) {
		s := open()
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				key := CellSpec{Scope: "conc", Rep: i % 4}.Key()
				for j := 0; j < 20; j++ {
					if err := s.Put(key, []float64{float64(i % 4)}); err != nil {
						t.Error(err)
						return
					}
					v, ok, err := s.Get(key)
					if err != nil || !ok || v[0] != float64(i%4) {
						t.Errorf("Get = %v, %v, %v", v, ok, err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
	})
	t.Run("concurrent put identical bytes", func(t *testing.T) {
		// Last-write-equivalence: cells are content-addressed, so every
		// writer racing on one key carries the same deterministic bytes
		// and any interleaving must leave exactly those bytes readable.
		key := CellSpec{Scope: "lwe", Seed: 3}.Key()
		want := []float64{0.25, math.NaN(), 7, -1.5}
		var wg sync.WaitGroup
		for i := 0; i < 12; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := open()
				for j := 0; j < 10; j++ {
					if err := s.Put(key, want); err != nil {
						t.Error(err)
						return
					}
					got, ok, err := s.Get(key)
					if err != nil || !ok || len(got) != len(want) {
						t.Errorf("Get = %v, %v, %v", got, ok, err)
						return
					}
					for k := range want {
						if math.IsNaN(want[k]) != math.IsNaN(got[k]) || (!math.IsNaN(want[k]) && want[k] != got[k]) {
							t.Errorf("value %d torn: got %v want %v", k, got[k], want[k])
							return
						}
					}
				}
			}()
		}
		wg.Wait()
	})
}

// TestBackendContract runs the conformance suite against every
// backend: in-process, file-backed, and remote (an HTTP client over
// the object endpoint, backed by a Dir — the cluster deployment
// shape).
func TestBackendContract(t *testing.T) {
	t.Run("memory", func(t *testing.T) {
		m := NewMemory()
		testBackend(t, func() Store { return m })
	})
	t.Run("dir", func(t *testing.T) {
		root := filepath.Join(t.TempDir(), "cache")
		testBackend(t, func() Store {
			d, err := Open(root)
			if err != nil {
				t.Fatal(err)
			}
			return d
		})
	})
	t.Run("remote", func(t *testing.T) {
		d, err := Open(filepath.Join(t.TempDir(), "cache"))
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(ObjectHandler(d))
		defer srv.Close()
		testBackend(t, func() Store { return NewRemote(srv.URL, srv.Client()) })
	})
}

// malformedKeys are inputs validKey must reject on every strict
// backend: path traversal and length confusion must never reach the
// filesystem or the wire.
var malformedKeys = []string{"", "abc", "../../../../etc/passwd", string(make([]byte, 64))}

func TestDirRejectsMalformedKeys(t *testing.T) {
	d, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range malformedKeys {
		if err := d.Put(key, []float64{1}); err == nil {
			t.Errorf("Put(%q) must fail", key)
		}
		if _, _, err := d.Get(key); err == nil {
			t.Errorf("Get(%q) must fail", key)
		}
	}
}

func TestRemoteRejectsMalformedKeys(t *testing.T) {
	// The handler must reject bad keys on its own: a non-Remote client
	// can hit the endpoint directly.
	srv := httptest.NewServer(ObjectHandler(NewMemory()))
	defer srv.Close()
	r := NewRemote(srv.URL, srv.Client())
	for _, key := range malformedKeys {
		if err := r.Put(key, []float64{1}); err == nil {
			t.Errorf("Remote.Put(%q) must fail", key)
		}
		if _, _, err := r.Get(key); err == nil {
			t.Errorf("Remote.Get(%q) must fail", key)
		}
	}
	// Server-side validation, bypassing the client's validKey check.
	resp, err := srv.Client().Get(srv.URL + "/not-a-key")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET bad key = %d, want 400", resp.StatusCode)
	}
}

func TestDirCorruptObject(t *testing.T) {
	d, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key := CellSpec{Scope: "corrupt"}.Key()
	if err := d.Put(key, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.path(key), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Get(key); err == nil {
		t.Fatal("corrupt object must surface an error, not a silent miss")
	}
}

// TestRemoteCorruptObject pins that corruption crosses the wire as an
// error: a torn object behind the server, and a confused server
// responding with the wrong key, must both fail the remote Get rather
// than degrade into a silent miss or a wrong value.
func TestRemoteCorruptObject(t *testing.T) {
	d, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ObjectHandler(d))
	defer srv.Close()
	r := NewRemote(srv.URL, srv.Client())

	key := CellSpec{Scope: "corrupt-remote"}.Key()
	if err := r.Put(key, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.path(key), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Get(key); err == nil {
		t.Fatal("corrupt object behind the server must surface an error")
	}

	// A server that answers with a different object's key.
	wrong := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintf(w, `{"key":%q,"values":[1]}`, CellSpec{Scope: "other"}.Key())
	}))
	defer wrong.Close()
	if _, _, err := NewRemote(wrong.URL, wrong.Client()).Get(key); err == nil {
		t.Fatal("key-mismatched response must surface an error")
	}
}

// TestDirLenReopen pins the cached-count semantics of Dir.Len: O(1)
// after the first scan, exact for this handle's own writes, and
// refreshed by reopening the store — the cross-process contract, since
// another process's writes land in the directory but not in this
// handle's counter.
func TestDirLenReopen(t *testing.T) {
	root := filepath.Join(t.TempDir(), "cache")
	d1, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	put := func(d *Dir, rep int) {
		t.Helper()
		if err := d.Put(CellSpec{Scope: "len", Rep: rep}.Key(), []float64{float64(rep)}); err != nil {
			t.Fatal(err)
		}
	}
	put(d1, 0)
	put(d1, 1)
	if n, err := d1.Len(); err != nil || n != 2 {
		t.Fatalf("d1.Len = %d, %v, want 2", n, err)
	}
	// Writes through this handle keep the cached count exact, and
	// overwrites must not inflate it.
	put(d1, 2)
	put(d1, 2)
	if n, err := d1.Len(); err != nil || n != 3 {
		t.Fatalf("d1.Len after put = %d, %v, want 3", n, err)
	}

	// A second handle over the same directory ("another process")
	// scans the current state on its first Len...
	d2, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := d2.Len(); err != nil || n != 3 {
		t.Fatalf("d2.Len = %d, %v, want 3", n, err)
	}
	// ...but does not observe d1's later writes until reopened: the
	// count is a per-handle snapshot plus own writes.
	put(d1, 3)
	if n, err := d2.Len(); err != nil || n != 3 {
		t.Fatalf("d2.Len after foreign put = %d, %v, want stale 3", n, err)
	}
	d3, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := d3.Len(); err != nil || n != 4 {
		t.Fatalf("d3.Len = %d, %v, want 4", n, err)
	}
}

// TestDirLenConcurrent hammers Len against concurrent Puts of fresh
// keys (run under -race): the count must end exact, with no torn or
// double-counted increments.
func TestDirLenConcurrent(t *testing.T) {
	d, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := d.Len(); err != nil || n != 0 {
		t.Fatalf("Len = %d, %v", n, err)
	}
	const writers, perWriter = 8, 16
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				key := CellSpec{Scope: "lenrace", Rep: i*perWriter + j}.Key()
				if err := d.Put(key, []float64{1}); err != nil {
					t.Error(err)
					return
				}
				if _, err := d.Len(); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if n, err := d.Len(); err != nil || n != writers*perWriter {
		t.Fatalf("final Len = %d, %v, want %d", n, err, writers*perWriter)
	}
}
