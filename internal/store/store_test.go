package store

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestKeyGolden pins the canonical encoding and SHA-256 keys of the
// cell-spec schema. These hashes are the durable contract of the
// result store: every cached result in every deployed store directory
// is addressed by them. If this test fails, the key schema changed and
// every cached result would be silently orphaned — either revert the
// change or bump SpecVersion (which orphans results *on purpose*) and
// update the goldens.
//
// The v1 -> v2 bump (deliberate, goldens regenerated) folded the
// topology scenario — boundary, rho, taudist — into the canonical
// form, so a torus result can never be served for an open-boundary
// cell and vice versa.
func TestKeyGolden(t *testing.T) {
	sweepCols := []string{
		"happy_frac", "unhappy", "iface_density", "mean_same_frac",
		"largest_frac", "magnetization", "mean_M", "flips", "fixated",
	}
	cases := []struct {
		spec      CellSpec
		canonical string
		key       string
	}{
		{
			spec:      CellSpec{Scope: "grid", Columns: sweepCols, Dynamic: "glauber", N: 96, W: 2, Tau: 0.42, P: 0.5, Rep: 0, Seed: 1},
			canonical: "gridseg/cell/v2|scope=grid|cols=happy_frac,unhappy,iface_density,mean_same_frac,largest_frac,magnetization,mean_M,flips,fixated|dyn=glauber|n=96|w=2|tau=0.42|p=0.5|b=torus|rho=0|taudist=global|xname=|x=0|rep=0|seed=1",
			key:       "eb0eaa1823b21ee9f9fce259f2489cb76f45974ff92ca0d6663231ec91057179",
		},
		{
			spec:      CellSpec{Scope: "grid", Columns: []string{"happy_frac"}, Dynamic: "kawasaki", N: 240, W: 4, Tau: 0.4375, P: 0.5, Rep: 3, Seed: 0xdeadbeefcafe},
			canonical: "gridseg/cell/v2|scope=grid|cols=happy_frac|dyn=kawasaki|n=240|w=4|tau=0.4375|p=0.5|b=torus|rho=0|taudist=global|xname=|x=0|rep=3|seed=244837814094590",
			key:       "bee0f470d1beb002e02b4b28673c83a6679889d087391fc220ec5c15c895f5f2",
		},
		{
			spec:      CellSpec{Scope: "E17", Columns: []string{"happy_frac", "flips"}, Dynamic: "glauber", N: 64, W: 1, Tau: 0.45, P: 0.55, ExtraName: "noise", Extra: 0.01, Rep: 7, Seed: 42},
			canonical: "gridseg/cell/v2|scope=E17|cols=happy_frac,flips|dyn=glauber|n=64|w=1|tau=0.45|p=0.55|b=torus|rho=0|taudist=global|xname=noise|x=0.01|rep=7|seed=42",
			key:       "acca85927aaed84a353217817c03c6dc7071b44bd304640e1bf10736089a32bf",
		},
		{
			spec:      CellSpec{},
			canonical: "gridseg/cell/v2|scope=|cols=|dyn=|n=0|w=0|tau=0|p=0|b=torus|rho=0|taudist=global|xname=|x=0|rep=0|seed=0",
			key:       "5c332d288ef8cd3b6f6c385cfb229aecae58d1444ff4ae47e226fef2f2fdebf0",
		},
		{
			spec:      CellSpec{Scope: "grid", Columns: []string{"happy_frac"}, Dynamic: "glauber", N: 64, W: 2, Tau: 0.42, P: 0.5, Boundary: "open", Rho: 0.05, TauDist: "mix:0.35,0.45:0.5", Rep: 1, Seed: 7},
			canonical: "gridseg/cell/v2|scope=grid|cols=happy_frac|dyn=glauber|n=64|w=2|tau=0.42|p=0.5|b=open|rho=0.05|taudist=mix:0.35,0.45:0.5|xname=|x=0|rep=1|seed=7",
			key:       "78579a4203ba4648cbbeb92ff7809a9027480fcbd50cc20e01bf3536a0806121",
		},
		{
			spec:      CellSpec{Scope: "grid", Columns: []string{"happy_frac"}, Dynamic: "move", N: 64, W: 2, Tau: 0.42, P: 0.5, Rho: 0.1, Rep: 0, Seed: 9},
			canonical: "gridseg/cell/v2|scope=grid|cols=happy_frac|dyn=move|n=64|w=2|tau=0.42|p=0.5|b=torus|rho=0.1|taudist=global|xname=|x=0|rep=0|seed=9",
			key:       "014aaf874fd8e97c2bda1f83382f18d3471c68858023dbcb8add23e7390734a9",
		},
	}
	for i, tc := range cases {
		if got := tc.spec.Canonical(); got != tc.canonical {
			t.Errorf("case %d: canonical changed:\n got  %s\n want %s", i, got, tc.canonical)
		}
		if got := tc.spec.Key(); got != tc.key {
			t.Errorf("case %d: key changed: got %s want %s", i, got, tc.key)
		}
	}
}

// TestKeyDistinguishesIdentity asserts every field of the spec feeds
// the key: cells differing in any single dimension must not share a
// cache slot.
func TestKeyDistinguishesIdentity(t *testing.T) {
	base := CellSpec{Scope: "s", Columns: []string{"a"}, Dynamic: "glauber", N: 10, W: 1, Tau: 0.4, P: 0.5, ExtraName: "x", Extra: 1, Rep: 0, Seed: 9}
	variants := []CellSpec{}
	for _, mut := range []func(*CellSpec){
		func(s *CellSpec) { s.Scope = "t" },
		func(s *CellSpec) { s.Columns = []string{"b"} },
		func(s *CellSpec) { s.Dynamic = "kawasaki" },
		func(s *CellSpec) { s.N = 11 },
		func(s *CellSpec) { s.W = 2 },
		func(s *CellSpec) { s.Tau = 0.41 },
		func(s *CellSpec) { s.P = 0.51 },
		func(s *CellSpec) { s.ExtraName = "y" },
		func(s *CellSpec) { s.Extra = 2 },
		func(s *CellSpec) { s.Rep = 1 },
		func(s *CellSpec) { s.Seed = 10 },
		func(s *CellSpec) { s.Boundary = "open" },
		func(s *CellSpec) { s.Rho = 0.05 },
		func(s *CellSpec) { s.TauDist = "mix:0.35,0.45:0.5" },
	} {
		v := base
		mut(&v)
		variants = append(variants, v)
	}
	seen := map[string]bool{base.Key(): true}
	for i, v := range variants {
		k := v.Key()
		if seen[k] {
			t.Errorf("variant %d collides: %s", i, v.Canonical())
		}
		seen[k] = true
	}
}

// storeImpls runs a subtest against each Store backend.
func storeImpls(t *testing.T, f func(t *testing.T, s Store)) {
	t.Run("memory", func(t *testing.T) { f(t, NewMemory()) })
	t.Run("dir", func(t *testing.T) {
		d, err := Open(filepath.Join(t.TempDir(), "cache"))
		if err != nil {
			t.Fatal(err)
		}
		f(t, d)
	})
}

func TestRoundTrip(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		key := CellSpec{Scope: "rt", Seed: 1}.Key()
		if _, ok, err := s.Get(key); err != nil || ok {
			t.Fatalf("empty store Get = %v, %v", ok, err)
		}
		want := []float64{1.5, math.NaN(), -3, 0}
		if err := s.Put(key, want); err != nil {
			t.Fatal(err)
		}
		got, ok, err := s.Get(key)
		if err != nil || !ok {
			t.Fatalf("Get after Put = %v, %v", ok, err)
		}
		if len(got) != len(want) {
			t.Fatalf("got %v", got)
		}
		for i := range want {
			if math.IsNaN(want[i]) != math.IsNaN(got[i]) || (!math.IsNaN(want[i]) && want[i] != got[i]) {
				t.Fatalf("value %d: got %v want %v (NaN must survive the round trip)", i, got[i], want[i])
			}
		}
		// Idempotent overwrite.
		if err := s.Put(key, want); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDirPersistsAcrossOpens(t *testing.T) {
	root := filepath.Join(t.TempDir(), "cache")
	d1, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	key := CellSpec{Scope: "persist", Seed: 2}.Key()
	if err := d1.Put(key, []float64{42}); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := d2.Get(key)
	if err != nil || !ok || got[0] != 42 {
		t.Fatalf("reopened store Get = %v, %v, %v", got, ok, err)
	}
	if n, err := d2.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v", n, err)
	}
}

func TestDirRejectsMalformedKeys(t *testing.T) {
	d, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "abc", "../../../../etc/passwd", string(make([]byte, 64))} {
		if err := d.Put(key, []float64{1}); err == nil {
			t.Errorf("Put(%q) must fail", key)
		}
		if _, _, err := d.Get(key); err == nil {
			t.Errorf("Get(%q) must fail", key)
		}
	}
}

func TestDirCorruptObject(t *testing.T) {
	d, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key := CellSpec{Scope: "corrupt"}.Key()
	if err := d.Put(key, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.path(key), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Get(key); err == nil {
		t.Fatal("corrupt object must surface an error, not a silent miss")
	}
}

func TestConcurrentAccess(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				key := CellSpec{Scope: "conc", Rep: i % 4}.Key()
				for j := 0; j < 20; j++ {
					if err := s.Put(key, []float64{float64(i % 4)}); err != nil {
						t.Error(err)
						return
					}
					v, ok, err := s.Get(key)
					if err != nil || !ok || v[0] != float64(i%4) {
						t.Errorf("Get = %v, %v, %v", v, ok, err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
	})
}
