package store

import (
	"time"

	"gridseg/internal/metrics"
)

// The store's instruments live on the default registry so every
// process role — single-node segd, coordinator, worker — exports the
// same metric names from whichever backends it happens to wire
// together. On a worker the Remote backend's samples ARE the cache hit
// rate the coordinator's dashboard wants, because workers probe the
// shared store before computing.
var (
	storeGets = metrics.Default().NewCounterVec(
		"gridseg_store_gets_total",
		"Store Get operations by result (hit, miss, error), across all backends.",
		"result")
	storeGetHit   = storeGets.WithLabel("hit")
	storeGetMiss  = storeGets.WithLabel("miss")
	storeGetError = storeGets.WithLabel("error")

	storePuts = metrics.Default().NewCounterVec(
		"gridseg_store_puts_total",
		"Store Put operations by result (ok, error), across all backends.",
		"result")
	storePutOK    = storePuts.WithLabel("ok")
	storePutError = storePuts.WithLabel("error")

	storeGetSeconds = metrics.Default().NewHistogram(
		"gridseg_store_get_seconds",
		"Latency of store Get operations in seconds.", nil)
	storePutSeconds = metrics.Default().NewHistogram(
		"gridseg_store_put_seconds",
		"Latency of store Put operations in seconds.", nil)
)

// observeGet records one Get outcome; it is deferred by the backends
// with pointers to their named results so the classification happens
// after the body has decided hit/miss/error.
func observeGet(start time.Time, ok *bool, err *error) {
	storeGetSeconds.Observe(time.Since(start).Seconds())
	switch {
	case *err != nil:
		storeGetError.Inc()
	case *ok:
		storeGetHit.Inc()
	default:
		storeGetMiss.Inc()
	}
}

// observePut records one Put outcome.
func observePut(start time.Time, err *error) {
	storePutSeconds.Observe(time.Since(start).Seconds())
	if *err != nil {
		storePutError.Inc()
	} else {
		storePutOK.Inc()
	}
}
