package store

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// maxObjectBytes bounds a decoded object body. A cell object is a key
// plus a handful of floats — a few hundred bytes — so 1 MiB is pure
// headroom against a confused or hostile peer.
const maxObjectBytes = 1 << 20

// Remote is a Backend served over HTTP by another process — in the
// distributed fabric, the coordinator's object endpoint backed by its
// local Dir. The wire format is exactly the on-disk object shape
// ({"key":..., "values":[...]} with NaN as null), so a remote Get
// returns byte-identical vectors to a local one and the golden key
// schema is preserved end to end.
//
// Remote performs no internal retries: a transport failure surfaces as
// an error and the caller (the batch engine's fail-soft storeGuard, or
// the fabric worker's retry loop) decides policy. Every request runs
// under a per-request deadline so a dead server cannot hang a caller
// that holds no deadline of its own. It is safe for concurrent use;
// http.Client pools connections internally.
type Remote struct {
	base    string
	client  *http.Client
	timeout time.Duration
	token   string
}

// RemoteOptions tunes a Remote beyond its base URL.
type RemoteOptions struct {
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
	// Timeout bounds each Get/Put round trip; zero means 30s.
	Timeout time.Duration
	// Token, when non-empty, is sent as an "Authorization: Bearer"
	// header, matching the serving coordinator's -token.
	Token string
}

// NewRemote returns a Backend talking to the object endpoint rooted at
// base (e.g. "http://coordinator:8080/objects"). A nil client means
// http.DefaultClient.
func NewRemote(base string, client *http.Client) *Remote {
	return NewRemoteWith(base, RemoteOptions{Client: client})
}

// NewRemoteWith is NewRemote with explicit options.
func NewRemoteWith(base string, opt RemoteOptions) *Remote {
	client := opt.Client
	if client == nil {
		client = http.DefaultClient
	}
	timeout := opt.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &Remote{
		base:    strings.TrimRight(base, "/"),
		client:  client,
		timeout: timeout,
		token:   opt.Token,
	}
}

// newRequest builds one deadline-bounded object request. The returned
// cancel must be held until the response body has been consumed.
func (r *Remote) newRequest(method, key string, body io.Reader) (*http.Request, context.CancelFunc, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
	req, err := http.NewRequestWithContext(ctx, method, r.base+"/"+key, body)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	if r.token != "" {
		req.Header.Set("Authorization", "Bearer "+r.token)
	}
	return req, cancel, nil
}

// Get implements Backend. A 404 is a miss, not an error; a response
// whose object does not round-trip (bad JSON, key mismatch) is
// reported as corruption, mirroring Dir.Get.
func (r *Remote) Get(key string) (values []float64, ok bool, err error) {
	defer observeGet(time.Now(), &ok, &err)
	if !validKey(key) {
		return nil, false, fmt.Errorf("store: malformed key %q", key)
	}
	req, cancel, err := r.newRequest(http.MethodGet, key, nil)
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	defer cancel()
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("store: remote get: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("store: remote get %s: %s", key, httpError(resp))
	}
	var obj object
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxObjectBytes)).Decode(&obj); err != nil {
		return nil, false, fmt.Errorf("store: corrupt remote object %s: %w", key, err)
	}
	if obj.Key != key {
		return nil, false, fmt.Errorf("store: remote object %s holds key %s", key, obj.Key)
	}
	out := make([]float64, len(obj.Values))
	for i, v := range obj.Values {
		out[i] = float64(v)
	}
	return out, true, nil
}

// Put implements Backend.
func (r *Remote) Put(key string, values []float64) (err error) {
	defer observePut(time.Now(), &err)
	if !validKey(key) {
		return fmt.Errorf("store: malformed key %q", key)
	}
	obj := object{Key: key, Values: make([]nanFloat, len(values))}
	for i, v := range values {
		obj.Values[i] = nanFloat(v)
	}
	data, err := json.Marshal(obj)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	req, cancel, err := r.newRequest(http.MethodPut, key, bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer cancel()
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("store: remote put: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("store: remote put %s: %s", key, httpError(resp))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// httpError summarizes a non-success response: status line plus the
// first line of the body, which our handlers fill with the error text.
func httpError(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	msg := strings.TrimSpace(string(body))
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	if msg == "" {
		return resp.Status
	}
	return resp.Status + ": " + msg
}

// ObjectHandler serves the object wire protocol over any Backend. It
// is the server half of Remote: GET /{key} returns the object (404 on
// miss), PUT /{key} stores it (204). Keys are validated on both sides,
// and a backend error — including corrupt-object detection in Dir —
// surfaces as a 500 whose body carries the error text, so the failure
// mode crosses the wire instead of degrading into a silent miss.
func ObjectHandler(b Backend) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !validKey(key) {
			http.Error(w, fmt.Sprintf("malformed key %q", key), http.StatusBadRequest)
			return
		}
		values, ok, err := b.Get(key)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if !ok {
			http.Error(w, "no such object", http.StatusNotFound)
			return
		}
		obj := object{Key: key, Values: make([]nanFloat, len(values))}
		for i, v := range values {
			obj.Values[i] = nanFloat(v)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(obj)
	})
	mux.HandleFunc("PUT /{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !validKey(key) {
			http.Error(w, fmt.Sprintf("malformed key %q", key), http.StatusBadRequest)
			return
		}
		var obj object
		if err := json.NewDecoder(io.LimitReader(r.Body, maxObjectBytes)).Decode(&obj); err != nil {
			http.Error(w, fmt.Sprintf("bad object body: %v", err), http.StatusBadRequest)
			return
		}
		if obj.Key != key {
			http.Error(w, fmt.Sprintf("object body holds key %s", obj.Key), http.StatusBadRequest)
			return
		}
		values := make([]float64, len(obj.Values))
		for i, v := range obj.Values {
			values[i] = float64(v)
		}
		if err := b.Put(key, values); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}
