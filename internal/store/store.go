// Package store is the content-addressed result cache of the sweep
// pipeline: it maps the canonical, versioned identity of one simulated
// grid cell — its parameters, its derived random seed, and the metric
// columns it was measured under — to the cell's metric vector.
//
// Determinism makes the cache sound: a cell's result is a pure function
// of its CellSpec, so a stored value can be served forever without
// recomputation, to any client that asks for the same cell — the batch
// engine (internal/batch), the sweep CLI (cmd/sweep -cache), and the
// HTTP service (cmd/segd) all share one store. The key schema is
// versioned by SpecVersion and pinned by a golden test: accidentally
// changing the canonical encoding would silently orphan every cached
// result, so any intentional change must bump the version.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SpecVersion tags the canonical cell-key encoding. Bump it whenever
// the encoding, the seed-derivation scheme, or the semantics of a
// stored metric vector change: a bump orphans every cached result on
// purpose, instead of serving stale values under a reused key.
//
// v2 folds the topology scenario (boundary, rho, taudist) into the
// canonical form, so an open-boundary, vacancy, or heterogeneous-tau
// cell can never alias the torus/full-occupancy/global-tau cell with
// the same classic parameters.
const SpecVersion = "v2"

// CellSpec is the complete identity of one cached cell result. Two
// cells with equal CellSpecs compute byte-identical metric vectors, no
// matter which grid, process, or machine runs them.
//
// Scope and Columns belong to the identity because the metric vector's
// meaning depends on which runner measured it: the same parameter
// point measured by two experiments must never share a cache slot.
// Seed is the cell's fully derived random seed (root seed, scope, and
// cell parameters already folded in — see internal/batch.CellSeed), so
// replicates and root seeds are distinguished through it.
type CellSpec struct {
	Scope     string
	Columns   []string
	Dynamic   string
	N, W      int
	Tau, P    float64
	ExtraName string
	Extra     float64
	Rep       int
	Seed      uint64
	// Scenario identity: the lattice boundary condition ("" and
	// "torus" are synonymous), the vacancy fraction, and the canonical
	// per-site intolerance distribution spec ("" and "global" are
	// synonymous). Zero values render as the canonical defaults, so
	// pre-scenario call sites produce well-formed v2 keys.
	Boundary string
	Rho      float64
	TauDist  string
}

// Canonical renders the spec in the versioned canonical form that is
// hashed into the store key. Floats use Go's shortest exact 'g'
// formatting, so equal float64 values always render identically.
func (s CellSpec) Canonical() string {
	boundary := s.Boundary
	if boundary == "" {
		boundary = "torus"
	}
	taudist := s.TauDist
	if taudist == "" {
		taudist = "global"
	}
	var b strings.Builder
	b.WriteString("gridseg/cell/")
	b.WriteString(SpecVersion)
	fmt.Fprintf(&b, "|scope=%s|cols=%s|dyn=%s|n=%d|w=%d|tau=%s|p=%s|b=%s|rho=%s|taudist=%s|xname=%s|x=%s|rep=%d|seed=%d",
		s.Scope, strings.Join(s.Columns, ","), s.Dynamic, s.N, s.W,
		g(s.Tau), g(s.P), boundary, g(s.Rho), taudist,
		s.ExtraName, g(s.Extra), s.Rep, s.Seed)
	return b.String()
}

// Key returns the content address of the spec: the hex SHA-256 of its
// canonical form.
func (s CellSpec) Key() string {
	h := sha256.Sum256([]byte(s.Canonical()))
	return hex.EncodeToString(h[:])
}

// g renders a float at full precision (shortest exact form).
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Backend is the key-value contract shared by every cache backend:
// in-process (Memory), file-backed (Dir), and remote (Remote).
// Implementations must be safe for concurrent use: the batch engine
// probes and fills the store from its worker goroutines, and in
// cluster mode many worker processes share one backend.
//
// Because keys are content addresses of deterministic computations,
// every backend inherits last-write-equivalence for free: two writers
// racing on one key are writing identical bytes, so Put order never
// matters and overwriting is idempotent.
type Backend interface {
	// Get returns the metric vector stored under key, reporting whether
	// it exists. A missing key is not an error.
	Get(key string) ([]float64, bool, error)
	// Put stores the metric vector under key. Overwriting an existing
	// key with the same values is legal and idempotent.
	Put(key string, values []float64) error
}

// Store is the historical name of the backend contract, kept as an
// alias so existing call sites read naturally.
type Store = Backend

// Memory is an in-process Store, useful for tests and for servers that
// do not need persistence.
type Memory struct {
	mu sync.Mutex
	m  map[string][]float64
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory { return &Memory{m: map[string][]float64{}} }

// Get implements Store.
func (s *Memory) Get(key string) (values []float64, ok bool, err error) {
	defer observeGet(time.Now(), &ok, &err)
	s.mu.Lock()
	defer s.mu.Unlock()
	v, found := s.m[key]
	if !found {
		return nil, false, nil
	}
	out := make([]float64, len(v))
	copy(out, v)
	return out, true, nil
}

// Put implements Store.
func (s *Memory) Put(key string, values []float64) (err error) {
	defer observePut(time.Now(), &err)
	v := make([]float64, len(values))
	copy(v, values)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = v
	return nil
}

// Len returns the number of cached cells.
func (s *Memory) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Dir is a file-backed Store rooted at a directory. Each cell lives in
// its own small JSON object file under objects/<key[:2]>/<key[2:]>,
// written atomically (unique temp file + rename), so concurrent
// writers — even across processes sharing the store, like cmd/segd and
// cmd/sweep -cache — never expose a torn object. The object files need
// no locking: they are immutable once renamed into place, and when two
// writers race on one key the loser's rename just reinstalls the same
// deterministic bytes. The mutex only guards the cached object count
// maintained for Len.
type Dir struct {
	root string

	mu      sync.Mutex
	counted bool // count is valid (Len has scanned once)
	count   int
}

// staleTmpAge is how old a *.tmp staging file must be before Open
// treats it as crash residue. A live writer holds its staging file for
// the milliseconds between CreateTemp and rename, so anything an hour
// old was abandoned by a killed process; the margin keeps a concurrent
// opener (the store directory is shared across processes) from
// sweeping a staging file out from under a live writer.
const staleTmpAge = time.Hour

// Open opens (creating if needed) a file-backed store rooted at dir.
// Stale *.tmp staging files — the residue of a writer killed between
// CreateTemp and rename — are swept on open: they were never visible
// to readers (Get and Len ignore them), so removing them is always
// safe, and leaving them would slowly leak disk across crash/restart
// cycles.
func Open(dir string) (*Dir, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := sweepTmp(filepath.Join(dir, "objects"), time.Now().Add(-staleTmpAge)); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Dir{root: dir}, nil
}

// sweepTmp removes staging files last modified before cutoff under the
// objects tree. Removal races with another sweeping process are
// tolerated, but any other failure surfaces: a store that cannot clean
// itself probably cannot write.
func sweepTmp(objects string, cutoff time.Time) error {
	return filepath.WalkDir(objects, func(path string, e os.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if e.IsDir() || !strings.HasSuffix(path, ".tmp") {
			return nil
		}
		info, err := e.Info()
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if !info.ModTime().Before(cutoff) {
			return nil
		}
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return err
		}
		return nil
	})
}

// Root returns the directory the store is rooted at.
func (d *Dir) Root() string { return d.root }

// object is the on-disk JSON shape of one cached cell. Values encode
// NaN (the engine's missing-sample marker, which encoding/json
// rejects) as null.
type object struct {
	Key    string     `json:"key"`
	Values []nanFloat `json:"values"`
}

// nanFloat maps NaN <-> null across the JSON boundary.
type nanFloat float64

// MarshalJSON encodes NaN as null.
func (f nanFloat) MarshalJSON() ([]byte, error) {
	if math.IsNaN(float64(f)) {
		return []byte("null"), nil
	}
	return []byte(strconv.FormatFloat(float64(f), 'g', -1, 64)), nil
}

// UnmarshalJSON decodes null as NaN.
func (f *nanFloat) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*f = nanFloat(math.NaN())
		return nil
	}
	v, err := strconv.ParseFloat(string(data), 64)
	if err != nil {
		return err
	}
	*f = nanFloat(v)
	return nil
}

// path maps a key to its object file. Keys are hex SHA-256 (64 chars);
// anything else would escape the objects tree, so it is rejected by
// the callers via validKey.
func (d *Dir) path(key string) string {
	return filepath.Join(d.root, "objects", key[:2], key[2:])
}

// validKey accepts exactly the lowercase-hex SHA-256 keys produced by
// CellSpec.Key, keeping hostile keys out of the filesystem layout.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Get implements Store.
func (d *Dir) Get(key string) (values []float64, ok bool, err error) {
	defer observeGet(time.Now(), &ok, &err)
	if !validKey(key) {
		return nil, false, fmt.Errorf("store: malformed key %q", key)
	}
	data, err := os.ReadFile(d.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	var obj object
	if err := json.Unmarshal(data, &obj); err != nil {
		return nil, false, fmt.Errorf("store: corrupt object %s: %w", key, err)
	}
	if obj.Key != key {
		return nil, false, fmt.Errorf("store: object %s holds key %s", key, obj.Key)
	}
	out := make([]float64, len(obj.Values))
	for i, v := range obj.Values {
		out[i] = float64(v)
	}
	return out, true, nil
}

// Put implements Store.
func (d *Dir) Put(key string, values []float64) (err error) {
	defer observePut(time.Now(), &err)
	if !validKey(key) {
		return fmt.Errorf("store: malformed key %q", key)
	}
	obj := object{Key: key, Values: make([]nanFloat, len(values))}
	for i, v := range values {
		obj.Values[i] = nanFloat(v)
	}
	data, err := json.Marshal(obj)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	path := d.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// A unique temp name per writer: racing processes each stage their
	// own file and the renames are atomic, so readers only ever see a
	// complete object.
	tmp, err := os.CreateTemp(filepath.Dir(path), key[2:]+".*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	// CreateTemp files are 0600; objects are world-readable like any
	// other artifact of the repository's tools.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	// The stat+rename pair runs under the counter mutex so the cached
	// Len stays exact within this handle: without it, two goroutines
	// racing on a fresh key could both observe "new" and double-count.
	d.mu.Lock()
	_, statErr := os.Stat(path)
	if err := os.Rename(tmp.Name(), path); err != nil {
		d.mu.Unlock()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if d.counted && os.IsNotExist(statErr) {
		d.count++
	}
	d.mu.Unlock()
	return nil
}

// Len returns the number of cached cells. The first call walks the
// objects tree once; after that the count is served from memory and
// maintained by Put, so pollers (status endpoints, progress loops) pay
// O(1) instead of O(cells) per call. The count covers objects present
// at the first scan plus this handle's own writes: another process
// writing the same directory is only picked up by reopening the store
// (see TestDirLenReopen).
func (d *Dir) Len() (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.counted {
		return d.count, nil
	}
	n := 0
	err := filepath.WalkDir(filepath.Join(d.root, "objects"), func(path string, e os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !e.IsDir() && !strings.HasSuffix(path, ".tmp") {
			n++
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	d.counted = true
	d.count = n
	return n, nil
}
