package store

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestDirOpenSweepsStaleTmp pins the crash-consistency sweep: a *.tmp
// staging file abandoned by a killed writer is removed on the next
// Open, while a fresh one — possibly a live writer in another process —
// is left alone, and neither is ever visible through Get or Len.
func TestDirOpenSweepsStaleTmp(t *testing.T) {
	root := t.TempDir()
	d, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	key := CellSpec{Scope: "sweep", Rep: 1}.Key()
	if err := d.Put(key, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}

	// Simulate a writer killed mid-Put long ago (stale) and one killed
	// (or still writing) just now (fresh).
	bucket := filepath.Join(root, "objects", key[:2])
	stale := filepath.Join(bucket, "deadbeef.123.tmp")
	fresh := filepath.Join(bucket, "cafebabe.456.tmp")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte(`{"torn":`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTmpAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale tmp survived reopen: stat err = %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh tmp was swept (may belong to a live writer): %v", err)
	}
	// The real object is untouched and tmp residue never counts.
	if v, ok, err := d2.Get(key); err != nil || !ok || v[0] != 1 {
		t.Fatalf("Get after sweep = %v, %v, %v", v, ok, err)
	}
	if n, err := d2.Len(); err != nil || n != 1 {
		t.Fatalf("Len after sweep = %d, %v, want 1", n, err)
	}
}

// TestRemoteSendsBearerToken checks NewRemoteWith attaches the shared
// secret to both verbs, matching what a -token coordinator requires.
func TestRemoteSendsBearerToken(t *testing.T) {
	var got []string
	backend := NewMemory()
	auth := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = append(got, r.Header.Get("Authorization"))
		if r.Header.Get("Authorization") != "Bearer sesame" {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		ObjectHandler(backend).ServeHTTP(w, r)
	})
	srv := httptest.NewServer(auth)
	defer srv.Close()

	key := CellSpec{Scope: "auth", Rep: 1}.Key()
	r := NewRemoteWith(srv.URL, RemoteOptions{Token: "sesame"})
	if err := r.Put(key, []float64{7}); err != nil {
		t.Fatalf("authorized Put: %v", err)
	}
	if v, ok, err := r.Get(key); err != nil || !ok || v[0] != 7 {
		t.Fatalf("authorized Get = %v, %v, %v", v, ok, err)
	}
	if len(got) != 2 {
		t.Fatalf("server saw %d requests, want 2", len(got))
	}

	// A tokenless client must be refused, and the refusal must surface
	// as an error, not a silent miss.
	bare := NewRemote(srv.URL, nil)
	if err := bare.Put(key, []float64{7}); err == nil {
		t.Fatal("tokenless Put succeeded against an authenticated endpoint")
	}
	if _, _, err := bare.Get(key); err == nil {
		t.Fatal("tokenless Get succeeded against an authenticated endpoint")
	}
}

// TestRemoteRequestTimeout pins the per-request deadline: a server
// that accepts and then stalls must not hang Get or Put forever.
func TestRemoteRequestTimeout(t *testing.T) {
	stall := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	defer srv.Close()
	defer close(stall) // LIFO: release the handler before Close waits on it

	r := NewRemoteWith(srv.URL, RemoteOptions{Timeout: 100 * time.Millisecond})
	key := CellSpec{Scope: "stall", Rep: 1}.Key()
	start := time.Now()
	if _, _, err := r.Get(key); err == nil {
		t.Fatal("Get against a stalled server returned no error")
	}
	if err := r.Put(key, []float64{1}); err == nil {
		t.Fatal("Put against a stalled server returned no error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled round trips took %v; deadlines did not bound them", elapsed)
	}
}
