package sampleset

import (
	"math"
	"testing"

	"gridseg/internal/rng"
)

// brute is the oracle: membership as a plain boolean array plus an
// insertion-order-independent view of the set.
type brute struct {
	in    []bool
	count int
}

func (b *brute) update(i int, want bool) {
	if b.in[i] != want {
		b.in[i] = want
		if want {
			b.count++
		} else {
			b.count--
		}
	}
}

// TestSetAgainstBruteForce churns a set with random membership updates
// and checks membership, size, and the position invariant after every
// operation block.
func TestSetAgainstBruteForce(t *testing.T) {
	const n = 257
	s := New(n)
	b := &brute{in: make([]bool, n)}
	src := rng.New(42)
	for step := 0; step < 20000; step++ {
		i := src.Intn(n)
		want := src.Bernoulli(0.5)
		s.Update(i, want)
		b.update(i, want)
		if s.Len() != b.count {
			t.Fatalf("step %d: Len = %d, want %d", step, s.Len(), b.count)
		}
		if s.Contains(i) != b.in[i] {
			t.Fatalf("step %d: Contains(%d) = %v, want %v", step, i, s.Contains(i), b.in[i])
		}
	}
	if err := s.CheckInvariants("churned", func(i int) bool { return b.in[i] }); err != nil {
		t.Fatal(err)
	}
}

// TestSetDeterministicReplay drives two sets through the same update
// sequence and demands identical iteration order — the property the
// engines' bit-identity rests on: a uniform sample maps Intn(k) to a
// site through the slice order.
func TestSetDeterministicReplay(t *testing.T) {
	const n = 100
	a, b := New(n), New(n)
	src := rng.New(7)
	for step := 0; step < 5000; step++ {
		i := src.Intn(n)
		want := src.Bernoulli(0.6)
		a.Update(i, want)
		b.Update(i, want)
	}
	ai, bi := a.Items(), b.Items()
	if len(ai) != len(bi) {
		t.Fatalf("lengths differ: %d vs %d", len(ai), len(bi))
	}
	for k := range ai {
		if ai[k] != bi[k] {
			t.Fatalf("iteration order differs at %d: %d vs %d", k, ai[k], bi[k])
		}
	}
	// And both agree on every sample drawn from identical sources.
	sa, sb := rng.New(99), rng.New(99)
	for k := 0; k < 1000; k++ {
		if x, y := a.Sample(sa), b.Sample(sb); x != y {
			t.Fatalf("sample %d differs: %d vs %d", k, x, y)
		}
	}
}

// TestSetSampleUniform pins sampling uniformity with a chi-square test
// over a fixed member population: 40 members, 40000 draws, so the
// expected count per member is 1000. The 99.9% critical value of
// chi-square with 39 degrees of freedom is ~72.1; a correct uniform
// sampler fails this with probability 0.001 (and the seed is fixed, so
// the test is deterministic).
func TestSetSampleUniform(t *testing.T) {
	const members = 40
	const draws = 40000
	s := New(1024)
	for i := 0; i < members; i++ {
		s.Update(i*17+3, true)
	}
	counts := map[int32]int{}
	src := rng.New(12345)
	for k := 0; k < draws; k++ {
		counts[s.Sample(src)]++
	}
	if len(counts) != members {
		t.Fatalf("observed %d distinct members, want %d", len(counts), members)
	}
	expected := float64(draws) / float64(members)
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 72.1 {
		t.Fatalf("chi-square = %.1f exceeds the 99.9%% critical value 72.1 for %d-1 dof", chi2, members)
	}
	if math.IsNaN(chi2) {
		t.Fatal("chi-square is NaN")
	}
}

// TestSetChurnIsConstantTime pins the O(1) amortized cost of Update
// structurally: a full insert-then-remove cycle over the universe must
// leave the set empty with every position reset, and the member slice
// never grows beyond the universe size (no duplicate appends).
func TestSetChurnIsConstantTime(t *testing.T) {
	const n = 4096
	s := New(n)
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			s.Update(i, true)
			s.Update(i, true) // redundant insert must be a no-op
		}
		if s.Len() != n {
			t.Fatalf("round %d: Len = %d, want %d", round, s.Len(), n)
		}
		if c := cap(s.Items()); c > 2*n {
			t.Fatalf("round %d: capacity %d grew beyond the universe (duplicate appends?)", round, c)
		}
		for i := n - 1; i >= 0; i-- {
			s.Update(i, false)
			s.Update(i, false) // redundant remove must be a no-op
		}
		if s.Len() != 0 {
			t.Fatalf("round %d: Len = %d after draining, want 0", round, s.Len())
		}
	}
	if err := s.CheckInvariants("drained", func(int) bool { return false }); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkSetChurn measures one insert+remove pair under steady-state
// churn — the amortized O(1) claim in wall-clock form.
func BenchmarkSetChurn(b *testing.B) {
	const n = 1 << 16
	s := New(n)
	for i := 0; i < n; i += 2 {
		s.Update(i, true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := (i * 2654435761) & (n - 1)
		s.Update(j, !s.Contains(j))
	}
}

// TestList pins the append-order contract of the change log.
func TestList(t *testing.T) {
	var l List
	for i := int32(0); i < 5; i++ {
		l.Append(i * 3)
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d, want 5", l.Len())
	}
	for k, v := range l.Items() {
		if v != int32(k*3) {
			t.Fatalf("item %d = %d, want %d", k, v, k*3)
		}
	}
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("Reset did not empty the list")
	}
	l.Append(7)
	if got := l.Items(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("after reset+append: %v", got)
	}
}
