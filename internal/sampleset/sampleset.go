// Package sampleset implements the dense index-swap sets behind every
// sampler of the dynamics engines: the flippable set of the Glauber
// process, the per-type unhappy sets of the Kawasaki swap dynamic, and
// the unhappy-agent and vacant-site sets of the Move relocation
// dynamic, on both the reference and the bit-packed engines.
//
// A Set holds int32 site indices in a dense slice with a parallel
// position index, giving O(1) insert, O(1) swap-remove, O(1) uniform
// sampling (items[Intn(Len())]), and deterministic iteration order.
// The order is part of the engines' bit-identity contract: a uniform
// sample maps a random index to a site *through the slice ordering*,
// so two engines agree on every future random draw exactly when their
// sets hold the same elements in the same order. Set therefore pins
// the one true ordering discipline — append on insert, swap-with-last
// on remove — that the engines previously each reimplemented.
package sampleset

import (
	"fmt"

	"gridseg/internal/rng"
)

// Set is a dense set of site indices over a fixed universe [0, n),
// with O(1) membership updates and uniform sampling. Construct with
// New; the zero value is not usable.
type Set struct {
	items []int32
	pos   []int32 // pos[i] = index of site i in items, or -1
}

// New returns an empty set over the universe [0, n).
func New(n int) *Set {
	s := &Set{pos: make([]int32, n)}
	for i := range s.pos {
		s.pos[i] = -1
	}
	return s
}

// Len returns the number of members.
func (s *Set) Len() int { return len(s.items) }

// At returns the k-th member in iteration order.
func (s *Set) At(k int) int32 { return s.items[k] }

// Items returns the live member slice in iteration order (read-only
// use: invariant checks and deterministic replay).
func (s *Set) Items() []int32 { return s.items }

// Contains reports whether site i is a member.
func (s *Set) Contains(i int) bool { return s.pos[i] >= 0 }

// Sample returns a uniformly random member, consuming exactly one
// Intn(Len()) draw. It panics on an empty set (callers test Len first,
// mirroring the engines' step guards).
func (s *Set) Sample(src *rng.Source) int32 {
	return s.items[src.Intn(len(s.items))]
}

// Update makes site i's membership equal to want: a non-member is
// appended, a member is swap-removed with the last element, and a
// no-op change costs one branch. This is the exact setMembership
// discipline the reference samplers were built on, so migrated sets
// evolve element-for-element identically.
func (s *Set) Update(i int, want bool) {
	in := s.pos[i] >= 0
	switch {
	case want && !in:
		s.pos[i] = int32(len(s.items))
		s.items = append(s.items, int32(i))
	case !want && in:
		j := s.pos[i]
		last := s.items[len(s.items)-1]
		s.items[j] = last
		s.pos[last] = j
		s.items = s.items[:len(s.items)-1]
		s.pos[i] = -1
	}
}

// CheckInvariants verifies the position index against the member slice
// and membership against the given predicate over the full universe.
func (s *Set) CheckInvariants(name string, want func(i int) bool) error {
	for j, site := range s.items {
		if s.pos[site] != int32(j) {
			return fmt.Errorf("%s: pos[%d] = %d, want %d", name, site, s.pos[site], j)
		}
	}
	for i := range s.pos {
		in := s.pos[i] >= 0
		if in != want(i) {
			return fmt.Errorf("%s: membership of %d = %v, want %v", name, i, in, want(i))
		}
		if !in && s.pos[i] != -1 {
			return fmt.Errorf("%s: pos[%d] = %d for non-member", name, i, s.pos[i])
		}
	}
	return nil
}

// List is an append-only change log of site indices: the bit-packed
// engines record, in reference window-visit order, the sites whose
// classification changed during a flip, and the swap/relocation
// wrappers replay their set maintenance over exactly those sites.
type List struct {
	items []int32
}

// Reset empties the list, keeping its capacity.
func (l *List) Reset() { l.items = l.items[:0] }

// Append records site i.
func (l *List) Append(i int32) { l.items = append(l.items, i) }

// Items returns the recorded sites in append order.
func (l *List) Items() []int32 { return l.items }

// Len returns the number of recorded sites.
func (l *List) Len() int { return len(l.items) }
