// Package clidoc backs the commands' usage-coverage tests: every flag
// a command declares must carry a usage string and be documented in
// README.md, so the CLI surface and the docs cannot drift apart.
package clidoc

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

// CheckFlags verifies that every flag of fs has a non-empty usage
// string and appears as `-name` inside the README sections that
// belong to the command. A section (an ATX heading plus its body, up
// to the next heading) belongs to the command when it mentions
// cmd/<name>; scoping the search this way keeps flags that share a
// name across commands (-seed, -v, -out) from vacuously satisfying
// each other's documentation. It returns one error per violation.
func CheckFlags(fs *flag.FlagSet, readmePath string) []error {
	data, err := os.ReadFile(readmePath)
	if err != nil {
		return []error{fmt.Errorf("reading %s: %w", readmePath, err)}
	}
	owned := ownedSections(string(data), "cmd/"+fs.Name())
	if owned == "" {
		return []error{fmt.Errorf("%s has no section mentioning cmd/%s", readmePath, fs.Name())}
	}
	var errs []error
	fs.VisitAll(func(f *flag.Flag) {
		if strings.TrimSpace(f.Usage) == "" {
			errs = append(errs, fmt.Errorf("flag -%s of %s has no usage string", f.Name, fs.Name()))
		}
		if !strings.Contains(owned, "`-"+f.Name+"`") {
			errs = append(errs, fmt.Errorf("flag -%s of %s is not documented in the cmd/%s sections of %s (want a `-%s` mention)", f.Name, fs.Name(), fs.Name(), readmePath, f.Name))
		}
	})
	return errs
}

// ownedSections concatenates every markdown section whose heading or
// body mentions the command path.
func ownedSections(doc, cmdPath string) string {
	var out strings.Builder
	var section strings.Builder
	flush := func() {
		if strings.Contains(section.String(), cmdPath) {
			out.WriteString(section.String())
		}
		section.Reset()
	}
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(line, "#") {
			flush()
		}
		section.WriteString(line)
		section.WriteByte('\n')
	}
	flush()
	return out.String()
}
