// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component of the repository.
//
// Reproducibility is a first-class requirement: a run of any experiment is
// fully determined by (seed, parameters). The generator is xoshiro256**,
// seeded through SplitMix64 as recommended by its authors. Split derives
// statistically independent child streams from a parent seed and a label,
// which is how replicate r of an experiment gets its own stream without
// correlations between replicates.
//
// Only the standard library is used; Source satisfies math/rand.Source and
// math/rand.Source64 so it can be plugged into rand.New when convenient.
package rng

import "math"

// Source is a xoshiro256** pseudo-random number generator.
// The zero value is not usable; construct with New or Split.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output.
// It is used for seeding and for label hashing in Split.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given 64-bit seed.
// Distinct seeds give independent-looking streams; the all-zero internal
// state is unreachable because SplitMix64 never emits four zero outputs
// in a row.
func New(seed uint64) *Source {
	var s Source
	st := seed
	for i := range s.s {
		s.s[i] = splitmix64(&st)
	}
	return &s
}

// Split derives a child Source from the parent's seed material and a label.
// The same (parent, label) pair always yields the same child, and children
// with distinct labels are statistically independent. Split does not
// advance the parent.
func (s *Source) Split(label uint64) *Source {
	// Mix the parent state with the label through SplitMix64 so that
	// child streams differ even for adjacent labels.
	st := s.s[0] ^ (s.s[1] * 0x9e3779b97f4a7c15) ^ label
	var c Source
	for i := range c.s {
		c.s[i] = splitmix64(&st)
	}
	return &c
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Int63 returns a non-negative 63-bit integer. It exists so that Source
// satisfies math/rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed is a no-op; Source is seeded at construction. It exists only to
// satisfy math/rand.Source.
func (s *Source) Seed(uint64) {}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless method with rejection, so the
// result is exactly uniform.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	un := uint64(n)
	v := s.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			v = s.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	_ = lo
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
// p <= 0 always returns false; p >= 1 always returns true.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// ExpFloat64 returns an exponentially distributed value with rate 1
// (mean 1), using inversion. Use ExpRate for other rates.
func (s *Source) ExpFloat64() float64 {
	// 1-Float64() is in (0,1], so the log argument is never zero.
	return -math.Log(1 - s.Float64())
}

// ExpRate returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (s *Source) ExpRate(rate float64) float64 {
	if rate <= 0 {
		panic("rng: ExpRate called with rate <= 0")
	}
	return s.ExpFloat64() / rate
}

// NormFloat64 returns a standard normal variate via the polar
// Marsaglia method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) using
// Fisher-Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
