package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("streams diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical outputs out of 100", same)
	}
}

func TestSplitDeterministicAndIndependent(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(3)
	c2 := parent.Split(3)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("same label must give identical child streams")
		}
	}
	d1 := parent.Split(4)
	d2 := parent.Split(5)
	same := 0
	for i := 0; i < 100; i++ {
		if d1.Uint64() == d2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("children with distinct labels matched %d/100 outputs", same)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(11)
	b := New(11)
	_ = a.Split(99)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split must not advance the parent stream")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from %v", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	s := New(2)
	const p, draws = 0.3, 200000
	hits := 0
	for i := 0; i < draws; i++ {
		if s.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) empirical mean %v", p, got)
	}
}

func TestExpFloat64Moments(t *testing.T) {
	s := New(4)
	const draws = 200000
	var sum, sumsq float64
	for i := 0; i < draws; i++ {
		x := s.ExpFloat64()
		if x < 0 {
			t.Fatalf("negative exponential variate %v", x)
		}
		sum += x
		sumsq += x * x
	}
	mean := sum / draws
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("Exp(1) mean = %v, want ~1", mean)
	}
	variance := sumsq/draws - mean*mean
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("Exp(1) variance = %v, want ~1", variance)
	}
}

func TestExpRate(t *testing.T) {
	s := New(6)
	const rate, draws = 4.0, 100000
	var sum float64
	for i := 0; i < draws; i++ {
		sum += s.ExpRate(rate)
	}
	mean := sum / draws
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("ExpRate(%v) mean = %v, want %v", rate, mean, 1/rate)
	}
}

func TestExpRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ExpRate(0) must panic")
		}
	}()
	New(1).ExpRate(0)
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(8)
	const draws = 200000
	var sum, sumsq float64
	for i := 0; i < draws; i++ {
		x := s.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / draws
	variance := sumsq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(10)
	for _, n := range []int{0, 1, 2, 5, 50} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	s := New(12)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element multiset: sum %d -> %d", sum, got)
	}
}

// Property: Intn output is always within range for arbitrary seeds.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		s := New(seed)
		for i := 0; i < 20; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Split with equal labels is reproducible for arbitrary seeds.
func TestQuickSplitReproducible(t *testing.T) {
	f := func(seed, label uint64) bool {
		a := New(seed).Split(label)
		b := New(seed).Split(label)
		for i := 0; i < 10; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul64AgainstBig(t *testing.T) {
	cases := []struct{ a, b uint64 }{
		{0, 0}, {1, 1}, {math.MaxUint64, math.MaxUint64},
		{1 << 32, 1 << 32}, {0xdeadbeefcafebabe, 0x123456789abcdef0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		// Verify via decomposition: (a*b) mod 2^64 must equal lo.
		if lo != c.a*c.b {
			t.Errorf("mul64(%d,%d) lo = %d, want %d", c.a, c.b, lo, c.a*c.b)
		}
		// Spot-check hi using 32-bit long multiplication.
		a0, a1 := c.a&0xffffffff, c.a>>32
		b0, b1 := c.b&0xffffffff, c.b>>32
		t0 := a0 * b0
		t1 := a1*b0 + t0>>32
		t2 := t1 & 0xffffffff
		t3 := t1 >> 32
		t2 += a0 * b1
		wantHi := a1*b1 + t3 + t2>>32
		if hi != wantHi {
			t.Errorf("mul64(%d,%d) hi = %d, want %d", c.a, c.b, hi, wantHi)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.Intn(441)
	}
	_ = sink
}
