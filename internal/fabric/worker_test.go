package fabric

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gridseg/internal/store"
)

// TestWorkerLoop runs the full protocol over real HTTP: a coordinator
// with a short TTL, four workers whose runner outlives a heartbeat
// interval (so renewal is load-bearing), and a shared store. Every
// cell must complete exactly once, and recomputed keys must land in
// the store.
func TestWorkerLoop(t *testing.T) {
	const cells = 24
	coord := NewCoordinator(300*time.Millisecond, nil)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	jobs := make([]Job, cells)
	for i := range jobs {
		jobs[i] = Job{Index: i, Key: store.CellSpec{Scope: "wl", Rep: i}.Key(), Seed: uint64(i), Columns: []string{"a", "b"}}
	}
	shared := store.NewMemory()
	// Pre-seed a few cells so the cache-probe path is exercised too.
	for i := 0; i < 4; i++ {
		if err := shared.Put(jobs[i].Key, []float64{float64(i), -1}); err != nil {
			t.Fatal(err)
		}
	}

	var got collector
	done, err := coord.Table().Register("run", jobs, got.add)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		w := &Worker{
			Name:        fmt.Sprintf("w%d", i),
			Coordinator: srv.URL,
			Client:      srv.Client(),
			Store:       shared,
			Poll:        10 * time.Millisecond,
			Runner: func(j Job) ([]float64, error) {
				// Longer than TTL/3: completion depends on heartbeats.
				time.Sleep(150 * time.Millisecond)
				return []float64{float64(j.Index), -1}, nil
			},
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run did not complete")
	}
	cancel()
	wg.Wait()

	if got.count() != cells {
		t.Fatalf("reported %d cells, want %d", got.count(), cells)
	}
	seen := map[int]bool{}
	cachedHits := 0
	for _, d := range got.cells {
		if seen[d.Index] {
			t.Fatalf("cell %d reported twice", d.Index)
		}
		seen[d.Index] = true
		if d.Err != "" {
			t.Fatalf("cell %d failed: %s", d.Index, d.Err)
		}
		if d.Values[0] != float64(d.Index) || d.Values[1] != -1 {
			t.Fatalf("cell %d values = %v", d.Index, d.Values)
		}
		if d.Worker == "" {
			t.Fatalf("cell %d missing worker attribution", d.Index)
		}
		if d.Cached {
			cachedHits++
		}
	}
	if cachedHits < 4 {
		t.Fatalf("cached completions = %d, want >= 4 (pre-seeded cells)", cachedHits)
	}
	// Computed cells were written back to the shared store.
	for _, j := range jobs {
		if _, ok, err := shared.Get(j.Key); err != nil || !ok {
			t.Fatalf("cell %d not in store: %v, %v", j.Index, ok, err)
		}
	}
	if n, _ := coord.Table().Status(); len(n) != 0 {
		t.Fatalf("completed run still registered: %+v", n)
	}
}

// TestWorkerReportsDeterministicError pins the error path: a runner
// failure is reported to the coordinator, not retried forever.
func TestWorkerReportsDeterministicError(t *testing.T) {
	coord := NewCoordinator(time.Second, nil)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	var got collector
	done, err := coord.Table().Register("run", mkJobs(1), got.add)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{
		Name:        "w0",
		Coordinator: srv.URL,
		Client:      srv.Client(),
		Poll:        10 * time.Millisecond,
		Runner:      func(j Job) ([]float64, error) { return nil, fmt.Errorf("bad cell") },
	}
	go w.Run(ctx)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("error completion never arrived")
	}
	if got.count() != 1 || got.cells[0].Err != "bad cell" {
		t.Fatalf("got %+v", got.cells)
	}
}
