package fabric

import "gridseg/internal/metrics"

// Coordinator-side protocol instruments. These live on the default
// registry, so a segd coordinator's /metrics exposes lease health
// without any wiring; the same numbers (in aggregate form) are served
// as JSON on GET /fabric/status for pollers that want autoscaling
// signals without a Prometheus stack.
var (
	metricLeaseGrants = metrics.Default().NewCounter(
		"fabric_lease_grants_total",
		"Cell leases granted to workers (including expired-lease re-grants).")
	metricLeaseRequeues = metrics.Default().NewCounter(
		"fabric_lease_requeues_total",
		"Cells re-granted after their previous lease expired unrenewed.")
	metricLeaseExpiries = metrics.Default().NewCounter(
		"fabric_lease_expiries_total",
		"Heartbeat renewals rejected because the lease was no longer current.")
	metricCompletions = metrics.Default().NewCounter(
		"fabric_completions_total",
		"Cell completions accepted by the lease table (first completion per cell).")
	metricLeaseSeconds = metrics.Default().NewHistogram(
		"fabric_lease_seconds",
		"Seconds from lease grant to accepted completion.",
		[]float64{0.01, 0.05, 0.25, 1, 5, 30, 120, 600})
	metricRecoveredCells = metrics.Default().NewCounter(
		"fabric_recovered_cells_total",
		"Cells absorbed as already done during coordinator restart recovery (journal replay + store reconciliation) instead of recomputed.")
)

// Worker-side resilience instruments. These live process-side: in a
// real cluster they appear on each worker's own /metrics listener, and
// in the in-process chaos tests they share the default registry with
// the coordinator's counters.
var (
	metricWorkerOutages = metrics.Default().NewCounter(
		"fabric_worker_outages_total",
		"Times a worker's lease loop found the coordinator unreachable and entered backoff.")
	metricWorkerReconnects = metrics.Default().NewCounter(
		"fabric_worker_reconnects_total",
		"Times a worker's lease loop reached the coordinator again after an outage.")
)
