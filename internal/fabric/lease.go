package fabric

import (
	"fmt"
	"sync"
	"time"
)

// Clock is the lease table's time source, injectable so the expiry
// protocol is testable without sleeping.
type Clock func() time.Time

// DefaultTTL is the lease TTL used when a Table is built with zero.
// Workers heartbeat at a third of the TTL, so transient stalls of two
// missed heartbeats survive; a worker gone for a full TTL loses the
// cell to requeue.
const DefaultTTL = 15 * time.Second

// CellDone reports one finished cell to the run's owner. Err carries a
// deterministic compute failure (the run should be failed, not the
// cell retried — the same inputs would fail anywhere).
type CellDone struct {
	// Index is the cell's Job.Index — its position in the grid's
	// canonical cell order, not its registration position.
	Index  int
	Values []float64
	Worker string
	Cached bool
	Err    string
}

// cellState is the lease state machine:
//
//	pending ──lease──▶ leased ──complete──▶ done
//	   ▲                  │
//	   └──── TTL expiry ──┘   (requeue: the next Lease call re-grants)
//
// done is absorbing: late completions from presumed-dead workers are
// accepted idempotently (the bytes are identical by construction) and
// never reported twice.
type cellState uint8

const (
	statePending cellState = iota
	stateLeased
	stateDone
)

// Table is the coordinator's lease table. All state is in memory: the
// durable artifact of a run is the content-addressed store, so a
// coordinator restart just recomputes leases (and cache hits make the
// replay cheap).
//
// The completion callback registered with a run executes with the
// table locked, which serializes callbacks and guarantees that when a
// run's done channel closes every callback has returned. Callbacks
// must therefore not call back into the Table.
type Table struct {
	mu       sync.Mutex
	now      Clock
	ttl      time.Duration
	seq      uint64
	order    []string
	runs     map[string]*tableRun
	requeues int
	// recorder, when set, receives lease grants and accepted
	// completions under mu (see TableRecorder); the journal implements
	// it for crash durability.
	recorder TableRecorder
	// Observability aggregates, cumulative across runs (see
	// TableMetrics). Guarded by mu like everything else; the protocol
	// handlers already hold it at every increment site.
	grants      int
	expiries    int
	completions int
	completedBy map[string]int
	leaseCount  int
	leaseSum    float64 // seconds, grant -> accepted completion
	leaseMax    float64
	// Restart-recovery aggregates: runs re-registered from the journal
	// on reboot, and their cells absorbed as done (from journal done
	// records or store reconciliation) instead of recomputed.
	recoveredRuns  int
	recoveredCells int
}

// TableRecorder receives the table's durable state transitions —
// lease grants and accepted completions — synchronously under the
// table lock, in the exact order they happened. *Journal implements
// it; implementations must not call back into the Table.
type TableRecorder interface {
	RecordLease(run string, index int, worker string)
	RecordDone(run string, index int, worker string, cached bool, values []float64)
}

// SetRecorder installs the transition recorder (nil disables). Call
// before the table starts serving; the fabric does not re-deliver
// transitions that happened earlier.
func (t *Table) SetRecorder(r TableRecorder) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recorder = r
}

// NoteRecovered adds to the restart-recovery aggregates surfaced in
// TableMetrics and the fabric_recovered_cells_total counter: runs
// re-registered from the journal, and cells absorbed as already done
// during their re-registration scan.
func (t *Table) NoteRecovered(runs, cells int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recoveredRuns += runs
	t.recoveredCells += cells
	if cells > 0 {
		metricRecoveredCells.Add(uint64(cells))
	}
}

type tableRun struct {
	jobs      []Job
	state     []cellState
	lease     []uint64
	worker    []string
	expiry    []time.Time
	granted   []time.Time
	remaining int
	onDone    func(CellDone)
	done      chan struct{}
	// byIndex maps a Job.Index (the wire identity workers report back)
	// to the job's position in the slices above. The two differ when a
	// run registers only a subset of its grid's cells — the cache
	// misses — so positions are dense while Job indices are sparse.
	byIndex map[int]int
}

// NewTable builds a lease table. A zero ttl means DefaultTTL; a nil
// clock means time.Now.
func NewTable(ttl time.Duration, clock Clock) *Table {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	if clock == nil {
		clock = time.Now
	}
	return &Table{now: clock, ttl: ttl, runs: map[string]*tableRun{}, completedBy: map[string]int{}}
}

// TTL returns the lease TTL.
func (t *Table) TTL() time.Duration { return t.ttl }

// Register adds a run's cells to the table and returns a channel that
// closes when every cell has completed. onDone fires exactly once per
// cell, serialized, before the channel closes.
func (t *Table) Register(runID string, jobs []Job, onDone func(CellDone)) (<-chan struct{}, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.runs[runID]; ok {
		return nil, fmt.Errorf("fabric: run %s already registered", runID)
	}
	r := &tableRun{
		jobs:      make([]Job, len(jobs)),
		state:     make([]cellState, len(jobs)),
		lease:     make([]uint64, len(jobs)),
		worker:    make([]string, len(jobs)),
		expiry:    make([]time.Time, len(jobs)),
		granted:   make([]time.Time, len(jobs)),
		remaining: len(jobs),
		onDone:    onDone,
		done:      make(chan struct{}),
		byIndex:   make(map[int]int, len(jobs)),
	}
	copy(r.jobs, jobs)
	for i := range r.jobs {
		r.jobs[i].Run = runID
		if _, dup := r.byIndex[r.jobs[i].Index]; dup {
			return nil, fmt.Errorf("fabric: run %s registers cell index %d twice", runID, r.jobs[i].Index)
		}
		r.byIndex[r.jobs[i].Index] = i
	}
	if r.remaining == 0 {
		close(r.done)
		return r.done, nil
	}
	t.runs[runID] = r
	t.order = append(t.order, runID)
	return r.done, nil
}

// Cancel removes a run from the table. In-flight completions for a
// canceled run are accepted as no-ops; the done channel is left open
// (the canceler has already decided the run's fate).
func (t *Table) Cancel(runID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.removeLocked(runID)
}

func (t *Table) removeLocked(runID string) {
	if _, ok := t.runs[runID]; !ok {
		return
	}
	delete(t.runs, runID)
	for i, id := range t.order {
		if id == runID {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}

// Lease grants the oldest available cell to worker: a pending cell, or
// a leased cell whose TTL has expired (which counts as a requeue). The
// boolean reports whether any work was available.
func (t *Table) Lease(worker string) (LeaseGrant, bool) {
	grants := t.LeaseBatch(worker, 1)
	if len(grants) == 0 {
		return LeaseGrant{}, false
	}
	return grants[0], true
}

// LeaseBatch grants up to max available cells to worker in one call —
// the batched form of Lease, cutting per-cell round trips on grids
// whose cells are cheaper than an HTTP exchange. Heartbeats and
// completions stay per cell; an empty slice means no work was
// available.
func (t *Table) LeaseBatch(worker string, max int) []LeaseGrant {
	if max < 1 {
		max = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var out []LeaseGrant
	for _, id := range t.order {
		r := t.runs[id]
		for i := range r.jobs {
			switch r.state[i] {
			case statePending:
			case stateLeased:
				if r.expiry[i].After(now) {
					continue
				}
				t.requeues++
				metricLeaseRequeues.Inc()
			default:
				continue
			}
			t.seq++
			t.grants++
			metricLeaseGrants.Inc()
			r.state[i] = stateLeased
			r.lease[i] = t.seq
			r.worker[i] = worker
			r.expiry[i] = now.Add(t.ttl)
			r.granted[i] = now
			if t.recorder != nil {
				t.recorder.RecordLease(id, r.jobs[i].Index, worker)
			}
			out = append(out, LeaseGrant{Job: r.jobs[i], Lease: t.seq, TTLMilli: t.ttl.Milliseconds()})
			if len(out) == max {
				return out
			}
		}
	}
	return out
}

// Heartbeat renews a lease, reporting whether the lease is still
// current. An expired lease that nobody has requeued yet can still be
// renewed — the worker is alive, merely late, and reviving its lease
// avoids duplicate work. A false return tells the worker its lease was
// requeued (or the run canceled); it may keep computing — a late
// completion is still accepted — but renewal is over.
func (t *Table) Heartbeat(runID string, index int, lease uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.runs[runID]
	if !ok {
		return false
	}
	i, ok := r.byIndex[index]
	if !ok {
		return false
	}
	if r.state[i] != stateLeased || r.lease[i] != lease {
		t.expiries++
		metricLeaseExpiries.Inc()
		return false
	}
	r.expiry[i] = t.now().Add(t.ttl)
	return true
}

// Complete records a cell result. It is idempotent: completions for
// unknown (canceled) runs and already-done cells are accepted
// silently, and a stale lease token does not invalidate the result —
// cells are content-addressed, so a presumed-dead worker's late answer
// carries exactly the bytes the replacement would produce. Only the
// first completion fires the run's callback, so a cell is never
// double-reported.
func (t *Table) Complete(runID string, index int, lease uint64, worker string, cached bool, values []float64, errMsg string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.runs[runID]
	if !ok {
		return nil
	}
	i, ok := r.byIndex[index]
	if !ok {
		return fmt.Errorf("fabric: run %s has no cell %d", runID, index)
	}
	if r.state[i] == stateDone {
		return nil
	}
	if errMsg == "" && len(values) != len(r.jobs[i].Columns) {
		return fmt.Errorf("fabric: cell %d: got %d values, want %d", index, len(values), len(r.jobs[i].Columns))
	}
	if !r.granted[i].IsZero() {
		d := t.now().Sub(r.granted[i]).Seconds()
		if d < 0 {
			d = 0
		}
		t.leaseCount++
		t.leaseSum += d
		if d > t.leaseMax {
			t.leaseMax = d
		}
		metricLeaseSeconds.Observe(d)
	}
	t.completions++
	t.completedBy[worker]++
	metricCompletions.Inc()
	r.state[i] = stateDone
	r.worker[i] = worker
	r.remaining--
	if t.recorder != nil && errMsg == "" {
		// Error completions are not journaled: a deterministic cell
		// failure fails the run, which the server journals as a finish.
		t.recorder.RecordDone(runID, index, worker, cached, values)
	}
	if r.onDone != nil {
		r.onDone(CellDone{Index: index, Values: values, Worker: worker, Cached: cached, Err: errMsg})
	}
	if r.remaining == 0 {
		t.removeLocked(runID)
		close(r.done)
	}
	return nil
}

// Requeues returns the cumulative number of expired-lease requeues
// across all runs — an observability counter that survives run
// completion.
func (t *Table) Requeues() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.requeues
}

// RunStatus summarizes one registered run for the status endpoint.
type RunStatus struct {
	Run     string `json:"run"`
	Cells   int    `json:"cells"`
	Pending int    `json:"pending"`
	Leased  int    `json:"leased"`
	Done    int    `json:"done"`
}

// TableMetrics is the coordinator's cumulative protocol snapshot,
// served as JSON inside GET /fabric/status so autoscalers can read
// lease health from the endpoint they already poll. The same events
// feed the Prometheus counters on /metrics; this struct is the
// scrape-free view. Lease latency is the grant-to-accepted-completion
// time, aggregated as count/sum/max (mean = sum/count).
type TableMetrics struct {
	Requeues          int            `json:"requeues"`
	Grants            int            `json:"grants"`
	Expiries          int            `json:"expiries"`
	Completions       int            `json:"completions"`
	CompletedByWorker map[string]int `json:"completed_by_worker"`
	LeaseSecondsCount int            `json:"lease_seconds_count"`
	LeaseSecondsSum   float64        `json:"lease_seconds_sum"`
	LeaseSecondsMax   float64        `json:"lease_seconds_max"`
	// RecoveredRuns and RecoveredCells surface coordinator restart
	// recovery: runs re-registered from the lease journal on reboot,
	// and their cells absorbed as done (journal replay plus store
	// reconciliation) instead of recomputed.
	RecoveredRuns  int `json:"recovered_runs"`
	RecoveredCells int `json:"recovered_cells"`
}

// Status snapshots the table: per-run cell counts plus the cumulative
// protocol metrics.
func (t *Table) Status() ([]RunStatus, TableMetrics) {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]RunStatus, 0, len(t.order))
	for _, id := range t.order {
		r := t.runs[id]
		s := RunStatus{Run: id, Cells: len(r.jobs)}
		for i := range r.state {
			switch r.state[i] {
			case statePending:
				s.Pending++
			case stateLeased:
				s.Leased++
			default:
				s.Done++
			}
		}
		out = append(out, s)
	}
	m := TableMetrics{
		Requeues:          t.requeues,
		Grants:            t.grants,
		Expiries:          t.expiries,
		Completions:       t.completions,
		CompletedByWorker: make(map[string]int, len(t.completedBy)),
		LeaseSecondsCount: t.leaseCount,
		LeaseSecondsSum:   t.leaseSum,
		LeaseSecondsMax:   t.leaseMax,
		RecoveredRuns:     t.recoveredRuns,
		RecoveredCells:    t.recoveredCells,
	}
	for w, n := range t.completedBy {
		m.CompletedByWorker[w] = n
	}
	return out, m
}
