package fabric

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func openTestJournal(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

// TestJournalColdStart covers the empty-journal boot: a fresh (or
// absent) file replays to zero runs and accepts appends.
func TestJournalColdStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fabric.journal")
	j := openTestJournal(t, path)
	if runs := j.Runs(); len(runs) != 0 {
		t.Fatalf("cold journal recovered %d runs, want 0", len(runs))
	}
	if err := j.Register("r1", "n=8 w=1 tau=0.4 reps=1", 7, 1); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if runs := j.Runs(); len(runs) != 1 || runs[0].Run != "r1" {
		t.Fatalf("Runs after register = %+v", runs)
	}
}

// TestJournalRoundTrip writes a run's full transition history and
// checks a reopened journal rebuilds exactly the recoverable state:
// done cells with their values (NaN included), leases reverted.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fabric.journal")
	j := openTestJournal(t, path)
	if err := j.Register("run-a", "spec-a", 42, 4); err != nil {
		t.Fatalf("Register: %v", err)
	}
	j.RecordLease("run-a", 0, "w1")
	j.RecordLease("run-a", 1, "w2")
	j.RecordDone("run-a", 0, "w1", false, []float64{1.5, math.NaN()})
	j.RecordDone("run-a", 2, "w2", true, []float64{3})
	// Cell 1 stays leased: it must revert to pending on replay.
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2 := openTestJournal(t, path)
	runs := j2.Runs()
	if len(runs) != 1 {
		t.Fatalf("recovered %d runs, want 1", len(runs))
	}
	r := runs[0]
	if r.Run != "run-a" || r.Spec != "spec-a" || r.Seed != 42 || r.Cells != 4 {
		t.Fatalf("recovered run = %+v", r)
	}
	if len(r.Done) != 2 {
		t.Fatalf("recovered %d done cells, want 2: %+v", len(r.Done), r.Done)
	}
	d0 := r.Done[0]
	if d0.Worker != "w1" || d0.Cached || len(d0.Values) != 2 || d0.Values[0] != 1.5 || !math.IsNaN(d0.Values[1]) {
		t.Fatalf("done[0] = %+v", d0)
	}
	d2 := r.Done[2]
	if d2.Worker != "w2" || !d2.Cached || len(d2.Values) != 1 || d2.Values[0] != 3 {
		t.Fatalf("done[2] = %+v", d2)
	}
	if r.Leased != 1 {
		t.Fatalf("recovered Leased = %d, want 1 (cell 1 was out on lease)", r.Leased)
	}
}

// TestJournalFinishRetiresRun checks a finished run does not resurrect
// on reboot while its unfinished sibling does.
func TestJournalFinishRetiresRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fabric.journal")
	j := openTestJournal(t, path)
	for _, id := range []string{"keep", "retire"} {
		if err := j.Register(id, "spec", 1, 2); err != nil {
			t.Fatalf("Register(%s): %v", id, err)
		}
	}
	j.RecordDone("retire", 0, "w", false, []float64{1})
	j.RecordDone("retire", 1, "w", false, []float64{2})
	if err := j.Finish("retire"); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	j.Close()

	j2 := openTestJournal(t, path)
	runs := j2.Runs()
	if len(runs) != 1 || runs[0].Run != "keep" {
		t.Fatalf("recovered %+v, want only run %q", runs, "keep")
	}
}

// TestJournalTornFinalRecord simulates a crash mid-append: the final
// record has no terminating newline, so replay must drop exactly that
// record, the open must truncate it, and subsequent appends must form
// a journal that replays cleanly.
func TestJournalTornFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fabric.journal")
	j := openTestJournal(t, path)
	if err := j.Register("r1", "spec", 1, 3); err != nil {
		t.Fatalf("Register: %v", err)
	}
	j.RecordDone("r1", 0, "w", false, []float64{1})
	j.Close()

	// Tear the tail: a done record cut mid-value, no newline. Even
	// though the fragment is parseable JSON prefix-wise, it must not be
	// trusted.
	torn := `{"t":"done","run":"r1","index":1,"worker":"w","values":[2`
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.ReadFile(path)

	j2 := openTestJournal(t, path)
	runs := j2.Runs()
	if len(runs) != 1 || len(runs[0].Done) != 1 {
		t.Fatalf("after torn tail recovered %+v, want 1 run with 1 done cell", runs)
	}
	after, _ := os.ReadFile(path)
	if len(after) != len(before)-len(torn) {
		t.Fatalf("torn tail not truncated: file %d bytes, want %d", len(after), len(before)-len(torn))
	}
	// The journal must keep working on the truncated file.
	j2.RecordDone("r1", 2, "w", false, []float64{3})
	j2.Close()
	j3 := openTestJournal(t, path)
	if runs := j3.Runs(); len(runs) != 1 || len(runs[0].Done) != 2 {
		t.Fatalf("after post-truncation append recovered %+v, want 2 done cells", runs)
	}
	if _, ok := j3.Runs()[0].Done[1]; ok {
		t.Fatal("torn record for cell 1 leaked into the replayed state")
	}
}

// TestJournalReplayIdempotency replays the same bytes twice and
// requires identical state: record application must be a pure state
// transition with no hidden accumulation.
func TestJournalReplayIdempotency(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fabric.journal")
	j := openTestJournal(t, path)
	j.Register("a", "spec-a", 1, 3)
	j.Register("b", "spec-b", 2, 2)
	j.RecordLease("a", 0, "w1")
	j.RecordDone("a", 0, "w1", false, []float64{1})
	// Duplicate and conflicting records must fold away: a re-register,
	// a second completion of a done cell, a lease of a done cell.
	j.Register("a", "spec-a", 1, 3)
	j.RecordDone("a", 0, "w9", true, []float64{99})
	j.RecordLease("a", 0, "w9")
	j.Finish("b")
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	good1, n1, runs1, order1 := replayJournal(data)
	good2, n2, runs2, order2 := replayJournal(data)
	if good1 != good2 || n1 != n2 || !reflect.DeepEqual(order1, order2) || !reflect.DeepEqual(runs1, runs2) {
		t.Fatalf("replay not idempotent: (%d,%d,%v) vs (%d,%d,%v)", good1, n1, order1, good2, n2, order2)
	}
	a := runs1["a"]
	if a == nil || len(a.done) != 1 || a.done[0].Worker != "w1" || len(a.leased) != 0 {
		t.Fatalf("replayed run a = %+v; first completion must win and done cells must not re-lease", a)
	}
	if _, ok := runs1["b"]; ok {
		t.Fatal("finished run b survived replay")
	}
}

// TestJournalMalformedInteriorLine checks the replay stops trusting
// the file at the first corrupt interior line instead of skipping it
// and replaying records whose context is gone.
func TestJournalMalformedInteriorLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fabric.journal")
	lines := []string{
		`{"t":"register","run":"a","spec":"s","seed":1,"cells":2}`,
		`not json at all`,
		`{"t":"done","run":"a","index":0,"worker":"w","values":[1]}`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	j := openTestJournal(t, path)
	runs := j.Runs()
	if len(runs) != 1 || len(runs[0].Done) != 0 {
		t.Fatalf("recovered %+v, want run a with no done cells (replay stops at corruption)", runs)
	}
}

// TestJournalCompaction exercises compaction racing live completions:
// goroutines append done records while Compact rewrites the file, and
// the reopened journal must hold every record regardless of which side
// of the rewrite each append landed on.
func TestJournalCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fabric.journal")
	j := openTestJournal(t, path)
	const cells = 64
	if err := j.Register("live", "spec", 1, cells); err != nil {
		t.Fatalf("Register: %v", err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g * (cells / 4); i < (g+1)*(cells/4); i++ {
				j.RecordDone("live", i, fmt.Sprintf("w%d", g), false, []float64{float64(i)})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if err := j.Compact(); err != nil {
				t.Errorf("Compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if err := j.Compact(); err != nil {
		t.Fatalf("final Compact: %v", err)
	}
	j.Close()

	j2 := openTestJournal(t, path)
	runs := j2.Runs()
	if len(runs) != 1 || len(runs[0].Done) != cells {
		t.Fatalf("after compaction recovered %d runs / %d done cells, want 1 / %d", len(runs), len(runs[0].Done), cells)
	}
	for i := 0; i < cells; i++ {
		d, ok := runs[0].Done[i]
		if !ok || len(d.Values) != 1 || d.Values[0] != float64(i) {
			t.Fatalf("done[%d] = %+v, ok=%v", i, d, ok)
		}
	}
}

// TestJournalAutoCompaction checks the finish-triggered compaction:
// churning many short runs through the journal must keep the file
// bounded by the live state, not the full history.
func TestJournalAutoCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fabric.journal")
	j := openTestJournal(t, path)
	if err := j.Register("keeper", "spec", 1, 1); err != nil {
		t.Fatal(err)
	}
	j.RecordDone("keeper", 0, "w", false, []float64{1})
	for n := 0; n < 50; n++ {
		id := fmt.Sprintf("churn-%d", n)
		if err := j.Register(id, "spec", 1, 4); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			j.RecordDone(id, i, "w", false, []float64{float64(i)})
		}
		if err := j.Finish(id); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// 50 churned runs wrote ~300 records; the live state is 2. Compaction
	// must have kept the file within the 2*live+16 trigger's reach.
	if lines := strings.Count(string(data), "\n"); lines > 2*2+16 {
		t.Fatalf("journal holds %d records after churn; auto-compaction failed", lines)
	}
	j2 := openTestJournal(t, path)
	if runs := j2.Runs(); len(runs) != 1 || runs[0].Run != "keeper" || len(runs[0].Done) != 1 {
		t.Fatalf("after churn recovered %+v, want only keeper with 1 done cell", runs)
	}
}
