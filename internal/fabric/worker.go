package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"gridseg/internal/rng"
	"gridseg/internal/store"
)

// Worker is the compute side of the fabric: a loop that leases cells
// from a coordinator, serves them from the shared store when possible,
// computes them otherwise, fills the store, and reports completion.
//
// The loop is deliberately stateless between cells — a worker can die
// at any point without corrupting anything. Die before completion and
// the lease expires and the cell requeues; die after the store Put but
// before completion and the replacement worker gets a cache hit.
//
// The loop also outlives the coordinator: every HTTP call carries a
// per-request deadline (RequestTimeout), so a dead or partitioned
// coordinator can never hang the worker, and lease failures back off
// exponentially with jitter (BackoffBase..BackoffMax) until the
// coordinator is reachable again — a coordinator restart needs no
// operator intervention on the worker side. Outage entries and
// recoveries are counted in fabric_worker_outages_total and
// fabric_worker_reconnects_total.
type Worker struct {
	// Name identifies the worker in leases and SSE events.
	Name string
	// Coordinator is the base URL of the fabric endpoints, e.g.
	// "http://host:8080/fabric".
	Coordinator string
	// Client is the HTTP client; nil means http.DefaultClient. The
	// chaos tests inject faults through this client's transport.
	Client *http.Client
	// Store is the shared result store (usually a store.Remote over
	// the coordinator's object endpoint). Optional: nil disables the
	// cache probe and fill.
	Store store.Backend
	// Runner computes one cell. Required.
	Runner func(Job) ([]float64, error)
	// Poll is the idle wait between lease attempts when the
	// coordinator has no work; zero means 200ms.
	Poll time.Duration
	// RequestTimeout bounds every fabric HTTP round trip; zero means
	// 10s. Without it a coordinator that accepts the connection and
	// then dies (or a black-holing network) would hang the worker
	// forever mid-request.
	RequestTimeout time.Duration
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// (with jitter) applied to failed lease, completion, and store-fill
	// attempts; zero means 100ms base and 5s cap.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// LeaseMax asks the coordinator for up to k cells per lease round
	// trip (batched leasing; heartbeats and completions stay per
	// cell). Values < 2 lease one cell at a time.
	LeaseMax int
	// Token, when non-empty, is sent as an "Authorization: Bearer"
	// header on every fabric call, matching the coordinator's -token.
	Token string
	// Logger, when non-nil, receives structured progress and retry
	// events (log/slog) tagged with the worker name and per-cell
	// attrs. It takes precedence over Logf.
	Logger *slog.Logger
	// Logf receives progress and retry noise when Logger is nil; nil
	// discards it. Kept for tests that want t.Logf plumbing.
	Logf func(format string, args ...any)

	// jitter randomizes backoff so a worker fleet released by a
	// coordinator restart does not stampede in lockstep. Seeded from
	// the worker name; only touched from the Run goroutine.
	jitter *rng.Source
}

// completeRetries bounds how often a worker retries posting one
// completion before abandoning the cell to lease expiry. With the
// default backoff shape the retries span several seconds, enough to
// ride out a coordinator restart.
const completeRetries = 6

// Run executes the lease loop until ctx is canceled, returning
// ctx.Err(). Transport errors never abort the loop — a worker outlives
// coordinator restarts, backing off between attempts and resuming
// leasing as soon as the coordinator answers again.
func (w *Worker) Run(ctx context.Context) error {
	poll := w.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	failures := 0
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		grants, err := w.lease(ctx)
		if err != nil {
			if failures == 0 {
				metricWorkerOutages.Inc()
				w.log("coordinator unreachable, backing off", "err", err)
			}
			failures++
			if !sleep(ctx, w.backoff(failures)) {
				return ctx.Err()
			}
			continue
		}
		if failures > 0 {
			metricWorkerReconnects.Inc()
			w.log("coordinator reachable again", "failed_attempts", failures)
			failures = 0
		}
		if len(grants) == 0 {
			if !sleep(ctx, poll) {
				return ctx.Err()
			}
			continue
		}
		w.workBatch(ctx, grants)
	}
}

// backoff returns the capped exponential wait before retry `attempt`
// (1-based), jittered over the upper half of the window so a fleet of
// workers spreads its retries instead of stampeding together.
func (w *Worker) backoff(attempt int) time.Duration {
	base := w.BackoffBase
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := w.BackoffMax
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if w.jitter == nil {
		h := fnv.New64a()
		h.Write([]byte(w.Name))
		w.jitter = rng.New(h.Sum64() | 1)
	}
	return d/2 + time.Duration(w.jitter.Float64()*float64(d/2))
}

// leaseKey identifies one held grant; a batch can span runs, so the
// cell index alone is not unique.
type leaseKey struct {
	run   string
	index int
}

// heldLeases is the set of grants a worker currently holds, shared
// between the batch's compute loop and its heartbeat goroutine.
type heldLeases struct {
	mu     sync.Mutex
	grants map[leaseKey]LeaseGrant
}

func newHeldLeases(grants []LeaseGrant) *heldLeases {
	h := &heldLeases{grants: make(map[leaseKey]LeaseGrant, len(grants))}
	for _, g := range grants {
		h.grants[leaseKey{g.Job.Run, g.Job.Index}] = g
	}
	return h
}

func (h *heldLeases) remove(g LeaseGrant) {
	h.mu.Lock()
	delete(h.grants, leaseKey{g.Job.Run, g.Job.Index})
	h.mu.Unlock()
}

func (h *heldLeases) snapshot() []LeaseGrant {
	h.mu.Lock()
	out := make([]LeaseGrant, 0, len(h.grants))
	for _, g := range h.grants {
		out = append(out, g)
	}
	h.mu.Unlock()
	return out
}

// workBatch handles one lease batch end to end: a single heartbeat
// goroutine renews every still-held grant while the cells are computed
// in order. A worker killed mid-batch stops heartbeating everything,
// and all its unfinished leases expire and requeue.
func (w *Worker) workBatch(ctx context.Context, grants []LeaseGrant) {
	held := newHeldLeases(grants)
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeats(hbCtx, grants[0].TTLMilli, held)
	}()
	for _, g := range grants {
		if ctx.Err() != nil {
			break
		}
		w.workCell(ctx, g)
		held.remove(g)
	}
	stopHB()
	<-hbDone
}

// workCell handles one granted lease: store probe, compute, store
// fill, completion. Heartbeats are the batch's job, not the cell's.
func (w *Worker) workCell(ctx context.Context, grant LeaseGrant) {
	job := grant.Job
	if w.Store != nil {
		if v, ok, err := w.Store.Get(job.Key); err == nil && ok && len(v) == len(job.Columns) {
			w.complete(ctx, grant, v, true, "")
			return
		}
	}
	values, err := w.Runner(job)
	if ctx.Err() != nil {
		// Killed mid-cell: abandon without completing. Even if the
		// runner returned a value, reporting it now would race our own
		// shutdown; the lease expiry path covers the cell.
		return
	}
	if err != nil {
		w.complete(ctx, grant, nil, false, err.Error())
		return
	}
	if w.Store != nil {
		// Fill the shared cache, fail-soft: a store outage costs
		// recomputation on the next miss, never the result.
		var putErr error
		for attempt := 1; attempt <= 3; attempt++ {
			if putErr = w.Store.Put(job.Key, values); putErr == nil {
				break
			}
			if !sleep(ctx, w.backoff(attempt)) {
				return
			}
		}
		if putErr != nil {
			w.log("store put failed", "run", job.Run, "cell", job.Index, "key", job.Key, "err", putErr)
		}
	}
	w.complete(ctx, grant, values, false, "")
}

// lease asks the coordinator for up to LeaseMax cells. A nil slice
// with nil error means no work is currently available.
func (w *Worker) lease(ctx context.Context) ([]LeaseGrant, error) {
	max := w.LeaseMax
	if max < 1 {
		max = 1
	}
	status, body, err := w.post(ctx, "/lease", leaseRequest{Worker: w.Name, Max: max})
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusNoContent:
		return nil, nil
	case http.StatusOK:
	default:
		return nil, fmt.Errorf("lease: %s", respError(status, body))
	}
	if max > 1 {
		var batch leaseBatchResponse
		if err := json.Unmarshal(body, &batch); err != nil {
			return nil, fmt.Errorf("lease: %w", err)
		}
		return batch.Grants, nil
	}
	var grant LeaseGrant
	if err := json.Unmarshal(body, &grant); err != nil {
		return nil, fmt.Errorf("lease: %w", err)
	}
	return []LeaseGrant{grant}, nil
}

// heartbeats renews every held lease at a third of the TTL until
// stopped. A 409 means that lease was requeued; its renewal stops but
// the computation continues — the completion will still be accepted
// idempotently. Transport failures are logged and retried on the next
// tick; the per-request deadline keeps a dead coordinator from
// hanging the goroutine.
func (w *Worker) heartbeats(ctx context.Context, ttlMilli int64, held *heldLeases) {
	interval := time.Duration(ttlMilli) * time.Millisecond / 3
	if interval <= 0 {
		interval = time.Second
	}
	for {
		if !sleep(ctx, interval) {
			return
		}
		for _, g := range held.snapshot() {
			status, _, err := w.post(ctx, "/heartbeat", heartbeatRequest{Run: g.Job.Run, Index: g.Job.Index, Lease: g.Lease})
			if err != nil {
				w.log("heartbeat failed", "run", g.Job.Run, "cell", g.Job.Index, "err", err)
				continue
			}
			if status == http.StatusConflict {
				w.log("lease lost", "run", g.Job.Run, "cell", g.Job.Index)
				held.remove(g)
			}
		}
	}
}

// complete reports a finished cell, retrying with backoff through
// transport faults: the coordinator's Complete is idempotent, so a
// torn connection whose request actually landed is safely resent, and
// the backoff window is wide enough to span a coordinator restart.
func (w *Worker) complete(ctx context.Context, grant LeaseGrant, values []float64, cached bool, errMsg string) {
	req := completeRequest{
		Run:    grant.Job.Run,
		Index:  grant.Job.Index,
		Lease:  grant.Lease,
		Worker: w.Name,
		Cached: cached,
		Values: encodeValues(values),
		Error:  errMsg,
	}
	for attempt := 1; attempt <= completeRetries; attempt++ {
		status, body, err := w.post(ctx, "/complete", req)
		if err == nil {
			if status == http.StatusNoContent || status == http.StatusOK {
				if errMsg == "" {
					w.log("cell complete", "run", grant.Job.Run, "cell", grant.Job.Index, "cached", cached)
				}
				return
			}
			w.log("complete rejected", "run", grant.Job.Run, "cell", grant.Job.Index, "status", status, "body", respError(status, body))
		} else {
			w.log("complete failed", "run", grant.Job.Run, "cell", grant.Job.Index, "err", err)
		}
		if !sleep(ctx, w.backoff(attempt)) {
			return
		}
	}
	// Abandoned: the lease expires and the cell requeues; the store
	// already holds the bytes, so the retry is a cache hit.
	w.log("complete abandoned", "run", grant.Job.Run, "cell", grant.Job.Index, "attempts", completeRetries)
}

// post sends one JSON protocol request under the per-request deadline
// and returns the status plus the (bounded) response body. The body is
// fully consumed before returning so the deadline covers the whole
// exchange and the connection is reusable.
func (w *Worker) post(ctx context.Context, path string, body any) (int, []byte, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	timeout := w.RequestTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, strings.TrimRight(w.Coordinator, "/")+path, bytes.NewReader(data))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if w.Token != "" {
		req.Header.Set("Authorization", "Bearer "+w.Token)
	}
	client := w.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// log emits one structured event. With a Logger it goes through
// log/slog at Info with the worker name attached; otherwise the attrs
// are rendered as k=v pairs through Logf so tests wiring t.Logf keep
// readable output.
func (w *Worker) log(msg string, attrs ...any) {
	if w.Logger != nil {
		w.Logger.Info(msg, append([]any{slog.String("worker", w.Name)}, attrs...)...)
		return
	}
	if w.Logf == nil {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fabric worker %s: %s", w.Name, msg)
	for i := 0; i+1 < len(attrs); i += 2 {
		fmt.Fprintf(&b, " %v=%v", attrs[i], attrs[i+1])
	}
	w.Logf("%s", b.String())
}

// respError summarizes a non-success protocol response.
func respError(status int, body []byte) string {
	msg := strings.TrimSpace(string(body))
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	if len(msg) > 256 {
		msg = msg[:256]
	}
	if msg == "" {
		return http.StatusText(status)
	}
	return fmt.Sprintf("%d %s: %s", status, http.StatusText(status), msg)
}

// sleep waits for d or until ctx is canceled, reporting whether the
// full wait elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
