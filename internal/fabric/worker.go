package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"gridseg/internal/store"
)

// Worker is the compute side of the fabric: a loop that leases cells
// from a coordinator, serves them from the shared store when possible,
// computes them otherwise, fills the store, and reports completion.
//
// The loop is deliberately stateless between cells — a worker can die
// at any point without corrupting anything. Die before completion and
// the lease expires and the cell requeues; die after the store Put but
// before completion and the replacement worker gets a cache hit.
// Transport failures are retried with backoff; completion retries are
// safe because Complete is idempotent on the coordinator.
type Worker struct {
	// Name identifies the worker in leases and SSE events.
	Name string
	// Coordinator is the base URL of the fabric endpoints, e.g.
	// "http://host:8080/fabric".
	Coordinator string
	// Client is the HTTP client; nil means http.DefaultClient. The
	// chaos tests inject faults through this client's transport.
	Client *http.Client
	// Store is the shared result store (usually a store.Remote over
	// the coordinator's object endpoint). Optional: nil disables the
	// cache probe and fill.
	Store store.Backend
	// Runner computes one cell. Required.
	Runner func(Job) ([]float64, error)
	// Poll is the idle wait between lease attempts when the
	// coordinator has no work; zero means 200ms.
	Poll time.Duration
	// Logger, when non-nil, receives structured progress and retry
	// events (log/slog) tagged with the worker name and per-cell
	// attrs. It takes precedence over Logf.
	Logger *slog.Logger
	// Logf receives progress and retry noise when Logger is nil; nil
	// discards it. Kept for tests that want t.Logf plumbing.
	Logf func(format string, args ...any)
}

// completeRetries bounds how often a worker retries posting one
// completion before abandoning the cell to lease expiry.
const completeRetries = 5

// Run executes the lease loop until ctx is canceled, returning
// ctx.Err(). Transport errors never abort the loop — a worker outlives
// coordinator restarts.
func (w *Worker) Run(ctx context.Context) error {
	poll := w.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		grant, ok, err := w.lease(ctx)
		if err != nil {
			w.log("lease request failed", "err", err)
			if !sleep(ctx, poll) {
				return ctx.Err()
			}
			continue
		}
		if !ok {
			if !sleep(ctx, poll) {
				return ctx.Err()
			}
			continue
		}
		w.work(ctx, grant)
	}
}

// work handles one granted lease end to end.
func (w *Worker) work(ctx context.Context, grant LeaseGrant) {
	job := grant.Job
	if w.Store != nil {
		if v, ok, err := w.Store.Get(job.Key); err == nil && ok && len(v) == len(job.Columns) {
			w.complete(ctx, grant, v, true, "")
			return
		}
	}

	// Renew the lease while computing. The goroutine stops when the
	// cell is finished or the worker dies; a worker killed mid-cell
	// stops heartbeating, the lease expires, and the cell requeues.
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeats(hbCtx, grant)
	}()

	values, err := w.Runner(job)
	stopHB()
	<-hbDone
	if ctx.Err() != nil {
		// Killed mid-cell: abandon without completing. Even if the
		// runner returned a value, reporting it now would race our own
		// shutdown; the lease expiry path covers the cell.
		return
	}
	if err != nil {
		w.complete(ctx, grant, nil, false, err.Error())
		return
	}
	if w.Store != nil {
		// Fill the shared cache, fail-soft: a store outage costs
		// recomputation on the next miss, never the result.
		var putErr error
		for attempt := 0; attempt < 3; attempt++ {
			if putErr = w.Store.Put(job.Key, values); putErr == nil {
				break
			}
			if !sleep(ctx, time.Duration(attempt+1)*50*time.Millisecond) {
				return
			}
		}
		if putErr != nil {
			w.log("store put failed", "run", job.Run, "cell", job.Index, "key", job.Key, "err", putErr)
		}
	}
	w.complete(ctx, grant, values, false, "")
}

// lease asks the coordinator for work. ok=false means no work is
// currently available.
func (w *Worker) lease(ctx context.Context) (LeaseGrant, bool, error) {
	resp, err := w.post(ctx, "/lease", leaseRequest{Worker: w.Name})
	if err != nil {
		return LeaseGrant{}, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		io.Copy(io.Discard, resp.Body)
		return LeaseGrant{}, false, nil
	case http.StatusOK:
	default:
		return LeaseGrant{}, false, fmt.Errorf("lease: %s", respError(resp))
	}
	var grant LeaseGrant
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(&grant); err != nil {
		return LeaseGrant{}, false, fmt.Errorf("lease: %w", err)
	}
	return grant, true, nil
}

// heartbeats renews the lease at a third of its TTL until stopped. A
// 409 means the lease was requeued; renewal stops but the computation
// continues — its completion will still be accepted idempotently.
func (w *Worker) heartbeats(ctx context.Context, grant LeaseGrant) {
	interval := time.Duration(grant.TTLMilli) * time.Millisecond / 3
	if interval <= 0 {
		interval = time.Second
	}
	for {
		if !sleep(ctx, interval) {
			return
		}
		resp, err := w.post(ctx, "/heartbeat", heartbeatRequest{Run: grant.Job.Run, Index: grant.Job.Index, Lease: grant.Lease})
		if err != nil {
			w.log("heartbeat failed", "run", grant.Job.Run, "cell", grant.Job.Index, "err", err)
			continue
		}
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code == http.StatusConflict {
			w.log("lease lost", "run", grant.Job.Run, "cell", grant.Job.Index)
			return
		}
	}
}

// complete reports a finished cell, retrying through transport faults:
// the coordinator's Complete is idempotent, so a torn connection whose
// request actually landed is safely resent.
func (w *Worker) complete(ctx context.Context, grant LeaseGrant, values []float64, cached bool, errMsg string) {
	req := completeRequest{
		Run:    grant.Job.Run,
		Index:  grant.Job.Index,
		Lease:  grant.Lease,
		Worker: w.Name,
		Cached: cached,
		Values: encodeValues(values),
		Error:  errMsg,
	}
	for attempt := 0; attempt < completeRetries; attempt++ {
		resp, err := w.post(ctx, "/complete", req)
		if err == nil {
			code := resp.StatusCode
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if code == http.StatusNoContent || code == http.StatusOK {
				if errMsg == "" {
					w.log("cell complete", "run", grant.Job.Run, "cell", grant.Job.Index, "cached", cached)
				}
				return
			}
			w.log("complete rejected", "run", grant.Job.Run, "cell", grant.Job.Index, "status", code)
		} else {
			w.log("complete failed", "run", grant.Job.Run, "cell", grant.Job.Index, "err", err)
		}
		if !sleep(ctx, time.Duration(attempt+1)*50*time.Millisecond) {
			return
		}
	}
	// Abandoned: the lease expires and the cell requeues; the store
	// already holds the bytes, so the retry is a cache hit.
	w.log("complete abandoned", "run", grant.Job.Run, "cell", grant.Job.Index, "attempts", completeRetries)
}

// post sends one JSON protocol request.
func (w *Worker) post(ctx context.Context, path string, body any) (*http.Response, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimRight(w.Coordinator, "/")+path, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	client := w.Client
	if client == nil {
		client = http.DefaultClient
	}
	return client.Do(req)
}

// log emits one structured event. With a Logger it goes through
// log/slog at Info with the worker name attached; otherwise the attrs
// are rendered as k=v pairs through Logf so tests wiring t.Logf keep
// readable output.
func (w *Worker) log(msg string, attrs ...any) {
	if w.Logger != nil {
		w.Logger.Info(msg, append([]any{slog.String("worker", w.Name)}, attrs...)...)
		return
	}
	if w.Logf == nil {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fabric worker %s: %s", w.Name, msg)
	for i := 0; i+1 < len(attrs); i += 2 {
		fmt.Fprintf(&b, " %v=%v", attrs[i], attrs[i+1])
	}
	w.Logf("%s", b.String())
}

// respError summarizes a non-success protocol response.
func respError(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		return resp.Status
	}
	return resp.Status + ": " + msg
}

// sleep waits for d or until ctx is canceled, reporting whether the
// full wait elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
