package fabric

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-cranked Clock so the lease tests control expiry
// exactly, with no sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// mkJobs builds n trivial jobs with a two-column schema.
func mkJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Index: i, Key: "k", Seed: uint64(i), Columns: []string{"a", "b"}}
	}
	return jobs
}

// collector records CellDone callbacks for assertions.
type collector struct {
	mu    sync.Mutex
	cells []CellDone
}

func (c *collector) add(d CellDone) {
	c.mu.Lock()
	c.cells = append(c.cells, d)
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cells)
}

// TestLeaseExpiryRequeuesOnce pins the expiry path: a lease whose TTL
// lapses without renewal is handed out exactly once more — not zero
// times (lost cell), not twice (duplicated cell).
func TestLeaseExpiryRequeuesOnce(t *testing.T) {
	clock := newFakeClock()
	tab := NewTable(10*time.Second, clock.now)
	var got collector
	done, err := tab.Register("r1", mkJobs(1), got.add)
	if err != nil {
		t.Fatal(err)
	}

	grantA, ok := tab.Lease("alice")
	if !ok {
		t.Fatal("no lease for alice")
	}
	// While the lease is live, nobody else gets the cell.
	if _, ok := tab.Lease("bob"); ok {
		t.Fatal("live lease handed out twice")
	}

	clock.advance(11 * time.Second)
	grantB, ok := tab.Lease("bob")
	if !ok {
		t.Fatal("expired lease must requeue to bob")
	}
	if grantB.Job.Index != 0 || grantB.Lease == grantA.Lease {
		t.Fatalf("bad requeue grant: %+v", grantB)
	}
	if n := tab.Requeues(); n != 1 {
		t.Fatalf("requeues = %d, want 1", n)
	}
	// The requeued lease is live again: exactly once, not repeatedly.
	if _, ok := tab.Lease("carol"); ok {
		t.Fatal("requeued cell handed out a second time")
	}

	if err := tab.Complete("r1", 0, grantB.Lease, "bob", false, []float64{1, 2}, ""); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	default:
		t.Fatal("done channel not closed after last cell")
	}
	if got.count() != 1 {
		t.Fatalf("onDone fired %d times, want 1", got.count())
	}
	// Done is absorbing: even after expiry-scale time passes, the cell
	// never reappears.
	clock.advance(time.Hour)
	if _, ok := tab.Lease("dave"); ok {
		t.Fatal("completed cell re-leased")
	}
}

// TestLateCompletionIdempotent pins the presumed-dead-worker case: the
// cell requeues, the replacement and the original both finish, and the
// cell is reported exactly once — the late completion with the stale
// lease is accepted (the bytes are identical by construction) but
// never double-reported.
func TestLateCompletionIdempotent(t *testing.T) {
	clock := newFakeClock()
	tab := NewTable(10*time.Second, clock.now)
	var got collector
	done, err := tab.Register("r1", mkJobs(2), got.add)
	if err != nil {
		t.Fatal(err)
	}

	grantA, _ := tab.Lease("alice")
	clock.advance(11 * time.Second)
	grantB, ok := tab.Lease("bob")
	if !ok || grantB.Job.Index != grantA.Job.Index {
		t.Fatalf("requeue grant = %+v, %v", grantB, ok)
	}

	// Alice was only presumed dead: her completion lands first, with
	// the stale lease token.
	if err := tab.Complete("r1", 0, grantA.Lease, "alice", false, []float64{1, 2}, ""); err != nil {
		t.Fatal(err)
	}
	if got.count() != 1 {
		t.Fatalf("onDone fired %d times after first completion, want 1", got.count())
	}
	// Bob finishes the same cell with the same bytes: silently folded.
	if err := tab.Complete("r1", 0, grantB.Lease, "bob", false, []float64{1, 2}, ""); err != nil {
		t.Fatal(err)
	}
	if got.count() != 1 {
		t.Fatalf("duplicate completion reported: onDone fired %d times", got.count())
	}

	grantC, ok := tab.Lease("carol")
	if !ok || grantC.Job.Index != 1 {
		t.Fatalf("second cell grant = %+v, %v", grantC, ok)
	}
	if err := tab.Complete("r1", 1, grantC.Lease, "carol", false, []float64{3, 4}, ""); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	default:
		t.Fatal("done channel not closed")
	}
	if got.count() != 2 {
		t.Fatalf("onDone fired %d times, want 2", got.count())
	}
}

// TestHeartbeatRenewal pins that renewal moves the expiry: a
// heartbeating worker keeps its lease arbitrarily long, and the lease
// only requeues once heartbeats stop for a full TTL.
func TestHeartbeatRenewal(t *testing.T) {
	clock := newFakeClock()
	tab := NewTable(10*time.Second, clock.now)
	if _, err := tab.Register("r1", mkJobs(1), nil); err != nil {
		t.Fatal(err)
	}
	grant, _ := tab.Lease("alice")
	for i := 0; i < 5; i++ {
		clock.advance(8 * time.Second)
		if !tab.Heartbeat("r1", 0, grant.Lease) {
			t.Fatalf("heartbeat %d rejected", i)
		}
		if _, ok := tab.Lease("bob"); ok {
			t.Fatalf("renewed lease requeued at heartbeat %d", i)
		}
	}
	// 40s past the original expiry, the lease is still alice's. Stop
	// renewing and it lapses; the next hungry worker takes the cell.
	clock.advance(11 * time.Second)
	if _, ok := tab.Lease("bob"); !ok {
		t.Fatal("lapsed lease must requeue")
	}
	// Alice's token is dead once the cell is re-granted.
	if tab.Heartbeat("r1", 0, grant.Lease) {
		t.Fatal("stale heartbeat accepted after re-grant")
	}
}

// TestCompleteErrorAndCancel pins the failure paths: a deterministic
// cell error is delivered once, and completions for canceled runs are
// silent no-ops.
func TestCompleteErrorAndCancel(t *testing.T) {
	clock := newFakeClock()
	tab := NewTable(10*time.Second, clock.now)
	var got collector
	if _, err := tab.Register("r1", mkJobs(2), got.add); err != nil {
		t.Fatal(err)
	}
	grant, _ := tab.Lease("alice")
	if err := tab.Complete("r1", grant.Job.Index, grant.Lease, "alice", false, nil, "boom"); err != nil {
		t.Fatal(err)
	}
	if got.count() != 1 || got.cells[0].Err != "boom" {
		t.Fatalf("error cell not delivered: %+v", got.cells)
	}
	tab.Cancel("r1")
	if err := tab.Complete("r1", 1, 99, "bob", false, []float64{1, 2}, ""); err != nil {
		t.Fatal(err)
	}
	if got.count() != 1 {
		t.Fatal("completion for canceled run must not be reported")
	}
	if _, ok := tab.Lease("bob"); ok {
		t.Fatal("canceled run still leasing")
	}
}

// TestCompleteValidates pins the two hard rejections: an out-of-range
// index and a schema-width mismatch are protocol errors, not data.
func TestCompleteValidates(t *testing.T) {
	tab := NewTable(time.Second, nil)
	if _, err := tab.Register("r1", mkJobs(1), nil); err != nil {
		t.Fatal(err)
	}
	if err := tab.Complete("r1", 5, 1, "w", false, []float64{1, 2}, ""); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := tab.Complete("r1", 0, 1, "w", false, []float64{1}, ""); err == nil {
		t.Fatal("short value vector accepted")
	}
}

// TestNaNValuesCrossTheWire pins the NaN<->null completion encoding.
func TestNaNValuesCrossTheWire(t *testing.T) {
	req := completeRequest{Values: encodeValues([]float64{1, math.NaN(), -2})}
	data, err := req.Values[1].MarshalJSON()
	if err != nil || string(data) != "null" {
		t.Fatalf("NaN marshals to %s, %v", data, err)
	}
	got := decodeValues(req.Values)
	if got[0] != 1 || !math.IsNaN(got[1]) || got[2] != -2 {
		t.Fatalf("round trip = %v", got)
	}
}

// TestHeartbeatConcurrent exercises lease/heartbeat/complete from many
// goroutines under the race detector: the table must stay consistent
// and report every cell exactly once.
func TestHeartbeatConcurrent(t *testing.T) {
	const cells, workers = 64, 8
	tab := NewTable(50*time.Millisecond, nil)
	var got collector
	done, err := tab.Register("r1", mkJobs(cells), got.add)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			for {
				grant, ok := tab.Lease(name)
				if !ok {
					select {
					case <-done:
						return
					default:
						time.Sleep(time.Millisecond)
						continue
					}
				}
				// Hold the cell across a couple of heartbeat rounds.
				for i := 0; i < 2; i++ {
					time.Sleep(5 * time.Millisecond)
					tab.Heartbeat("r1", grant.Job.Index, grant.Lease)
				}
				if err := tab.Complete("r1", grant.Job.Index, grant.Lease, name, false, []float64{float64(grant.Job.Index), 0}, ""); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case <-done:
	default:
		t.Fatal("done not closed")
	}
	if got.count() != cells {
		t.Fatalf("reported %d cells, want %d", got.count(), cells)
	}
	seen := map[int]bool{}
	for _, d := range got.cells {
		if seen[d.Index] {
			t.Fatalf("cell %d reported twice", d.Index)
		}
		seen[d.Index] = true
	}
}
