package fabric

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gridseg/internal/store"
)

// TestLeaseBatchGrantsUpToMax pins the batched-lease table semantics:
// one scan hands out up to max distinct cells, each with its own lease
// token, and never a cell twice.
func TestLeaseBatchGrantsUpToMax(t *testing.T) {
	tab := NewTable(10*time.Second, newFakeClock().now)
	var got collector
	if _, err := tab.Register("r1", mkJobs(5), got.add); err != nil {
		t.Fatal(err)
	}
	grants := tab.LeaseBatch("alice", 3)
	if len(grants) != 3 {
		t.Fatalf("LeaseBatch(3) granted %d cells", len(grants))
	}
	seen := map[int]bool{}
	leases := map[uint64]bool{}
	for _, g := range grants {
		if seen[g.Job.Index] {
			t.Fatalf("cell %d granted twice in one batch", g.Job.Index)
		}
		seen[g.Job.Index] = true
		if leases[g.Lease] {
			t.Fatalf("lease token %d reused within a batch", g.Lease)
		}
		leases[g.Lease] = true
	}
	// Asking for more than remains grants exactly the remainder; a
	// further request grants nothing.
	if rest := tab.LeaseBatch("bob", 10); len(rest) != 2 {
		t.Fatalf("LeaseBatch(10) granted %d cells, want the 2 remaining", len(rest))
	}
	if extra := tab.LeaseBatch("carol", 4); len(extra) != 0 {
		t.Fatalf("exhausted table still granted %d cells", len(extra))
	}
	// Max < 1 behaves like 1 (the single-lease path delegates here).
	tab2 := NewTable(10*time.Second, newFakeClock().now)
	if _, err := tab2.Register("r2", mkJobs(2), got.add); err != nil {
		t.Fatal(err)
	}
	if g := tab2.LeaseBatch("dave", 0); len(g) != 1 {
		t.Fatalf("LeaseBatch(0) granted %d cells, want 1", len(g))
	}
}

// TestWorkerBatchedLeaseLoop runs the full protocol with LeaseMax > 1:
// the worker leases cells several at a round trip, heartbeats every
// held grant, and the run completes exactly once per cell.
func TestWorkerBatchedLeaseLoop(t *testing.T) {
	const cells = 12
	coord := NewCoordinator(400*time.Millisecond, nil)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	jobs := make([]Job, cells)
	for i := range jobs {
		jobs[i] = Job{Index: i, Key: store.CellSpec{Scope: "batch", Rep: i}.Key(), Seed: uint64(i), Columns: []string{"a"}}
	}
	var got collector
	done, err := coord.Table().Register("run", jobs, got.add)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{
		Name:        "batcher",
		Coordinator: srv.URL,
		Client:      srv.Client(),
		Store:       store.NewMemory(),
		LeaseMax:    4,
		Poll:        10 * time.Millisecond,
		Runner: func(j Job) ([]float64, error) {
			// Longer than TTL/3: every held grant in the batch depends on
			// the shared heartbeat goroutine while earlier cells compute.
			time.Sleep(150 * time.Millisecond)
			return []float64{float64(j.Index)}, nil
		},
		Logf: t.Logf,
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.Run(ctx)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("batched run did not complete")
	}
	cancel()
	wg.Wait()

	if got.count() != cells {
		t.Fatalf("reported %d cells, want %d", got.count(), cells)
	}
	seen := map[int]bool{}
	for _, d := range got.cells {
		if seen[d.Index] {
			t.Fatalf("cell %d reported twice", d.Index)
		}
		seen[d.Index] = true
		if d.Err != "" || d.Values[0] != float64(d.Index) {
			t.Fatalf("cell %d: %+v", d.Index, d)
		}
	}
}

// TestWorkerRequestTimeout pins the per-request deadline: a
// coordinator that accepts the connection and then never answers must
// not hang the worker past RequestTimeout.
func TestWorkerRequestTimeout(t *testing.T) {
	stall := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	defer srv.Close()
	defer close(stall) // LIFO: release the handler before Close waits on it

	w := &Worker{
		Name:           "impatient",
		Coordinator:    srv.URL,
		Client:         srv.Client(),
		RequestTimeout: 100 * time.Millisecond,
	}
	start := time.Now()
	_, err := w.lease(context.Background())
	if err == nil {
		t.Fatal("lease against a stalled coordinator returned no error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("lease took %v; the request deadline did not bound it", elapsed)
	}
}

// TestWorkerBackoffBounds pins the retry backoff shape: capped
// exponential growth with jitter confined to [d/2, d).
func TestWorkerBackoffBounds(t *testing.T) {
	w := &Worker{Name: "b", BackoffBase: 100 * time.Millisecond, BackoffMax: 800 * time.Millisecond}
	for attempt := 1; attempt <= 8; attempt++ {
		want := 100 * time.Millisecond << (attempt - 1)
		if want > 800*time.Millisecond {
			want = 800 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			d := w.backoff(attempt)
			if d < want/2 || d >= want {
				t.Fatalf("backoff(%d) = %v, want in [%v, %v)", attempt, d, want/2, want)
			}
		}
	}
}

// TestWorkerRidesOutCoordinatorRestart kills the coordinator's
// listener mid-sweep and rebinds it on the same address: the worker
// must back off through the outage, reconnect on its own, and finish
// the run, with the outage and reconnect counted.
func TestWorkerRidesOutCoordinatorRestart(t *testing.T) {
	const cells = 8
	outagesBefore := metricWorkerOutages.Value()
	reconnectsBefore := metricWorkerReconnects.Value()

	coord := NewCoordinator(300*time.Millisecond, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	hs := &http.Server{Handler: coord.Handler()}
	serving := make(chan struct{})
	go func() {
		close(serving)
		hs.Serve(l)
	}()
	<-serving

	jobs := make([]Job, cells)
	for i := range jobs {
		jobs[i] = Job{Index: i, Key: store.CellSpec{Scope: "restart", Rep: i}.Key(), Seed: uint64(i), Columns: []string{"a"}}
	}
	var got collector
	done, err := coord.Table().Register("run", jobs, got.add)
	if err != nil {
		t.Fatal(err)
	}

	computed := make(chan struct{}, cells)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{
		Name:           "phoenix",
		Coordinator:    "http://" + addr,
		Store:          store.NewMemory(),
		Poll:           10 * time.Millisecond,
		RequestTimeout: 500 * time.Millisecond,
		BackoffBase:    20 * time.Millisecond,
		BackoffMax:     200 * time.Millisecond,
		Runner: func(j Job) ([]float64, error) {
			computed <- struct{}{}
			time.Sleep(30 * time.Millisecond)
			return []float64{float64(j.Index)}, nil
		},
		Logf: t.Logf,
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.Run(ctx)
	}()

	// Let the worker get properly into the sweep, then yank the
	// listener out from under it.
	select {
	case <-computed:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never started computing")
	}
	if err := hs.Close(); err != nil {
		t.Fatal(err)
	}
	// The outage must outlast the worker's complete-retry window
	// (6 backoffs capped at 200ms), so the worker abandons its in-flight
	// completion, returns to the lease loop, and registers the outage
	// there before the coordinator comes back.
	time.Sleep(1200 * time.Millisecond)

	// Rebind the same address (retry: the kernel may briefly hold it)
	// and serve the same lease table — the fabric analogue of a
	// coordinator process restart.
	var l2 net.Listener
	for i := 0; i < 200; i++ {
		if l2, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	hs2 := &http.Server{Handler: coord.Handler()}
	go hs2.Serve(l2)
	defer hs2.Close()

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run did not complete after the coordinator came back")
	}
	cancel()
	wg.Wait()

	seen := map[int]bool{}
	for _, d := range got.cells {
		if seen[d.Index] {
			t.Fatalf("cell %d reported twice", d.Index)
		}
		seen[d.Index] = true
	}
	if len(seen) != cells {
		t.Fatalf("completed %d distinct cells, want %d", len(seen), cells)
	}
	if delta := metricWorkerOutages.Value() - outagesBefore; delta < 1 {
		t.Fatalf("fabric_worker_outages_total advanced by %d, want >= 1", delta)
	}
	if delta := metricWorkerReconnects.Value() - reconnectsBefore; delta < 1 {
		t.Fatalf("fabric_worker_reconnects_total advanced by %d, want >= 1", delta)
	}
}
