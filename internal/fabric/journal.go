package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Journal is the coordinator's crash-durability log: an append-only
// file of lease-table transitions (run registration, lease grants,
// cell completions, run finishes) written beside the result store. On
// reboot the coordinator replays it and resumes every registered run
// exactly where it left off — completed cells are absorbed from the
// journal (and reconciled against the content-addressed store), and
// everything else reverts to pending.
//
// Durability is deliberately two-tiered, leaning on the determinism
// contract the whole fabric is built on:
//
//   - Registrations and finishes fsync immediately: losing a run
//     entirely (or resurrecting a finished one) would be visible to
//     clients, so those records must survive any crash that follows
//     the acknowledgement.
//   - Lease and completion records fsync in batches (SyncBatch
//     appends per fsync). A crash can lose the unsynced tail, but
//     never a result: a worker fills the shared store *before* it
//     completes, so any completion the journal forgot is re-absorbed
//     from the store on the next registration scan — the cell's object
//     already exists under its content-addressed key, and determinism
//     makes serving it indistinguishable from recomputing it.
//
// Lease records are replayed only as bookkeeping (a leased cell whose
// coordinator died reverts to pending; the old lease token is
// meaningless to the new table), so compaction drops them. The journal
// keeps its replay state in memory — appends update it in lockstep —
// which makes Compact a pure rewrite of the live state: register and
// done records for unfinished runs, nothing else.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	// batch is the fsync batch size for lease/done appends.
	batch    int
	unsynced int
	// records counts the lines currently in the file; compaction
	// triggers when it exceeds twice the live-state size.
	records int
	runs    map[string]*journalRun
	order   []string
}

// DefaultSyncBatch is the lease/done fsync batch size used when a
// journal is opened with zero: small enough that a crash loses at most
// a handful of completion records (each re-absorbed from the store),
// large enough that fsync never dominates small-cell grids.
const DefaultSyncBatch = 32

// journalRun is the in-memory replay state of one registered run.
type journalRun struct {
	spec   string
	seed   uint64
	cells  int
	done   map[int]JournalDone
	leased map[int]string
}

// JournalDone is one completed cell as recovered from the journal.
type JournalDone struct {
	Worker string
	Cached bool
	Values []float64
}

// RecoveredRun is the replayed state of one unfinished run, returned
// by Runs for the embedding server to re-register on reboot.
type RecoveredRun struct {
	// Run is the run ID the register record carried.
	Run string
	// Spec and Seed identify the grid exactly as submitted.
	Spec string
	Seed uint64
	// Cells is the grid's total cell count at registration.
	Cells int
	// Done maps cell index -> completion for every cell whose done
	// record survived. Cells absent here revert to pending (the store
	// reconciliation pass absorbs any whose object already exists).
	Done map[int]JournalDone
	// Leased counts cells that were out on lease when the journal
	// stopped — they revert to pending, so this is purely diagnostic.
	Leased int
}

// journalRecord is the wire shape of one journal line.
type journalRecord struct {
	T      string     `json:"t"`
	Run    string     `json:"run"`
	Spec   string     `json:"spec,omitempty"`
	Seed   uint64     `json:"seed,omitempty"`
	Cells  int        `json:"cells,omitempty"`
	Index  int        `json:"index,omitempty"`
	Worker string     `json:"worker,omitempty"`
	Cached bool       `json:"cached,omitempty"`
	Values []nanFloat `json:"values,omitempty"`
}

// OpenJournal opens (creating if needed) the journal at path, replays
// it into memory, and truncates any torn final record — a crash
// mid-append leaves an unterminated tail, which is dropped so future
// appends form well-formed lines. syncBatch is the lease/done fsync
// batch size; zero means DefaultSyncBatch.
func OpenJournal(path string, syncBatch int) (*Journal, error) {
	if syncBatch <= 0 {
		syncBatch = DefaultSyncBatch
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fabric: opening journal: %w", err)
	}
	j := &Journal{
		path:  path,
		f:     f,
		batch: syncBatch,
		runs:  map[string]*journalRun{},
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("fabric: reading journal: %w", err)
	}
	good, records, runs, order := replayJournal(data)
	j.records = records
	j.runs = runs
	j.order = order
	if good < int64(len(data)) {
		// Torn tail: drop it so the next append starts a clean line.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("fabric: truncating torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("fabric: %w", err)
	}
	return j, nil
}

// replayJournal applies every well-formed, newline-terminated record
// in data, stopping at the first torn or malformed line. It returns
// the byte offset of the clean prefix, the record count, and the
// replayed run state. Replaying the same bytes twice yields the same
// state — records are applied by pure state transitions.
func replayJournal(data []byte) (good int64, records int, runs map[string]*journalRun, order []string) {
	runs = map[string]*journalRun{}
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// Unterminated tail: a record truncated mid-write. Even if
			// the fragment happens to parse, it may be the prefix of a
			// longer value, so it is never trusted.
			break
		}
		line := data[:nl]
		data = data[nl+1:]
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.T == "" || rec.Run == "" {
			// A malformed interior line means the file is not an
			// append-only journal we wrote; stop trusting it here.
			break
		}
		order = applyRecord(runs, order, rec)
		records++
		good += int64(nl + 1)
	}
	return good, records, runs, order
}

// applyRecord is the single state-transition function shared by
// replay and the live append path, which keeps the in-memory state
// bit-identical to what a reboot would rebuild.
func applyRecord(runs map[string]*journalRun, order []string, rec journalRecord) []string {
	switch rec.T {
	case "register":
		if _, ok := runs[rec.Run]; ok {
			return order // idempotent: duplicate registers are no-ops
		}
		runs[rec.Run] = &journalRun{
			spec:   rec.Spec,
			seed:   rec.Seed,
			cells:  rec.Cells,
			done:   map[int]JournalDone{},
			leased: map[int]string{},
		}
		return append(order, rec.Run)
	case "lease":
		if r := runs[rec.Run]; r != nil {
			if _, done := r.done[rec.Index]; !done {
				r.leased[rec.Index] = rec.Worker
			}
		}
	case "done":
		if r := runs[rec.Run]; r != nil {
			if _, ok := r.done[rec.Index]; !ok {
				r.done[rec.Index] = JournalDone{
					Worker: rec.Worker,
					Cached: rec.Cached,
					Values: decodeValues(rec.Values),
				}
			}
			delete(r.leased, rec.Index)
		}
	case "finish":
		if _, ok := runs[rec.Run]; ok {
			delete(runs, rec.Run)
			for i, id := range order {
				if id == rec.Run {
					order = append(order[:i], order[i+1:]...)
					break
				}
			}
		}
	}
	// Unknown record types are skipped: a newer binary's journal should
	// not brick an older one mid-rollback.
	return order
}

// Register durably records a run registration (fsynced before
// returning): a crash after the submission was acknowledged must not
// lose the run.
func (j *Journal) Register(run, spec string, seed uint64, cells int) error {
	return j.append(journalRecord{T: "register", Run: run, Spec: spec, Seed: seed, Cells: cells}, true)
}

// Finish durably records a run reaching a terminal state (done or
// deterministically failed); replay drops finished runs, and the
// append triggers compaction once dead records dominate the file.
// Shutdown is deliberately NOT a finish: a run interrupted by the
// coordinator dying stays registered so the next boot resumes it.
func (j *Journal) Finish(run string) error {
	return j.append(journalRecord{T: "finish", Run: run}, true)
}

// RecordLease implements TableRecorder: lease grants are journaled in
// the fsync batch. Errors are swallowed — the lease transition is
// reconstructible (an unjournaled lease replays as pending, which is
// also what a journaled one replays as).
func (j *Journal) RecordLease(run string, index int, worker string) {
	_ = j.append(journalRecord{T: "lease", Run: run, Index: index, Worker: worker}, false)
}

// RecordDone implements TableRecorder: accepted completions are
// journaled in the fsync batch. Errors are swallowed by design — the
// worker filled the shared store before completing, so a lost done
// record is re-absorbed from the store at the next registration scan.
func (j *Journal) RecordDone(run string, index int, worker string, cached bool, values []float64) {
	_ = j.append(journalRecord{T: "done", Run: run, Index: index, Worker: worker, Cached: cached, Values: encodeValues(values)}, false)
}

// append writes one record (a single write syscall per line, so a
// crash tears at most the final record), applies it to the in-memory
// state, and fsyncs when forced or when the batch fills. A finish
// record additionally compacts once dead records outnumber live ones.
func (j *Journal) append(rec journalRecord, syncNow bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("fabric: journal %s is closed", j.path)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fabric: journal: %w", err)
	}
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("fabric: journal: %w", err)
	}
	j.records++
	j.order = applyRecord(j.runs, j.order, rec)
	j.unsynced++
	if syncNow || j.unsynced >= j.batch {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("fabric: journal: %w", err)
		}
		j.unsynced = 0
	}
	if rec.T == "finish" && j.records > 2*j.liveRecordsLocked()+16 {
		return j.compactLocked()
	}
	return nil
}

// liveRecordsLocked is the size Compact would rewrite the file to.
func (j *Journal) liveRecordsLocked() int {
	n := 0
	for _, r := range j.runs {
		n += 1 + len(r.done)
	}
	return n
}

// Runs snapshots the unfinished runs in registration order, for the
// embedding server to re-register on reboot.
func (j *Journal) Runs() []RecoveredRun {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]RecoveredRun, 0, len(j.order))
	for _, id := range j.order {
		r := j.runs[id]
		rr := RecoveredRun{
			Run:    id,
			Spec:   r.spec,
			Seed:   r.seed,
			Cells:  r.cells,
			Done:   make(map[int]JournalDone, len(r.done)),
			Leased: len(r.leased),
		}
		for i, d := range r.done {
			v := make([]float64, len(d.Values))
			copy(v, d.Values)
			rr.Done[i] = JournalDone{Worker: d.Worker, Cached: d.Cached, Values: v}
		}
		out = append(out, rr)
	}
	return out
}

// Compact rewrites the journal to exactly the live state — one
// register record plus the done records of every unfinished run,
// lease records dropped (they replay as pending either way) — via a
// fsynced temp file and atomic rename, so a crash mid-compaction
// leaves either the old journal or the new one, never a mix.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("fabric: journal %s is closed", j.path)
	}
	return j.compactLocked()
}

func (j *Journal) compactLocked() error {
	tmp, err := os.CreateTemp(filepath.Dir(j.path), filepath.Base(j.path)+".*.tmp")
	if err != nil {
		return fmt.Errorf("fabric: compacting journal: %w", err)
	}
	cleanup := func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}
	records := 0
	write := func(rec journalRecord) error {
		data, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if _, err := tmp.Write(append(data, '\n')); err != nil {
			return err
		}
		records++
		return nil
	}
	for _, id := range j.order {
		r := j.runs[id]
		if err := write(journalRecord{T: "register", Run: id, Spec: r.spec, Seed: r.seed, Cells: r.cells}); err != nil {
			cleanup()
			return fmt.Errorf("fabric: compacting journal: %w", err)
		}
		idxs := make([]int, 0, len(r.done))
		for i := range r.done {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			d := r.done[i]
			if err := write(journalRecord{T: "done", Run: id, Index: i, Worker: d.Worker, Cached: d.Cached, Values: encodeValues(d.Values)}); err != nil {
				cleanup()
				return fmt.Errorf("fabric: compacting journal: %w", err)
			}
		}
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("fabric: compacting journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fabric: compacting journal: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fabric: compacting journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fabric: compacting journal: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("fabric: reopening compacted journal: %w", err)
	}
	j.f.Close()
	j.f = f
	j.records = records
	j.unsynced = 0
	return nil
}

// Sync flushes any batched appends to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil || j.unsynced == 0 {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("fabric: journal: %w", err)
	}
	j.unsynced = 0
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close syncs and closes the journal. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	if err != nil {
		return fmt.Errorf("fabric: closing journal: %w", err)
	}
	return nil
}
