package fabric

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"gridseg/internal/rng"
)

// ChaosTransport is a fault-injecting http.RoundTripper for the chaos
// tests: it wraps a real transport and, on a seeded deterministic
// schedule, replaces calls with the three failure shapes a distributed
// fabric must survive:
//
//   - timeout: the request is dropped before dispatch and a net.Error
//     with Timeout()=true is returned — the server never saw it.
//   - reject: a synthesized 503 is returned without dispatch — a load
//     balancer or overloaded server turning the request away.
//   - torn: the request IS dispatched and its server-side effect
//     happens, but the response is destroyed and an error returned —
//     the cruelest case, because the client cannot tell effect from
//     no-effect and must rely on protocol idempotency when retrying.
//
// The schedule is a pure function of the seed and the call sequence
// (draws are consumed under a mutex in call order), so a failing run
// reproduces by rerunning with the same seed.
type ChaosTransport struct {
	// Base is the real transport; nil means http.DefaultTransport.
	Base http.RoundTripper
	// PTimeout, PReject, and PTear are the per-call fault
	// probabilities (summing to at most 1).
	PTimeout, PReject, PTear float64

	mu     sync.Mutex
	src    *rng.Source
	calls  int
	faults int
}

// NewChaosTransport builds a chaos transport with the given seed and
// fault probabilities. Probabilities apply per call, independently.
func NewChaosTransport(seed uint64, base http.RoundTripper, pTimeout, pReject, pTear float64) *ChaosTransport {
	return &ChaosTransport{
		Base:     base,
		PTimeout: pTimeout,
		PReject:  pReject,
		PTear:    pTear,
		src:      rng.New(seed),
	}
}

// chaosMode is the fault drawn for one call.
type chaosMode int

const (
	chaosNone chaosMode = iota
	chaosTimeout
	chaosReject
	chaosTear
)

// RoundTrip implements http.RoundTripper.
func (c *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	c.mu.Lock()
	c.calls++
	mode := chaosNone
	r := c.src.Float64()
	switch {
	case r < c.PTimeout:
		mode = chaosTimeout
	case r < c.PTimeout+c.PReject:
		mode = chaosReject
	case r < c.PTimeout+c.PReject+c.PTear:
		mode = chaosTear
	}
	if mode != chaosNone {
		c.faults++
	}
	c.mu.Unlock()

	base := c.Base
	if base == nil {
		base = http.DefaultTransport
	}
	switch mode {
	case chaosTimeout:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, timeoutError{}
	case chaosReject:
		if req.Body != nil {
			req.Body.Close()
		}
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     http.Header{},
			Body:       io.NopCloser(strings.NewReader("chaos: injected rejection")),
			Request:    req,
		}, nil
	case chaosTear:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		// The server-side effect has happened; destroy the evidence.
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBytes))
		resp.Body.Close()
		return nil, fmt.Errorf("chaos: torn connection: %w", io.ErrUnexpectedEOF)
	}
	return base.RoundTrip(req)
}

// Faults returns how many calls were replaced with an injected fault.
func (c *ChaosTransport) Faults() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.faults
}

// Calls returns the total number of RoundTrip calls observed.
func (c *ChaosTransport) Calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// timeoutError is the injected pre-dispatch failure; it satisfies
// net.Error so client code treating timeouts specially sees the real
// shape.
type timeoutError struct{}

func (timeoutError) Error() string   { return "chaos: injected timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }
