// Package fabric is the distributed sweep fabric: the lease protocol
// that lets one coordinator farm the cells of a submitted grid out to
// many worker processes over HTTP.
//
// The protocol leans entirely on the determinism contract of
// internal/store: a cell's metric vector is a pure function of its
// content-addressed identity (store key + fully derived seed), so the
// fabric never needs distributed consensus. Leases only bound wasted
// work — if a lease expires and the cell is handed to a second worker
// while the first is still alive, both compute identical bytes and
// completion is idempotent by construction. The moving parts:
//
//   - Table: the coordinator's in-memory lease table. Cells are
//     pending, leased (with a TTL refreshed by heartbeats), or done;
//     an expired lease silently requeues the cell.
//   - Coordinator: the HTTP face of the table — POST lease/heartbeat/
//     complete plus a status endpoint.
//   - Worker: the client loop — lease a cell, probe the shared store,
//     compute on a miss, fill the store, report completion, heartbeat
//     while computing.
//   - ChaosTransport: a seeded fault-injecting http.RoundTripper used
//     by the chaos tests to prove the above survives timeouts, 5xx,
//     and torn connections.
package fabric

import (
	"math"
	"strconv"

	"gridseg/internal/batch"
)

// Job is the unit of leasable work: one grid cell, carried with its
// full content-addressed identity so any worker can compute it without
// knowing anything about the grid it came from. Columns pins the
// metric schema the coordinator expects back; a worker must refuse a
// job whose schema it does not produce.
type Job struct {
	// Run is the grid run the cell belongs to (the server's run ID).
	Run string `json:"run"`
	// Index is the cell's position in the grid's canonical cell order.
	Index int `json:"index"`
	// Key is the cell's content address (store.CellSpec.Key).
	Key string `json:"key"`
	// Seed is the cell's fully derived random seed (batch.CellSeed).
	Seed uint64 `json:"seed"`
	// Columns is the metric schema of the expected result vector.
	Columns []string `json:"columns"`
	// Cell is the cell's parameters.
	Cell batch.Cell `json:"cell"`
}

// LeaseGrant is the coordinator's answer to a lease request: a job,
// the lease token that must accompany heartbeats and completion, and
// the TTL within which the worker must renew.
type LeaseGrant struct {
	Job      Job    `json:"job"`
	Lease    uint64 `json:"lease"`
	TTLMilli int64  `json:"ttl_ms"`
}

// leaseRequest, heartbeatRequest, and completeRequest are the wire
// bodies of the three protocol posts.
type leaseRequest struct {
	Worker string `json:"worker"`
	// Max asks for up to k cells in one round trip (batched leasing).
	// Omitted or <= 1 keeps the original single-grant response shape;
	// > 1 switches the 200 response to leaseBatchResponse.
	Max int `json:"max,omitempty"`
}

// leaseBatchResponse is the 200 body of a batched lease request
// (Max > 1): up to Max grants, each carrying its own lease token and
// TTL. Heartbeats and completions stay per cell.
type leaseBatchResponse struct {
	Grants []LeaseGrant `json:"grants"`
}

type heartbeatRequest struct {
	Run   string `json:"run"`
	Index int    `json:"index"`
	Lease uint64 `json:"lease"`
}

type completeRequest struct {
	Run    string `json:"run"`
	Index  int    `json:"index"`
	Lease  uint64 `json:"lease"`
	Worker string `json:"worker"`
	// Cached reports that the worker served the cell from the shared
	// store instead of computing it.
	Cached bool `json:"cached,omitempty"`
	// Values is the metric vector; NaN crosses the wire as null,
	// mirroring the store's object encoding. Empty when Error is set.
	Values []nanFloat `json:"values,omitempty"`
	// Error carries a deterministic per-cell failure. Since cells are
	// pure functions of their identity, such an error would reproduce
	// on any worker, so the coordinator fails the run instead of
	// requeueing.
	Error string `json:"error,omitempty"`
}

// nanFloat maps NaN <-> null across the JSON boundary, exactly like
// the store's object encoding.
type nanFloat float64

// MarshalJSON encodes NaN as null.
func (f nanFloat) MarshalJSON() ([]byte, error) {
	if math.IsNaN(float64(f)) {
		return []byte("null"), nil
	}
	return []byte(strconv.FormatFloat(float64(f), 'g', -1, 64)), nil
}

// UnmarshalJSON decodes null as NaN.
func (f *nanFloat) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*f = nanFloat(math.NaN())
		return nil
	}
	v, err := strconv.ParseFloat(string(data), 64)
	if err != nil {
		return err
	}
	*f = nanFloat(v)
	return nil
}

// encodeValues and decodeValues convert between the engine's []float64
// and the NaN-safe wire slice.
func encodeValues(v []float64) []nanFloat {
	out := make([]nanFloat, len(v))
	for i, x := range v {
		out[i] = nanFloat(x)
	}
	return out
}

func decodeValues(v []nanFloat) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}
