package fabric

import (
	"encoding/json"
	"io"
	"net/http"
	"time"
)

// maxBodyBytes bounds a protocol request body; the largest legitimate
// body is a completion carrying a small metric vector.
const maxBodyBytes = 1 << 20

// Coordinator serves the lease protocol over HTTP. It owns a Table;
// the embedding server registers runs on it and mounts Handler under
// its fabric prefix.
type Coordinator struct {
	table *Table
}

// NewCoordinator builds a coordinator around a fresh lease table.
func NewCoordinator(ttl time.Duration, clock Clock) *Coordinator {
	return &Coordinator{table: NewTable(ttl, clock)}
}

// Table exposes the lease table for run registration.
func (c *Coordinator) Table() *Table { return c.table }

// Handler returns the protocol endpoints, relative to the mount point:
//
//	POST /lease      {"worker":...} -> 200 LeaseGrant | 204 no work
//	                 {"worker":..., "max":k} -> 200 {"grants":[...]} (up to k) | 204
//	POST /heartbeat  {"run","index","lease"} -> 200 | 409 lease lost
//	POST /complete   {"run","index","lease","worker","cached","values","error"} -> 204
//	GET  /status     -> per-run cell counts + cumulative protocol metrics
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /lease", func(w http.ResponseWriter, r *http.Request) {
		var req leaseRequest
		if !decodeBody(w, r, &req) {
			return
		}
		grants := c.table.LeaseBatch(req.Worker, req.Max)
		if len(grants) == 0 {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if req.Max > 1 {
			// Batched shape only when asked for: single-cell clients
			// (and pre-batching workers) keep the original response.
			json.NewEncoder(w).Encode(leaseBatchResponse{Grants: grants})
			return
		}
		json.NewEncoder(w).Encode(grants[0])
	})
	mux.HandleFunc("POST /heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req heartbeatRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if !c.table.Heartbeat(req.Run, req.Index, req.Lease) {
			http.Error(w, "lease lost", http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /complete", func(w http.ResponseWriter, r *http.Request) {
		var req completeRequest
		if !decodeBody(w, r, &req) {
			return
		}
		err := c.table.Complete(req.Run, req.Index, req.Lease, req.Worker, req.Cached, decodeValues(req.Values), req.Error)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		runs, m := c.table.Status()
		w.Header().Set("Content-Type", "application/json")
		// Requeues stays duplicated at the top level for clients that
		// predate the metrics snapshot.
		json.NewEncoder(w).Encode(struct {
			Runs     []RunStatus  `json:"runs"`
			Requeues int          `json:"requeues"`
			Metrics  TableMetrics `json:"metrics"`
		}{runs, m.Requeues, m})
	})
	return mux
}

// decodeBody parses a JSON request body, answering 400 on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(v); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}
