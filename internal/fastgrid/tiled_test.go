package fastgrid

import (
	"testing"

	"gridseg/internal/grid"
	"gridseg/internal/rng"
)

// TestTiledRoundTrip verifies that tiling any view preserves every
// spin, across sides that exercise edge tiles (n not a multiple of the
// tile side), multi-tile rows, and tiles larger than the grid.
func TestTiledRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, ts int }{
		{3, 0}, {31, 64}, {64, 64}, {65, 64}, {100, 64}, {130, 64},
		{100, 128}, {130, 128}, {200, 64},
	} {
		for _, rho := range []float64{0, 0.15} {
			lat := grid.RandomScenario(tc.n, 0.5, rho, rng.New(uint64(tc.n)))
			tl, err := TiledFromView(lat, tc.ts)
			if err != nil {
				t.Fatalf("n=%d ts=%d: %v", tc.n, tc.ts, err)
			}
			if tl.HasVacancies() != lat.HasVacancies() {
				t.Fatalf("n=%d ts=%d rho=%v: vacancy plane mismatch", tc.n, tc.ts, rho)
			}
			if err := tl.EqualView(lat); err != nil {
				t.Fatalf("n=%d ts=%d rho=%v: %v", tc.n, tc.ts, rho, err)
			}
			if got, want := tl.CountPlus(), lat.CountPlus(); got != want {
				t.Fatalf("n=%d ts=%d rho=%v: CountPlus = %d, want %d", tc.n, tc.ts, rho, got, want)
			}
			// And tiling the flat packed layout gives the same result:
			// both storage layouts satisfy the same view.
			tl2, err := TiledFromView(FromLattice(lat), tc.ts)
			if err != nil {
				t.Fatal(err)
			}
			if err := tl2.EqualView(lat); err != nil {
				t.Fatalf("n=%d ts=%d rho=%v (from packed): %v", tc.n, tc.ts, rho, err)
			}
		}
	}
}

// TestTiledInvalidTileSide verifies the word-alignment requirement.
func TestTiledInvalidTileSide(t *testing.T) {
	for _, ts := range []int{-64, 1, 32, 63, 65, 100} {
		if _, err := NewTiled(128, ts); err == nil {
			t.Fatalf("tile side %d accepted", ts)
		}
	}
	if _, err := NewTiled(0, 64); err == nil {
		t.Fatal("side 0 accepted")
	}
}

// TestTiledSetBits churns spin and occupancy bits against a reference
// lattice, crossing tile boundaries.
func TestTiledSetBits(t *testing.T) {
	n := 130
	lat := grid.RandomScenario(n, 0.5, 0.2, rng.New(3))
	tl, err := TiledFromView(lat, 64)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(4)
	for k := 0; k < 2000; k++ {
		i := src.Intn(n * n)
		switch src.Intn(3) {
		case 0:
			plus := src.Bernoulli(0.5)
			tl.SetSpinBit(i, plus)
			tl.SetOccupiedBit(i, true)
			if plus {
				lat.SetAt(i, grid.Plus)
			} else {
				lat.SetAt(i, grid.Minus)
			}
		case 1:
			tl.SetSpinBit(i, false)
			tl.SetOccupiedBit(i, false)
			lat.SetAt(i, grid.None)
		case 2:
			if lat.OccupiedAt(i) {
				got := tl.FlipBit(i)
				if want := lat.Flip(i) == grid.Plus; got != want {
					t.Fatalf("flip at %d: tiled %v, reference %v", i, got, want)
				}
			}
		}
	}
	if err := tl.EqualView(lat); err != nil {
		t.Fatal(err)
	}
}

// TestTiledWindowCounts pins the tiled window counting — both
// indicators, both boundaries, windows spanning tile seams and
// wrapping the torus — to the reference grid implementation.
func TestTiledWindowCounts(t *testing.T) {
	cases := []struct {
		n, w, ts int
		rho      float64
		open     bool
	}{
		{5, 2, 0, 0.2, true}, {9, 4, 64, 0.1, false},
		{64, 3, 64, 0.05, false}, {65, 32, 64, 0.2, true},
		{100, 10, 64, 0.1, true}, {130, 64, 64, 0.3, false},
		{130, 10, 128, 0, false}, {16, 20, 64, 0.1, true},
		{200, 70, 64, 0.1, false},
	}
	for _, tc := range cases {
		lat := grid.RandomScenario(tc.n, 0.5, tc.rho, rng.New(uint64(tc.n*100+tc.w)))
		tl, err := TiledFromView(lat, tc.ts)
		if err != nil {
			t.Fatal(err)
		}
		gotPlus := tl.PlusWindowCounts(tc.w, tc.open)
		wantPlus := lat.PlusWindowCounts(tc.w, tc.open)
		gotOcc := tl.OccupiedWindowCounts(tc.w, tc.open)
		wantOcc := lat.OccupiedWindowCounts(tc.w, tc.open)
		for i := range wantPlus {
			if gotPlus[i] != wantPlus[i] {
				t.Fatalf("%+v: PlusWindowCounts[%d] = %d, want %d", tc, i, gotPlus[i], wantPlus[i])
			}
			if gotOcc[i] != wantOcc[i] {
				t.Fatalf("%+v: OccupiedWindowCounts[%d] = %d, want %d", tc, i, gotOcc[i], wantOcc[i])
			}
		}
	}
}

// TestTiledRowRange cross-checks the tile-walking masked popcounts
// against direct enumeration across tile seams.
func TestTiledRowRange(t *testing.T) {
	n := 200
	lat := grid.Random(n, 0.5, rng.New(9))
	tl, err := TiledFromView(lat, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{0, 0}, {0, 63}, {0, 64}, {63, 64}, {63, 128}, {120, 199}, {0, 199}, {128, 128}, {65, 191}} {
		for _, y := range []int{0, 63, 64, 130, 199} {
			want := 0
			for x := r[0]; x <= r[1]; x++ {
				if lat.SpinAt(y*n+x) == grid.Plus {
					want++
				}
			}
			if got := tl.OnesInRowRange(y, r[0], r[1]); got != want {
				t.Fatalf("OnesInRowRange(%d, %d, %d) = %d, want %d", y, r[0], r[1], got, want)
			}
		}
	}
}

// TestTileCounts verifies the per-tile summaries sum to the lattice
// totals and respect edge-tile truncation.
func TestTileCounts(t *testing.T) {
	for _, rho := range []float64{0, 0.2} {
		n := 150
		lat := grid.RandomScenario(n, 0.5, rho, rng.New(11))
		tl, err := TiledFromView(lat, 64)
		if err != nil {
			t.Fatal(err)
		}
		plus, occ := tl.TileCounts()
		if len(plus) != tl.Tiles()*tl.Tiles() {
			t.Fatalf("got %d tiles, want %d", len(plus), tl.Tiles()*tl.Tiles())
		}
		var sumPlus, sumOcc int32
		for i := range plus {
			sumPlus += plus[i]
			sumOcc += occ[i]
		}
		if int(sumPlus) != lat.CountPlus() {
			t.Fatalf("rho=%v: tile plus sum %d, want %d", rho, sumPlus, lat.CountPlus())
		}
		if int(sumOcc) != lat.CountOccupied() {
			t.Fatalf("rho=%v: tile occ sum %d, want %d", rho, sumOcc, lat.CountOccupied())
		}
	}
}

// TestVisitStreamsMatchMaterialized pins the streaming visit forms to
// their materialized counterparts on both layouts.
func TestVisitStreamsMatchMaterialized(t *testing.T) {
	n := 100
	lat := grid.RandomScenario(n, 0.5, 0.1, rng.New(21))
	p := FromLattice(lat)
	tl, err := TiledFromView(lat, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, open := range []bool{false, true} {
		want := lat.PlusWindowCounts(7, open)
		rows := 0
		p.VisitPlusWindowCounts(7, open, func(y int, row []int32) {
			for x, v := range row {
				if v != want[y*n+x] {
					t.Fatalf("flat open=%v row %d col %d: %d, want %d", open, y, x, v, want[y*n+x])
				}
			}
			rows++
		})
		tl.VisitOccupiedWindowCounts(7, open, func(y int, row []int32) {
			wantOcc := lat.OccupiedWindowCounts(7, open)
			for x, v := range row {
				if v != wantOcc[y*n+x] {
					t.Fatalf("tiled occ open=%v row %d col %d: %d, want %d", open, y, x, v, wantOcc[y*n+x])
				}
			}
		})
		if rows != n {
			t.Fatalf("visited %d rows, want %d", rows, n)
		}
	}
}
