package fastgrid

import (
	"fmt"
	"math/bits"

	"gridseg/internal/grid"
)

// DefaultTileSide is the tile side used when a caller passes 0: a
// 64x64 tile is one cache line of spin words per tile row block and
// keeps a whole tile's plane in 512 bytes.
const DefaultTileSide = 64

// Tiled is the tile-blocked packed layout for giant grids: the n x n
// lattice is cut into square tiles of side ts (a multiple of 64), and
// each tile stores its spin bits — plus, under vacancy scenarios, its
// occupancy bits — contiguously, so a window pass over a tile touches
// one small resident block instead of striding across n-bit rows whose
// ends evict each other from cache once n is large.
//
// The halo story is explicit and subsumes the open-boundary clamping
// of the flat layout: edge tiles are zero-padded — bits at global
// coordinates >= n exist in the last tile row/column but always read
// 0 and are never set — and every row-range query clamps its column
// span to [0, n). Torus wrap-around is handled above the tile layer by
// splitting a wrapped window into at most two clamped ranges, exactly
// like the flat layout's planeRowWindow.
//
// Tiled satisfies grid.LatticeView, so the streaming observables in
// internal/measure run on it unchanged. The zero value is not usable;
// construct with NewTiled or TiledFromView.
type Tiled struct {
	n      int // lattice side
	ts     int // tile side (multiple of 64)
	tpr    int // tiles per row/column = ceil(n/ts)
	wpt    int // words per tile row = ts/64
	twords int // words per tile = ts*wpt
	spin   []uint64
	// occ is the occupancy plane, same layout; nil when fully occupied.
	occ []uint64
}

// NewTiled returns an all-minus, fully occupied tiled lattice of side
// n with the given tile side (0 means DefaultTileSide). The tile side
// must be a positive multiple of 64 so tile rows stay word-aligned.
func NewTiled(n, ts int) (*Tiled, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fastgrid: tiled side %d must be positive", n)
	}
	if ts == 0 {
		ts = DefaultTileSide
	}
	if ts < 64 || ts%64 != 0 {
		return nil, fmt.Errorf("fastgrid: tile side %d must be a positive multiple of 64", ts)
	}
	tpr := (n + ts - 1) / ts
	wpt := ts / 64
	t := &Tiled{n: n, ts: ts, tpr: tpr, wpt: wpt, twords: ts * wpt}
	t.spin = make([]uint64, tpr*tpr*t.twords)
	return t, nil
}

// TiledFromView packs any lattice view into the tiled layout,
// materializing an occupancy plane iff the view has vacancies.
func TiledFromView(v grid.LatticeView, ts int) (*Tiled, error) {
	t, err := NewTiled(v.N(), ts)
	if err != nil {
		return nil, err
	}
	if v.HasVacancies() {
		t.occ = make([]uint64, len(t.spin))
	}
	n := t.n
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			i := y*n + x
			switch v.SpinAt(i) {
			case grid.Plus:
				t.SetSpinBit(i, true)
				if t.occ != nil {
					t.SetOccupiedBit(i, true)
				}
			case grid.Minus:
				if t.occ != nil {
					t.SetOccupiedBit(i, true)
				}
			}
		}
	}
	return t, nil
}

// N returns the side length.
func (t *Tiled) N() int { return t.n }

// Sites returns the number of sites, n^2.
func (t *Tiled) Sites() int { return t.n * t.n }

// TileSide returns the tile side length.
func (t *Tiled) TileSide() int { return t.ts }

// Tiles returns the number of tiles per row (and per column).
func (t *Tiled) Tiles() int { return t.tpr }

// HasVacancies reports whether the lattice carries an occupancy plane.
func (t *Tiled) HasVacancies() bool { return t.occ != nil }

// word returns the word index and bit mask of global coordinates
// (x, y) within a plane.
func (t *Tiled) word(x, y int) (int, uint64) {
	tx, ty := x/t.ts, y/t.ts
	lx, ly := x-tx*t.ts, y-ty*t.ts
	return (ty*t.tpr+tx)*t.twords + ly*t.wpt + lx>>6, 1 << uint(lx&63)
}

// Bit reports whether the spin at row-major site index i is +1.
func (t *Tiled) Bit(i int) bool {
	w, m := t.word(i%t.n, i/t.n)
	return t.spin[w]&m != 0
}

// OccupiedBit reports whether site i holds an agent (always true
// without an occupancy plane).
func (t *Tiled) OccupiedBit(i int) bool {
	if t.occ == nil {
		return true
	}
	w, m := t.word(i%t.n, i/t.n)
	return t.occ[w]&m != 0
}

// OccupiedAt is OccupiedBit under the grid.LatticeView name.
func (t *Tiled) OccupiedAt(i int) bool { return t.OccupiedBit(i) }

// SpinAt returns the spin at row-major index i in the reference
// representation (None for a vacant site).
func (t *Tiled) SpinAt(i int) grid.Spin {
	if !t.OccupiedBit(i) {
		return grid.None
	}
	if t.Bit(i) {
		return grid.Plus
	}
	return grid.Minus
}

// The tiled lattice satisfies the shared read interface.
var _ grid.LatticeView = (*Tiled)(nil)

// SetSpinBit writes the spin bit at row-major site index i (true = +1).
func (t *Tiled) SetSpinBit(i int, plus bool) {
	w, m := t.word(i%t.n, i/t.n)
	if plus {
		t.spin[w] |= m
	} else {
		t.spin[w] &^= m
	}
}

// SetOccupiedBit writes the occupancy bit at row-major site index i.
// It panics without an occupancy plane.
func (t *Tiled) SetOccupiedBit(i int, occupied bool) {
	if t.occ == nil {
		panic("fastgrid: SetOccupiedBit on a tiled lattice without an occupancy plane")
	}
	w, m := t.word(i%t.n, i/t.n)
	if occupied {
		t.occ[w] |= m
	} else {
		t.occ[w] &^= m
	}
}

// FlipBit negates the spin at row-major site index i and reports
// whether the new spin is +1.
func (t *Tiled) FlipBit(i int) bool {
	w, m := t.word(i%t.n, i/t.n)
	t.spin[w] ^= m
	return t.spin[w]&m != 0
}

// planeRowRange counts the set bits of a plane in row y, columns
// [lo, hi] (no wrap; 0 <= lo <= hi < n), walking the tiles the span
// crosses with masked popcounts inside each.
func (t *Tiled) planeRowRange(plane []uint64, y, lo, hi int) int {
	ty := y / t.ts
	ly := y - ty*t.ts
	c := 0
	for tx := lo / t.ts; tx <= hi/t.ts; tx++ {
		base := (ty*t.tpr+tx)*t.twords + ly*t.wpt
		a, b := lo-tx*t.ts, hi-tx*t.ts
		if a < 0 {
			a = 0
		}
		if b > t.ts-1 {
			b = t.ts - 1
		}
		w0, w1 := a>>6, b>>6
		loMask := ^uint64(0) << uint(a&63)
		hiMask := ^uint64(0) >> uint(63-b&63)
		if w0 == w1 {
			c += bits.OnesCount64(plane[base+w0] & loMask & hiMask)
			continue
		}
		c += bits.OnesCount64(plane[base+w0] & loMask)
		for k := w0 + 1; k < w1; k++ {
			c += bits.OnesCount64(plane[base+k])
		}
		c += bits.OnesCount64(plane[base+w1] & hiMask)
	}
	return c
}

// planeRowWindow counts the set bits of a plane in row y over the
// column window [x-radius, x+radius], wrapped on the torus or clamped
// to [0, n) under the open boundary — the same split as the flat
// layout, expressed over tiles.
func (t *Tiled) planeRowWindow(plane []uint64, y, x, radius int, open bool) int {
	lo, hi := x-radius, x+radius
	if open {
		if lo < 0 {
			lo = 0
		}
		if hi >= t.n {
			hi = t.n - 1
		}
		return t.planeRowRange(plane, y, lo, hi)
	}
	switch {
	case lo < 0:
		return t.planeRowRange(plane, y, 0, hi) + t.planeRowRange(plane, y, t.n+lo, t.n-1)
	case hi >= t.n:
		return t.planeRowRange(plane, y, lo, t.n-1) + t.planeRowRange(plane, y, 0, hi-t.n)
	default:
		return t.planeRowRange(plane, y, lo, hi)
	}
}

// OnesInRowRange returns the number of +1 agents in row y, columns
// [lo, hi] (no wrap), mirroring the flat layout's method.
func (t *Tiled) OnesInRowRange(y, lo, hi int) int {
	return t.planeRowRange(t.spin, y, lo, hi)
}

// CountPlus returns the total number of +1 agents via popcount (the
// zero-padded halo bits of edge tiles never hold agents).
func (t *Tiled) CountPlus() int {
	c := 0
	for _, w := range t.spin {
		c += bits.OnesCount64(w)
	}
	return c
}

// PlusWindowCounts returns the per-site +1 window counts under either
// boundary, matching the flat layout bit for bit.
func (t *Tiled) PlusWindowCounts(radius int, open bool) []int32 {
	out := make([]int32, t.n*t.n)
	t.VisitPlusWindowCounts(radius, open, func(y int, row []int32) {
		copy(out[y*t.n:(y+1)*t.n], row)
	})
	return out
}

// OccupiedWindowCounts returns the per-site occupied-site window
// counts, matching the flat layout bit for bit.
func (t *Tiled) OccupiedWindowCounts(radius int, open bool) []int32 {
	if t.occ == nil {
		return grid.WindowAreas(t.n, radius, open)
	}
	out := make([]int32, t.n*t.n)
	t.VisitOccupiedWindowCounts(radius, open, func(y int, row []int32) {
		copy(out[y*t.n:(y+1)*t.n], row)
	})
	return out
}

// VisitPlusWindowCounts streams the per-site +1 window counts one row
// at a time through the shared bounded-memory core.
func (t *Tiled) VisitPlusWindowCounts(radius int, open bool, visit func(y int, row []int32)) {
	visitWindowCounts(t.n, radius, open, func(y, x int) int32 {
		return int32(t.planeRowWindow(t.spin, y, x, radius, open))
	}, visit)
}

// VisitOccupiedWindowCounts streams the per-site occupied-site window
// counts like VisitPlusWindowCounts.
func (t *Tiled) VisitOccupiedWindowCounts(radius int, open bool, visit func(y int, row []int32)) {
	if t.occ == nil {
		visitWindowAreas(t.n, radius, open, visit)
		return
	}
	visitWindowCounts(t.n, radius, open, func(y, x int) int32 {
		return int32(t.planeRowWindow(t.occ, y, x, radius, open))
	}, visit)
}

// TileCounts returns, per tile in tile-row-major order, the number of
// +1 agents and the number of occupied sites — the per-block summary
// the sampler debug dump prints (on a fully occupied lattice occ is
// the in-bounds tile area).
func (t *Tiled) TileCounts() (plus, occ []int32) {
	nt := t.tpr * t.tpr
	plus = make([]int32, nt)
	occ = make([]int32, nt)
	for ti := 0; ti < nt; ti++ {
		base := ti * t.twords
		for _, w := range t.spin[base : base+t.twords] {
			plus[ti] += int32(bits.OnesCount64(w))
		}
		if t.occ != nil {
			for _, w := range t.occ[base : base+t.twords] {
				occ[ti] += int32(bits.OnesCount64(w))
			}
			continue
		}
		// Fully occupied: the in-bounds area of this (possibly edge)
		// tile.
		tx, ty := ti%t.tpr, ti/t.tpr
		wdt, hgt := t.n-tx*t.ts, t.n-ty*t.ts
		if wdt > t.ts {
			wdt = t.ts
		}
		if hgt > t.ts {
			hgt = t.ts
		}
		occ[ti] = int32(wdt * hgt)
	}
	return plus, occ
}

// EqualView verifies site-for-site agreement with any lattice view and
// returns a descriptive error on the first mismatch.
func (t *Tiled) EqualView(v grid.LatticeView) error {
	if v.N() != t.n {
		return fmt.Errorf("fastgrid: tiled side %d != view side %d", t.n, v.N())
	}
	for i := 0; i < t.n*t.n; i++ {
		if got, want := t.SpinAt(i), v.SpinAt(i); got != want {
			return fmt.Errorf("fastgrid: tiled spin mismatch at site %d: %v, view %v", i, got, want)
		}
	}
	return nil
}
