// Package fastgrid implements the bit-packed representation of the
// torus lattice used by the fast Glauber engine: one spin per bit in
// []uint64 row words (+1 agents are set bits), with popcount-based
// (math/bits.OnesCount64) window counting. It mirrors the semantics of
// internal/grid exactly — the same site indexing, the same torus wrap —
// so a packed lattice and its reference twin can be kept in lockstep
// and compared bit for bit.
package fastgrid

import (
	"fmt"
	"math/bits"

	"gridseg/internal/grid"
)

// Lattice is an n x n torus of spins packed one per bit, row-major:
// site (x, y) lives at bit x&63 of word y*WordsPerRow()+x>>6, and a set
// bit means +1. The zero value is not usable; construct with
// FromLattice or NewPacked.
type Lattice struct {
	n     int
	wpr   int // words per row
	words []uint64
}

// NewPacked returns an all-minus packed lattice of side n.
func NewPacked(n int) *Lattice {
	wpr := (n + 63) / 64
	return &Lattice{n: n, wpr: wpr, words: make([]uint64, n*wpr)}
}

// FromLattice packs the spins of a reference lattice.
func FromLattice(l *grid.Lattice) *Lattice {
	n := l.N()
	p := NewPacked(n)
	for y := 0; y < n; y++ {
		base := y * n
		row := y * p.wpr
		for x := 0; x < n; x++ {
			if l.SpinAt(base+x) == grid.Plus {
				p.words[row+x>>6] |= 1 << uint(x&63)
			}
		}
	}
	return p
}

// N returns the side length.
func (p *Lattice) N() int { return p.n }

// WordsPerRow returns the packed row stride in words.
func (p *Lattice) WordsPerRow() int { return p.wpr }

// Bit reports whether the spin at row-major site index i is +1.
func (p *Lattice) Bit(i int) bool {
	x, y := i%p.n, i/p.n
	return p.words[y*p.wpr+x>>6]>>uint(x&63)&1 != 0
}

// FlipBit negates the spin at row-major site index i and reports
// whether the new spin is +1.
func (p *Lattice) FlipBit(i int) bool {
	x, y := i%p.n, i/p.n
	w := y*p.wpr + x>>6
	mask := uint64(1) << uint(x&63)
	p.words[w] ^= mask
	return p.words[w]&mask != 0
}

// CountPlus returns the total number of +1 agents via popcount.
func (p *Lattice) CountPlus() int {
	c := 0
	for _, w := range p.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// OnesInRowRange returns the number of +1 agents in row y, columns
// [lo, hi] (no wrap; 0 <= lo <= hi < n), using masked popcounts.
func (p *Lattice) OnesInRowRange(y, lo, hi int) int {
	row := y * p.wpr
	w0, w1 := lo>>6, hi>>6
	loMask := ^uint64(0) << uint(lo&63)
	hiMask := ^uint64(0) >> uint(63-hi&63)
	if w0 == w1 {
		return bits.OnesCount64(p.words[row+w0] & loMask & hiMask)
	}
	c := bits.OnesCount64(p.words[row+w0] & loMask)
	for k := w0 + 1; k < w1; k++ {
		c += bits.OnesCount64(p.words[row+k])
	}
	return c + bits.OnesCount64(p.words[row+w1]&hiMask)
}

// onesInRowWindow returns the number of +1 agents in row y over the
// wrapped column window [x-radius, x+radius].
func (p *Lattice) onesInRowWindow(y, x, radius int) int {
	lo, hi := x-radius, x+radius
	switch {
	case lo < 0:
		return p.OnesInRowRange(y, 0, hi) + p.OnesInRowRange(y, p.n+lo, p.n-1)
	case hi >= p.n:
		return p.OnesInRowRange(y, lo, p.n-1) + p.OnesInRowRange(y, 0, hi-p.n)
	default:
		return p.OnesInRowRange(y, lo, hi)
	}
}

// WindowCounts returns, for every site u (row-major), the number of +1
// agents in the Chebyshev ball of the given radius centered at u —
// the popcount-based equivalent of grid.Lattice.WindowCounts. The
// horizontal pass computes each row window with OnesCount64 over masked
// word ranges; the vertical pass slides the row sums. It panics if the
// window wraps onto itself (2*radius+1 > n).
func (p *Lattice) WindowCounts(radius int) []int32 {
	if 2*radius+1 > p.n {
		panic("fastgrid: window larger than torus")
	}
	n := p.n
	rowSum := make([]int32, n*n)
	for y := 0; y < n; y++ {
		base := y * n
		for x := 0; x < n; x++ {
			rowSum[base+x] = int32(p.onesInRowWindow(y, x, radius))
		}
	}
	out := make([]int32, n*n)
	for x := 0; x < n; x++ {
		var acc int32
		for dy := -radius; dy <= radius; dy++ {
			acc += rowSum[wrap(dy, n)*n+x]
		}
		out[x] = acc
		for y := 1; y < n; y++ {
			acc -= rowSum[wrap(y-1-radius, n)*n+x]
			acc += rowSum[wrap(y+radius, n)*n+x]
			out[y*n+x] = acc
		}
	}
	return out
}

func wrap(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}

// EqualLattice verifies bit-for-bit agreement with a reference lattice
// and returns a descriptive error on the first mismatch. It is the
// consistency check between the packed hot-path state and its mirror.
func (p *Lattice) EqualLattice(l *grid.Lattice) error {
	if l.N() != p.n {
		return fmt.Errorf("fastgrid: side %d != reference side %d", p.n, l.N())
	}
	for i := 0; i < p.n*p.n; i++ {
		plus := l.SpinAt(i) == grid.Plus
		if p.Bit(i) != plus {
			return fmt.Errorf("fastgrid: spin mismatch at site %d: packed %v, reference %v", i, p.Bit(i), plus)
		}
	}
	return nil
}
