// Package fastgrid implements the bit-packed representation of the
// lattice used by the fast engines: one spin per bit in []uint64 row
// words (+1 agents are set bits), with popcount-based
// (math/bits.OnesCount64) window counting. Vacancy scenarios add a
// second bit plane of the same shape recording occupancy (set bit =
// site holds an agent), and the open boundary replaces the torus wrap
// by clamped (edge-truncated) row and column windows. It mirrors the
// semantics of internal/grid exactly — the same site indexing, the
// same wrap or clamp — so a packed lattice and its reference twin can
// be kept in lockstep and compared bit for bit.
package fastgrid

import (
	"fmt"
	"math/bits"

	"gridseg/internal/grid"
	"gridseg/internal/scratch"
)

// Lattice is an n x n lattice of spins packed one per bit, row-major:
// site (x, y) lives at bit x&63 of word y*WordsPerRow()+x>>6, and a set
// bit means +1. On vacancy lattices a parallel occupancy plane marks
// the sites holding an agent (vacant sites read as 0 in both planes,
// like Minus — the occupancy plane is what tells them apart). The zero
// value is not usable; construct with FromLattice or NewPacked.
type Lattice struct {
	n     int
	wpr   int // words per row
	words []uint64
	// occ is the occupancy bit plane, same layout as words; nil on
	// fully occupied lattices (the paper's setting).
	occ []uint64
}

// NewPacked returns an all-minus, fully occupied packed lattice of
// side n.
func NewPacked(n int) *Lattice {
	wpr := (n + 63) / 64
	return &Lattice{n: n, wpr: wpr, words: make([]uint64, n*wpr)}
}

// FromLattice packs the spins of a reference lattice, together with an
// occupancy plane when the lattice has vacant sites.
func FromLattice(l *grid.Lattice) *Lattice {
	n := l.N()
	p := NewPacked(n)
	if l.HasVacancies() {
		p.occ = make([]uint64, n*p.wpr)
	}
	for y := 0; y < n; y++ {
		base := y * n
		row := y * p.wpr
		for x := 0; x < n; x++ {
			s := l.SpinAt(base + x)
			if s == grid.Plus {
				p.words[row+x>>6] |= 1 << uint(x&63)
			}
			if p.occ != nil && s != grid.None {
				p.occ[row+x>>6] |= 1 << uint(x&63)
			}
		}
	}
	return p
}

// N returns the side length.
func (p *Lattice) N() int { return p.n }

// Sites returns the number of sites, n^2.
func (p *Lattice) Sites() int { return p.n * p.n }

// WordsPerRow returns the packed row stride in words.
func (p *Lattice) WordsPerRow() int { return p.wpr }

// Bit reports whether the spin at row-major site index i is +1.
func (p *Lattice) Bit(i int) bool {
	x, y := i%p.n, i/p.n
	return p.words[y*p.wpr+x>>6]>>uint(x&63)&1 != 0
}

// HasVacancies reports whether the lattice carries an occupancy plane.
func (p *Lattice) HasVacancies() bool { return p.occ != nil }

// OccupiedBit reports whether the site at row-major index i holds an
// agent (always true on fully occupied lattices).
func (p *Lattice) OccupiedBit(i int) bool {
	if p.occ == nil {
		return true
	}
	x, y := i%p.n, i/p.n
	return p.occ[y*p.wpr+x>>6]>>uint(x&63)&1 != 0
}

// OccupiedAt is OccupiedBit under the grid.LatticeView name.
func (p *Lattice) OccupiedAt(i int) bool { return p.OccupiedBit(i) }

// SpinWord returns the k-th packed spin word (rows are WordsPerRow
// words long; bits past the row width are zero). Hot window loops read
// a word once and shift lanes out instead of re-indexing per site.
func (p *Lattice) SpinWord(k int) uint64 { return p.words[k] }

// OccupiedWord returns the k-th packed occupancy word, with every bit
// set when the lattice carries no vacancy plane.
func (p *Lattice) OccupiedWord(k int) uint64 {
	if p.occ == nil {
		return ^uint64(0)
	}
	return p.occ[k]
}

// SpinAt returns the spin at row-major index i in the reference
// representation (None for a vacant site).
func (p *Lattice) SpinAt(i int) grid.Spin {
	if !p.OccupiedBit(i) {
		return grid.None
	}
	if p.Bit(i) {
		return grid.Plus
	}
	return grid.Minus
}

// The packed lattice satisfies the shared read interface.
var _ grid.LatticeView = (*Lattice)(nil)

// FlipBit negates the spin at row-major site index i and reports
// whether the new spin is +1.
func (p *Lattice) FlipBit(i int) bool {
	x, y := i%p.n, i/p.n
	w := y*p.wpr + x>>6
	mask := uint64(1) << uint(x&63)
	p.words[w] ^= mask
	return p.words[w]&mask != 0
}

// SetSpinBit writes the spin bit at row-major site index i (true = +1).
// Relocation engines use it together with SetOccupiedBit to vacate and
// occupy sites; flip engines use FlipBit.
func (p *Lattice) SetSpinBit(i int, plus bool) {
	x, y := i%p.n, i/p.n
	w := y*p.wpr + x>>6
	mask := uint64(1) << uint(x&63)
	if plus {
		p.words[w] |= mask
	} else {
		p.words[w] &^= mask
	}
}

// SetOccupiedBit writes the occupancy bit at row-major site index i.
// It panics on a lattice without an occupancy plane — only vacancy
// scenarios relocate agents.
func (p *Lattice) SetOccupiedBit(i int, occupied bool) {
	if p.occ == nil {
		panic("fastgrid: SetOccupiedBit on a lattice without an occupancy plane")
	}
	x, y := i%p.n, i/p.n
	w := y*p.wpr + x>>6
	mask := uint64(1) << uint(x&63)
	if occupied {
		p.occ[w] |= mask
	} else {
		p.occ[w] &^= mask
	}
}

// CountPlus returns the total number of +1 agents via popcount.
func (p *Lattice) CountPlus() int {
	c := 0
	for _, w := range p.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// OnesInRowRange returns the number of +1 agents in row y, columns
// [lo, hi] (no wrap; 0 <= lo <= hi < n), using masked popcounts.
func (p *Lattice) OnesInRowRange(y, lo, hi int) int {
	return p.planeRowRange(p.words, y, lo, hi)
}

// planeRowRange counts the set bits of an arbitrary plane in row y,
// columns [lo, hi] (no wrap), using masked popcounts.
func (p *Lattice) planeRowRange(plane []uint64, y, lo, hi int) int {
	row := y * p.wpr
	w0, w1 := lo>>6, hi>>6
	loMask := ^uint64(0) << uint(lo&63)
	hiMask := ^uint64(0) >> uint(63-hi&63)
	if w0 == w1 {
		return bits.OnesCount64(plane[row+w0] & loMask & hiMask)
	}
	c := bits.OnesCount64(plane[row+w0] & loMask)
	for k := w0 + 1; k < w1; k++ {
		c += bits.OnesCount64(plane[row+k])
	}
	return c + bits.OnesCount64(plane[row+w1]&hiMask)
}

// planeRowWindow counts the set bits of a plane in row y over the
// column window [x-radius, x+radius], wrapped on the torus or clamped
// to [0, n) under the open boundary.
func (p *Lattice) planeRowWindow(plane []uint64, y, x, radius int, open bool) int {
	lo, hi := x-radius, x+radius
	if open {
		if lo < 0 {
			lo = 0
		}
		if hi >= p.n {
			hi = p.n - 1
		}
		return p.planeRowRange(plane, y, lo, hi)
	}
	switch {
	case lo < 0:
		return p.planeRowRange(plane, y, 0, hi) + p.planeRowRange(plane, y, p.n+lo, p.n-1)
	case hi >= p.n:
		return p.planeRowRange(plane, y, lo, p.n-1) + p.planeRowRange(plane, y, 0, hi-p.n)
	default:
		return p.planeRowRange(plane, y, lo, hi)
	}
}

// visitWindowCounts is the streaming window-count core shared by the
// flat and tiled layouts: it emits per-site window counts one row at a
// time, in ascending row order, holding only a ring of the 2*radius+1
// live horizontal row sums plus one accumulator row — O(n*radius)
// scratch from the free lists, independent of the n^2 output size.
// rowWindow(y, x) must return the count of the row-y column window
// centered at x (wrapped or clamped per the boundary); visit receives
// each output row in a buffer that is only valid during the call.
func visitWindowCounts(n, radius int, open bool, rowWindow func(y, x int) int32, visit func(y int, row []int32)) {
	if !open && 2*radius+1 > n {
		panic("fastgrid: window larger than torus")
	}
	span := 2*radius + 1
	bp := scratch.I32(n * span)
	buf := *bp
	op := scratch.I32(2 * n)
	acc := (*op)[:n]
	out := (*op)[n : 2*n]
	for x := range acc {
		acc[x] = 0
	}
	// slot returns the ring row of the unwrapped row index y; load
	// fills it from the plane (wrapping y on the torus). Rows enter the
	// ring in ascending unwrapped order and stay live for exactly span
	// emissions, so consecutive indices never collide.
	slot := func(y int) []int32 {
		r := y % span
		if r < 0 {
			r += span
		}
		return buf[r*n : r*n+n]
	}
	load := func(y int) []int32 {
		row := slot(y)
		yy := y
		if !open {
			yy = wrap(y, n)
		}
		for x := 0; x < n; x++ {
			row[x] = rowWindow(yy, x)
		}
		return row
	}
	// Pre-accumulate the rows above the first output row: unwrapped
	// rows -radius..radius-1 on the torus, the clamped prefix
	// 0..min(radius, n)-1 under the open boundary.
	first, last := -radius, radius-1
	if open {
		first = 0
		if last > n-1 {
			last = n - 1
		}
	}
	for y := first; y <= last; y++ {
		for x, v := range load(y) {
			acc[x] += v
		}
	}
	for y := 0; y < n; y++ {
		if enter := y + radius; !open || enter < n {
			for x, v := range load(enter) {
				acc[x] += v
			}
		}
		copy(out, acc)
		visit(y, out)
		if leave := y - radius; !open || leave >= 0 {
			for x, v := range slot(leave) {
				acc[x] -= v
			}
		}
	}
	scratch.PutI32(op)
	scratch.PutI32(bp)
}

// planeWindowCounts materializes the streaming counts of a bit plane
// into a freshly allocated per-site array (the non-streaming
// convenience form).
func (p *Lattice) planeWindowCounts(plane []uint64, radius int, open bool) []int32 {
	out := make([]int32, p.n*p.n)
	p.planeWindowCountsVisit(plane, radius, open, func(y int, row []int32) {
		copy(out[y*p.n:(y+1)*p.n], row)
	})
	return out
}

// planeWindowCountsVisit streams the window counts of a bit plane
// through visitWindowCounts.
func (p *Lattice) planeWindowCountsVisit(plane []uint64, radius int, open bool, visit func(y int, row []int32)) {
	visitWindowCounts(p.n, radius, open, func(y, x int) int32 {
		return int32(p.planeRowWindow(plane, y, x, radius, open))
	}, visit)
}

// WindowCounts returns, for every site u (row-major), the number of +1
// agents in the Chebyshev ball of the given radius centered at u —
// the popcount-based equivalent of grid.Lattice.WindowCounts. It
// panics if the window wraps onto itself (2*radius+1 > n).
func (p *Lattice) WindowCounts(radius int) []int32 {
	return p.planeWindowCounts(p.words, radius, false)
}

// PlusWindowCounts returns the per-site +1 counts under either
// boundary: wrapped windows on the torus, edge-clamped windows when
// open — the popcount equivalent of grid.Lattice.PlusWindowCounts.
func (p *Lattice) PlusWindowCounts(radius int, open bool) []int32 {
	return p.planeWindowCounts(p.words, radius, open)
}

// OccupiedWindowCounts returns the per-site occupied-site counts —
// the popcount equivalent of grid.Lattice.OccupiedWindowCounts. On a
// fully occupied lattice this is the geometric window area.
func (p *Lattice) OccupiedWindowCounts(radius int, open bool) []int32 {
	if p.occ == nil {
		return grid.WindowAreas(p.n, radius, open)
	}
	return p.planeWindowCounts(p.occ, radius, open)
}

// VisitPlusWindowCounts streams the per-site +1 window counts one row
// at a time in ascending row order, without materializing the n^2
// output: the row buffer passed to visit is reused across calls. This
// is the bounded-memory form the fast engines build their count lanes
// from on giant grids.
func (p *Lattice) VisitPlusWindowCounts(radius int, open bool, visit func(y int, row []int32)) {
	p.planeWindowCountsVisit(p.words, radius, open, visit)
}

// VisitOccupiedWindowCounts streams the per-site occupied-site window
// counts like VisitPlusWindowCounts. On a fully occupied lattice the
// rows hold the geometric window areas.
func (p *Lattice) VisitOccupiedWindowCounts(radius int, open bool, visit func(y int, row []int32)) {
	if p.occ != nil {
		p.planeWindowCountsVisit(p.occ, radius, open, visit)
		return
	}
	visitWindowAreas(p.n, radius, open, visit)
}

// visitWindowAreas streams the geometric window areas row by row — the
// occupied counts of a fully occupied lattice, with no plane to scan.
func visitWindowAreas(n, radius int, open bool, visit func(y int, row []int32)) {
	rp := scratch.I32(n)
	row := *rp
	if !open {
		if 2*radius+1 > n {
			panic("fastgrid: window larger than torus")
		}
		full := int32((2*radius + 1) * (2*radius + 1))
		for x := range row {
			row[x] = full
		}
		for y := 0; y < n; y++ {
			visit(y, row)
		}
		scratch.PutI32(rp)
		return
	}
	span := func(a int) int32 {
		lo, hi := a-radius, a+radius
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		return int32(hi - lo + 1)
	}
	sp := scratch.I32(n)
	xspan := *sp
	for x := range xspan {
		xspan[x] = span(x)
	}
	for y := 0; y < n; y++ {
		ys := span(y)
		for x := range row {
			row[x] = ys * xspan[x]
		}
		visit(y, row)
	}
	scratch.PutI32(sp)
	scratch.PutI32(rp)
}

func wrap(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}

// EqualLattice verifies bit-for-bit agreement with a reference lattice
// and returns a descriptive error on the first mismatch. It is the
// consistency check between the packed hot-path state and its mirror.
func (p *Lattice) EqualLattice(l *grid.Lattice) error {
	if l.N() != p.n {
		return fmt.Errorf("fastgrid: side %d != reference side %d", p.n, l.N())
	}
	for i := 0; i < p.n*p.n; i++ {
		plus := l.SpinAt(i) == grid.Plus
		if p.Bit(i) != plus {
			return fmt.Errorf("fastgrid: spin mismatch at site %d: packed %v, reference %v", i, p.Bit(i), plus)
		}
		if p.OccupiedBit(i) != l.OccupiedAt(i) {
			return fmt.Errorf("fastgrid: occupancy mismatch at site %d: packed %v, reference %v", i, p.OccupiedBit(i), l.OccupiedAt(i))
		}
	}
	return nil
}
