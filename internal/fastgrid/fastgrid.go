// Package fastgrid implements the bit-packed representation of the
// lattice used by the fast engines: one spin per bit in []uint64 row
// words (+1 agents are set bits), with popcount-based
// (math/bits.OnesCount64) window counting. Vacancy scenarios add a
// second bit plane of the same shape recording occupancy (set bit =
// site holds an agent), and the open boundary replaces the torus wrap
// by clamped (edge-truncated) row and column windows. It mirrors the
// semantics of internal/grid exactly — the same site indexing, the
// same wrap or clamp — so a packed lattice and its reference twin can
// be kept in lockstep and compared bit for bit.
package fastgrid

import (
	"fmt"
	"math/bits"

	"gridseg/internal/grid"
	"gridseg/internal/scratch"
)

// Lattice is an n x n lattice of spins packed one per bit, row-major:
// site (x, y) lives at bit x&63 of word y*WordsPerRow()+x>>6, and a set
// bit means +1. On vacancy lattices a parallel occupancy plane marks
// the sites holding an agent (vacant sites read as 0 in both planes,
// like Minus — the occupancy plane is what tells them apart). The zero
// value is not usable; construct with FromLattice or NewPacked.
type Lattice struct {
	n     int
	wpr   int // words per row
	words []uint64
	// occ is the occupancy bit plane, same layout as words; nil on
	// fully occupied lattices (the paper's setting).
	occ []uint64
}

// NewPacked returns an all-minus, fully occupied packed lattice of
// side n.
func NewPacked(n int) *Lattice {
	wpr := (n + 63) / 64
	return &Lattice{n: n, wpr: wpr, words: make([]uint64, n*wpr)}
}

// FromLattice packs the spins of a reference lattice, together with an
// occupancy plane when the lattice has vacant sites.
func FromLattice(l *grid.Lattice) *Lattice {
	n := l.N()
	p := NewPacked(n)
	if l.HasVacancies() {
		p.occ = make([]uint64, n*p.wpr)
	}
	for y := 0; y < n; y++ {
		base := y * n
		row := y * p.wpr
		for x := 0; x < n; x++ {
			s := l.SpinAt(base + x)
			if s == grid.Plus {
				p.words[row+x>>6] |= 1 << uint(x&63)
			}
			if p.occ != nil && s != grid.None {
				p.occ[row+x>>6] |= 1 << uint(x&63)
			}
		}
	}
	return p
}

// N returns the side length.
func (p *Lattice) N() int { return p.n }

// WordsPerRow returns the packed row stride in words.
func (p *Lattice) WordsPerRow() int { return p.wpr }

// Bit reports whether the spin at row-major site index i is +1.
func (p *Lattice) Bit(i int) bool {
	x, y := i%p.n, i/p.n
	return p.words[y*p.wpr+x>>6]>>uint(x&63)&1 != 0
}

// HasVacancies reports whether the lattice carries an occupancy plane.
func (p *Lattice) HasVacancies() bool { return p.occ != nil }

// OccupiedBit reports whether the site at row-major index i holds an
// agent (always true on fully occupied lattices).
func (p *Lattice) OccupiedBit(i int) bool {
	if p.occ == nil {
		return true
	}
	x, y := i%p.n, i/p.n
	return p.occ[y*p.wpr+x>>6]>>uint(x&63)&1 != 0
}

// FlipBit negates the spin at row-major site index i and reports
// whether the new spin is +1.
func (p *Lattice) FlipBit(i int) bool {
	x, y := i%p.n, i/p.n
	w := y*p.wpr + x>>6
	mask := uint64(1) << uint(x&63)
	p.words[w] ^= mask
	return p.words[w]&mask != 0
}

// CountPlus returns the total number of +1 agents via popcount.
func (p *Lattice) CountPlus() int {
	c := 0
	for _, w := range p.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// OnesInRowRange returns the number of +1 agents in row y, columns
// [lo, hi] (no wrap; 0 <= lo <= hi < n), using masked popcounts.
func (p *Lattice) OnesInRowRange(y, lo, hi int) int {
	return p.planeRowRange(p.words, y, lo, hi)
}

// planeRowRange counts the set bits of an arbitrary plane in row y,
// columns [lo, hi] (no wrap), using masked popcounts.
func (p *Lattice) planeRowRange(plane []uint64, y, lo, hi int) int {
	row := y * p.wpr
	w0, w1 := lo>>6, hi>>6
	loMask := ^uint64(0) << uint(lo&63)
	hiMask := ^uint64(0) >> uint(63-hi&63)
	if w0 == w1 {
		return bits.OnesCount64(plane[row+w0] & loMask & hiMask)
	}
	c := bits.OnesCount64(plane[row+w0] & loMask)
	for k := w0 + 1; k < w1; k++ {
		c += bits.OnesCount64(plane[row+k])
	}
	return c + bits.OnesCount64(plane[row+w1]&hiMask)
}

// planeRowWindow counts the set bits of a plane in row y over the
// column window [x-radius, x+radius], wrapped on the torus or clamped
// to [0, n) under the open boundary.
func (p *Lattice) planeRowWindow(plane []uint64, y, x, radius int, open bool) int {
	lo, hi := x-radius, x+radius
	if open {
		if lo < 0 {
			lo = 0
		}
		if hi >= p.n {
			hi = p.n - 1
		}
		return p.planeRowRange(plane, y, lo, hi)
	}
	switch {
	case lo < 0:
		return p.planeRowRange(plane, y, 0, hi) + p.planeRowRange(plane, y, p.n+lo, p.n-1)
	case hi >= p.n:
		return p.planeRowRange(plane, y, lo, p.n-1) + p.planeRowRange(plane, y, 0, hi-p.n)
	default:
		return p.planeRowRange(plane, y, lo, hi)
	}
}

// planeWindowCounts is the generic two-pass window counter over a bit
// plane: the horizontal pass computes each row window with OnesCount64
// over masked word ranges, the vertical pass slides (torus) or
// prefix-sums with clamped ranges (open) the row sums.
func (p *Lattice) planeWindowCounts(plane []uint64, radius int, open bool) []int32 {
	if !open && 2*radius+1 > p.n {
		panic("fastgrid: window larger than torus")
	}
	n := p.n
	rp := scratch.I32(n * n)
	rowSum := *rp
	for y := 0; y < n; y++ {
		base := y * n
		for x := 0; x < n; x++ {
			rowSum[base+x] = int32(p.planeRowWindow(plane, y, x, radius, open))
		}
	}
	out := make([]int32, n*n)
	if open {
		col := make([]int32, n+1)
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				col[y+1] = col[y] + rowSum[y*n+x]
			}
			for y := 0; y < n; y++ {
				lo, hi := y-radius, y+radius+1
				if lo < 0 {
					lo = 0
				}
				if hi > n {
					hi = n
				}
				out[y*n+x] = col[hi] - col[lo]
			}
		}
		scratch.PutI32(rp)
		return out
	}
	for x := 0; x < n; x++ {
		var acc int32
		for dy := -radius; dy <= radius; dy++ {
			acc += rowSum[wrap(dy, n)*n+x]
		}
		out[x] = acc
		for y := 1; y < n; y++ {
			acc -= rowSum[wrap(y-1-radius, n)*n+x]
			acc += rowSum[wrap(y+radius, n)*n+x]
			out[y*n+x] = acc
		}
	}
	scratch.PutI32(rp)
	return out
}

// WindowCounts returns, for every site u (row-major), the number of +1
// agents in the Chebyshev ball of the given radius centered at u —
// the popcount-based equivalent of grid.Lattice.WindowCounts. It
// panics if the window wraps onto itself (2*radius+1 > n).
func (p *Lattice) WindowCounts(radius int) []int32 {
	return p.planeWindowCounts(p.words, radius, false)
}

// PlusWindowCounts returns the per-site +1 counts under either
// boundary: wrapped windows on the torus, edge-clamped windows when
// open — the popcount equivalent of grid.Lattice.PlusWindowCounts.
func (p *Lattice) PlusWindowCounts(radius int, open bool) []int32 {
	return p.planeWindowCounts(p.words, radius, open)
}

// OccupiedWindowCounts returns the per-site occupied-site counts —
// the popcount equivalent of grid.Lattice.OccupiedWindowCounts. On a
// fully occupied lattice this is the geometric window area.
func (p *Lattice) OccupiedWindowCounts(radius int, open bool) []int32 {
	if p.occ == nil {
		return grid.WindowAreas(p.n, radius, open)
	}
	return p.planeWindowCounts(p.occ, radius, open)
}

func wrap(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}

// EqualLattice verifies bit-for-bit agreement with a reference lattice
// and returns a descriptive error on the first mismatch. It is the
// consistency check between the packed hot-path state and its mirror.
func (p *Lattice) EqualLattice(l *grid.Lattice) error {
	if l.N() != p.n {
		return fmt.Errorf("fastgrid: side %d != reference side %d", p.n, l.N())
	}
	for i := 0; i < p.n*p.n; i++ {
		plus := l.SpinAt(i) == grid.Plus
		if p.Bit(i) != plus {
			return fmt.Errorf("fastgrid: spin mismatch at site %d: packed %v, reference %v", i, p.Bit(i), plus)
		}
		if p.OccupiedBit(i) != l.OccupiedAt(i) {
			return fmt.Errorf("fastgrid: occupancy mismatch at site %d: packed %v, reference %v", i, p.OccupiedBit(i), l.OccupiedAt(i))
		}
	}
	return nil
}
