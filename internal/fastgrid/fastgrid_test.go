package fastgrid

import (
	"testing"

	"gridseg/internal/grid"
	"gridseg/internal/rng"
)

// TestPackRoundTrip verifies that packing preserves every spin, across
// sides that exercise partial last words (n%64 != 0) and multi-word rows.
func TestPackRoundTrip(t *testing.T) {
	for _, n := range []int{3, 7, 31, 63, 64, 65, 100, 130} {
		lat := grid.Random(n, 0.5, rng.New(uint64(n)))
		p := FromLattice(lat)
		if err := p.EqualLattice(lat); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got, want := p.CountPlus(), lat.CountPlus(); got != want {
			t.Fatalf("n=%d: CountPlus = %d, want %d", n, got, want)
		}
	}
}

// TestFlipBit verifies flips agree with the reference lattice.
func TestFlipBit(t *testing.T) {
	n := 67
	lat := grid.Random(n, 0.5, rng.New(1))
	p := FromLattice(lat)
	src := rng.New(2)
	for k := 0; k < 500; k++ {
		i := src.Intn(n * n)
		got := p.FlipBit(i)
		want := lat.Flip(i) == grid.Plus
		if got != want {
			t.Fatalf("flip %d at site %d: packed %v, reference %v", k, i, got, want)
		}
	}
	if err := p.EqualLattice(lat); err != nil {
		t.Fatal(err)
	}
}

// TestWindowCounts pins the popcount-based window counting to the
// reference sliding-window implementation, including windows that span
// word boundaries and wrap the torus (2w+1 == n).
func TestWindowCounts(t *testing.T) {
	cases := []struct{ n, w int }{
		{5, 1}, {5, 2}, {9, 4}, {31, 15}, {64, 3}, {65, 32}, {100, 10}, {130, 64},
	}
	for _, tc := range cases {
		lat := grid.Random(tc.n, 0.5, rng.New(uint64(tc.n*100+tc.w)))
		p := FromLattice(lat)
		got := p.WindowCounts(tc.w)
		want := lat.WindowCounts(tc.w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d w=%d: WindowCounts[%d] = %d, want %d", tc.n, tc.w, i, got[i], want[i])
			}
		}
	}
}

// TestWindowCountsPanics verifies the self-wrapping window is rejected
// like the reference implementation.
func TestWindowCountsPanics(t *testing.T) {
	p := FromLattice(grid.New(5, grid.Minus))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 2w+1 > n")
		}
	}()
	p.WindowCounts(3)
}

// TestScenarioPackRoundTrip verifies packing preserves spins and
// occupancy on vacancy lattices, across partial-word and multi-word
// rows.
func TestScenarioPackRoundTrip(t *testing.T) {
	for _, n := range []int{3, 7, 31, 63, 64, 65, 100, 130} {
		lat := grid.RandomScenario(n, 0.5, 0.15, rng.New(uint64(n)))
		p := FromLattice(lat)
		if !p.HasVacancies() {
			t.Fatalf("n=%d: vacancy lattice packed without an occupancy plane", n)
		}
		if err := p.EqualLattice(lat); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
	if FromLattice(grid.Random(16, 0.5, rng.New(1))).HasVacancies() {
		t.Fatal("fully occupied lattice grew an occupancy plane")
	}
}

// TestScenarioWindowCounts pins the scenario window counting — both
// indicators (plus agents, occupied sites), both boundaries (wrapped,
// clamped) — to the reference grid implementations, including windows
// spanning word boundaries and, under the open boundary, windows
// larger than the grid.
func TestScenarioWindowCounts(t *testing.T) {
	cases := []struct {
		n, w int
		rho  float64
		open bool
	}{
		{5, 1, 0, true}, {5, 2, 0.2, true}, {9, 4, 0.1, false},
		{31, 15, 0.1, true}, {64, 3, 0.05, false}, {65, 32, 0.2, true},
		{100, 10, 0.1, true}, {130, 64, 0.3, false}, {16, 20, 0.1, true},
	}
	for _, tc := range cases {
		lat := grid.RandomScenario(tc.n, 0.5, tc.rho, rng.New(uint64(tc.n*100+tc.w)))
		p := FromLattice(lat)
		gotPlus := p.PlusWindowCounts(tc.w, tc.open)
		wantPlus := lat.PlusWindowCounts(tc.w, tc.open)
		gotOcc := p.OccupiedWindowCounts(tc.w, tc.open)
		wantOcc := lat.OccupiedWindowCounts(tc.w, tc.open)
		for i := range wantPlus {
			if gotPlus[i] != wantPlus[i] {
				t.Fatalf("%+v: PlusWindowCounts[%d] = %d, want %d", tc, i, gotPlus[i], wantPlus[i])
			}
			if gotOcc[i] != wantOcc[i] {
				t.Fatalf("%+v: OccupiedWindowCounts[%d] = %d, want %d", tc, i, gotOcc[i], wantOcc[i])
			}
		}
	}
}

// TestOnesInRowRange cross-checks masked popcounts against direct
// enumeration at word boundaries.
func TestOnesInRowRange(t *testing.T) {
	n := 130
	lat := grid.Random(n, 0.5, rng.New(9))
	p := FromLattice(lat)
	for _, r := range [][2]int{{0, 0}, {0, 63}, {0, 64}, {63, 64}, {64, 127}, {120, 129}, {0, 129}, {65, 65}} {
		for y := 0; y < 3; y++ {
			want := 0
			for x := r[0]; x <= r[1]; x++ {
				if lat.SpinAt(y*n+x) == grid.Plus {
					want++
				}
			}
			if got := p.OnesInRowRange(y, r[0], r[1]); got != want {
				t.Fatalf("OnesInRowRange(%d, %d, %d) = %d, want %d", y, r[0], r[1], got, want)
			}
		}
	}
}
