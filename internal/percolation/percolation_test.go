package percolation

import (
	"math"
	"testing"

	"gridseg/internal/rng"
	"gridseg/internal/stats"
)

func TestFieldBasics(t *testing.T) {
	f := NewEmptyField(5, 4)
	if f.W() != 5 || f.H() != 4 {
		t.Fatal("dimensions")
	}
	p := Point{X: 2, Y: 2}
	if f.Open(p) {
		t.Fatal("empty field must be closed")
	}
	f.Set(p, true)
	if !f.Open(p) {
		t.Fatal("Set failed")
	}
	if f.Open(Point{X: -1, Y: 0}) || f.Open(Point{X: 5, Y: 0}) {
		t.Fatal("out-of-box must be closed")
	}
	if f.Center() != (Point{X: 2, Y: 2}) {
		t.Fatal("center")
	}
}

func TestSetPanicsOutside(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewEmptyField(3, 3).Set(Point{X: 3, Y: 0}, true)
}

func TestNewFieldDensity(t *testing.T) {
	f := NewField(100, 100, 0.7, rng.New(1))
	open := 0
	for y := 0; y < 100; y++ {
		for x := 0; x < 100; x++ {
			if f.Open(Point{X: x, Y: y}) {
				open++
			}
		}
	}
	frac := float64(open) / 10000
	if math.Abs(frac-0.7) > 0.03 {
		t.Fatalf("open fraction = %v, want ~0.7", frac)
	}
}

func TestClusterOfClosedSite(t *testing.T) {
	f := NewEmptyField(5, 5)
	size, radius := f.ClusterOf(Point{X: 2, Y: 2})
	if size != 0 || radius != -1 {
		t.Fatalf("closed site cluster = (%d, %d)", size, radius)
	}
}

func TestClusterOfHandShape(t *testing.T) {
	// An L-shaped cluster.
	f := NewEmptyField(7, 7)
	for _, p := range []Point{{1, 1}, {2, 1}, {3, 1}, {3, 2}, {3, 3}} {
		f.Set(p, true)
	}
	// A disconnected extra site.
	f.Set(Point{X: 5, Y: 5}, true)
	size, radius := f.ClusterOf(Point{X: 1, Y: 1})
	if size != 5 {
		t.Fatalf("size = %d, want 5", size)
	}
	if radius != 4 { // l1 from (1,1) to (3,3)
		t.Fatalf("radius = %d, want 4", radius)
	}
}

func TestLargestCluster(t *testing.T) {
	f := NewEmptyField(6, 6)
	for _, p := range []Point{{0, 0}, {1, 0}, {2, 0}} {
		f.Set(p, true)
	}
	for _, p := range []Point{{4, 4}, {4, 5}} {
		f.Set(p, true)
	}
	if got := f.LargestCluster(); got != 3 {
		t.Fatalf("largest = %d, want 3", got)
	}
}

func TestCrossesHorizontally(t *testing.T) {
	f := NewEmptyField(6, 4)
	if f.CrossesHorizontally() {
		t.Fatal("empty field cannot cross")
	}
	for x := 0; x < 6; x++ {
		f.Set(Point{X: x, Y: 2}, true)
	}
	if !f.CrossesHorizontally() {
		t.Fatal("full row must cross")
	}
	f.Set(Point{X: 3, Y: 2}, false)
	if f.CrossesHorizontally() {
		t.Fatal("broken row must not cross")
	}
}

// Crossing probability brackets the known critical point: clearly below
// at p=0.45, clearly above at p=0.75 on a moderate box.
func TestCrossingBracketsCriticalPoint(t *testing.T) {
	src := rng.New(5)
	crossLow, crossHigh := 0, 0
	const trials = 40
	for i := 0; i < trials; i++ {
		if NewField(40, 40, 0.45, src.Split(uint64(i))).CrossesHorizontally() {
			crossLow++
		}
		if NewField(40, 40, 0.75, src.Split(uint64(1000+i))).CrossesHorizontally() {
			crossHigh++
		}
	}
	if crossLow > trials/4 {
		t.Fatalf("subcritical crossing rate %d/%d too high", crossLow, trials)
	}
	if crossHigh < trials*3/4 {
		t.Fatalf("supercritical crossing rate %d/%d too low", crossHigh, trials)
	}
}

// Grimmett Theorem 5 shape: subcritical origin-cluster radii have an
// exponential tail; the fitted decay rate must be clearly positive and
// the radii small compared to the box.
func TestSubcriticalRadiusExponentialTail(t *testing.T) {
	src := rng.New(7)
	var radii []float64
	for i := 0; i < 400; i++ {
		f := NewField(41, 41, 0.45, src.Split(uint64(i)))
		_, radius := f.ClusterOf(f.Center())
		if radius >= 0 {
			radii = append(radii, float64(radius))
		}
	}
	if len(radii) < 100 {
		t.Fatalf("too few open origins: %d", len(radii))
	}
	rate, _, err := stats.ExpDecayRate(radii)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0.1 {
		t.Fatalf("decay rate = %v, want clearly positive (exponential tail)", rate)
	}
}

func TestChemicalDistanceHandCases(t *testing.T) {
	f := NewEmptyField(6, 6)
	for x := 0; x < 6; x++ {
		f.Set(Point{X: x, Y: 0}, true)
	}
	d, ok := f.ChemicalDistance(Point{X: 0, Y: 0}, Point{X: 5, Y: 0})
	if !ok || d != 5 {
		t.Fatalf("straight-line chemical distance = %d, %v; want 5", d, ok)
	}
	if d, ok := f.ChemicalDistance(Point{X: 0, Y: 0}, Point{X: 0, Y: 0}); !ok || d != 0 {
		t.Fatalf("self distance = %d, %v", d, ok)
	}
	if _, ok := f.ChemicalDistance(Point{X: 0, Y: 0}, Point{X: 0, Y: 5}); ok {
		t.Fatal("closed target must be disconnected")
	}
	// A detour: open an U-shaped path.
	g := NewEmptyField(5, 5)
	for _, p := range []Point{{0, 0}, {0, 1}, {0, 2}, {1, 2}, {2, 2}, {2, 1}, {2, 0}} {
		g.Set(p, true)
	}
	d, ok = g.ChemicalDistance(Point{X: 0, Y: 0}, Point{X: 2, Y: 0})
	if !ok || d != 6 {
		t.Fatalf("detour distance = %d, %v; want 6", d, ok)
	}
}

// Garet–Marchand Theorem 4 shape: at high p the chemical distance is
// close to the l1 distance — the ratio concentrates near 1.
func TestChemicalDistanceNearL1Supercritical(t *testing.T) {
	src := rng.New(9)
	var ratios []float64
	for i := 0; i < 60; i++ {
		f := NewField(61, 31, 0.95, src.Split(uint64(i)))
		a := Point{X: 5, Y: 15}
		b := Point{X: 55, Y: 15}
		d, ok := f.ChemicalDistance(a, b)
		if !ok {
			continue
		}
		ratios = append(ratios, float64(d)/50.0)
	}
	if len(ratios) < 30 {
		t.Fatalf("too few connected pairs: %d", len(ratios))
	}
	mean := stats.Mean(ratios)
	if mean < 1 || mean > 1.2 {
		t.Fatalf("mean D/l1 = %v, want in [1, 1.2] at p=0.95", mean)
	}
}

func TestNewFPPValidation(t *testing.T) {
	if _, err := NewFPP(0, 5, 1, rng.New(1)); err == nil {
		t.Fatal("want error for zero width")
	}
	if _, err := NewFPP(5, 5, 0, rng.New(1)); err == nil {
		t.Fatal("want error for zero rate")
	}
}

func TestFPPWeightOutside(t *testing.T) {
	f, err := NewFPP(4, 4, 1, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(f.Weight(Point{X: -1, Y: 0}), 1) {
		t.Fatal("outside weight must be +Inf")
	}
}

func TestFPPPassageTimeProperties(t *testing.T) {
	src := rng.New(11)
	f, err := NewFPP(30, 30, 1, src)
	if err != nil {
		t.Fatal(err)
	}
	a := Point{X: 2, Y: 15}
	b := Point{X: 27, Y: 15}
	tab, err := f.PassageTime(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric for site weights with both endpoints included.
	tba, err := f.PassageTime(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tab-tba) > 1e-9 {
		t.Fatalf("passage time not symmetric: %v vs %v", tab, tba)
	}
	// Lower bound: must include both endpoint weights.
	if tab < f.Weight(a)+f.Weight(b)-1e-12 {
		t.Fatalf("passage time %v below endpoint weights", tab)
	}
	// Self passage time is the site's own weight.
	taa, err := f.PassageTime(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(taa-f.Weight(a)) > 1e-12 {
		t.Fatalf("self passage time = %v, want %v", taa, f.Weight(a))
	}
	if _, err := f.PassageTime(a, Point{X: 100, Y: 0}); err == nil {
		t.Fatal("want error for outside endpoint")
	}
}

// Kesten Theorem 3 shape: E[T_k]/k approaches a constant mu and the
// fluctuations of T_k around the mean grow sublinearly.
func TestFPPLinearGrowthAndConcentration(t *testing.T) {
	src := rng.New(13)
	ks := []int{10, 20, 40}
	means := make([]float64, len(ks))
	stds := make([]float64, len(ks))
	for ki, k := range ks {
		var ts []float64
		for trial := 0; trial < 30; trial++ {
			f, err := NewFPP(k+11, 21, 1, src.Split(uint64(ki*1000+trial)))
			if err != nil {
				t.Fatal(err)
			}
			v, err := f.PassageTime(Point{X: 5, Y: 10}, Point{X: 5 + k, Y: 10})
			if err != nil {
				t.Fatal(err)
			}
			ts = append(ts, v)
		}
		s, err := stats.Summarize(ts)
		if err != nil {
			t.Fatal(err)
		}
		means[ki] = s.Mean
		stds[ki] = s.Std
	}
	// Linear growth: mean roughly doubles with k.
	r1 := means[1] / means[0]
	r2 := means[2] / means[1]
	if r1 < 1.5 || r1 > 2.5 || r2 < 1.5 || r2 > 2.5 {
		t.Fatalf("passage time growth ratios %v, %v not ~2", r1, r2)
	}
	// Concentration: relative spread shrinks with k.
	if stds[2]/means[2] >= stds[0]/means[0] {
		t.Fatalf("relative fluctuation did not shrink: %v vs %v",
			stds[2]/means[2], stds[0]/means[0])
	}
}

// FKG on independent bits: increasing events must be positively
// associated; an increasing and a decreasing event must not be.
func TestEstimateFKG(t *testing.T) {
	src := rng.New(15)
	// Configuration: 20 i.i.d. fair bits. A = many ones in first half,
	// B = many ones overall; both increasing => positive association.
	gen := func(s *rng.Source) (bool, bool) {
		bits := make([]bool, 20)
		ones, onesFirst := 0, 0
		for i := range bits {
			bits[i] = s.Bernoulli(0.5)
			if bits[i] {
				ones++
				if i < 10 {
					onesFirst++
				}
			}
		}
		return onesFirst >= 6, ones >= 11
	}
	est := EstimateFKG(20000, gen, src)
	if !est.Satisfied(3) {
		t.Fatalf("FKG violated for increasing events: %+v", est)
	}
	if est.PAB <= est.PA*est.PB {
		t.Fatalf("expected strict positive association, got %+v", est)
	}
	// A increasing, C decreasing: association must be negative.
	gen2 := func(s *rng.Source) (bool, bool) {
		ones := 0
		for i := 0; i < 20; i++ {
			if s.Bernoulli(0.5) {
				ones++
			}
		}
		return ones >= 11, ones <= 9
	}
	est2 := EstimateFKG(20000, gen2, src.Split(1))
	if est2.PAB >= est2.PA*est2.PB {
		t.Fatalf("opposite monotonicity must be negatively associated: %+v", est2)
	}
}

func BenchmarkPassageTime(b *testing.B) {
	f, err := NewFPP(100, 100, 1, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.PassageTime(Point{X: 5, Y: 50}, Point{X: 95, Y: 50}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterOf(b *testing.B) {
	f := NewField(200, 200, 0.55, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ClusterOf(f.Center())
	}
}
