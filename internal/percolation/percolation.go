// Package percolation implements the percolation-theory substrate that
// the paper's proofs draw on: Bernoulli site percolation on a finite box
// of Z^2 with cluster statistics (for the exponential tail of subcritical
// cluster radii, Grimmett Theorem 5.4, cited as Theorem 5), chemical
// distances within open clusters (for Garet–Marchand, cited as Theorem
// 4), first-passage percolation with exponential site weights (for
// Kesten's concentration bound, cited as Theorem 3), and an empirical
// FKG/Harris positive-association checker (Lemma 23).
package percolation

import (
	"container/heap"
	"errors"
	"math"

	"gridseg/internal/rng"
)

// PcSite is the numerically-known critical probability of site
// percolation on the square lattice, p_c ~= 0.592746.
const PcSite = 0.592746

// Point is a site of the finite box [0, W) x [0, H) of Z^2.
// Unlike the torus of the main model, the box does not wrap: the
// percolation theorems are about Z^2 and the box is a finite window.
type Point struct {
	X, Y int
}

// Field is a site-percolation configuration on a W x H box.
type Field struct {
	w, h int
	open []bool
}

// NewField draws a Bernoulli(p) site configuration.
func NewField(w, h int, p float64, src *rng.Source) *Field {
	f := &Field{w: w, h: h, open: make([]bool, w*h)}
	for i := range f.open {
		f.open[i] = src.Bernoulli(p)
	}
	return f
}

// NewEmptyField returns an all-closed field; tests use Set to shape it.
func NewEmptyField(w, h int) *Field {
	return &Field{w: w, h: h, open: make([]bool, w*h)}
}

// W returns the box width.
func (f *Field) W() int { return f.w }

// H returns the box height.
func (f *Field) H() int { return f.h }

// In reports whether a point lies in the box.
func (f *Field) In(p Point) bool {
	return p.X >= 0 && p.X < f.w && p.Y >= 0 && p.Y < f.h
}

// Open reports whether the site is open; out-of-box sites are closed.
func (f *Field) Open(p Point) bool {
	if !f.In(p) {
		return false
	}
	return f.open[p.Y*f.w+p.X]
}

// Set opens or closes a site inside the box.
func (f *Field) Set(p Point, open bool) {
	if !f.In(p) {
		panic("percolation: Set outside box")
	}
	f.open[p.Y*f.w+p.X] = open
}

// Center returns the box center, the conventional origin.
func (f *Field) Center() Point { return Point{X: f.w / 2, Y: f.h / 2} }

var steps4 = [4]Point{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}

// ClusterOf explores the open cluster containing p (4-adjacency) and
// returns its size and its radius: the maximum l1 distance from p to a
// cluster site. If p is closed it returns (0, -1).
func (f *Field) ClusterOf(p Point) (size, radius int) {
	if !f.Open(p) {
		return 0, -1
	}
	visited := make(map[Point]bool)
	visited[p] = true
	queue := []Point{p}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		size++
		if d := abs(cur.X-p.X) + abs(cur.Y-p.Y); d > radius {
			radius = d
		}
		for _, s := range steps4 {
			next := Point{X: cur.X + s.X, Y: cur.Y + s.Y}
			if f.Open(next) && !visited[next] {
				visited[next] = true
				queue = append(queue, next)
			}
		}
	}
	return size, radius
}

// LargestCluster returns the size of the largest open cluster.
func (f *Field) LargestCluster() int {
	visited := make([]bool, f.w*f.h)
	best := 0
	var queue []Point
	for y := 0; y < f.h; y++ {
		for x := 0; x < f.w; x++ {
			start := Point{X: x, Y: y}
			if !f.Open(start) || visited[y*f.w+x] {
				continue
			}
			visited[y*f.w+x] = true
			queue = append(queue[:0], start)
			size := 0
			for head := 0; head < len(queue); head++ {
				cur := queue[head]
				size++
				for _, s := range steps4 {
					next := Point{X: cur.X + s.X, Y: cur.Y + s.Y}
					if f.Open(next) && !visited[next.Y*f.w+next.X] {
						visited[next.Y*f.w+next.X] = true
						queue = append(queue, next)
					}
				}
			}
			if size > best {
				best = size
			}
		}
	}
	return best
}

// CrossesHorizontally reports whether an open cluster connects the left
// edge to the right edge — the standard crossing event used to bracket
// the critical probability.
func (f *Field) CrossesHorizontally() bool {
	visited := make([]bool, f.w*f.h)
	var queue []Point
	for y := 0; y < f.h; y++ {
		p := Point{X: 0, Y: y}
		if f.Open(p) {
			visited[y*f.w] = true
			queue = append(queue, p)
		}
	}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		if cur.X == f.w-1 {
			return true
		}
		for _, s := range steps4 {
			next := Point{X: cur.X + s.X, Y: cur.Y + s.Y}
			if f.Open(next) && !visited[next.Y*f.w+next.X] {
				visited[next.Y*f.w+next.X] = true
				queue = append(queue, next)
			}
		}
	}
	return false
}

// ChemicalDistance returns the graph distance D(a, b) within the open
// cluster (number of steps along open sites, 4-adjacency), and whether a
// and b are connected at all. Both endpoints must be open to be
// connected. This is the Garet–Marchand observable: supercritically,
// D(a,b)/||a-b||_1 concentrates near a constant >= 1.
func (f *Field) ChemicalDistance(a, b Point) (int, bool) {
	if !f.Open(a) || !f.Open(b) {
		return 0, false
	}
	if a == b {
		return 0, true
	}
	dist := map[Point]int{a: 0}
	queue := []Point{a}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, s := range steps4 {
			next := Point{X: cur.X + s.X, Y: cur.Y + s.Y}
			if !f.Open(next) {
				continue
			}
			if _, seen := dist[next]; seen {
				continue
			}
			dist[next] = dist[cur] + 1
			if next == b {
				return dist[next], true
			}
			queue = append(queue, next)
		}
	}
	return 0, false
}

// FPP is a first-passage percolation instance: i.i.d. exponential
// passage times attached to the sites of a box (the paper renormalizes
// the grid into w-blocks and attaches Exp(1/N) waiting times; Theorem 3
// is Kesten's concentration bound for such processes).
type FPP struct {
	w, h   int
	weight []float64
}

// NewFPP draws i.i.d. Exp(rate) site weights (mean 1/rate).
func NewFPP(w, h int, rate float64, src *rng.Source) (*FPP, error) {
	if w <= 0 || h <= 0 {
		return nil, errors.New("percolation: box dimensions must be positive")
	}
	if rate <= 0 {
		return nil, errors.New("percolation: rate must be positive")
	}
	f := &FPP{w: w, h: h, weight: make([]float64, w*h)}
	for i := range f.weight {
		f.weight[i] = src.ExpRate(rate)
	}
	return f, nil
}

// Weight returns the site weight; out-of-box queries return +Inf.
func (f *FPP) Weight(p Point) float64 {
	if p.X < 0 || p.X >= f.w || p.Y < 0 || p.Y >= f.h {
		return math.Inf(1)
	}
	return f.weight[p.Y*f.w+p.X]
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	p Point
	d float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].d < q[j].d }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// PassageTime returns T(a, b): the minimum over paths from a to b of the
// sum of site weights of the path's vertices, both endpoints included —
// the paper's T*(eta) = sum t(v_i). Computed by Dijkstra in O(WH log WH).
func (f *FPP) PassageTime(a, b Point) (float64, error) {
	if f.Weight(a) == math.Inf(1) || f.Weight(b) == math.Inf(1) {
		return 0, errors.New("percolation: endpoint outside box")
	}
	dist := make([]float64, f.w*f.h)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	idx := func(p Point) int { return p.Y*f.w + p.X }
	start := f.Weight(a)
	dist[idx(a)] = start
	q := &pq{{p: a, d: start}}
	for q.Len() > 0 {
		cur := heap.Pop(q).(pqItem)
		if cur.p == b {
			return cur.d, nil
		}
		if cur.d > dist[idx(cur.p)] {
			continue
		}
		for _, s := range steps4 {
			next := Point{X: cur.p.X + s.X, Y: cur.p.Y + s.Y}
			wt := f.Weight(next)
			if math.IsInf(wt, 1) {
				continue
			}
			nd := cur.d + wt
			if nd < dist[idx(next)] {
				dist[idx(next)] = nd
				heap.Push(q, pqItem{p: next, d: nd})
			}
		}
	}
	return 0, errors.New("percolation: unreachable target")
}

// FKGEstimate is the result of an empirical positive-association check.
type FKGEstimate struct {
	PA, PB, PAB float64
	Trials      int
}

// Satisfied reports whether the empirical joint probability respects the
// FKG inequality P(A and B) >= P(A) P(B) within slack standard errors of
// the product estimate (slack ~ 2-3 for statistical robustness).
func (e FKGEstimate) Satisfied(slack float64) bool {
	se := math.Sqrt(e.PA*e.PB*(1-e.PA*e.PB)/float64(e.Trials)) + 1e-12
	return e.PAB >= e.PA*e.PB-slack*se
}

// EstimateFKG draws `trials` independent configurations via gen, which
// must evaluate two (increasing) events on the same configuration, and
// returns the empirical probabilities. With increasing events the
// FKG/Harris inequality (Lemma 23) asserts PAB >= PA*PB.
func EstimateFKG(trials int, gen func(src *rng.Source) (a, b bool), src *rng.Source) FKGEstimate {
	var na, nb, nab int
	for i := 0; i < trials; i++ {
		a, b := gen(src.Split(uint64(i)))
		if a {
			na++
		}
		if b {
			nb++
		}
		if a && b {
			nab++
		}
	}
	n := float64(trials)
	return FKGEstimate{
		PA:     float64(na) / n,
		PB:     float64(nb) / n,
		PAB:    float64(nab) / n,
		Trials: trials,
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
