package percolation

import (
	"testing"

	"gridseg/internal/rng"
)

func TestCrossingProbabilityMonotoneInP(t *testing.T) {
	src := rng.New(21)
	low := CrossingProbability(24, 0.4, 40, src.Split(1))
	high := CrossingProbability(24, 0.8, 40, src.Split(2))
	if low >= high {
		t.Fatalf("crossing probability must rise with p: %v vs %v", low, high)
	}
	if high < 0.9 {
		t.Fatalf("deep supercritical crossing = %v, want ~1", high)
	}
	if CrossingProbability(24, 0.5, 0, src) != 0 {
		t.Fatal("zero trials must return 0")
	}
}

// The finite-size crossing point must bracket the known site threshold
// p_c ~ 0.593 (generously, given the small box).
func TestEstimatePcBracketsKnownValue(t *testing.T) {
	src := rng.New(23)
	pc, err := EstimatePc(32, 60, 0.02, src)
	if err != nil {
		t.Fatal(err)
	}
	if pc < 0.50 || pc > 0.70 {
		t.Fatalf("estimated pc = %v, want near %v", pc, PcSite)
	}
}

func TestEstimatePcValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := EstimatePc(2, 10, 0.01, src); err == nil {
		t.Fatal("want error for tiny box")
	}
	if _, err := EstimatePc(16, 0, 0.01, src); err == nil {
		t.Fatal("want error for zero trials")
	}
	if _, err := EstimatePc(16, 10, 0, src); err == nil {
		t.Fatal("want error for zero tolerance")
	}
}

func TestLargestClusterFractionGrowsWithP(t *testing.T) {
	src := rng.New(25)
	sub := LargestClusterFraction(32, 0.4, 20, src.Split(1))
	sup := LargestClusterFraction(32, 0.8, 20, src.Split(2))
	if sub >= sup {
		t.Fatalf("theta proxy must grow with p: %v vs %v", sub, sup)
	}
	if sup < 0.6 {
		t.Fatalf("supercritical giant fraction = %v, want large", sup)
	}
	if LargestClusterFraction(32, 0.5, 0, src) != 0 {
		t.Fatal("zero trials must return 0")
	}
}
