package percolation

import (
	"errors"

	"gridseg/internal/rng"
)

// Finite-size estimators around the critical point. The paper's
// renormalization arguments need the good-block density to sit safely
// above p_c; these estimators let experiments verify that numerically.

// CrossingProbability estimates the probability that a size x size
// Bernoulli(p) field has a horizontal open crossing, from the given
// number of independent trials.
func CrossingProbability(size int, p float64, trials int, src *rng.Source) float64 {
	if trials <= 0 {
		return 0
	}
	hits := 0
	for i := 0; i < trials; i++ {
		if NewField(size, size, p, src.Split(uint64(i))).CrossesHorizontally() {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

// EstimatePc locates the p at which the crossing probability passes 1/2
// on a size x size box, by bisection with `trials` Monte Carlo samples
// per probe. On the square lattice this finite-size crossing point
// converges to the site-percolation threshold p_c ~ 0.5927 as the box
// grows. tol is the bisection width in p.
func EstimatePc(size, trials int, tol float64, src *rng.Source) (float64, error) {
	if size < 4 || trials < 1 || tol <= 0 {
		return 0, errors.New("percolation: invalid estimator parameters")
	}
	lo, hi := 0.05, 0.95
	label := uint64(0)
	for hi-lo > tol {
		mid := (lo + hi) / 2
		label++
		cross := CrossingProbability(size, mid, trials, src.Split(label))
		if cross < 0.5 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// LargestClusterFraction estimates the mean fraction of sites in the
// largest open cluster of a size x size Bernoulli(p) field — a
// finite-size proxy for the percolation density theta(p).
func LargestClusterFraction(size int, p float64, trials int, src *rng.Source) float64 {
	if trials <= 0 {
		return 0
	}
	var acc float64
	for i := 0; i < trials; i++ {
		f := NewField(size, size, p, src.Split(uint64(i)))
		acc += float64(f.LargestCluster()) / float64(size*size)
	}
	return acc / float64(trials)
}
