// Package sim is the experiment harness: it defines the execution
// context (quick vs full parameters, deterministic seeding, optional
// artifact output directory, worker-pool parallelism) and the registry
// of experiments E1..E18, each of which regenerates one of the paper's
// figures or validates one of its theorems' shapes. See DESIGN.md
// section 5 for the experiment-to-figure index.
package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"gridseg/internal/dynamics"
	"gridseg/internal/grid"
	"gridseg/internal/report"
	"gridseg/internal/rng"
)

// Context carries the run configuration shared by all experiments.
type Context struct {
	// Quick selects reduced parameters suitable for CI; full mode uses
	// paper-scale parameters.
	Quick bool
	// Seed determines every random choice of the experiment.
	Seed uint64
	// OutDir, when non-empty, receives artifacts (PNG snapshots, CSVs).
	OutDir string
	// Workers bounds the replicate worker pool; 0 means GOMAXPROCS.
	Workers int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...interface{})
}

// log emits a progress line if a logger is configured.
func (c *Context) log(format string, args ...interface{}) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// workers returns the effective worker count.
func (c *Context) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// src returns the root random source of the experiment identified by id.
func (c *Context) src(id uint64) *rng.Source {
	return rng.New(c.Seed).Split(id)
}

// Experiment is a runnable reproduction unit.
type Experiment struct {
	ID     string // "E1" .. "E14"
	Figure string // the paper artifact it regenerates
	Title  string
	Run    func(ctx *Context) ([]*report.Table, error)
}

var (
	registryMu sync.Mutex
	registry   []Experiment
)

// register adds an experiment at package init time.
func register(e Experiment) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry = append(registry, e)
}

// All returns the registered experiments ordered by numeric ID.
func All() []Experiment {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool {
		var a, b int
		fmt.Sscanf(out[i].ID, "E%d", &a)
		fmt.Sscanf(out[j].ID, "E%d", &b)
		return a < b
	})
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// parallelMap runs fn(i) for i in [0, n) on the context's worker pool
// and collects the results in order. fn must be safe for concurrent use
// with distinct i.
func parallelMap[T any](ctx *Context, n int, fn func(i int) T) []T {
	out := make([]T, n)
	workers := ctx.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// glauberRun builds a Bernoulli(p) lattice, runs Glauber dynamics to
// fixation (bounded by the Lyapunov limit), and returns the process.
type glauberResult struct {
	Proc  *dynamics.Process
	Lat   *grid.Lattice
	Flips int64
}

func glauberRun(n, w int, tau, p float64, src *rng.Source) (glauberResult, error) {
	lat := grid.Random(n, p, src.Split(1))
	proc, err := dynamics.New(lat, w, tau, src.Split(2))
	if err != nil {
		return glauberResult{}, err
	}
	flips, _ := proc.Run(0)
	return glauberResult{Proc: proc, Lat: lat, Flips: flips}, nil
}

// pick returns q in quick mode and f otherwise.
func pick[T any](ctx *Context, q, f T) T {
	if ctx.Quick {
		return q
	}
	return f
}
