// Package sim is the experiment harness: it defines the execution
// context (quick vs full parameters, deterministic seeding, optional
// artifact output directory) and the registry of experiments E1..E18,
// each of which regenerates one of the paper's figures or validates
// one of its theorems' shapes. See README.md for the
// experiment-to-figure index.
//
// All replicated measurement runs execute on the internal/batch sweep
// engine: each experiment declares a parameter grid and a per-cell
// metric function, and the engine handles worker-pool parallelism,
// deterministic per-cell seeding, and aggregation. Experiment output
// is therefore independent of the worker count.
package sim

import (
	"fmt"
	"sort"
	"sync"

	"gridseg/internal/batch"
	"gridseg/internal/dynamics"
	"gridseg/internal/dynamics/fastglauber"
	"gridseg/internal/dynamics/pareng"
	"gridseg/internal/grid"
	"gridseg/internal/report"
	"gridseg/internal/rng"
	"gridseg/internal/store"
)

// Context carries the run configuration shared by all experiments.
type Context struct {
	// Quick selects reduced parameters suitable for CI; full mode uses
	// paper-scale parameters.
	Quick bool
	// Seed determines every random choice of the experiment.
	Seed uint64
	// OutDir, when non-empty, receives artifacts (PNG snapshots, CSVs).
	OutDir string
	// Workers bounds the batch engine's worker pool; 0 means
	// GOMAXPROCS. Results never depend on the worker count.
	Workers int
	// Engine selects the Glauber engine implementation for replicated
	// runs ("auto", "reference", "fast", or "parallel"; empty means
	// auto). Engines are bit-identical inside sweeps — the parallel
	// label runs in its delegation mode — so this never changes
	// results, only speed.
	Engine string
	// Store, when non-nil, is the shared content-addressed result
	// cache consulted by every replicated stage: cells already in the
	// store (keyed by experiment scope, parameters, and derived seed)
	// are served without recomputation. Never changes results.
	Store store.Store
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...interface{})
}

// log emits a progress line if a logger is configured.
func (c *Context) log(format string, args ...interface{}) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// src returns the root random source of the serial experiment stage
// identified by id. Replicated stages should use run instead, which
// derives per-cell streams on the batch engine.
func (c *Context) src(id uint64) *rng.Source {
	return rng.New(c.Seed).Split(id)
}

// run executes a parameter grid on the batch sweep engine. The scope
// (by convention the experiment ID plus an optional stage suffix)
// namespaces the per-cell random streams, so distinct stages draw
// independent randomness from the same context seed. The context's
// engine selection is injected into the grid, so every cell runner
// sees it as c.Engine.
//
// The quick/full mode is folded into the scope: experiment runners
// routinely capture pick(ctx, quick, full)-sized parameters (trial
// counts, spans) that are invisible to the cell's (n, w, tau, p,
// extra, rep) identity, so a quick and a full run of the same grid
// cell measure different things and must never share a cell seed or a
// result-store slot.
func (c *Context) run(scope string, g batch.Grid, columns []string, fn batch.Runner) (*batch.ResultSet, error) {
	if g.Engine == "" {
		g.Engine = c.Engine
	}
	mode := "@full"
	if c.Quick {
		mode = "@quick"
	}
	return batch.Run(g, columns, fn, batch.Options{
		Seed:    c.Seed,
		Scope:   scope + mode,
		Workers: c.Workers,
		Store:   c.Store,
	})
}

// Experiment is a runnable reproduction unit.
type Experiment struct {
	ID     string // "E1" .. "E18"
	Figure string // the paper artifact it regenerates
	Title  string
	Run    func(ctx *Context) ([]*report.Table, error)
}

var (
	registryMu sync.Mutex
	registry   []Experiment
)

// register adds an experiment at package init time.
func register(e Experiment) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry = append(registry, e)
}

// All returns the registered experiments ordered by numeric ID.
func All() []Experiment {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool {
		var a, b int
		fmt.Sscanf(out[i].ID, "E%d", &a)
		fmt.Sscanf(out[j].ID, "E%d", &b)
		return a < b
	})
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// glauberRun builds a Bernoulli(p) lattice, runs Glauber dynamics to
// fixation (bounded by the Lyapunov limit), and returns the process.
type glauberResult struct {
	Proc  dynamics.Engine
	Lat   *grid.Lattice
	Flips int64
}

// newEngine builds the selected Glauber engine over the lattice. The
// engines are bit-identical (internal/difftest), so the label only
// selects an execution strategy.
func newEngine(lat *grid.Lattice, w int, tau float64, src *rng.Source, engine string) (dynamics.Engine, error) {
	return newScenarioEngine(lat, w, tau, dynamics.Scenario{}, src, engine)
}

// newScenarioEngine builds the selected Glauber engine under a
// topology scenario. The fast engine covers every scenario axis, so
// auto resolves to it whenever the neighborhood fits the packed count
// lanes, exactly as on default cells.
func newScenarioEngine(lat *grid.Lattice, w int, tau float64, dsc dynamics.Scenario, src *rng.Source, engine string) (dynamics.Engine, error) {
	switch engine {
	case "", batch.EngineAuto:
		if fastglauber.Fits(w) {
			return fastglauber.NewScenario(lat, w, tau, dsc, src)
		}
		return dynamics.NewScenario(lat, w, tau, dsc, src)
	case batch.EngineReference:
		return dynamics.NewScenario(lat, w, tau, dsc, src)
	case batch.EngineFast:
		return fastglauber.NewScenario(lat, w, tau, dsc, src)
	case batch.EngineParallel:
		// Sweeps pin the parallel engine to its delegation mode (one
		// strip), which is bit-identical to the fast engine, so the
		// engine stays an execution detail and cached cells remain valid.
		return pareng.New(lat, w, tau, dsc, src, pareng.Config{Strips: 1})
	}
	return nil, fmt.Errorf("sim: unknown engine %q", engine)
}

// newSwapEngine builds the selected Kawasaki engine under a topology
// scenario, with the same auto-resolution rule as newScenarioEngine.
func newSwapEngine(lat *grid.Lattice, w int, tau float64, dsc dynamics.Scenario, src *rng.Source, engine string) (dynamics.SwapEngine, error) {
	switch engine {
	case "", batch.EngineAuto:
		if fastglauber.Fits(w) {
			return fastglauber.NewKawasakiScenario(lat, w, tau, dsc, src)
		}
		return dynamics.NewKawasakiScenario(lat, w, tau, dsc, src)
	case batch.EngineReference:
		return dynamics.NewKawasakiScenario(lat, w, tau, dsc, src)
	case batch.EngineFast, batch.EngineParallel:
		// Kawasaki has no parallel implementation; the parallel label
		// resolves to the sequential fast engine, exactly like gridseg.
		return fastglauber.NewKawasakiScenario(lat, w, tau, dsc, src)
	}
	return nil, fmt.Errorf("sim: unknown engine %q", engine)
}

// newMoveEngine builds the selected relocation (Move) engine under a
// topology scenario, with the same auto-resolution rule as
// newScenarioEngine.
func newMoveEngine(lat *grid.Lattice, w int, tau float64, dsc dynamics.Scenario, src *rng.Source, engine string) (dynamics.MoveEngine, error) {
	switch engine {
	case "", batch.EngineAuto:
		if fastglauber.Fits(w) {
			return fastglauber.NewMove(lat, w, tau, dsc, src)
		}
		return dynamics.NewMove(lat, w, tau, dsc, src)
	case batch.EngineReference:
		return dynamics.NewMove(lat, w, tau, dsc, src)
	case batch.EngineFast, batch.EngineParallel:
		// Move has no parallel implementation either; fall back to the
		// sequential fast engine.
		return fastglauber.NewMove(lat, w, tau, dsc, src)
	}
	return nil, fmt.Errorf("sim: unknown engine %q", engine)
}

func glauberRun(n, w int, tau, p float64, src *rng.Source, engine string) (glauberResult, error) {
	lat := grid.Random(n, p, src.Split(1))
	proc, err := newEngine(lat, w, tau, src.Split(2), engine)
	if err != nil {
		return glauberResult{}, err
	}
	flips, _ := proc.Run(0)
	return glauberResult{Proc: proc, Lat: lat, Flips: flips}, nil
}

// pick returns q in quick mode and f otherwise.
func pick[T any](ctx *Context, q, f T) T {
	if ctx.Quick {
		return q
	}
	return f
}
