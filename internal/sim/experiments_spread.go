package sim

import (
	"fmt"
	"math"

	"gridseg/internal/batch"
	"gridseg/internal/core"
	"gridseg/internal/dynamics"
	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/report"
	"gridseg/internal/rng"
)

func init() {
	register(Experiment{
		ID:     "E18",
		Figure: "Lemma 7 / Eq. 9 (spread time T(rho))",
		Title:  "Unhappiness spread: stalling fronts and T(rho) in an active sea",
		Run:    runE18,
	})
}

// runE18 measures the paper's T(rho) observable (Eq. 9) directly.
//
// Part 1 (the firewall story): a monochromatic minority blob in a pure
// majority sea erodes only at its corners and stalls as a stable
// octagon — the probe never trips, at any blob size. This is the
// mechanism behind Lemma 9's impenetrable structures.
//
// Part 2 (the Lemma 7 regime): in an active balanced sea (majority
// rule) fronts do move; T(rho) is the first time a probe region of
// radius rho would host an unhappy agent of the probe type. T(rho) is
// non-increasing in rho (an infimum over a growing region) and finite.
func runE18(ctx *Context) ([]*report.Table, error) {
	// Part 1: stalling fronts.
	n := pick(ctx, 41, 61)
	radii := pick(ctx, []float64{4, 6}, []float64{4, 6, 8, 10})
	sres, err := ctx.run("E18-stall", batch.Grid{
		Ns: []int{n}, Ws: []int{2}, Taus: []float64{0.45},
		Extras: radii, ExtraName: "blobRadius",
	}, []string{"tripped", "flips", "fixated"}, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		lat := grid.New(c.N, grid.Plus)
		tor := lat.Torus()
		blob := geom.Point{X: 3 * c.N / 4, Y: 3 * c.N / 4}
		tor.Square(blob, int(c.Extra), func(q geom.Point) { lat.Set(q, grid.Minus) })
		p, err := dynamics.New(lat, c.W, c.Tau, src)
		if err != nil {
			return nil, err
		}
		res, err := core.SpreadTime(p, geom.Point{X: c.N / 4, Y: c.N / 4}, 3, grid.Plus, 0)
		if err != nil {
			return nil, err
		}
		tripped, fixated := 0.0, 0.0
		if res.Tripped {
			tripped = 1
		}
		if p.Fixated() {
			fixated = 1
		}
		return []float64{tripped, float64(res.Flips), fixated}, nil
	})
	if err != nil {
		return nil, err
	}
	stall := report.NewTable(
		fmt.Sprintf("Minority blob in a pure sea stalls (n=%d w=2 tau=0.45)", n),
		"blob radius", "tripped", "erosion flips", "fixated")
	for i := 0; i < sres.Len(); i++ {
		c, v := sres.At(i)
		stall.AddRow(report.I(int(c.Extra)), fmt.Sprintf("%v", v[0] == 1),
			report.I64(int64(v[1])), fmt.Sprintf("%v", v[2] == 1))
	}

	// Part 2: T(rho) in an active sea, averaged over replicates that
	// start untripped.
	reps := pick(ctx, 8, 24)
	rhos := []float64{1, 2, 3}
	ares, err := ctx.run("E18-active", batch.Grid{
		Ns: []int{41}, Ws: []int{2}, Taus: []float64{0.5},
		Extras: rhos, ExtraName: "rho", Replicates: reps,
	}, []string{"T", "flips"}, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		rho := int(c.Extra)
		lat := grid.Random(c.N, 0.5, src.Split(1))
		p, err := dynamics.New(lat, c.W, c.Tau, src.Split(2))
		if err != nil {
			return []float64{math.NaN(), math.NaN()}, nil
		}
		tor := lat.Torus()
		// First center whose probe region is untripped at t=0.
		for i := 0; i < lat.Sites(); i++ {
			ctr := tor.At(i)
			trip0 := false
			tor.Square(ctr, rho, func(q geom.Point) {
				if !p.HappyAs(tor.Index(q), grid.Plus) {
					trip0 = true
				}
			})
			if trip0 {
				continue
			}
			sres, err := core.SpreadTime(p, ctr, rho, grid.Plus, 0)
			if err != nil || !sres.Tripped {
				return []float64{math.NaN(), math.NaN()}, nil
			}
			return []float64{sres.Time, float64(sres.Flips)}, nil
		}
		return []float64{math.NaN(), math.NaN()}, nil
	})
	if err != nil {
		return nil, err
	}
	active := report.NewTable(
		fmt.Sprintf("T(rho) in an active balanced sea (majority rule, n=41 w=2, reps=%d)", reps),
		"rho", "usable replicates", "mean T(rho)", "mean flips to trip")
	for _, g := range ares.Groups() {
		active.AddRow(report.I(int(g.Cell.Extra)), report.I(g.Count[0]),
			report.F(g.Mean[0]), report.F(g.Mean[1]))
	}
	return []*report.Table{stall, active}, nil
}
