package sim

import (
	"fmt"
	"math"

	"gridseg/internal/core"
	"gridseg/internal/dynamics"
	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/report"
	"gridseg/internal/stats"
)

func init() {
	register(Experiment{
		ID:     "E18",
		Figure: "Lemma 7 / Eq. 9 (spread time T(rho))",
		Title:  "Unhappiness spread: stalling fronts and T(rho) in an active sea",
		Run:    runE18,
	})
}

// runE18 measures the paper's T(rho) observable (Eq. 9) directly.
//
// Part 1 (the firewall story): a monochromatic minority blob in a pure
// majority sea erodes only at its corners and stalls as a stable
// octagon — the probe never trips, at any blob size. This is the
// mechanism behind Lemma 9's impenetrable structures.
//
// Part 2 (the Lemma 7 regime): in an active balanced sea (majority
// rule) fronts do move; T(rho) is the first time a probe region of
// radius rho would host an unhappy agent of the probe type. T(rho) is
// non-increasing in rho (an infimum over a growing region) and finite.
func runE18(ctx *Context) ([]*report.Table, error) {
	// Part 1: stalling fronts.
	n := pick(ctx, 41, 61)
	stall := report.NewTable(
		fmt.Sprintf("Minority blob in a pure sea stalls (n=%d w=2 tau=0.45)", n),
		"blob radius", "tripped", "erosion flips", "fixated")
	for _, radius := range pick(ctx, []int{4, 6}, []int{4, 6, 8, 10}) {
		lat := grid.New(n, grid.Plus)
		tor := lat.Torus()
		blob := geom.Point{X: 3 * n / 4, Y: 3 * n / 4}
		tor.Square(blob, radius, func(q geom.Point) { lat.Set(q, grid.Minus) })
		p, err := dynamics.New(lat, 2, 0.45, ctx.src(uint64(2800+radius)))
		if err != nil {
			return nil, err
		}
		res, err := core.SpreadTime(p, geom.Point{X: n / 4, Y: n / 4}, 3, grid.Plus, 0)
		if err != nil {
			return nil, err
		}
		stall.AddRow(report.I(radius), fmt.Sprintf("%v", res.Tripped),
			report.I64(res.Flips), fmt.Sprintf("%v", p.Fixated()))
	}

	// Part 2: T(rho) in an active sea, averaged over replicates that
	// start untripped.
	reps := pick(ctx, 8, 24)
	rhos := []int{1, 2, 3}
	active := report.NewTable(
		fmt.Sprintf("T(rho) in an active balanced sea (majority rule, n=41 w=2, reps=%d)", reps),
		"rho", "usable replicates", "mean T(rho)", "mean flips to trip")
	for _, rho := range rhos {
		type out struct {
			t     float64
			flips float64
			ok    bool
		}
		res := parallelMap(ctx, reps, func(r int) out {
			src := ctx.src(uint64(2900 + r))
			lat := grid.Random(41, 0.5, src.Split(1))
			p, err := dynamics.New(lat, 2, 0.5, src.Split(2))
			if err != nil {
				return out{}
			}
			tor := lat.Torus()
			// First center whose probe region is untripped at t=0.
			for i := 0; i < lat.Sites(); i++ {
				c := tor.At(i)
				trip0 := false
				tor.Square(c, rho, func(q geom.Point) {
					if !p.HappyAs(tor.Index(q), grid.Plus) {
						trip0 = true
					}
				})
				if trip0 {
					continue
				}
				sres, err := core.SpreadTime(p, c, rho, grid.Plus, 0)
				if err != nil || !sres.Tripped {
					return out{}
				}
				return out{t: sres.Time, flips: float64(sres.Flips), ok: true}
			}
			return out{}
		})
		var ts, flips []float64
		for _, v := range res {
			if v.ok {
				ts = append(ts, v.t)
				flips = append(flips, v.flips)
			}
		}
		meanT := math.NaN()
		meanF := math.NaN()
		if len(ts) > 0 {
			meanT = stats.Mean(ts)
			meanF = stats.Mean(flips)
		}
		active.AddRow(report.I(rho), report.I(len(ts)), report.F(meanT), report.F(meanF))
	}
	return []*report.Table{stall, active}, nil
}
