package sim

import (
	"fmt"
	"path/filepath"

	"gridseg/internal/dynamics"
	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/measure"
	"gridseg/internal/report"
	"gridseg/internal/stats"
	"gridseg/internal/theory"
	"gridseg/internal/viz"
)

func init() {
	register(Experiment{
		ID:     "E1",
		Figure: "Fig. 1",
		Title:  "Self-segregation arising over time at tau = 0.42",
		Run:    runE1,
	})
	register(Experiment{
		ID:     "E7",
		Figure: "static regime (Sec. I.B)",
		Title:  "Static configurations for tau <= 1/4 and tau >= 3/4",
		Run:    runE7,
	})
	register(Experiment{
		ID:     "E8",
		Figure: "tau = 1/2 open case (Sec. V)",
		Title:  "Region sizes at tau = 1/2 versus inside the Theorem 1 interval",
		Run:    runE8,
	})
	register(Experiment{
		ID:     "E9",
		Figure: "complete segregation, p > p* (Fontes et al., Sec. V)",
		Title:  "Fraction of runs reaching a single-type grid at tau = 1/2 vs p",
		Run:    runE9,
	})
}

// runE1 reproduces the Fig. 1 workload: Glauber at tau = 0.42 on a
// 1000x1000 grid with horizon 10 (N = 441), snapshots at four stages.
// Quick mode shrinks to 200x200, w = 4.
func runE1(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 200, 1000)
	w := pick(ctx, 4, 10)
	const tau, p = 0.42, 0.5
	src := ctx.src(1)

	// Pass 1: count total flips to fixation.
	ctx.log("E1: sizing pass n=%d w=%d", n, w)
	sized, err := glauberRun(n, w, tau, p, src)
	if err != nil {
		return nil, err
	}
	total := sized.Flips

	// Pass 2: identical run with snapshot capture at 0, 1/3, 2/3, 1.
	lat := grid.Random(n, p, src.Split(1))
	proc, err := dynamics.New(lat, w, tau, src.Split(2))
	if err != nil {
		return nil, err
	}
	marks := []int64{0, total / 3, 2 * total / 3, total}
	t := report.NewTable(
		fmt.Sprintf("Fig. 1 evolution: n=%d w=%d N=%d tau=%.2f (total flips %d)", n, w, proc.NeighborhoodSize(), proc.Tau(), total),
		"stage", "flips", "time", "happy frac", "interface density", "largest cluster frac", "mean |M| sample")
	var done int64
	for stage, mark := range marks {
		for done < mark {
			if _, ok := proc.Step(); !ok {
				break
			}
			done++
		}
		radii := measure.CenteredRadii(lat)
		var sizes []float64
		for _, pt := range samplePoints(lat.N(), 5) {
			sizes = append(sizes, float64(measure.MonoRegionSize(lat, radii, pt)))
		}
		cl, _ := measure.Clusters(lat)
		largest := cl.LargestPlus
		if cl.LargestMinus > largest {
			largest = cl.LargestMinus
		}
		t.AddRow(
			fmt.Sprintf("%d/3", stage),
			report.I64(done),
			report.F3(proc.Time()),
			report.F3(proc.HappyFraction()),
			report.F3(measure.InterfaceDensity(lat)),
			report.F3(float64(largest)/float64(lat.Sites())),
			report.F(stats.Mean(sizes)),
		)
		if ctx.OutDir != "" {
			path := filepath.Join(ctx.OutDir, fmt.Sprintf("fig1_stage%d.png", stage))
			if err := viz.SavePNG(path, lat, w, proc.Threshold(), 1); err != nil {
				return nil, err
			}
			ctx.log("wrote %s", path)
		}
	}
	if !proc.Fixated() {
		return nil, fmt.Errorf("sim: E1 replay did not fixate (flips %d of %d)", done, total)
	}
	return []*report.Table{t}, nil
}

// samplePoints returns a deterministic spread of probe agents: the
// theorems hold for an arbitrary fixed agent, so any deterministic
// sample is a valid estimator of E[M].
func samplePoints(n, k int) []geom.Point {
	pts := make([]geom.Point, 0, k)
	for i := 0; i < k; i++ {
		pts = append(pts, geom.Point{
			X: (i*2*n/(2*k) + n/(2*k)) % n,
			Y: ((i*7 + 3) * n / (k*7 + 3)) % n,
		})
	}
	return pts
}

// runE7 verifies the static regimes cited in Section I.B: for tau <= 1/4
// (and by symmetry tau >= 3/4) the initial configuration is w.h.p.
// static — flips per site ~ 0.
func runE7(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 80, 200)
	w := pick(ctx, 2, 4)
	reps := pick(ctx, 3, 10)
	taus := []float64{0.15, 0.22, 0.45, 0.80}
	t := report.NewTable(
		fmt.Sprintf("Static regimes: n=%d w=%d reps=%d (flips per site at fixation)", n, w, reps),
		"tau", "regime (theory)", "mean flips/site", "mean happy frac t=0")
	for ti, tau := range taus {
		res := parallelMap(ctx, reps, func(r int) [2]float64 {
			src := ctx.src(uint64(700 + ti*100 + r))
			run, err := glauberRun(n, w, tau, 0.5, src)
			if err != nil {
				return [2]float64{-1, -1}
			}
			initialHappy := measure.HappyFraction(grid.Random(n, 0.5, src.Split(1)), w, run.Proc.Threshold())
			return [2]float64{float64(run.Flips) / float64(n*n), initialHappy}
		})
		var flips, happy []float64
		for _, v := range res {
			if v[0] >= 0 {
				flips = append(flips, v[0])
				happy = append(happy, v[1])
			}
		}
		t.AddRow(report.F(tau), classify(tau), report.F(stats.Mean(flips)), report.F3(stats.Mean(happy)))
	}
	return []*report.Table{t}, nil
}

func classify(tau float64) string {
	return theory.Classify(tau).String()
}

// runE8 contrasts the open tau = 1/2 point with the Theorem 1 interval.
// The paper proves exponential regions for tau in (tau1, 1/2) and leaves
// tau = 1/2 open on the 2-D grid (Sec. V); in 1-D the 1/2 point is
// polynomial while the interval is exponential. This experiment reports
// both points at equal N without asserting an ordering: empirically the
// tau = 1/2 majority rule coarsens into *larger* domains (zero-T Ising
// coarsening), which is consistent with the problem being open.
func runE8(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 100, 250)
	w := pick(ctx, 2, 3)
	reps := pick(ctx, 4, 12)
	taus := []float64{0.46, 0.5}
	t := report.NewTable(
		fmt.Sprintf("tau = 1/2 vs Theorem 1 interval: n=%d w=%d reps=%d", n, w, reps),
		"tau", "effective tau", "mean M", "mean largest cluster frac")
	for ti, tau := range taus {
		res := parallelMap(ctx, reps, func(r int) [3]float64 {
			src := ctx.src(uint64(800 + ti*100 + r))
			run, err := glauberRun(n, w, tau, 0.5, src)
			if err != nil {
				return [3]float64{-1}
			}
			radii := measure.CenteredRadii(run.Lat)
			var sizes []float64
			for _, pt := range samplePoints(n, 5) {
				sizes = append(sizes, float64(measure.MonoRegionSize(run.Lat, radii, pt)))
			}
			cl, _ := measure.Clusters(run.Lat)
			largest := cl.LargestPlus
			if cl.LargestMinus > largest {
				largest = cl.LargestMinus
			}
			return [3]float64{stats.Mean(sizes), float64(largest) / float64(n*n), run.Proc.Tau()}
		})
		var ms, fracs []float64
		eff := 0.0
		for _, v := range res {
			if v[0] >= 0 {
				ms = append(ms, v[0])
				fracs = append(fracs, v[1])
				eff = v[2]
			}
		}
		t.AddRow(report.F(tau), report.F(eff), report.F(stats.Mean(ms)), report.F3(stats.Mean(fracs)))
	}
	return []*report.Table{t}, nil
}

// runE9 sweeps the initial density p at tau = 1/2 and reports how often
// the fixed point is a single-type grid — the Fontes et al. complete
// segregation regime for p > p*, contrasted with p = 1/2 where the
// paper's exponential upper bound forbids it w.h.p.
func runE9(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 48, 96)
	w := pick(ctx, 2, 2)
	reps := pick(ctx, 6, 20)
	ps := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	t := report.NewTable(
		fmt.Sprintf("Complete segregation at tau=1/2: n=%d w=%d reps=%d", n, w, reps),
		"p", "frac complete", "mean |magnetization|")
	for pi, p := range ps {
		res := parallelMap(ctx, reps, func(r int) [2]float64 {
			src := ctx.src(uint64(900 + pi*100 + r))
			run, err := glauberRun(n, w, 0.5, p, src)
			if err != nil {
				return [2]float64{-1, -1}
			}
			plus := run.Lat.CountPlus()
			complete := 0.0
			if plus == 0 || plus == run.Lat.Sites() {
				complete = 1
			}
			m := float64(2*plus-run.Lat.Sites()) / float64(run.Lat.Sites())
			if m < 0 {
				m = -m
			}
			return [2]float64{complete, m}
		})
		var comp, mag []float64
		for _, v := range res {
			if v[0] >= 0 {
				comp = append(comp, v[0])
				mag = append(mag, v[1])
			}
		}
		t.AddRow(report.F(p), report.F3(stats.Mean(comp)), report.F3(stats.Mean(mag)))
	}
	return []*report.Table{t}, nil
}
