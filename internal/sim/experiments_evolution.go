package sim

import (
	"fmt"
	"math"
	"path/filepath"

	"gridseg/internal/batch"
	"gridseg/internal/dynamics"
	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/measure"
	"gridseg/internal/report"
	"gridseg/internal/rng"
	"gridseg/internal/stats"
	"gridseg/internal/theory"
	"gridseg/internal/viz"
)

func init() {
	register(Experiment{
		ID:     "E1",
		Figure: "Fig. 1",
		Title:  "Self-segregation arising over time at tau = 0.42",
		Run:    runE1,
	})
	register(Experiment{
		ID:     "E7",
		Figure: "static regime (Sec. I.B)",
		Title:  "Static configurations for tau <= 1/4 and tau >= 3/4",
		Run:    runE7,
	})
	register(Experiment{
		ID:     "E8",
		Figure: "tau = 1/2 open case (Sec. V)",
		Title:  "Region sizes at tau = 1/2 versus inside the Theorem 1 interval",
		Run:    runE8,
	})
	register(Experiment{
		ID:     "E9",
		Figure: "complete segregation, p > p* (Fontes et al., Sec. V)",
		Title:  "Fraction of runs reaching a single-type grid at tau = 1/2 vs p",
		Run:    runE9,
	})
}

// runE1 reproduces the Fig. 1 workload: Glauber at tau = 0.42 on a
// 1000x1000 grid with horizon 10 (N = 441), snapshots at four stages.
// Quick mode shrinks to 200x200, w = 4.
func runE1(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 200, 1000)
	w := pick(ctx, 4, 10)
	const tau, p = 0.42, 0.5
	src := ctx.src(1)

	// Pass 1: count total flips to fixation.
	ctx.log("E1: sizing pass n=%d w=%d", n, w)
	sized, err := glauberRun(n, w, tau, p, src, ctx.Engine)
	if err != nil {
		return nil, err
	}
	total := sized.Flips

	// Pass 2: identical run with snapshot capture at 0, 1/3, 2/3, 1.
	lat := grid.Random(n, p, src.Split(1))
	proc, err := dynamics.New(lat, w, tau, src.Split(2))
	if err != nil {
		return nil, err
	}
	marks := []int64{0, total / 3, 2 * total / 3, total}
	t := report.NewTable(
		fmt.Sprintf("Fig. 1 evolution: n=%d w=%d N=%d tau=%.2f (total flips %d)", n, w, proc.NeighborhoodSize(), proc.Tau(), total),
		"stage", "flips", "time", "happy frac", "interface density", "largest cluster frac", "mean |M| sample")
	var done int64
	for stage, mark := range marks {
		for done < mark {
			if _, ok := proc.Step(); !ok {
				break
			}
			done++
		}
		radii := measure.CenteredRadii(lat)
		var sizes []float64
		for _, pt := range samplePoints(lat.N(), 5) {
			sizes = append(sizes, float64(measure.MonoRegionSize(lat, radii, pt)))
		}
		cl, _ := measure.Clusters(lat)
		largest := cl.LargestPlus
		if cl.LargestMinus > largest {
			largest = cl.LargestMinus
		}
		t.AddRow(
			fmt.Sprintf("%d/3", stage),
			report.I64(done),
			report.F3(proc.Time()),
			report.F3(proc.HappyFraction()),
			report.F3(measure.InterfaceDensity(lat)),
			report.F3(float64(largest)/float64(lat.Sites())),
			report.F(stats.Mean(sizes)),
		)
		if ctx.OutDir != "" {
			path := filepath.Join(ctx.OutDir, fmt.Sprintf("fig1_stage%d.png", stage))
			if err := viz.SavePNG(path, lat, w, proc.Threshold(), 1); err != nil {
				return nil, err
			}
			ctx.log("wrote %s", path)
		}
	}
	if !proc.Fixated() {
		return nil, fmt.Errorf("sim: E1 replay did not fixate (flips %d of %d)", done, total)
	}
	return []*report.Table{t}, nil
}

// samplePoints returns the shared deterministic spread of probe agents
// (see measure.SamplePoints).
func samplePoints(n, k int) []geom.Point { return measure.SamplePoints(n, k) }

// runE7 verifies the static regimes cited in Section I.B: for tau <= 1/4
// (and by symmetry tau >= 3/4) the initial configuration is w.h.p.
// static — flips per site ~ 0.
func runE7(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 80, 200)
	w := pick(ctx, 2, 4)
	reps := pick(ctx, 3, 10)
	taus := []float64{0.15, 0.22, 0.45, 0.80}

	res, err := ctx.run("E7", batch.Grid{
		Ns: []int{n}, Ws: []int{w}, Taus: taus, Replicates: reps,
	}, []string{"flipsPerSite", "happy0"}, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		run, err := glauberRun(c.N, c.W, c.Tau, 0.5, src, c.Engine)
		if err != nil {
			return []float64{math.NaN(), math.NaN()}, nil
		}
		initialHappy := measure.HappyFraction(grid.Random(c.N, 0.5, src.Split(1)), c.W, run.Proc.Threshold())
		return []float64{float64(run.Flips) / float64(c.N*c.N), initialHappy}, nil
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Static regimes: n=%d w=%d reps=%d (flips per site at fixation)", n, w, reps),
		"tau", "regime (theory)", "mean flips/site", "mean happy frac t=0")
	for _, g := range res.Groups() {
		t.AddRow(report.F(g.Cell.Tau), classify(g.Cell.Tau), report.F(g.Mean[0]), report.F3(g.Mean[1]))
	}
	return []*report.Table{t}, nil
}

func classify(tau float64) string {
	return theory.Classify(tau).String()
}

// runE8 contrasts the open tau = 1/2 point with the Theorem 1 interval.
// The paper proves exponential regions for tau in (tau1, 1/2) and leaves
// tau = 1/2 open on the 2-D grid (Sec. V); in 1-D the 1/2 point is
// polynomial while the interval is exponential. This experiment reports
// both points at equal N without asserting an ordering: empirically the
// tau = 1/2 majority rule coarsens into *larger* domains (zero-T Ising
// coarsening), which is consistent with the problem being open.
func runE8(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 100, 250)
	w := pick(ctx, 2, 3)
	reps := pick(ctx, 4, 12)
	taus := []float64{0.46, 0.5}

	res, err := ctx.run("E8", batch.Grid{
		Ns: []int{n}, Ws: []int{w}, Taus: taus, Replicates: reps,
	}, []string{"meanM", "largestFrac", "effTau"}, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		run, err := glauberRun(c.N, c.W, c.Tau, 0.5, src, c.Engine)
		if err != nil {
			return []float64{math.NaN(), math.NaN(), math.NaN()}, nil
		}
		radii := measure.CenteredRadii(run.Lat)
		var sizes []float64
		for _, pt := range samplePoints(c.N, 5) {
			sizes = append(sizes, float64(measure.MonoRegionSize(run.Lat, radii, pt)))
		}
		cl, _ := measure.Clusters(run.Lat)
		largest := cl.LargestPlus
		if cl.LargestMinus > largest {
			largest = cl.LargestMinus
		}
		return []float64{stats.Mean(sizes), float64(largest) / float64(c.N*c.N), run.Proc.Tau()}, nil
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("tau = 1/2 vs Theorem 1 interval: n=%d w=%d reps=%d", n, w, reps),
		"tau", "effective tau", "mean M", "mean largest cluster frac")
	for _, g := range res.Groups() {
		t.AddRow(report.F(g.Cell.Tau), report.F(g.Mean[2]), report.F(g.Mean[0]), report.F3(g.Mean[1]))
	}
	return []*report.Table{t}, nil
}

// runE9 sweeps the initial density p at tau = 1/2 and reports how often
// the fixed point is a single-type grid — the Fontes et al. complete
// segregation regime for p > p*, contrasted with p = 1/2 where the
// paper's exponential upper bound forbids it w.h.p.
func runE9(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 48, 96)
	w := pick(ctx, 2, 2)
	reps := pick(ctx, 6, 20)
	ps := []float64{0.5, 0.6, 0.7, 0.8, 0.9}

	res, err := ctx.run("E9", batch.Grid{
		Ns: []int{n}, Ws: []int{w}, Taus: []float64{0.5}, Ps: ps, Replicates: reps,
	}, []string{"complete", "absMag"}, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		run, err := glauberRun(c.N, c.W, c.Tau, c.P, src, c.Engine)
		if err != nil {
			return []float64{math.NaN(), math.NaN()}, nil
		}
		plus := run.Lat.CountPlus()
		complete := 0.0
		if plus == 0 || plus == run.Lat.Sites() {
			complete = 1
		}
		m := math.Abs(float64(2*plus-run.Lat.Sites()) / float64(run.Lat.Sites()))
		return []float64{complete, m}, nil
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Complete segregation at tau=1/2: n=%d w=%d reps=%d", n, w, reps),
		"p", "frac complete", "mean |magnetization|")
	for _, g := range res.Groups() {
		t.AddRow(report.F(g.Cell.P), report.F3(g.Mean[0]), report.F3(g.Mean[1]))
	}
	return []*report.Table{t}, nil
}
