package sim

import (
	"fmt"
	"math"

	"gridseg/internal/batch"
	"gridseg/internal/dynamics"
	"gridseg/internal/grid"
	"gridseg/internal/measure"
	"gridseg/internal/report"
	"gridseg/internal/rng"
)

// E15-E17 implement the variations the paper proposes as future work:
// both-sided discomfort and the initial-density question (Section V),
// and the noisy-agent variant (Section I.A).
func init() {
	register(Experiment{
		ID:     "E15",
		Figure: "Sec. V variation (both-sided discomfort)",
		Title:  "Upper intolerance caps segregation",
		Run:    runE15,
	})
	register(Experiment{
		ID:     "E16",
		Figure: "Sec. V question (initial density p)",
		Title:  "Initial density sweep inside the Theorem 1 interval",
		Run:    runE16,
	})
	register(Experiment{
		ID:     "E17",
		Figure: "Sec. I.A variation (noisy agents)",
		Title:  "Segregation robustness under rule-violating noise",
		Run:    runE17,
	})
}

// variantColumns is the shared metric vector of the variant runs.
var variantColumns = []string{"happyFrac", "ifaceDensity", "sameFrac", "largestFrac"}

// runVariantCell runs a variant to a budget and summarizes the final
// configuration as the variantColumns metric vector (NaNs on error).
func runVariantCell(n, w int, opts dynamics.VariantOptions, budget int64, src *rng.Source) []float64 {
	nan := []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN()}
	lat := grid.Random(n, 0.5, src.Split(1))
	v, err := dynamics.NewVariant(lat, w, opts, src.Split(2))
	if err != nil {
		return nan
	}
	if _, _, err := v.Run(budget); err != nil {
		return nan
	}
	cl, _ := measure.Clusters(lat)
	largest := cl.LargestPlus
	if cl.LargestMinus > largest {
		largest = cl.LargestMinus
	}
	return []float64{
		1 - float64(v.UnhappyCount())/float64(lat.Sites()),
		measure.InterfaceDensity(lat),
		measure.MeanSameFraction(lat, w),
		float64(largest) / float64(lat.Sites()),
	}
}

// runE15 sweeps the upper discomfort threshold: agents unhappy both as
// extreme minorities and as saturated majorities. Lower upper
// thresholds must cap cluster growth.
func runE15(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 64, 128)
	w := 2
	tau := 0.45
	reps := pick(ctx, 3, 8)
	budget := int64(n) * int64(n) * 5
	uppers := []float64{1.0, 0.9, 0.8, 0.7}

	res, err := ctx.run("E15", batch.Grid{
		Ns: []int{n}, Ws: []int{w}, Taus: []float64{tau},
		Extras: uppers, ExtraName: "upper", Replicates: reps,
	}, variantColumns, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		opts := dynamics.VariantOptions{
			TauPlus: c.Tau, TauMinus: c.Tau,
			UpperPlus: c.Extra, UpperMinus: c.Extra,
		}
		return runVariantCell(c.N, c.W, opts, budget, src), nil
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Both-sided discomfort: n=%d w=%d tau=%.2f budget=%d reps=%d", n, w, tau, budget, reps),
		"upper", "happy frac", "interface density", "mean same frac", "largest cluster frac")
	for _, g := range res.Groups() {
		t.AddRow(report.F(g.Cell.Extra), report.F3(g.Mean[0]), report.F3(g.Mean[1]),
			report.F3(g.Mean[2]), report.F3(g.Mean[3]))
	}
	return []*report.Table{t}, nil
}

// runE16 addresses the Section V question of how the initial density p
// influences segregation inside the Theorem 1 interval: as p grows the
// minority's largest surviving cluster collapses and takeovers appear.
func runE16(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 64, 160)
	w := 2
	tau := 0.45
	reps := pick(ctx, 4, 10)
	ps := []float64{0.5, 0.55, 0.6, 0.7, 0.8}

	res, err := ctx.run("E16", batch.Grid{
		Ns: []int{n}, Ws: []int{w}, Taus: []float64{tau}, Ps: ps, Replicates: reps,
	}, []string{"absMag", "minorityFrac", "complete"}, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		run, err := glauberRun(c.N, c.W, c.Tau, c.P, src, c.Engine)
		if err != nil {
			return []float64{math.NaN(), math.NaN(), math.NaN()}, nil
		}
		sites := run.Lat.Sites()
		plus := run.Lat.CountPlus()
		mag := math.Abs(float64(2*plus-sites)) / float64(sites)
		cl, _ := measure.Clusters(run.Lat)
		minority := cl.LargestMinus
		if plus < sites-plus {
			minority = cl.LargestPlus
		}
		complete := 0.0
		if plus == 0 || plus == sites {
			complete = 1
		}
		return []float64{mag, float64(minority) / float64(sites), complete}, nil
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Initial density sweep at tau=%.2f: n=%d w=%d reps=%d", tau, n, w, reps),
		"p", "final |magnetization|", "minority cluster frac", "frac complete")
	for _, g := range res.Groups() {
		t.AddRow(report.F(g.Cell.P), report.F3(g.Mean[0]), report.F3(g.Mean[1]), report.F3(g.Mean[2]))
	}
	return []*report.Table{t}, nil
}

// runE17 sweeps the noise rate: with small noise the segregated
// structure persists (interface density stays low); with large noise
// the rule signal is drowned and the configuration stays disordered.
func runE17(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 64, 128)
	w := 2
	tau := 0.45
	reps := pick(ctx, 3, 8)
	budget := int64(n) * int64(n) * 5
	noises := []float64{0, 0.01, 0.05, 0.2}

	res, err := ctx.run("E17", batch.Grid{
		Ns: []int{n}, Ws: []int{w}, Taus: []float64{tau},
		Extras: noises, ExtraName: "noise", Replicates: reps,
	}, variantColumns, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		opts := dynamics.VariantOptions{TauPlus: c.Tau, TauMinus: c.Tau, Noise: c.Extra}
		return runVariantCell(c.N, c.W, opts, budget, src), nil
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Noisy agents: n=%d w=%d tau=%.2f budget=%d reps=%d", n, w, tau, budget, reps),
		"noise", "interface density", "mean same frac", "largest cluster frac")
	for _, g := range res.Groups() {
		t.AddRow(report.F(g.Cell.Extra), report.F3(g.Mean[1]),
			report.F3(g.Mean[2]), report.F3(g.Mean[3]))
	}
	return []*report.Table{t}, nil
}
