package sim

import (
	"fmt"
	"math"

	"gridseg/internal/dynamics"
	"gridseg/internal/grid"
	"gridseg/internal/measure"
	"gridseg/internal/report"
	"gridseg/internal/stats"
)

// E15-E17 implement the variations the paper proposes as future work:
// both-sided discomfort and the initial-density question (Section V),
// and the noisy-agent variant (Section I.A).
func init() {
	register(Experiment{
		ID:     "E15",
		Figure: "Sec. V variation (both-sided discomfort)",
		Title:  "Upper intolerance caps segregation",
		Run:    runE15,
	})
	register(Experiment{
		ID:     "E16",
		Figure: "Sec. V question (initial density p)",
		Title:  "Initial density sweep inside the Theorem 1 interval",
		Run:    runE16,
	})
	register(Experiment{
		ID:     "E17",
		Figure: "Sec. I.A variation (noisy agents)",
		Title:  "Segregation robustness under rule-violating noise",
		Run:    runE17,
	})
}

// variantStats runs a variant to a budget and summarizes the final
// configuration.
type variantOut struct {
	happy, iface, same, largest float64
	ok                          bool
}

func runVariantOnce(ctx *Context, n, w int, opts dynamics.VariantOptions, budget int64, label uint64) variantOut {
	src := ctx.src(label)
	lat := grid.Random(n, 0.5, src.Split(1))
	v, err := dynamics.NewVariant(lat, w, opts, src.Split(2))
	if err != nil {
		return variantOut{}
	}
	if _, _, err := v.Run(budget); err != nil {
		return variantOut{}
	}
	cl, _ := measure.Clusters(lat)
	largest := cl.LargestPlus
	if cl.LargestMinus > largest {
		largest = cl.LargestMinus
	}
	return variantOut{
		happy:   1 - float64(v.UnhappyCount())/float64(lat.Sites()),
		iface:   measure.InterfaceDensity(lat),
		same:    measure.MeanSameFraction(lat, w),
		largest: float64(largest) / float64(lat.Sites()),
		ok:      true,
	}
}

// runE15 sweeps the upper discomfort threshold: agents unhappy both as
// extreme minorities and as saturated majorities. Lower upper
// thresholds must cap cluster growth.
func runE15(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 64, 128)
	w := 2
	tau := 0.45
	reps := pick(ctx, 3, 8)
	budget := int64(n) * int64(n) * 5
	uppers := []float64{1.0, 0.9, 0.8, 0.7}
	t := report.NewTable(
		fmt.Sprintf("Both-sided discomfort: n=%d w=%d tau=%.2f budget=%d reps=%d", n, w, tau, budget, reps),
		"upper", "happy frac", "interface density", "mean same frac", "largest cluster frac")
	for ui, upper := range uppers {
		opts := dynamics.VariantOptions{
			TauPlus: tau, TauMinus: tau,
			UpperPlus: upper, UpperMinus: upper,
		}
		res := parallelMap(ctx, reps, func(r int) variantOut {
			return runVariantOnce(ctx, n, w, opts, budget, uint64(2500+ui*100+r))
		})
		var happy, iface, same, largest []float64
		for _, v := range res {
			if v.ok {
				happy = append(happy, v.happy)
				iface = append(iface, v.iface)
				same = append(same, v.same)
				largest = append(largest, v.largest)
			}
		}
		t.AddRow(report.F(upper), report.F3(stats.Mean(happy)), report.F3(stats.Mean(iface)),
			report.F3(stats.Mean(same)), report.F3(stats.Mean(largest)))
	}
	return []*report.Table{t}, nil
}

// runE16 addresses the Section V question of how the initial density p
// influences segregation inside the Theorem 1 interval: as p grows the
// minority's largest surviving cluster collapses and takeovers appear.
func runE16(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 64, 160)
	w := 2
	tau := 0.45
	reps := pick(ctx, 4, 10)
	ps := []float64{0.5, 0.55, 0.6, 0.7, 0.8}
	t := report.NewTable(
		fmt.Sprintf("Initial density sweep at tau=%.2f: n=%d w=%d reps=%d", tau, n, w, reps),
		"p", "final |magnetization|", "minority cluster frac", "frac complete")
	for pi, p := range ps {
		type out struct {
			mag, minority, complete float64
			ok                      bool
		}
		res := parallelMap(ctx, reps, func(r int) out {
			src := ctx.src(uint64(2600 + pi*100 + r))
			run, err := glauberRun(n, w, tau, p, src)
			if err != nil {
				return out{}
			}
			sites := run.Lat.Sites()
			plus := run.Lat.CountPlus()
			mag := math.Abs(float64(2*plus-sites)) / float64(sites)
			cl, _ := measure.Clusters(run.Lat)
			minority := cl.LargestMinus
			if plus < sites-plus {
				minority = cl.LargestPlus
			}
			complete := 0.0
			if plus == 0 || plus == sites {
				complete = 1
			}
			return out{mag: mag, minority: float64(minority) / float64(sites), complete: complete, ok: true}
		})
		var mags, minorities, completes []float64
		for _, v := range res {
			if v.ok {
				mags = append(mags, v.mag)
				minorities = append(minorities, v.minority)
				completes = append(completes, v.complete)
			}
		}
		t.AddRow(report.F(p), report.F3(stats.Mean(mags)),
			report.F3(stats.Mean(minorities)), report.F3(stats.Mean(completes)))
	}
	return []*report.Table{t}, nil
}

// runE17 sweeps the noise rate: with small noise the segregated
// structure persists (interface density stays low); with large noise
// the rule signal is drowned and the configuration stays disordered.
func runE17(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 64, 128)
	w := 2
	tau := 0.45
	reps := pick(ctx, 3, 8)
	budget := int64(n) * int64(n) * 5
	noises := []float64{0, 0.01, 0.05, 0.2}
	t := report.NewTable(
		fmt.Sprintf("Noisy agents: n=%d w=%d tau=%.2f budget=%d reps=%d", n, w, tau, budget, reps),
		"noise", "interface density", "mean same frac", "largest cluster frac")
	for ni, noise := range noises {
		opts := dynamics.VariantOptions{TauPlus: tau, TauMinus: tau, Noise: noise}
		res := parallelMap(ctx, reps, func(r int) variantOut {
			return runVariantOnce(ctx, n, w, opts, budget, uint64(2700+ni*100+r))
		})
		var iface, same, largest []float64
		for _, v := range res {
			if v.ok {
				iface = append(iface, v.iface)
				same = append(same, v.same)
				largest = append(largest, v.largest)
			}
		}
		t.AddRow(report.F(noise), report.F3(stats.Mean(iface)),
			report.F3(stats.Mean(same)), report.F3(stats.Mean(largest)))
	}
	return []*report.Table{t}, nil
}
