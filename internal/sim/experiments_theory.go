package sim

import (
	"fmt"
	"os"
	"path/filepath"

	"gridseg/internal/report"
	"gridseg/internal/theory"
)

func init() {
	register(Experiment{
		ID:     "E2",
		Figure: "Fig. 2",
		Title:  "Intolerance intervals for (almost) monochromatic segregation",
		Run:    runE2,
	})
	register(Experiment{
		ID:     "E3",
		Figure: "Fig. 3",
		Title:  "Exponent multipliers a(tau) and b(tau)",
		Run:    runE3,
	})
	register(Experiment{
		ID:     "E4",
		Figure: "Fig. 6",
		Title:  "Triggering threshold f(tau), the infimum of eps'",
		Run:    runE4,
	})
}

// runE2 regenerates the Fig. 2 interval structure from the defining
// equations (1) and (3).
func runE2(ctx *Context) ([]*report.Table, error) {
	t1 := theory.Tau1()
	consts := report.NewTable("Fig. 2 constants", "quantity", "paper", "computed")
	consts.AddRow("tau1 (Eq. 1)", "~0.433", report.F(t1))
	consts.AddRow("tau2 (Eq. 3)", "~0.344", report.F(theory.Tau2))
	consts.AddRow("monochromatic width 1-2*tau1", "~0.134", report.F(theory.MonochromaticWidth()))
	consts.AddRow("almost-mono width 1-2*tau2", "~0.312", report.F(theory.AlmostMonochromaticWidth()))

	iv := report.NewTable("Fig. 2 intervals", "lo", "hi", "regime")
	for _, in := range theory.Intervals() {
		iv.AddRow(report.F(in.Lo), report.F(in.Hi), in.Label)
	}
	return []*report.Table{consts, iv}, nil
}

// curveTable samples the theory curves and optionally writes a CSV.
func curveTable(ctx *Context, title, csvName string, samples int, cols []string, cells func(p theory.CurvePoint) []string) (*report.Table, error) {
	t := report.NewTable(title, cols...)
	for _, p := range theory.Curves(samples) {
		t.AddRow(cells(p)...)
	}
	if ctx.OutDir != "" {
		path := filepath.Join(ctx.OutDir, csvName)
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		defer f.Close()
		if err := t.WriteCSV(f); err != nil {
			return nil, err
		}
		ctx.log("wrote %s", path)
	}
	return t, nil
}

// runE3 regenerates the Fig. 3 curves a(tau), b(tau) with eps' = f(tau).
func runE3(ctx *Context) ([]*report.Table, error) {
	samples := pick(ctx, 12, 48)
	t, err := curveTable(ctx, "Fig. 3: exponent multipliers (tau2, 1/2)", "fig3_exponents.csv",
		samples, []string{"tau", "a(tau)", "b(tau)"},
		func(p theory.CurvePoint) []string {
			return []string{report.F(p.Tau), report.F(p.A), report.F(p.B)}
		})
	if err != nil {
		return nil, err
	}
	return []*report.Table{t}, nil
}

// runE4 regenerates the Fig. 6 curve f(tau).
func runE4(ctx *Context) ([]*report.Table, error) {
	samples := pick(ctx, 12, 48)
	t, err := curveTable(ctx, "Fig. 6: infimum of eps' to trigger a cascade", "fig6_ftau.csv",
		samples, []string{"tau", "f(tau)"},
		func(p theory.CurvePoint) []string {
			return []string{report.F(p.Tau), report.F(p.F)}
		})
	if err != nil {
		return nil, err
	}
	return []*report.Table{t}, nil
}
