package sim

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"gridseg/internal/report"
)

func quickCtx(t *testing.T) *Context {
	t.Helper()
	return &Context{Quick: true, Seed: 12345, Workers: 2}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 21 {
		t.Fatalf("registry has %d experiments, want 21", len(all))
	}
	seen := map[string]bool{}
	for i, e := range all {
		if e.ID == "" || e.Title == "" || e.Figure == "" || e.Run == nil {
			t.Fatalf("experiment %d incomplete: %+v", i, e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	// Ordered by numeric ID.
	for i := 1; i < len(all); i++ {
		a, _ := strconv.Atoi(strings.TrimPrefix(all[i-1].ID, "E"))
		b, _ := strconv.Atoi(strings.TrimPrefix(all[i].ID, "E"))
		if a >= b {
			t.Fatalf("registry not ordered: %s before %s", all[i-1].ID, all[i].ID)
		}
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("E2"); !ok {
		t.Fatal("E2 must exist")
	}
	if _, ok := Find("E99"); ok {
		t.Fatal("E99 must not exist")
	}
}

// TestWorkerCountIndependence is the harness-level scheduling
// regression: experiment output must be identical for any Workers
// setting, because every replicate's random stream is derived from the
// cell index on the batch engine, never from scheduling order.
func TestWorkerCountIndependence(t *testing.T) {
	for _, id := range []string{"E5", "E9", "E15", "E20"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		render := func(workers int) string {
			ctx := &Context{Quick: true, Seed: 12345, Workers: workers}
			tables, err := e.Run(ctx)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", id, workers, err)
			}
			var b strings.Builder
			for _, tb := range tables {
				b.WriteString(tb.String())
			}
			return b.String()
		}
		if render(1) != render(8) {
			t.Fatalf("%s output depends on worker count", id)
		}
	}
}

// checkTables applies basic well-formedness checks shared by all
// experiment outputs.
func checkTables(t *testing.T, id string, tables []*report.Table) {
	t.Helper()
	if len(tables) == 0 {
		t.Fatalf("%s returned no tables", id)
	}
	for ti, tb := range tables {
		if len(tb.Columns) == 0 {
			t.Fatalf("%s table %d has no columns", id, ti)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("%s table %d has no rows", id, ti)
		}
		for ri, row := range tb.Rows {
			if len(row) != len(tb.Columns) {
				t.Fatalf("%s table %d row %d has %d cells, want %d",
					id, ti, ri, len(row), len(tb.Columns))
			}
		}
		// Must render without panicking.
		if tb.String() == "" {
			t.Fatalf("%s table %d renders empty", id, ti)
		}
	}
}

// Each experiment runs green in quick mode. Heavier experiments are
// split into their own test functions so -run filters and parallel test
// scheduling work naturally.
func runExperiment(t *testing.T, id string) []*report.Table {
	t.Helper()
	e, ok := Find(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	tables, err := e.Run(quickCtx(t))
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	checkTables(t, id, tables)
	return tables
}

func TestE1Quick(t *testing.T) {
	tables := runExperiment(t, "E1")
	// Final stage must be fully happy (the process fixates below 1/2).
	rows := tables[0].Rows
	last := rows[len(rows)-1]
	if last[3] != "1.000" {
		t.Fatalf("final happy fraction = %s, want 1.000", last[3])
	}
}

func TestE1WritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	ctx := quickCtx(t)
	ctx.OutDir = dir
	e, _ := Find("E1")
	if _, err := e.Run(ctx); err != nil {
		t.Fatal(err)
	}
	for stage := 0; stage < 4; stage++ {
		path := filepath.Join(dir, "fig1_stage"+strconv.Itoa(stage)+".png")
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("missing artifact %s: %v", path, err)
		}
	}
}

func TestE2Quick(t *testing.T) {
	tables := runExperiment(t, "E2")
	// tau1 computed must start with 0.433 as the paper quotes.
	if !strings.HasPrefix(tables[0].Rows[0][2], "0.433") {
		t.Fatalf("tau1 cell = %q", tables[0].Rows[0][2])
	}
	if len(tables[1].Rows) != 4 {
		t.Fatalf("want 4 intervals, got %d", len(tables[1].Rows))
	}
}

func TestE3Quick(t *testing.T) {
	tables := runExperiment(t, "E3")
	// a <= b on every row.
	for _, row := range tables[0].Rows {
		a, _ := strconv.ParseFloat(row[1], 64)
		b, _ := strconv.ParseFloat(row[2], 64)
		if a > b {
			t.Fatalf("a > b in row %v", row)
		}
	}
}

func TestE4Quick(t *testing.T) {
	tables := runExperiment(t, "E4")
	for _, row := range tables[0].Rows {
		f, _ := strconv.ParseFloat(row[1], 64)
		if f <= 0 || f >= 0.5 {
			t.Fatalf("f out of (0, 1/2) in row %v", row)
		}
	}
}

func TestE5Quick(t *testing.T) {
	tables := runExperiment(t, "E5")
	// Scaling table: E[M] must grow with N for each tau (exponential
	// growth shape). Rows are grouped by tau then w ascending.
	scaling := tables[0]
	byTau := map[string][]float64{}
	for _, row := range scaling.Rows {
		m, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		byTau[row[0]] = append(byTau[row[0]], m)
	}
	for tau, ms := range byTau {
		for i := 1; i < len(ms); i++ {
			if ms[i] <= ms[i-1] {
				t.Fatalf("tau=%s: E[M] did not grow with N: %v", tau, ms)
			}
		}
	}
	// Fit slopes must be positive.
	for _, row := range tables[1].Rows {
		slope, _ := strconv.ParseFloat(row[1], 64)
		if slope <= 0 {
			t.Fatalf("non-positive growth slope in row %v", row)
		}
	}
}

func TestE6Quick(t *testing.T) {
	tables := runExperiment(t, "E6")
	for _, row := range tables[0].Rows {
		if row[6] != "true" {
			t.Fatalf("M' < M in row %v", row)
		}
	}
}

func TestE7Quick(t *testing.T) {
	tables := runExperiment(t, "E7")
	// Static rows (tau 0.15, 0.22, 0.80) must have ~zero flips/site;
	// the tau=0.45 row must have clearly more.
	rows := tables[0].Rows
	static := []int{0, 1, 3}
	active := 2
	for _, i := range static {
		fps, _ := strconv.ParseFloat(rows[i][2], 64)
		if fps > 0.05 {
			t.Fatalf("static tau=%s has %v flips/site", rows[i][0], fps)
		}
	}
	fps, _ := strconv.ParseFloat(rows[active][2], 64)
	if fps < 0.05 {
		t.Fatalf("active tau row has only %v flips/site", fps)
	}
}

func TestE8Quick(t *testing.T) {
	tables := runExperiment(t, "E8")
	// The tau = 1/2 case is open in the paper (Sec. V): no ordering is
	// asserted, but both points must segregate beyond a singleton and
	// report sane values.
	for _, row := range tables[0].Rows {
		m, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if m <= 1 {
			t.Fatalf("mean region size %v implausibly small in row %v", m, row)
		}
	}
}

func TestE9Quick(t *testing.T) {
	tables := runExperiment(t, "E9")
	rows := tables[0].Rows
	first, _ := strconv.ParseFloat(rows[0][1], 64)
	last, _ := strconv.ParseFloat(rows[len(rows)-1][1], 64)
	if last < first {
		t.Fatalf("complete-segregation fraction must not fall with p: %v -> %v", first, last)
	}
}

func TestE10Quick(t *testing.T) {
	tables := runExperiment(t, "E10")
	// Firewall invariance rows must all be protected.
	for _, row := range tables[1].Rows {
		if row[1] != "true" {
			t.Fatalf("firewall breached in row %v", row)
		}
	}
	// Block fields on balanced noise must be mostly good.
	for _, row := range tables[2].Rows {
		frac, _ := strconv.ParseFloat(row[1], 64)
		if frac < 0.5 {
			t.Fatalf("good fraction %v too low in row %v", frac, row)
		}
	}
}

func TestE11Quick(t *testing.T) {
	tables := runExperiment(t, "E11")
	// FPP: E[T_k]/k roughly constant: max/min < 2.
	var ratios []float64
	for _, row := range tables[0].Rows {
		v, _ := strconv.ParseFloat(row[2], 64)
		ratios = append(ratios, v)
	}
	min, max := ratios[0], ratios[0]
	for _, v := range ratios {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max/min > 2 {
		t.Fatalf("E[T_k]/k not roughly constant: %v", ratios)
	}
	// Chemical distance ratio decreases toward 1 as p grows.
	chem := tables[1].Rows
	firstMean, _ := strconv.ParseFloat(chem[0][2], 64)
	lastMean, _ := strconv.ParseFloat(chem[len(chem)-1][2], 64)
	if lastMean > firstMean {
		t.Fatalf("D/l1 must shrink with p: %v -> %v", firstMean, lastMean)
	}
	if lastMean < 1 {
		t.Fatalf("D/l1 below 1 is impossible: %v", lastMean)
	}
}

func TestE12Quick(t *testing.T) {
	tables := runExperiment(t, "E12")
	for _, row := range tables[0].Rows {
		if row[5] != "true" {
			t.Fatalf("FKG violated: %v", row)
		}
	}
	// Proposition 1: concentration fraction must be high and grow
	// toward 1 with w.
	rows := tables[1].Rows
	first, _ := strconv.ParseFloat(rows[0][3], 64)
	last, _ := strconv.ParseFloat(rows[len(rows)-1][3], 64)
	if first < 0.5 || last < 0.9 {
		t.Fatalf("Proposition 1 concentration too weak: %v -> %v", first, last)
	}
}

func TestE13Quick(t *testing.T) {
	tables := runExperiment(t, "E13")
	// At each w, runs at tau=0.45 dominate tau=0.2 (static).
	rows := tables[0].Rows
	get := func(tau string, wIdx int) float64 {
		for _, row := range rows {
			if row[0] == tau {
				if wIdx == 0 {
					v, _ := strconv.ParseFloat(row[3], 64)
					return v
				}
				wIdx--
			}
		}
		t.Fatalf("row not found for tau=%s", tau)
		return 0
	}
	if get("0.45", 0) <= get("0.2", 0) {
		t.Fatal("tau=0.45 ring must segregate more than static tau=0.2")
	}
}

func TestE15Quick(t *testing.T) {
	tables := runExperiment(t, "E15")
	rows := tables[0].Rows
	// The plain model (upper = 1) must segregate more than the tight
	// discomfort cap (upper = 0.7): higher mean same fraction.
	first, _ := strconv.ParseFloat(rows[0][3], 64)
	last, _ := strconv.ParseFloat(rows[len(rows)-1][3], 64)
	if first <= last {
		t.Fatalf("discomfort cap failed to limit segregation: %v vs %v", first, last)
	}
}

func TestE16Quick(t *testing.T) {
	tables := runExperiment(t, "E16")
	rows := tables[0].Rows
	// Minority survival shrinks as p grows.
	first, _ := strconv.ParseFloat(rows[0][2], 64)
	last, _ := strconv.ParseFloat(rows[len(rows)-1][2], 64)
	if last >= first {
		t.Fatalf("minority cluster fraction must fall with p: %v -> %v", first, last)
	}
}

func TestE17Quick(t *testing.T) {
	tables := runExperiment(t, "E17")
	rows := tables[0].Rows
	// High noise must leave the configuration more disordered (higher
	// interface density) than the noise-free run.
	first, _ := strconv.ParseFloat(rows[0][1], 64)
	last, _ := strconv.ParseFloat(rows[len(rows)-1][1], 64)
	if last <= first {
		t.Fatalf("noise must raise interface density: %v -> %v", first, last)
	}
}

func TestE14Quick(t *testing.T) {
	tables := runExperiment(t, "E14")
	for _, row := range tables[0].Rows {
		if row[1] == "glauber" {
			// Glauber fixates fully happy below 1/2.
			if row[2] != "1.000" {
				t.Fatalf("glauber not fully happy: %v", row)
			}
		}
		if row[1] == "kawasaki" {
			// Closed system: magnetization drift must be zero.
			if row[5] != "0.000" {
				t.Fatalf("kawasaki drifted: %v", row)
			}
		}
	}
}

// scenarioCol maps a metric name to its "mean <name>" column position
// in the SummaryTable of a topology experiment (which sweeps scenario
// axes, so the scenario columns are present).
func scenarioCol(t *testing.T, tb *report.Table, name string) int {
	t.Helper()
	for i, c := range tb.Columns {
		if c == "mean "+name {
			return i
		}
	}
	t.Fatalf("column %q missing from %v", name, tb.Columns)
	return -1
}

func TestE19Quick(t *testing.T) {
	tables := runExperiment(t, "E19")
	tb := tables[0]
	if len(tb.Rows) != 6 {
		t.Fatalf("E19 rows = %d, want 3 taus x 2 boundaries", len(tb.Rows))
	}
	happy := scenarioCol(t, tb, "happyFrac")
	boundaries := map[string]bool{}
	for _, row := range tb.Rows {
		// Glauber fixation below tau = 1/2 means every agent is happy —
		// on the torus and equally on the clamped open windows.
		if row[happy] != "1" {
			t.Fatalf("E19 row not fully happy at fixation: %v", row)
		}
		boundaries[row[5]] = true
	}
	if !boundaries["torus"] || !boundaries["open"] {
		t.Fatalf("E19 boundaries covered: %v", boundaries)
	}
}

func TestE20Quick(t *testing.T) {
	tables := runExperiment(t, "E20")
	tb := tables[0]
	if len(tb.Rows) != 8 {
		t.Fatalf("E20 rows = %d, want 2 dynamics x 4 rhos", len(tb.Rows))
	}
	happy := scenarioCol(t, tb, "happyFrac")
	events := scenarioCol(t, tb, "events")
	for _, row := range tb.Rows {
		if row[0] == "glauber" && row[happy] != "1" {
			t.Fatalf("E20 glauber row not fully happy at fixation: %v", row)
		}
		if ev, _ := strconv.ParseFloat(row[events], 64); ev < 0 {
			t.Fatalf("E20 negative event count: %v", row)
		}
		h, _ := strconv.ParseFloat(row[happy], 64)
		if !(h > 0 && h <= 1) {
			t.Fatalf("E20 happy fraction out of range: %v", row)
		}
	}
}

func TestE21Quick(t *testing.T) {
	tables := runExperiment(t, "E21")
	tb := tables[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("E21 rows = %d, want 4 taudists", len(tb.Rows))
	}
	happy := scenarioCol(t, tb, "happyFrac")
	dists := map[string]bool{}
	for _, row := range tb.Rows {
		// Every per-site tau lies in [0.3, 0.5], so unhappy agents are
		// always flippable and fixation again means fully happy.
		if row[happy] != "1" {
			t.Fatalf("E21 row not fully happy at fixation: %v", row)
		}
		dists[row[7]] = true
	}
	for _, want := range []string{"global", "mix:0.35,0.45:0.5", "uniform:0.35:0.5"} {
		if !dists[want] {
			t.Fatalf("E21 taudist %q missing from %v", want, dists)
		}
	}
}

func TestE18Quick(t *testing.T) {
	tables := runExperiment(t, "E18")
	// Part 1: every blob row must report tripped=false and fixation.
	for _, row := range tables[0].Rows {
		if row[1] != "false" || row[3] != "true" {
			t.Fatalf("blob must stall and fixate: %v", row)
		}
	}
	// Part 2: usable replicates exist at every rho.
	for _, row := range tables[1].Rows {
		usable, _ := strconv.Atoi(row[1])
		if usable == 0 {
			t.Fatalf("no usable replicates for rho=%s", row[0])
		}
	}
}
