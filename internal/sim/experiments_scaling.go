package sim

import (
	"fmt"
	"math"

	"gridseg/internal/batch"
	"gridseg/internal/grid"
	"gridseg/internal/measure"
	"gridseg/internal/report"
	"gridseg/internal/rng"
	"gridseg/internal/stats"
	"gridseg/internal/theory"
)

func init() {
	register(Experiment{
		ID:     "E5",
		Figure: "Theorem 1 (Figs. 8, 9 construction)",
		Title:  "E[M] grows exponentially in N and shrinks toward tau = 1/2",
		Run:    runE5,
	})
	register(Experiment{
		ID:     "E6",
		Figure: "Theorem 2 (Figs. 14, 15 construction)",
		Title:  "E[M'] in the almost-monochromatic interval (tau2, tau1]",
		Run:    runE6,
	})
}

// meanMCell runs one replicate at the cell's parameters and returns
// the mean monochromatic region size over the probe agents.
func meanMCell(c batch.Cell, src *rng.Source) (float64, error) {
	run, err := glauberRun(c.N, c.W, c.Tau, 0.5, src, c.Engine)
	if err != nil {
		return 0, err
	}
	radii := measure.CenteredRadii(run.Lat)
	var sizes []float64
	for _, pt := range samplePoints(c.N, 5) {
		sizes = append(sizes, float64(measure.MonoRegionSize(run.Lat, radii, pt)))
	}
	return stats.Mean(sizes), nil
}

// runE5 is the Theorem 1 scaling experiment: sweep the neighborhood size
// N = (2w+1)^2 at fixed tauTilde and fit log2 E[M] against N; the
// theorem predicts growth 2^{Theta(N)}, i.e. a positive slope, with
// larger regions for tau farther below 1/2 (a decreasing in tau).
func runE5(ctx *Context) ([]*report.Table, error) {
	ws := pick(ctx, []int{2, 3}, []int{2, 3, 4})
	taus := pick(ctx, []float64{0.45, 0.48}, []float64{0.44, 0.46, 0.48})
	reps := pick(ctx, 3, 8)
	n := pick(ctx, 96, 240)

	res, err := ctx.run("E5", batch.Grid{
		Ns: []int{n}, Ws: ws, Taus: taus, Replicates: reps,
	}, []string{"meanM"}, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		m, err := meanMCell(c, src)
		if err != nil {
			return []float64{math.NaN()}, nil
		}
		return []float64{m}, nil
	})
	if err != nil {
		return nil, err
	}

	scaling := report.NewTable(
		fmt.Sprintf("Theorem 1 scaling: n=%d reps=%d, E[M] vs N", n, reps),
		"tauTilde", "w", "N", "effective tau", "E[M]", "log2 E[M]")
	type fitPoint struct{ nbhd, log2m float64 }
	byTau := map[float64][]fitPoint{}
	for _, g := range res.Groups() {
		nbhd := (2*g.Cell.W + 1) * (2*g.Cell.W + 1)
		thresh := theory.Threshold(g.Cell.Tau, nbhd)
		mean := g.Mean[0]
		scaling.AddRow(report.F(g.Cell.Tau), report.I(g.Cell.W), report.I(nbhd),
			report.F(float64(thresh)/float64(nbhd)), report.F(mean), report.F3(math.Log2(mean)))
		byTau[g.Cell.Tau] = append(byTau[g.Cell.Tau], fitPoint{float64(nbhd), math.Log2(mean)})
		ctx.log("E5: tau=%.2f w=%d E[M]=%.1f", g.Cell.Tau, g.Cell.W, mean)
	}

	slopes := report.NewTable(
		"Theorem 1 exponent fits: slope of log2 E[M] vs N (paper: in [a(tau), b(tau)] asymptotically)",
		"tauTilde", "fit slope", "slope SE", "R2", "a(tau)", "b(tau)")
	for _, tau := range taus {
		var xs, ys []float64
		for _, p := range byTau[tau] {
			xs = append(xs, p.nbhd)
			ys = append(ys, p.log2m)
		}
		fit, err := stats.LinearFit(xs, ys)
		if err != nil {
			return nil, err
		}
		a, b := theory.Exponents(tau)
		slopes.AddRow(report.F(tau), report.F(fit.Slope), report.F(fit.SlopeSE),
			report.F3(fit.R2), report.F(a), report.F(b))
	}
	return []*report.Table{scaling, slopes}, nil
}

// runE6 is the Theorem 2 experiment: in (tau2, tau1] the almost
// monochromatic region M' (minority/majority ratio <= e^{-eps N}) is
// exponential while remaining at least as large as M.
func runE6(ctx *Context) ([]*report.Table, error) {
	ws := pick(ctx, []int{2, 3}, []int{2, 3, 4})
	taus := []float64{0.36, 0.40}
	reps := pick(ctx, 3, 8)
	n := pick(ctx, 96, 240)
	const eps = 0.05

	res, err := ctx.run("E6", batch.Grid{
		Ns: []int{n}, Ws: ws, Taus: taus, Replicates: reps,
	}, []string{"meanMPrime", "meanM"}, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		nbhd := (2*c.W + 1) * (2*c.W + 1)
		beta := math.Exp(-eps * float64(nbhd))
		run, err := glauberRun(c.N, c.W, c.Tau, 0.5, src, c.Engine)
		if err != nil {
			return []float64{math.NaN(), math.NaN()}, nil
		}
		radii := measure.CenteredRadii(run.Lat)
		pre := grid.NewPrefix(run.Lat)
		var mps, ms []float64
		for _, pt := range samplePoints(c.N, 3) {
			ms = append(ms, float64(measure.MonoRegionSize(run.Lat, radii, pt)))
			mps = append(mps, float64(measure.AlmostMonoSize(run.Lat, pre, pt, beta, c.N/3)))
		}
		return []float64{stats.Mean(mps), stats.Mean(ms)}, nil
	})
	if err != nil {
		return nil, err
	}

	t := report.NewTable(
		fmt.Sprintf("Theorem 2: almost monochromatic regions, n=%d reps=%d beta=e^(-%.2f N)", n, reps, eps),
		"tauTilde", "w", "N", "beta", "E[M']", "E[M]", "M' >= M")
	for _, g := range res.Groups() {
		nbhd := (2*g.Cell.W + 1) * (2*g.Cell.W + 1)
		beta := math.Exp(-eps * float64(nbhd))
		mp, m := g.Mean[0], g.Mean[1]
		t.AddRow(report.F(g.Cell.Tau), report.I(g.Cell.W), report.I(nbhd), report.F(beta),
			report.F(mp), report.F(m), fmt.Sprintf("%v", mp >= m))
		ctx.log("E6: tau=%.2f w=%d E[M']=%.1f E[M]=%.1f", g.Cell.Tau, g.Cell.W, mp, m)
	}
	return []*report.Table{t}, nil
}
