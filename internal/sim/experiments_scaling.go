package sim

import (
	"fmt"
	"math"

	"gridseg/internal/grid"
	"gridseg/internal/measure"
	"gridseg/internal/report"
	"gridseg/internal/stats"
	"gridseg/internal/theory"
)

func init() {
	register(Experiment{
		ID:     "E5",
		Figure: "Theorem 1 (Figs. 8, 9 construction)",
		Title:  "E[M] grows exponentially in N and shrinks toward tau = 1/2",
		Run:    runE5,
	})
	register(Experiment{
		ID:     "E6",
		Figure: "Theorem 2 (Figs. 14, 15 construction)",
		Title:  "E[M'] in the almost-monochromatic interval (tau2, tau1]",
		Run:    runE6,
	})
}

// measureMeanM runs one replicate and returns the mean monochromatic
// region size over the probe agents.
func measureMeanM(ctx *Context, n, w int, tau float64, label uint64) (float64, error) {
	src := ctx.src(label)
	run, err := glauberRun(n, w, tau, 0.5, src)
	if err != nil {
		return 0, err
	}
	radii := measure.CenteredRadii(run.Lat)
	var sizes []float64
	for _, pt := range samplePoints(n, 5) {
		sizes = append(sizes, float64(measure.MonoRegionSize(run.Lat, radii, pt)))
	}
	return stats.Mean(sizes), nil
}

// runE5 is the Theorem 1 scaling experiment: sweep the neighborhood size
// N = (2w+1)^2 at fixed tauTilde and fit log2 E[M] against N; the
// theorem predicts growth 2^{Theta(N)}, i.e. a positive slope, with
// larger regions for tau farther below 1/2 (a decreasing in tau).
func runE5(ctx *Context) ([]*report.Table, error) {
	ws := pick(ctx, []int{2, 3}, []int{2, 3, 4})
	taus := pick(ctx, []float64{0.45, 0.48}, []float64{0.44, 0.46, 0.48})
	reps := pick(ctx, 3, 8)
	n := pick(ctx, 96, 240)

	scaling := report.NewTable(
		fmt.Sprintf("Theorem 1 scaling: n=%d reps=%d, E[M] vs N", n, reps),
		"tauTilde", "w", "N", "effective tau", "E[M]", "log2 E[M]")
	slopes := report.NewTable(
		"Theorem 1 exponent fits: slope of log2 E[M] vs N (paper: in [a(tau), b(tau)] asymptotically)",
		"tauTilde", "fit slope", "slope SE", "R2", "a(tau)", "b(tau)")

	for ti, tau := range taus {
		var xs, ys []float64
		for wi, w := range ws {
			nbhd := (2*w + 1) * (2*w + 1)
			thresh := theory.Threshold(tau, nbhd)
			res := parallelMap(ctx, reps, func(r int) float64 {
				m, err := measureMeanM(ctx, n, w, tau, uint64(5000+ti*1000+wi*100+r))
				if err != nil {
					return math.NaN()
				}
				return m
			})
			var ms []float64
			for _, v := range res {
				if !math.IsNaN(v) {
					ms = append(ms, v)
				}
			}
			mean := stats.Mean(ms)
			scaling.AddRow(report.F(tau), report.I(w), report.I(nbhd),
				report.F(float64(thresh)/float64(nbhd)), report.F(mean), report.F3(math.Log2(mean)))
			xs = append(xs, float64(nbhd))
			ys = append(ys, math.Log2(mean))
			ctx.log("E5: tau=%.2f w=%d E[M]=%.1f", tau, w, mean)
		}
		fit, err := stats.LinearFit(xs, ys)
		if err != nil {
			return nil, err
		}
		a, b := theory.Exponents(tau)
		slopes.AddRow(report.F(tau), report.F(fit.Slope), report.F(fit.SlopeSE),
			report.F3(fit.R2), report.F(a), report.F(b))
	}
	return []*report.Table{scaling, slopes}, nil
}

// runE6 is the Theorem 2 experiment: in (tau2, tau1] the almost
// monochromatic region M' (minority/majority ratio <= e^{-eps N}) is
// exponential while remaining at least as large as M.
func runE6(ctx *Context) ([]*report.Table, error) {
	ws := pick(ctx, []int{2, 3}, []int{2, 3, 4})
	taus := []float64{0.36, 0.40}
	reps := pick(ctx, 3, 8)
	n := pick(ctx, 96, 240)
	const eps = 0.05

	t := report.NewTable(
		fmt.Sprintf("Theorem 2: almost monochromatic regions, n=%d reps=%d beta=e^(-%.2f N)", n, reps, eps),
		"tauTilde", "w", "N", "beta", "E[M']", "E[M]", "M' >= M")
	for ti, tau := range taus {
		for wi, w := range ws {
			nbhd := (2*w + 1) * (2*w + 1)
			beta := math.Exp(-eps * float64(nbhd))
			type pair struct{ mp, m float64 }
			res := parallelMap(ctx, reps, func(r int) pair {
				src := ctx.src(uint64(6000 + ti*1000 + wi*100 + r))
				run, err := glauberRun(n, w, tau, 0.5, src)
				if err != nil {
					return pair{math.NaN(), math.NaN()}
				}
				radii := measure.CenteredRadii(run.Lat)
				pre := grid.NewPrefix(run.Lat)
				var mps, ms []float64
				for _, pt := range samplePoints(n, 3) {
					ms = append(ms, float64(measure.MonoRegionSize(run.Lat, radii, pt)))
					mps = append(mps, float64(measure.AlmostMonoSize(run.Lat, pre, pt, beta, n/3)))
				}
				return pair{stats.Mean(mps), stats.Mean(ms)}
			})
			var mps, ms []float64
			for _, v := range res {
				if !math.IsNaN(v.mp) {
					mps = append(mps, v.mp)
					ms = append(ms, v.m)
				}
			}
			mp := stats.Mean(mps)
			m := stats.Mean(ms)
			t.AddRow(report.F(tau), report.I(w), report.I(nbhd), report.F(beta),
				report.F(mp), report.F(m), fmt.Sprintf("%v", mp >= m))
			ctx.log("E6: tau=%.2f w=%d E[M']=%.1f E[M]=%.1f", tau, w, mp, m)
		}
	}
	return []*report.Table{t}, nil
}
