package sim

import (
	"fmt"
	"math"

	"gridseg/internal/core"
	"gridseg/internal/dynamics"
	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/percolation"
	"gridseg/internal/report"
	"gridseg/internal/rng"
	"gridseg/internal/stats"
	"gridseg/internal/theory"
)

func init() {
	register(Experiment{
		ID:     "E10",
		Figure: "Figs. 4, 11 (firewalls, radical regions)",
		Title:  "Triggering configurations, firewall invariance, chemical paths",
		Run:    runE10,
	})
	register(Experiment{
		ID:     "E11",
		Figure: "Figs. 7, 12 (percolation substrates: Thms 3, 4, 5)",
		Title:  "FPP concentration, chemical distance, subcritical radii",
		Run:    runE11,
	})
	register(Experiment{
		ID:     "E12",
		Figure: "Lemma 23 (FKG) and Proposition 1",
		Title:  "Positive association and sub-neighborhood self-similarity",
		Run:    runE12,
	})
}

// runE10 observes the triggering and protection machinery directly.
func runE10(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 60, 120)
	reps := pick(ctx, 4, 12)
	w := 2
	tau := 0.45
	spec := core.Spec{W: w, EpsPrime: theory.FEpsilon(tau) + 0.1, Eps: 0.1, TauTilde: tau}
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	// (a) Radical regions in the initial configuration and their
	// expandability (Lemmas 4-6).
	ra := report.NewTable(
		fmt.Sprintf("Radical regions at t=0: n=%d w=%d tau=%.2f eps'=%.3f reps=%d", n, w, tau, spec.EpsPrime, reps),
		"replicate", "radical centers (minus)", "expandable", "log2 density/site", "Lemma 20 log2 bound")
	bound := theory.PRadicalLog2(tau, spec.N(), spec.EpsPrime, spec.Eps)
	for r := 0; r < reps; r++ {
		src := ctx.src(uint64(1000 + r))
		lat := grid.Random(n, 0.5, src)
		centers := core.FindRadicalRegions(lat, spec, grid.Minus, 1)
		expandable := 0
		for _, c := range centers {
			res, err := core.Expandable(lat, c, spec, grid.Minus)
			if err == nil && res.Expandable {
				expandable++
			}
		}
		density := math.Inf(-1)
		if len(centers) > 0 {
			density = math.Log2(float64(len(centers)) / float64(n*n))
		}
		ra.AddRow(report.I(r), report.I(len(centers)), report.I(expandable),
			report.F(density), report.F(bound))
	}

	// (b) Lemma 9: monochromatic annulus static under adversarial
	// exterior, at a tolerance where the discrete annulus is thick
	// enough (see core tests for the finite-w caveat).
	fw := report.NewTable("Firewall invariance (Lemma 9 check)", "radius", "protected")
	for _, radius := range []float64{10, 14} {
		protected, err := firewallInvariant(ctx, 41, w, 0.40, radius)
		if err != nil {
			return nil, err
		}
		fw.AddRow(report.F(radius), fmt.Sprintf("%v", protected))
	}

	// (c) Chemical paths on the renormalized initial configuration
	// (Lemmas 11-13): good-block fraction, bad clusters, circuit around
	// the center.
	ch := report.NewTable(
		"Renormalized block field at t=0 (m-blocks, Lemma 11 criterion)",
		"replicate", "good frac", "bad/good ratio", "max bad cluster", "circuit found", "circuit len", "path len")
	m := 6
	bn := pick(ctx, 96, 192)
	for r := 0; r < reps; r++ {
		src := ctx.src(uint64(1100 + r))
		lat := grid.Random(bn, 0.5, src)
		bf, err := core.Renormalize(lat, m, w, 0.2)
		if err != nil {
			return nil, err
		}
		centerBlock := geom.Point{X: bf.Side / 2, Y: bf.Side / 2}
		inner, outer := 3, bf.Side/2-1
		cp := bf.FindChemicalPath(centerBlock, inner, outer)
		bad := bf.BadClusters()
		ch.AddRow(report.I(r), report.F3(bf.GoodFraction()), report.F(bf.BadRatio()),
			report.I(bad.MaxSize), fmt.Sprintf("%v", cp.OK), report.I(cp.CircuitLen), report.I(cp.PathLen))
	}
	return []*report.Table{ra, fw, ch}, nil
}

// firewallInvariant builds a monochromatic annulus plus interior on a
// random background, floods the exterior with the opposite type, runs to
// fixation, and reports whether annulus and interior survived.
func firewallInvariant(ctx *Context, n, w int, tau, radius float64) (bool, error) {
	lat := grid.Random(n, 0.5, ctx.src(1200))
	u := geom.Point{X: n / 2, Y: n / 2}
	f := core.Firewall{Center: u, R: radius, W: w}
	tor := lat.Torus()
	for _, p := range f.Sites(tor) {
		lat.Set(p, grid.Plus)
	}
	for _, p := range f.InteriorSites(tor) {
		lat.Set(p, grid.Plus)
	}
	proc, err := dynamics.New(lat, w, tau, ctx.src(1201))
	if err != nil {
		return false, err
	}
	protected := map[geom.Point]bool{}
	for _, p := range f.Sites(tor) {
		protected[p] = true
	}
	for _, p := range f.InteriorSites(tor) {
		protected[p] = true
	}
	for i := 0; i < lat.Sites(); i++ {
		p := tor.At(i)
		if !protected[p] && lat.SpinAt(i) == grid.Plus {
			proc.ForceFlip(i)
		}
	}
	proc.Run(0)
	for p := range protected {
		if lat.Spin(p) != grid.Plus {
			return false, nil
		}
	}
	return true, nil
}

// runE11 exercises the three cited percolation theorems' shapes.
func runE11(ctx *Context) ([]*report.Table, error) {
	// (a) Kesten / Theorem 3: passage times grow linearly with k and
	// concentrate.
	ks := pick(ctx, []int{8, 16, 32}, []int{10, 20, 40, 80})
	fppReps := pick(ctx, 12, 30)
	fpp := report.NewTable("FPP with Exp(1) site weights (Kesten Thm 3 shape)",
		"k", "E[T_k]", "E[T_k]/k", "std", "std/sqrt(k)")
	for ki, k := range ks {
		res := parallelMap(ctx, fppReps, func(r int) float64 {
			src := ctx.src(uint64(1300 + ki*100 + r))
			f, err := percolation.NewFPP(k+11, 21, 1, src)
			if err != nil {
				return math.NaN()
			}
			v, err := f.PassageTime(percolation.Point{X: 5, Y: 10}, percolation.Point{X: 5 + k, Y: 10})
			if err != nil {
				return math.NaN()
			}
			return v
		})
		var ts []float64
		for _, v := range res {
			if !math.IsNaN(v) {
				ts = append(ts, v)
			}
		}
		s, err := stats.Summarize(ts)
		if err != nil {
			return nil, err
		}
		fpp.AddRow(report.I(k), report.F(s.Mean), report.F3(s.Mean/float64(k)),
			report.F3(s.Std), report.F3(s.Std/math.Sqrt(float64(k))))
	}

	// (b) Garet-Marchand / Theorem 4: chemical distance over l1 tends
	// to a constant close to 1 as p -> 1.
	chem := report.NewTable("Chemical distance D(0,x)/||x||_1 (Garet-Marchand Thm 4 shape)",
		"p", "connected frac", "mean D/l1", "p90 D/l1")
	dist := pick(ctx, 30, 60)
	chemReps := pick(ctx, 15, 40)
	for pi, p := range []float64{0.65, 0.75, 0.85, 0.95} {
		res := parallelMap(ctx, chemReps, func(r int) float64 {
			src := ctx.src(uint64(1400 + pi*100 + r))
			f := percolation.NewField(dist+11, dist/2*2+11, p, src)
			a := percolation.Point{X: 5, Y: f.H() / 2}
			b := percolation.Point{X: 5 + dist, Y: f.H() / 2}
			d, ok := f.ChemicalDistance(a, b)
			if !ok {
				return math.NaN()
			}
			return float64(d) / float64(dist)
		})
		var ratios []float64
		for _, v := range res {
			if !math.IsNaN(v) {
				ratios = append(ratios, v)
			}
		}
		if len(ratios) == 0 {
			chem.AddRow(report.F(p), "0", "-", "-")
			continue
		}
		chem.AddRow(report.F(p), report.F3(float64(len(ratios))/float64(chemReps)),
			report.F3(stats.Mean(ratios)), report.F3(stats.Quantile(ratios, 0.9)))
	}

	// (c) Grimmett / Theorem 5: subcritical origin-cluster radii decay
	// exponentially; the rate falls as p approaches p_c from below.
	tail := report.NewTable("Subcritical cluster radius tail (Grimmett Thm 5 shape)",
		"p", "open origins", "mean radius", "fitted decay rate")
	radReps := pick(ctx, 200, 600)
	box := pick(ctx, 41, 61)
	for pi, p := range []float64{0.30, 0.45, 0.55} {
		res := parallelMap(ctx, radReps, func(r int) float64 {
			src := ctx.src(uint64(1500 + pi*1000 + r))
			f := percolation.NewField(box, box, p, src)
			_, radius := f.ClusterOf(f.Center())
			if radius < 0 {
				return math.NaN()
			}
			return float64(radius)
		})
		var radii []float64
		for _, v := range res {
			if !math.IsNaN(v) {
				radii = append(radii, v)
			}
		}
		rate, _, err := stats.ExpDecayRate(radii)
		if err != nil {
			rate = math.NaN()
		}
		tail.AddRow(report.F(p), report.I(len(radii)), report.F3(stats.Mean(radii)), report.F3(rate))
	}
	return []*report.Table{fpp, chem, tail}, nil
}

// runE12 checks (a) the FKG/Harris inequality empirically on static and
// dynamic increasing events, and (b) the Proposition 1 concentration of
// sub-neighborhood counts.
func runE12(ctx *Context) ([]*report.Table, error) {
	trials := pick(ctx, 4000, 20000)

	fkg := report.NewTable("FKG / Harris positive association (Lemma 23)",
		"events", "P(A)", "P(B)", "P(A and B)", "P(A)P(B)", "satisfied")
	addEst := func(name string, est percolation.FKGEstimate) {
		fkg.AddRow(name, report.F3(est.PA), report.F3(est.PB), report.F3(est.PAB),
			report.F3(est.PA*est.PB), fmt.Sprintf("%v", est.Satisfied(3)))
	}

	// Static: increasing events on the initial Bernoulli field.
	addEst("plus-rich halves (t=0)", percolation.EstimateFKG(trials, func(src *rng.Source) (bool, bool) {
		lat := grid.Random(12, 0.5, src)
		pre := grid.NewPrefix(lat)
		left := pre.PlusInRect(0, 0, 6, 12)
		total := lat.CountPlus()
		return left >= 38, total >= 74
	}, ctx.src(1600)))

	// Dynamic: increasing events on the fixation state (Lemma 23's
	// dynamic extension): more initial pluses can only push both up.
	dynTrials := pick(ctx, 300, 1500)
	addEst("fixation events (dynamic)", percolation.EstimateFKG(dynTrials, func(src *rng.Source) (bool, bool) {
		run, err := glauberRun(24, 1, 0.5, 0.5, src)
		if err != nil {
			return false, false
		}
		plusFrac := float64(run.Lat.CountPlus()) / float64(run.Lat.Sites())
		centerPlus := run.Lat.Spin(geom.Point{X: 12, Y: 12}) == grid.Plus
		return plusFrac >= 0.5, centerPlus
	}, ctx.src(1601)))

	// Proposition 1: conditioned on W < tau N over a radius-(1+eps')w
	// neighborhood, the centered sub-neighborhood count W' concentrates
	// on gamma tau N within c N^{1/2+eps}.
	prop := report.NewTable("Proposition 1 concentration (c=1.5, eps=0.1)",
		"w", "N", "conditioned samples", "frac within bound")
	propTrials := pick(ctx, 3000, 15000)
	for _, w := range []int{3, 5, 7} {
		outer := int(math.Round(1.3 * float64(w)))
		nOuter := (2*outer + 1) * (2*outer + 1)
		nbhd := (2*w + 1) * (2*w + 1)
		tau := 0.45
		bound := 1.5 * math.Pow(float64(nbhd), 0.6)
		gamma := float64(nbhd) / float64(nOuter)
		src := ctx.src(uint64(1700 + w))
		cond, within := 0, 0
		for trial := 0; trial < propTrials; trial++ {
			s := src.Split(uint64(trial))
			// Draw the outer neighborhood; count minus agents overall
			// and in the centered w-sub-neighborhood.
			lat := grid.Random(2*outer+1, 0.5, s)
			pre := grid.NewPrefix(lat)
			c := geom.Point{X: outer, Y: outer}
			minusOuter := nOuter - pre.PlusInSquare(c, outer)
			if float64(minusOuter) >= tau*float64(nOuter) {
				continue // condition W < tau N fails
			}
			cond++
			minusInner := nbhd - pre.PlusInSquare(c, w)
			// Proposition 1 centers W' on gamma * W; with W < tau N
			// the paper states the rescaled target gamma tau N.
			target := gamma * float64(minusOuter)
			if math.Abs(float64(minusInner)-target) < bound {
				within++
			}
		}
		frac := 0.0
		if cond > 0 {
			frac = float64(within) / float64(cond)
		}
		prop.AddRow(report.I(w), report.I(nbhd), report.I(cond), report.F3(frac))
	}
	return []*report.Table{fkg, prop}, nil
}
