package sim

import (
	"fmt"
	"math"

	"gridseg/internal/batch"
	"gridseg/internal/core"
	"gridseg/internal/dynamics"
	"gridseg/internal/geom"
	"gridseg/internal/grid"
	"gridseg/internal/percolation"
	"gridseg/internal/report"
	"gridseg/internal/rng"
	"gridseg/internal/stats"
	"gridseg/internal/theory"
)

func init() {
	register(Experiment{
		ID:     "E10",
		Figure: "Figs. 4, 11 (firewalls, radical regions)",
		Title:  "Triggering configurations, firewall invariance, chemical paths",
		Run:    runE10,
	})
	register(Experiment{
		ID:     "E11",
		Figure: "Figs. 7, 12 (percolation substrates: Thms 3, 4, 5)",
		Title:  "FPP concentration, chemical distance, subcritical radii",
		Run:    runE11,
	})
	register(Experiment{
		ID:     "E12",
		Figure: "Lemma 23 (FKG) and Proposition 1",
		Title:  "Positive association and sub-neighborhood self-similarity",
		Run:    runE12,
	})
}

// runE10 observes the triggering and protection machinery directly.
func runE10(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 60, 120)
	reps := pick(ctx, 4, 12)
	w := 2
	tau := 0.45
	spec := core.Spec{W: w, EpsPrime: theory.FEpsilon(tau) + 0.1, Eps: 0.1, TauTilde: tau}
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	// (a) Radical regions in the initial configuration and their
	// expandability (Lemmas 4-6).
	bound := theory.PRadicalLog2(tau, spec.N(), spec.EpsPrime, spec.Eps)
	ares, err := ctx.run("E10-radical", batch.Grid{
		Ns: []int{n}, Ws: []int{w}, Taus: []float64{tau}, Replicates: reps,
	}, []string{"centers", "expandable", "log2Density"}, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		lat := grid.Random(c.N, 0.5, src)
		centers := core.FindRadicalRegions(lat, spec, grid.Minus, 1)
		expandable := 0
		for _, ctr := range centers {
			res, err := core.Expandable(lat, ctr, spec, grid.Minus)
			if err == nil && res.Expandable {
				expandable++
			}
		}
		density := math.Inf(-1)
		if len(centers) > 0 {
			density = math.Log2(float64(len(centers)) / float64(c.N*c.N))
		}
		return []float64{float64(len(centers)), float64(expandable), density}, nil
	})
	if err != nil {
		return nil, err
	}
	ra := report.NewTable(
		fmt.Sprintf("Radical regions at t=0: n=%d w=%d tau=%.2f eps'=%.3f reps=%d", n, w, tau, spec.EpsPrime, reps),
		"replicate", "radical centers (minus)", "expandable", "log2 density/site", "Lemma 20 log2 bound")
	for i := 0; i < ares.Len(); i++ {
		c, v := ares.At(i)
		ra.AddRow(report.I(c.Rep), report.I(int(v[0])), report.I(int(v[1])),
			report.F(v[2]), report.F(bound))
	}

	// (b) Lemma 9: monochromatic annulus static under adversarial
	// exterior, at a tolerance where the discrete annulus is thick
	// enough (see core tests for the finite-w caveat).
	fres, err := ctx.run("E10-firewall", batch.Grid{
		Ns: []int{41}, Ws: []int{w}, Taus: []float64{0.40},
		Extras: []float64{10, 14}, ExtraName: "radius",
	}, []string{"protected"}, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		protected, err := firewallInvariant(c.N, c.W, c.Tau, c.Extra, src)
		if err != nil {
			return nil, err
		}
		if protected {
			return []float64{1}, nil
		}
		return []float64{0}, nil
	})
	if err != nil {
		return nil, err
	}
	fw := report.NewTable("Firewall invariance (Lemma 9 check)", "radius", "protected")
	for i := 0; i < fres.Len(); i++ {
		c, v := fres.At(i)
		fw.AddRow(report.F(c.Extra), fmt.Sprintf("%v", v[0] == 1))
	}

	// (c) Chemical paths on the renormalized initial configuration
	// (Lemmas 11-13): good-block fraction, bad clusters, circuit around
	// the center.
	m := 6
	bn := pick(ctx, 96, 192)
	cres, err := ctx.run("E10-blocks", batch.Grid{
		Ns: []int{bn}, Ws: []int{w}, Replicates: reps,
	}, []string{"goodFrac", "badRatio", "maxBad", "circuit", "circuitLen", "pathLen"},
		func(c batch.Cell, src *rng.Source) ([]float64, error) {
			lat := grid.Random(c.N, 0.5, src)
			bf, err := core.Renormalize(lat, m, c.W, 0.2)
			if err != nil {
				return nil, err
			}
			centerBlock := geom.Point{X: bf.Side / 2, Y: bf.Side / 2}
			inner, outer := 3, bf.Side/2-1
			cp := bf.FindChemicalPath(centerBlock, inner, outer)
			bad := bf.BadClusters()
			circuit := 0.0
			if cp.OK {
				circuit = 1
			}
			return []float64{bf.GoodFraction(), bf.BadRatio(), float64(bad.MaxSize),
				circuit, float64(cp.CircuitLen), float64(cp.PathLen)}, nil
		})
	if err != nil {
		return nil, err
	}
	ch := report.NewTable(
		"Renormalized block field at t=0 (m-blocks, Lemma 11 criterion)",
		"replicate", "good frac", "bad/good ratio", "max bad cluster", "circuit found", "circuit len", "path len")
	for i := 0; i < cres.Len(); i++ {
		c, v := cres.At(i)
		ch.AddRow(report.I(c.Rep), report.F3(v[0]), report.F(v[1]),
			report.I(int(v[2])), fmt.Sprintf("%v", v[3] == 1), report.I(int(v[4])), report.I(int(v[5])))
	}
	return []*report.Table{ra, fw, ch}, nil
}

// firewallInvariant builds a monochromatic annulus plus interior on a
// random background, floods the exterior with the opposite type, runs to
// fixation, and reports whether annulus and interior survived.
func firewallInvariant(n, w int, tau, radius float64, src *rng.Source) (bool, error) {
	lat := grid.Random(n, 0.5, src.Split(1))
	u := geom.Point{X: n / 2, Y: n / 2}
	f := core.Firewall{Center: u, R: radius, W: w}
	tor := lat.Torus()
	for _, p := range f.Sites(tor) {
		lat.Set(p, grid.Plus)
	}
	for _, p := range f.InteriorSites(tor) {
		lat.Set(p, grid.Plus)
	}
	proc, err := dynamics.New(lat, w, tau, src.Split(2))
	if err != nil {
		return false, err
	}
	protected := map[geom.Point]bool{}
	for _, p := range f.Sites(tor) {
		protected[p] = true
	}
	for _, p := range f.InteriorSites(tor) {
		protected[p] = true
	}
	for i := 0; i < lat.Sites(); i++ {
		p := tor.At(i)
		if !protected[p] && lat.SpinAt(i) == grid.Plus {
			proc.ForceFlip(i)
		}
	}
	proc.Run(0)
	for p := range protected {
		if lat.Spin(p) != grid.Plus {
			return false, nil
		}
	}
	return true, nil
}

// runE11 exercises the three cited percolation theorems' shapes.
func runE11(ctx *Context) ([]*report.Table, error) {
	// (a) Kesten / Theorem 3: passage times grow linearly with k and
	// concentrate.
	ks := pick(ctx, []float64{8, 16, 32}, []float64{10, 20, 40, 80})
	fppReps := pick(ctx, 12, 30)
	fres, err := ctx.run("E11-fpp", batch.Grid{
		Extras: ks, ExtraName: "k", Replicates: fppReps,
	}, []string{"T"}, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		k := int(c.Extra)
		f, err := percolation.NewFPP(k+11, 21, 1, src)
		if err != nil {
			return []float64{math.NaN()}, nil
		}
		v, err := f.PassageTime(percolation.Point{X: 5, Y: 10}, percolation.Point{X: 5 + k, Y: 10})
		if err != nil {
			return []float64{math.NaN()}, nil
		}
		return []float64{v}, nil
	})
	if err != nil {
		return nil, err
	}
	fpp := report.NewTable("FPP with Exp(1) site weights (Kesten Thm 3 shape)",
		"k", "E[T_k]", "E[T_k]/k", "std", "std/sqrt(k)")
	for _, g := range fres.Groups() {
		k := g.Cell.Extra
		fpp.AddRow(report.I(int(k)), report.F(g.Mean[0]), report.F3(g.Mean[0]/k),
			report.F3(g.Std[0]), report.F3(g.Std[0]/math.Sqrt(k)))
	}

	// (b) Garet-Marchand / Theorem 4: chemical distance over l1 tends
	// to a constant close to 1 as p -> 1.
	dist := pick(ctx, 30, 60)
	chemReps := pick(ctx, 15, 40)
	cres, err := ctx.run("E11-chem", batch.Grid{
		Ps: []float64{0.65, 0.75, 0.85, 0.95}, Replicates: chemReps,
	}, []string{"ratio"}, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		f := percolation.NewField(dist+11, dist/2*2+11, c.P, src)
		a := percolation.Point{X: 5, Y: f.H() / 2}
		b := percolation.Point{X: 5 + dist, Y: f.H() / 2}
		d, ok := f.ChemicalDistance(a, b)
		if !ok {
			return []float64{math.NaN()}, nil
		}
		return []float64{float64(d) / float64(dist)}, nil
	})
	if err != nil {
		return nil, err
	}
	chem := report.NewTable("Chemical distance D(0,x)/||x||_1 (Garet-Marchand Thm 4 shape)",
		"p", "connected frac", "mean D/l1", "p90 D/l1")
	for _, g := range cres.Groups() {
		ratios := g.Column("ratio", cres.Columns)
		if len(ratios) == 0 {
			chem.AddRow(report.F(g.Cell.P), "0", "-", "-")
			continue
		}
		chem.AddRow(report.F(g.Cell.P), report.F3(float64(len(ratios))/float64(chemReps)),
			report.F3(stats.Mean(ratios)), report.F3(stats.Quantile(ratios, 0.9)))
	}

	// (c) Grimmett / Theorem 5: subcritical origin-cluster radii decay
	// exponentially; the rate falls as p approaches p_c from below.
	radReps := pick(ctx, 200, 600)
	box := pick(ctx, 41, 61)
	rres, err := ctx.run("E11-radius", batch.Grid{
		Ps: []float64{0.30, 0.45, 0.55}, Replicates: radReps,
	}, []string{"radius"}, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		f := percolation.NewField(box, box, c.P, src)
		_, radius := f.ClusterOf(f.Center())
		if radius < 0 {
			return []float64{math.NaN()}, nil
		}
		return []float64{float64(radius)}, nil
	})
	if err != nil {
		return nil, err
	}
	tail := report.NewTable("Subcritical cluster radius tail (Grimmett Thm 5 shape)",
		"p", "open origins", "mean radius", "fitted decay rate")
	for _, g := range rres.Groups() {
		radii := g.Column("radius", rres.Columns)
		rate, _, err := stats.ExpDecayRate(radii)
		if err != nil {
			rate = math.NaN()
		}
		tail.AddRow(report.F(g.Cell.P), report.I(len(radii)), report.F3(stats.Mean(radii)), report.F3(rate))
	}
	return []*report.Table{fpp, chem, tail}, nil
}

// runE12 checks (a) the FKG/Harris inequality empirically on static and
// dynamic increasing events, and (b) the Proposition 1 concentration of
// sub-neighborhood counts. The FKG estimators are sequential Monte
// Carlo by construction (one stream per estimate); the Proposition 1
// sweep over w runs as a three-cell batch grid.
func runE12(ctx *Context) ([]*report.Table, error) {
	trials := pick(ctx, 4000, 20000)

	fkg := report.NewTable("FKG / Harris positive association (Lemma 23)",
		"events", "P(A)", "P(B)", "P(A and B)", "P(A)P(B)", "satisfied")
	addEst := func(name string, est percolation.FKGEstimate) {
		fkg.AddRow(name, report.F3(est.PA), report.F3(est.PB), report.F3(est.PAB),
			report.F3(est.PA*est.PB), fmt.Sprintf("%v", est.Satisfied(3)))
	}

	// Static: increasing events on the initial Bernoulli field.
	addEst("plus-rich halves (t=0)", percolation.EstimateFKG(trials, func(src *rng.Source) (bool, bool) {
		lat := grid.Random(12, 0.5, src)
		pre := grid.NewPrefix(lat)
		left := pre.PlusInRect(0, 0, 6, 12)
		total := lat.CountPlus()
		return left >= 38, total >= 74
	}, ctx.src(1600)))

	// Dynamic: increasing events on the fixation state (Lemma 23's
	// dynamic extension): more initial pluses can only push both up.
	dynTrials := pick(ctx, 300, 1500)
	addEst("fixation events (dynamic)", percolation.EstimateFKG(dynTrials, func(src *rng.Source) (bool, bool) {
		run, err := glauberRun(24, 1, 0.5, 0.5, src, ctx.Engine)
		if err != nil {
			return false, false
		}
		plusFrac := float64(run.Lat.CountPlus()) / float64(run.Lat.Sites())
		centerPlus := run.Lat.Spin(geom.Point{X: 12, Y: 12}) == grid.Plus
		return plusFrac >= 0.5, centerPlus
	}, ctx.src(1601)))

	// Proposition 1: conditioned on W < tau N over a radius-(1+eps')w
	// neighborhood, the centered sub-neighborhood count W' concentrates
	// on gamma tau N within c N^{1/2+eps}.
	propTrials := pick(ctx, 3000, 15000)
	pres, err := ctx.run("E12-prop1", batch.Grid{
		Ws: []int{3, 5, 7}, Taus: []float64{0.45},
	}, []string{"conditioned", "fracWithin"}, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		outer := int(math.Round(1.3 * float64(c.W)))
		nOuter := (2*outer + 1) * (2*outer + 1)
		nbhd := (2*c.W + 1) * (2*c.W + 1)
		bound := 1.5 * math.Pow(float64(nbhd), 0.6)
		gamma := float64(nbhd) / float64(nOuter)
		cond, within := 0, 0
		for trial := 0; trial < propTrials; trial++ {
			s := src.Split(uint64(trial))
			// Draw the outer neighborhood; count minus agents overall
			// and in the centered w-sub-neighborhood.
			lat := grid.Random(2*outer+1, 0.5, s)
			pre := grid.NewPrefix(lat)
			ctr := geom.Point{X: outer, Y: outer}
			// Radii are bounded by the drawn lattice side, so the count
			// queries cannot fail.
			plusOuter, _ := pre.PlusInSquare(ctr, outer)
			minusOuter := nOuter - plusOuter
			if float64(minusOuter) >= c.Tau*float64(nOuter) {
				continue // condition W < tau N fails
			}
			cond++
			plusInner, _ := pre.PlusInSquare(ctr, c.W)
			minusInner := nbhd - plusInner
			// Proposition 1 centers W' on gamma * W; with W < tau N
			// the paper states the rescaled target gamma tau N.
			target := gamma * float64(minusOuter)
			if math.Abs(float64(minusInner)-target) < bound {
				within++
			}
		}
		frac := 0.0
		if cond > 0 {
			frac = float64(within) / float64(cond)
		}
		return []float64{float64(cond), frac}, nil
	})
	if err != nil {
		return nil, err
	}
	prop := report.NewTable("Proposition 1 concentration (c=1.5, eps=0.1)",
		"w", "N", "conditioned samples", "frac within bound")
	for i := 0; i < pres.Len(); i++ {
		c, v := pres.At(i)
		prop.AddRow(report.I(c.W), report.I((2*c.W+1)*(2*c.W+1)), report.I(int(v[0])), report.F3(v[1]))
	}
	return []*report.Table{fkg, prop}, nil
}
