package sim

import (
	"fmt"

	"gridseg/internal/batch"
	"gridseg/internal/dynamics"
	"gridseg/internal/grid"
	"gridseg/internal/measure"
	"gridseg/internal/report"
	"gridseg/internal/rng"
	"gridseg/internal/topology"
)

// E19-E21 exercise the topology subsystem: the scenario axes (open
// boundaries, vacancies, heterogeneous intolerance) that generalize
// the paper's torus/full-occupancy/global-tau setting toward the
// related work — Barmpalias, Elwes and Lewis-Pye's unperturbed
// Schelling segregation on open grids, and Stauffer and Solomon's
// vacancy-diluted, per-agent-tolerance lattices.
func init() {
	register(Experiment{
		ID:     "E19",
		Figure: "Topology: open vs torus boundary (BEL-P setting)",
		Title:  "Hard walls against the Fig. 1 workload: edge effects on segregation",
		Run:    runE19,
	})
	register(Experiment{
		ID:     "E20",
		Figure: "Topology: vacancy dilution (Stauffer-Solomon)",
		Title:  "Vacancy sweep under flip and relocation dynamics",
		Run:    runE20,
	})
	register(Experiment{
		ID:     "E21",
		Figure: "Topology: heterogeneous intolerance (quenched tau)",
		Title:  "Per-site intolerance mixtures across the critical window",
		Run:    runE21,
	})
}

// scenarioColumns is the shared metric vector of the topology
// experiments: scenario-aware observables plus the effective-event
// count.
var scenarioColumns = []string{"happyFrac", "ifaceDensity", "sameFrac", "largestFrac", "events"}

// runScenarioCell runs one scenario cell to fixation (or the attempt
// budget for the pair dynamics) and measures the scenario-aware
// observables. Every dynamic honors the context's engine selection on
// every scenario — the fast engine covers all axes and all three
// dynamics. Engines are bit-identical, so previously cached cells
// stay valid.
func runScenarioCell(c batch.Cell, src *rng.Source, engineLabel string) ([]float64, error) {
	open := c.Boundary == batch.BoundaryOpen
	dist, err := topology.ParseTauDist(c.TauDist)
	if err != nil {
		return nil, err
	}
	lat := grid.RandomScenario(c.N, c.P, c.Rho, src.Split(1))
	taus := dist.SampleField(lat.Sites(), c.Tau, src.Split(3))
	dsc := dynamics.Scenario{Open: open, Taus: taus}

	var (
		events  int64
		unhappy int
	)
	budget := int64(20) * int64(lat.Sites())
	streak := int64(lat.Sites())
	switch c.Dynamic {
	case batch.Move:
		mv, err := newMoveEngine(lat, c.W, c.Tau, dsc, src.Split(2), engineLabel)
		if err != nil {
			return nil, err
		}
		events, _ = mv.Run(budget, streak)
		unhappy = mv.Engine().UnhappyCount()
	case batch.Kawasaki:
		k, err := newSwapEngine(lat, c.W, c.Tau, dsc, src.Split(2), engineLabel)
		if err != nil {
			return nil, err
		}
		events, _ = k.Run(budget, streak)
		unhappy = k.Engine().UnhappyCount()
	default:
		proc, err := newScenarioEngine(lat, c.W, c.Tau, dsc, src.Split(2), engineLabel)
		if err != nil {
			return nil, err
		}
		events, _ = proc.Run(0)
		unhappy = proc.UnhappyCount()
	}

	cl := measure.ClusterStatsScenario(lat, open)
	largest := cl.LargestPlus
	if cl.LargestMinus > largest {
		largest = cl.LargestMinus
	}
	agents := lat.CountOccupied()
	if agents == 0 {
		// A degenerate all-vacant draw (possible at tiny n and high
		// rho) is vacuously fully happy with nothing to measure —
		// mirroring the facade's HappyFraction guard, so one freak
		// replicate cannot abort a whole sweep.
		return []float64{1, 0, 0, 0, float64(events)}, nil
	}
	return []float64{
		1 - float64(unhappy)/float64(agents),
		measure.InterfaceDensityScenario(lat, open),
		measure.MeanSameFractionScenario(lat, c.W, open),
		float64(largest) / float64(lat.Sites()),
		float64(events),
	}, nil
}

// runE19 compares the torus against the open (hard-wall) grid at the
// Figure 1 working point. Open boundaries give edge agents truncated
// windows and lower thresholds, which seeds segregation from the
// walls; the interface density and mono-cluster mass quantify the
// difference.
func runE19(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 48, 256)
	w := pick(ctx, 4, 10)
	reps := pick(ctx, 2, 8)
	res, err := ctx.run("E19", batch.Grid{
		Ns: []int{n}, Ws: []int{w},
		Taus:       []float64{0.40, 0.42, 0.44},
		Boundaries: []string{batch.BoundaryTorus, batch.BoundaryOpen},
		Replicates: reps,
	}, scenarioColumns, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		return runScenarioCell(c, src, ctx.Engine)
	})
	if err != nil {
		return nil, err
	}
	return []*report.Table{res.SummaryTable(fmt.Sprintf(
		"E19: open vs torus boundary at n=%d w=%d (replicate means)", n, w))}, nil
}

// runE20 sweeps the vacancy fraction rho under the flip (Glauber) and
// relocation (Move) dynamics. Vacancies dilute neighborhoods and give
// unhappy agents an escape channel; the conserved Move dynamic trades
// flips for migrations, changing how much segregation fixates.
func runE20(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 40, 128)
	w := 2
	reps := pick(ctx, 2, 8)
	res, err := ctx.run("E20", batch.Grid{
		Ns: []int{n}, Ws: []int{w},
		Taus:       []float64{0.42},
		Dynamics:   []string{batch.Glauber, batch.Move},
		Rhos:       []float64{0.05, 0.1, 0.2, 0.3},
		Replicates: reps,
	}, scenarioColumns, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		return runScenarioCell(c, src, ctx.Engine)
	})
	if err != nil {
		return nil, err
	}
	return []*report.Table{res.SummaryTable(fmt.Sprintf(
		"E20: vacancy sweep at n=%d w=%d tau=0.42 (replicate means)", n, w))}, nil
}

// runE21 scans per-site intolerance mixtures bracketing the critical
// window: a fifty-fifty mix of tolerant and intolerant sites against
// the equivalent global tau, plus a uniform spread. Quenched disorder
// localizes segregation around the intolerant sites instead of
// shifting the whole lattice at once.
func runE21(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 40, 128)
	w := 2
	reps := pick(ctx, 2, 8)
	res, err := ctx.run("E21", batch.Grid{
		Ns: []int{n}, Ws: []int{w},
		Taus: []float64{0.42},
		TauDists: []string{
			batch.TauDistGlobal,
			"mix:0.35,0.45:0.5",
			"mix:0.3,0.5:0.5",
			"uniform:0.35:0.5",
		},
		Replicates: reps,
	}, scenarioColumns, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		return runScenarioCell(c, src, ctx.Engine)
	})
	if err != nil {
		return nil, err
	}
	return []*report.Table{res.SummaryTable(fmt.Sprintf(
		"E21: heterogeneous intolerance at n=%d w=%d (replicate means)", n, w))}, nil
}
