package sim

import (
	"testing"

	"gridseg/internal/rng"
)

func TestSamplePoints(t *testing.T) {
	pts := samplePoints(100, 5)
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	seen := map[[2]int]bool{}
	for _, p := range pts {
		if p.X < 0 || p.X >= 100 || p.Y < 0 || p.Y >= 100 {
			t.Fatalf("point %v out of range", p)
		}
		seen[[2]int{p.X, p.Y}] = true
	}
	if len(seen) < 4 {
		t.Fatalf("probe points insufficiently spread: %v", pts)
	}
	// Deterministic.
	again := samplePoints(100, 5)
	for i := range pts {
		if pts[i] != again[i] {
			t.Fatal("samplePoints must be deterministic")
		}
	}
}

func TestClassifyHelper(t *testing.T) {
	if classify(0.45) != "monochromatic" {
		t.Fatalf("classify(0.45) = %s", classify(0.45))
	}
	if classify(0.1) != "static" {
		t.Fatalf("classify(0.1) = %s", classify(0.1))
	}
}

func TestPick(t *testing.T) {
	quick := &Context{Quick: true}
	full := &Context{}
	if pick(quick, 1, 2) != 1 || pick(full, 1, 2) != 2 {
		t.Fatal("pick broken")
	}
	if pick(quick, "a", "b") != "a" {
		t.Fatal("pick generic instantiation broken")
	}
}

func TestGlauberRunHelper(t *testing.T) {
	src := rng.New(3)
	res, err := glauberRun(24, 2, 0.45, 0.5, src, "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proc.Fixated() {
		t.Fatal("helper must run to fixation")
	}
	if res.Flips != res.Proc.Flips() {
		t.Fatal("flip accounting mismatch")
	}
	if res.Lat != res.Proc.Lattice() {
		t.Fatal("lattice identity mismatch")
	}
	if _, err := glauberRun(9, 20, 0.45, 0.5, src, ""); err == nil {
		t.Fatal("want error for oversized horizon")
	}
}

func TestContextDefaults(t *testing.T) {
	ctx := &Context{}
	// src must be deterministic per id.
	a := ctx.src(7).Uint64()
	b := ctx.src(7).Uint64()
	if a != b {
		t.Fatal("src must be deterministic")
	}
	// log without a logger must not panic.
	ctx.log("nothing %d", 1)
	called := false
	ctx.Logf = func(string, ...interface{}) { called = true }
	ctx.log("hello")
	if !called {
		t.Fatal("log must forward to Logf")
	}
}
