package sim

import (
	"fmt"
	"math"

	"gridseg/internal/batch"
	"gridseg/internal/dynamics"
	"gridseg/internal/grid"
	"gridseg/internal/measure"
	"gridseg/internal/report"
	"gridseg/internal/ring"
	"gridseg/internal/rng"
)

func init() {
	register(Experiment{
		ID:     "E13",
		Figure: "1-D baselines (Sec. I.B)",
		Title:  "Ring Glauber/Kawasaki run lengths vs horizon",
		Run:    runE13,
	})
	register(Experiment{
		ID:     "E14",
		Figure: "Glauber vs Kawasaki model classes (Sec. I.A)",
		Title:  "Open vs closed dynamics from a common initial configuration",
		Run:    runE14,
	})
}

// runE13 reproduces the 1-D picture the paper builds on: at tau inside
// (~0.35, 1/2) mean run lengths at fixation grow quickly with the
// horizon, while at tau = 1/2 the growth is polynomial (Brandt et al.)
// and in the static regime nothing moves.
func runE13(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 2000, 20000)
	ws := pick(ctx, []int{2, 4, 6}, []int{2, 4, 6, 8, 12})
	reps := pick(ctx, 3, 8)
	taus := []float64{0.2, 0.45, 0.5}

	res, err := ctx.run("E13", batch.Grid{
		Ns: []int{n}, Ws: ws, Taus: taus, Replicates: reps,
	}, []string{"meanRun", "longestRun", "flipsPerSite"}, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		p, err := ring.NewRandom(c.N, c.W, c.Tau, 0.5, src)
		if err != nil {
			return []float64{math.NaN(), math.NaN(), math.NaN()}, nil
		}
		p.Run(0)
		spins := p.Spins()
		return []float64{
			ring.MeanRunLength(spins),
			float64(ring.LongestRun(spins)),
			float64(p.Flips()) / float64(c.N),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Ring Glauber run lengths at fixation: n=%d reps=%d", n, reps),
		"tau", "w", "N", "mean run len", "longest run", "flips/site")
	for _, g := range res.Groups() {
		t.AddRow(report.F(g.Cell.Tau), report.I(g.Cell.W), report.I(2*g.Cell.W+1),
			report.F(g.Mean[0]), report.F(g.Mean[1]), report.F3(g.Mean[2]))
	}

	// Kawasaki ring baseline at a single representative setting.
	kw := pick(ctx, 4, 8)
	const ktau = 0.45
	kres, err := ctx.run("E13-kawasaki", batch.Grid{
		Ns: []int{n}, Ws: []int{kw}, Taus: []float64{ktau},
	}, []string{"runLenBefore", "runLenAfter", "swaps"}, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		kp, err := ring.NewKawasaki(c.N, c.W, c.Tau, 0.5, src)
		if err != nil {
			return nil, err
		}
		before := ring.MeanRunLength(kp.Process().Spins())
		kp.Run(int64(c.N)*50, int64(c.N))
		after := ring.MeanRunLength(kp.Process().Spins())
		return []float64{before, after, float64(kp.Swaps())}, nil
	})
	if err != nil {
		return nil, err
	}
	k := report.NewTable("Ring Kawasaki baseline (Brandt et al. model)",
		"tau", "w", "mean run len before", "mean run len after", "swaps")
	_, kv := kres.At(0)
	k.AddRow(report.F(ktau), report.I(kw), report.F(kv[0]), report.F(kv[1]), report.I64(int64(kv[2])))
	return []*report.Table{t, k}, nil
}

// runE14 contrasts the open (Glauber) and closed (Kawasaki) dynamics
// from identical initial configurations: each cell draws one starting
// lattice and runs both dynamics on clones of it.
func runE14(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 80, 160)
	w := 2
	tau := 0.45
	reps := pick(ctx, 3, 8)

	type half struct{ happy, iface, largest, drift float64 }
	summarize := func(lat *grid.Lattice, happy float64, plus0 int) half {
		cl, _ := measure.Clusters(lat)
		largest := cl.LargestPlus
		if cl.LargestMinus > largest {
			largest = cl.LargestMinus
		}
		return half{
			happy:   happy,
			iface:   measure.InterfaceDensity(lat),
			largest: float64(largest) / float64(lat.Sites()),
			drift:   math.Abs(float64(lat.CountPlus()-plus0)) / float64(lat.Sites()),
		}
	}

	res, err := ctx.run("E14", batch.Grid{
		Ns: []int{n}, Ws: []int{w}, Taus: []float64{tau}, Replicates: reps,
	}, []string{
		"gHappy", "gIface", "gLargest", "gDrift",
		"kHappy", "kIface", "kLargest", "kDrift",
	}, func(c batch.Cell, src *rng.Source) ([]float64, error) {
		initial := grid.Random(c.N, 0.5, src.Split(1))
		plus0 := initial.CountPlus()

		glat := initial.Clone()
		gp, err := newEngine(glat, c.W, c.Tau, src.Split(2), ctx.Engine)
		if err != nil {
			return nil, err
		}
		gp.Run(0)
		g := summarize(glat, gp.HappyFraction(), plus0)

		klat := initial.Clone()
		kp, err := newSwapEngine(klat, c.W, c.Tau, dynamics.Scenario{}, src.Split(3), ctx.Engine)
		if err != nil {
			return nil, err
		}
		kp.Run(int64(c.N)*int64(c.N)*20, int64(c.N)*int64(c.N))
		k := summarize(klat, kp.Engine().HappyFraction(), plus0)

		return []float64{
			g.happy, g.iface, g.largest, g.drift,
			k.happy, k.iface, k.largest, k.drift,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	t := report.NewTable(
		fmt.Sprintf("Glauber vs Kawasaki from a common start: n=%d w=%d tau=%.2f", n, w, tau),
		"replicate", "dynamic", "happy frac", "interface density", "largest cluster frac", "magnetization drift")
	for i := 0; i < res.Len(); i++ {
		c, v := res.At(i)
		t.AddRow(report.I(c.Rep), "glauber", report.F3(v[0]), report.F3(v[1]), report.F3(v[2]), report.F3(v[3]))
		t.AddRow(report.I(c.Rep), "kawasaki", report.F3(v[4]), report.F3(v[5]), report.F3(v[6]), report.F3(v[7]))
	}
	return []*report.Table{t}, nil
}
