package sim

import (
	"fmt"
	"math"

	"gridseg/internal/dynamics"
	"gridseg/internal/grid"
	"gridseg/internal/measure"
	"gridseg/internal/report"
	"gridseg/internal/ring"
	"gridseg/internal/stats"
)

func init() {
	register(Experiment{
		ID:     "E13",
		Figure: "1-D baselines (Sec. I.B)",
		Title:  "Ring Glauber/Kawasaki run lengths vs horizon",
		Run:    runE13,
	})
	register(Experiment{
		ID:     "E14",
		Figure: "Glauber vs Kawasaki model classes (Sec. I.A)",
		Title:  "Open vs closed dynamics from a common initial configuration",
		Run:    runE14,
	})
}

// runE13 reproduces the 1-D picture the paper builds on: at tau inside
// (~0.35, 1/2) mean run lengths at fixation grow quickly with the
// horizon, while at tau = 1/2 the growth is polynomial (Brandt et al.)
// and in the static regime nothing moves.
func runE13(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 2000, 20000)
	ws := pick(ctx, []int{2, 4, 6}, []int{2, 4, 6, 8, 12})
	reps := pick(ctx, 3, 8)
	taus := []float64{0.2, 0.45, 0.5}

	t := report.NewTable(
		fmt.Sprintf("Ring Glauber run lengths at fixation: n=%d reps=%d", n, reps),
		"tau", "w", "N", "mean run len", "longest run", "flips/site")
	for ti, tau := range taus {
		for wi, w := range ws {
			type out struct{ mean, longest, fps float64 }
			res := parallelMap(ctx, reps, func(r int) out {
				src := ctx.src(uint64(2000 + ti*1000 + wi*100 + r))
				p, err := ring.NewRandom(n, w, tau, 0.5, src)
				if err != nil {
					return out{math.NaN(), 0, 0}
				}
				p.Run(0)
				spins := p.Spins()
				return out{
					mean:    ring.MeanRunLength(spins),
					longest: float64(ring.LongestRun(spins)),
					fps:     float64(p.Flips()) / float64(n),
				}
			})
			var means, longs, fps []float64
			for _, v := range res {
				if !math.IsNaN(v.mean) {
					means = append(means, v.mean)
					longs = append(longs, v.longest)
					fps = append(fps, v.fps)
				}
			}
			t.AddRow(report.F(tau), report.I(w), report.I(2*w+1),
				report.F(stats.Mean(means)), report.F(stats.Mean(longs)), report.F3(stats.Mean(fps)))
		}
	}

	// Kawasaki ring baseline at a single representative setting.
	k := report.NewTable("Ring Kawasaki baseline (Brandt et al. model)",
		"tau", "w", "mean run len before", "mean run len after", "swaps")
	kw := pick(ctx, 4, 8)
	ktau := 0.45
	src := ctx.src(2300)
	kp, err := ring.NewKawasaki(n, kw, ktau, 0.5, src)
	if err != nil {
		return nil, err
	}
	before := ring.MeanRunLength(kp.Process().Spins())
	kp.Run(int64(n)*50, int64(n))
	after := ring.MeanRunLength(kp.Process().Spins())
	k.AddRow(report.F(ktau), report.I(kw), report.F(before), report.F(after), report.I64(kp.Swaps()))
	return []*report.Table{t, k}, nil
}

// runE14 contrasts the open (Glauber) and closed (Kawasaki) dynamics
// from identical initial configurations.
func runE14(ctx *Context) ([]*report.Table, error) {
	n := pick(ctx, 80, 160)
	w := 2
	tau := 0.45
	reps := pick(ctx, 3, 8)

	t := report.NewTable(
		fmt.Sprintf("Glauber vs Kawasaki from a common start: n=%d w=%d tau=%.2f", n, w, tau),
		"replicate", "dynamic", "happy frac", "interface density", "largest cluster frac", "magnetization drift")
	for r := 0; r < reps; r++ {
		src := ctx.src(uint64(2400 + r))
		initial := grid.Random(n, 0.5, src.Split(1))
		plus0 := initial.CountPlus()

		// Glauber.
		glat := initial.Clone()
		gp, err := dynamics.New(glat, w, tau, src.Split(2))
		if err != nil {
			return nil, err
		}
		gp.Run(0)
		addRow := func(name string, lat *grid.Lattice, happy float64) {
			cl, _ := measure.Clusters(lat)
			largest := cl.LargestPlus
			if cl.LargestMinus > largest {
				largest = cl.LargestMinus
			}
			drift := math.Abs(float64(lat.CountPlus()-plus0)) / float64(lat.Sites())
			t.AddRow(report.I(r), name, report.F3(happy),
				report.F3(measure.InterfaceDensity(lat)),
				report.F3(float64(largest)/float64(lat.Sites())),
				report.F3(drift))
		}
		addRow("glauber", glat, gp.HappyFraction())

		// Kawasaki from the same initial configuration.
		klat := initial.Clone()
		kp, err := dynamics.NewKawasaki(klat, w, tau, src.Split(3))
		if err != nil {
			return nil, err
		}
		kp.Run(int64(n)*int64(n)*20, int64(n)*int64(n))
		addRow("kawasaki", klat, kp.Process().HappyFraction())
	}
	return []*report.Table{t}, nil
}
