package sim

import (
	"testing"

	"gridseg/internal/batch"
	"gridseg/internal/rng"
	"gridseg/internal/store"
)

// TestQuickFullCacheIsolation pins the cache-identity contract of the
// experiment harness: quick and full runs of the same grid cell
// measure different captured parameters (trial counts, spans picked
// via pick(ctx, ...)), so they must never share a result-store slot —
// a full-mode scan against a quick-populated store has to recompute
// everything, and vice versa.
func TestQuickFullCacheIsolation(t *testing.T) {
	st := store.NewMemory()
	g := batch.Grid{Ns: []int{8}, Ws: []int{1}, Taus: []float64{0.4}, Replicates: 2}
	run := func(quick bool) *batch.ResultSet {
		ctx := &Context{Quick: quick, Seed: 1, Store: st}
		rs, err := ctx.run("TQF", g, []string{"v"}, func(c batch.Cell, src *rng.Source) ([]float64, error) {
			return []float64{src.Float64()}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	quick := run(true)
	if quick.Cache.Hits != 0 || quick.Cache.Misses != 2 {
		t.Fatalf("first quick run cache = %+v", quick.Cache)
	}
	full := run(false)
	if full.Cache.Hits != 0 || full.Cache.Misses != 2 {
		t.Fatalf("full run must not hit quick-mode cells: %+v", full.Cache)
	}
	// Same mode does share.
	again := run(true)
	if again.Cache.Hits != 2 || again.Cache.Misses != 0 {
		t.Fatalf("repeated quick run cache = %+v", again.Cache)
	}
	// And the modes drew genuinely independent streams.
	if quick.Values[0][0] == full.Values[0][0] {
		t.Fatal("quick and full cells must draw independent randomness")
	}
}
