package batch

import (
	"math"
	"strings"
	"testing"
)

// TestParseGridRangeRegressions pins the parser hardening: the
// full-int-range spec whose value count wraps uint64 must error (not
// be accepted as an empty axis), and float ranges stay inclusive of hi
// without overstepping it.
func TestParseGridRangeRegressions(t *testing.T) {
	if _, err := ParseGrid("n=-9223372036854775808:9223372036854775807 w=1 tau=0.45"); err == nil {
		t.Error("full int range accepted (count wrapped to 0)")
	}
	// The same range with a huge step is a legitimate 3-value axis
	// ({lo, -1, hi-1}): intermediate wrap cancels because the true
	// values fit in int. (No w axis here: pairing these nonsense sides
	// with a horizon would now trip the semantic window check, which
	// TestParseGridWindowValidation covers.)
	g3, err := ParseGrid("n=-9223372036854775808:9223372036854775807:9223372036854775807")
	if err != nil {
		t.Errorf("3-value extreme range rejected: %v", err)
	} else if len(g3.Ns) != 3 || g3.Ns[1] != -1 {
		t.Errorf("extreme range = %v, want [min, -1, max-1]", g3.Ns)
	}
	g, err := ParseGrid("tau=0.40:0.48:0.03")
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{0.40, 0.43, 0.46}; len(g.Taus) != len(want) || g.Taus[2] != want[2] {
		t.Errorf("non-divisible float range = %v, want %v (inclusive up to hi, no overshoot)", g.Taus, want)
	}
	g, err = ParseGrid("tau=0.40:0.48:0.02")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Taus) != 5 || g.Taus[4] != 0.48 {
		t.Errorf("divisible float range = %v, want endpoint 0.48 included", g.Taus)
	}
}

// FuzzParseGrid drives the grid-spec parser with arbitrary input. The
// contract under test: ParseGrid never panics and never hangs — every
// malformed, hostile, or degenerate spec returns an error — and every
// accepted grid is well-formed (finite floats in range, bounded axis
// expansion, bounded total size, positive replicates).
func FuzzParseGrid(f *testing.F) {
	seeds := []string{
		// The documented syntax.
		"n=96,240 w=2:4 tau=0.40:0.48:0.02 reps=8",
		"n=240 w=4 tau=0.45 dyn=glauber,kawasaki reps=16",
		"n=64 w=1 tau=0.5 p=0.1,0.5,0.9 engine=fast",
		"n=10:100:10 w=1,2,3 tau=0.42 replicates=4 dynamic=kawasaki",
		"engine=reference",
		"",
		// Scenario axes.
		"n=64 w=2 tau=0.42 boundary=torus,open rho=0:0.2:0.05",
		"n=32 w=1 tau=0.42 taudist=global|mix:0.35,0.45:0.5|uniform:0.3:0.5",
		"n=32 w=1 tau=0.42 dyn=move rho=0.1",
		"boundary=klein",
		"rho=1",
		"rho=-0.5",
		"taudist=mix:2,3:4",
		"taudist=mix",
		"n=3 w=5 tau=0.4",
		"dyn=move",
		// Malformed shapes that must error, not panic.
		"n=",
		"=5",
		"n==5",
		"n=1:",
		"n=:1",
		"n=1:2:0",
		"n=5:1",
		"tau=0.4:0.5",
		"tau=0.5:0.4:0.01",
		"n=1:1000000000",
		"reps=99999999999999999999",
		"tau=NaN",
		"tau=+Inf",
		"p=-Inf",
		"tau=1e300:2e300:1e-300",
		"tau=0:1:1e-18",
		"n=9223372036854775807",
		"n=-9223372036854775808:9223372036854775807",
		"n=-9223372036854775808:9223372036854775807:9223372036854775807",
		"w=0x10",
		"dyn=ising",
		"engine=turbo",
		"n=5 n=6",
		"dyn=glauber dynamic=kawasaki",
		"unknown=1",
		"n=1,2,3,4 w=1,2,3,4 tau=0,0.5,1 p=0,0.5,1 reps=1048576",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		g, err := ParseGrid(spec)
		if err != nil {
			return
		}
		// Accepted grids must be safe to expand and enumerate.
		if g.boundedSize() > MaxGridCells {
			t.Fatalf("accepted grid expands to %d cells (max %d): %q", g.boundedSize(), MaxGridCells, spec)
		}
		for _, axis := range [][]float64{g.Taus, g.Ps} {
			if len(axis) > MaxAxisValues {
				t.Fatalf("accepted axis has %d values: %q", len(axis), spec)
			}
			for _, v := range axis {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
					t.Fatalf("accepted out-of-range value %v: %q", v, spec)
				}
			}
		}
		if len(g.Ns) > MaxAxisValues || len(g.Ws) > MaxAxisValues {
			t.Fatalf("accepted int axis too large: %q", spec)
		}
		if g.Replicates < 0 {
			t.Fatalf("accepted negative replicates %d: %q", g.Replicates, spec)
		}
		switch g.Engine {
		case "", EngineAuto, EngineReference, EngineFast:
		default:
			t.Fatalf("accepted unknown engine %q: %q", g.Engine, spec)
		}
		for _, d := range g.Dynamics {
			if d != Glauber && d != Kawasaki && d != Move {
				t.Fatalf("accepted unknown dynamic %q: %q", d, spec)
			}
		}
		for _, b := range g.Boundaries {
			if b != BoundaryTorus && b != BoundaryOpen {
				t.Fatalf("accepted unknown boundary %q: %q", b, spec)
			}
		}
		for _, rho := range g.Rhos {
			if math.IsNaN(rho) || rho < 0 || rho >= 1 {
				t.Fatalf("accepted out-of-range rho %v: %q", rho, spec)
			}
		}
		for _, n := range g.Ns {
			for _, w := range g.Ws {
				if 2*w+1 > n {
					t.Fatalf("accepted self-wrapping window n=%d w=%d: %q", n, w, spec)
				}
			}
		}
		cells := g.Cells()
		if len(cells) != g.Size() {
			t.Fatalf("Cells/Size mismatch %d != %d: %q", len(cells), g.Size(), spec)
		}
		_ = strings.TrimSpace(spec)
	})
}
