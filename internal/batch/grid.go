// Package batch is the parallel sweep engine of the repository: it
// turns a declarative parameter grid over (n, w, tau, p, extra,
// dynamic, replicates) into a deterministic set of cells, runs a user
// function over the cells on a bounded worker pool, and aggregates the
// per-cell metric vectors into tables, CSV, and JSON artifacts.
//
// Determinism is a hard guarantee: every cell derives its random
// source from (seed, scope, cell identity) only — see CellSeed — so
// the output of a run is byte-identical for any worker count, and a
// cell's result does not depend on which grid contains it (the basis
// of the content-addressed result cache). Long runs can stream
// completed cells to a checkpoint file and resume from it after
// interruption.
package batch

import (
	"fmt"
	"strconv"
	"strings"
)

// Dynamics labels understood by the default runners.
const (
	Glauber  = "glauber"
	Kawasaki = "kawasaki"
	// Move is the relocation dynamic of vacancy scenarios: an unhappy
	// agent moves into a vacant site iff it would be happy there.
	// Grids sweeping it must give every cell a positive rho.
	Move = "move"
)

// Scenario-axis defaults (the paper's setting). Cells at these values
// keep their pre-scenario identities, seeds, and artifacts.
const (
	BoundaryTorus = "torus"
	BoundaryOpen  = "open"
	TauDistGlobal = "global"
)

// Engine labels understood by the default runners. Engines are
// interchangeable bit for bit (the differential harness of
// internal/difftest enforces it), so the engine is an execution detail
// like the worker count: it never changes results, never appears in
// result rows, and never invalidates a checkpoint. The parallel engine
// keeps that contract because sweeps run it in delegation mode (one
// strip): only its worker count varies, which is a pure execution
// detail.
const (
	EngineAuto      = "auto"
	EngineReference = "reference"
	EngineFast      = "fast"
	EngineParallel  = "parallel"
)

// Grid declares a Cartesian product of simulation parameters. Empty
// dimensions collapse to a single default value, so callers only
// populate the axes they sweep. Extras is a free-form numeric axis
// (noise rate, discomfort cap, probe radius, ...) named by ExtraName.
type Grid struct {
	Ns         []int
	Ws         []int
	Taus       []float64
	Ps         []float64
	Extras     []float64
	ExtraName  string
	Dynamics   []string
	Replicates int
	// Scenario axes: lattice boundary conditions ("torus", "open"),
	// vacancy fractions in [0, 1), and per-site intolerance
	// distribution specs in topology.TauDist's canonical syntax
	// ("global", "mix:a,b:w", "uniform:lo:hi"). Empty axes collapse to
	// the paper's defaults.
	Boundaries []string
	Rhos       []float64
	TauDists   []string
	// Engine selects the simulation engine for every cell of the grid
	// ("auto", "reference", "fast", or "parallel"; empty means auto). It
	// is not a sweep axis: engines are bit-identical, so sweeping them
	// would replicate every cell exactly.
	Engine string
	// Par is the worker count of the parallel engine (engine=parallel;
	// 0 means one per available CPU). Execution-only like Engine: the
	// runners pin the parallel engine to its delegation mode inside
	// sweeps, so the worker count never changes a cell's bytes.
	Par int
	// Geometry opts the whole grid into the interface-geometry
	// observables (interface length, boundary curvature) as extra
	// columns after the standard schema. Like Engine it is grid-level,
	// not a sweep axis, and it never enters a cell's identity: the
	// column list — which the store keys and grid fingerprints already
	// include — is what distinguishes a geometry sweep from its plain
	// twin, whose artifacts stay byte-identical.
	Geometry bool
}

// Cell is one point of the expanded grid: a parameter combination plus
// a replicate number. Index is the cell's position in the canonical
// enumeration order; it orders results and artifacts but — unlike the
// parameters and Rep — plays no part in the cell's random stream or
// cache identity (see CellSeed).
type Cell struct {
	Index   int
	N       int
	W       int
	Tau     float64
	P       float64
	Extra   float64
	Dynamic string
	Rep     int
	// Scenario coordinates (normalized: never empty in expanded cells).
	Boundary string
	Rho      float64
	TauDist  string
	// Engine and Par are the grid-level engine selection, copied to
	// every cell for the runner's convenience. Never part of the cell
	// identity.
	Engine string
	Par    int
}

// normalized returns a copy with every empty axis collapsed to its
// default so enumeration is total.
func (g Grid) normalized() Grid {
	if len(g.Ns) == 0 {
		g.Ns = []int{0}
	}
	if len(g.Ws) == 0 {
		g.Ws = []int{0}
	}
	if len(g.Taus) == 0 {
		g.Taus = []float64{0}
	}
	if len(g.Ps) == 0 {
		g.Ps = []float64{0.5}
	}
	if len(g.Extras) == 0 {
		g.Extras = []float64{0}
	}
	if len(g.Dynamics) == 0 {
		g.Dynamics = []string{Glauber}
	}
	if len(g.Boundaries) == 0 {
		g.Boundaries = []string{BoundaryTorus}
	}
	if len(g.Rhos) == 0 {
		g.Rhos = []float64{0}
	}
	if len(g.TauDists) == 0 {
		g.TauDists = []string{TauDistGlobal}
	}
	if g.Replicates <= 0 {
		g.Replicates = 1
	}
	if g.Engine == "" {
		g.Engine = EngineAuto
	}
	return g
}

// Size returns the number of cells in the expanded grid.
func (g Grid) Size() int {
	n := g.normalized()
	return len(n.Dynamics) * len(n.Ns) * len(n.Ws) * len(n.Taus) *
		len(n.Ps) * len(n.Boundaries) * len(n.Rhos) * len(n.TauDists) *
		len(n.Extras) * n.Replicates
}

// Cells expands the grid in canonical order: dynamics, n, w, tau, p,
// boundary, rho, taudist, extra, replicate (replicates innermost, so
// the replicates of one parameter combination are adjacent).
func (g Grid) Cells() []Cell {
	n := g.normalized()
	out := make([]Cell, 0, g.Size())
	idx := 0
	for _, dyn := range n.Dynamics {
		for _, nn := range n.Ns {
			for _, w := range n.Ws {
				for _, tau := range n.Taus {
					for _, p := range n.Ps {
						for _, b := range n.Boundaries {
							for _, rho := range n.Rhos {
								for _, td := range n.TauDists {
									for _, x := range n.Extras {
										for r := 0; r < n.Replicates; r++ {
											out = append(out, Cell{
												Index: idx, N: nn, W: w, Tau: tau, P: p,
												Boundary: b, Rho: rho, TauDist: td,
												Extra: x, Dynamic: dyn, Rep: r,
												Engine: n.Engine, Par: n.Par,
											})
											idx++
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// GroupKey identifies the parameter combination of a cell, ignoring
// the replicate number. Cells with equal GroupKeys are replicates of
// the same experiment point.
func (c Cell) GroupKey() string {
	return fmt.Sprintf("%s|%d|%d|%v|%v|%v|%s|%v|%s",
		c.Dynamic, c.N, c.W, c.Tau, c.P, c.Extra, c.Boundary, c.Rho, c.TauDist)
}

// DefaultScenario reports whether the given scenario coordinates sit
// at the scenario-axis defaults (the paper's setting: torus, full
// occupancy, global tau). Empty labels are synonymous with the
// defaults. It is the single string-level predicate shared by every
// layer that carries scenario coordinates as labels (cell identities,
// sweep runners, SSE events, the differential harness); the typed
// equivalent is topology.Scenario.IsDefault.
func DefaultScenario(boundary string, rho float64, taudist string) bool {
	return (boundary == "" || boundary == BoundaryTorus) &&
		rho == 0 &&
		(taudist == "" || taudist == TauDistGlobal)
}

// defaultScenario reports whether the cell sits at the scenario-axis
// defaults.
func (c Cell) defaultScenario() bool {
	return DefaultScenario(c.Boundary, c.Rho, c.TauDist)
}

// identity is the canonical parameter identity of a cell: everything
// that defines its result except the run seed and scope, and nothing
// positional (no Index) or execution-only (no Engine). It feeds the
// per-cell seed derivation (CellSeed), which is what lets overlapping
// grids share cached results.
//
// Scenario coordinates are appended only when they deviate from the
// paper's defaults: default cells keep their pre-scenario identity
// strings, hence their derived seeds, hence their exact result bytes —
// the introduction of the scenario subsystem never silently changed a
// published number.
func (c Cell) identity() string {
	id := fmt.Sprintf("dyn=%s;n=%d;w=%d;tau=%s;p=%s;x=%s;rep=%d",
		c.Dynamic, c.N, c.W,
		strconv.FormatFloat(c.Tau, 'g', -1, 64),
		strconv.FormatFloat(c.P, 'g', -1, 64),
		strconv.FormatFloat(c.Extra, 'g', -1, 64),
		c.Rep)
	if c.defaultScenario() {
		return id
	}
	b := c.Boundary
	if b == "" {
		b = BoundaryTorus
	}
	td := c.TauDist
	if td == "" {
		td = TauDistGlobal
	}
	return id + fmt.Sprintf(";b=%s;rho=%s;taudist=%s",
		b, strconv.FormatFloat(c.Rho, 'g', -1, 64), td)
}

// Fingerprint identifies a (grid, seed, scope, columns) combination;
// it guards checkpoint compatibility and names whole-grid runs (the
// HTTP service derives grid IDs from it). The engine is deliberately
// excluded: engines are bit-identical, so a checkpoint written under
// one engine is valid — cell for cell — under any other. The v3 prefix
// marks the scenario-axis schema (boundary, rho, taudist folded into
// the grid identity); v1 (index-derived seeds) and v2 (no scenario
// axes) checkpoints are incompatible and rejected.
func (g Grid) Fingerprint(seed uint64, scope string, columns []string) string {
	n := g.normalized()
	var b strings.Builder
	fmt.Fprintf(&b, "v3;seed=%d;scope=%s;reps=%d;extra=%s;", seed, scope, n.Replicates, n.ExtraName)
	ints := func(name string, vs []int) {
		b.WriteString(name)
		b.WriteByte('=')
		for _, v := range vs {
			b.WriteString(strconv.Itoa(v))
			b.WriteByte(',')
		}
		b.WriteByte(';')
	}
	floats := func(name string, vs []float64) {
		b.WriteString(name)
		b.WriteByte('=')
		for _, v := range vs {
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			b.WriteByte(',')
		}
		b.WriteByte(';')
	}
	ints("n", n.Ns)
	ints("w", n.Ws)
	floats("tau", n.Taus)
	floats("p", n.Ps)
	floats("x", n.Extras)
	floats("rho", n.Rhos)
	b.WriteString("dyn=" + strings.Join(n.Dynamics, ",") + ";")
	b.WriteString("boundary=" + strings.Join(n.Boundaries, ",") + ";")
	b.WriteString("taudist=" + strings.Join(n.TauDists, "|") + ";")
	b.WriteString("cols=" + strings.Join(columns, ",") + ";")
	return b.String()
}
