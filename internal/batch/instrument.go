package batch

import "gridseg/internal/metrics"

// Cell-level throughput counters. They are exported because two
// distinct execution paths feed them: Run (the in-process engine, used
// by cmd/sweep and single-node segd) increments them itself, while the
// distributed fabric's worker path computes cells through
// gridseg.ComputeJob without ever entering Run and must report the
// same events. Cache hit rate is cached/(cached+computed).
var (
	// MetricCellsComputed counts cells actually simulated.
	MetricCellsComputed = metrics.Default().NewCounter(
		"gridseg_cells_computed_total",
		"Grid cells computed by simulation (cache misses).")
	// MetricCellsCached counts cells served from a checkpoint or the
	// content-addressed store without recomputation.
	MetricCellsCached = metrics.Default().NewCounter(
		"gridseg_cells_cached_total",
		"Grid cells served from the checkpoint or result store.")
)
