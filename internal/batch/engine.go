package batch

import (
	"fmt"
	"runtime"
	"sync"

	"gridseg/internal/rng"
)

// Runner computes the metric vector of one cell. It receives a random
// source derived deterministically from (seed, scope, cell index), so
// the result must not depend on scheduling. Metrics that could not be
// measured should be returned as NaN (aggregation skips NaNs); a
// non-nil error aborts the whole run.
type Runner func(c Cell, src *rng.Source) ([]float64, error)

// Options configures a batch run.
type Options struct {
	// Seed is the root seed of the run; every cell stream derives from
	// it. The zero seed is a valid seed.
	Seed uint64
	// Scope namespaces the seed derivation (typically the experiment
	// ID), so two sweeps in one program draw independent streams even
	// with equal root seeds.
	Scope string
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is invoked after each completed cell
	// with the number of cells done so far. Calls are serialized.
	Progress func(done, total int, c Cell)
	// CheckpointPath, when non-empty, streams completed cells to a
	// JSON checkpoint file and resumes from it if it already exists.
	// A checkpoint written for a different (grid, seed, scope,
	// columns) combination is rejected.
	CheckpointPath string
}

// workers returns the effective worker count.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// cellSource derives the random source of a cell from the run seed,
// the scope label, and the cell index — never from scheduling order.
func cellSource(seed uint64, scope string, index int) *rng.Source {
	// FNV-1a over the scope, folded into the seed, then split on the
	// cell index; rng.Split guarantees independent child streams.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(scope); i++ {
		h ^= uint64(scope[i])
		h *= prime64
	}
	return rng.New(seed ^ h).Split(uint64(index))
}

// Run expands the grid, executes fn over every cell on a bounded
// worker pool, and collects the results indexed by cell. The returned
// ResultSet is identical for any Workers setting.
func Run(g Grid, columns []string, fn Runner, opt Options) (*ResultSet, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("batch: no metric columns declared")
	}
	ng := g.normalized()
	cells := ng.Cells()
	rs := &ResultSet{
		Grid:    ng,
		Columns: columns,
		Cells:   cells,
		Values:  make([][]float64, len(cells)),
	}

	var ckpt *checkpoint
	done := make([]bool, len(cells))
	if opt.CheckpointPath != "" {
		var err error
		ckpt, err = loadOrCreateCheckpoint(opt.CheckpointPath, ng.fingerprint(opt.Seed, opt.Scope, columns), columns)
		if err != nil {
			return nil, err
		}
		for idx, vals := range ckpt.restored() {
			if idx >= 0 && idx < len(cells) && len(vals) == len(columns) {
				rs.Values[idx] = vals
				done[idx] = true
			}
		}
	}

	var pending []int
	for i := range cells {
		if !done[i] {
			pending = append(pending, i)
		}
	}

	var (
		mu        sync.Mutex
		firstErr  error
		completed = len(cells) - len(pending)
	)
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	workers := opt.workers()
	if workers > len(pending) {
		workers = len(pending)
	}
	runCell := func(i int) {
		c := cells[i]
		vals, err := fn(c, cellSource(opt.Seed, opt.Scope, c.Index))
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("batch: cell %d (%+v): %w", c.Index, c, err)
			}
			return
		}
		if len(vals) != len(columns) {
			if firstErr == nil {
				firstErr = fmt.Errorf("batch: cell %d returned %d values, want %d columns", c.Index, len(vals), len(columns))
			}
			return
		}
		rs.Values[i] = vals
		completed++
		if ckpt != nil {
			if err := ckpt.record(c.Index, vals); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if opt.Progress != nil {
			opt.Progress(completed, len(cells), c)
		}
	}

	// Stop dispatching new cells once a cell has failed: a long sweep
	// should not spend hours finishing a grid whose run is already
	// doomed. In-flight cells drain normally.
	if workers <= 1 {
		for _, i := range pending {
			if failed() {
				break
			}
			runCell(i)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					runCell(i)
				}
			}()
		}
		for _, i := range pending {
			if failed() {
				break
			}
			next <- i
		}
		close(next)
		wg.Wait()
	}
	if ckpt != nil {
		// Flush even on failure: preserving completed cells for a
		// resume is the entire point of the checkpoint.
		if err := ckpt.flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return rs, nil
}
