package batch

import (
	"fmt"
	"runtime"
	"sync"

	"gridseg/internal/rng"
	"gridseg/internal/store"
)

// Runner computes the metric vector of one cell. It receives a random
// source derived deterministically from (seed, scope, cell identity),
// so the result must not depend on scheduling. Metrics that could not
// be measured should be returned as NaN (aggregation skips NaNs); a
// non-nil error aborts the whole run.
type Runner func(c Cell, src *rng.Source) ([]float64, error)

// Options configures a batch run.
type Options struct {
	// Seed is the root seed of the run; every cell stream derives from
	// it. The zero seed is a valid seed.
	Seed uint64
	// Scope namespaces the seed derivation (typically the experiment
	// ID), so two sweeps in one program draw independent streams even
	// with equal root seeds.
	Scope string
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is invoked after each completed cell
	// with the number of cells done so far; cached reports whether the
	// cell was served from the checkpoint or the result store instead
	// of being computed. Calls are serialized.
	Progress func(done, total int, c Cell, cached bool)
	// CheckpointPath, when non-empty, streams completed cells to a
	// JSON checkpoint file and resumes from it if it already exists.
	// A checkpoint written for a different (grid, seed, scope,
	// columns) combination is rejected.
	CheckpointPath string
	// Store, when non-nil, is the shared content-addressed result
	// cache: every cell is looked up by its canonical key
	// (store.CellSpec) before being computed, and computed cells are
	// written back. Because cell seeds derive from the cell's identity
	// — never its position in a grid — any grid containing the same
	// cell hits the same key, so overlapping sweeps recompute nothing.
	Store store.Store
}

// workers returns the effective worker count.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// CellSeed derives the 64-bit random seed of a cell from the run seed,
// the scope label, and the cell's parameter identity — never from the
// cell's index in a particular grid. Two grids that both contain the
// cell (glauber, n=96, w=2, tau=0.42, p=0.5, rep=3) therefore compute
// it with the same seed and obtain byte-identical results, which is
// what makes content-addressed caching across overlapping sweeps
// sound. The derived seed is also part of the cell's store key
// (store.CellSpec.Seed), so distinct root seeds or scopes can never
// alias a cache slot.
func CellSeed(seed uint64, scope string, c Cell) uint64 {
	// FNV-1a over the scope and the canonical cell identity, folded
	// into the root seed. rng.New feeds the result through SplitMix64,
	// so nearby seeds still yield independent-looking streams.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // field separator, outside the byte alphabet
		h *= prime64
	}
	mix(scope)
	mix(c.identity())
	return seed ^ h
}

// CellSpec assembles the content-addressed store identity of a cell.
// Exported because the distributed fabric derives lease jobs — store
// key plus fully derived seed — from the same identity the local
// engine uses, which is what makes a worker's computation of a leased
// cell byte-identical to the in-process one.
func (o Options) CellSpec(c Cell, extraName string, columns []string) store.CellSpec {
	return store.CellSpec{
		Scope:     o.Scope,
		Columns:   columns,
		Dynamic:   c.Dynamic,
		N:         c.N,
		W:         c.W,
		Tau:       c.Tau,
		P:         c.P,
		Boundary:  c.Boundary,
		Rho:       c.Rho,
		TauDist:   c.TauDist,
		ExtraName: extraName,
		Extra:     c.Extra,
		Rep:       c.Rep,
		Seed:      CellSeed(o.Seed, o.Scope, c),
	}
}

// storeGuard wraps the optional result store with fail-soft
// semantics: the store is only a cache, so its first failure (full
// disk, corrupt object, permissions) disables it for the rest of the
// run — cells are then computed and simply not cached — instead of
// aborting hours of sweep work. The first error is reported through
// ResultSet.Cache.Err.
type storeGuard struct {
	store store.Store
	mu    sync.Mutex
	err   error
}

// get probes the store; any failure reads as a miss and disables the
// store.
func (g *storeGuard) get(key string) ([]float64, bool) {
	if g == nil || g.disabled() {
		return nil, false
	}
	v, ok, err := g.store.Get(key)
	if err != nil {
		g.disable(err)
		return nil, false
	}
	return v, ok
}

// put fills the store, disabling it on failure.
func (g *storeGuard) put(key string, values []float64) {
	if g == nil || g.disabled() {
		return
	}
	if err := g.store.Put(key, values); err != nil {
		g.disable(err)
	}
}

func (g *storeGuard) disabled() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err != nil
}

func (g *storeGuard) disable(err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err == nil {
		g.err = err
	}
}

// firstErr returns the failure that disabled the store, if any.
func (g *storeGuard) firstErr() error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// Run expands the grid, executes fn over every cell on a bounded
// worker pool, and collects the results indexed by cell. The returned
// ResultSet is identical for any Workers setting. Cells found in the
// checkpoint or the result store are served without recomputation;
// ResultSet.Cache reports the split.
func Run(g Grid, columns []string, fn Runner, opt Options) (*ResultSet, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("batch: no metric columns declared")
	}
	ng := g.normalized()
	cells := ng.Cells()
	rs := &ResultSet{
		Grid:    ng,
		Columns: columns,
		Cells:   cells,
		Values:  make([][]float64, len(cells)),
	}

	// Per-cell seeds are always needed; content-addressed keys only
	// when a cache (checkpoint or store) is attached.
	seeds := make([]uint64, len(cells))
	for i, c := range cells {
		seeds[i] = CellSeed(opt.Seed, opt.Scope, c)
	}
	var keys []string
	if opt.CheckpointPath != "" || opt.Store != nil {
		keys = make([]string, len(cells))
		for i, c := range cells {
			keys[i] = opt.CellSpec(c, ng.ExtraName, columns).Key()
		}
	}

	var guard *storeGuard
	if opt.Store != nil {
		guard = &storeGuard{store: opt.Store}
	}

	var ckpt *checkpoint
	done := make([]bool, len(cells))
	if opt.CheckpointPath != "" {
		var err error
		ckpt, err = loadOrCreateCheckpoint(opt.CheckpointPath, ng.Fingerprint(opt.Seed, opt.Scope, columns), columns)
		if err != nil {
			return nil, err
		}
		for i := range cells {
			if vals, ok := ckpt.get(keys[i]); ok && len(vals) == len(columns) {
				rs.Values[i] = vals
				done[i] = true
				// The checkpoint is a single-run view over the store:
				// anything it restored belongs in the shared cache too —
				// but only fill actual gaps, so resuming with a warm
				// store does not rewrite objects it already holds.
				if _, ok := guard.get(keys[i]); !ok {
					guard.put(keys[i], vals)
				}
			}
		}
	}

	var pending []int
	for i := range cells {
		if !done[i] {
			pending = append(pending, i)
		}
	}

	var (
		mu        sync.Mutex
		firstErr  error
		completed = len(cells) - len(pending)
	)
	rs.Cache.Hits = completed
	MetricCellsCached.Add(uint64(completed))
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	workers := opt.workers()
	if workers > len(pending) {
		workers = len(pending)
	}
	runCell := func(i int) {
		c := cells[i]
		// Probe the shared store before computing. The probe runs
		// outside the result mutex so disk-backed stores are read in
		// parallel; store failures degrade to computing (see
		// storeGuard), never abort the run.
		var (
			vals   []float64
			cached bool
		)
		if guard != nil {
			if v, ok := guard.get(keys[i]); ok && len(v) == len(columns) {
				vals, cached = v, true
			}
		}
		if !cached {
			v, err := fn(c, rng.New(seeds[i]))
			if err == nil && len(v) != len(columns) {
				err = fmt.Errorf("returned %d values, want %d columns", len(v), len(columns))
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("batch: cell %d (%+v): %w", c.Index, c, err)
				}
				mu.Unlock()
				return
			}
			vals = v
			if guard != nil {
				guard.put(keys[i], vals)
			}
		}
		if cached {
			MetricCellsCached.Inc()
		} else {
			MetricCellsComputed.Inc()
		}
		mu.Lock()
		defer mu.Unlock()
		rs.Values[i] = vals
		completed++
		if cached {
			rs.Cache.Hits++
		} else {
			rs.Cache.Misses++
		}
		if ckpt != nil {
			if err := ckpt.put(keys[i], vals); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if opt.Progress != nil {
			opt.Progress(completed, len(cells), c, cached)
		}
	}

	// Stop dispatching new cells once a cell has failed: a long sweep
	// should not spend hours finishing a grid whose run is already
	// doomed. In-flight cells drain normally.
	if workers <= 1 {
		for _, i := range pending {
			if failed() {
				break
			}
			runCell(i)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					runCell(i)
				}
			}()
		}
		for _, i := range pending {
			if failed() {
				break
			}
			next <- i
		}
		close(next)
		wg.Wait()
	}
	if ckpt != nil {
		// Flush even on failure: preserving completed cells for a
		// resume is the entire point of the checkpoint.
		if err := ckpt.flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := guard.firstErr(); err != nil {
		rs.Cache.Err = err.Error()
	}
	return rs, nil
}
