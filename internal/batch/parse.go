package batch

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"gridseg/internal/grid"
	"gridseg/internal/topology"
)

// MaxAxisValues bounds the expansion of a single grid axis, so a
// malformed or hostile range spec ("n=1:1000000000") fails with an
// error instead of exhausting memory.
const MaxAxisValues = 1 << 20

// ParseGrid parses the -grid flag syntax into a Grid. The spec is a
// whitespace-separated list of key=value fields:
//
//	n=96,240 w=2:4 tau=0.40:0.48:0.02 p=0.5 dyn=glauber,kawasaki reps=8
//	n=64 w=2 tau=0.42 boundary=torus,open rho=0:0.2:0.05 taudist=global|mix:0.35,0.45:0.5
//
// Values are comma-separated lists whose elements are either single
// numbers or inclusive ranges lo:hi[:step] (step defaults to 1 and
// must be positive). Keys: n, w (ints), tau, p (floats in [0,1]),
// dyn (glauber|kawasaki|move), reps (single int), engine
// (auto|reference|fast|parallel, single value — engines never change
// results), parallel (single int: the parallel engine's worker count,
// an execution detail like the engine itself),
// plus the scenario axes boundary (torus|open), rho (floats in
// [0,1)), and taudist ('|'-separated distribution specs — global,
// mix:a,b:w, uniform:lo:hi — since the specs themselves contain
// commas and colons), and geom (single bool: opt the grid into the
// interface-geometry columns; not a sweep axis). ParseGrid never panics: malformed specs,
// non-finite floats, ranges expanding beyond MaxAxisValues,
// neighborhoods larger than their lattice (grid.ErrWindowTooLarge),
// and move cells without vacancies all return errors.
func ParseGrid(spec string) (Grid, error) {
	var g Grid
	seen := map[string]bool{}
	for _, field := range strings.Fields(spec) {
		key, value, ok := strings.Cut(field, "=")
		if !ok {
			return Grid{}, fmt.Errorf("batch: malformed grid field %q (want key=value)", field)
		}
		key = strings.ToLower(key)
		// Fold aliases before the duplicate check so "dyn=... dynamic=..."
		// is rejected like "dyn=... dyn=..." instead of silently
		// overwriting.
		switch key {
		case "dynamic":
			key = "dyn"
		case "replicates":
			key = "reps"
		}
		if seen[key] {
			return Grid{}, fmt.Errorf("batch: duplicate grid key %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "n":
			g.Ns, err = parseInts(value)
		case "w":
			g.Ws, err = parseInts(value)
		case "tau":
			g.Taus, err = parseFloats(value)
		case "p":
			g.Ps, err = parseFloats(value)
		case "dyn":
			g.Dynamics, err = parseDynamics(value)
		case "reps":
			g.Replicates, err = strconv.Atoi(value)
			if err == nil && g.Replicates <= 0 {
				err = fmt.Errorf("must be positive")
			}
			if err == nil && g.Replicates > MaxAxisValues {
				err = fmt.Errorf("more than %d replicates", MaxAxisValues)
			}
		case "engine":
			g.Engine, err = parseEngine(value)
		case "parallel":
			g.Par, err = strconv.Atoi(value)
			if err == nil && g.Par < 0 {
				err = fmt.Errorf("must be >= 0 (0 means one worker per CPU)")
			}
		case "boundary":
			g.Boundaries, err = parseBoundaries(value)
		case "rho":
			g.Rhos, err = parseFloats(value)
		case "taudist":
			g.TauDists, err = parseTauDists(value)
		case "geom":
			g.Geometry, err = strconv.ParseBool(value)
			if err != nil {
				err = fmt.Errorf("bad bool %q", value)
			}
		default:
			return Grid{}, fmt.Errorf("batch: unknown grid key %q (want n, w, tau, p, dyn, reps, engine, parallel, boundary, rho, taudist, geom)", key)
		}
		if err != nil {
			return Grid{}, fmt.Errorf("batch: grid field %q: %w", field, err)
		}
	}
	for _, tau := range g.Taus {
		if !(tau >= 0 && tau <= 1) {
			return Grid{}, fmt.Errorf("batch: tau=%v out of [0, 1]", tau)
		}
	}
	for _, p := range g.Ps {
		if !(p >= 0 && p <= 1) {
			return Grid{}, fmt.Errorf("batch: p=%v out of [0, 1]", p)
		}
	}
	for _, rho := range g.Rhos {
		if !(rho >= 0 && rho < 1) {
			return Grid{}, fmt.Errorf("batch: rho=%v out of [0, 1)", rho)
		}
	}
	// Every (n, w) combination of the product must fit: a horizon whose
	// window wraps onto the torus is rejected here, with the typed
	// error, instead of panicking mid-sweep. All pairs fit iff the
	// extreme pair does, so the check is O(|Ns|+|Ws|) — a hostile spec
	// with two maximal axes cannot stall the parser.
	if len(g.Ns) > 0 && len(g.Ws) > 0 {
		minN, maxW := g.Ns[0], g.Ws[0]
		for _, n := range g.Ns {
			if n < minN {
				minN = n
			}
		}
		for _, w := range g.Ws {
			if w > maxW {
				maxW = w
			}
		}
		if 2*maxW+1 > minN {
			return Grid{}, fmt.Errorf("batch: n=%d w=%d: %w", minN, maxW, grid.ErrWindowTooLarge)
		}
	}
	// The move dynamic relocates agents into vacant sites; a grid that
	// sweeps it must give every cell some vacancies.
	for _, dyn := range g.Dynamics {
		if dyn != Move {
			continue
		}
		if len(g.Rhos) == 0 {
			return Grid{}, fmt.Errorf("batch: dyn=move requires a positive rho axis (vacant sites to move into)")
		}
		for _, rho := range g.Rhos {
			if rho <= 0 {
				return Grid{}, fmt.Errorf("batch: dyn=move requires rho > 0 in every cell (got rho=%v)", rho)
			}
		}
	}
	if cells := g.boundedSize(); cells > MaxGridCells {
		return Grid{}, fmt.Errorf("batch: grid expands to %d cells (max %d)", cells, MaxGridCells)
	}
	return g, nil
}

// MaxGridCells bounds the total expansion of a parsed grid.
const MaxGridCells = 1 << 24

// boundedSize returns the cell count of the expanded grid, saturating
// above MaxGridCells instead of overflowing.
func (g Grid) boundedSize() uint64 {
	n := g.normalized()
	prod := uint64(1)
	for _, f := range []int{len(n.Dynamics), len(n.Ns), len(n.Ws), len(n.Taus), len(n.Ps), len(n.Extras), n.Replicates} {
		prod *= uint64(f)
		if prod > MaxGridCells {
			return prod
		}
	}
	return prod
}

// parseInts parses a comma list of ints and lo:hi[:step] ranges.
func parseInts(value string) ([]int, error) {
	var out []int
	for _, item := range strings.Split(value, ",") {
		parts := strings.Split(item, ":")
		switch len(parts) {
		case 1:
			v, err := strconv.Atoi(parts[0])
			if err != nil {
				return nil, fmt.Errorf("bad int %q", parts[0])
			}
			out = append(out, v)
		case 2, 3:
			lo, err1 := strconv.Atoi(parts[0])
			hi, err2 := strconv.Atoi(parts[1])
			step := 1
			var err3 error
			if len(parts) == 3 {
				step, err3 = strconv.Atoi(parts[2])
			}
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("bad range %q", item)
			}
			if step <= 0 || hi < lo {
				return nil, fmt.Errorf("bad range %q (want lo<=hi, step>0)", item)
			}
			// Count values first (in uint64: hi-lo may overflow int)
			// so a huge range fails instead of exhausting memory, then
			// enumerate by index, which cannot overflow or hang. The
			// quotient is compared before adding 1: for the full int
			// range the count itself would wrap to 0.
			span := uint64(hi) - uint64(lo)
			if span/uint64(step) >= MaxAxisValues {
				return nil, fmt.Errorf("range %q expands to more than %d values", item, MaxAxisValues)
			}
			count := int(span/uint64(step)) + 1
			for i := 0; i < count; i++ {
				out = append(out, lo+i*step)
			}
		default:
			return nil, fmt.Errorf("bad range %q", item)
		}
		if len(out) > MaxAxisValues {
			return nil, fmt.Errorf("axis expands to more than %d values", MaxAxisValues)
		}
	}
	return out, nil
}

// parseFloats parses a comma list of floats and lo:hi:step ranges
// (the step is required for float ranges; endpoints are included up
// to a half-step tolerance against rounding drift).
func parseFloats(value string) ([]float64, error) {
	var out []float64
	for _, item := range strings.Split(value, ",") {
		parts := strings.Split(item, ":")
		switch len(parts) {
		case 1:
			v, err := strconv.ParseFloat(parts[0], 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("bad float %q", parts[0])
			}
			out = append(out, v)
		case 3:
			lo, err1 := strconv.ParseFloat(parts[0], 64)
			hi, err2 := strconv.ParseFloat(parts[1], 64)
			step, err3 := strconv.ParseFloat(parts[2], 64)
			if err1 != nil || err2 != nil || err3 != nil ||
				math.IsNaN(lo) || math.IsInf(lo, 0) ||
				math.IsNaN(hi) || math.IsInf(hi, 0) ||
				math.IsNaN(step) || math.IsInf(step, 0) {
				return nil, fmt.Errorf("bad range %q", item)
			}
			if step <= 0 || hi < lo {
				return nil, fmt.Errorf("bad range %q (want lo<=hi, step>0)", item)
			}
			// Bound the expansion before converting the (possibly
			// enormous) ratio to an int, then enumerate by index to
			// avoid accumulating rounding error, snapping each value
			// to 12 decimals so 0.42 + 2*0.02 reads as 0.46, not
			// 0.45999999999999996.
			if (hi-lo)/step > MaxAxisValues {
				return nil, fmt.Errorf("range %q expands to more than %d values", item, MaxAxisValues)
			}
			steps := int(math.Floor((hi-lo)/step + 0.5))
			// The tolerance only absorbs floating-point drift: the
			// range stays inclusive of hi but never oversteps it
			// (0.40:0.48:0.03 ends at 0.46, not 0.49).
			for i := 0; i <= steps; i++ {
				v := math.Round((lo+float64(i)*step)*1e12) / 1e12
				if v > hi+step*1e-9 {
					break
				}
				out = append(out, v)
			}
		case 2:
			return nil, fmt.Errorf("float range %q needs an explicit step (lo:hi:step)", item)
		default:
			return nil, fmt.Errorf("bad range %q", item)
		}
		if len(out) > MaxAxisValues {
			return nil, fmt.Errorf("axis expands to more than %d values", MaxAxisValues)
		}
	}
	return out, nil
}

// parseEngine parses the engine= value (a single label, not a list:
// engines are bit-identical, so there is nothing to sweep).
func parseEngine(value string) (string, error) {
	switch strings.ToLower(value) {
	case EngineAuto:
		return EngineAuto, nil
	case EngineReference, "ref":
		return EngineReference, nil
	case EngineFast:
		return EngineFast, nil
	case EngineParallel, "par":
		return EngineParallel, nil
	}
	return "", fmt.Errorf("unknown engine %q (want auto, reference, fast, or parallel)", value)
}

// parseDynamics parses the dyn= list.
func parseDynamics(value string) ([]string, error) {
	var out []string
	for _, item := range strings.Split(value, ",") {
		switch strings.ToLower(item) {
		case Glauber:
			out = append(out, Glauber)
		case Kawasaki:
			out = append(out, Kawasaki)
		case Move:
			out = append(out, Move)
		default:
			return nil, fmt.Errorf("unknown dynamic %q (want glauber, kawasaki, or move)", item)
		}
	}
	return out, nil
}

// parseBoundaries parses the boundary= list through the topology
// vocabulary, storing canonical labels.
func parseBoundaries(value string) ([]string, error) {
	var out []string
	for _, item := range strings.Split(value, ",") {
		b, err := topology.ParseBoundary(item)
		if err != nil {
			return nil, fmt.Errorf("unknown boundary %q (want torus or open)", item)
		}
		out = append(out, b.String())
	}
	return out, nil
}

// parseTauDists parses the taudist= list. Distribution specs contain
// commas and colons, so list elements are separated by '|':
// taudist=global|mix:0.35,0.45:0.5. Specs are validated and stored in
// canonical form, so equivalent spellings share cell identities.
func parseTauDists(value string) ([]string, error) {
	var out []string
	for _, item := range strings.Split(value, "|") {
		d, err := topology.ParseTauDist(item)
		if err != nil {
			return nil, err
		}
		out = append(out, d.String())
	}
	return out, nil
}
