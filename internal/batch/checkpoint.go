package batch

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// checkpointFile is the on-disk JSON shape of a streaming checkpoint.
// Done maps the content-addressed cell key (store.CellSpec.Key) to the
// cell's metric vector — the same keys the shared result store uses,
// which is what makes the checkpoint a single-file view over the store
// rather than a parallel persistence scheme with its own addressing.
// Values are nanFloats so the engine's NaN missing-sample convention
// survives the JSON round trip.
type checkpointFile struct {
	Fingerprint string                `json:"fingerprint"`
	Columns     []string              `json:"columns"`
	Done        map[string][]nanFloat `json:"done"`
}

// checkpoint streams completed cells to disk so an interrupted run can
// resume without recomputing them. It is the run-scoped counterpart of
// store.Store: same content-addressed keys, but bundled in one file
// whose fingerprint pins the exact (grid, seed, scope, columns)
// combination, and flushed in batches. put is called under the
// engine's result mutex, so no additional locking is needed.
type checkpoint struct {
	path    string
	file    checkpointFile
	pending int // completions since the last flush
}

// flushEvery bounds how many completions may accumulate before the
// checkpoint is rewritten; small enough that little work is lost on a
// crash, large enough that huge grids do not thrash the disk.
const flushEvery = 8

// loadOrCreateCheckpoint opens an existing checkpoint or starts a
// fresh one. An existing file recorded for a different (grid, seed,
// scope, columns) combination is rejected rather than silently mixed.
func loadOrCreateCheckpoint(path, fingerprint string, columns []string) (*checkpoint, error) {
	c := &checkpoint{
		path: path,
		file: checkpointFile{Fingerprint: fingerprint, Columns: columns, Done: map[string][]nanFloat{}},
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("batch: reading checkpoint: %w", err)
	}
	var existing checkpointFile
	if err := json.Unmarshal(data, &existing); err != nil {
		return nil, fmt.Errorf("batch: corrupt checkpoint %s: %w", path, err)
	}
	if existing.Fingerprint != fingerprint {
		return nil, fmt.Errorf("batch: checkpoint %s was written for a different grid/seed; delete it or point elsewhere", path)
	}
	if existing.Done != nil {
		c.file.Done = existing.Done
	}
	return c, nil
}

// get returns the restored metric vector of the cell with the given
// content-addressed key, if the checkpoint holds one.
func (c *checkpoint) get(key string) ([]float64, bool) {
	v, ok := c.file.Done[key]
	if !ok {
		return nil, false
	}
	vals := make([]float64, len(v))
	for i, f := range v {
		vals[i] = float64(f)
	}
	return vals, true
}

// put adds a completed cell under its content-addressed key and
// periodically flushes to disk.
func (c *checkpoint) put(key string, values []float64) error {
	vals := make([]nanFloat, len(values))
	for i, f := range values {
		vals[i] = nanFloat(f)
	}
	c.file.Done[key] = vals
	c.pending++
	if c.pending >= flushEvery {
		return c.flush()
	}
	return nil
}

// flush writes the checkpoint atomically (temp file + rename).
func (c *checkpoint) flush() error {
	if c.pending == 0 && len(c.file.Done) == 0 {
		return nil
	}
	c.pending = 0
	data, err := json.Marshal(c.file)
	if err != nil {
		return fmt.Errorf("batch: encoding checkpoint: %w", err)
	}
	tmp := c.path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(c.path), 0o755); err != nil {
		return fmt.Errorf("batch: checkpoint dir: %w", err)
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("batch: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		return fmt.Errorf("batch: committing checkpoint: %w", err)
	}
	return nil
}
