package batch

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"gridseg/internal/rng"
	"gridseg/internal/store"
)

func TestGridCellsEnumeration(t *testing.T) {
	g := Grid{
		Ns:         []int{10, 20},
		Ws:         []int{1},
		Taus:       []float64{0.4, 0.5},
		Replicates: 3,
	}
	cells := g.Cells()
	if len(cells) != g.Size() || len(cells) != 12 {
		t.Fatalf("got %d cells, want 12", len(cells))
	}
	// Canonical order: replicates innermost, indices sequential.
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
	}
	if cells[0].N != 10 || cells[0].Tau != 0.4 || cells[0].Rep != 0 {
		t.Fatalf("first cell %+v", cells[0])
	}
	if cells[2].Rep != 2 || cells[3].Tau != 0.5 || cells[3].Rep != 0 {
		t.Fatalf("replicates not innermost: %+v %+v", cells[2], cells[3])
	}
	// Defaults fill empty axes.
	if cells[0].P != 0.5 || cells[0].Dynamic != Glauber {
		t.Fatalf("defaults not applied: %+v", cells[0])
	}
}

func TestCellSeedDeterministic(t *testing.T) {
	c := Cell{N: 10, W: 1, Tau: 0.4, P: 0.5, Dynamic: Glauber}
	if CellSeed(7, "E5", c) != CellSeed(7, "E5", c) {
		t.Fatal("cell seed must be deterministic")
	}
	if CellSeed(7, "E5", c) == CellSeed(7, "E6", c) {
		t.Fatal("scopes must decorrelate streams")
	}
	if CellSeed(7, "E5", c) == CellSeed(8, "E5", c) {
		t.Fatal("root seeds must decorrelate streams")
	}
	rep1 := c
	rep1.Rep = 1
	if CellSeed(7, "E5", c) == CellSeed(7, "E5", rep1) {
		t.Fatal("replicates must decorrelate streams")
	}
	// The seed depends on the cell's identity, never its position in a
	// grid or its engine: that is what lets overlapping grids share
	// cached results.
	moved := c
	moved.Index = 99
	moved.Engine = EngineFast
	if CellSeed(7, "E5", c) != CellSeed(7, "E5", moved) {
		t.Fatal("cell seed must ignore Index and Engine")
	}
}

// runGrid is the shared fixture: a small grid with a runner whose
// output depends only on the cell and its source.
func runGrid(t *testing.T, workers int, checkpoint string) *ResultSet {
	t.Helper()
	g := Grid{
		Ns:         []int{8, 16},
		Ws:         []int{1, 2},
		Taus:       []float64{0.4, 0.45},
		Replicates: 4,
	}
	rs, err := Run(g, []string{"a", "b"}, func(c Cell, src *rng.Source) ([]float64, error) {
		return []float64{float64(c.N*c.W) * c.Tau, src.Float64()}, nil
	}, Options{Seed: 42, Scope: "test", Workers: workers, CheckpointPath: checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestSchedulingIndependence(t *testing.T) {
	// The tentpole regression: Workers 1 and Workers 8 must produce
	// byte-identical serialized tables, CSV, and JSON.
	seq := runGrid(t, 1, "")
	par := runGrid(t, 8, "")
	if seq.Table("t").String() != par.Table("t").String() {
		t.Fatal("tables differ across worker counts")
	}
	var csv1, csv8, js1, js8 bytes.Buffer
	if err := seq.WriteCSV(&csv1); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteCSV(&csv8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1.Bytes(), csv8.Bytes()) {
		t.Fatal("CSV bytes differ across worker counts")
	}
	if err := seq.WriteJSON(&js1); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteJSON(&js8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1.Bytes(), js8.Bytes()) {
		t.Fatal("JSON bytes differ across worker counts")
	}
	if seq.SummaryTable("s").String() != par.SummaryTable("s").String() {
		t.Fatal("summary tables differ across worker counts")
	}
}

func TestGroupsAggregation(t *testing.T) {
	g := Grid{Taus: []float64{0.4, 0.5}, Replicates: 3}
	rs, err := Run(g, []string{"v"}, func(c Cell, src *rng.Source) ([]float64, error) {
		if c.Tau == 0.5 && c.Rep == 1 {
			return []float64{math.NaN()}, nil // missing sample
		}
		return []float64{c.Tau * float64(c.Rep+1)}, nil
	}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	groups := rs.Groups()
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	// tau=0.4: samples 0.4, 0.8, 1.2 -> mean 0.8.
	if math.Abs(groups[0].Mean[0]-0.8) > 1e-12 || groups[0].Count[0] != 3 {
		t.Fatalf("group 0: mean=%v count=%v", groups[0].Mean[0], groups[0].Count[0])
	}
	// tau=0.5: NaN skipped, samples 0.5, 1.5 -> mean 1.0, count 2.
	if math.Abs(groups[1].Mean[0]-1.0) > 1e-12 || groups[1].Count[0] != 2 {
		t.Fatalf("group 1: mean=%v count=%v", groups[1].Mean[0], groups[1].Count[0])
	}
	col := groups[1].Column("v", rs.Columns)
	if len(col) != 2 {
		t.Fatalf("Column returned %v", col)
	}
	if got := groups[0].Column("missing", rs.Columns); got != nil {
		t.Fatalf("unknown column must return nil, got %v", got)
	}
}

func TestCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")

	// First run: abort partway by returning an error after some cells.
	g := Grid{Taus: []float64{0.4}, Replicates: 10}
	var calls int32
	_, err := Run(g, []string{"v"}, func(c Cell, src *rng.Source) ([]float64, error) {
		if atomic.AddInt32(&calls, 1) > 5 {
			return nil, os.ErrDeadlineExceeded
		}
		return []float64{float64(c.Index)}, nil
	}, Options{Seed: 1, Scope: "ck", Workers: 1, CheckpointPath: path})
	if err == nil {
		t.Fatal("first run must fail")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	// Second run: completed cells must be restored, not recomputed.
	var reruns []int
	rs, err := Run(g, []string{"v"}, func(c Cell, src *rng.Source) ([]float64, error) {
		reruns = append(reruns, c.Index)
		return []float64{float64(c.Index)}, nil
	}, Options{Seed: 1, Scope: "ck", Workers: 1, CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if len(reruns) >= 10 {
		t.Fatalf("resume recomputed everything: %v", reruns)
	}
	for i := 0; i < rs.Len(); i++ {
		c, vals := rs.At(i)
		if vals[0] != float64(c.Index) {
			t.Fatalf("cell %d has value %v", i, vals)
		}
	}

	// A different seed must reject the stale checkpoint.
	if _, err := Run(g, []string{"v"}, func(c Cell, src *rng.Source) ([]float64, error) {
		return []float64{0}, nil
	}, Options{Seed: 2, Scope: "ck", CheckpointPath: path}); err == nil {
		t.Fatal("fingerprint mismatch must be rejected")
	}
}

func TestNaNSurvivesCheckpointAndJSON(t *testing.T) {
	// NaN is the engine's missing-sample convention; it must survive
	// both the streaming checkpoint and the JSON artifact (encoded as
	// null), not abort the run.
	path := filepath.Join(t.TempDir(), "nan.ck.json")
	g := Grid{Replicates: 3}
	run := func() *ResultSet {
		rs, err := Run(g, []string{"v"}, func(c Cell, src *rng.Source) ([]float64, error) {
			if c.Rep == 1 {
				return []float64{math.NaN()}, nil
			}
			return []float64{float64(c.Rep)}, nil
		}, Options{Seed: 5, Scope: "nan", CheckpointPath: path})
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	first := run()
	// Second run restores all cells from the checkpoint, including the
	// NaN one.
	second := run()
	for i := 0; i < first.Len(); i++ {
		_, a := first.At(i)
		_, b := second.At(i)
		if math.IsNaN(a[0]) != math.IsNaN(b[0]) || (!math.IsNaN(a[0]) && a[0] != b[0]) {
			t.Fatalf("cell %d: %v restored as %v", i, a, b)
		}
	}
	var js bytes.Buffer
	if err := first.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON with NaN: %v", err)
	}
	if !bytes.Contains(js.Bytes(), []byte("null")) {
		t.Fatalf("NaN not encoded as null: %s", js.String())
	}
}

func TestRunStopsDispatchingAfterError(t *testing.T) {
	g := Grid{Replicates: 64}
	var calls int32
	_, err := Run(g, []string{"v"}, func(c Cell, src *rng.Source) ([]float64, error) {
		atomic.AddInt32(&calls, 1)
		return nil, os.ErrInvalid
	}, Options{Workers: 2})
	if err == nil {
		t.Fatal("want error")
	}
	// With 2 workers and an immediate failure, only a handful of cells
	// may have been dispatched before the feeder stopped.
	if n := atomic.LoadInt32(&calls); n > 8 {
		t.Fatalf("engine kept dispatching after failure: %d cells ran", n)
	}
}

func TestRunErrors(t *testing.T) {
	g := Grid{Replicates: 2}
	if _, err := Run(g, nil, func(c Cell, src *rng.Source) ([]float64, error) {
		return nil, nil
	}, Options{}); err == nil {
		t.Fatal("want error for empty columns")
	}
	if _, err := Run(g, []string{"a", "b"}, func(c Cell, src *rng.Source) ([]float64, error) {
		return []float64{1}, nil // wrong arity
	}, Options{}); err == nil {
		t.Fatal("want error for column arity mismatch")
	}
}

func TestParseGrid(t *testing.T) {
	g, err := ParseGrid("n=96,240 w=2:4 tau=0.40:0.48:0.02 p=0.5 dyn=glauber,kawasaki reps=8")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Ns, []int{96, 240}) {
		t.Fatalf("Ns = %v", g.Ns)
	}
	if !reflect.DeepEqual(g.Ws, []int{2, 3, 4}) {
		t.Fatalf("Ws = %v", g.Ws)
	}
	if len(g.Taus) != 5 || math.Abs(g.Taus[0]-0.40) > 1e-12 || math.Abs(g.Taus[4]-0.48) > 1e-12 {
		t.Fatalf("Taus = %v", g.Taus)
	}
	if !reflect.DeepEqual(g.Ps, []float64{0.5}) {
		t.Fatalf("Ps = %v", g.Ps)
	}
	if !reflect.DeepEqual(g.Dynamics, []string{Glauber, Kawasaki}) {
		t.Fatalf("Dynamics = %v", g.Dynamics)
	}
	if g.Replicates != 8 {
		t.Fatalf("Replicates = %d", g.Replicates)
	}
}

func TestParseGridErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus",                        // no '='
		"q=1",                          // unknown key
		"n=abc",                        // bad int
		"n=5:1",                        // descending range
		"tau=0.4:0.5",                  // float range without step
		"tau=1.5",                      // out of [0,1]
		"p=-0.1",                       // out of [0,1]
		"dyn=ising",                    // unknown dynamic
		"reps=0",                       // non-positive
		"n=1 n=2",                      // duplicate key
		"dyn=glauber dynamic=kawasaki", // duplicate via alias
		"w=1:5:0",                      // zero step
		"tau=0.4:0.3:0.05",             // descending float range
	} {
		if _, err := ParseGrid(spec); err == nil {
			t.Fatalf("spec %q must fail", spec)
		}
	}
}

func TestProgressAndTotals(t *testing.T) {
	g := Grid{Replicates: 6}
	var last int32
	rs, err := Run(g, []string{"v"}, func(c Cell, src *rng.Source) ([]float64, error) {
		return []float64{1}, nil
	}, Options{Workers: 3, Progress: func(done, total int, c Cell, cached bool) {
		if total != 6 {
			t.Errorf("total = %d", total)
		}
		if cached {
			t.Error("no cache attached, nothing can be cached")
		}
		atomic.StoreInt32(&last, int32(done))
	}})
	if err != nil {
		t.Fatal(err)
	}
	if last != 6 {
		t.Fatalf("final progress = %d", last)
	}
	if rs.Len() != 6 {
		t.Fatalf("len = %d", rs.Len())
	}
}

// TestStoreZeroRecompute is the caching contract: a second run of the
// same grid against the same store computes zero cells and produces
// byte-identical artifacts.
func TestStoreZeroRecompute(t *testing.T) {
	g := Grid{Ns: []int{8}, Ws: []int{1}, Taus: []float64{0.4, 0.45}, Replicates: 3}
	st := store.NewMemory()
	var computed int32
	run := func() *ResultSet {
		rs, err := Run(g, []string{"a", "b"}, func(c Cell, src *rng.Source) ([]float64, error) {
			atomic.AddInt32(&computed, 1)
			return []float64{float64(c.N) * c.Tau, src.Float64()}, nil
		}, Options{Seed: 11, Scope: "cache", Workers: 4, Store: st})
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	first := run()
	if first.Cache.Hits != 0 || first.Cache.Misses != 6 {
		t.Fatalf("first run cache = %+v", first.Cache)
	}
	atomic.StoreInt32(&computed, 0)
	second := run()
	if n := atomic.LoadInt32(&computed); n != 0 {
		t.Fatalf("second run recomputed %d cells", n)
	}
	if second.Cache.Hits != 6 || second.Cache.Misses != 0 {
		t.Fatalf("second run cache = %+v", second.Cache)
	}
	var a, b bytes.Buffer
	if err := first.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := second.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("cached run is not byte-identical")
	}
}

// TestStoreOverlappingGrids asserts that a grid overlapping a
// previously computed one only computes its new cells, and that the
// shared cells carry identical values — the content-addressed seeds
// make a cell's result independent of which grid computed it.
func TestStoreOverlappingGrids(t *testing.T) {
	st := store.NewMemory()
	cols := []string{"v"}
	var computed []string
	runner := func(c Cell, src *rng.Source) ([]float64, error) {
		computed = append(computed, c.GroupKey())
		return []float64{src.Float64()}, nil
	}
	opts := Options{Seed: 3, Scope: "overlap", Workers: 1, Store: st}

	a := Grid{Ns: []int{8}, Ws: []int{1}, Taus: []float64{0.40, 0.42}, Replicates: 2}
	ra, err := Run(a, cols, runner, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(computed) != 4 {
		t.Fatalf("first grid computed %d cells", len(computed))
	}

	computed = nil
	b := Grid{Ns: []int{8}, Ws: []int{1}, Taus: []float64{0.42, 0.44}, Replicates: 2}
	rb, err := Run(b, cols, runner, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range computed {
		if strings.Contains(k, "0.42") {
			t.Fatalf("overlapping cell recomputed: %s", k)
		}
	}
	if rb.Cache.Hits != 2 || rb.Cache.Misses != 2 {
		t.Fatalf("overlap cache = %+v", rb.Cache)
	}
	// The tau=0.42 cells must agree across the two grids, even though
	// their grid indices differ.
	val := func(rs *ResultSet, tau float64, rep int) float64 {
		for i, c := range rs.Cells {
			if c.Tau == tau && c.Rep == rep {
				return rs.Values[i][0]
			}
		}
		t.Fatalf("cell tau=%v rep=%d not found", tau, rep)
		return 0
	}
	for rep := 0; rep < 2; rep++ {
		if val(ra, 0.42, rep) != val(rb, 0.42, rep) {
			t.Fatalf("shared cell (rep %d) differs across grids", rep)
		}
	}
}

// TestCheckpointFillsStore asserts cells restored from a checkpoint
// are propagated into the shared store: the checkpoint is a view over
// the store, not a separate persistence silo.
func TestCheckpointFillsStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	g := Grid{Replicates: 4}
	cols := []string{"v"}
	runner := func(c Cell, src *rng.Source) ([]float64, error) {
		return []float64{float64(c.Rep)}, nil
	}
	// First run: checkpoint only.
	if _, err := Run(g, cols, runner, Options{Seed: 9, Scope: "fill", CheckpointPath: path}); err != nil {
		t.Fatal(err)
	}
	// Second run: checkpoint + store; everything restores from the
	// checkpoint and lands in the store.
	st := store.NewMemory()
	rs, err := Run(g, cols, runner, Options{Seed: 9, Scope: "fill", CheckpointPath: path, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Cache.Hits != 4 || rs.Cache.Misses != 0 {
		t.Fatalf("cache = %+v", rs.Cache)
	}
	if st.Len() != 4 {
		t.Fatalf("store holds %d cells, want 4", st.Len())
	}
	// Third run: store only (no checkpoint) — full hit.
	rs3, err := Run(g, cols, runner, Options{Seed: 9, Scope: "fill", Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if rs3.Cache.Hits != 4 || rs3.Cache.Misses != 0 {
		t.Fatalf("store-only cache = %+v", rs3.Cache)
	}
}

// failingStore errors on every operation after a threshold, standing
// in for a full disk mid-run.
type failingStore struct {
	inner *store.Memory
	puts  int32
	after int32
}

func (s *failingStore) Get(key string) ([]float64, bool, error) { return s.inner.Get(key) }

func (s *failingStore) Put(key string, values []float64) error {
	if atomic.AddInt32(&s.puts, 1) > s.after {
		return os.ErrClosed
	}
	return s.inner.Put(key, values)
}

// TestStoreFailureDegrades asserts a result-store failure never aborts
// a sweep: the store is a cache, so the run finishes by computing and
// reports the failure through Cache.Err.
func TestStoreFailureDegrades(t *testing.T) {
	g := Grid{Replicates: 6}
	st := &failingStore{inner: store.NewMemory(), after: 2}
	rs, err := Run(g, []string{"v"}, func(c Cell, src *rng.Source) ([]float64, error) {
		return []float64{float64(c.Rep)}, nil
	}, Options{Seed: 4, Scope: "degrade", Workers: 1, Store: st})
	if err != nil {
		t.Fatalf("store failure must not abort the run: %v", err)
	}
	if rs.Cache.Err == "" {
		t.Fatal("store failure must be reported via Cache.Err")
	}
	if rs.Cache.Misses != 6 {
		t.Fatalf("cache = %+v, want all 6 computed", rs.Cache)
	}
	for i := 0; i < rs.Len(); i++ {
		c, vals := rs.At(i)
		if vals[0] != float64(c.Rep) {
			t.Fatalf("cell %d has value %v", i, vals)
		}
	}
	// After the first failure the store is disabled: no further Puts.
	if n := atomic.LoadInt32(&st.puts); n != 3 {
		t.Fatalf("store saw %d puts, want 3 (2 ok + 1 failing)", n)
	}
}
