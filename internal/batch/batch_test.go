package batch

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"gridseg/internal/rng"
)

func TestGridCellsEnumeration(t *testing.T) {
	g := Grid{
		Ns:         []int{10, 20},
		Ws:         []int{1},
		Taus:       []float64{0.4, 0.5},
		Replicates: 3,
	}
	cells := g.Cells()
	if len(cells) != g.Size() || len(cells) != 12 {
		t.Fatalf("got %d cells, want 12", len(cells))
	}
	// Canonical order: replicates innermost, indices sequential.
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
	}
	if cells[0].N != 10 || cells[0].Tau != 0.4 || cells[0].Rep != 0 {
		t.Fatalf("first cell %+v", cells[0])
	}
	if cells[2].Rep != 2 || cells[3].Tau != 0.5 || cells[3].Rep != 0 {
		t.Fatalf("replicates not innermost: %+v %+v", cells[2], cells[3])
	}
	// Defaults fill empty axes.
	if cells[0].P != 0.5 || cells[0].Dynamic != Glauber {
		t.Fatalf("defaults not applied: %+v", cells[0])
	}
}

func TestCellSourceDeterministic(t *testing.T) {
	a := cellSource(7, "E5", 3).Uint64()
	b := cellSource(7, "E5", 3).Uint64()
	if a != b {
		t.Fatal("cell source must be deterministic")
	}
	if cellSource(7, "E5", 3).Uint64() == cellSource(7, "E6", 3).Uint64() {
		t.Fatal("scopes must decorrelate streams")
	}
	if cellSource(7, "E5", 3).Uint64() == cellSource(7, "E5", 4).Uint64() {
		t.Fatal("cells must decorrelate streams")
	}
}

// runGrid is the shared fixture: a small grid with a runner whose
// output depends only on the cell and its source.
func runGrid(t *testing.T, workers int, checkpoint string) *ResultSet {
	t.Helper()
	g := Grid{
		Ns:         []int{8, 16},
		Ws:         []int{1, 2},
		Taus:       []float64{0.4, 0.45},
		Replicates: 4,
	}
	rs, err := Run(g, []string{"a", "b"}, func(c Cell, src *rng.Source) ([]float64, error) {
		return []float64{float64(c.N*c.W) * c.Tau, src.Float64()}, nil
	}, Options{Seed: 42, Scope: "test", Workers: workers, CheckpointPath: checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestSchedulingIndependence(t *testing.T) {
	// The tentpole regression: Workers 1 and Workers 8 must produce
	// byte-identical serialized tables, CSV, and JSON.
	seq := runGrid(t, 1, "")
	par := runGrid(t, 8, "")
	if seq.Table("t").String() != par.Table("t").String() {
		t.Fatal("tables differ across worker counts")
	}
	var csv1, csv8, js1, js8 bytes.Buffer
	if err := seq.WriteCSV(&csv1); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteCSV(&csv8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1.Bytes(), csv8.Bytes()) {
		t.Fatal("CSV bytes differ across worker counts")
	}
	if err := seq.WriteJSON(&js1); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteJSON(&js8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1.Bytes(), js8.Bytes()) {
		t.Fatal("JSON bytes differ across worker counts")
	}
	if seq.SummaryTable("s").String() != par.SummaryTable("s").String() {
		t.Fatal("summary tables differ across worker counts")
	}
}

func TestGroupsAggregation(t *testing.T) {
	g := Grid{Taus: []float64{0.4, 0.5}, Replicates: 3}
	rs, err := Run(g, []string{"v"}, func(c Cell, src *rng.Source) ([]float64, error) {
		if c.Tau == 0.5 && c.Rep == 1 {
			return []float64{math.NaN()}, nil // missing sample
		}
		return []float64{c.Tau * float64(c.Rep+1)}, nil
	}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	groups := rs.Groups()
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	// tau=0.4: samples 0.4, 0.8, 1.2 -> mean 0.8.
	if math.Abs(groups[0].Mean[0]-0.8) > 1e-12 || groups[0].Count[0] != 3 {
		t.Fatalf("group 0: mean=%v count=%v", groups[0].Mean[0], groups[0].Count[0])
	}
	// tau=0.5: NaN skipped, samples 0.5, 1.5 -> mean 1.0, count 2.
	if math.Abs(groups[1].Mean[0]-1.0) > 1e-12 || groups[1].Count[0] != 2 {
		t.Fatalf("group 1: mean=%v count=%v", groups[1].Mean[0], groups[1].Count[0])
	}
	col := groups[1].Column("v", rs.Columns)
	if len(col) != 2 {
		t.Fatalf("Column returned %v", col)
	}
	if got := groups[0].Column("missing", rs.Columns); got != nil {
		t.Fatalf("unknown column must return nil, got %v", got)
	}
}

func TestCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")

	// First run: abort partway by returning an error after some cells.
	g := Grid{Taus: []float64{0.4}, Replicates: 10}
	var calls int32
	_, err := Run(g, []string{"v"}, func(c Cell, src *rng.Source) ([]float64, error) {
		if atomic.AddInt32(&calls, 1) > 5 {
			return nil, os.ErrDeadlineExceeded
		}
		return []float64{float64(c.Index)}, nil
	}, Options{Seed: 1, Scope: "ck", Workers: 1, CheckpointPath: path})
	if err == nil {
		t.Fatal("first run must fail")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	// Second run: completed cells must be restored, not recomputed.
	var reruns []int
	rs, err := Run(g, []string{"v"}, func(c Cell, src *rng.Source) ([]float64, error) {
		reruns = append(reruns, c.Index)
		return []float64{float64(c.Index)}, nil
	}, Options{Seed: 1, Scope: "ck", Workers: 1, CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if len(reruns) >= 10 {
		t.Fatalf("resume recomputed everything: %v", reruns)
	}
	for i := 0; i < rs.Len(); i++ {
		c, vals := rs.At(i)
		if vals[0] != float64(c.Index) {
			t.Fatalf("cell %d has value %v", i, vals)
		}
	}

	// A different seed must reject the stale checkpoint.
	if _, err := Run(g, []string{"v"}, func(c Cell, src *rng.Source) ([]float64, error) {
		return []float64{0}, nil
	}, Options{Seed: 2, Scope: "ck", CheckpointPath: path}); err == nil {
		t.Fatal("fingerprint mismatch must be rejected")
	}
}

func TestNaNSurvivesCheckpointAndJSON(t *testing.T) {
	// NaN is the engine's missing-sample convention; it must survive
	// both the streaming checkpoint and the JSON artifact (encoded as
	// null), not abort the run.
	path := filepath.Join(t.TempDir(), "nan.ck.json")
	g := Grid{Replicates: 3}
	run := func() *ResultSet {
		rs, err := Run(g, []string{"v"}, func(c Cell, src *rng.Source) ([]float64, error) {
			if c.Rep == 1 {
				return []float64{math.NaN()}, nil
			}
			return []float64{float64(c.Rep)}, nil
		}, Options{Seed: 5, Scope: "nan", CheckpointPath: path})
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	first := run()
	// Second run restores all cells from the checkpoint, including the
	// NaN one.
	second := run()
	for i := 0; i < first.Len(); i++ {
		_, a := first.At(i)
		_, b := second.At(i)
		if math.IsNaN(a[0]) != math.IsNaN(b[0]) || (!math.IsNaN(a[0]) && a[0] != b[0]) {
			t.Fatalf("cell %d: %v restored as %v", i, a, b)
		}
	}
	var js bytes.Buffer
	if err := first.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON with NaN: %v", err)
	}
	if !bytes.Contains(js.Bytes(), []byte("null")) {
		t.Fatalf("NaN not encoded as null: %s", js.String())
	}
}

func TestRunStopsDispatchingAfterError(t *testing.T) {
	g := Grid{Replicates: 64}
	var calls int32
	_, err := Run(g, []string{"v"}, func(c Cell, src *rng.Source) ([]float64, error) {
		atomic.AddInt32(&calls, 1)
		return nil, os.ErrInvalid
	}, Options{Workers: 2})
	if err == nil {
		t.Fatal("want error")
	}
	// With 2 workers and an immediate failure, only a handful of cells
	// may have been dispatched before the feeder stopped.
	if n := atomic.LoadInt32(&calls); n > 8 {
		t.Fatalf("engine kept dispatching after failure: %d cells ran", n)
	}
}

func TestRunErrors(t *testing.T) {
	g := Grid{Replicates: 2}
	if _, err := Run(g, nil, func(c Cell, src *rng.Source) ([]float64, error) {
		return nil, nil
	}, Options{}); err == nil {
		t.Fatal("want error for empty columns")
	}
	if _, err := Run(g, []string{"a", "b"}, func(c Cell, src *rng.Source) ([]float64, error) {
		return []float64{1}, nil // wrong arity
	}, Options{}); err == nil {
		t.Fatal("want error for column arity mismatch")
	}
}

func TestParseGrid(t *testing.T) {
	g, err := ParseGrid("n=96,240 w=2:4 tau=0.40:0.48:0.02 p=0.5 dyn=glauber,kawasaki reps=8")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Ns, []int{96, 240}) {
		t.Fatalf("Ns = %v", g.Ns)
	}
	if !reflect.DeepEqual(g.Ws, []int{2, 3, 4}) {
		t.Fatalf("Ws = %v", g.Ws)
	}
	if len(g.Taus) != 5 || math.Abs(g.Taus[0]-0.40) > 1e-12 || math.Abs(g.Taus[4]-0.48) > 1e-12 {
		t.Fatalf("Taus = %v", g.Taus)
	}
	if !reflect.DeepEqual(g.Ps, []float64{0.5}) {
		t.Fatalf("Ps = %v", g.Ps)
	}
	if !reflect.DeepEqual(g.Dynamics, []string{Glauber, Kawasaki}) {
		t.Fatalf("Dynamics = %v", g.Dynamics)
	}
	if g.Replicates != 8 {
		t.Fatalf("Replicates = %d", g.Replicates)
	}
}

func TestParseGridErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus",                        // no '='
		"q=1",                          // unknown key
		"n=abc",                        // bad int
		"n=5:1",                        // descending range
		"tau=0.4:0.5",                  // float range without step
		"tau=1.5",                      // out of [0,1]
		"p=-0.1",                       // out of [0,1]
		"dyn=ising",                    // unknown dynamic
		"reps=0",                       // non-positive
		"n=1 n=2",                      // duplicate key
		"dyn=glauber dynamic=kawasaki", // duplicate via alias
		"w=1:5:0",                      // zero step
		"tau=0.4:0.3:0.05",             // descending float range
	} {
		if _, err := ParseGrid(spec); err == nil {
			t.Fatalf("spec %q must fail", spec)
		}
	}
}

func TestProgressAndTotals(t *testing.T) {
	g := Grid{Replicates: 6}
	var last int32
	rs, err := Run(g, []string{"v"}, func(c Cell, src *rng.Source) ([]float64, error) {
		return []float64{1}, nil
	}, Options{Workers: 3, Progress: func(done, total int, c Cell) {
		if total != 6 {
			t.Errorf("total = %d", total)
		}
		atomic.StoreInt32(&last, int32(done))
	}})
	if err != nil {
		t.Fatal(err)
	}
	if last != 6 {
		t.Fatalf("final progress = %d", last)
	}
	if rs.Len() != 6 {
		t.Fatalf("len = %d", rs.Len())
	}
}
