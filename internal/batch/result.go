package batch

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"gridseg/internal/report"
)

// CacheStats counts how the cells of a run were satisfied.
type CacheStats struct {
	// Hits is the number of cells served from the checkpoint or the
	// content-addressed result store without recomputation.
	Hits int
	// Misses is the number of cells computed by the runner this run.
	Misses int
	// Err is the first result-store failure encountered, if any. The
	// store is only a cache, so the engine disables it and finishes
	// the run by computing instead of aborting; callers should surface
	// the message (the affected cells were simply not cached).
	Err string
}

// ResultSet holds the metric vectors of a completed run, indexed by
// cell in canonical grid order.
type ResultSet struct {
	Grid    Grid
	Columns []string
	Cells   []Cell
	Values  [][]float64
	// Cache reports how many cells were served from a cache versus
	// computed. It never affects the result bytes.
	Cache CacheStats
}

// Len returns the number of cells.
func (rs *ResultSet) Len() int { return len(rs.Cells) }

// At returns cell i and its metric vector.
func (rs *ResultSet) At(i int) (Cell, []float64) { return rs.Cells[i], rs.Values[i] }

// Group aggregates the replicates of one parameter combination.
type Group struct {
	// Cell is the representative cell (replicate 0) of the group.
	Cell Cell
	// Values holds the raw metric vectors of the replicates in
	// replicate order.
	Values [][]float64
	// Count is the number of non-NaN samples per column.
	Count []int
	// Mean and Std are per-column moments over the non-NaN samples;
	// NaN when no sample exists (Std also NaN for a single sample).
	Mean []float64
	Std  []float64
}

// Column returns the non-NaN samples of the named column.
func (g Group) Column(name string, columns []string) []float64 {
	for ci, c := range columns {
		if c != name {
			continue
		}
		var out []float64
		for _, vals := range g.Values {
			if !math.IsNaN(vals[ci]) {
				out = append(out, vals[ci])
			}
		}
		return out
	}
	return nil
}

// Groups folds the replicates of each parameter combination, in
// canonical grid order.
func (rs *ResultSet) Groups() []Group {
	var out []Group
	var cur *Group
	key := ""
	for i, c := range rs.Cells {
		if cur == nil || c.GroupKey() != key {
			out = append(out, Group{Cell: c})
			cur = &out[len(out)-1]
			key = c.GroupKey()
		}
		cur.Values = append(cur.Values, rs.Values[i])
	}
	for gi := range out {
		g := &out[gi]
		nc := len(rs.Columns)
		g.Count = make([]int, nc)
		g.Mean = make([]float64, nc)
		g.Std = make([]float64, nc)
		for ci := 0; ci < nc; ci++ {
			var sum float64
			for _, vals := range g.Values {
				if vals == nil || math.IsNaN(vals[ci]) {
					continue
				}
				sum += vals[ci]
				g.Count[ci]++
			}
			if g.Count[ci] == 0 {
				g.Mean[ci] = math.NaN()
				g.Std[ci] = math.NaN()
				continue
			}
			mean := sum / float64(g.Count[ci])
			g.Mean[ci] = mean
			if g.Count[ci] < 2 {
				g.Std[ci] = math.NaN()
				continue
			}
			var ss float64
			for _, vals := range g.Values {
				if vals == nil || math.IsNaN(vals[ci]) {
					continue
				}
				d := vals[ci] - mean
				ss += d * d
			}
			g.Std[ci] = math.Sqrt(ss / float64(g.Count[ci]-1))
		}
	}
	return out
}

// sweepsScenario reports whether any scenario axis of the (normalized)
// grid deviates from the paper's defaults. Scenario columns appear in
// tables and artifacts only then, so default sweeps keep their
// pre-scenario shapes.
func (g Grid) sweepsScenario() bool {
	n := g.normalized()
	if len(n.Boundaries) > 1 || n.Boundaries[0] != BoundaryTorus {
		return true
	}
	if len(n.Rhos) > 1 || n.Rhos[0] != 0 {
		return true
	}
	return len(n.TauDists) > 1 || n.TauDists[0] != TauDistGlobal
}

// paramColumns returns the header of the parameter part of a row.
func (rs *ResultSet) paramColumns() []string {
	cols := []string{"dynamic", "n", "w", "tau", "p"}
	if rs.Grid.sweepsScenario() {
		cols = append(cols, "boundary", "rho", "taudist")
	}
	if rs.Grid.ExtraName != "" {
		cols = append(cols, rs.Grid.ExtraName)
	}
	return append(cols, "rep")
}

// paramCells renders the parameter part of the row for a cell.
func (rs *ResultSet) paramCells(c Cell) []string {
	cells := []string{
		c.Dynamic,
		strconv.Itoa(c.N),
		strconv.Itoa(c.W),
		fullFloat(c.Tau),
		fullFloat(c.P),
	}
	if rs.Grid.sweepsScenario() {
		cells = append(cells, c.Boundary, fullFloat(c.Rho), c.TauDist)
	}
	if rs.Grid.ExtraName != "" {
		cells = append(cells, fullFloat(c.Extra))
	}
	return append(cells, strconv.Itoa(c.Rep))
}

// fullFloat renders a float at full precision ('g', shortest exact).
func fullFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Table renders every cell as one row (parameters then metrics).
func (rs *ResultSet) Table(title string) *report.Table {
	t := report.NewTable(title, append(rs.paramColumns(), rs.Columns...)...)
	for i, c := range rs.Cells {
		row := rs.paramCells(c)
		for _, v := range rs.Values[i] {
			row = append(row, fullFloat(v))
		}
		t.AddRow(row...)
	}
	return t
}

// WriteCSV streams the full per-replicate result table as CSV. The
// bytes depend only on (grid, seed, scope, runner), never on worker
// count or scheduling.
func (rs *ResultSet) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append(rs.paramColumns(), rs.Columns...)); err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	for i, c := range rs.Cells {
		row := rs.paramCells(c)
		for _, v := range rs.Values[i] {
			row = append(row, fullFloat(v))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("batch: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	return nil
}

// nanFloat is a float64 whose JSON encoding maps NaN (the engine's
// missing-sample marker, which encoding/json rejects) to null and
// back.
type nanFloat float64

// MarshalJSON encodes NaN as null.
func (f nanFloat) MarshalJSON() ([]byte, error) {
	if math.IsNaN(float64(f)) {
		return []byte("null"), nil
	}
	return []byte(strconv.FormatFloat(float64(f), 'g', -1, 64)), nil
}

// UnmarshalJSON decodes null as NaN.
func (f *nanFloat) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*f = nanFloat(math.NaN())
		return nil
	}
	v, err := strconv.ParseFloat(string(data), 64)
	if err != nil {
		return err
	}
	*f = nanFloat(v)
	return nil
}

// nanFloats converts a metric vector for JSON encoding.
func nanFloats(vs []float64) []nanFloat {
	out := make([]nanFloat, len(vs))
	for i, v := range vs {
		out[i] = nanFloat(v)
	}
	return out
}

// jsonResult is the JSON shape of one cell result. The scenario
// fields are populated only for grids that sweep a scenario axis
// (like the CSV columns), so default sweeps keep their pre-scenario
// shape.
type jsonResult struct {
	Index    int        `json:"index"`
	Dynamic  string     `json:"dynamic"`
	N        int        `json:"n"`
	W        int        `json:"w"`
	Tau      float64    `json:"tau"`
	P        float64    `json:"p"`
	Boundary string     `json:"boundary,omitempty"`
	Rho      *float64   `json:"rho,omitempty"`
	TauDist  string     `json:"taudist,omitempty"`
	Extra    float64    `json:"extra,omitempty"`
	Rep      int        `json:"rep"`
	Values   []nanFloat `json:"values"`
}

// WriteJSON emits the result set as a single JSON document with the
// column header and one record per cell.
func (rs *ResultSet) WriteJSON(w io.Writer) error {
	doc := struct {
		ExtraName string       `json:"extra_name,omitempty"`
		Columns   []string     `json:"columns"`
		Results   []jsonResult `json:"results"`
	}{ExtraName: rs.Grid.ExtraName, Columns: rs.Columns}
	scenario := rs.Grid.sweepsScenario()
	for i, c := range rs.Cells {
		jr := jsonResult{
			Index: c.Index, Dynamic: c.Dynamic, N: c.N, W: c.W,
			Tau: c.Tau, P: c.P, Extra: c.Extra, Rep: c.Rep,
			Values: nanFloats(rs.Values[i]),
		}
		if scenario {
			rho := c.Rho
			jr.Boundary, jr.Rho, jr.TauDist = c.Boundary, &rho, c.TauDist
		}
		doc.Results = append(doc.Results, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	return nil
}

// SummaryTable renders one row per parameter combination with the
// per-column mean over replicates (NaN samples skipped).
func (rs *ResultSet) SummaryTable(title string) *report.Table {
	scenario := rs.Grid.sweepsScenario()
	cols := []string{"dynamic", "n", "w", "tau", "p"}
	if scenario {
		cols = append(cols, "boundary", "rho", "taudist")
	}
	if rs.Grid.ExtraName != "" {
		cols = append(cols, rs.Grid.ExtraName)
	}
	cols = append(cols, "replicates")
	for _, c := range rs.Columns {
		cols = append(cols, "mean "+c)
	}
	t := report.NewTable(title, cols...)
	for _, g := range rs.Groups() {
		row := []string{
			g.Cell.Dynamic,
			strconv.Itoa(g.Cell.N),
			strconv.Itoa(g.Cell.W),
			fullFloat(g.Cell.Tau),
			fullFloat(g.Cell.P),
		}
		if scenario {
			row = append(row, g.Cell.Boundary, fullFloat(g.Cell.Rho), g.Cell.TauDist)
		}
		if rs.Grid.ExtraName != "" {
			row = append(row, fullFloat(g.Cell.Extra))
		}
		row = append(row, strconv.Itoa(len(g.Values)))
		for _, m := range g.Mean {
			row = append(row, fullFloat(m))
		}
		t.AddRow(row...)
	}
	return t
}
