package batch

import (
	"errors"
	"testing"
	"time"

	"gridseg/internal/grid"
)

// TestParseGridScenarioAxes covers the boundary=, rho=, and taudist=
// keys, including canonicalization of equivalent taudist spellings.
func TestParseGridScenarioAxes(t *testing.T) {
	g, err := ParseGrid("n=64 w=2 tau=0.42 boundary=torus,open rho=0:0.1:0.05 taudist=global|mix:0.350,0.45:0.50")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Boundaries) != 2 || g.Boundaries[0] != BoundaryTorus || g.Boundaries[1] != BoundaryOpen {
		t.Errorf("boundaries = %v", g.Boundaries)
	}
	if len(g.Rhos) != 3 || g.Rhos[2] != 0.1 {
		t.Errorf("rhos = %v", g.Rhos)
	}
	if len(g.TauDists) != 2 || g.TauDists[1] != "mix:0.35,0.45:0.5" {
		t.Errorf("taudists = %v (want canonical forms)", g.TauDists)
	}
	if got, want := g.Size(), 2*3*2; got != want {
		t.Errorf("Size = %d, want %d", got, want)
	}
	cells := g.Cells()
	if len(cells) != g.Size() {
		t.Fatalf("Cells/Size mismatch")
	}
	last := cells[len(cells)-1]
	if last.Boundary != BoundaryOpen || last.Rho != 0.1 || last.TauDist != "mix:0.35,0.45:0.5" {
		t.Errorf("last cell scenario = %q/%v/%q", last.Boundary, last.Rho, last.TauDist)
	}
}

// TestParseGridScenarioRejects pins the scenario-axis validation.
func TestParseGridScenarioRejects(t *testing.T) {
	for _, spec := range []string{
		"n=64 w=2 tau=0.42 boundary=klein",
		"n=64 w=2 tau=0.42 rho=1",
		"n=64 w=2 tau=0.42 rho=-0.1",
		"n=64 w=2 tau=0.42 taudist=mix:2,3:0.5",
		"n=64 w=2 tau=0.42 taudist=gauss:0:1",
		"n=64 w=2 tau=0.42 dyn=move",
		"n=64 w=2 tau=0.42 dyn=move rho=0,0.1",
		"n=64 w=2 tau=0.42 dyn=glauber,move rho=0.1,0",
	} {
		if _, err := ParseGrid(spec); err == nil {
			t.Errorf("spec %q accepted, want error", spec)
		}
	}
	if _, err := ParseGrid("n=64 w=2 tau=0.42 dyn=move rho=0.05,0.1"); err != nil {
		t.Errorf("valid move grid rejected: %v", err)
	}
}

// TestParseGridWindowValidation pins the typed error for horizons
// whose window would wrap onto the torus: user-supplied (n, w) pairs
// fail at parse time with grid.ErrWindowTooLarge instead of panicking
// inside a sweep.
func TestParseGridWindowValidation(t *testing.T) {
	_, err := ParseGrid("n=5 w=3 tau=0.42")
	if !errors.Is(err, grid.ErrWindowTooLarge) {
		t.Fatalf("n=5 w=3: err = %v, want grid.ErrWindowTooLarge", err)
	}
	// One bad combination in a product poisons the grid.
	_, err = ParseGrid("n=5,64 w=1,3 tau=0.42")
	if !errors.Is(err, grid.ErrWindowTooLarge) {
		t.Fatalf("product with bad pair: err = %v, want grid.ErrWindowTooLarge", err)
	}
	if _, err := ParseGrid("n=7 w=3 tau=0.42"); err != nil {
		t.Fatalf("n=7 w=3 rejected: %v", err)
	}
}

// TestCellSeedScenarioStability pins the seed-compatibility contract:
// default-scenario cells keep their pre-scenario identity strings and
// hence their derived seeds, while any non-default coordinate forks
// the stream.
func TestCellSeedScenarioStability(t *testing.T) {
	base := Cell{N: 96, W: 2, Tau: 0.42, P: 0.5, Dynamic: Glauber, Rep: 3}
	normalized := base
	normalized.Boundary, normalized.TauDist = BoundaryTorus, TauDistGlobal
	if CellSeed(7, "grid", base) != CellSeed(7, "grid", normalized) {
		t.Error("normalized default scenario changed the cell seed")
	}
	// The exact identity string is the seed contract; a change here
	// silently reshuffles every default cell's random stream.
	if got, want := base.identity(), "dyn=glauber;n=96;w=2;tau=0.42;p=0.5;x=0;rep=3"; got != want {
		t.Errorf("default identity = %q, want %q", got, want)
	}
	open := base
	open.Boundary = BoundaryOpen
	vac := base
	vac.Rho = 0.05
	het := base
	het.TauDist = "mix:0.35,0.45:0.5"
	seeds := map[uint64]string{CellSeed(7, "grid", base): "default"}
	for _, c := range []Cell{open, vac, het} {
		s := CellSeed(7, "grid", c)
		if prev, dup := seeds[s]; dup {
			t.Errorf("cell %+v shares a seed with %s", c, prev)
		}
		seeds[s] = c.identity()
	}
	if got, want := open.identity(), "dyn=glauber;n=96;w=2;tau=0.42;p=0.5;x=0;rep=3;b=open;rho=0;taudist=global"; got != want {
		t.Errorf("open identity = %q, want %q", got, want)
	}
}

// TestGroupKeySeparatesScenarios keeps replicate folding from merging
// cells that differ only in a scenario coordinate.
func TestGroupKeySeparatesScenarios(t *testing.T) {
	a := Cell{N: 32, W: 1, Tau: 0.42, P: 0.5, Dynamic: Glauber, Boundary: BoundaryTorus, TauDist: TauDistGlobal}
	b := a
	b.Boundary = BoundaryOpen
	c := a
	c.Rho = 0.05
	if a.GroupKey() == b.GroupKey() || a.GroupKey() == c.GroupKey() {
		t.Error("scenario coordinates missing from GroupKey")
	}
}

// TestFingerprintScenarioAxes: grids differing only in a scenario axis
// must not share checkpoints.
func TestFingerprintScenarioAxes(t *testing.T) {
	base := Grid{Ns: []int{32}, Ws: []int{1}, Taus: []float64{0.42}}
	open := base
	open.Boundaries = []string{BoundaryOpen}
	cols := []string{"a"}
	if base.Fingerprint(1, "grid", cols) == open.Fingerprint(1, "grid", cols) {
		t.Error("boundary axis missing from fingerprint")
	}
	vac := base
	vac.Rhos = []float64{0.05}
	if base.Fingerprint(1, "grid", cols) == vac.Fingerprint(1, "grid", cols) {
		t.Error("rho axis missing from fingerprint")
	}
}

// TestParseGridWindowValidationScales guards the validation cost: two
// maximal axes must be rejected (or accepted) in well under a second,
// not via an O(|Ns|*|Ws|) pair scan.
func TestParseGridWindowValidationScales(t *testing.T) {
	start := time.Now()
	_, err := ParseGrid("n=3000000:3262143 w=1:262144 tau=0.42")
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("ParseGrid took %v on maximal axes", elapsed)
	}
	// The grid itself is far beyond MaxGridCells, so it must error.
	if err == nil {
		t.Fatal("oversized grid accepted")
	}
}
