// Package difftest is the differential-testing harness that pins the
// bit-packed fast engines — Glauber, Kawasaki, and Move, on every
// topology scenario — to the reference dynamics. It drives two models built
// from identical configurations — one forced onto the reference
// engine, one onto the engine under test — through the same event
// sequence, and demands byte-identical spin arrays, flip counts, Phi
// trajectories, clocks, and segregation Stats at a configurable event
// cadence and at fixation. Any divergence is reported with the cell,
// the event number, and the first differing observable.
//
// The harness is the correctness contract that lets every other layer
// (sim experiments, batch sweeps, cmd/sweep) treat engine selection as
// a pure execution detail.
package difftest

import (
	"fmt"
	"math"

	"gridseg"
	"gridseg/internal/batch"
	"gridseg/internal/dynamics/fastglauber"
	"gridseg/internal/fastgrid"
	"gridseg/internal/measure"
)

// Cell is one differential test point.
type Cell struct {
	N       int
	W       int
	Tau     float64
	P       float64
	Dynamic gridseg.Dynamic
	Seed    uint64
	// Scenario coordinates (zero values are the paper's setting).
	Boundary gridseg.Boundary
	Rho      float64
	TauDist  string
	// Par > 0 puts the engine under test on the parallel engine in its
	// deterministic delegation mode (ParStrips = 1) with Par workers,
	// pinning the parallel plumbing to the same lockstep bit-identity
	// contract as the sequential engines — for every worker count.
	Par int
}

// defaultScenario reports whether the cell runs the paper's setting,
// the precondition for the fast engine.
func (c Cell) defaultScenario() bool {
	return batch.DefaultScenario(c.Boundary.String(), c.Rho, c.TauDist)
}

// String renders the cell compactly for failure messages.
func (c Cell) String() string {
	dyn := "glauber"
	switch c.Dynamic {
	case gridseg.Kawasaki:
		dyn = "kawasaki"
	case gridseg.Move:
		dyn = "move"
	}
	s := fmt.Sprintf("n=%d w=%d tau=%v p=%v dyn=%s seed=%d", c.N, c.W, c.Tau, c.P, dyn, c.Seed)
	if !c.defaultScenario() {
		s += fmt.Sprintf(" boundary=%s rho=%v taudist=%s", c.Boundary, c.Rho, c.TauDist)
	}
	if c.Par > 0 {
		s += fmt.Sprintf(" par=%d", c.Par)
	}
	return s
}

// Options tunes a differential run.
type Options struct {
	// CheckEvery is the full-state comparison cadence in events
	// (default 4096). Cheap checks (flip counts, clocks, mobility)
	// run after every event regardless.
	CheckEvery int64
	// MaxEvents caps the events driven per cell; <= 0 means run to
	// fixation (Kawasaki cells should set a cap: pair dynamics need
	// not terminate).
	MaxEvents int64
}

func (o Options) checkEvery() int64 {
	if o.CheckEvery > 0 {
		return o.CheckEvery
	}
	return 4096
}

// Result summarizes one compared cell.
type Result struct {
	Cell   Cell
	Events int64 // effective events driven (per engine)
	Checks int64 // full-state comparisons performed
}

// Compare builds the cell's model twice — reference engine vs the fast
// engine where the fast engine applies (all three dynamics on every
// scenario, within the packed-lane horizon capacity), vs auto
// elsewhere (oversized horizons, where auto must resolve to the
// reference engine) — and steps both in lockstep until fixation or
// the event cap. It returns the first divergence as an error.
//
// For cells outside the fast engine's coverage, Compare also pins the
// documented fallback contract: auto resolves to the reference engine,
// and an explicit fast request fails loudly instead of silently
// falling back.
func Compare(c Cell, opt Options) (Result, error) {
	base := gridseg.Config{
		N: c.N, W: c.W, Tau: c.Tau, P: c.P,
		Seed: c.Seed, Dynamic: c.Dynamic,
		Boundary: c.Boundary, Rho: c.Rho, TauDist: c.TauDist,
	}
	fastApplies := fastglauber.Fits(c.W)
	refCfg, underCfg := base, base
	refCfg.Engine = gridseg.EngineReference
	underCfg.Engine = gridseg.EngineFast
	if c.Par > 0 && fastApplies {
		underCfg.Engine = gridseg.EngineParallel
		underCfg.Par = c.Par
		underCfg.ParStrips = 1
	}
	if !fastApplies {
		// No fast engine exists for this cell; compare auto against
		// reference to pin the selection plumbing and determinism, and
		// demand the explicit fast request errors.
		underCfg.Engine = gridseg.EngineAuto
		fastCfg := base
		fastCfg.Engine = gridseg.EngineFast
		if _, err := gridseg.New(fastCfg); err == nil {
			return Result{}, fmt.Errorf("difftest: %s: explicit fast engine must be rejected outside its coverage", c)
		}
	}
	ref, err := gridseg.New(refCfg)
	if err != nil {
		return Result{}, fmt.Errorf("difftest: %s: reference: %w", c, err)
	}
	under, err := gridseg.New(underCfg)
	if err != nil {
		return Result{}, fmt.Errorf("difftest: %s: under test: %w", c, err)
	}
	if !fastApplies && under.Engine() != gridseg.EngineReference {
		return Result{}, fmt.Errorf("difftest: %s: auto resolved to %v, want the reference fallback", c, under.Engine())
	}

	res := Result{Cell: c}
	check := func(when string) error {
		res.Checks++
		if err := diverges(ref, under); err != nil {
			return fmt.Errorf("difftest: %s: %s (event %d): %w", c, when, res.Events, err)
		}
		return nil
	}
	if err := check("initial state"); err != nil {
		return res, err
	}
	every := opt.checkEvery()
	for {
		if opt.MaxEvents > 0 && res.Events >= opt.MaxEvents {
			break
		}
		rok := ref.Step()
		uok := under.Step()
		if rok != uok {
			return res, fmt.Errorf("difftest: %s: event %d: reference movable=%v, under test movable=%v", c, res.Events, rok, uok)
		}
		if !rok {
			break
		}
		res.Events++
		// Cheap per-event checks; the full state every `every` events.
		if ref.Flips() != under.Flips() {
			return res, fmt.Errorf("difftest: %s: event %d: flip counts %d vs %d", c, res.Events, under.Flips(), ref.Flips())
		}
		if !floatEqual(ref.Time(), under.Time()) {
			return res, fmt.Errorf("difftest: %s: event %d: clocks %v vs %v", c, res.Events, under.Time(), ref.Time())
		}
		if res.Events%every == 0 {
			if err := check("periodic check"); err != nil {
				return res, err
			}
		}
	}
	if err := check("final state"); err != nil {
		return res, err
	}
	return res, nil
}

// diverges compares the full observable state of two models and
// returns a descriptive error on the first mismatch.
func diverges(ref, under *gridseg.Model) error {
	if rs, us := ref.String(), under.String(); rs != us {
		return fmt.Errorf("spin arrays differ:\nunder test:\n%svs reference:\n%s", us, rs)
	}
	if rf, uf := ref.Flips(), under.Flips(); rf != uf {
		return fmt.Errorf("flip counts differ: %d vs %d", uf, rf)
	}
	if rp, up := ref.Phi(), under.Phi(); rp != up {
		return fmt.Errorf("Phi differs: %d vs %d", up, rp)
	}
	if !floatEqual(ref.Time(), under.Time()) {
		return fmt.Errorf("clocks differ: %v vs %v", under.Time(), ref.Time())
	}
	if rc, uc := ref.FlippableCount(), under.FlippableCount(); rc != uc {
		return fmt.Errorf("flippable counts differ: %d vs %d", uc, rc)
	}
	if rx, ux := ref.Fixated(), under.Fixated(); rx != ux {
		return fmt.Errorf("fixation differs: %v vs %v", ux, rx)
	}
	if rs, us := ref.SegregationStats(), under.SegregationStats(); rs != us {
		return fmt.Errorf("stats differ:\nunder test: %v\nreference:  %v", us, rs)
	}
	// Cross-layout pin: the streaming Phi over a tiled snapshot of the
	// live view must agree with the engines' maintained Phi, tying the
	// tiled storage and streaming measurement layers into the same
	// bit-identity contract.
	cfg := under.Config()
	tiled, err := fastgrid.TiledFromView(under.View(), 0)
	if err != nil {
		return fmt.Errorf("tiled snapshot: %w", err)
	}
	open := cfg.Boundary == gridseg.BoundaryOpen
	if pv, rp := measure.PhiView(tiled, cfg.W, open), ref.Phi(); pv != rp {
		return fmt.Errorf("streaming Phi over tiled snapshot = %d, maintained Phi = %d", pv, rp)
	}
	return nil
}

// floatEqual is exact equality with NaN == NaN (Kawasaki models have
// no clock and report NaN).
func floatEqual(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// Report aggregates a multi-cell differential run.
type Report struct {
	Cells  int
	Events int64
	Checks int64
}

// CompareAll runs Compare over every cell and accumulates totals,
// stopping at the first divergence.
func CompareAll(cells []Cell, opt Options) (Report, error) {
	var rep Report
	for _, c := range cells {
		res, err := Compare(c, opt)
		rep.Cells++
		rep.Events += res.Events
		rep.Checks += res.Checks
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}
