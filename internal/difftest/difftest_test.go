package difftest

import (
	"errors"
	"testing"

	"gridseg"
)

// acceptanceCells is the differential grid: it spans lattice sizes,
// horizons (including the torus-spanning w >= n/2 edge), intolerances
// from near 0 through the super-unhappy regime to near 1 (where
// nothing is flippable and only construction is compared), skewed
// initial densities, and both dynamics. The large cells carry the
// event volume; the test below asserts the grid drives at least 10^6
// events in total with zero divergences.
var acceptanceCells = []Cell{
	// Event-volume cells at paper-relevant parameters.
	{N: 512, W: 1, Tau: 0.45, P: 0.5, Dynamic: gridseg.Glauber, Seed: 1},
	{N: 512, W: 1, Tau: 0.45, P: 0.5, Dynamic: gridseg.Glauber, Seed: 2},
	{N: 512, W: 1, Tau: 0.42, P: 0.5, Dynamic: gridseg.Glauber, Seed: 3},
	{N: 512, W: 2, Tau: 0.42, P: 0.5, Dynamic: gridseg.Glauber, Seed: 4},
	{N: 512, W: 2, Tau: 0.45, P: 0.5, Dynamic: gridseg.Glauber, Seed: 5},
	{N: 512, W: 3, Tau: 0.44, P: 0.5, Dynamic: gridseg.Glauber, Seed: 6},
	// tau = 1/2: the open regime stays active for a long time, so this
	// cell reliably runs into the per-cell event cap.
	{N: 256, W: 2, Tau: 0.50, P: 0.5, Dynamic: gridseg.Glauber, Seed: 7},
	{N: 384, W: 1, Tau: 0.50, P: 0.5, Dynamic: gridseg.Glauber, Seed: 25},
	{N: 512, W: 1, Tau: 0.47, P: 0.5, Dynamic: gridseg.Glauber, Seed: 26},
	{N: 384, W: 2, Tau: 0.46, P: 0.5, Dynamic: gridseg.Glauber, Seed: 8},
	{N: 256, W: 4, Tau: 0.45, P: 0.5, Dynamic: gridseg.Glauber, Seed: 9},
	{N: 256, W: 2, Tau: 0.48, P: 0.5, Dynamic: gridseg.Glauber, Seed: 10},
	{N: 192, W: 3, Tau: 0.45, P: 0.5, Dynamic: gridseg.Glauber, Seed: 11},
	// Static and near-static regimes.
	{N: 384, W: 1, Tau: 0.30, P: 0.5, Dynamic: gridseg.Glauber, Seed: 12},
	{N: 128, W: 2, Tau: 0.05, P: 0.5, Dynamic: gridseg.Glauber, Seed: 13},
	// Super-unhappy regime (tau > 1/2) and tau near 1.
	{N: 128, W: 2, Tau: 0.70, P: 0.5, Dynamic: gridseg.Glauber, Seed: 14},
	{N: 128, W: 2, Tau: 0.98, P: 0.5, Dynamic: gridseg.Glauber, Seed: 15},
	// Skewed initial densities.
	{N: 64, W: 2, Tau: 0.45, P: 0.1, Dynamic: gridseg.Glauber, Seed: 16},
	{N: 64, W: 2, Tau: 0.45, P: 0.9, Dynamic: gridseg.Glauber, Seed: 17},
	// Torus-spanning windows: w >= n/2 (2w+1 == n).
	{N: 25, W: 12, Tau: 0.45, P: 0.5, Dynamic: gridseg.Glauber, Seed: 18},
	{N: 25, W: 12, Tau: 0.502, P: 0.5, Dynamic: gridseg.Glauber, Seed: 19},
	{N: 31, W: 15, Tau: 0.48, P: 0.5, Dynamic: gridseg.Glauber, Seed: 20},
	{N: 9, W: 4, Tau: 0.45, P: 0.5, Dynamic: gridseg.Glauber, Seed: 21},
	// Kawasaki cells: the fast swap engine runs these against the
	// reference swap engine in lockstep.
	{N: 96, W: 1, Tau: 0.45, P: 0.5, Dynamic: gridseg.Kawasaki, Seed: 22},
	{N: 64, W: 2, Tau: 0.45, P: 0.5, Dynamic: gridseg.Kawasaki, Seed: 23},
	{N: 128, W: 1, Tau: 0.42, P: 0.5, Dynamic: gridseg.Kawasaki, Seed: 24},
	// Scenario cells: fast-vs-reference lockstep on the scenario axes.
	{N: 128, W: 2, Tau: 0.42, P: 0.5, Dynamic: gridseg.Glauber, Seed: 27, Boundary: gridseg.BoundaryOpen},
	{N: 96, W: 3, Tau: 0.45, P: 0.5, Dynamic: gridseg.Glauber, Seed: 28, Boundary: gridseg.BoundaryOpen},
	{N: 128, W: 2, Tau: 0.42, P: 0.5, Dynamic: gridseg.Glauber, Seed: 29, Rho: 0.1},
	{N: 96, W: 2, Tau: 0.45, P: 0.5, Dynamic: gridseg.Glauber, Seed: 30, Boundary: gridseg.BoundaryOpen, Rho: 0.05},
	{N: 96, W: 2, Tau: 0.42, P: 0.5, Dynamic: gridseg.Glauber, Seed: 31, TauDist: "mix:0.35,0.45:0.5"},
	{N: 64, W: 2, Tau: 0.42, P: 0.5, Dynamic: gridseg.Glauber, Seed: 32, Boundary: gridseg.BoundaryOpen, Rho: 0.05, TauDist: "uniform:0.35:0.5"},
	{N: 64, W: 2, Tau: 0.42, P: 0.5, Dynamic: gridseg.Move, Seed: 33, Rho: 0.1},
	{N: 64, W: 1, Tau: 0.45, P: 0.5, Dynamic: gridseg.Kawasaki, Seed: 34, Boundary: gridseg.BoundaryOpen, Rho: 0.05},
	// Fast-engine scenario coverage cells (PR 5): event-volume
	// fast-vs-reference lockstep across open boundaries, vacancy
	// fractions rho in {0.05, 0.3}, mix/uniform intolerance fields,
	// scenario Kawasaki, and their combinations — the cells that pin
	// the per-site boundary-table scan and the clamped row bands.
	{N: 384, W: 1, Tau: 0.45, P: 0.5, Dynamic: gridseg.Glauber, Seed: 35, Boundary: gridseg.BoundaryOpen},
	{N: 256, W: 2, Tau: 0.42, P: 0.5, Dynamic: gridseg.Glauber, Seed: 36, Boundary: gridseg.BoundaryOpen},
	{N: 256, W: 2, Tau: 0.42, P: 0.5, Dynamic: gridseg.Glauber, Seed: 37, Rho: 0.05},
	{N: 192, W: 2, Tau: 0.45, P: 0.5, Dynamic: gridseg.Glauber, Seed: 38, Rho: 0.3},
	{N: 256, W: 2, Tau: 0.42, P: 0.5, Dynamic: gridseg.Glauber, Seed: 39, TauDist: "mix:0.35,0.45:0.5"},
	{N: 192, W: 2, Tau: 0.42, P: 0.5, Dynamic: gridseg.Glauber, Seed: 40, TauDist: "uniform:0.35:0.5"},
	{N: 192, W: 2, Tau: 0.42, P: 0.5, Dynamic: gridseg.Glauber, Seed: 41, Boundary: gridseg.BoundaryOpen, Rho: 0.05},
	{N: 128, W: 2, Tau: 0.42, P: 0.5, Dynamic: gridseg.Glauber, Seed: 42, Boundary: gridseg.BoundaryOpen, Rho: 0.3, TauDist: "uniform:0.35:0.5"},
	{N: 128, W: 3, Tau: 0.45, P: 0.5, Dynamic: gridseg.Glauber, Seed: 43, Boundary: gridseg.BoundaryOpen, TauDist: "mix:0.3,0.5:0.5"},
	{N: 96, W: 2, Tau: 0.70, P: 0.5, Dynamic: gridseg.Glauber, Seed: 44, Boundary: gridseg.BoundaryOpen, Rho: 0.05},
	{N: 128, W: 1, Tau: 0.45, P: 0.5, Dynamic: gridseg.Kawasaki, Seed: 45, Boundary: gridseg.BoundaryOpen},
	{N: 96, W: 2, Tau: 0.45, P: 0.5, Dynamic: gridseg.Kawasaki, Seed: 46, Rho: 0.05},
	{N: 96, W: 2, Tau: 0.42, P: 0.5, Dynamic: gridseg.Kawasaki, Seed: 47, Rho: 0.3, TauDist: "mix:0.35,0.45:0.5"},
	// Fast Move coverage cells (PR 6): fast-vs-reference lockstep for
	// the relocation dynamic across both boundaries, sparse and dense
	// vacancy fractions, heterogeneous intolerance, and the
	// torus-spanning window edge — the cells that pin the vacate+occupy
	// packed updates, the occupancy-delta reclassification pass, and
	// the sampler replay ordering.
	{N: 128, W: 2, Tau: 0.42, P: 0.5, Dynamic: gridseg.Move, Seed: 48, Rho: 0.1},
	{N: 96, W: 1, Tau: 0.45, P: 0.5, Dynamic: gridseg.Move, Seed: 49, Rho: 0.05},
	{N: 96, W: 2, Tau: 0.45, P: 0.5, Dynamic: gridseg.Move, Seed: 50, Boundary: gridseg.BoundaryOpen, Rho: 0.1},
	{N: 64, W: 3, Tau: 0.42, P: 0.5, Dynamic: gridseg.Move, Seed: 51, Rho: 0.3},
	{N: 64, W: 2, Tau: 0.42, P: 0.5, Dynamic: gridseg.Move, Seed: 52, Rho: 0.1, TauDist: "mix:0.35,0.45:0.5"},
	{N: 64, W: 2, Tau: 0.45, P: 0.5, Dynamic: gridseg.Move, Seed: 53, Boundary: gridseg.BoundaryOpen, Rho: 0.05, TauDist: "uniform:0.35:0.5"},
	{N: 25, W: 12, Tau: 0.45, P: 0.5, Dynamic: gridseg.Move, Seed: 54, Rho: 0.1},
	// Parallel-engine delegation cells (PR 7): the parallel engine in
	// its deterministic delegation mode (ParStrips = 1) against the
	// reference engine, in lockstep, across worker counts 1/2/4/8 and
	// every topology axis. The worker count must be a pure execution
	// detail, so every one of these must be bit-identical — including
	// clocks — to the sequential runs of the same seeds.
	{N: 256, W: 2, Tau: 0.45, P: 0.5, Dynamic: gridseg.Glauber, Seed: 55, Par: 1},
	{N: 256, W: 2, Tau: 0.45, P: 0.5, Dynamic: gridseg.Glauber, Seed: 55, Par: 2},
	{N: 256, W: 1, Tau: 0.42, P: 0.5, Dynamic: gridseg.Glauber, Seed: 56, Par: 4},
	{N: 192, W: 2, Tau: 0.45, P: 0.5, Dynamic: gridseg.Glauber, Seed: 57, Par: 8},
	{N: 192, W: 2, Tau: 0.42, P: 0.5, Dynamic: gridseg.Glauber, Seed: 58, Par: 2, Boundary: gridseg.BoundaryOpen},
	{N: 128, W: 2, Tau: 0.45, P: 0.5, Dynamic: gridseg.Glauber, Seed: 59, Par: 4, Boundary: gridseg.BoundaryOpen},
	{N: 192, W: 2, Tau: 0.42, P: 0.5, Dynamic: gridseg.Glauber, Seed: 60, Par: 4, Rho: 0.1},
	{N: 128, W: 2, Tau: 0.42, P: 0.5, Dynamic: gridseg.Glauber, Seed: 61, Par: 8, Rho: 0.05, Boundary: gridseg.BoundaryOpen},
	{N: 128, W: 2, Tau: 0.42, P: 0.5, Dynamic: gridseg.Glauber, Seed: 62, Par: 2, TauDist: "mix:0.35,0.45:0.5"},
	{N: 96, W: 2, Tau: 0.42, P: 0.5, Dynamic: gridseg.Glauber, Seed: 63, Par: 8, Boundary: gridseg.BoundaryOpen, Rho: 0.05, TauDist: "uniform:0.35:0.5"},
}

// TestEnginesBitIdentical is the acceptance harness: >= 63 cells
// (>= 12 of them scenario/Kawasaki cells under the fast engine,
// >= 10 parallel-delegation cells across worker counts 1/2/4/8),
// >= 10^6 events, full-state comparisons every 8192 events, zero
// divergences between the reference and the engines under test.
func TestEnginesBitIdentical(t *testing.T) {
	cells := acceptanceCells
	opt := Options{CheckEvery: 8192, MaxEvents: 200000}
	if testing.Short() {
		// Reduced grid: drop the event-volume cells, keep the shapes.
		var small []Cell
		for _, c := range cells {
			if c.N <= 192 {
				small = append(small, c)
			}
		}
		cells = small
		opt = Options{CheckEvery: 2048, MaxEvents: 20000}
	}
	rep, err := CompareAll(cells, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("differential run: %d cells, %d events, %d full-state checks", rep.Cells, rep.Events, rep.Checks)
	if testing.Short() {
		return
	}
	if rep.Cells < 63 {
		t.Errorf("acceptance requires >= 63 cells, got %d", rep.Cells)
	}
	fastScenario, parallel := 0, 0
	for _, c := range cells {
		if !c.defaultScenario() || c.Dynamic == gridseg.Kawasaki {
			fastScenario++
		}
		if c.Par > 0 {
			parallel++
		}
	}
	if fastScenario < 12 {
		t.Errorf("acceptance requires >= 12 scenario/Kawasaki cells under the fast engine, got %d", fastScenario)
	}
	if parallel < 10 {
		t.Errorf("acceptance requires >= 10 parallel-delegation cells, got %d", parallel)
	}
	if rep.Events < 1_000_000 {
		t.Errorf("acceptance requires >= 10^6 events, got %d", rep.Events)
	}
}

// TestCompareReportsDivergence checks the harness itself: two models
// with different seeds must be reported as divergent immediately.
func TestCompareReportsDivergence(t *testing.T) {
	ref, err := gridseg.New(gridseg.Config{N: 32, W: 2, Tau: 0.45, Seed: 1, Engine: gridseg.EngineReference})
	if err != nil {
		t.Fatal(err)
	}
	other, err := gridseg.New(gridseg.Config{N: 32, W: 2, Tau: 0.45, Seed: 2, Engine: gridseg.EngineFast})
	if err != nil {
		t.Fatal(err)
	}
	if diverges(ref, other) == nil {
		t.Fatal("harness failed to flag models with different seeds")
	}
}

// TestCompareFastRejectsOversizedHorizon confirms an explicit fast
// request past the lane capacity surfaces as a typed construction
// error, not a silent fallback — and that Compare, which verifies
// exactly this contract for cells outside the fast engine's coverage,
// accepts such a cell (auto resolves to reference, fast rejects).
func TestCompareFastRejectsOversizedHorizon(t *testing.T) {
	cell := Cell{N: 301, W: 150, Tau: 0.45, P: 0.5, Dynamic: gridseg.Glauber, Seed: 1}
	if _, err := Compare(cell, Options{MaxEvents: 1}); err != nil {
		t.Fatalf("oversized-horizon fallback cell diverged: %v", err)
	}
	_, err := gridseg.New(gridseg.Config{
		N: cell.N, W: cell.W, Tau: cell.Tau, Seed: cell.Seed, Engine: gridseg.EngineFast,
	})
	if !errors.Is(err, gridseg.ErrNeighborhoodTooLarge) {
		t.Fatalf("explicit fast request: err = %v, want ErrNeighborhoodTooLarge", err)
	}
}
