// Package theory implements every closed-form and numerically-defined
// object in the paper: the binary entropy function, the critical
// intolerance values tau1 (Eq. 1) and tau2 (Eq. 3), the triggering
// threshold f(tau) of Lemma 5 (Eq. 10, plotted in Fig. 6), the exponent
// multipliers a(tau) and b(tau) of Theorems 1 and 2 (plotted in Fig. 3),
// the finite-N corrected intolerances tau', tau-hat and tau-bar, and the
// initial-configuration probability bounds of Lemma 19 and Lemma 20.
//
// These functions are pure and deterministic; the experiment harness uses
// them both to regenerate the paper's numeric figures (Figs. 2, 3, 6) and
// to compare Monte Carlo estimates against the theoretical envelopes.
package theory

import (
	"errors"
	"math"
)

// Numerically significant constants of the paper.
const (
	// Tau2 is the smaller critical intolerance: the relevant root of
	// 1024 tau^2 - 384 tau + 11 = 0 (Eq. 3), exactly (384+320)/2048.
	// The paper quotes tau2 ~= 0.344.
	Tau2 = 0.34375

	// HalfIntervalKnown is the width ~0.134 of the monochromatic
	// intolerance interval (grey region of Fig. 2), equal to 1 - 2*tau1.
	// Kept as a documented reference value; compute it via Intervals.
	HalfIntervalKnown = 0.134
)

// BinaryEntropy returns H(x) = -x log2 x - (1-x) log2 (1-x) for
// x in [0, 1], with the standard convention H(0) = H(1) = 0.
// It returns NaN outside [0, 1].
func BinaryEntropy(x float64) float64 {
	if x < 0 || x > 1 {
		return math.NaN()
	}
	if x == 0 || x == 1 {
		return 0
	}
	return -x*math.Log2(x) - (1-x)*math.Log2(1-x)
}

// Bisect finds a root of f in [lo, hi] assuming f(lo) and f(hi) have
// opposite signs, to within tol. It returns an error if the bracket is
// invalid.
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, errors.New("theory: bisection bracket does not change sign")
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// tau1Equation is the left-hand side of Eq. (1):
// (3/4)[1 - H(4 tau / 3)] - [1 - H(tau)].
func tau1Equation(tau float64) float64 {
	return 0.75*(1-BinaryEntropy(4*tau/3)) - (1 - BinaryEntropy(tau))
}

// Tau1 returns the larger critical intolerance tau1 ~= 0.433, the root of
// Eq. (1) in (0.4, 0.5). The result is computed by bisection to 1e-12.
func Tau1() float64 {
	root, err := Bisect(tau1Equation, 0.40, 0.4999, 1e-12)
	if err != nil {
		// The bracket is fixed and verified by tests; reaching this
		// indicates a programming error rather than a runtime
		// condition a caller could handle.
		panic("theory: tau1 bracket invalid: " + err.Error())
	}
	return root
}

// FEpsilon returns f(tau) from Eq. (10) of Lemma 5: the infimum of the
// radical-region margin eps' that can trigger a cascading process
// (plotted in Fig. 6). It is defined for tau in (tau2, 1/2); at tau = 1/2
// it evaluates to 0. It returns NaN when the discriminant is negative
// (tau > 1/2) or tau is outside (0, 1/2].
func FEpsilon(tau float64) float64 {
	if tau <= 0 || tau > 0.5 {
		return math.NaN()
	}
	d := tau - 0.5
	disc := 9*d*d - 7*d*(3*tau+0.5)
	if disc < 0 {
		return math.NaN()
	}
	return (3*d + math.Sqrt(disc)) / (2 * (3*tau + 0.5))
}

// TauPrime returns tau' = (tau*N - 2)/(N - 1), the finite-N corrected
// intolerance that appears in all exponents (Lemma 19). For N = 1 it
// returns NaN.
func TauPrime(tau float64, n int) float64 {
	if n <= 1 {
		return math.NaN()
	}
	return (tau*float64(n) - 2) / float64(n-1)
}

// TauHat returns tau-hat = tau * (1 - 1/(tau * N^{1/2-eps})), the deflated
// intolerance used in the definition of a radical region (Section III).
func TauHat(tau float64, n int, eps float64) float64 {
	if tau <= 0 || n <= 0 {
		return math.NaN()
	}
	return tau * (1 - 1/(tau*math.Pow(float64(n), 0.5-eps)))
}

// TauBar returns tau-bar = 1 - tau + 2/N, the threshold defining
// super-unhappy agents in the extension to tau > 1/2 (Section IV-C).
func TauBar(tau float64, n int) float64 {
	if n <= 0 {
		return math.NaN()
	}
	return 1 - tau + 2/float64(n)
}

// Mirror returns the intolerance symmetric to tau about 1/2; the paper's
// results for tau < 1/2 extend to 1 - tau by the symmetry argument of
// Section IV-C.
func Mirror(tau float64) float64 { return 1 - tau }

// AExponent returns a(tau) = [1 - (2 eps' + eps'^2)] [1 - H(tau')] from
// Eq. (12)/(21), the lower-bound exponent of Theorems 1 and 2:
// E[M] >= 2^{a N - o(N)}. The asymptotic curve of Fig. 3 uses
// tau' -> tau and the infimum margin eps' = f(tau).
func AExponent(tauPrime, epsPrime float64) float64 {
	return (1 - (2*epsPrime + epsPrime*epsPrime)) * (1 - BinaryEntropy(tauPrime))
}

// BExponent returns b(tau) = (3/2)(1+eps')^2 [1 - H(tau')] from the proof
// of Theorem 1, the upper-bound exponent: E[M] <= 2^{b N + o(N)}.
func BExponent(tauPrime, epsPrime float64) float64 {
	return 1.5 * (1 + epsPrime) * (1 + epsPrime) * (1 - BinaryEntropy(tauPrime))
}

// Exponents returns the asymptotic (N -> infinity) exponent multipliers
// a(tau) and b(tau) of Fig. 3 at the given intolerance, using
// eps' = f(tau) (values of tau > 1/2 are mirrored first; this is the
// paper's symmetry). It returns NaN for tau outside the studied interval
// (tau2, 1-tau2) \ {1/2}.
func Exponents(tau float64) (a, b float64) {
	if tau > 0.5 {
		tau = Mirror(tau)
	}
	if tau <= Tau2 || tau >= 0.5 {
		return math.NaN(), math.NaN()
	}
	eps := FEpsilon(tau)
	return AExponent(tau, eps), BExponent(tau, eps)
}

// Interval is a half-open description of an intolerance range with a
// qualitative regime label.
type Interval struct {
	Lo, Hi float64
	Label  string
}

// Intervals returns the intolerance intervals of Fig. 2 computed from
// tau1 and tau2: the monochromatic (grey) intervals around 1/2 and the
// almost-monochromatic (black) extensions.
func Intervals() []Interval {
	t1 := Tau1()
	return []Interval{
		{Lo: Tau2, Hi: t1, Label: "almost monochromatic (Theorem 2)"},
		{Lo: t1, Hi: 0.5, Label: "monochromatic (Theorem 1)"},
		{Lo: 0.5, Hi: 1 - t1, Label: "monochromatic (Theorem 1, mirrored)"},
		{Lo: 1 - t1, Hi: 1 - Tau2, Label: "almost monochromatic (Theorem 2, mirrored)"},
	}
}

// MonochromaticWidth returns the total width of the interval on which
// Theorem 1 guarantees exponential monochromatic regions,
// 1 - 2*tau1 ~= 0.134 (the grey region of Fig. 2).
func MonochromaticWidth() float64 { return 1 - 2*Tau1() }

// AlmostMonochromaticWidth returns the total width of the interval on
// which Theorems 1+2 guarantee exponential (almost) monochromatic
// regions, 1 - 2*tau2 = 0.3125 (grey plus black region of Fig. 2).
func AlmostMonochromaticWidth() float64 { return 1 - 2*Tau2 }

// Regime classifies an intolerance value according to the paper's results
// and the cited prior work.
type Regime int

// Regimes ordered from most to least tolerant below 1/2, then mirrored.
const (
	// RegimeUnknownLow: tau in (1/4, tau2], behaviour open (Sec. V).
	RegimeUnknownLow Regime = iota + 1
	// RegimeStatic: tau <= 1/4 or tau >= 3/4; initial configuration is
	// static w.h.p. (Barmpalias et al., cited in Sec. I.B).
	RegimeStatic
	// RegimeAlmostMono: tau in (tau2, tau1] or mirrored; Theorem 2.
	RegimeAlmostMono
	// RegimeMono: tau in (tau1, 1/2) or mirrored; Theorem 1.
	RegimeMono
	// RegimeOpenHalf: tau = 1/2, open on the 2-D grid.
	RegimeOpenHalf
)

// String returns a human-readable regime name.
func (r Regime) String() string {
	switch r {
	case RegimeStatic:
		return "static"
	case RegimeUnknownLow:
		return "open (1/4, tau2]"
	case RegimeAlmostMono:
		return "almost monochromatic"
	case RegimeMono:
		return "monochromatic"
	case RegimeOpenHalf:
		return "open (tau = 1/2)"
	default:
		return "invalid"
	}
}

// Classify returns the regime of the given intolerance.
func Classify(tau float64) Regime {
	if tau > 0.5 {
		tau = Mirror(tau)
	}
	t1 := Tau1()
	switch {
	case tau == 0.5:
		return RegimeOpenHalf
	case tau > t1:
		return RegimeMono
	case tau > Tau2:
		return RegimeAlmostMono
	case tau > 0.25:
		return RegimeUnknownLow
	default:
		return RegimeStatic
	}
}

// Threshold returns the integer happiness threshold ceil(tauTilde * N):
// the minimum number of same-type agents (including the agent itself)
// in a neighborhood of size N required to be happy. The paper's rational
// intolerance is tau = Threshold/N.
func Threshold(tauTilde float64, n int) int {
	t := int(math.Ceil(tauTilde * float64(n)))
	if t < 0 {
		t = 0
	}
	if t > n {
		t = n
	}
	return t
}

// logBinom returns log2 of the binomial coefficient C(n, k) using
// Lgamma, exact enough for all n used here.
func logBinom(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return (ln - lk - lnk) / math.Ln2
}

// log2Add returns log2(2^a + 2^b) in a numerically stable way.
func log2Add(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log2(1+math.Exp2(b-a))
}

// PUnhappyLog2 returns log2 of the exact probability that an arbitrary
// agent is unhappy in the initial Bernoulli(1/2) configuration:
// p_u = 2^{-(N-1)} * sum_{k=0}^{tau N - 2} C(N-1, k)   (Eq. 30).
// The sum counts the same-type agents among the other N-1 neighbors:
// the agent (which counts itself) is unhappy iff same < tau N, i.e. at
// most tauN - 2 of the others share its type.
func PUnhappyLog2(n, thresh int) float64 {
	// same = k (others) + 1 (self); unhappy iff same < thresh, i.e.
	// k <= thresh - 2.
	kmax := thresh - 2
	if kmax < 0 {
		return math.Inf(-1) // never unhappy
	}
	if kmax >= n-1 {
		return 0 // always unhappy: probability 1
	}
	acc := math.Inf(-1)
	for k := 0; k <= kmax; k++ {
		acc = log2Add(acc, logBinom(n-1, k))
	}
	return acc - float64(n-1)
}

// PUnhappy returns the exact initial unhappiness probability; see
// PUnhappyLog2. Values underflowing float64 are returned as 0.
func PUnhappy(n, thresh int) float64 {
	return math.Exp2(PUnhappyLog2(n, thresh))
}

// PUnhappyEntropyLog2 returns the entropy approximation
// -[1 - H(tau')] N - (1/2) log2 N of Lemma 19, the exponent the paper
// uses throughout. tau' = (tau N - 2)/(N - 1).
func PUnhappyEntropyLog2(tau float64, n int) float64 {
	tp := TauPrime(tau, n)
	if tp <= 0 {
		return math.Inf(-1)
	}
	return -(1-BinaryEntropy(tp))*float64(n) - 0.5*math.Log2(float64(n))
}

// PRadicalLog2 returns the Lemma 20 entropy exponent for the probability
// that a neighborhood of radius (1+eps')w is a radical region:
// log2 p' ~= -[1 - H(tau”)](1+eps')^2 N, with
// tau” = (floor(tauHat (1+eps')^2 N) - 1) / ((1+eps')^2 N).
func PRadicalLog2(tau float64, n int, epsPrime, eps float64) float64 {
	scaled := (1 + epsPrime) * (1 + epsPrime) * float64(n)
	tauHat := TauHat(tau, n, eps)
	tau2 := (math.Floor(tauHat*scaled) - 1) / scaled
	if tau2 <= 0 {
		return math.Inf(-1)
	}
	return -(1 - BinaryEntropy(tau2)) * scaled
}

// TriggerProbabilityLog2 returns the Lemma 6 lower-bound exponent on the
// probability that a neighborhood of radius r = 2^{[1-H(tau')]N/2 - o(N)}
// contains an expandable radical region:
// log2 P(C) >= -[1 - H(tau')](2 eps' + eps'^2) N - o(N).
func TriggerProbabilityLog2(tau float64, n int, epsPrime float64) float64 {
	tp := TauPrime(tau, n)
	return -(1 - BinaryEntropy(tp)) * (2*epsPrime + epsPrime*epsPrime) * float64(n)
}

// CurvePoint is one sample of the Fig. 3 / Fig. 6 curves.
type CurvePoint struct {
	Tau float64
	F   float64 // Fig. 6: f(tau)
	A   float64 // Fig. 3: a(tau), lower-bound exponent
	B   float64 // Fig. 3: b(tau), upper-bound exponent
}

// Curves samples f, a and b on a uniform grid of the given number of
// points over the open interval (tau2, 1/2). samples must be >= 2.
func Curves(samples int) []CurvePoint {
	if samples < 2 {
		samples = 2
	}
	lo, hi := Tau2, 0.5
	pts := make([]CurvePoint, 0, samples)
	for i := 0; i < samples; i++ {
		// Stay strictly inside the interval: endpoints are excluded
		// by the theorems.
		frac := (float64(i) + 0.5) / float64(samples)
		tau := lo + frac*(hi-lo)
		f := FEpsilon(tau)
		pts = append(pts, CurvePoint{
			Tau: tau,
			F:   f,
			A:   AExponent(tau, f),
			B:   BExponent(tau, f),
		})
	}
	return pts
}
