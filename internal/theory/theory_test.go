package theory

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBinaryEntropy(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0}, {0.5, 1},
		{0.25, -0.25*math.Log2(0.25) - 0.75*math.Log2(0.75)},
	}
	for _, c := range cases {
		if got := BinaryEntropy(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("H(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if !math.IsNaN(BinaryEntropy(-0.1)) || !math.IsNaN(BinaryEntropy(1.1)) {
		t.Error("H outside [0,1] must be NaN")
	}
}

func TestBinaryEntropySymmetry(t *testing.T) {
	f := func(raw uint16) bool {
		x := float64(raw) / math.MaxUint16
		return almostEqual(BinaryEntropy(x), BinaryEntropy(1-x), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(root, math.Sqrt2, 1e-10) {
		t.Fatalf("root = %v, want sqrt(2)", root)
	}
}

func TestBisectBadBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return 1 }, 0, 1, 1e-9); err == nil {
		t.Fatal("want error for non-sign-changing bracket")
	}
}

func TestBisectRootAtEndpoint(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-9)
	if err != nil || root != 0 {
		t.Fatalf("root = %v, err = %v", root, err)
	}
}

// The paper quotes tau1 ~= 0.433 as the solution of Eq. (1).
func TestTau1MatchesPaper(t *testing.T) {
	t1 := Tau1()
	if !almostEqual(t1, 0.433, 5e-4) {
		t.Fatalf("tau1 = %v, paper quotes ~0.433", t1)
	}
	// It must actually solve Eq. (1).
	if res := tau1Equation(t1); !almostEqual(res, 0, 1e-9) {
		t.Fatalf("equation residual at tau1: %v", res)
	}
}

// The paper quotes tau2 ~= 0.344 as the relevant root of Eq. (3):
// 1024 tau^2 - 384 tau + 11 = 0.
func TestTau2SolvesEq3(t *testing.T) {
	res := 1024*Tau2*Tau2 - 384*Tau2 + 11
	if !almostEqual(res, 0, 1e-9) {
		t.Fatalf("Eq. (3) residual at tau2: %v", res)
	}
	if !almostEqual(Tau2, 0.344, 1e-3) {
		t.Fatalf("tau2 = %v, paper quotes ~0.344", Tau2)
	}
}

// Fig. 2: the interval widths are ~0.134 and ~0.312.
func TestIntervalWidthsMatchFig2(t *testing.T) {
	if w := MonochromaticWidth(); !almostEqual(w, 0.134, 1e-3) {
		t.Fatalf("monochromatic width = %v, paper quotes ~0.134", w)
	}
	if w := AlmostMonochromaticWidth(); !almostEqual(w, 0.3125, 1e-12) {
		t.Fatalf("almost monochromatic width = %v, want 0.3125", w)
	}
}

func TestIntervalsContiguousAndSymmetric(t *testing.T) {
	iv := Intervals()
	if len(iv) != 4 {
		t.Fatalf("want 4 intervals, got %d", len(iv))
	}
	for i := 1; i < len(iv); i++ {
		if !almostEqual(iv[i].Lo, iv[i-1].Hi, 1e-12) {
			t.Fatalf("intervals not contiguous at %d: %v vs %v", i, iv[i].Lo, iv[i-1].Hi)
		}
	}
	// Symmetry about 1/2.
	if !almostEqual(iv[0].Lo, 1-iv[3].Hi, 1e-12) {
		t.Fatal("outer endpoints not symmetric about 1/2")
	}
	if !almostEqual(iv[1].Lo, 1-iv[2].Hi, 1e-12) {
		t.Fatal("inner endpoints not symmetric about 1/2")
	}
}

// Fig. 6: f is positive on (tau2, 1/2), below 1/2, and decreases to 0
// as tau -> 1/2.
func TestFEpsilonShapeMatchesFig6(t *testing.T) {
	if got := FEpsilon(0.5); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("f(1/2) = %v, want 0", got)
	}
	prev := math.Inf(1)
	for tau := Tau2 + 1e-6; tau < 0.5; tau += 0.01 {
		f := FEpsilon(tau)
		if math.IsNaN(f) || f <= 0 || f >= 0.5 {
			t.Fatalf("f(%v) = %v out of (0, 1/2)", tau, f)
		}
		if f >= prev {
			t.Fatalf("f not strictly decreasing at tau=%v: %v >= %v", tau, f, prev)
		}
		prev = f
	}
}

func TestFEpsilonDomain(t *testing.T) {
	if !math.IsNaN(FEpsilon(0)) || !math.IsNaN(FEpsilon(0.75)) || !math.IsNaN(FEpsilon(-1)) {
		t.Fatal("f outside domain must be NaN")
	}
}

// Spot value from the quadratic: f(tau2) computed by hand ~= 0.29638.
func TestFEpsilonSpotValue(t *testing.T) {
	if got := FEpsilon(Tau2); !almostEqual(got, 0.29638, 1e-4) {
		t.Fatalf("f(tau2) = %v, want ~0.29638", got)
	}
}

// Fig. 3 / Theorem 1: a and b are positive, a <= b, and both decrease as
// tau increases toward 1/2 (the paper: "as the intolerance gets farther
// from one half ... larger monochromatic regions are expected").
func TestExponentsShapeMatchesFig3(t *testing.T) {
	var prevA, prevB = math.Inf(1), math.Inf(1)
	for _, p := range Curves(64) {
		if math.IsNaN(p.A) || math.IsNaN(p.B) {
			t.Fatalf("NaN exponent at tau=%v", p.Tau)
		}
		if p.A <= 0 || p.B <= 0 {
			t.Fatalf("non-positive exponent at tau=%v: a=%v b=%v", p.Tau, p.A, p.B)
		}
		if p.A > p.B {
			t.Fatalf("a > b at tau=%v: %v > %v", p.Tau, p.A, p.B)
		}
		if p.A >= prevA || p.B >= prevB {
			t.Fatalf("exponents not decreasing at tau=%v", p.Tau)
		}
		prevA, prevB = p.A, p.B
	}
}

func TestExponentsMirrorSymmetry(t *testing.T) {
	a1, b1 := Exponents(0.45)
	a2, b2 := Exponents(0.55)
	if !almostEqual(a1, a2, 1e-12) || !almostEqual(b1, b2, 1e-12) {
		t.Fatal("Exponents must be symmetric about 1/2")
	}
}

func TestExponentsOutsideDomain(t *testing.T) {
	for _, tau := range []float64{0.1, Tau2, 0.5, 0.9} {
		a, b := Exponents(tau)
		if !math.IsNaN(a) || !math.IsNaN(b) {
			t.Fatalf("Exponents(%v) = %v, %v; want NaN outside domain", tau, a, b)
		}
	}
}

func TestTauPrime(t *testing.T) {
	// tau' = (tau N - 2)/(N - 1): exact check for N=441, tau=0.42.
	got := TauPrime(0.42, 441)
	want := (0.42*441 - 2) / 440
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("TauPrime = %v, want %v", got, want)
	}
	if !math.IsNaN(TauPrime(0.4, 1)) {
		t.Fatal("TauPrime(_, 1) must be NaN")
	}
	// tau' -> tau as N -> infinity.
	if !almostEqual(TauPrime(0.42, 1<<20), 0.42, 1e-4) {
		t.Fatal("TauPrime must converge to tau")
	}
}

func TestTauHat(t *testing.T) {
	// tau-hat < tau and converges to tau as N grows.
	tau := 0.45
	h1 := TauHat(tau, 100, 0.1)
	h2 := TauHat(tau, 10000, 0.1)
	if h1 >= tau || h2 >= tau {
		t.Fatalf("tau-hat must be below tau: %v %v", h1, h2)
	}
	if h2 <= h1 {
		t.Fatal("tau-hat must increase with N")
	}
	if !math.IsNaN(TauHat(0, 100, 0.1)) {
		t.Fatal("TauHat(0, ...) must be NaN")
	}
}

func TestTauBar(t *testing.T) {
	if got := TauBar(0.6, 100); !almostEqual(got, 0.42, 1e-12) {
		t.Fatalf("TauBar = %v, want 0.42", got)
	}
	if !math.IsNaN(TauBar(0.6, 0)) {
		t.Fatal("TauBar(_, 0) must be NaN")
	}
}

func TestThreshold(t *testing.T) {
	cases := []struct {
		tau  float64
		n    int
		want int
	}{
		{0.5, 9, 5},      // ceil(4.5) = 5
		{0.42, 441, 186}, // ceil(185.22)
		{0, 9, 0},
		{1, 9, 9},
		{0.99999, 9, 9},
	}
	for _, c := range cases {
		if got := Threshold(c.tau, c.n); got != c.want {
			t.Errorf("Threshold(%v, %d) = %d, want %d", c.tau, c.n, got, c.want)
		}
	}
}

// Lemma 19: the exact p_u and its entropy approximation agree in exponent
// for large N.
func TestPUnhappyMatchesEntropyApproximation(t *testing.T) {
	tau := 0.45
	for _, w := range []int{5, 8, 12} {
		n := (2*w + 1) * (2*w + 1)
		thresh := Threshold(tau, n)
		exact := PUnhappyLog2(n, thresh)
		approx := PUnhappyEntropyLog2(tau, n)
		// Exponents agree to within o(N): allow a generous log-factor
		// margin that shrinks relative to N.
		if math.Abs(exact-approx) > 0.1*float64(n)+8 {
			t.Fatalf("N=%d: exact log2 p_u = %v vs entropy %v", n, exact, approx)
		}
	}
}

// Exact small case, hand-computed: N=9 (w=1), thresh=5 (tau=1/2):
// unhappy iff at most 3 of the other 8 share the type:
// p = (C(8,0)+C(8,1)+C(8,2)+C(8,3))/2^8 = (1+8+28+56)/256 = 93/256.
func TestPUnhappyExactSmall(t *testing.T) {
	got := PUnhappy(9, 5)
	want := 93.0 / 256.0
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("PUnhappy(9,5) = %v, want %v", got, want)
	}
}

func TestPUnhappyEdges(t *testing.T) {
	if got := PUnhappy(9, 1); got != 0 {
		t.Fatalf("threshold 1 can never be unhappy, got %v", got)
	}
	if got := PUnhappy(9, 0); got != 0 {
		t.Fatalf("threshold 0 can never be unhappy, got %v", got)
	}
	// thresh = N: unhappy unless every one of the other 8 matches:
	// p = 1 - 2^-8 ... wait: same = k+1 < 9 iff k <= 7, so
	// p = sum_{k=0}^{7} C(8,k)/2^8 = (256-1)/256.
	if got := PUnhappy(9, 9); !almostEqual(got, 255.0/256.0, 1e-12) {
		t.Fatalf("PUnhappy(9,9) = %v, want 255/256", got)
	}
}

// Probability is monotone in the threshold.
func TestPUnhappyMonotoneInThreshold(t *testing.T) {
	prev := -1.0
	for thresh := 0; thresh <= 25; thresh++ {
		p := PUnhappy(25, thresh)
		if p < prev {
			t.Fatalf("PUnhappy not monotone at thresh=%d", thresh)
		}
		if p < 0 || p > 1 {
			t.Fatalf("PUnhappy out of [0,1]: %v", p)
		}
		prev = p
	}
}

func TestClassify(t *testing.T) {
	t1 := Tau1()
	cases := []struct {
		tau  float64
		want Regime
	}{
		{0.1, RegimeStatic},
		{0.25, RegimeStatic},
		{0.3, RegimeUnknownLow},
		{Tau2 + 0.01, RegimeAlmostMono},
		{t1 + 0.01, RegimeMono},
		{0.49, RegimeMono},
		{0.5, RegimeOpenHalf},
		{0.51, RegimeMono},
		{1 - Tau2 + 0.01, RegimeUnknownLow},
		{0.9, RegimeStatic},
	}
	for _, c := range cases {
		if got := Classify(c.tau); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.tau, got, c.want)
		}
	}
}

func TestRegimeString(t *testing.T) {
	for _, r := range []Regime{RegimeStatic, RegimeUnknownLow, RegimeAlmostMono, RegimeMono, RegimeOpenHalf} {
		if r.String() == "invalid" || r.String() == "" {
			t.Errorf("missing name for regime %d", r)
		}
	}
	if Regime(99).String() != "invalid" {
		t.Error("unknown regime must stringify as invalid")
	}
}

func TestTriggerProbabilityLog2Negative(t *testing.T) {
	v := TriggerProbabilityLog2(0.45, 441, FEpsilon(0.45))
	if v >= 0 {
		t.Fatalf("trigger log-probability must be negative, got %v", v)
	}
}

func TestPRadicalLog2(t *testing.T) {
	v := PRadicalLog2(0.45, 441, FEpsilon(0.45), 0.1)
	if v >= 0 || math.IsInf(v, -1) {
		t.Fatalf("radical region log-probability = %v, want finite negative", v)
	}
}

func TestCurvesSamplesInsideInterval(t *testing.T) {
	pts := Curves(10)
	if len(pts) != 10 {
		t.Fatalf("want 10 points, got %d", len(pts))
	}
	for _, p := range pts {
		if p.Tau <= Tau2 || p.Tau >= 0.5 {
			t.Fatalf("sample tau=%v outside (tau2, 1/2)", p.Tau)
		}
	}
	if got := Curves(1); len(got) != 2 {
		t.Fatalf("Curves must clamp samples to >= 2, got %d", len(got))
	}
}

func TestMirror(t *testing.T) {
	if !almostEqual(Mirror(0.42), 0.58, 1e-15) {
		t.Fatal("Mirror(0.42) != 0.58")
	}
	if !almostEqual(Mirror(Mirror(0.42)), 0.42, 1e-15) {
		t.Fatal("Mirror must be an involution up to rounding")
	}
}
