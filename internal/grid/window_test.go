package grid

import (
	"testing"

	"gridseg/internal/rng"
)

// bruteWindow counts sites matching the predicate in the radius-r
// window around (x0, y0), wrapping or clamping per the boundary.
func bruteWindow(l *Lattice, x0, y0, radius int, open bool, match func(Spin) bool) int {
	n := l.N()
	c := 0
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			x, y := x0+dx, y0+dy
			if open {
				if x < 0 || x >= n || y < 0 || y >= n {
					continue
				}
			} else {
				x, y = wrap(x, n), wrap(y, n)
			}
			if match(l.spins[y*n+x]) {
				c++
			}
		}
	}
	return c
}

func TestScenarioWindowCountsMatchBruteForce(t *testing.T) {
	isPlus := func(s Spin) bool { return s == Plus }
	isOcc := func(s Spin) bool { return s != None }
	for _, tc := range []struct {
		n, radius int
		rho       float64
	}{
		{5, 1, 0}, {5, 2, 0.2}, {9, 2, 0.1}, {9, 4, 0.3}, {16, 3, 0.05}, {7, 3, 0},
	} {
		l := RandomScenario(tc.n, 0.5, tc.rho, rng.New(uint64(tc.n*1000+tc.radius)))
		for _, open := range []bool{false, true} {
			plus := l.PlusWindowCounts(tc.radius, open)
			occ := l.OccupiedWindowCounts(tc.radius, open)
			for i := 0; i < l.Sites(); i++ {
				x, y := i%tc.n, i/tc.n
				if want := bruteWindow(l, x, y, tc.radius, open, isPlus); int(plus[i]) != want {
					t.Fatalf("n=%d r=%d rho=%v open=%v site %d: plus %d, brute %d",
						tc.n, tc.radius, tc.rho, open, i, plus[i], want)
				}
				if want := bruteWindow(l, x, y, tc.radius, open, isOcc); int(occ[i]) != want {
					t.Fatalf("n=%d r=%d rho=%v open=%v site %d: occ %d, brute %d",
						tc.n, tc.radius, tc.rho, open, i, occ[i], want)
				}
			}
		}
	}
}

func TestWindowAreas(t *testing.T) {
	n, r := 7, 2
	torus := WindowAreas(n, r, false)
	for i, a := range torus {
		if a != 25 {
			t.Fatalf("torus area[%d] = %d, want 25", i, a)
		}
	}
	open := WindowAreas(n, r, true)
	// Corner: (r+1)^2; center: (2r+1)^2; edge midpoint: (r+1)*(2r+1).
	if open[0] != 9 {
		t.Errorf("corner area = %d, want 9", open[0])
	}
	if open[3*n+3] != 25 {
		t.Errorf("center area = %d, want 25", open[3*n+3])
	}
	if open[3] != 15 {
		t.Errorf("edge area = %d, want 15", open[3])
	}
	// Open areas agree with occupied counts on a fully occupied lattice.
	l := New(n, Plus)
	occ := l.OccupiedWindowCounts(r, true)
	for i := range occ {
		if occ[i] != open[i] {
			t.Fatalf("occupied[%d] = %d, area %d", i, occ[i], open[i])
		}
	}
}

func TestRandomScenarioMatchesRandomAtRhoZero(t *testing.T) {
	a := Random(16, 0.4, rng.New(99))
	b := RandomScenario(16, 0.4, 0, rng.New(99))
	if !a.Equal(b) {
		t.Fatal("rho=0 scenario lattice differs from Random (seed stability broken)")
	}
	if a.HasVacancies() {
		t.Fatal("rho=0 lattice has vacancies")
	}
}

func TestRandomScenarioVacancies(t *testing.T) {
	l := RandomScenario(50, 0.5, 0.2, rng.New(5))
	vac := l.Sites() - l.CountOccupied()
	if vac == 0 {
		t.Fatal("rho=0.2 produced no vacancies")
	}
	if got := float64(vac) / float64(l.Sites()); got < 0.12 || got > 0.28 {
		t.Errorf("vacancy fraction %v far from 0.2", got)
	}
	if l.CountPlus()+l.CountMinus()+vac != l.Sites() {
		t.Error("spin counts do not partition the lattice")
	}
	// Determinism.
	if !l.Equal(RandomScenario(50, 0.5, 0.2, rng.New(5))) {
		t.Error("RandomScenario not deterministic")
	}
	// Round trip through the text forms.
	back, err := Parse(l.String())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(l) {
		t.Error("String/Parse round trip with vacancies failed")
	}
}
