// Package grid implements the n x n torus lattice of two-type agents
// that is the state space of the model: spins valued +1/-1, Bernoulli(p)
// initial configurations, efficient neighborhood counting (separable
// sliding-window sums for the extended Moore neighborhood of radius w),
// and wrap-aware two-dimensional prefix sums for O(1) rectangle queries
// used by the measurement and renormalization packages.
package grid

import (
	"errors"
	"fmt"
	"strings"

	"gridseg/internal/geom"
	"gridseg/internal/rng"
	"gridseg/internal/scratch"
)

// Spin is the type of an agent: +1 or -1 (the paper's two agent
// types), or None (0) for a vacant site in vacancy scenarios.
type Spin int8

// The two agent types, plus the vacancy marker.
const (
	Plus  Spin = 1
	Minus Spin = -1
	// None marks a vacant site: no agent lives there. Vacancies only
	// appear in scenarios with a positive vacancy fraction; the paper's
	// lattices are fully occupied.
	None Spin = 0
)

// Opposite returns the other spin (None maps to itself).
func (s Spin) Opposite() Spin { return -s }

// Occupied reports whether the spin is an agent (not a vacancy).
func (s Spin) Occupied() bool { return s != None }

// String returns "+", "-", or "." for a vacancy.
func (s Spin) String() string {
	switch s {
	case Plus:
		return "+"
	case Minus:
		return "-"
	}
	return "."
}

// Lattice is an n x n torus of spins. The zero value is not usable;
// construct with New, Random or Parse.
type Lattice struct {
	tor   geom.Torus
	n     int
	spins []Spin
}

// New returns a lattice of side n with every agent of the given spin.
func New(n int, fill Spin) *Lattice {
	l := &Lattice{tor: geom.NewTorus(n), n: n, spins: make([]Spin, n*n)}
	for i := range l.spins {
		l.spins[i] = fill
	}
	return l
}

// Random returns a lattice whose agents are independently Plus with
// probability p and Minus otherwise — the paper's initial configuration
// (Bernoulli distribution of parameter p, with p = 1/2 in the theorems).
func Random(n int, p float64, src *rng.Source) *Lattice {
	return RandomScenario(n, p, 0, src)
}

// RandomScenario returns a lattice where each site is independently
// vacant with probability rho, and otherwise holds a Plus agent with
// probability p (Minus otherwise). With rho = 0 it consumes the random
// stream exactly like Random (the vacancy draw is skipped, not
// wasted), so default-scenario seeds stay stable.
func RandomScenario(n int, p, rho float64, src *rng.Source) *Lattice {
	l := New(n, Minus)
	for i := range l.spins {
		if src.Bernoulli(rho) {
			l.spins[i] = None
			continue
		}
		if src.Bernoulli(p) {
			l.spins[i] = Plus
		}
	}
	return l
}

// Parse builds a lattice from rows of '+', '-', and '.' (vacancy)
// characters separated by newlines; whitespace-only lines are ignored.
// All rows must have equal length and the result must be square. This
// is a testing convenience.
func Parse(s string) (*Lattice, error) {
	var rows []string
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line != "" {
			rows = append(rows, line)
		}
	}
	if len(rows) == 0 {
		return nil, errors.New("grid: empty input")
	}
	n := len(rows)
	l := New(n, Minus)
	for y, row := range rows {
		if len(row) != n {
			return nil, fmt.Errorf("grid: row %d has length %d, want %d", y, len(row), n)
		}
		for x, c := range row {
			switch c {
			case '+':
				l.spins[y*n+x] = Plus
			case '-':
				l.spins[y*n+x] = Minus
			case '.':
				l.spins[y*n+x] = None
			default:
				return nil, fmt.Errorf("grid: invalid character %q at (%d,%d)", c, x, y)
			}
		}
	}
	return l, nil
}

// N returns the side length.
func (l *Lattice) N() int { return l.n }

// Sites returns the number of agents, n^2.
func (l *Lattice) Sites() int { return l.n * l.n }

// Torus returns the underlying torus geometry.
func (l *Lattice) Torus() geom.Torus { return l.tor }

// Spin returns the spin at point p (coordinates are wrapped).
func (l *Lattice) Spin(p geom.Point) Spin {
	return l.spins[l.tor.Index(l.tor.WrapPoint(p))]
}

// SpinAt returns the spin at row-major index i.
func (l *Lattice) SpinAt(i int) Spin { return l.spins[i] }

// Set assigns the spin at point p (coordinates are wrapped).
func (l *Lattice) Set(p geom.Point, s Spin) {
	l.spins[l.tor.Index(l.tor.WrapPoint(p))] = s
}

// SetAt assigns the spin at row-major index i.
func (l *Lattice) SetAt(i int, s Spin) { l.spins[i] = s }

// Flip negates the spin at row-major index i and returns the new spin.
func (l *Lattice) Flip(i int) Spin {
	l.spins[i] = -l.spins[i]
	return l.spins[i]
}

// Clone returns a deep copy.
func (l *Lattice) Clone() *Lattice {
	c := &Lattice{tor: l.tor, n: l.n, spins: make([]Spin, len(l.spins))}
	copy(c.spins, l.spins)
	return c
}

// Equal reports whether two lattices have identical size and spins.
func (l *Lattice) Equal(o *Lattice) bool {
	if l.n != o.n {
		return false
	}
	for i, s := range l.spins {
		if o.spins[i] != s {
			return false
		}
	}
	return true
}

// CountPlus returns the total number of +1 agents.
func (l *Lattice) CountPlus() int {
	c := 0
	for _, s := range l.spins {
		if s == Plus {
			c++
		}
	}
	return c
}

// CountMinus returns the total number of -1 agents.
func (l *Lattice) CountMinus() int {
	c := 0
	for _, s := range l.spins {
		if s == Minus {
			c++
		}
	}
	return c
}

// CountOccupied returns the number of occupied sites (agents of either
// type); it equals Sites() on a fully occupied lattice.
func (l *Lattice) CountOccupied() int {
	c := 0
	for _, s := range l.spins {
		if s != None {
			c++
		}
	}
	return c
}

// OccupiedAt reports whether the site at row-major index i holds an
// agent.
func (l *Lattice) OccupiedAt(i int) bool { return l.spins[i] != None }

// HasVacancies reports whether any site is vacant.
func (l *Lattice) HasVacancies() bool {
	for _, s := range l.spins {
		if s == None {
			return true
		}
	}
	return false
}

// ErrWindowTooLarge is returned when a requested window of radius w
// would wrap onto itself on the torus (2w+1 > n). It reaches users
// through horizon validation: grid specs and model configs that pair a
// horizon with a too-small lattice are rejected with this error
// instead of panicking deep inside a count query.
var ErrWindowTooLarge = errors.New("window larger than lattice")

// CheckWindow validates that a radius-`radius` window fits the torus
// of side n without wrapping onto itself, returning ErrWindowTooLarge
// (wrapped with the offending sizes) otherwise.
func CheckWindow(n, radius int) error {
	if radius < 0 {
		return fmt.Errorf("grid: negative window radius %d", radius)
	}
	if 2*radius+1 > n {
		return fmt.Errorf("grid: %w: window side %d exceeds lattice side %d", ErrWindowTooLarge, 2*radius+1, n)
	}
	return nil
}

// PlusInSquare counts the +1 agents in the neighborhood of the given
// radius centered at p, by direct enumeration. Use WindowCounts for
// the all-centers version. It returns ErrWindowTooLarge when the
// window would wrap onto itself.
func (l *Lattice) PlusInSquare(p geom.Point, radius int) (int, error) {
	if err := CheckWindow(l.n, radius); err != nil {
		return 0, err
	}
	c := 0
	l.tor.Square(p, radius, func(q geom.Point) {
		if l.Spin(q) == Plus {
			c++
		}
	})
	return c, nil
}

// SameTypeInSquare counts agents in N_radius(p) having the same type as
// the agent at p, including the agent itself — the numerator of the
// paper's happiness ratio s(u). It returns ErrWindowTooLarge when the
// window would wrap onto itself.
func (l *Lattice) SameTypeInSquare(p geom.Point, radius int) (int, error) {
	plus, err := l.PlusInSquare(p, radius)
	if err != nil {
		return 0, err
	}
	if l.Spin(p) == Plus {
		return plus, nil
	}
	return geom.SquareSize(radius) - plus, nil
}

// WindowCounts returns, for every site u (row-major), the number of +1
// agents in the Chebyshev ball of the given radius centered at u. It uses
// two separable sliding-window passes (rows, then columns) and runs in
// O(n^2) independent of the radius. It panics if the window wraps onto
// itself (2*radius+1 > n).
func (l *Lattice) WindowCounts(radius int) []int32 {
	if 2*radius+1 > l.n {
		panic("grid: window larger than torus")
	}
	n := l.n
	// Pass 1: horizontal windows. rowSum[y*n+x] = number of +1 in
	// row y, columns x-radius .. x+radius (wrapped). The buffer is
	// pure scratch, recycled across calls (every entry is written
	// before the vertical pass reads it).
	rp := scratch.I32(n * n)
	rowSum := *rp
	for y := 0; y < n; y++ {
		base := y * n
		var acc int32
		for dx := -radius; dx <= radius; dx++ {
			if l.spins[base+wrap(dx, n)] == Plus {
				acc++
			}
		}
		rowSum[base] = acc
		for x := 1; x < n; x++ {
			// Window moves right: drop x-1-radius, add x+radius.
			if l.spins[base+wrap(x-1-radius, n)] == Plus {
				acc--
			}
			if l.spins[base+wrap(x+radius, n)] == Plus {
				acc++
			}
			rowSum[base+x] = acc
		}
	}
	// Pass 2: vertical windows over rowSum.
	out := make([]int32, n*n)
	for x := 0; x < n; x++ {
		var acc int32
		for dy := -radius; dy <= radius; dy++ {
			acc += rowSum[wrap(dy, n)*n+x]
		}
		out[x] = acc
		for y := 1; y < n; y++ {
			acc -= rowSum[wrap(y-1-radius, n)*n+x]
			acc += rowSum[wrap(y+radius, n)*n+x]
			out[y*n+x] = acc
		}
	}
	scratch.PutI32(rp)
	return out
}

func wrap(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}

// String renders the lattice as rows of '+'/'-' characters, with '.'
// for vacant sites.
func (l *Lattice) String() string {
	var b strings.Builder
	b.Grow(l.n * (l.n + 1))
	for y := 0; y < l.n; y++ {
		for x := 0; x < l.n; x++ {
			switch l.spins[y*l.n+x] {
			case Plus:
				b.WriteByte('+')
			case Minus:
				b.WriteByte('-')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
