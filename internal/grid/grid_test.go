package grid

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"gridseg/internal/geom"
	"gridseg/internal/rng"
)

func TestSpinBasics(t *testing.T) {
	if Plus.Opposite() != Minus || Minus.Opposite() != Plus {
		t.Fatal("Opposite broken")
	}
	if Plus.String() != "+" || Minus.String() != "-" {
		t.Fatal("String broken")
	}
}

func TestNewFill(t *testing.T) {
	l := New(4, Plus)
	if l.CountPlus() != 16 {
		t.Fatalf("CountPlus = %d, want 16", l.CountPlus())
	}
	l2 := New(4, Minus)
	if l2.CountPlus() != 0 {
		t.Fatalf("CountPlus = %d, want 0", l2.CountPlus())
	}
}

func TestRandomDeterministicAndMean(t *testing.T) {
	a := Random(50, 0.5, rng.New(1))
	b := Random(50, 0.5, rng.New(1))
	if !a.Equal(b) {
		t.Fatal("Random must be deterministic for a fixed seed")
	}
	frac := float64(a.CountPlus()) / float64(a.Sites())
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("plus fraction = %v, want ~0.5", frac)
	}
	c := Random(50, 0.9, rng.New(2))
	frac = float64(c.CountPlus()) / float64(c.Sites())
	if math.Abs(frac-0.9) > 0.05 {
		t.Fatalf("plus fraction = %v, want ~0.9", frac)
	}
}

func TestParseAndString(t *testing.T) {
	src := `
		+-+
		-+-
		++-
	`
	l, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if l.N() != 3 {
		t.Fatalf("N = %d", l.N())
	}
	if l.Spin(geom.Point{X: 0, Y: 0}) != Plus || l.Spin(geom.Point{X: 1, Y: 0}) != Minus {
		t.Fatal("parse placed spins incorrectly")
	}
	if got, want := l.String(), "+-+\n-+-\n++-\n"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	round, err := Parse(l.String())
	if err != nil || !round.Equal(l) {
		t.Fatal("Parse(String()) must round-trip")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "+-\n+", "+x\n++", "++\n++\n++"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) must fail", bad)
		}
	}
}

func TestSetGetFlipWrap(t *testing.T) {
	l := New(5, Minus)
	l.Set(geom.Point{X: -1, Y: -1}, Plus) // wraps to (4,4)
	if l.Spin(geom.Point{X: 4, Y: 4}) != Plus {
		t.Fatal("Set must wrap coordinates")
	}
	i := l.Torus().Index(geom.Point{X: 4, Y: 4})
	if got := l.Flip(i); got != Minus {
		t.Fatalf("Flip returned %v, want Minus", got)
	}
	if l.SpinAt(i) != Minus {
		t.Fatal("Flip did not store the new value")
	}
}

func TestCloneIsDeep(t *testing.T) {
	l := Random(10, 0.5, rng.New(3))
	c := l.Clone()
	if !c.Equal(l) {
		t.Fatal("clone differs")
	}
	c.SetAt(0, c.SpinAt(0).Opposite())
	if c.Equal(l) {
		t.Fatal("mutating clone affected original")
	}
}

func TestEqualDifferentSizes(t *testing.T) {
	if New(3, Plus).Equal(New(4, Plus)) {
		t.Fatal("different sizes must not be equal")
	}
}

func TestSameTypeInSquareHandCase(t *testing.T) {
	l, err := Parse(`
		+-+
		-+-
		++-
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Radius 1 around (1,1): the whole 3x3 grid (torus). 5 plus, 4 minus;
	// center is +, so same-type = 5.
	c := geom.Point{X: 1, Y: 1}
	if got, err := l.SameTypeInSquare(c, 1); err != nil || got != 5 {
		t.Fatalf("SameTypeInSquare = %d, %v, want 5", got, err)
	}
	// Flip center to minus: same-type = 5 now counts minus agents = 5.
	l.Set(c, Minus)
	if got, err := l.SameTypeInSquare(c, 1); err != nil || got != 5 {
		t.Fatalf("SameTypeInSquare after flip = %d, %v, want 5", got, err)
	}
}

func TestWindowCountsMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct{ n, radius int }{
		{5, 0}, {5, 1}, {5, 2}, {9, 2}, {9, 4}, {16, 3}, {17, 8},
	} {
		l := Random(tc.n, 0.5, rng.New(uint64(tc.n*100+tc.radius)))
		counts := l.WindowCounts(tc.radius)
		for i := 0; i < l.Sites(); i++ {
			p := l.Torus().At(i)
			want, err := l.PlusInSquare(p, tc.radius)
			if err != nil {
				t.Fatal(err)
			}
			if int(counts[i]) != want {
				t.Fatalf("n=%d r=%d site %v: window %d, brute %d",
					tc.n, tc.radius, p, counts[i], want)
			}
		}
	}
}

func TestWindowCountsPanicsOnOversizedWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(5, Plus).WindowCounts(3)
}

func TestPrefixMatchesBruteForce(t *testing.T) {
	l := Random(13, 0.5, rng.New(7))
	p := NewPrefix(l)
	// All squares at all centers for several radii.
	for radius := 0; radius <= 5; radius++ {
		for i := 0; i < l.Sites(); i++ {
			c := l.Torus().At(i)
			want, err := l.PlusInSquare(c, radius)
			if err != nil {
				t.Fatal(err)
			}
			if got, err := p.PlusInSquare(c, radius); err != nil || got != want {
				t.Fatalf("radius %d center %v: prefix %d (%v), brute %d", radius, c, got, err, want)
			}
		}
	}
}

func TestPrefixRectWrapDecomposition(t *testing.T) {
	l := Random(8, 0.5, rng.New(9))
	p := NewPrefix(l)
	brute := func(x0, y0, wd, ht int) int {
		c := 0
		for dy := 0; dy < ht; dy++ {
			for dx := 0; dx < wd; dx++ {
				if l.Spin(geom.Point{X: x0 + dx, Y: y0 + dy}) == Plus {
					c++
				}
			}
		}
		return c
	}
	for x0 := -3; x0 < 11; x0++ {
		for y0 := -3; y0 < 11; y0++ {
			for wd := 0; wd <= 8; wd++ {
				for ht := 0; ht <= 8; ht++ {
					if got, want := p.PlusInRect(x0, y0, wd, ht), brute(x0, y0, wd, ht); got != want {
						t.Fatalf("rect (%d,%d,%d,%d): prefix %d, brute %d", x0, y0, wd, ht, got, want)
					}
				}
			}
		}
	}
}

func TestPrefixFullGrid(t *testing.T) {
	l := Random(10, 0.5, rng.New(11))
	p := NewPrefix(l)
	if got := p.PlusInRect(0, 0, 10, 10); got != l.CountPlus() {
		t.Fatalf("full-grid count %d, want %d", got, l.CountPlus())
	}
	plus, minus := p.CountsInRect(0, 0, 10, 10)
	if plus+minus != 100 {
		t.Fatalf("counts %d + %d != 100", plus, minus)
	}
}

func TestPrefixPanicsOnBadSize(t *testing.T) {
	p := NewPrefix(New(5, Plus))
	for _, f := range []func(){
		func() { p.PlusInRect(0, 0, 6, 1) },
		func() { p.PlusInRect(0, 0, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestPlusInSquareOversizedWindow pins the typed error: a window that
// would wrap onto itself is an error (reachable from a user-supplied
// horizon), not a panic.
func TestPlusInSquareOversizedWindow(t *testing.T) {
	l := New(5, Plus)
	if _, err := NewPrefix(l).PlusInSquare(geom.Point{}, 3); !errors.Is(err, ErrWindowTooLarge) {
		t.Errorf("prefix oversized square: err = %v, want ErrWindowTooLarge", err)
	}
	if _, err := l.PlusInSquare(geom.Point{}, 3); !errors.Is(err, ErrWindowTooLarge) {
		t.Errorf("lattice oversized square: err = %v, want ErrWindowTooLarge", err)
	}
	if _, err := l.SameTypeInSquare(geom.Point{}, 3); !errors.Is(err, ErrWindowTooLarge) {
		t.Errorf("oversized same-type square: err = %v, want ErrWindowTooLarge", err)
	}
	if _, err := l.PlusInSquare(geom.Point{}, -1); err == nil {
		t.Error("negative radius accepted")
	}
	if got, err := l.PlusInSquare(geom.Point{X: 2, Y: 2}, 2); err != nil || got != 25 {
		t.Errorf("valid square: got %d, %v", got, err)
	}
}

func TestMinorityRatio(t *testing.T) {
	mono := New(5, Plus)
	p := NewPrefix(mono)
	if got := p.MinorityRatioInSquare(geom.Point{X: 2, Y: 2}, 2); got != 0 {
		t.Fatalf("monochromatic ratio = %v, want 0", got)
	}
	l, err := Parse(`
		+++
		+-+
		+++
	`)
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewPrefix(l)
	if got := p2.MinorityRatioInSquare(geom.Point{X: 1, Y: 1}, 1); math.Abs(got-1.0/8) > 1e-12 {
		t.Fatalf("ratio = %v, want 1/8", got)
	}
}

func TestPrefixIsSnapshot(t *testing.T) {
	l := New(4, Minus)
	p := NewPrefix(l)
	l.SetAt(0, Plus)
	if p.PlusInRect(0, 0, 4, 4) != 0 {
		t.Fatal("prefix must be a snapshot, not a live view")
	}
}

// Property: window counts at a random site equal the brute-force count,
// over random lattices, sizes, and radii.
func TestQuickWindowCounts(t *testing.T) {
	f := func(seed uint64, nRaw, rRaw uint8) bool {
		n := 5 + int(nRaw%12) // 5..16
		maxR := (n - 1) / 2
		radius := int(rRaw) % (maxR + 1)
		l := Random(n, 0.5, rng.New(seed))
		counts := l.WindowCounts(radius)
		i := int(seed % uint64(l.Sites()))
		want, err := l.PlusInSquare(l.Torus().At(i), radius)
		return err == nil && int(counts[i]) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: prefix square counts equal brute force at random points.
func TestQuickPrefixSquare(t *testing.T) {
	f := func(seed uint64, nRaw, rRaw uint8) bool {
		n := 5 + int(nRaw%12)
		maxR := (n - 1) / 2
		radius := int(rRaw) % (maxR + 1)
		l := Random(n, 0.5, rng.New(seed))
		p := NewPrefix(l)
		i := int(seed % uint64(l.Sites()))
		c := l.Torus().At(i)
		got, err1 := p.PlusInSquare(c, radius)
		want, err2 := l.PlusInSquare(c, radius)
		return err1 == nil && err2 == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWindowCounts(b *testing.B) {
	l := Random(512, 0.5, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.WindowCounts(10)
	}
}

func BenchmarkPrefixBuild(b *testing.B) {
	l := Random(512, 0.5, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewPrefix(l)
	}
}
