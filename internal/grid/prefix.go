package grid

import (
	"math"

	"gridseg/internal/geom"
)

// Prefix holds two-dimensional prefix sums of the +1 indicator over a
// lattice snapshot, enabling O(1) counts of +1 (and hence -1) agents in
// arbitrary axis-aligned rectangles, with torus wrap-around handled by
// decomposition into at most four non-wrapping rectangles.
//
// A Prefix is a snapshot: it does not track later mutations of the
// lattice it was built from.
type Prefix struct {
	n   int
	sum []int32 // (n+1) x (n+1), sum[y][x] = count in [0,x) x [0,y)
}

// NewPrefix builds prefix sums from the current state of l.
func NewPrefix(l *Lattice) *Prefix {
	n := l.n
	p := &Prefix{n: n, sum: make([]int32, (n+1)*(n+1))}
	w := n + 1
	for y := 0; y < n; y++ {
		var rowAcc int32
		for x := 0; x < n; x++ {
			if l.spins[y*n+x] == Plus {
				rowAcc++
			}
			p.sum[(y+1)*w+(x+1)] = p.sum[y*w+(x+1)] + rowAcc
		}
	}
	return p
}

// N returns the side length of the underlying lattice.
func (p *Prefix) N() int { return p.n }

// flatRect counts +1 agents in the non-wrapping rectangle
// [x0, x0+wd) x [y0, y0+ht) with 0 <= x0, x0+wd <= n.
func (p *Prefix) flatRect(x0, y0, wd, ht int) int {
	w := p.n + 1
	x1, y1 := x0+wd, y0+ht
	return int(p.sum[y1*w+x1] - p.sum[y0*w+x1] - p.sum[y1*w+x0] + p.sum[y0*w+x0])
}

// PlusInRect counts +1 agents in the torus rectangle of width wd and
// height ht whose top-left corner is (x0, y0). Coordinates are wrapped;
// wd and ht must be in [0, n]. It panics on out-of-range sizes.
func (p *Prefix) PlusInRect(x0, y0, wd, ht int) int {
	if wd < 0 || ht < 0 || wd > p.n || ht > p.n {
		panic("grid: rectangle size out of range")
	}
	if wd == 0 || ht == 0 {
		return 0
	}
	x0 = wrap(x0, p.n)
	y0 = wrap(y0, p.n)
	// Split each axis into a part before the wrap and a part after.
	xSpans := [][2]int{{x0, min(wd, p.n-x0)}}
	if x0+wd > p.n {
		xSpans = append(xSpans, [2]int{0, x0 + wd - p.n})
	}
	ySpans := [][2]int{{y0, min(ht, p.n-y0)}}
	if y0+ht > p.n {
		ySpans = append(ySpans, [2]int{0, y0 + ht - p.n})
	}
	total := 0
	for _, xs := range xSpans {
		for _, ys := range ySpans {
			total += p.flatRect(xs[0], ys[0], xs[1], ys[1])
		}
	}
	return total
}

// PlusInSquare counts +1 agents in the neighborhood N_radius centered
// at c, in O(1). Matches Lattice.PlusInSquare on the snapshot. It
// returns ErrWindowTooLarge when the square would wrap onto itself
// (2*radius+1 > n) — reachable from a user-supplied horizon, so it is
// an error, not a panic.
func (p *Prefix) PlusInSquare(c geom.Point, radius int) (int, error) {
	if err := CheckWindow(p.n, radius); err != nil {
		return 0, err
	}
	side := 2*radius + 1
	return p.PlusInRect(c.X-radius, c.Y-radius, side, side), nil
}

// CountsInRect returns the (+1, -1) agent counts of a torus rectangle.
func (p *Prefix) CountsInRect(x0, y0, wd, ht int) (plus, minus int) {
	plus = p.PlusInRect(x0, y0, wd, ht)
	return plus, wd*ht - plus
}

// MinorityRatioInSquare returns minority/majority counts for the square
// neighborhood N_radius centered at c: the quantity bounded by e^{-eps N}
// in the definition of an almost monochromatic region. A fully
// monochromatic square has ratio 0. An empty square returns 0.
func (p *Prefix) MinorityRatioInSquare(c geom.Point, radius int) float64 {
	plus, err := p.PlusInSquare(c, radius)
	if err != nil {
		// An oversized square is never almost monochromatic; +Inf fails
		// every ratio bound. Callers cap their radii, so this is
		// defensive only.
		return math.Inf(1)
	}
	total := geom.SquareSize(radius)
	minus := total - plus
	lo, hi := plus, minus
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi == 0 {
		return 0
	}
	return float64(lo) / float64(hi)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
