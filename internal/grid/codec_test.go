package grid

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
	"testing/quick"

	"gridseg/internal/rng"
)

// restamp recomputes the trailing CRC after a test mutated the body.
func restamp(data []byte) {
	body := data[:len(data)-4]
	binary.BigEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(body))
}

func TestCodecRoundTrip(t *testing.T) {
	for _, n := range []int{1, 3, 8, 17, 50} {
		l := Random(n, 0.5, rng.New(uint64(n)))
		data, err := l.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalBinary(data)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(l) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	l := Random(10, 0.5, rng.New(1))
	data, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"truncated":    func(b []byte) []byte { return b[:len(b)-5] },
		"bad magic":    func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bad version":  func(b []byte) []byte { b[4] = 99; return b },
		"flipped bit":  func(b []byte) []byte { b[12] ^= 1; return b },
		"bad checksum": func(b []byte) []byte { b[len(b)-1] ^= 1; return b },
		"empty":        func(b []byte) []byte { return nil },
	}
	for name, corrupt := range cases {
		cp := append([]byte(nil), data...)
		if _, err := UnmarshalBinary(corrupt(cp)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestCodecRejectsSizeMismatch(t *testing.T) {
	l := Random(5, 0.5, rng.New(2))
	data, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Claim a different side length; the length check must fire before
	// any allocation.
	data[8] = 200
	if _, err := UnmarshalBinary(data); err == nil {
		t.Fatal("want error for size mismatch")
	}
}

func TestCodecVacancyRoundTrip(t *testing.T) {
	for _, rho := range []float64{0.05, 0.3, 0.9} {
		l := RandomScenario(20, 0.5, rho, rng.New(uint64(rho*100)))
		data, err := l.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if data[4] != codecVersion2 {
			t.Fatalf("rho=%v: version %d, want v2 for vacancy lattices", rho, data[4])
		}
		back, err := UnmarshalBinary(data)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(l) {
			t.Fatalf("rho=%v: vacancy round trip mismatch", rho)
		}
	}
}

// TestCodecFullLatticeStaysV1 pins backward compatibility: fully
// occupied lattices keep the exact v1 encoding, so configurations
// written before the scenario subsystem still decode, and new writes
// of old-style lattices are byte-identical.
func TestCodecFullLatticeStaysV1(t *testing.T) {
	l := Random(9, 0.5, rng.New(3))
	data, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if data[4] != codecVersion {
		t.Fatalf("version %d, want v1 for fully occupied lattices", data[4])
	}
}

func TestCodecRejectsContradictoryPlanes(t *testing.T) {
	// A site marked both +1 and vacant is structurally invalid; build
	// such an object by flipping an occupancy bit and re-stamping the
	// CRC.
	l := RandomScenario(4, 1, 0.5, rng.New(8)) // all occupied sites are +
	if !l.HasVacancies() || l.CountPlus() == 0 {
		t.Skip("degenerate draw")
	}
	data, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Find a + site and clear its occupancy bit.
	packed := (l.Sites() + 7) / 8
	var target int = -1
	for i := 0; i < l.Sites(); i++ {
		if l.SpinAt(i) == Plus {
			target = i
			break
		}
	}
	occStart := 4 + 1 + 4 + packed
	data[occStart+target/8] &^= 1 << (target % 8)
	restamp(data)
	if _, err := UnmarshalBinary(data); err == nil {
		t.Fatal("contradictory planes accepted")
	}
}

func TestQuickCodecVacancyRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw, rhoRaw uint8) bool {
		n := 1 + int(nRaw%30)
		rho := float64(rhoRaw%10) / 10
		l := RandomScenario(n, 0.5, rho, rng.New(seed))
		data, err := l.MarshalBinary()
		if err != nil {
			return false
		}
		back, err := UnmarshalBinary(data)
		return err == nil && back.Equal(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 1 + int(nRaw%30)
		l := Random(n, 0.5, rng.New(seed))
		data, err := l.MarshalBinary()
		if err != nil {
			return false
		}
		back, err := UnmarshalBinary(data)
		return err == nil && back.Equal(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
