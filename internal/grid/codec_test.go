package grid

import (
	"testing"
	"testing/quick"

	"gridseg/internal/rng"
)

func TestCodecRoundTrip(t *testing.T) {
	for _, n := range []int{1, 3, 8, 17, 50} {
		l := Random(n, 0.5, rng.New(uint64(n)))
		data, err := l.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalBinary(data)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(l) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	l := Random(10, 0.5, rng.New(1))
	data, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"truncated":    func(b []byte) []byte { return b[:len(b)-5] },
		"bad magic":    func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bad version":  func(b []byte) []byte { b[4] = 99; return b },
		"flipped bit":  func(b []byte) []byte { b[12] ^= 1; return b },
		"bad checksum": func(b []byte) []byte { b[len(b)-1] ^= 1; return b },
		"empty":        func(b []byte) []byte { return nil },
	}
	for name, corrupt := range cases {
		cp := append([]byte(nil), data...)
		if _, err := UnmarshalBinary(corrupt(cp)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestCodecRejectsSizeMismatch(t *testing.T) {
	l := Random(5, 0.5, rng.New(2))
	data, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Claim a different side length; the length check must fire before
	// any allocation.
	data[8] = 200
	if _, err := UnmarshalBinary(data); err == nil {
		t.Fatal("want error for size mismatch")
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 1 + int(nRaw%30)
		l := Random(n, 0.5, rng.New(seed))
		data, err := l.MarshalBinary()
		if err != nil {
			return false
		}
		back, err := UnmarshalBinary(data)
		return err == nil && back.Equal(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
