package grid

import (
	"testing"

	"gridseg/internal/rng"
)

// FuzzUnmarshalBinary throws arbitrary bytes at the configuration
// codec. The decoder's contract is: never panic, never allocate
// proportionally to a lied-about size, and round-trip every value it
// accepts. Seeds cover both codec versions, truncations, CRC damage,
// and implausible side lengths.
func FuzzUnmarshalBinary(f *testing.F) {
	// Valid v1 and v2 encodings as structure-aware seeds.
	full := Random(9, 0.5, rng.New(1))
	if data, err := full.MarshalBinary(); err == nil {
		f.Add(data)
		// Truncations and header damage around a valid body.
		f.Add(data[:len(data)-1])
		f.Add(data[:9])
		bad := append([]byte(nil), data...)
		bad[4] = 99
		f.Add(bad)
	}
	vac := RandomScenario(8, 0.5, 0.3, rng.New(2))
	if data, err := vac.MarshalBinary(); err == nil {
		f.Add(data)
		bad := append([]byte(nil), data...)
		bad[len(bad)-1] ^= 1
		f.Add(bad)
	}
	// Implausible side length with a well-formed header.
	huge := []byte("GSEG\x01\x7f\xff\xff\xff")
	f.Add(append(huge, make([]byte, 16)...))
	f.Add([]byte{})
	f.Add([]byte("GSEG"))

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := UnmarshalBinary(data)
		if err != nil {
			return
		}
		// Anything accepted must re-encode and decode to an equal
		// lattice (the encoding is canonical per occupancy class).
		out, err := l.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted lattice fails to marshal: %v", err)
		}
		back, err := UnmarshalBinary(out)
		if err != nil {
			t.Fatalf("re-encoded lattice fails to decode: %v", err)
		}
		if !back.Equal(l) {
			t.Fatal("round trip through re-encoding changed the lattice")
		}
	})
}
