package grid

import "gridseg/internal/scratch"

// Scenario-aware window counting. The paper's setting only ever needs
// WindowCounts (torus, +1 indicator); the functions here generalize it
// along two axes for the topology subsystem: the counted indicator
// (+1 agents vs occupied sites, which differ once vacancies exist) and
// the boundary condition (wrap-around vs open hard walls, where
// windows clamp at the grid edges instead of wrapping).

// PlusWindowCounts returns, for every site u (row-major), the number
// of +1 agents in the radius-`radius` Chebyshev window centered at u.
// Under the torus boundary (open=false) it matches WindowCounts; under
// the open boundary the window is clamped at the edges, so edge and
// corner sites count over truncated neighborhoods.
func (l *Lattice) PlusWindowCounts(radius int, open bool) []int32 {
	if !open {
		return l.WindowCounts(radius)
	}
	return l.clampedCounts(radius, func(s Spin) bool { return s == Plus })
}

// OccupiedWindowCounts returns, for every site u, the number of
// occupied sites (agents of either type) in the window centered at u,
// clamped at the edges when open. On a fully occupied lattice this
// equals WindowAreas.
func (l *Lattice) OccupiedWindowCounts(radius int, open bool) []int32 {
	if !open {
		return l.wrappedCounts(radius, func(s Spin) bool { return s != None })
	}
	return l.clampedCounts(radius, func(s Spin) bool { return s != None })
}

// WindowAreas returns the geometric size of every site's window: the
// constant (2*radius+1)^2 on the torus, and the truncated
// (clamped-width x clamped-height) product under the open boundary —
// down to (radius+1)^2 in a corner.
func WindowAreas(n, radius int, open bool) []int32 {
	out := make([]int32, n*n)
	if !open {
		full := int32((2*radius + 1) * (2*radius + 1))
		for i := range out {
			out[i] = full
		}
		return out
	}
	span := make([]int32, n)
	for a := 0; a < n; a++ {
		lo, hi := a-radius, a+radius
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		span[a] = int32(hi - lo + 1)
	}
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			out[y*n+x] = span[y] * span[x]
		}
	}
	return out
}

// wrappedCounts is the generic torus two-pass sliding window over an
// arbitrary spin indicator (WindowCounts is its hand-specialized +1
// instance). It panics if the window wraps onto itself, like
// WindowCounts.
func (l *Lattice) wrappedCounts(radius int, match func(Spin) bool) []int32 {
	if 2*radius+1 > l.n {
		panic("grid: window larger than torus")
	}
	n := l.n
	rp := scratch.I32(n * n)
	rowSum := *rp
	for y := 0; y < n; y++ {
		base := y * n
		var acc int32
		for dx := -radius; dx <= radius; dx++ {
			if match(l.spins[base+wrap(dx, n)]) {
				acc++
			}
		}
		rowSum[base] = acc
		for x := 1; x < n; x++ {
			if match(l.spins[base+wrap(x-1-radius, n)]) {
				acc--
			}
			if match(l.spins[base+wrap(x+radius, n)]) {
				acc++
			}
			rowSum[base+x] = acc
		}
	}
	out := make([]int32, n*n)
	for x := 0; x < n; x++ {
		var acc int32
		for dy := -radius; dy <= radius; dy++ {
			acc += rowSum[wrap(dy, n)*n+x]
		}
		out[x] = acc
		for y := 1; y < n; y++ {
			acc -= rowSum[wrap(y-1-radius, n)*n+x]
			acc += rowSum[wrap(y+radius, n)*n+x]
			out[y*n+x] = acc
		}
	}
	scratch.PutI32(rp)
	return out
}

// clampedCounts computes per-site window counts under the open
// boundary by two prefix-sum passes: horizontal windows clamp their
// column range to [0, n), then vertical windows clamp their row range.
// Any radius >= 0 is well defined (a huge radius just counts the whole
// grid).
func (l *Lattice) clampedCounts(radius int, match func(Spin) bool) []int32 {
	n := l.n
	rp := scratch.I32(n * n)
	rowSum := *rp
	pre := make([]int32, n+1)
	for y := 0; y < n; y++ {
		base := y * n
		for x := 0; x < n; x++ {
			pre[x+1] = pre[x]
			if match(l.spins[base+x]) {
				pre[x+1]++
			}
		}
		for x := 0; x < n; x++ {
			lo, hi := x-radius, x+radius+1
			if lo < 0 {
				lo = 0
			}
			if hi > n {
				hi = n
			}
			rowSum[base+x] = pre[hi] - pre[lo]
		}
	}
	out := make([]int32, n*n)
	col := make([]int32, n+1)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			col[y+1] = col[y] + rowSum[y*n+x]
		}
		for y := 0; y < n; y++ {
			lo, hi := y-radius, y+radius+1
			if lo < 0 {
				lo = 0
			}
			if hi > n {
				hi = n
			}
			out[y*n+x] = col[hi] - col[lo]
		}
	}
	scratch.PutI32(rp)
	return out
}
