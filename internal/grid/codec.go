package grid

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Binary configuration format: a fixed header, bit-packed spins
// (1 = Plus), and a CRC-32 of everything before it. The format lets
// experiment runs checkpoint and replay exact configurations.
const (
	codecMagic   = "GSEG"
	codecVersion = 1
)

// MarshalBinary encodes the lattice. The layout is
// magic[4] version[1] n[4, big endian] packed-spins[ceil(n^2/8)] crc[4].
func (l *Lattice) MarshalBinary() ([]byte, error) {
	sites := l.Sites()
	packed := (sites + 7) / 8
	out := make([]byte, 0, 4+1+4+packed+4)
	out = append(out, codecMagic...)
	out = append(out, codecVersion)
	out = binary.BigEndian.AppendUint32(out, uint32(l.n))
	bits := make([]byte, packed)
	for i, s := range l.spins {
		if s == Plus {
			bits[i/8] |= 1 << (i % 8)
		}
	}
	out = append(out, bits...)
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return out, nil
}

// UnmarshalBinary decodes a configuration written by MarshalBinary,
// verifying magic, version, size consistency and checksum.
func UnmarshalBinary(data []byte) (*Lattice, error) {
	const headerLen = 4 + 1 + 4
	if len(data) < headerLen+4 {
		return nil, errors.New("grid: truncated configuration")
	}
	if string(data[:4]) != codecMagic {
		return nil, errors.New("grid: bad magic")
	}
	if data[4] != codecVersion {
		return nil, fmt.Errorf("grid: unsupported version %d", data[4])
	}
	n := int(binary.BigEndian.Uint32(data[5:9]))
	if n <= 0 || n > 1<<15 {
		return nil, fmt.Errorf("grid: implausible side length %d", n)
	}
	sites := n * n
	packed := (sites + 7) / 8
	if len(data) != headerLen+packed+4 {
		return nil, fmt.Errorf("grid: length %d does not match side %d", len(data), n)
	}
	body := data[:len(data)-4]
	want := binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return nil, errors.New("grid: checksum mismatch")
	}
	l := New(n, Minus)
	bits := data[headerLen : headerLen+packed]
	for i := 0; i < sites; i++ {
		if bits[i/8]&(1<<(i%8)) != 0 {
			l.spins[i] = Plus
		}
	}
	return l, nil
}
