package grid

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Binary configuration format: a fixed header, bit-packed spins
// (1 = Plus), and a CRC-32 of everything before it. The format lets
// experiment runs checkpoint and replay exact configurations.
//
// Version 1 encodes fully occupied lattices (the paper's setting) with
// one bit per site. Version 2 appends a second bit plane marking
// occupied sites, so vacancy scenarios round-trip too; MarshalBinary
// only emits it when the lattice actually has vacancies, keeping v1
// bytes stable for every pre-scenario configuration.
const (
	codecMagic    = "GSEG"
	codecVersion  = 1
	codecVersion2 = 2

	// codecMaxSide bounds the accepted side length; anything larger is
	// an implausible configuration (and would allocate gigabytes).
	codecMaxSide = 1 << 15
)

// MarshalBinary encodes the lattice. The layout is
// magic[4] version[1] n[4, big endian] packed-spins[ceil(n^2/8)]
// {packed-occupancy[ceil(n^2/8)] if version 2} crc[4].
func (l *Lattice) MarshalBinary() ([]byte, error) {
	sites := l.Sites()
	packed := (sites + 7) / 8
	version := byte(codecVersion)
	planes := 1
	if l.HasVacancies() {
		version = codecVersion2
		planes = 2
	}
	out := make([]byte, 0, 4+1+4+planes*packed+4)
	out = append(out, codecMagic...)
	out = append(out, version)
	out = binary.BigEndian.AppendUint32(out, uint32(l.n))
	bits := make([]byte, packed)
	for i, s := range l.spins {
		if s == Plus {
			bits[i/8] |= 1 << (i % 8)
		}
	}
	out = append(out, bits...)
	if planes == 2 {
		occ := make([]byte, packed)
		for i, s := range l.spins {
			if s != None {
				occ[i/8] |= 1 << (i % 8)
			}
		}
		out = append(out, occ...)
	}
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return out, nil
}

// UnmarshalBinary decodes a configuration written by MarshalBinary,
// verifying magic, version, size consistency and checksum. It never
// panics: truncated, corrupt, or implausible inputs return an error.
func UnmarshalBinary(data []byte) (*Lattice, error) {
	const headerLen = 4 + 1 + 4
	if len(data) < headerLen+4 {
		return nil, errors.New("grid: truncated configuration")
	}
	if string(data[:4]) != codecMagic {
		return nil, errors.New("grid: bad magic")
	}
	version := data[4]
	if version != codecVersion && version != codecVersion2 {
		return nil, fmt.Errorf("grid: unsupported version %d", version)
	}
	n := int(binary.BigEndian.Uint32(data[5:9]))
	if n <= 0 || n > codecMaxSide {
		return nil, fmt.Errorf("grid: implausible side length %d", n)
	}
	sites := n * n
	packed := (sites + 7) / 8
	planes := 1
	if version == codecVersion2 {
		planes = 2
	}
	if len(data) != headerLen+planes*packed+4 {
		return nil, fmt.Errorf("grid: length %d does not match side %d (v%d)", len(data), n, version)
	}
	body := data[:len(data)-4]
	want := binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return nil, errors.New("grid: checksum mismatch")
	}
	l := New(n, Minus)
	bits := data[headerLen : headerLen+packed]
	for i := 0; i < sites; i++ {
		if bits[i/8]&(1<<(i%8)) != 0 {
			l.spins[i] = Plus
		}
	}
	if planes == 2 {
		occ := data[headerLen+packed : headerLen+2*packed]
		for i := 0; i < sites; i++ {
			if occ[i/8]&(1<<(i%8)) == 0 {
				if l.spins[i] == Plus {
					return nil, fmt.Errorf("grid: site %d marked both +1 and vacant", i)
				}
				l.spins[i] = None
			}
		}
	}
	return l, nil
}
