package grid

// LatticeView is the read-only lattice interface shared by every
// storage layout: the reference spin array (Lattice), the flat
// bit-packed layout (fastgrid.Lattice), and the tile-blocked layout
// for giant grids (fastgrid.Tiled) all satisfy it. Measurement code
// written against LatticeView runs unchanged on any of them, which is
// what lets the streaming observables avoid materializing a reference
// copy of a packed lattice just to measure it.
//
// Site indices are row-major: site (x, y) is y*N()+x. A vacant site
// reports SpinAt = None and OccupiedAt = false; on layouts without a
// vacancy plane OccupiedAt is constantly true.
type LatticeView interface {
	// N returns the side length.
	N() int
	// Sites returns the number of sites, N()^2.
	Sites() int
	// SpinAt returns the spin at row-major index i (None if vacant).
	SpinAt(i int) Spin
	// OccupiedAt reports whether site i holds an agent.
	OccupiedAt(i int) bool
	// HasVacancies reports whether any site can be vacant.
	HasVacancies() bool
}

// The reference lattice is itself a view.
var _ LatticeView = (*Lattice)(nil)
