// Package trace records trajectory time series of a running process:
// sampled observables (unhappy count, happy fraction, interface density,
// continuous time) every fixed number of flips. Traces are the raw data
// behind evolution plots like the paper's Figure 1 and are exportable
// as CSV via the report package.
package trace

import (
	"errors"

	"gridseg/internal/grid"
	"gridseg/internal/measure"
	"gridseg/internal/report"
)

// Sample is one row of a trajectory time series.
type Sample struct {
	Flips            int64
	Time             float64
	UnhappyCount     int
	HappyFraction    float64
	InterfaceDensity float64
	// Geometry observables (see internal/measure), recorded only when
	// the recorder was built with IncludeGeometry.
	InterfaceLength   float64
	BoundaryCurvature float64
}

// Observable exposes the process state a Recorder samples; both the
// base process and the variant process satisfy it.
type Observable interface {
	Lattice() *grid.Lattice
	Flips() int64
	Time() float64
	UnhappyCount() int
}

// Recorder collects samples from an observable process every Interval
// flips (plus an initial sample). The heavier interface-density pass is
// optional.
type Recorder struct {
	obs           Observable
	interval      int64
	withInterface bool
	withGeometry  bool
	geometryOpen  bool
	samples       []Sample
	lastFlips     int64
}

// NewRecorder creates a recorder with the given sampling interval.
func NewRecorder(obs Observable, interval int64, withInterface bool) (*Recorder, error) {
	if obs == nil {
		return nil, errors.New("trace: nil observable")
	}
	if interval < 1 {
		return nil, errors.New("trace: interval must be >= 1")
	}
	r := &Recorder{obs: obs, interval: interval, withInterface: withInterface, lastFlips: -1}
	r.take()
	return r, nil
}

// take records a sample unconditionally.
func (r *Recorder) take() {
	lat := r.obs.Lattice()
	s := Sample{
		Flips:         r.obs.Flips(),
		Time:          r.obs.Time(),
		UnhappyCount:  r.obs.UnhappyCount(),
		HappyFraction: 1 - float64(r.obs.UnhappyCount())/float64(lat.Sites()),
	}
	if r.withInterface {
		s.InterfaceDensity = measure.InterfaceDensity(lat)
	}
	if r.withGeometry {
		s.InterfaceLength = measure.InterfaceLengthView(lat, r.geometryOpen)
		s.BoundaryCurvature = measure.BoundaryCurvatureView(lat, r.geometryOpen)
	}
	r.samples = append(r.samples, s)
	r.lastFlips = s.Flips
}

// IncludeGeometry adds the interface-length and boundary-curvature
// observables to every subsequent sample (the already-taken initial
// sample is re-measured in place — the lattice has not moved yet).
// open selects the boundary convention of the estimators.
func (r *Recorder) IncludeGeometry(open bool) {
	r.withGeometry = true
	r.geometryOpen = open
	if len(r.samples) == 1 && r.samples[0].Flips == r.obs.Flips() {
		lat := r.obs.Lattice()
		r.samples[0].InterfaceLength = measure.InterfaceLengthView(lat, open)
		r.samples[0].BoundaryCurvature = measure.BoundaryCurvatureView(lat, open)
	}
}

// fixatable is the optional observable extension Tick uses to detect
// termination. Both dynamics.Process variants satisfy it.
type fixatable interface{ Fixated() bool }

// Tick must be called after each process step; it records a sample when
// the interval has elapsed — or, for an observable that reports
// fixation, when the trajectory has just terminated between interval
// boundaries. Without the fixation check, a run whose last flip lands
// mid-interval silently loses its trajectory tail unless the driver
// remembers to call Finish; with it, the terminal state is recorded
// exactly once whichever way the driver is written.
func (r *Recorder) Tick() {
	if r.obs.Flips()-r.lastFlips >= r.interval {
		r.take()
		return
	}
	if f, ok := r.obs.(fixatable); ok && f.Fixated() && r.obs.Flips() != r.lastFlips {
		r.take()
	}
}

// Finish records a final sample if the trajectory advanced past the
// last recorded point.
func (r *Recorder) Finish() {
	if r.obs.Flips() != r.lastFlips {
		r.take()
	}
}

// Samples returns the recorded series.
func (r *Recorder) Samples() []Sample { return r.samples }

// Table renders the series as a report table.
func (r *Recorder) Table(title string) *report.Table {
	cols := []string{"flips", "time", "unhappy", "happy frac"}
	if r.withInterface {
		cols = append(cols, "interface density")
	}
	if r.withGeometry {
		cols = append(cols, "interface length", "curvature")
	}
	t := report.NewTable(title, cols...)
	for _, s := range r.samples {
		row := []string{
			report.I64(s.Flips), report.F3(s.Time),
			report.I(s.UnhappyCount), report.F3(s.HappyFraction),
		}
		if r.withInterface {
			row = append(row, report.F3(s.InterfaceDensity))
		}
		if r.withGeometry {
			row = append(row, report.F3(s.InterfaceLength), report.F3(s.BoundaryCurvature))
		}
		t.AddRow(row...)
	}
	return t
}
